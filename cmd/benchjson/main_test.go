package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: emuchick
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig4StreamSingleNodelet 	       1	   3868043 ns/op	       149.2 simMB/s
BenchmarkFig8Utilization-8       	       2	  51234567 ns/op	        79.90 %ofpeak	    1024 B/op	       3 allocs/op
PASS
ok  	emuchick	0.007s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context = %v", doc.Context)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkFig4StreamSingleNodelet" || b0.Iterations != 1 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.NsPerOp != 3868043 {
		t.Fatalf("b0.NsPerOp = %v", b0.NsPerOp)
	}
	if b0.Metrics["simMB/s"] != 149.2 {
		t.Fatalf("b0.Metrics = %v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Name != "BenchmarkFig8Utilization" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", b1.Name)
	}
	if b1.Metrics["%ofpeak"] != 79.90 || b1.Metrics["B/op"] != 1024 || b1.Metrics["allocs/op"] != 3 {
		t.Fatalf("b1.Metrics = %v", b1.Metrics)
	}
}

func TestRunIgnoresNonBenchLines(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok emuchick 1.2s\n"), &out); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %v", doc.Benchmarks)
	}
	if doc.Context != nil {
		t.Fatalf("context = %v", doc.Context)
	}
}

func TestBenchLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX abc 100 ns/op",
		"NotABench 1 100 ns/op",
		"BenchmarkX 1 xyz ns/op",
	} {
		if _, ok := benchLine(line); ok {
			t.Errorf("benchLine(%q) accepted malformed input", line)
		}
	}
}
