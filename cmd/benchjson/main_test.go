package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: emuchick
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig4StreamSingleNodelet 	       1	   3868043 ns/op	       149.2 simMB/s
BenchmarkFig8Utilization-8       	       2	  51234567 ns/op	        79.90 %ofpeak	    1024 B/op	       3 allocs/op
PASS
ok  	emuchick	0.007s
`

func TestRunParsesBenchOutput(t *testing.T) {
	doc, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context = %v", doc.Context)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkFig4StreamSingleNodelet" || b0.Iterations != 1 {
		t.Fatalf("b0 = %+v", b0)
	}
	if b0.NsPerOp.Mean != 3868043 || b0.NsPerOp.Min != 3868043 || b0.NsPerOp.N != 1 {
		t.Fatalf("b0.NsPerOp = %+v", b0.NsPerOp)
	}
	if b0.Metrics["simMB/s"].Mean != 149.2 {
		t.Fatalf("b0.Metrics = %v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Name != "BenchmarkFig8Utilization" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", b1.Name)
	}
	if b1.Metrics["%ofpeak"].Mean != 79.90 || b1.Metrics["B/op"].Mean != 1024 || b1.Metrics["allocs/op"].Mean != 3 {
		t.Fatalf("b1.Metrics = %v", b1.Metrics)
	}
}

// Repeated lines for the same benchmark (go test -count=N) aggregate into
// one result with min/mean/max over the samples.
func TestParseBenchAggregatesRepeatedRuns(t *testing.T) {
	const repeated = `goos: linux
BenchmarkFigX 	1	 100 ns/op	 10.0 simMB/s
BenchmarkFigX 	1	 140 ns/op	  8.0 simMB/s
BenchmarkFigX 	1	 120 ns/op	  9.0 simMB/s
`
	doc, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", b.Iterations)
	}
	ns := b.NsPerOp
	if ns.N != 3 || ns.Min != 100 || ns.Max != 140 || ns.Mean != 120 {
		t.Fatalf("ns stat = %+v", ns)
	}
	if ns.CI95 <= 0 {
		t.Fatalf("ci95 = %v, want > 0 with 3 samples", ns.CI95)
	}
	m := b.Metrics["simMB/s"]
	if m.N != 3 || m.Min != 8 || m.Max != 10 || m.Mean != 9 {
		t.Fatalf("metric stat = %+v", m)
	}
}

func TestRunIgnoresNonBenchLines(t *testing.T) {
	doc, err := parseBench(strings.NewReader("PASS\nok emuchick 1.2s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %v", doc.Benchmarks)
	}
	if doc.Context != nil {
		t.Fatalf("context = %v", doc.Context)
	}
}

func TestBenchLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX abc 100 ns/op",
		"NotABench 1 100 ns/op",
		"BenchmarkX 1 xyz ns/op",
	} {
		if _, _, _, _, ok := benchLine(line); ok {
			t.Errorf("benchLine(%q) accepted malformed input", line)
		}
	}
}

// The legacy snapshot format stored ns_per_op as a bare number; it must
// still load as a one-sample stat so old archives work as baselines.
func TestStatUnmarshalLegacyNumber(t *testing.T) {
	const legacy = `{
	  "context": {"goos": "linux"},
	  "benchmarks": [
	    {"name": "BenchmarkFigX", "iterations": 1, "ns_per_op": 3868043,
	     "metrics": {"simMB/s": 149.2}}
	  ]
	}`
	var doc document
	if err := json.Unmarshal([]byte(legacy), &doc); err != nil {
		t.Fatal(err)
	}
	ns := doc.Benchmarks[0].NsPerOp
	if ns.Mean != 3868043 || ns.Min != 3868043 || ns.Max != 3868043 || ns.N != 1 {
		t.Fatalf("legacy ns stat = %+v", ns)
	}
	if doc.Benchmarks[0].Metrics["simMB/s"].Mean != 149.2 {
		t.Fatalf("legacy metric = %+v", doc.Benchmarks[0].Metrics)
	}
}

// The archived JSON round-trips through the comparator's own reader.
func TestDocumentRoundTrip(t *testing.T) {
	doc, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back document
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0].NsPerOp != doc.Benchmarks[0].NsPerOp {
		t.Fatalf("round trip: %+v != %+v", back.Benchmarks[0].NsPerOp, doc.Benchmarks[0].NsPerOp)
	}
}

func bench(name string, mins ...float64) result {
	return result{Name: name, Iterations: int64(len(mins)), NsPerOp: newStat(mins)}
}

func docOf(rs ...result) document { return document{Benchmarks: rs} }

// A live run slower than baseline beyond the tolerance fails the gate —
// the "deliberately regressed build" contract of `make bench-gate`.
func TestCompareDetectsRegression(t *testing.T) {
	base := docOf(bench("BenchmarkFigA", 100, 110), bench("BenchmarkFigB", 200, 210))
	live := docOf(bench("BenchmarkFigA", 150, 160), bench("BenchmarkFigB", 205, 215)) // A is 1.5x
	var out bytes.Buffer
	if compareDocs(base, live, compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("regressed run passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "BenchmarkFigA") {
		t.Fatalf("report does not name the regression:\n%s", out.String())
	}
}

// An across-the-board improvement passes.
func TestCompareAcceptsImprovement(t *testing.T) {
	base := docOf(bench("BenchmarkFigA", 100), bench("BenchmarkFigB", 200))
	live := docOf(bench("BenchmarkFigA", 50), bench("BenchmarkFigB", 120))
	var out bytes.Buffer
	if !compareDocs(base, live, compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("improved run failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "improved") || !strings.Contains(out.String(), "PASS") {
		t.Fatalf("report missing improvement verdicts:\n%s", out.String())
	}
}

// A benchmark present in the baseline but absent from the live run fails —
// renames and deletions must be re-archived deliberately, never silently.
func TestCompareReportsMissingBenchmark(t *testing.T) {
	base := docOf(bench("BenchmarkFigA", 100), bench("BenchmarkFigGone", 100))
	live := docOf(bench("BenchmarkFigA", 100), bench("BenchmarkFigRenamed", 90))
	var out bytes.Buffer
	if compareDocs(base, live, compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("missing benchmark passed the gate:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "BenchmarkFigGone") || !strings.Contains(s, "missing") {
		t.Fatalf("report does not call out the missing benchmark:\n%s", s)
	}
	if !strings.Contains(s, "BenchmarkFigRenamed") || !strings.Contains(s, "new") {
		t.Fatalf("report does not list the new benchmark:\n%s", s)
	}
}

// An empty live run (the bench invocation broke) must not pass vacuously.
func TestCompareFailsOnEmptyLiveRun(t *testing.T) {
	base := docOf(bench("BenchmarkFigA", 100))
	var out bytes.Buffer
	if compareDocs(base, docOf(), compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("empty live run passed the gate:\n%s", out.String())
	}
}

// Exactly at the limit passes; a hair above fails.
func TestCompareThresholdBoundary(t *testing.T) {
	base := docOf(bench("BenchmarkFigA", 1000))
	var out bytes.Buffer
	if !compareDocs(base, docOf(bench("BenchmarkFigA", 1250)), compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("ratio exactly at limit failed:\n%s", out.String())
	}
	out.Reset()
	if compareDocs(base, docOf(bench("BenchmarkFigA", 1251)), compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("ratio above limit passed:\n%s", out.String())
	}
}

// Per-benchmark tolerances override the default for named benchmarks only.
func TestComparePerBenchmarkTolerance(t *testing.T) {
	base := docOf(bench("BenchmarkFigNoisy", 100), bench("BenchmarkFigQuiet", 100))
	live := docOf(bench("BenchmarkFigNoisy", 140), bench("BenchmarkFigQuiet", 105))
	opts := compareOptions{tolerance: 0.25, perBench: map[string]float64{"BenchmarkFigNoisy": 0.5}}
	var out bytes.Buffer
	if !compareDocs(base, live, opts, &out) {
		t.Fatalf("override did not widen the noisy benchmark's limit:\n%s", out.String())
	}
	// Without the override the same run fails.
	out.Reset()
	if compareDocs(base, live, compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("default tolerance unexpectedly accepted the 1.4x slowdown:\n%s", out.String())
	}
}

func TestParseOverrides(t *testing.T) {
	m, err := parseOverrides("BenchmarkA=0.5, BenchmarkB=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if m["BenchmarkA"] != 0.5 || m["BenchmarkB"] != 0.1 {
		t.Fatalf("overrides = %v", m)
	}
	for _, bad := range []string{"BenchmarkA", "BenchmarkA=x", "BenchmarkA=-1"} {
		if _, err := parseOverrides(bad); err == nil {
			t.Errorf("parseOverrides(%q) accepted malformed input", bad)
		}
	}
}

// End-to-end shape of the gate: a baseline archived from bench text, then a
// deliberately regressed live run of the same build, through the same parse
// path `make bench-gate` uses.
func TestGateFailsOnDeliberatelyRegressedBuild(t *testing.T) {
	const baseText = `goos: linux
BenchmarkFig4Stream 	1	 1000000 ns/op
BenchmarkFig7Chase  	1	 5000000 ns/op
`
	const regressedText = `goos: linux
BenchmarkFig4Stream 	1	 2400000 ns/op
BenchmarkFig7Chase  	1	 5100000 ns/op
`
	base, err := parseBench(strings.NewReader(baseText))
	if err != nil {
		t.Fatal(err)
	}
	live, err := parseBench(strings.NewReader(regressedText))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if compareDocs(base, live, compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("2.4x regression passed the gate:\n%s", out.String())
	}
	// And the same live run against itself passes.
	out.Reset()
	if !compareDocs(live, live, compareOptions{tolerance: 0.25}, &out) {
		t.Fatalf("identical run failed the gate:\n%s", out.String())
	}
}
