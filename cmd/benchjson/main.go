// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark runs can be archived and
// diffed (see `make bench-quick`, which writes BENCH_engine.json).
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkFig' -benchtime 1x . | benchjson
//
// Each benchmark line contributes its iteration count, ns/op, and any
// custom b.ReportMetric values (simMB/s, %ofpeak, ...). Header lines
// (goos, goarch, pkg, cpu) become the context object.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type document struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	doc := document{Context: map[string]string{}, Benchmarks: []result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if key, val, ok := contextLine(line); ok {
			doc.Context[key] = val
			continue
		}
		if r, ok := benchLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Context) == 0 {
		doc.Context = nil
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// contextLine recognizes the `go test` preamble: "goos: linux" and friends.
func contextLine(line string) (key, val string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+":"); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// benchLine parses "BenchmarkName[-P]  N  V1 unit1  V2 unit2 ...".
// The -P GOMAXPROCS suffix is stripped so names stay stable across hosts.
func benchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	// Remaining fields alternate value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}
