// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark runs can be archived and
// diffed, and — with -compare — diffs the live run against an archived
// baseline and exits non-zero on regression (the `make bench-gate` target).
//
// Usage:
//
//	# archive: aggregate repeated runs (-count) into per-benchmark stats
//	go test -run '^$' -bench 'BenchmarkFig' -benchtime 1x -count 5 . \
//	  | benchjson > BENCH_engine.json
//
//	# gate: compare a live run against the archived baseline
//	go test -run '^$' -bench 'BenchmarkFig' -benchtime 1x -count 5 . \
//	  | benchjson -compare BENCH_engine.json -tolerance 0.25
//
// Repeated lines for the same benchmark (one per -count run) are aggregated
// into mean/min/max and a 95% confidence half-width per measurement. The
// comparison uses the min statistic — the most noise-robust single number a
// timing distribution offers on a shared machine: interference only ever adds
// time, so the minimum is the closest observation to the code's true cost.
// A benchmark regresses when liveMin > baseMin * (1 + tolerance); benchmarks
// present in the baseline but missing from the live run (deleted or renamed)
// also fail the gate. Benchmarks new in the live run are reported but pass.
//
// Header lines (goos, goarch, pkg, cpu) become the context object. Archived
// baselines in the legacy single-run format (ns_per_op as a plain number)
// still load: a bare number is read as a one-sample stat.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// stat summarizes the samples of one measurement across repeated runs of a
// benchmark (`go test -count=N` emits one line per run).
type stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	CI95 float64 `json:"ci95"` // half-width of the 95% CI of the mean (0 with <2 samples)
	N    int     `json:"n"`    // samples aggregated
}

// newStat reduces raw samples to a stat. It panics on an empty slice — a
// benchmark only exists here because at least one line parsed.
func newStat(samples []float64) stat {
	s := stat{Min: samples[0], Max: samples[0], N: len(samples)}
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(samples))
	if len(samples) > 1 {
		var ss float64
		for _, v := range samples {
			d := v - s.Mean
			ss += d * d
		}
		sd := math.Sqrt(ss / float64(len(samples)-1))
		s.CI95 = 1.96 * sd / math.Sqrt(float64(len(samples)))
	}
	return s
}

// UnmarshalJSON accepts both the current object form and the legacy plain
// number written by the pre-comparator snapshotter, so old archives remain
// loadable as baselines.
func (s *stat) UnmarshalJSON(b []byte) error {
	t := strings.TrimSpace(string(b))
	if t == "" || t[0] != '{' {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return fmt.Errorf("stat: %w", err)
		}
		*s = stat{Mean: v, Min: v, Max: v, N: 1}
		return nil
	}
	type plain stat // shed the method to avoid recursion
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	*s = stat(p)
	return nil
}

type result struct {
	Name       string          `json:"name"`
	Iterations int64           `json:"iterations"` // total b.N iterations across samples
	NsPerOp    stat            `json:"ns_per_op"`
	Metrics    map[string]stat `json:"metrics,omitempty"`
}

type document struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []result          `json:"benchmarks"`
}

func main() {
	comparePath := flag.String("compare", "", "baseline JSON to diff the live run against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown vs baseline (0.25 = +25%)")
	overrides := flag.String("tolerances", "", "per-benchmark overrides, e.g. 'BenchmarkFig7PointerChase=0.5,BenchmarkFig5=0.4'")
	flag.Parse()

	doc, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if *comparePath == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		return
	}

	base, err := loadDocument(*comparePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	per, err := parseOverrides(*overrides)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if !compareDocs(base, doc, compareOptions{tolerance: *tolerance, perBench: per}, os.Stdout) {
		os.Exit(1)
	}
}

func loadDocument(path string) (document, error) {
	var doc document
	b, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// parseOverrides reads 'Name=frac,Name=frac' per-benchmark tolerances.
func parseOverrides(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("tolerances: %q is not Name=frac", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("tolerances: bad fraction in %q", part)
		}
		out[name] = f
	}
	return out, nil
}

// parseBench reads `go test -bench` text and aggregates repeated lines per
// benchmark (first-seen order) into stats.
func parseBench(in io.Reader) (document, error) {
	doc := document{Context: map[string]string{}, Benchmarks: []result{}}
	type agg struct {
		iters   int64
		ns      []float64
		metrics map[string][]float64
	}
	byName := map[string]*agg{}
	var order []string

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if key, val, ok := contextLine(line); ok {
			doc.Context[key] = val
			continue
		}
		name, iters, ns, metrics, ok := benchLine(line)
		if !ok {
			continue
		}
		a := byName[name]
		if a == nil {
			a = &agg{}
			byName[name] = a
			order = append(order, name)
		}
		a.iters += iters
		a.ns = append(a.ns, ns)
		for unit, v := range metrics {
			if a.metrics == nil {
				a.metrics = map[string][]float64{}
			}
			a.metrics[unit] = append(a.metrics[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	for _, name := range order {
		a := byName[name]
		r := result{Name: name, Iterations: a.iters, NsPerOp: newStat(a.ns)}
		if len(a.metrics) > 0 {
			r.Metrics = map[string]stat{}
			units := make([]string, 0, len(a.metrics))
			for u := range a.metrics {
				units = append(units, u)
			}
			sort.Strings(units)
			for _, u := range units {
				r.Metrics[u] = newStat(a.metrics[u])
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if len(doc.Context) == 0 {
		doc.Context = nil
	}
	return doc, nil
}

// contextLine recognizes the `go test` preamble: "goos: linux" and friends.
func contextLine(line string) (key, val string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+":"); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// benchLine parses "BenchmarkName[-P]  N  V1 unit1  V2 unit2 ...".
// The -P GOMAXPROCS suffix is stripped so names stay stable across hosts.
func benchLine(line string) (name string, iters int64, ns float64, metrics map[string]float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, 0, nil, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, 0, nil, false
	}
	// Remaining fields alternate value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, 0, nil, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			ns = v
			continue
		}
		if metrics == nil {
			metrics = map[string]float64{}
		}
		metrics[unit] = v
	}
	return name, iters, ns, metrics, true
}

type compareOptions struct {
	tolerance float64
	perBench  map[string]float64
}

func (o compareOptions) limitFor(name string) float64 {
	if f, ok := o.perBench[name]; ok {
		return 1 + f
	}
	return 1 + o.tolerance
}

// compareDocs diffs live against base benchmark by benchmark, writes a
// human-readable report to out, and reports whether the gate passes. A
// benchmark passes when liveMin <= baseMin * limit; one that is present in
// the baseline but absent from the live run fails (deleted or renamed
// without re-archiving); one that is new in the live run is listed but
// cannot regress against a baseline it has no entry in.
func compareDocs(base, live document, opt compareOptions, out io.Writer) bool {
	liveByName := map[string]result{}
	for _, r := range live.Benchmarks {
		liveByName[r.Name] = r
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintf(w, "%-44s %12s %12s %7s  %s\n", "benchmark", "base(min)", "live(min)", "ratio", "verdict")

	var failures []string
	var logSum float64
	matched := 0
	for _, b := range base.Benchmarks {
		l, ok := liveByName[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %12s %12s %7s  MISSING from live run\n", b.Name, fmtNs(b.NsPerOp.Min), "-", "-")
			failures = append(failures, b.Name+": missing from live run (deleted or renamed?)")
			continue
		}
		delete(liveByName, b.Name)
		if b.NsPerOp.Min <= 0 {
			fmt.Fprintf(w, "%-44s %12s %12s %7s  skipped (no baseline timing)\n", b.Name, "-", fmtNs(l.NsPerOp.Min), "-")
			continue
		}
		ratio := l.NsPerOp.Min / b.NsPerOp.Min
		limit := opt.limitFor(b.Name)
		matched++
		logSum += math.Log(ratio)
		verdict := "ok"
		switch {
		case ratio > limit:
			verdict = fmt.Sprintf("REGRESSION (limit %.2f)", limit)
			failures = append(failures, fmt.Sprintf("%s: %.3fx slower than baseline (limit %.2fx)", b.Name, ratio, limit))
		case ratio < 1:
			verdict = "ok (improved)"
		}
		fmt.Fprintf(w, "%-44s %12s %12s %7.3f  %s\n", b.Name, fmtNs(b.NsPerOp.Min), fmtNs(l.NsPerOp.Min), ratio, verdict)
	}
	// Benchmarks only the live run has, in live order.
	for _, r := range live.Benchmarks {
		if _, stillNew := liveByName[r.Name]; stillNew {
			fmt.Fprintf(w, "%-44s %12s %12s %7s  new (no baseline entry)\n", r.Name, "-", fmtNs(r.NsPerOp.Min), "-")
		}
	}
	if matched > 0 {
		fmt.Fprintf(w, "geomean ratio %.3f over %d benchmark(s), tolerance +%.0f%%\n",
			math.Exp(logSum/float64(matched)), matched, opt.tolerance*100)
	}
	if len(failures) > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) outside tolerance\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(w, "  %s\n", f)
		}
		return false
	}
	if matched == 0 {
		fmt.Fprintln(w, "FAIL: no benchmarks matched the baseline")
		return false
	}
	fmt.Fprintf(w, "PASS: %d/%d benchmark(s) within tolerance\n", matched, matched)
	return true
}

// fmtNs renders nanoseconds with an adaptive unit.
func fmtNs(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.2fus", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.3fms", ns/1e6)
	}
	return fmt.Sprintf("%.3fs", ns/1e9)
}
