// Command emuserved serves simulations over HTTP: clients POST declarative
// jobspec requests and the server multiplexes them across a shared bounded
// worker pool, caches results by content address, and survives restarts —
// jobs in flight when the process dies resume from their write-ahead logs
// with byte-identical figures.
//
// Usage:
//
//	emuserved -addr :8080 -data /var/lib/emuserved -workers 2 -job-parallel 4
//
// See README.md ("Serving simulations") for the API walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"emuchick/internal/jobserver"
)

func main() {
	fs := flag.NewFlagSet("emuserved", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	data := fs.String("data", "emuserved-data", "durable data directory (job records, WALs, result cache)")
	workers := fs.Int("workers", 2, "jobs simulated concurrently")
	jobParallel := fs.Int("job-parallel", defaultJobParallel(), "sweep workers per job when the jobspec does not set -parallel")
	queue := fs.Int("queue", 1024, "pending-job backlog bound (submits beyond it get 503)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "emuserved: HTTP job server for emuchick simulations\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	logger := log.New(os.Stderr, "emuserved: ", log.LstdFlags)
	srv, err := jobserver.New(jobserver.Config{
		DataDir:        *data,
		Workers:        *workers,
		ParallelPerJob: *jobParallel,
		QueueDepth:     *queue,
		Logf:           func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		logger.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on http://%s (data %s)", *addr, *data)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, preempt running jobs (their WALs
		// keep finished cells; the next boot resumes them), then exit.
		logger.Printf("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			logger.Printf("close: %v", err)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			logger.Fatal(err)
		}
	}
}

// defaultJobParallel splits the machine between concurrent jobs without
// oversubscribing a small box.
func defaultJobParallel() int {
	if n := runtime.GOMAXPROCS(0) / 2; n > 1 {
		return n
	}
	return 1
}
