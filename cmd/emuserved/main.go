// Command emuserved serves simulations over HTTP: clients POST declarative
// jobspec requests and the server multiplexes them across a shared bounded
// worker pool, caches results by content address, and survives restarts —
// jobs in flight when the process dies resume from their write-ahead logs
// with byte-identical figures.
//
// Usage:
//
//	emuserved -addr :8080 -data /var/lib/emuserved -workers 2 -job-parallel 4
//
// See README.md ("Serving simulations" and "Operating emuserved") for the
// API walkthrough and the overload/drain semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"emuchick/internal/jobserver"
)

func main() {
	fs := flag.NewFlagSet("emuserved", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	data := fs.String("data", "emuserved-data", "durable data directory (job records, WALs, result cache)")
	workers := fs.Int("workers", 2, "jobs simulated concurrently")
	jobParallel := fs.Int("job-parallel", defaultJobParallel(), "sweep workers per job when the jobspec does not set -parallel")
	queue := fs.Int("queue", 1024, "pending-job backlog bound (submits beyond it are shed with 503 + Retry-After)")
	inflight := fs.Int64("max-inflight-bytes", 0, "encoded-spec byte budget across admitted jobs; 0 is unlimited")
	retryAfter := fs.Duration("retry-after", time.Second, "backoff hint attached to shed submits")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "per-request header read deadline")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle deadline")
	watchTimeout := fs.Duration("watch-write-timeout", 10*time.Second, "per-update write deadline on /watch streams")
	drainGrace := fs.Duration("drain-grace", 2*time.Second, "pause between flipping /readyz and closing the listener, so front-ends stop routing first")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "emuserved: HTTP job server for emuchick simulations\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	logger := log.New(os.Stderr, "emuserved: ", log.LstdFlags)
	srv, err := jobserver.New(jobserver.Config{
		DataDir:           *data,
		Workers:           *workers,
		ParallelPerJob:    *jobParallel,
		QueueDepth:        *queue,
		MaxInflightBytes:  *inflight,
		RetryAfter:        *retryAfter,
		WatchWriteTimeout: *watchTimeout,
		Logf:              func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		logger.Fatal(err)
	}

	// Zero-value http.Server timeouts mean "forever": a client that never
	// sends its headers, or a keep-alive connection that never speaks again,
	// would pin a connection for the life of the process. Body reads are
	// bounded per-handler (submit caps its body; watch/wait are deliberately
	// long-lived), so ReadHeaderTimeout + IdleTimeout are the right scope —
	// a whole-request WriteTimeout would kill legitimate watch streams.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on http://%s (data %s)", *addr, *data)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		// Graceful drain, front-end first: flip /readyz and shed new submits,
		// give load balancers drain-grace to notice, then close the listener
		// and preempt running jobs (their WALs keep finished cells; the next
		// boot resumes them).
		logger.Printf("draining (grace %s)", *drainGrace)
		srv.BeginDrain()
		time.Sleep(*drainGrace)
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			logger.Printf("close: %v", err)
		}
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			logger.Fatal(err)
		}
	}
}

// defaultJobParallel splits the machine between concurrent jobs without
// oversubscribing a small box.
func defaultJobParallel() int {
	if n := runtime.GOMAXPROCS(0) / 2; n > 1 {
		return n
	}
	return 1
}
