package main

import (
	"strings"
	"testing"

	"emuchick/internal/jobspec"
)

func TestMachineFor(t *testing.T) {
	hw, err := jobspec.Machine{Name: "hw", Nodes: 1}.Config()
	if err != nil || hw.Nodes != 1 {
		t.Fatalf("hw: %+v, %v", hw, err)
	}
	multi, err := jobspec.Machine{Name: "hardware", Nodes: 4}.Config()
	if err != nil || multi.Nodes != 4 {
		t.Fatalf("hw multi-node: %+v, %v", multi, err)
	}
	sim, err := jobspec.Machine{Name: "sim", Nodes: 1}.Config()
	if err != nil || sim.MigrationsPerSec != 16e6 {
		t.Fatalf("sim: %+v, %v", sim, err)
	}
	fast, err := jobspec.Machine{Name: "fullspeed"}.Config()
	if err != nil || fast.Nodes != 1 || fast.CoreHz != 300e6 {
		t.Fatalf("fullspeed: %+v, %v", fast, err)
	}
	if _, err := (jobspec.Machine{Name: "tpu", Nodes: 1}).Config(); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRunStream(t *testing.T) {
	out := runOK(t, "-bench", "stream", "-elems", "64", "-threads", "16")
	if !strings.Contains(out, "bandwidth") || !strings.Contains(out, "emu-chick-hw") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunChase(t *testing.T) {
	out := runOK(t, "-bench", "chase", "-elems", "512", "-block", "8", "-threads", "16")
	if !strings.Contains(out, "% of machine word-traffic peak") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunSpMVAllLayouts(t *testing.T) {
	for _, layout := range []string{"local", "1d", "2d"} {
		out := runOK(t, "-bench", "spmv", "-n", "8", "-layout", layout)
		if !strings.Contains(out, "bandwidth") {
			t.Fatalf("%s output:\n%s", layout, out)
		}
	}
}

func TestRunPingPong(t *testing.T) {
	out := runOK(t, "-bench", "pingpong", "-threads", "4", "-iters", "50")
	if !strings.Contains(out, "M migrations/s") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunGUPS(t *testing.T) {
	out := runOK(t, "-bench", "gups", "-elems", "64", "-updates", "256", "-threads", "8")
	if !strings.Contains(out, "bandwidth") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunOnOtherMachines(t *testing.T) {
	out := runOK(t, "-bench", "chase", "-machine", "fullspeed", "-nodes", "8",
		"-nodelets", "64", "-elems", "2048", "-block", "8", "-threads", "128")
	if !strings.Contains(out, "emu-fullspeed-8node") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunTraceFlag(t *testing.T) {
	out := runOK(t, "-bench", "chase", "-elems", "64", "-block", "4", "-threads", "4", "-trace", "5")
	if !strings.Contains(out, "spawn") && !strings.Contains(out, "load") {
		t.Fatalf("trace lines missing:\n%s", out)
	}
	// The limit bounds the trace: count trace-looking lines.
	lines := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, " nl") {
			lines++
		}
	}
	if lines != 5 {
		t.Fatalf("trace emitted %d lines, want 5", lines)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var b strings.Builder
	cases := [][]string{
		{"-bench", "nothing"},
		{"-bench", "stream", "-strategy", "bogus"},
		{"-bench", "chase", "-mode", "bogus"},
		{"-bench", "spmv", "-layout", "bogus"},
		{"-machine", "bogus"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
