// Command emurun runs a single benchmark with explicit parameters and
// prints its measurement plus the machine counters — the workhorse for
// exploring the model outside the fixed paper sweeps.
//
// Usage:
//
//	emurun -bench stream      [-machine hw|sim|fullspeed] [-nodelets N]
//	       [-threads N] [-elems N] [-strategy serial_spawn|...]
//	emurun -bench chase       [-elems N] [-block N] [-mode full_block_shuffle|...]
//	       [-threads N] [-seed S]
//	emurun -bench spmv        [-n N] [-layout local|1d|2d] [-grain G]
//	emurun -bench pingpong    [-threads N] [-iters N]
//	emurun -bench gups        [-elems N] [-updates N] [-threads N]
//
// Every benchmark accepts -faults/-fault-seed to run on a deterministically
// degraded machine (see internal/fault for the grammar):
//
//	emurun -bench pingpong -faults 'migstall=10us/100us'
//	emurun -bench stream -faults 'chan=4@2' -fault-seed 7
//
// -cell-timeout arms a watchdog that kills a stuck simulation after the
// given wall-clock time and retries it -retries times; a run that dies in
// the engine (deadlock, event budget, watchdog) prints the structured
// post-mortem — engine time, fired events, every parked process with its
// park site. -checkpoint records the finished measurement in a write-ahead
// log; rerunning with -resume replays it without re-simulating.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"emuchick/internal/cilk"
	"emuchick/internal/experiments"
	"emuchick/internal/fault"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "emurun:", err)
		os.Exit(1)
	}
}

func machineFor(name string, nodes int) (machine.Config, error) {
	switch name {
	case "hw", "hardware":
		if nodes > 1 {
			return machine.HardwareChickNodes(nodes), nil
		}
		return machine.HardwareChick(), nil
	case "sim", "simulator":
		return machine.SimMatched(), nil
	case "fullspeed", "design":
		if nodes <= 0 {
			nodes = 1
		}
		return machine.FullSpeed(nodes), nil
	default:
		return machine.Config{}, fmt.Errorf("unknown machine %q (hw, sim, fullspeed)", name)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("emurun", flag.ContinueOnError)
	bench := fs.String("bench", "stream", "benchmark: stream, chase, spmv, pingpong, gups")
	mach := fs.String("machine", "hw", "machine config: hw, sim, fullspeed")
	nodes := fs.Int("nodes", 1, "node cards (hw and fullspeed)")
	nodelets := fs.Int("nodelets", 8, "nodelets used by the kernel")
	threads := fs.Int("threads", 64, "worker threads")
	elems := fs.Int("elems", 4096, "elements (stream: per nodelet; chase/gups: total)")
	strategy := fs.String("strategy", "serial_remote_spawn", "spawn strategy (stream)")
	block := fs.Int("block", 64, "block size in elements (chase)")
	mode := fs.String("mode", "full_block_shuffle", "shuffle mode (chase)")
	seed := fs.Uint64("seed", 1, "workload seed")
	gridN := fs.Int("n", 32, "Laplacian grid size (spmv)")
	layout := fs.String("layout", "2d", "data layout: local, 1d, 2d (spmv)")
	grain := fs.Int("grain", 16, "elements per spawn (spmv)")
	iters := fs.Int("iters", 1000, "round trips per thread (pingpong)")
	updates := fs.Int("updates", 16384, "update count (gups)")
	trace := fs.Int("trace", 0, "print the first N machine operations of the run")
	faults := fs.String("faults", "", "fault plan, e.g. 'chan=4@2,migstall=10us/100us' (see internal/fault)")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for the plan's nodelet choices (0: plan default)")
	checkpoint := fs.String("checkpoint", "", "write-ahead log of the finished measurement; rerun with -resume to replay it")
	resume := fs.Bool("resume", false, "allow replaying an existing non-empty checkpoint")
	cellTimeout := fs.Duration("cell-timeout", 0, "watchdog: kill the simulation after this wall-clock time (0 disables)")
	retries := fs.Int("retries", 1, "extra attempts after a watchdog kill before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := machineFor(*mach, *nodes)
	if err != nil {
		return err
	}
	if *trace > 0 {
		kernels.TraceNextSystem(out, *trace)
		defer kernels.TraceNextSystem(nil, 0)
	}

	// Ctrl-C interrupts the simulation instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runOpts := []kernels.RunOption{kernels.WithContext(ctx)}
	if *faults != "" {
		plan, err := fault.Parse(*faults, *faultSeed)
		if err != nil {
			return err
		}
		runOpts = append(runOpts, kernels.WithFaultPlan(plan))
	}

	// reportResult renders the standard bandwidth block from the measurement
	// vector [bytes, elapsed-ns]; pingpong installs its own pair below.
	reportResult := func(vals []float64) {
		res := metrics.Result{Bytes: int64(vals[0]), Elapsed: sim.Time(vals[1])}
		fmt.Fprintf(out, "machine    %s\n", cfg.Name)
		fmt.Fprintf(out, "bytes      %d\n", res.Bytes)
		fmt.Fprintf(out, "elapsed    %v\n", res.Elapsed)
		fmt.Fprintf(out, "bandwidth  %.2f MB/s (%.4f GB/s)\n", res.MBps(), res.GBps())
		fmt.Fprintf(out, "peak       %.1f%% of machine word-traffic peak\n",
			100*res.BytesPerSec()/cfg.PeakMemoryBytesPerSec())
	}
	asResult := func(res metrics.Result, err error) ([]float64, error) {
		if err != nil {
			return nil, err
		}
		return []float64{float64(res.Bytes), float64(res.Elapsed)}, nil
	}

	// do runs the benchmark once under the given options and returns its
	// measurement vector; report renders a vector (fresh or replayed).
	var do func(ro []kernels.RunOption) ([]float64, error)
	report := reportResult
	switch *bench {
	case "stream":
		strat, err := cilk.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		do = func(ro []kernels.RunOption) ([]float64, error) {
			return asResult(kernels.StreamAdd(cfg, kernels.StreamConfig{
				ElemsPerNodelet: *elems, Nodelets: *nodelets, Threads: *threads, Strategy: strat,
			}, ro...))
		}
	case "chase":
		m, err := workload.ParseShuffleMode(*mode)
		if err != nil {
			return err
		}
		do = func(ro []kernels.RunOption) ([]float64, error) {
			return asResult(kernels.PointerChase(cfg, kernels.ChaseConfig{
				Elements: *elems, BlockSize: *block, Mode: m, Seed: *seed,
				Threads: *threads, Nodelets: *nodelets,
			}, ro...))
		}
	case "spmv":
		var l kernels.SpMVLayout
		switch *layout {
		case "local":
			l = kernels.SpMVLocal
		case "1d":
			l = kernels.SpMV1D
		case "2d":
			l = kernels.SpMV2D
		default:
			return fmt.Errorf("unknown layout %q", *layout)
		}
		do = func(ro []kernels.RunOption) ([]float64, error) {
			return asResult(kernels.SpMV(cfg, kernels.SpMVConfig{GridN: *gridN, Layout: l, GrainNNZ: *grain}, ro...))
		}
	case "pingpong":
		do = func(ro []kernels.RunOption) ([]float64, error) {
			pp, err := kernels.PingPong(cfg, kernels.PingPongConfig{
				Threads: *threads, Iterations: *iters, NodeletA: 0, NodeletB: 1,
			}, ro...)
			if err != nil {
				return nil, err
			}
			return []float64{float64(pp.Migrations), float64(pp.Elapsed), pp.MigrationsPerSec, float64(pp.MeanLatency)}, nil
		}
		report = func(vals []float64) {
			fmt.Fprintf(out, "machine        %s\n", cfg.Name)
			fmt.Fprintf(out, "migrations     %d\n", int64(vals[0]))
			fmt.Fprintf(out, "elapsed        %v\n", sim.Time(vals[1]))
			fmt.Fprintf(out, "rate           %.2f M migrations/s\n", vals[2]/1e6)
			fmt.Fprintf(out, "mean latency   %v per migration per thread\n", sim.Time(vals[3]))
		}
	case "gups":
		do = func(ro []kernels.RunOption) ([]float64, error) {
			return asResult(kernels.GUPS(cfg, kernels.GUPSConfig{
				TableWords: *elems, Updates: *updates, Threads: *threads, Seed: *seed,
			}, ro...))
		}
	default:
		return fmt.Errorf("unknown benchmark %q", *bench)
	}

	// The checkpoint addresses the measurement vector as cells of sweep 0,
	// fingerprinted by every workload-shaping flag so -resume refuses to
	// replay a measurement taken with different parameters.
	var ck *experiments.Checkpoint
	if *checkpoint != "" {
		if !*resume {
			if fi, err := os.Stat(*checkpoint); err == nil && fi.Size() > 0 {
				return fmt.Errorf("checkpoint %s already holds records; pass -resume to replay it or delete the file", *checkpoint)
			}
		}
		fp := fmt.Sprintf("machine=%s;nodes=%d;nodelets=%d;threads=%d;elems=%d;strategy=%s;block=%d;mode=%s;seed=%d;n=%d;layout=%s;grain=%d;iters=%d;updates=%d;faults=%s;fault-seed=%d",
			*mach, *nodes, *nodelets, *threads, *elems, *strategy, *block, *mode, *seed, *gridN, *layout, *grain, *iters, *updates, *faults, *faultSeed)
		var err error
		ck, err = experiments.OpenCheckpoint(*checkpoint, "emurun/"+*bench, fp)
		if err != nil {
			return err
		}
		defer ck.Close()
		if vals, ok := replay(ck); ok {
			fmt.Fprintf(out, "(replayed from checkpoint %s)\n", *checkpoint)
			report(vals)
			return nil
		}
	}

	vals, attempts, err := runWithWatchdog(ctx, out, *cellTimeout, *retries, runOpts, do)
	if err != nil {
		if ck != nil {
			cf := experiments.NewCellFailure(attempts, err)
			if rerr := ck.RecordFailure(cf); rerr != nil {
				return rerr
			}
		}
		renderPostMortem(out, err)
		return err
	}
	if ck != nil {
		for i, v := range vals {
			if err := ck.Record(0, i, v); err != nil {
				return err
			}
		}
	}
	report(vals)
	return nil
}

// replay reassembles the measurement vector from a checkpoint that recorded
// the whole run (cells 0..n-1 of sweep 0, contiguous).
func replay(ck *experiments.Checkpoint) ([]float64, bool) {
	var vals []float64
	for i := 0; ; i++ {
		v, ok := ck.Lookup(0, i)
		if !ok {
			return vals, i > 0
		}
		vals = append(vals, v)
	}
}

// runWithWatchdog executes do, arming a per-attempt deadline when
// cellTimeout is set and retrying watchdog kills up to retries extra times.
// It reports the number of attempts spent alongside the outcome.
func runWithWatchdog(ctx context.Context, out io.Writer, cellTimeout time.Duration, retries int,
	base []kernels.RunOption, do func([]kernels.RunOption) ([]float64, error)) ([]float64, int, error) {
	attempts := 1
	if cellTimeout > 0 {
		attempts += retries
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		ro := base
		cancel := context.CancelFunc(func() {})
		if cellTimeout > 0 {
			actx, c := context.WithTimeout(ctx, cellTimeout)
			// A later WithContext replaces the base one for this attempt.
			ro = append(append([]kernels.RunOption{}, base...), kernels.WithContext(actx))
			cancel = c
		}
		vals, err := do(ro)
		cancel()
		if err == nil {
			return vals, a, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, a, err // outer cancellation (SIGINT): no retry
		}
		if errors.Is(err, context.DeadlineExceeded) && a < attempts {
			fmt.Fprintf(out, "watchdog: attempt %d/%d killed after %v; retrying\n", a, attempts, cellTimeout)
			continue
		}
		return nil, a, err
	}
	return nil, attempts, lastErr
}

// renderPostMortem prints the structured dump of a sim.RunError — engine
// time, fired events, and each parked process with its park site — so a
// hung or deadlocked run is diagnosable without rerunning it.
func renderPostMortem(out io.Writer, err error) {
	var re *sim.RunError
	if !errors.As(err, &re) {
		return
	}
	fmt.Fprintf(out, "post-mortem: %v at t=%v after %d events\n", re.Kind, re.Now, re.Fired)
	const maxListed = 16
	for i, p := range re.Parked {
		if i == maxListed {
			fmt.Fprintf(out, "  ... %d more parked process(es)\n", len(re.Parked)-i)
			break
		}
		if p.HasWake {
			fmt.Fprintf(out, "  parked %-24s at %-16s since t=%v (wake t=%v)\n", p.Name, p.Site, p.ParkedAt, p.WakeAt)
		} else {
			fmt.Fprintf(out, "  parked %-24s at %-16s since t=%v (no pending wake)\n", p.Name, p.Site, p.ParkedAt)
		}
	}
}
