// Command emurun runs a single benchmark with explicit parameters and
// prints its measurement plus the machine counters — the workhorse for
// exploring the model outside the fixed paper sweeps.
//
// Usage:
//
//	emurun -bench stream      [-machine hw|sim|fullspeed] [-nodelets N]
//	       [-threads N] [-elems N] [-strategy serial_spawn|...]
//	emurun -bench chase       [-elems N] [-block N] [-mode full_block_shuffle|...]
//	       [-threads N] [-seed S]
//	emurun -bench spmv        [-n N] [-layout local|1d|2d] [-grain G]
//	emurun -bench pingpong    [-threads N] [-iters N]
//	emurun -bench gups        [-elems N] [-updates N] [-threads N]
//
// Every benchmark accepts -faults/-fault-seed to run on a deterministically
// degraded machine (see internal/fault for the grammar):
//
//	emurun -bench pingpong -faults 'migstall=10us/100us'
//	emurun -bench stream -faults 'chan=4@2' -fault-seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"emuchick/internal/cilk"
	"emuchick/internal/fault"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "emurun:", err)
		os.Exit(1)
	}
}

func machineFor(name string, nodes int) (machine.Config, error) {
	switch name {
	case "hw", "hardware":
		if nodes > 1 {
			return machine.HardwareChickNodes(nodes), nil
		}
		return machine.HardwareChick(), nil
	case "sim", "simulator":
		return machine.SimMatched(), nil
	case "fullspeed", "design":
		if nodes <= 0 {
			nodes = 1
		}
		return machine.FullSpeed(nodes), nil
	default:
		return machine.Config{}, fmt.Errorf("unknown machine %q (hw, sim, fullspeed)", name)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("emurun", flag.ContinueOnError)
	bench := fs.String("bench", "stream", "benchmark: stream, chase, spmv, pingpong, gups")
	mach := fs.String("machine", "hw", "machine config: hw, sim, fullspeed")
	nodes := fs.Int("nodes", 1, "node cards (hw and fullspeed)")
	nodelets := fs.Int("nodelets", 8, "nodelets used by the kernel")
	threads := fs.Int("threads", 64, "worker threads")
	elems := fs.Int("elems", 4096, "elements (stream: per nodelet; chase/gups: total)")
	strategy := fs.String("strategy", "serial_remote_spawn", "spawn strategy (stream)")
	block := fs.Int("block", 64, "block size in elements (chase)")
	mode := fs.String("mode", "full_block_shuffle", "shuffle mode (chase)")
	seed := fs.Uint64("seed", 1, "workload seed")
	gridN := fs.Int("n", 32, "Laplacian grid size (spmv)")
	layout := fs.String("layout", "2d", "data layout: local, 1d, 2d (spmv)")
	grain := fs.Int("grain", 16, "elements per spawn (spmv)")
	iters := fs.Int("iters", 1000, "round trips per thread (pingpong)")
	updates := fs.Int("updates", 16384, "update count (gups)")
	trace := fs.Int("trace", 0, "print the first N machine operations of the run")
	faults := fs.String("faults", "", "fault plan, e.g. 'chan=4@2,migstall=10us/100us' (see internal/fault)")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for the plan's nodelet choices (0: plan default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := machineFor(*mach, *nodes)
	if err != nil {
		return err
	}
	if *trace > 0 {
		kernels.TraceNextSystem(out, *trace)
		defer kernels.TraceNextSystem(nil, 0)
	}

	// Ctrl-C interrupts the simulation instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runOpts := []kernels.RunOption{kernels.WithContext(ctx)}
	if *faults != "" {
		plan, err := fault.Parse(*faults, *faultSeed)
		if err != nil {
			return err
		}
		runOpts = append(runOpts, kernels.WithFaultPlan(plan))
	}

	var res metrics.Result
	switch *bench {
	case "stream":
		strat, err := cilk.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		res, err = kernels.StreamAdd(cfg, kernels.StreamConfig{
			ElemsPerNodelet: *elems, Nodelets: *nodelets, Threads: *threads, Strategy: strat,
		}, runOpts...)
		if err != nil {
			return err
		}
	case "chase":
		m, err := workload.ParseShuffleMode(*mode)
		if err != nil {
			return err
		}
		res, err = kernels.PointerChase(cfg, kernels.ChaseConfig{
			Elements: *elems, BlockSize: *block, Mode: m, Seed: *seed,
			Threads: *threads, Nodelets: *nodelets,
		}, runOpts...)
		if err != nil {
			return err
		}
	case "spmv":
		var l kernels.SpMVLayout
		switch *layout {
		case "local":
			l = kernels.SpMVLocal
		case "1d":
			l = kernels.SpMV1D
		case "2d":
			l = kernels.SpMV2D
		default:
			return fmt.Errorf("unknown layout %q", *layout)
		}
		res, err = kernels.SpMV(cfg, kernels.SpMVConfig{GridN: *gridN, Layout: l, GrainNNZ: *grain}, runOpts...)
		if err != nil {
			return err
		}
	case "pingpong":
		pp, err := kernels.PingPong(cfg, kernels.PingPongConfig{
			Threads: *threads, Iterations: *iters, NodeletA: 0, NodeletB: 1,
		}, runOpts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "machine        %s\n", cfg.Name)
		fmt.Fprintf(out, "migrations     %d\n", pp.Migrations)
		fmt.Fprintf(out, "elapsed        %v\n", pp.Elapsed)
		fmt.Fprintf(out, "rate           %.2f M migrations/s\n", pp.MigrationsPerSec/1e6)
		fmt.Fprintf(out, "mean latency   %v per migration per thread\n", pp.MeanLatency)
		return nil
	case "gups":
		res, err = kernels.GUPS(cfg, kernels.GUPSConfig{
			TableWords: *elems, Updates: *updates, Threads: *threads, Seed: *seed,
		}, runOpts...)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown benchmark %q", *bench)
	}

	fmt.Fprintf(out, "machine    %s\n", cfg.Name)
	fmt.Fprintf(out, "bytes      %d\n", res.Bytes)
	fmt.Fprintf(out, "elapsed    %v\n", res.Elapsed)
	fmt.Fprintf(out, "bandwidth  %.2f MB/s (%.4f GB/s)\n", res.MBps(), res.GBps())
	fmt.Fprintf(out, "peak       %.1f%% of machine word-traffic peak\n",
		100*res.BytesPerSec()/cfg.PeakMemoryBytesPerSec())
	return nil
}
