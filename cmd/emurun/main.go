// Command emurun runs a single benchmark with explicit parameters and
// prints its measurement plus the machine counters — the workhorse for
// exploring the model outside the fixed paper sweeps. It is a thin parser
// over the jobspec schema: the flags assemble a jobspec.Spec, the kernel
// registry resolves -bench by name, and jobspec.RunKernel executes it under
// the shared watchdog/retry policy.
//
// Usage:
//
//	emurun -bench stream      [-machine hw|sim|fullspeed] [-nodelets N]
//	       [-threads N] [-elems N] [-strategy serial_spawn|...]
//	emurun -bench chase       [-elems N] [-block N] [-mode full_block_shuffle|...]
//	       [-threads N] [-seed S]
//	emurun -bench spmv        [-n N] [-layout local|1d|2d] [-grain G]
//	emurun -bench pingpong    [-threads N] [-iters N]
//	emurun -bench gups        [-elems N] [-updates N] [-threads N]
//
// Every benchmark accepts -faults/-fault-seed to run on a deterministically
// degraded machine (see internal/fault for the grammar):
//
//	emurun -bench pingpong -faults 'migstall=10us/100us'
//	emurun -bench stream -faults 'chan=4@2' -fault-seed 7
//
// -cell-timeout arms a watchdog that kills a stuck simulation after the
// given wall-clock time and retries it -retries times; a run that dies in
// the engine (deadlock, event budget, watchdog) prints the structured
// post-mortem — engine time, fired events, every parked process with its
// park site. -checkpoint records the finished measurement in a write-ahead
// log; rerunning with -resume replays it without re-simulating.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"emuchick/internal/experiments"
	"emuchick/internal/jobspec"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "emurun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("emurun", flag.ContinueOnError)
	d := kernels.DefaultParams()
	bench := fs.String("bench", "stream", "benchmark: "+strings.Join(kernels.Names(), ", "))
	mach := fs.String("machine", "hw", "machine config: hw, sim, fullspeed")
	nodes := fs.Int("nodes", 1, "node cards (hw and fullspeed)")
	var p kernels.Params
	fs.IntVar(&p.Nodelets, "nodelets", d.Nodelets, "nodelets used by the kernel")
	fs.IntVar(&p.Threads, "threads", d.Threads, "worker threads")
	fs.IntVar(&p.Elems, "elems", d.Elems, "elements (stream: per nodelet; chase/gups: total)")
	fs.StringVar(&p.Strategy, "strategy", d.Strategy, "spawn strategy (stream)")
	fs.IntVar(&p.Block, "block", d.Block, "block size in elements (chase)")
	fs.StringVar(&p.Mode, "mode", d.Mode, "shuffle mode (chase)")
	fs.Uint64Var(&p.Seed, "seed", d.Seed, "workload seed")
	fs.IntVar(&p.GridN, "n", d.GridN, "Laplacian grid size (spmv)")
	fs.StringVar(&p.Layout, "layout", d.Layout, "data layout: local, 1d, 2d (spmv)")
	fs.IntVar(&p.Grain, "grain", d.Grain, "elements per spawn (spmv)")
	fs.IntVar(&p.Iters, "iters", d.Iters, "round trips per thread (pingpong)")
	fs.IntVar(&p.Updates, "updates", d.Updates, "update count (gups)")
	trace := fs.Int("trace", 0, "print the first N machine operations of the run")
	// The faults/checkpoint/QoS flags are the shared jobspec block, so their
	// grammar and defaults match emubench and emuvalidate exactly.
	shared := jobspec.FromFlags(fs, jobspec.GroupFaults|jobspec.GroupCheckpoint|jobspec.GroupQoS)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := shared.Spec()
	spec.Kernel = *bench
	spec.Machine = jobspec.Machine{Name: *mach, Nodes: *nodes}
	spec.Params = p
	spec.Parallel = 0 // single measurement: no sweep workers
	if err := spec.Validate(); err != nil {
		return err
	}
	k, cfg, _, err := spec.KernelPlan()
	if err != nil {
		return err
	}

	if *trace > 0 {
		kernels.TraceNextSystem(out, *trace)
		defer kernels.TraceNextSystem(nil, 0)
	}

	// Ctrl-C interrupts the simulation instead of killing the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The checkpoint stores the measurement vector, fingerprinted by the
	// jobspec content address so -resume refuses to replay a measurement
	// taken with different workload-shaping parameters.
	var ck *experiments.Checkpoint
	if shared.Checkpoint != "" {
		if !shared.Resume {
			if fi, err := os.Stat(shared.Checkpoint); err == nil && fi.Size() > 0 {
				return fmt.Errorf("checkpoint %s already holds records; pass -resume to replay it or delete the file", shared.Checkpoint)
			}
		}
		ck, err = experiments.OpenCheckpoint(shared.Checkpoint, jobspec.CheckpointID(spec.Kernel), spec.Fingerprint())
		if err != nil {
			return err
		}
		defer ck.Close()
		if m, ok := jobspec.ReplayMeasurement(ck, k); ok {
			fmt.Fprintf(out, "(replayed from checkpoint %s)\n", shared.Checkpoint)
			report(out, cfg, m)
			return nil
		}
	}

	m, attempts, err := jobspec.RunKernel(ctx, spec, func(attempt, attempts int) {
		fmt.Fprintf(out, "watchdog: attempt %d/%d killed after %v; retrying\n",
			attempt, attempts, shared.CellTimeout)
	})
	if err != nil {
		if ck != nil {
			cf := experiments.NewCellFailure(attempts, err)
			if rerr := ck.RecordFailure(cf); rerr != nil {
				return rerr
			}
		}
		renderPostMortem(out, err)
		return err
	}
	if ck != nil {
		if err := jobspec.RecordMeasurement(ck, m); err != nil {
			return err
		}
	}
	report(out, cfg, m)
	return nil
}

// report renders a measurement vector (fresh or replayed) in the kernel's
// native vocabulary: the migration block for pingpong, the bandwidth block
// for every byte-moving kernel.
func report(out io.Writer, cfg machine.Config, m kernels.Measurement) {
	if m.Kernel == "pingpong" {
		pp := m.PingPong()
		fmt.Fprintf(out, "machine        %s\n", cfg.Name)
		fmt.Fprintf(out, "migrations     %d\n", pp.Migrations)
		fmt.Fprintf(out, "elapsed        %v\n", pp.Elapsed)
		fmt.Fprintf(out, "rate           %.2f M migrations/s\n", pp.MigrationsPerSec/1e6)
		fmt.Fprintf(out, "mean latency   %v per migration per thread\n", pp.MeanLatency)
		return
	}
	res := m.Result()
	fmt.Fprintf(out, "machine    %s\n", cfg.Name)
	fmt.Fprintf(out, "bytes      %d\n", res.Bytes)
	fmt.Fprintf(out, "elapsed    %v\n", res.Elapsed)
	fmt.Fprintf(out, "bandwidth  %.2f MB/s (%.4f GB/s)\n", res.MBps(), res.GBps())
	fmt.Fprintf(out, "peak       %.1f%% of machine word-traffic peak\n",
		100*res.BytesPerSec()/cfg.PeakMemoryBytesPerSec())
}

// renderPostMortem prints the structured dump of a sim.RunError — engine
// time, fired events, and each parked process with its park site — so a
// hung or deadlocked run is diagnosable without rerunning it.
func renderPostMortem(out io.Writer, err error) {
	var re *sim.RunError
	if !errors.As(err, &re) {
		return
	}
	fmt.Fprintf(out, "post-mortem: %v at t=%v after %d events\n", re.Kind, re.Now, re.Fired)
	const maxListed = 16
	for i, p := range re.Parked {
		if i == maxListed {
			fmt.Fprintf(out, "  ... %d more parked process(es)\n", len(re.Parked)-i)
			break
		}
		if p.HasWake {
			fmt.Fprintf(out, "  parked %-24s at %-16s since t=%v (wake t=%v)\n", p.Name, p.Site, p.ParkedAt, p.WakeAt)
		} else {
			fmt.Fprintf(out, "  parked %-24s at %-16s since t=%v (no pending wake)\n", p.Name, p.Site, p.ParkedAt)
		}
	}
}
