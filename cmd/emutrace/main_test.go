package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceQuickFig6Chrome(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig6.json")
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig6", "-quick", "-trials", "1", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	info, err := validateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "chrome" {
		t.Fatalf("format = %q, want chrome", info.Format)
	}
	if info.Events == 0 || info.Migrations == 0 {
		t.Fatalf("trace has no events or migrations: %+v", info)
	}
	if info.Counters == 0 {
		t.Fatalf("trace has no counter samples: %+v", info)
	}
	if !strings.Contains(out.String(), "migrations") {
		t.Fatalf("summary missing migration line:\n%s", out.String())
	}

	// The written file must pass the standalone validator too.
	out.Reset()
	if err := run([]string{"-validate", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "valid chrome trace") {
		t.Fatalf("validator output: %s", out.String())
	}
}

func TestTraceJSONLAndRingLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig6.jsonl")
	var out bytes.Buffer
	// A tiny ring forces drops; the trace must still validate.
	if err := run([]string{"-fig", "fig6", "-quick", "-trials", "1",
		"-format", "jsonl", "-buf", "256", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	info, err := validateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "jsonl" {
		t.Fatalf("format = %q, want jsonl", info.Format)
	}
	if info.Events == 0 || info.Events > 256 {
		t.Fatalf("ring cap not honored: %d events", info.Events)
	}
	if !strings.Contains(out.String(), "dropped") {
		t.Fatalf("summary missing drop count:\n%s", out.String())
	}
}

func TestListAndBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig6") {
		t.Fatal("list output missing fig6")
	}
	if err := run([]string{"-fig", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-format", "yaml"}, &out); err == nil {
		t.Fatal("unknown format accepted")
	}
}
