// Command emutrace runs one experiment with the observability layer
// attached and writes the resulting event stream as a Chrome-trace JSON
// file (loadable in Perfetto or chrome://tracing) or as JSONL in the
// trace package's native schema.
//
// Usage:
//
//	emutrace [-fig fig6] [-quick] [-trials N] [-format chrome|jsonl]
//	         [-out file] [-sample dur] [-buf N] [-faults spec] [-fault-seed S]
//	emutrace -validate file
//	emutrace -list
//
// Tracing never perturbs the simulation: figures and counters are
// bit-identical with and without the observer, so a trace is a faithful
// view of the very run the experiment reports. After writing the file
// emutrace re-validates it and prints a per-nodelet migration summary
// from the in-memory aggregator.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"emuchick/internal/experiments"
	"emuchick/internal/fault"
	"emuchick/internal/report"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "emutrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("emutrace", flag.ContinueOnError)
	figArg := fs.String("fig", "fig6", "experiment id to run under the tracer")
	list := fs.Bool("list", false, "list experiment ids and exit")
	quick := fs.Bool("quick", false, "shrink workloads for a fast smoke run")
	trials := fs.Int("trials", 1, "trials per seeded data point (each trial adds a run to the trace)")
	outPath := fs.String("out", "", "trace output file (default: <fig>.trace.json or .jsonl)")
	format := fs.String("format", "chrome", "trace format: chrome (Perfetto-loadable) or jsonl")
	sample := fs.Duration("sample", 0, "gauge-sampling interval in simulated time (0: machine default; negative: disable)")
	buf := fs.Int("buf", 0, "ring-buffer capacity in events, keeps the most recent (0: default)")
	validate := fs.String("validate", "", "validate an existing trace file and exit")
	faults := fs.String("faults", "", "fault plan, e.g. 'migstall=10us/100us' (stall windows appear as fault_stall events)")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for the plan's nodelet choices (0: plan default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		tab := report.NewTable("id", "title")
		for _, e := range experiments.All() {
			tab.AddRow(e.ID, e.Title)
		}
		_, err := tab.WriteTo(out)
		return err
	}
	if *validate != "" {
		return validateFile(out, *validate)
	}
	if *format != "chrome" && *format != "jsonl" {
		return fmt.Errorf("unknown format %q (chrome, jsonl)", *format)
	}

	e, err := experiments.ByID(*figArg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	writer := trace.NewChromeWriter(*buf)
	agg := trace.NewAggregator(0)
	opts := []experiments.Option{
		experiments.WithTrials(*trials),
		experiments.WithObserver(trace.Tee(writer, agg)),
		experiments.WithContext(ctx),
	}
	if *quick {
		opts = append(opts, experiments.WithScale(experiments.QuickScale))
	}
	if *sample != 0 {
		// time.Duration is nanoseconds, sim.Time is picoseconds.
		opts = append(opts, experiments.WithSampleInterval(sim.Time(sample.Nanoseconds())*sim.Nanosecond))
	}
	if *faults != "" {
		plan, err := fault.Parse(*faults, *faultSeed)
		if err != nil {
			return err
		}
		opts = append(opts, experiments.WithFaultPlan(plan))
	}
	if *faultSeed != 0 {
		opts = append(opts, experiments.WithFaultSeed(*faultSeed))
	}

	start := time.Now()
	figs, err := e.Run(opts...)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}

	path := *outPath
	if path == "" {
		if *format == "jsonl" {
			path = e.ID + ".trace.jsonl"
		} else {
			path = e.ID + ".trace.json"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if *format == "jsonl" {
		err = writer.WriteJSONL(f)
	} else {
		err = writer.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	info, err := validateTrace(path)
	if err != nil {
		return fmt.Errorf("written trace failed validation: %w", err)
	}

	fmt.Fprintf(out, "experiment   %s — %s (%d figures, %.1fs wall)\n",
		e.ID, e.Title, len(figs), time.Since(start).Seconds())
	fmt.Fprintf(out, "trace        %s (%s: %d events, %d counter records, %d events + %d samples dropped)\n",
		path, info.Format, info.Events, info.Counters, writer.Dropped(), writer.DroppedSamples())
	fmt.Fprintf(out, "runs         %d simulated runs observed (clocks restart at zero; buckets accumulate)\n",
		agg.Runs())
	fmt.Fprintf(out, "migrations   %d total, peak %.2f M/s over a %v bucket\n",
		agg.TotalMigrations(), agg.PeakMigrationsPerSec()/1e6, agg.Bucket())
	fmt.Fprintf(out, "words        %d loaded/stored (%.1f MB of useful traffic)\n",
		agg.TotalWords(), float64(agg.TotalWords())*8/1e6)

	tab := report.NewTable("nodelet", "migrations out", "migrations in", "words", "peak waiters", "peak chan backlog")
	for nl := 0; nl < agg.Nodelets(); nl++ {
		var mout, min, words uint64
		for _, c := range agg.Cells(nl) {
			mout += c.MigrationsOut
			min += c.MigrationsIn
			words += c.Words
		}
		tab.AddRow(fmt.Sprint(nl), fmt.Sprint(mout), fmt.Sprint(min), fmt.Sprint(words),
			fmt.Sprint(agg.PeakContextWaiters(nl)), fmt.Sprint(agg.PeakChannelBacklog(nl)))
	}
	_, err = tab.WriteTo(out)
	return err
}

// validateTrace sniffs the file's format (a Chrome trace is a JSON array,
// the native schema is JSONL) and runs the matching validator.
func validateTrace(path string) (trace.TraceInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return trace.TraceInfo{}, err
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
		return trace.ValidateChrome(bytes.NewReader(data))
	}
	return trace.ValidateJSONL(bytes.NewReader(data))
}

func validateFile(out io.Writer, path string) error {
	info, err := validateTrace(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: valid %s trace — %d events (%d migrations), %d counter records, %d metadata records\n",
		path, info.Format, info.Events, info.Migrations, info.Counters, info.Metadata)
	if !info.Complete() {
		fmt.Fprintf(out, "%s: INCOMPLETE — ring dropped %d events and %d samples (rerun with a larger -buf)\n",
			path, info.DroppedEvents, info.DroppedSamples)
	}
	return nil
}
