// Command emubench regenerates the paper's figures and tables.
//
// Usage:
//
//	emubench [-fig all|fig4,fig6,...] [-format table|csv|chart|all]
//	         [-trials N] [-quick] [-list] [-parallel N]
//	         [-faults spec] [-fault-seed S]
//	         [-checkpoint path [-resume]] [-cell-timeout D] [-retries N]
//	         [-cpuprofile file] [-memprofile file]
//
// -checkpoint appends every completed sweep cell to a write-ahead log as it
// finishes; a run killed mid-sweep (SIGINT included) can be rerun with
// -resume to replay finished cells and produce figures byte-identical to an
// uninterrupted run. -cell-timeout arms a per-cell watchdog: a stuck
// simulation is killed, retried -retries times, then recorded as a failure
// and left as a hole in a figure marked incomplete.
//
// -faults injects a deterministic fault plan into every simulated machine
// (see internal/fault for the grammar), e.g.
//
//	emubench -fig fig5 -faults 'chan=4@2' -fault-seed 7
//	emubench -fig degradation-chase -faults 'migstall=10us/100us'
//
// Each experiment produces the same series the corresponding paper artifact
// plots; -format chart renders an ASCII approximation of the figure so the
// shape (plateaus, dips, crossings) is visible in a terminal, and -format
// csv emits data suitable for real plotting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"emuchick/internal/experiments"
	"emuchick/internal/jobspec"
	"emuchick/internal/metrics"
	"emuchick/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "emubench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("emubench", flag.ContinueOnError)
	figArg := fs.String("fig", "all", "comma-separated experiment ids, or 'all'")
	format := fs.String("format", "table", "output format: table, csv, json, chart, or all")
	list := fs.Bool("list", false, "list experiments and exit")
	outdir := fs.String("outdir", "", "also write each figure as <outdir>/<figure-id>.json")
	// The sweep/faults/checkpoint/QoS flags are the shared jobspec block, so
	// their grammar and defaults match emurun and emuvalidate exactly.
	shared := jobspec.FromFlags(fs, jobspec.GroupSweep|jobspec.GroupFaults|jobspec.GroupCheckpoint|jobspec.GroupQoS)
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // materialize the final allocation state
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}

	if *list {
		tab := report.NewTable("id", "title")
		for _, e := range experiments.All() {
			tab.AddRow(e.ID, e.Title)
		}
		_, err := tab.WriteTo(out)
		return err
	}

	var ids []string
	if *figArg == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*figArg, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	// Ctrl-C cancels cleanly: in-flight simulations notice the context and
	// the profile/outdir deferrals above still run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var incomplete []string
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		spec := shared.Spec()
		spec.Experiment = id
		if err := spec.Validate(); err != nil {
			return err
		}
		opts, err := spec.Options()
		if err != nil {
			return err
		}
		if shared.Checkpoint != "" {
			if !shared.Resume {
				if err := refuseStaleCheckpoint(experiments.CheckpointPath(shared.Checkpoint, id)); err != nil {
					return err
				}
			}
			opts = append(opts, experiments.WithCheckpoint(shared.Checkpoint))
		}
		opts = append(opts, experiments.WithContext(ctx))
		start := time.Now()
		figs, err := e.Run(opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(out, "== %s — %s (%.1fs)\n", e.ID, e.Title, time.Since(start).Seconds())
		fmt.Fprintf(out, "   paper: %s\n\n", e.Paper)
		for _, fig := range figs {
			if err := render(out, fig, *format); err != nil {
				return err
			}
			if *outdir != "" {
				if err := writeFigureJSON(*outdir, fig); err != nil {
					return err
				}
			}
			if fig.Incomplete {
				incomplete = append(incomplete, fig.ID)
			}
			fmt.Fprintln(out)
		}
	}
	if len(incomplete) > 0 {
		fmt.Fprintf(out, "WARNING: incomplete figures (failed cells left NaN holes): %s\n",
			strings.Join(incomplete, ", "))
		if shared.Checkpoint != "" {
			fmt.Fprintln(out, "         per-cell failure records (parked procs, engine state) are in the checkpoint log")
		}
	}
	return nil
}

// refuseStaleCheckpoint guards against silently reusing an old log: a
// non-empty checkpoint file is only consumed under an explicit -resume.
func refuseStaleCheckpoint(path string) error {
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		return nil
	}
	return fmt.Errorf("checkpoint %s already holds records; pass -resume to continue that run or delete the file", path)
}

// writeFigureJSON archives one figure under dir as <id>.json.
func writeFigureJSON(dir string, fig *metrics.Figure) error {
	f, err := os.Create(filepath.Join(dir, fig.ID+".json"))
	if err != nil {
		return err
	}
	if err := report.FigureJSON(f, fig); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func render(out io.Writer, fig *metrics.Figure, format string) error {
	switch format {
	case "table":
		fmt.Fprintf(out, "-- %s: %s (%s)\n", fig.ID, fig.Title, fig.YLabel)
		_, err := report.FigureTable(fig).WriteTo(out)
		return err
	case "csv":
		return report.FigureCSV(out, fig)
	case "json":
		return report.FigureJSON(out, fig)
	case "chart":
		_, err := fmt.Fprint(out, report.AsciiChart(fig, 64, 16))
		return err
	case "all":
		for _, f := range []string{"table", "chart", "csv"} {
			if err := render(out, fig, f); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
