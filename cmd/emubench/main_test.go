package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"fig4", "fig8", "fig11", "stream-anchors", "ablation-grain"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunSingleFigureTable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "fig4", "-quick", "-trials", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "serial_spawn") || !strings.Contains(out, "recursive_spawn") {
		t.Fatalf("fig4 table missing series:\n%s", out)
	}
	if !strings.Contains(out, "paper:") {
		t.Fatal("paper expectation line missing")
	}
}

func TestRunMultipleFiguresCSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "migration-anchors,stream-anchors", "-quick", "-trials", "1", "-format", "csv"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "figure,series,x,mean") {
		t.Fatal("csv header missing")
	}
	if !strings.Contains(out, "migration-anchors,measured") {
		t.Fatalf("csv rows missing:\n%s", out)
	}
}

func TestRunChartAndJSON(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "fig4", "-quick", "-trials", "1", "-format", "chart"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "o = serial_spawn") {
		t.Fatalf("chart legend missing:\n%s", b.String())
	}
	b.Reset()
	if err := run([]string{"-fig", "fig4", "-quick", "-trials", "1", "-format", "json"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"id\": \"fig4\"") {
		t.Fatal("json output missing")
	}
}

func TestOutdirArchivesJSON(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "fig4", "-quick", "-trials", "1", "-outdir", dir}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"id\": \"fig4\"") {
		t.Fatalf("archived json malformed:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "nope"}, &b); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-fig", "fig4", "-quick", "-format", "bogus"}, &b); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Fatal("bad flag accepted")
	}
}
