// Command emulint is the repo's contract multichecker: six analyzers that
// turn the reproduction's determinism, hot-path, no-handoff, park-site,
// fingerprint, and observer-guard promises into compile-time checks (see
// DESIGN.md section 12).
//
// Usage:
//
//	emulint [-tests] [-list] [packages]
//
// Packages default to ./... and accept the go tool's pattern syntax. The
// exit status is 0 when every package is clean, 1 when there are findings,
// and 2 on an operational error. A finding is suppressed, one line and one
// analyzer at a time, with //lint:allow <analyzer> <reason>.
//
// emulint runs standalone (it loads and type-checks packages from source
// itself); the container this repo builds in has no module proxy, so the
// go vet -vettool unitchecker protocol — which requires decoding compiler
// export data via x/tools — is intentionally not implemented.
package main

import (
	"flag"
	"fmt"
	"os"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut *os.File) int {
	fs := flag.NewFlagSet("emulint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	tests := fs.Bool("tests", false, "also analyze each package's in-package _test.go files")
	list := fs.Bool("list", false, "list the suite's analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	diags, err := suite.Lint(analysis.LoadConfig{Tests: *tests}, fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, "emulint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "emulint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
