// Command emulint is the repo's contract multichecker: seven analyzers
// (plus the funcfacts dependency they share) that turn the reproduction's
// determinism, hot-path, no-handoff, park-site, seed-flow, fingerprint,
// and observer-guard promises into compile-time checks (see DESIGN.md
// sections 12 and 17).
//
// Usage:
//
//	emulint [-tests] [-list] [-json] [-v] [packages]
//
// Packages default to ./... and accept the go tool's pattern syntax. The
// exit status is 0 when every package is clean, 1 when there are findings,
// and 2 on an operational error. A finding is suppressed, one line and one
// analyzer at a time, with //lint:allow <analyzer> <reason>.
//
// -json emits every diagnostic — suppressed ones included, marked — as a
// JSON array on stdout, for CI annotation and tooling; the record schema
// is locked by TestJSONSchema. -v prints per-analyzer wall-clock cost to
// stderr after the run.
//
// emulint runs standalone (it loads and type-checks packages from source
// itself); the container this repo builds in has no module proxy, so the
// go vet -vettool unitchecker protocol — which requires decoding compiler
// export data via x/tools — is intentionally not implemented.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"emuchick/internal/analysis"
	"emuchick/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the machine-readable form of one diagnostic. The field
// set and JSON names are a stable contract (TestJSONSchema locks them);
// add fields, never rename or remove.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func toJSON(diags []analysis.Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
	}
	return out
}

func run(args []string, out, errOut *os.File) int {
	fs := flag.NewFlagSet("emulint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	tests := fs.Bool("tests", false, "also analyze each package's in-package _test.go files")
	list := fs.Bool("list", false, "list the suite's analyzers and exit")
	asJSON := fs.Bool("json", false, "emit all diagnostics (suppressed included) as a JSON array on stdout")
	verbose := fs.Bool("v", false, "report per-analyzer timing on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	res, err := suite.Run(analysis.LoadConfig{Tests: *tests}, fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, "emulint:", err)
		return 2
	}
	findings := res.Findings()
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toJSON(res.Diagnostics)); err != nil {
			fmt.Fprintln(errOut, "emulint:", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintln(out, d)
		}
	}
	if *verbose {
		fmt.Fprintln(errOut, "emulint: analyzer timing:")
		for _, t := range res.Timing {
			fmt.Fprintf(errOut, "  %-15s %10v  %3d pkg(s)\n", t.Name, t.Duration.Round(1000), t.Packages)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "emulint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
