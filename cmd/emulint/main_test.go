package main

import (
	"encoding/json"
	"go/token"
	"reflect"
	"testing"

	"emuchick/internal/analysis"
)

// TestJSONSchema locks the -json record schema. CI annotation scripts and
// editor integrations parse these exact keys; a failure here means a
// breaking change to the machine-readable output. Add fields if needed —
// never rename or remove one.
func TestJSONSchema(t *testing.T) {
	rec := jsonDiagnostic{
		File:       "internal/sim/engine.go",
		Line:       42,
		Col:        7,
		Analyzer:   "hotpathalloc",
		Message:    "hot path: make allocates",
		Suppressed: true,
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"file":"internal/sim/engine.go","line":42,"col":7,` +
		`"analyzer":"hotpathalloc","message":"hot path: make allocates","suppressed":true}`
	if string(blob) != want {
		t.Errorf("serialized record changed:\n got %s\nwant %s", blob, want)
	}

	// The key set must stay exactly these six, independent of field order.
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	wantKeys := map[string]bool{
		"file": true, "line": true, "col": true,
		"analyzer": true, "message": true, "suppressed": true,
	}
	for k := range m {
		if !wantKeys[k] {
			t.Errorf("unexpected key %q in JSON record", k)
		}
		delete(wantKeys, k)
	}
	for k := range wantKeys {
		t.Errorf("missing key %q in JSON record", k)
	}
}

// TestToJSON checks the Diagnostic → record mapping field by field,
// suppressed diagnostics included (that is the point of -json: the full
// picture, with suppression marked rather than filtered).
func TestToJSON(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "a.go", Line: 3, Column: 9},
			Analyzer: "nohandoff",
			Message:  "no-handoff path: channel send can block the goroutine",
		},
		{
			Pos:        token.Position{Filename: "b.go", Line: 8, Column: 1},
			Analyzer:   "seedflow",
			Message:    "seed derives from package-level variable counter",
			Suppressed: true,
		},
	}
	got := toJSON(diags)
	want := []jsonDiagnostic{
		{File: "a.go", Line: 3, Col: 9, Analyzer: "nohandoff",
			Message: "no-handoff path: channel send can block the goroutine"},
		{File: "b.go", Line: 8, Col: 1, Analyzer: "seedflow",
			Message: "seed derives from package-level variable counter", Suppressed: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("toJSON mismatch:\n got %+v\nwant %+v", got, want)
	}
}
