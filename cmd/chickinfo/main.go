// Command chickinfo prints the machine configurations the reproduction
// models, with the derived peak rates that anchor the calibration — the
// quickest way to check what each preset assumes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"emuchick/internal/machine"
	"emuchick/internal/report"
	"emuchick/internal/xeon"
)

func main() {
	fs := flag.NewFlagSet("chickinfo", flag.ContinueOnError)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := info(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chickinfo:", err)
		os.Exit(1)
	}
}

func info(w io.Writer) error {
	emuTab := report.NewTable("config", "nodes", "nodelets", "GCs/nl", "thr/GC",
		"core MHz", "ns/word", "mem lat", "mig/s (M)", "mig lat", "peak GB/s")
	for _, cfg := range []machine.Config{
		machine.HardwareChick(),
		machine.SimMatched(),
		machine.FullSpeed(1),
		machine.FullSpeed(8),
	} {
		emuTab.AddRow(
			cfg.Name,
			fmt.Sprint(cfg.Nodes),
			fmt.Sprint(cfg.TotalNodelets()),
			fmt.Sprint(cfg.GCsPerNodelet),
			fmt.Sprint(cfg.ThreadsPerGC),
			fmt.Sprintf("%d", cfg.CoreHz/1e6),
			fmt.Sprintf("%.1f", cfg.WordAccessTime.Seconds()*1e9),
			cfg.MemLatency.String(),
			fmt.Sprintf("%.0f", cfg.MigrationsPerSec/1e6),
			cfg.MigrationLatency.String(),
			fmt.Sprintf("%.2f", cfg.PeakMemoryBytesPerSec()/1e9),
		)
	}
	fmt.Fprintln(w, "Emu machine models (see DESIGN.md section 4 for calibration):")
	if _, err := emuTab.WriteTo(w); err != nil {
		return err
	}

	fmt.Fprintln(w)
	cpuTab := report.NewTable("config", "cores", "HW threads", "GHz",
		"L2 KiB", "L3 MiB", "channels", "GB/s/ch", "peak GB/s")
	for _, cfg := range []xeon.Config{xeon.SandyBridgeXeon(), xeon.HaswellXeon()} {
		cpuTab.AddRow(
			cfg.Name,
			fmt.Sprint(cfg.Cores),
			fmt.Sprint(cfg.HardwareThreads()),
			fmt.Sprintf("%.1f", float64(cfg.CoreHz)/1e9),
			fmt.Sprint(cfg.L2Bytes>>10),
			fmt.Sprint(cfg.L3Bytes>>20),
			fmt.Sprint(cfg.Channels),
			fmt.Sprintf("%.1f", cfg.ChannelBytesPerSec/1e9),
			fmt.Sprintf("%.1f", cfg.PeakMemoryBytesPerSec()/1e9),
		)
	}
	fmt.Fprintln(w, "Xeon comparison models:")
	if _, err := cpuTab.WriteTo(w); err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Counter definitions (per nodelet, as in the vendor simulator):")
	defs := report.NewTable("counter", "meaning")
	defs.AddRow("LocalSpawns", "threads created here by a resident parent")
	defs.AddRow("RemoteSpawns", "threads created here by a remote parent (remote spawn)")
	defs.AddRow("MigrationsIn/Out", "thread contexts arriving at / leaving this nodelet")
	defs.AddRow("LocalReads", "8-byte word reads served by this nodelet's channel")
	defs.AddRow("LocalWrites", "8-byte word writes from resident threads")
	defs.AddRow("RemoteStores", "posted stores arriving from other nodelets")
	defs.AddRow("Atomics", "memory-side atomic operations served here")
	defs.AddRow("ComputeCycles", "non-memory core cycles charged here")
	defs.AddRow("ServiceCalls", "OS requests forwarded to the node's stationary core")
	_, err := defs.WriteTo(w)
	return err
}
