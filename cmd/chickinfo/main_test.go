package main

import (
	"strings"
	"testing"
)

func TestInfoOutput(t *testing.T) {
	var b strings.Builder
	if err := info(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"emu-chick-hw",
		"emu-sim-matched",
		"emu-fullspeed-8node",
		"xeon-e5-2670-sandybridge",
		"xeon-e7-4850v3-haswell",
		"MigrationsIn/Out",
		"ServiceCalls",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q", want)
		}
	}
	// The Sandy Bridge peak must render as the paper's 51.2 GB/s.
	if !strings.Contains(out, "51.2") {
		t.Error("51.2 GB/s nominal missing")
	}
}
