// Command emuvalidate runs the reproduction scorecard: every checkable
// claim the paper makes, executed against the models and judged
// pass/fail with the measured numbers. It exits non-zero if any claim
// fails, so it doubles as a regression gate for the calibration.
//
// Usage:
//
//	emuvalidate [-quick] [-trials N] [-claim id] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"emuchick/internal/claims"
	"emuchick/internal/experiments"
)

func main() {
	ok, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emuvalidate:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("emuvalidate", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink workloads for a fast smoke run")
	trials := fs.Int("trials", 0, "trials per seeded data point")
	claimID := fs.String("claim", "", "check a single claim by id")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker count for independent simulations (results are identical at any setting)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	opts := experiments.Options{Quick: *quick, Trials: *trials, Parallel: *parallel}

	list := claims.All()
	if *claimID != "" {
		c, err := claims.ByID(*claimID)
		if err != nil {
			return false, err
		}
		list = []claims.Claim{c}
	}

	allPass := true
	fmt.Fprintf(out, "Reproduction scorecard (%d claims", len(list))
	if *quick {
		fmt.Fprint(out, ", quick scale")
	}
	fmt.Fprintln(out, "):")
	for _, c := range list {
		start := time.Now()
		v, err := c.Check(opts)
		if err != nil {
			return false, fmt.Errorf("%s: %w", c.ID, err)
		}
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
			allPass = false
		}
		fmt.Fprintf(out, "\n[%s] %-18s (%s, %.1fs)\n", status, c.ID, c.Section, time.Since(start).Seconds())
		fmt.Fprintf(out, "  paper:    %s\n", c.Statement)
		fmt.Fprintf(out, "  measured: %s\n", v.Detail)
	}
	fmt.Fprintln(out)
	if allPass {
		fmt.Fprintln(out, "All claims reproduced.")
	} else {
		fmt.Fprintln(out, "Some claims FAILED.")
	}
	return allPass, nil
}
