// Command emuvalidate runs the reproduction scorecard: every checkable
// claim the paper makes, executed against the models and judged
// pass/fail with the measured numbers. It exits non-zero if any claim
// fails, so it doubles as a regression gate for the calibration.
//
// Usage:
//
//	emuvalidate [-quick] [-trials N] [-claim id] [-parallel N]
//	            [-deadline D] [-checkpoint dir [-resume]]
//	            [-cell-timeout D] [-retries N] [-lint]
//
// -deadline bounds the whole scorecard: once it passes, no further claims
// are launched — the remaining ones print as SKIP and the run exits
// non-zero, instead of running open-ended. -checkpoint (a directory path
// keeps one log per experiment) makes the claims' sweeps resumable, and
// -cell-timeout arms the per-cell watchdog, exactly as in emubench.
// -lint appends a scorecard row that runs the cmd/emulint analyzer suite
// over the whole module and passes only when it is clean; -claim lint runs
// just that row.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"emuchick/internal/claims"
	"emuchick/internal/experiments"
	"emuchick/internal/jobspec"
)

func main() {
	ok, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emuvalidate:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("emuvalidate", flag.ContinueOnError)
	claimID := fs.String("claim", "", "check a single claim by id")
	deadline := fs.Duration("deadline", 0, "stop launching new claims after this much wall-clock time; remaining claims are marked SKIP and the exit code is non-zero (0 disables)")
	// The sweep/checkpoint/QoS flags are the shared jobspec block, so their
	// grammar and defaults match emubench and emurun exactly.
	shared := jobspec.FromFlags(fs, jobspec.GroupSweep|jobspec.GroupCheckpoint|jobspec.GroupQoS)
	lint := fs.Bool("lint", false, "append the emulint static-analysis claim (the analyzer suite must find nothing)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if shared.Checkpoint != "" && !shared.Resume {
		if err := refuseStaleCheckpoints(shared.Checkpoint); err != nil {
			return false, err
		}
	}
	// Ctrl-C aborts in-flight simulations; with -checkpoint the logs stay
	// valid and a -resume run replays every finished cell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	specOpts, err := shared.Spec().Options()
	if err != nil {
		return false, err
	}
	if shared.Checkpoint != "" {
		specOpts = append(specOpts, experiments.WithCheckpoint(shared.Checkpoint))
	}
	specOpts = append(specOpts, experiments.WithContext(ctx))
	opts := experiments.ApplyOptions(specOpts...)
	quick := shared.Quick

	list := claims.All()
	if *lint {
		list = append(list, claims.Lint())
	}
	if *claimID != "" {
		c, err := claims.ByID(*claimID)
		if *claimID == claims.Lint().ID {
			c, err = claims.Lint(), nil
		}
		if err != nil {
			return false, err
		}
		list = []claims.Claim{c}
	}

	allPass := true
	skipped := 0
	started := time.Now()
	fmt.Fprintf(out, "Reproduction scorecard (%d claims", len(list))
	if quick {
		fmt.Fprint(out, ", quick scale")
	}
	fmt.Fprintln(out, "):")
	for _, c := range list {
		if *deadline > 0 && time.Since(started) > *deadline {
			skipped++
			fmt.Fprintf(out, "\n[SKIP] %-18s (%s)\n", c.ID, c.Section)
			fmt.Fprintf(out, "  paper:    %s\n", c.Statement)
			fmt.Fprintf(out, "  measured: not run — %v deadline passed after %.1fs\n", *deadline, time.Since(started).Seconds())
			continue
		}
		start := time.Now()
		v, err := c.Check(opts)
		if err != nil {
			return false, fmt.Errorf("%s: %w", c.ID, err)
		}
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
			allPass = false
		}
		fmt.Fprintf(out, "\n[%s] %-18s (%s, %.1fs)\n", status, c.ID, c.Section, time.Since(start).Seconds())
		fmt.Fprintf(out, "  paper:    %s\n", c.Statement)
		fmt.Fprintf(out, "  measured: %s\n", v.Detail)
	}
	fmt.Fprintln(out)
	switch {
	case skipped > 0:
		fmt.Fprintf(out, "Deadline exceeded: %d claim(s) SKIPPED.\n", skipped)
		return false, nil
	case allPass:
		fmt.Fprintln(out, "All claims reproduced.")
	default:
		fmt.Fprintln(out, "Some claims FAILED.")
	}
	return allPass, nil
}

// refuseStaleCheckpoints guards a non-resume run against silently consuming
// an earlier run's logs: with a directory argument every per-experiment log
// inside it counts, with a file argument the file itself does.
func refuseStaleCheckpoints(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return nil // nothing there yet
	}
	if !fi.IsDir() {
		if fi.Size() > 0 {
			return fmt.Errorf("checkpoint %s already holds records; pass -resume to continue that run or delete the file", path)
		}
		return nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if info, err := ent.Info(); err == nil && !ent.IsDir() && info.Size() > 0 {
			return fmt.Errorf("checkpoint directory %s already holds records (%s); pass -resume to continue that run or delete them", path, ent.Name())
		}
	}
	return nil
}
