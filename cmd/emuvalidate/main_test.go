package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleClaim(t *testing.T) {
	var b strings.Builder
	ok, err := run([]string{"-quick", "-trials", "1", "-claim", "migration-rates"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("migration-rates failed:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "[PASS] migration-rates") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "paper:") || !strings.Contains(out, "measured:") {
		t.Fatal("scorecard lines missing")
	}
}

func TestBadArgs(t *testing.T) {
	var b strings.Builder
	if _, err := run([]string{"-claim", "nope"}, &b); err == nil {
		t.Fatal("unknown claim accepted")
	}
	if _, err := run([]string{"-bogus"}, &b); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestDeadlineSkipsRemainingClaims: a deadline that has already passed when
// the scorecard starts must skip every claim, mark them SKIP, and report a
// non-zero ("not ok") result rather than running open-ended.
func TestDeadlineSkipsRemainingClaims(t *testing.T) {
	var b strings.Builder
	ok, err := run([]string{"-quick", "-trials", "1", "-deadline", "1ns"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("deadline-skipped scorecard reported success")
	}
	out := b.String()
	if !strings.Contains(out, "[SKIP]") {
		t.Fatalf("no SKIP lines in output:\n%s", out)
	}
	if strings.Contains(out, "[PASS]") || strings.Contains(out, "[FAIL]") {
		t.Fatalf("claims ran despite an expired deadline:\n%s", out)
	}
	if !strings.Contains(out, "Deadline exceeded") {
		t.Fatalf("missing deadline summary:\n%s", out)
	}
}

// TestStaleCheckpointRefusedWithoutResume: pointing -checkpoint at a
// directory holding earlier records without -resume must be refused.
func TestStaleCheckpointRefusedWithoutResume(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig4.ckpt"), []byte(`{"type":"header"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := run([]string{"-quick", "-checkpoint", dir}, &b); err == nil {
		t.Fatal("stale checkpoint directory accepted without -resume")
	} else if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("refusal does not mention -resume: %v", err)
	}
}
