package main

import (
	"strings"
	"testing"
)

func TestSingleClaim(t *testing.T) {
	var b strings.Builder
	ok, err := run([]string{"-quick", "-trials", "1", "-claim", "migration-rates"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("migration-rates failed:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "[PASS] migration-rates") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "paper:") || !strings.Contains(out, "measured:") {
		t.Fatal("scorecard lines missing")
	}
}

func TestBadArgs(t *testing.T) {
	var b strings.Builder
	if _, err := run([]string{"-claim", "nope"}, &b); err == nil {
		t.Fatal("unknown claim accepted")
	}
	if _, err := run([]string{"-bogus"}, &b); err == nil {
		t.Fatal("bad flag accepted")
	}
}
