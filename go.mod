module emuchick

go 1.22
