package emuchick

// The observability layer's central contract: attaching an observer never
// perturbs the simulation. These tests pin it at both layers — a full
// experiment's figures must be byte-identical with and without a tracer,
// and a machine-level run must produce the same elapsed time and the same
// per-nodelet counters while an observer watches every event.

import (
	"bytes"
	"reflect"
	"testing"

	"emuchick/internal/experiments"
	"emuchick/internal/machine"
	"emuchick/internal/report"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

func fig4Figures(t *testing.T, opts ...experiments.Option) []byte {
	t.Helper()
	e, err := experiments.ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.Run(append([]experiments.Option{
		experiments.WithScale(experiments.QuickScale), experiments.WithTrials(1),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, fig := range figs {
		if err := report.FigureJSON(&buf, fig); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestTracedFiguresBitIdentical is the golden test: a traced fig4 run must
// produce byte-for-byte the same figures as an untraced one.
func TestTracedFiguresBitIdentical(t *testing.T) {
	base := fig4Figures(t)

	w := NewChromeWriter(1 << 14)
	agg := NewTraceAggregator(0)
	traced := fig4Figures(t, WithObserver(TeeObservers(w, agg)))

	if !bytes.Equal(base, traced) {
		t.Fatalf("traced figures differ from untraced:\nuntraced: %s\ntraced:   %s", base, traced)
	}
	// The tracer must actually have observed the runs it didn't perturb.
	if w.Len() == 0 || w.Runs() == 0 {
		t.Fatalf("observer saw nothing: %d events over %d runs", w.Len(), w.Runs())
	}
	if agg.TotalWords() == 0 {
		t.Fatal("aggregator accumulated no memory traffic")
	}
}

// tracedChase runs one migration-heavy kernel on a fresh machine and
// returns its elapsed time and end-of-run counters.
func tracedChase(t *testing.T, obs Observer) (Time, []machine.NodeletCounters) {
	t.Helper()
	sys := NewSystem(HardwareChick())
	if obs != nil {
		sys.Attach(obs)
		sys.SampleEvery(100 * sim.Nanosecond)
	}
	arr := sys.Mem.AllocStriped(1 << 10)
	elapsed, err := sys.Run(func(th *Thread) {
		SpawnWorkers(th, 8, 32, RecursiveRemoteSpawn, func(w *Thread, id int) {
			for i := id; i < arr.Len(); i += 32 {
				w.Store(arr.At(i), w.Load(arr.At(i))+1)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return elapsed, sys.Counters.Snapshot()
}

// TestTracedCountersAndTimeIdentical pins the machine layer: elapsed time
// and every per-nodelet counter match with and without an observer, even
// with gauge sampling at a deliberately aggressive interval.
func TestTracedCountersAndTimeIdentical(t *testing.T) {
	baseElapsed, baseCounters := tracedChase(t, nil)

	var events, samples int
	obs := trace.FuncObserver{
		OnEvent:  func(trace.Event) { events++ },
		OnSample: func(trace.Sample) { samples++ },
	}
	tracedElapsed, tracedCounters := tracedChase(t, obs)

	if baseElapsed != tracedElapsed {
		t.Fatalf("observer moved simulated time: %v vs %v", baseElapsed, tracedElapsed)
	}
	if !reflect.DeepEqual(baseCounters, tracedCounters) {
		t.Fatalf("observer changed counters:\nuntraced: %+v\ntraced:   %+v", baseCounters, tracedCounters)
	}
	if events == 0 || samples == 0 {
		t.Fatalf("observer saw %d events and %d samples, want both > 0", events, samples)
	}
}

// TestUntracedOptionsAllocationFree guards the fast path feeding the
// kernels: with nothing to forward, KernelOptions must return a nil slice
// without allocating.
func TestUntracedOptionsAllocationFree(t *testing.T) {
	o := experiments.ApplyOptions(experiments.WithTrials(3))
	if ks := o.KernelOptions(); ks != nil {
		t.Fatalf("untraced options produced %d kernel options, want none", len(ks))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if (experiments.Options{Quick: true}).KernelOptions() != nil {
			t.Fatal("unexpected kernel options")
		}
	})
	if allocs != 0 {
		t.Fatalf("KernelOptions allocates %.1f times on the untraced path", allocs)
	}
}
