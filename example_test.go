package emuchick_test

import (
	"fmt"
	"log"

	"emuchick"
)

// The simulation is deterministic, so these examples assert exact output.

func ExampleNewSystem() {
	sys := emuchick.NewSystem(emuchick.HardwareChick())
	arr := sys.Mem.AllocStriped(16) // word i lives on nodelet i mod 8
	for i := 0; i < 16; i++ {
		sys.Mem.Write(arr.At(i), uint64(i))
	}
	var sum uint64
	_, err := sys.Run(func(t *emuchick.Thread) {
		for i := 0; i < 16; i++ {
			sum += t.Load(arr.At(i)) // every remote word migrates the thread
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum:", sum)
	fmt.Println("migrations:", sys.Counters.TotalMigrations())
	// Output:
	// sum: 120
	// migrations: 15
}

func ExampleRunPingPong() {
	res, err := emuchick.RunPingPong(emuchick.HardwareChick(), emuchick.PingPongConfig{
		Threads: 64, Iterations: 500, NodeletA: 0, NodeletB: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware migration engine: %.1f M migrations/s\n", res.MigrationsPerSec/1e6)
	// Output:
	// hardware migration engine: 9.0 M migrations/s
}

func ExampleSpawnWorkers() {
	sys := emuchick.NewSystem(emuchick.HardwareChick())
	nodelets := make([]int, 8)
	_, err := sys.Run(func(t *emuchick.Thread) {
		emuchick.SpawnWorkers(t, 8, 8, emuchick.SerialRemoteSpawn,
			func(w *emuchick.Thread, id int) {
				nodelets[id] = w.Nodelet()
			})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("worker home nodelets:", nodelets)
	// Output:
	// worker home nodelets: [0 1 2 3 4 5 6 7]
}

func ExampleRunSpMV() {
	// Fig. 9a's point: the 2D layout never migrates.
	res, err := emuchick.RunSpMV(emuchick.HardwareChick(), emuchick.SpMVConfig{
		GridN: 16, Layout: emuchick.SpMV2D, GrainNNZ: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", res.Bytes > 0)
	// Output:
	// verified: true
}
