package emuchick

import "testing"

func TestFacadeQuickstart(t *testing.T) {
	sys := NewSystem(HardwareChick())
	arr := sys.Mem.AllocStriped(64)
	for i := 0; i < 64; i++ {
		sys.Mem.Write(arr.At(i), uint64(i))
	}
	var sum uint64
	elapsed, err := sys.Run(func(th *Thread) {
		for i := 0; i < 64; i++ {
			sum += th.Load(arr.At(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 64*63/2 {
		t.Fatalf("sum = %d", sum)
	}
	if elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	// Walking a striped array migrates between nodelets.
	if sys.Counters.TotalMigrations() == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if _, err := RunStream(HardwareChick(), StreamConfig{
		ElemsPerNodelet: 32, Nodelets: 8, Threads: 8, Strategy: SerialRemoteSpawn,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPointerChase(HardwareChick(), ChaseConfig{
		Elements: 128, BlockSize: 4, Mode: FullBlockShuffle, Seed: 1, Threads: 4, Nodelets: 8,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpMV(HardwareChick(), SpMVConfig{GridN: 4, Layout: SpMV2D, GrainNNZ: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPingPong(HardwareChick(), PingPongConfig{
		Threads: 2, Iterations: 10, NodeletA: 0, NodeletB: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunGUPS(HardwareChick(), GUPSConfig{
		TableWords: 64, Updates: 128, Threads: 4, Seed: 2,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	sys := NewSystem(HardwareChick())
	hits := make([]int, 20)
	if _, err := sys.Run(func(th *Thread) {
		ParallelFor(th, 20, 4, func(w *Thread, lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		SpawnWorkers(th, 8, 8, RecursiveRemoteSpawn, func(w *Thread, id int) {
			w.Compute(10)
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d ran %d times", i, h)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	if len(Experiments()) != len(ids) {
		t.Fatal("Experiments/ExperimentIDs mismatch")
	}
	e, err := ExperimentByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.Run(WithScale(QuickScale), WithTrials(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) == 0 || len(figs[0].Series) == 0 {
		t.Fatal("fig4 produced nothing")
	}
	if _, err := ExperimentByID("bogus"); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}
