#!/usr/bin/env bash
# serve-smoke: end-to-end exercise of cmd/emuserved through the real binary
# and real HTTP — boot the server, submit a quick experiment job, poll it to
# completion, fetch the result, then resubmit the identical spec and require
# a byte-identical cache hit without a second simulation.
set -euo pipefail

GO=${GO:-go}
DIR=${SERVE_SMOKE_DIR:-/tmp/emuserve-smoke}
ADDR=${SERVE_SMOKE_ADDR:-127.0.0.1:18473}
BASE="http://$ADDR"

rm -rf "$DIR"
mkdir -p "$DIR"
$GO build -o "$DIR/emuserved" ./cmd/emuserved

"$DIR/emuserved" -addr "$ADDR" -data "$DIR/data" -workers 1 -job-parallel 2 \
    >"$DIR/server.log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true' EXIT

up=""
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
done
[ -n "$up" ] || { echo "serve-smoke: server did not come up"; cat "$DIR/server.log"; exit 1; }

spec='{"experiment":"fig4","scale":"quick","trials":1,"parallel":2}'
job=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec" "$BASE/v1/jobs")
id=$(printf '%s' "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "serve-smoke: submit returned no job id: $job"; exit 1; }

state=""
for _ in $(seq 1 120); do
    out=$(curl -fsS "$BASE/v1/jobs/$id/wait?timeout=2s")
    case "$out" in
    *'"state": "done"'*) state=done; break ;;
    *'"state": "failed"'* | *'"state": "canceled"'*)
        echo "serve-smoke: job ended badly: $out"; exit 1 ;;
    esac
done
[ "$state" = done ] || { echo "serve-smoke: job $id never finished"; exit 1; }

curl -fsS "$BASE/v1/jobs/$id/result" >"$DIR/result1.json"
grep -q '"figures"' "$DIR/result1.json" || { echo "serve-smoke: result has no figures"; exit 1; }

# Identical resubmit: must complete immediately from the content-addressed
# cache, serving byte-identical bytes.
job2=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec" "$BASE/v1/jobs")
printf '%s' "$job2" | grep -q '"source": "cache"' \
    || { echo "serve-smoke: identical resubmit was not a cache hit: $job2"; exit 1; }
id2=$(printf '%s' "$job2" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
curl -fsS "$BASE/v1/jobs/$id2/result" >"$DIR/result2.json"
cmp "$DIR/result1.json" "$DIR/result2.json" \
    || { echo "serve-smoke: cache served different bytes"; exit 1; }

stats=$(curl -fsS "$BASE/v1/stats")
printf '%s' "$stats" | grep -q '"simulated": 1' \
    || { echo "serve-smoke: expected exactly one simulation: $stats"; exit 1; }
printf '%s' "$stats" | grep -q '"cache_hits": 1' \
    || { echo "serve-smoke: expected exactly one cache hit: $stats"; exit 1; }

kill -INT "$pid"
wait "$pid" 2>/dev/null || true
trap - EXIT
echo "serve-smoke: OK (1 simulated, 1 cache hit, byte-identical results)"
