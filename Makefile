# Convenience targets for the emuchick reproduction.

GO ?= go

.PHONY: all check build vet lint test test-quick bench bench-quick bench-archive bench-gate race figures figures-quick scorecard scorecard-quick trace-smoke fault-smoke serve-smoke chaos-smoke soak examples clean

all: build vet lint test race

# The pre-commit gate: compile, vet, lint, test, the perf gate, the job
# server smoke, and the chaos smoke.
check: build vet lint test bench-gate serve-smoke chaos-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repo's own analyzer suite (cmd/emulint): determinism, park-site,
# hot-path allocation, no-handoff, seed-flow, fingerprint, and
# observer-guard contracts — interprocedural since the funcfacts pass,
# with per-analyzer timing reported on stderr (-v).
lint:
	$(GO) run ./cmd/emulint -v ./...

test:
	$(GO) test ./...

# The suite at -short semantics: everything still runs, it is just the
# regular suite (kept separate in case slow tests are ever gated).
test-quick: test

bench:
	$(GO) test -bench . -benchmem .

# Benchmark iterations for archives and the gate; the archived baselines in
# the repo were recorded with 5 (see DESIGN.md §13).
BENCH_ITERS ?= 5
# The baseline the gate diffs against: BENCH_engine3.json is the newest
# archive (continuation proc engine as the kernel default, plus the
# threadlet-scale stress benchmark); BENCH_engine2.json (post-optimization
# goroutine engine) and BENCH_engine.json (pre-optimization) are kept so
# the trajectory stays visible.
BENCH_BASELINE ?= BENCH_engine3.json

# The gated benchmark set: the per-figure benchmarks plus the
# threadlet-scale stress run (10^6 continuation procs with a hard
# bytes-per-proc bound).
BENCH_GATED := BenchmarkFig|BenchmarkThreadletScale

# One fast pass over the gated benchmarks, snapshotted as JSON scratch for
# quick local diffs (does not touch the archived baselines).
bench-quick:
	$(GO) test -run '^$$' -bench '$(BENCH_GATED)' -benchtime 1x . | $(GO) run ./cmd/benchjson > BENCH_quick.json

# Re-archive the gate baseline: BENCH_ITERS runs per benchmark aggregated
# into min/mean/max stats. Run this (and commit the result) whenever a
# deliberate perf change moves the expected numbers.
bench-archive:
	$(GO) test -run '^$$' -bench '$(BENCH_GATED)' -benchtime 1x -count $(BENCH_ITERS) . | $(GO) run ./cmd/benchjson > $(BENCH_BASELINE)

# Gate tolerance: measured back-to-back same-binary drift on the 1-core CI
# container reaches ~1.3-1.4x (min-of-5 vs min-of-5, minutes apart), so the
# benchjson default of +25% flakes on an unchanged tree. The gate's job is
# the accidental 2x (DESIGN.md §13); 5% deltas need interleaved A/B runs.
BENCH_TOLERANCE ?= 0.5

# The perf regression gate: run the figure benchmarks live and diff against
# the archived baseline; exits non-zero when any benchmark regresses past
# its tolerance or disappears. Wired into `make check`.
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_GATED)' -benchtime 1x -count $(BENCH_ITERS) . | $(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) -tolerance $(BENCH_TOLERANCE)

# Race-detector pass over every package that shares state across
# goroutines: the event engine, the parallel experiment runner, the job
# server (worker pool + admission control), the chaos harness, the
# crash-faulting store, and the trace pipeline.
race:
	$(GO) test -race ./internal/sim/... ./internal/experiments/... \
		./internal/jobserver/... ./internal/chaos/... \
		./internal/storefs/... ./internal/trace/...

# Regenerate every paper artifact at full size (~10-15 minutes).
figures:
	$(GO) run ./cmd/emubench -fig all -format table

figures-quick:
	$(GO) run ./cmd/emubench -fig all -quick -format table

# The 15-claim reproduction scorecard.
scorecard:
	$(GO) run ./cmd/emuvalidate

scorecard-quick:
	$(GO) run ./cmd/emuvalidate -quick

# Trace one fig6 point at CI scale, then structurally validate the JSONL
# (emutrace also re-validates the file itself before reporting success).
trace-smoke:
	$(GO) run ./cmd/emutrace -fig fig6 -quick -trials 1 -format jsonl -out /tmp/emutrace-smoke.jsonl
	$(GO) run ./cmd/emutrace -validate /tmp/emutrace-smoke.jsonl

# Exercise the fault layer end to end at CI scale: both graceful-degradation
# figures, then a faulted run traced to JSONL (fault_stall events included)
# and structurally validated.
fault-smoke:
	$(GO) run ./cmd/emubench -fig degradation-stream -quick -format table
	$(GO) run ./cmd/emubench -fig degradation-chase -quick -format table
	$(GO) run ./cmd/emutrace -fig fig6 -quick -trials 1 -format jsonl \
		-faults 'migstall=10us/100us' -out /tmp/emufault-smoke.jsonl
	$(GO) run ./cmd/emutrace -validate /tmp/emufault-smoke.jsonl

# Chaos smoke at -short scale: the seeded fault-injection unit suite plus
# the crash-restart fuzz (kill the store at a seeded op, restart, demand
# byte-identical results) and the noisy-disk degradation tests. Wired into
# `make check`; drop -short for the full 20-seed sweep.
chaos-smoke:
	$(GO) test ./internal/chaos -count=1
	$(GO) test ./internal/jobserver -run 'TestChaos' -short -count=1

# Boot cmd/emuserved, submit a quick job over real HTTP, poll it done, fetch
# the result, and require an identical resubmit to be a byte-identical cache
# hit (exactly 1 simulated + 1 cache hit in /v1/stats). Wired into `make
# check`.
serve-smoke:
	bash scripts/serve_smoke.sh

# Kill-and-resume soak: archive an uninterrupted full-size fig6, then start
# the same sweep checkpointed, SIGINT it mid-run (it takes ~8 s; the kill
# lands at ~2 s), resume from the log, and byte-compare the archived figure
# JSON — the crash-safety contract, end to end through the real binary.
# The JSON is compared rather than stdout because stdout carries wall-clock
# timings.
SOAK_DIR := /tmp/emusoak
soak:
	rm -rf $(SOAK_DIR) && mkdir -p $(SOAK_DIR)/ckpt
	$(GO) build -o $(SOAK_DIR)/emubench ./cmd/emubench
	$(SOAK_DIR)/emubench -fig fig6 -trials 1 -parallel 2 -outdir $(SOAK_DIR)/base > /dev/null
	-( $(SOAK_DIR)/emubench -fig fig6 -trials 1 -parallel 2 \
		-checkpoint $(SOAK_DIR)/ckpt/ > /dev/null & \
	   pid=$$!; sleep 2; kill -INT $$pid; wait $$pid )
	@test -s $(SOAK_DIR)/ckpt/fig6.ckpt || { echo "soak: no checkpoint written"; exit 1; }
	@echo "soak: interrupted with $$(grep -c '"type":"cell"' $(SOAK_DIR)/ckpt/fig6.ckpt) of 52 cells checkpointed; resuming"
	$(SOAK_DIR)/emubench -fig fig6 -trials 1 -parallel 4 \
		-checkpoint $(SOAK_DIR)/ckpt/ -resume -outdir $(SOAK_DIR)/resumed > /dev/null
	diff $(SOAK_DIR)/base/fig6.json $(SOAK_DIR)/resumed/fig6.json
	@echo "soak: resumed figures are byte-identical to the uninterrupted run"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/graphwalk
	$(GO) run ./examples/spmv
	$(GO) run ./examples/migration
	$(GO) run ./examples/tensor

clean:
	$(GO) clean ./...
