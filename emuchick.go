// Package emuchick is a simulation-backed reproduction of "An Initial
// Characterization of the Emu Chick" (Hein et al., 2018). It models the Emu
// migratory-thread architecture — nodelets pairing narrow NCDRAM channels
// with cache-less, highly multithreaded Gossamer cores, and a migration
// engine that moves thread contexts to data — together with the cache-based
// Xeon platforms the paper compares against, and regenerates every figure
// and table of the paper's evaluation.
//
// The package is a facade over the internal packages:
//
//   - Machine configurations (HardwareChick, SimMatched, FullSpeed) and the
//     Thread API for writing migratory-thread kernels.
//   - The four paper benchmarks: STREAM, PointerChase, SpMV, PingPong (plus
//     GUPS), each on both the Emu model and the Xeon models.
//   - The experiment registry (Experiments, ExperimentByID) that regenerates
//     Figs. 4-11 and the scalar anchor tables.
//
// A minimal program:
//
//	sys := emuchick.NewSystem(emuchick.HardwareChick())
//	arr := sys.Mem.AllocStriped(1 << 10)
//	elapsed, err := sys.Run(func(t *emuchick.Thread) {
//	    for i := 0; i < arr.Len(); i++ {
//	        t.Load(arr.At(i)) // remote elements migrate the thread
//	    }
//	})
//
// See DESIGN.md for the model's calibration against the paper's published
// rates and EXPERIMENTS.md for the paper-vs-measured comparison of every
// artifact.
package emuchick

import (
	"emuchick/internal/cilk"
	"emuchick/internal/experiments"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/workload"
)

// Core machine types.
type (
	// Config describes one Emu machine configuration.
	Config = machine.Config
	// System is a single-use simulated Emu machine.
	System = machine.System
	// Thread is a Gossamer threadlet; kernels are written against it.
	Thread = machine.Thread
	// Counters are the per-nodelet event counts the vendor simulator
	// reports (spawns, migrations, memory operations).
	Counters = machine.Counters
	// Time is simulated time in picoseconds.
	Time = sim.Time
	// Addr is a word address in the partitioned global address space.
	Addr = memsys.Addr
	// Result is a measured (bytes, elapsed) pair with bandwidth helpers.
	Result = metrics.Result
	// Strategy is one of the paper's four thread-spawn strategies.
	Strategy = cilk.Strategy
	// ShuffleMode is one of the pointer-chase list permutations of Fig. 2.
	ShuffleMode = workload.ShuffleMode
)

// Machine configuration presets (section III of the paper).
var (
	// HardwareChick is the prototype: 8 nodelets, one 150 MHz Gossamer
	// core each, 64 threadlets, DDR4-1600 NCDRAM, 9 M migrations/s.
	HardwareChick = machine.HardwareChick
	// HardwareChickNodes extends the prototype to several node cards.
	HardwareChickNodes = machine.HardwareChickNodes
	// SimMatched is the vendor simulator configured to match the
	// prototype — identical except its 16 M migrations/s engine.
	SimMatched = machine.SimMatched
	// FullSpeed is the design-speed projection: 300 MHz, 4 cores and
	// 1024 threadlets per nodelet, DDR4-2133.
	FullSpeed = machine.FullSpeed
)

// NewSystem builds a simulated Emu machine from a configuration.
func NewSystem(cfg Config) *System { return machine.NewSystem(cfg) }

// Spawn strategies (section III-E).
const (
	SerialSpawn          = cilk.SerialSpawn
	RecursiveSpawn       = cilk.RecursiveSpawn
	SerialRemoteSpawn    = cilk.SerialRemoteSpawn
	RecursiveRemoteSpawn = cilk.RecursiveRemoteSpawn
)

// List shuffle modes (Fig. 2).
const (
	NoShuffle         = workload.NoShuffle
	IntraBlockShuffle = workload.IntraBlockShuffle
	BlockShuffle      = workload.BlockShuffle
	FullBlockShuffle  = workload.FullBlockShuffle
)

// SpawnWorkers launches workers across nodelets with the given strategy
// and joins them; see the cilk package for the four tree shapes.
func SpawnWorkers(t *Thread, nodelets, workers int, s Strategy, body func(*Thread, int)) {
	cilk.SpawnWorkers(t, nodelets, workers, s, body)
}

// ParallelFor is a grain-size parallel loop built from recursive spawning,
// the stand-in for cilk_for the paper's toolchain lacked.
func ParallelFor(t *Thread, n, grain int, body func(*Thread, int, int)) {
	cilk.ParallelFor(t, n, grain, body)
}

// Benchmark configurations and entry points (Emu side).
type (
	// StreamConfig parameterizes STREAM ADD (Figs. 4-5).
	StreamConfig = kernels.StreamConfig
	// ChaseConfig parameterizes pointer chasing (Fig. 6).
	ChaseConfig = kernels.ChaseConfig
	// SpMVConfig parameterizes SpMV under the three layouts (Fig. 9a).
	SpMVConfig = kernels.SpMVConfig
	// SpMVLayout selects local, 1D, or 2D placement (Fig. 3).
	SpMVLayout = kernels.SpMVLayout
	// PingPongConfig parameterizes the migration microbenchmark.
	PingPongConfig = kernels.PingPongConfig
	// PingPongResult reports migration throughput and latency.
	PingPongResult = kernels.PingPongResult
	// GUPSConfig parameterizes the RandomAccess-style kernel.
	GUPSConfig = kernels.GUPSConfig
)

// SpMV data layouts (Fig. 3).
const (
	SpMVLocal = kernels.SpMVLocal
	SpMV1D    = kernels.SpMV1D
	SpMV2D    = kernels.SpMV2D
)

// RunStream runs the STREAM ADD benchmark on a fresh machine.
func RunStream(cfg Config, bc StreamConfig) (Result, error) { return kernels.StreamAdd(cfg, bc) }

// RunPointerChase runs the block-shuffled pointer-chasing benchmark.
func RunPointerChase(cfg Config, bc ChaseConfig) (Result, error) {
	return kernels.PointerChase(cfg, bc)
}

// RunSpMV runs CSR SpMV over the synthetic Laplacian.
func RunSpMV(cfg Config, bc SpMVConfig) (Result, error) { return kernels.SpMV(cfg, bc) }

// RunPingPong runs the thread-migration microbenchmark.
func RunPingPong(cfg Config, bc PingPongConfig) (PingPongResult, error) {
	return kernels.PingPong(cfg, bc)
}

// RunGUPS runs the RandomAccess-style update kernel.
func RunGUPS(cfg Config, bc GUPSConfig) (Result, error) { return kernels.GUPS(cfg, bc) }

// Experiment regenerates one paper artifact (figure or table).
type Experiment = experiments.Experiment

// ExperimentOptions tunes trials and workload scale.
type ExperimentOptions = experiments.Options

// Figure is a regenerated figure: named series over a swept parameter.
type Figure = metrics.Figure

// Experiments lists every registered paper artifact in id order.
func Experiments() []*Experiment { return experiments.All() }

// ExperimentByID looks up one artifact, e.g. "fig6" or "stream-anchors".
func ExperimentByID(id string) (*Experiment, error) { return experiments.ByID(id) }

// ExperimentIDs lists the registered artifact ids.
func ExperimentIDs() []string { return experiments.IDs() }
