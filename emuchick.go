// Package emuchick is a simulation-backed reproduction of "An Initial
// Characterization of the Emu Chick" (Hein et al., 2018). It models the Emu
// migratory-thread architecture — nodelets pairing narrow NCDRAM channels
// with cache-less, highly multithreaded Gossamer cores, and a migration
// engine that moves thread contexts to data — together with the cache-based
// Xeon platforms the paper compares against, and regenerates every figure
// and table of the paper's evaluation.
//
// The package is a facade over the internal packages:
//
//   - Machine configurations (HardwareChick, SimMatched, FullSpeed) and the
//     Thread API for writing migratory-thread kernels.
//   - The four paper benchmarks: STREAM, PointerChase, SpMV, PingPong (plus
//     GUPS), each on both the Emu model and the Xeon models.
//   - The experiment registry (Experiments, ExperimentByID) that regenerates
//     Figs. 4-11 and the scalar anchor tables.
//
// A minimal program:
//
//	sys := emuchick.NewSystem(emuchick.HardwareChick())
//	arr := sys.Mem.AllocStriped(1 << 10)
//	elapsed, err := sys.Run(func(t *emuchick.Thread) {
//	    for i := 0; i < arr.Len(); i++ {
//	        t.Load(arr.At(i)) // remote elements migrate the thread
//	    }
//	})
//
// See DESIGN.md for the model's calibration against the paper's published
// rates and EXPERIMENTS.md for the paper-vs-measured comparison of every
// artifact.
package emuchick

import (
	"emuchick/internal/cilk"
	"emuchick/internal/experiments"
	"emuchick/internal/fault"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
	"emuchick/internal/workload"
)

// Core machine types.
type (
	// Config describes one Emu machine configuration.
	Config = machine.Config
	// System is a single-use simulated Emu machine.
	System = machine.System
	// Thread is a Gossamer threadlet; kernels are written against it.
	Thread = machine.Thread
	// Counters are the per-nodelet event counts the vendor simulator
	// reports (spawns, migrations, memory operations).
	Counters = machine.Counters
	// Time is simulated time in picoseconds.
	Time = sim.Time
	// Addr is a word address in the partitioned global address space.
	Addr = memsys.Addr
	// Result is a measured (bytes, elapsed) pair with bandwidth helpers.
	Result = metrics.Result
	// Strategy is one of the paper's four thread-spawn strategies.
	Strategy = cilk.Strategy
	// ShuffleMode is one of the pointer-chase list permutations of Fig. 2.
	ShuffleMode = workload.ShuffleMode
)

// Machine configuration presets (section III of the paper).
var (
	// HardwareChick is the prototype: 8 nodelets, one 150 MHz Gossamer
	// core each, 64 threadlets, DDR4-1600 NCDRAM, 9 M migrations/s.
	HardwareChick = machine.HardwareChick
	// HardwareChickNodes extends the prototype to several node cards.
	HardwareChickNodes = machine.HardwareChickNodes
	// SimMatched is the vendor simulator configured to match the
	// prototype — identical except its 16 M migrations/s engine.
	SimMatched = machine.SimMatched
	// FullSpeed is the design-speed projection: 300 MHz, 4 cores and
	// 1024 threadlets per nodelet, DDR4-2133.
	FullSpeed = machine.FullSpeed
)

// NewSystem builds a simulated Emu machine from a configuration.
func NewSystem(cfg Config) *System { return machine.NewSystem(cfg) }

// Spawn strategies (section III-E).
const (
	SerialSpawn          = cilk.SerialSpawn
	RecursiveSpawn       = cilk.RecursiveSpawn
	SerialRemoteSpawn    = cilk.SerialRemoteSpawn
	RecursiveRemoteSpawn = cilk.RecursiveRemoteSpawn
)

// List shuffle modes (Fig. 2).
const (
	NoShuffle         = workload.NoShuffle
	IntraBlockShuffle = workload.IntraBlockShuffle
	BlockShuffle      = workload.BlockShuffle
	FullBlockShuffle  = workload.FullBlockShuffle
)

// SpawnWorkers launches workers across nodelets with the given strategy
// and joins them; see the cilk package for the four tree shapes.
func SpawnWorkers(t *Thread, nodelets, workers int, s Strategy, body func(*Thread, int)) {
	cilk.SpawnWorkers(t, nodelets, workers, s, body)
}

// ParallelFor is a grain-size parallel loop built from recursive spawning,
// the stand-in for cilk_for the paper's toolchain lacked.
func ParallelFor(t *Thread, n, grain int, body func(*Thread, int, int)) {
	cilk.ParallelFor(t, n, grain, body)
}

// Benchmark configurations and entry points (Emu side).
type (
	// StreamConfig parameterizes STREAM ADD (Figs. 4-5).
	StreamConfig = kernels.StreamConfig
	// ChaseConfig parameterizes pointer chasing (Fig. 6).
	ChaseConfig = kernels.ChaseConfig
	// SpMVConfig parameterizes SpMV under the three layouts (Fig. 9a).
	SpMVConfig = kernels.SpMVConfig
	// SpMVLayout selects local, 1D, or 2D placement (Fig. 3).
	SpMVLayout = kernels.SpMVLayout
	// PingPongConfig parameterizes the migration microbenchmark.
	PingPongConfig = kernels.PingPongConfig
	// PingPongResult reports migration throughput and latency.
	PingPongResult = kernels.PingPongResult
	// GUPSConfig parameterizes the RandomAccess-style kernel.
	GUPSConfig = kernels.GUPSConfig
)

// SpMV data layouts (Fig. 3).
const (
	SpMVLocal = kernels.SpMVLocal
	SpMV1D    = kernels.SpMV1D
	SpMV2D    = kernels.SpMV2D
)

// Observability: the trace package's observer model, re-exported so
// programs built on the facade can stream and aggregate machine events.
type (
	// Observer receives every traced machine event and gauge sample.
	Observer = trace.Observer
	// TraceEvent is one machine operation (migration, memory op, spawn...).
	TraceEvent = trace.Event
	// TraceSample is one per-nodelet gauge snapshot.
	TraceSample = trace.Sample
	// TraceKind classifies a TraceEvent.
	TraceKind = trace.Kind
	// ChromeWriter buffers a trace and writes Chrome-trace JSON (Perfetto)
	// or JSONL.
	ChromeWriter = trace.ChromeWriter
	// TraceAggregator reduces an event stream to per-nodelet time series.
	TraceAggregator = trace.Aggregator
)

// NewChromeWriter returns a ring-buffered trace sink holding up to capacity
// events (<= 0 selects the default capacity).
func NewChromeWriter(capacity int) *ChromeWriter { return trace.NewChromeWriter(capacity) }

// NewTraceAggregator returns an in-memory sink deriving per-nodelet time
// series with the given bucket width (<= 0 selects the default).
func NewTraceAggregator(bucket Time) *TraceAggregator { return trace.NewAggregator(bucket) }

// TeeObservers fans events out to several observers (nils are dropped).
func TeeObservers(obs ...Observer) Observer { return trace.Tee(obs...) }

// RunOption configures a benchmark or experiment run. The same vocabulary
// serves both: WithObserver, WithContext, WithSampleInterval, and WithTrials
// apply to the five Run* entry points; WithScale and WithParallel
// additionally steer Experiment.Run sweeps.
type RunOption = experiments.Option

// Scale selects full (paper-sized) or quick (CI-sized) workloads.
type Scale = experiments.Scale

// Workload scales for WithScale.
const (
	FullScale  = experiments.FullScale
	QuickScale = experiments.QuickScale
)

// Run options, shared between benchmark entry points and experiments.
var (
	// WithTrials repeats the measurement n times (experiments: trials per
	// data point; Run* entry points: reruns of the deterministic kernel,
	// identical results but n runs' worth of events for an observer).
	WithTrials = experiments.WithTrials
	// WithScale selects full or quick workloads (experiments only).
	WithScale = experiments.WithScale
	// WithParallel sets the sweep worker count (experiments only).
	WithParallel = experiments.WithParallel
	// WithObserver streams machine events and gauge samples to an Observer.
	WithObserver = experiments.WithObserver
	// WithSampleInterval overrides the gauge-sampling interval
	// (0 keeps the machine default, negative disables).
	WithSampleInterval = experiments.WithSampleInterval
	// WithContext makes the run cancellable.
	WithContext = experiments.WithContext
	// WithFaultPlan injects a deterministic fault plan into every machine
	// the run builds (nil injects nothing; an empty plan is byte-identical
	// to an uninjected run).
	WithFaultPlan = experiments.WithFaultPlan
	// WithFaultSeed overrides the fault plan's seed (0 keeps it).
	WithFaultSeed = experiments.WithFaultSeed
	// WithCheckpoint appends every completed sweep cell to a write-ahead
	// log at the given path and resumes from compatible records already in
	// it; figures after a kill-and-resume are byte-identical to an
	// uninterrupted run (experiments only).
	WithCheckpoint = experiments.WithCheckpoint
	// WithCellTimeout arms the per-cell watchdog: a cell simulation is
	// killed after this wall-clock time (plus a deterministic event-budget
	// backstop), retried, and finally recorded as a failure — leaving a NaN
	// hole in a figure marked Incomplete (experiments only).
	WithCellTimeout = experiments.WithCellTimeout
	// WithRetries sets how many extra attempts a watchdog-killed cell gets
	// before it is recorded as failed (experiments only).
	WithRetries = experiments.WithRetries
)

// Fault injection: deterministic degraded-machine scenarios (see
// internal/fault). A plan throttles cores and NCDRAM channels, degrades or
// cuts fabric links inside time windows, and stalls migration engines; the
// machine models a retry-with-backoff path whose retries appear in the
// per-nodelet counters and (as "fault_stall" events) in traces.
type (
	// FaultPlan is one declarative fault scenario; the zero value injects
	// nothing.
	FaultPlan = fault.Plan
	// FaultSlowdown throttles one resource class on a nodelet subset.
	FaultSlowdown = fault.Slowdown
	// FaultLink degrades or cuts fabric links inside a time window.
	FaultLink = fault.LinkFault
	// FaultStall describes periodic migration-engine stall windows.
	FaultStall = fault.Stall
)

// ParseFaultPlan builds a plan from the compact CLI grammar the -faults
// flags use, e.g. "chan=4@2,migstall=10us/100us" (see fault.Parse).
func ParseFaultPlan(spec string, seed uint64) (*FaultPlan, error) {
	return fault.Parse(spec, seed)
}

// The kernel registry, re-exported: every benchmark is invocable by name
// with a flat parameter set, which is what the jobspec schema and the job
// server speak. Run is the single entry point; the Run* functions below are
// deprecated one-line wrappers over it.
type (
	// KernelParams is the flat, kernel-agnostic parameter set; each kernel
	// reads the subset it understands (see DefaultKernelParams).
	KernelParams = kernels.Params
	// Measurement is a kernel run's result flattened to a labelled vector.
	Measurement = kernels.Measurement
)

// Kernels lists the registered benchmark kernel names.
func Kernels() []string { return kernels.Names() }

// DefaultKernelParams returns the registry's default parameter vector — the
// same defaults the emurun flags advertise.
func DefaultKernelParams() KernelParams { return kernels.DefaultParams() }

// Run executes a registered benchmark kernel by name on a fresh machine,
// running it Trials times when WithTrials is given (the simulation is
// deterministic, so trials produce identical results; the knob exists so an
// observer can collect repeated-run traces). Zero-valued params fields are
// passed through as-is: wrappers stay lossless, and name-based callers can
// start from DefaultKernelParams.
func Run(cfg Config, kernel string, p KernelParams, opts ...RunOption) (Measurement, error) {
	k, err := kernels.ByName(kernel)
	if err != nil {
		return Measurement{}, err
	}
	o := experiments.ApplyOptions(opts...)
	ks := o.KernelOptions()
	trials := o.Trials
	if trials <= 0 {
		trials = 1
	}
	var m Measurement
	for i := 0; i < trials; i++ {
		m, err = k.Run(cfg, p, ks...)
		if err != nil {
			return Measurement{}, err
		}
	}
	return m, nil
}

// RunStream runs the STREAM ADD benchmark on a fresh machine.
//
// Deprecated: use Run(cfg, "stream", ...); this wrapper routes through it.
func RunStream(cfg Config, bc StreamConfig, opts ...RunOption) (Result, error) {
	m, err := Run(cfg, "stream", kernels.StreamParams(bc), opts...)
	return m.Result(), err
}

// RunPointerChase runs the block-shuffled pointer-chasing benchmark.
//
// Deprecated: use Run(cfg, "chase", ...); this wrapper routes through it.
func RunPointerChase(cfg Config, bc ChaseConfig, opts ...RunOption) (Result, error) {
	m, err := Run(cfg, "chase", kernels.ChaseParams(bc), opts...)
	return m.Result(), err
}

// RunSpMV runs CSR SpMV over the synthetic Laplacian.
//
// Deprecated: use Run(cfg, "spmv", ...); this wrapper routes through it.
func RunSpMV(cfg Config, bc SpMVConfig, opts ...RunOption) (Result, error) {
	m, err := Run(cfg, "spmv", kernels.SpMVParams(bc), opts...)
	return m.Result(), err
}

// RunPingPong runs the thread-migration microbenchmark.
//
// Deprecated: use Run(cfg, "pingpong", ...); this wrapper routes through it.
func RunPingPong(cfg Config, bc PingPongConfig, opts ...RunOption) (PingPongResult, error) {
	m, err := Run(cfg, "pingpong", kernels.PingPongParams(bc), opts...)
	return m.PingPong(), err
}

// RunGUPS runs the RandomAccess-style update kernel.
//
// Deprecated: use Run(cfg, "gups", ...); this wrapper routes through it.
func RunGUPS(cfg Config, bc GUPSConfig, opts ...RunOption) (Result, error) {
	m, err := Run(cfg, "gups", kernels.GUPSParams(bc), opts...)
	return m.Result(), err
}

// Experiment regenerates one paper artifact (figure or table).
type Experiment = experiments.Experiment

// ExperimentOptions tunes trials and workload scale.
type ExperimentOptions = experiments.Options

// Figure is a regenerated figure: named series over a swept parameter.
type Figure = metrics.Figure

// Experiments lists every registered paper artifact in id order.
func Experiments() []*Experiment { return experiments.All() }

// ExperimentByID looks up one artifact, e.g. "fig6" or "stream-anchors".
func ExperimentByID(id string) (*Experiment, error) { return experiments.ByID(id) }

// ExperimentIDs lists the registered artifact ids.
func ExperimentIDs() []string { return experiments.IDs() }
