package emuchick

import "testing"

func TestFacadeGraph(t *testing.T) {
	sys := NewSystem(HardwareChick())
	g, err := NewGraph(sys, GraphConfig{
		Vertices: 16, EdgesPerBlock: 2, Placement: PlaceAtVertex, PoolBlocksPerNodelet: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 15; v++ {
		if err := g.BuildInsert(GraphEdge{Src: v, Dst: v + 1, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var dist []int64
	var labels []uint64
	if _, err := sys.Run(func(root *Thread) {
		dist = BFS(root, g, 0, 8)
		labels = Components(root, g, 8)
	}); err != nil {
		t.Fatal(err)
	}
	if dist[15] != 15 {
		t.Fatalf("chain BFS dist[15] = %d", dist[15])
	}
	for v := 1; v < 16; v++ {
		if labels[v] != labels[0] {
			t.Fatalf("chain not one component: labels[%d]=%d", v, labels[v])
		}
	}
}

func TestFacadeTensor(t *testing.T) {
	res, err := RunTTV(HardwareChick(), TTVConfig{
		Dims: [3]int{8, 8, 8}, NNZ: 64, Seed: 1, Layout: TensorLayout2D, GrainNNZ: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 64*32 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestFacadeMTTKRP(t *testing.T) {
	res, err := RunMTTKRP(HardwareChick(), MTTKRPConfig{
		Dims: [3]int{8, 8, 8}, NNZ: 64, Rank: 2, Seed: 3,
		Layout: TensorLayout2D, GrainNNZ: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 64*(2+3*2)*8 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestFacadeReducer(t *testing.T) {
	sys := NewSystem(HardwareChick())
	red := NewSumReducer(sys)
	var total uint64
	if _, err := sys.Run(func(root *Thread) {
		SpawnWorkers(root, 8, 16, SerialRemoteSpawn, func(w *Thread, id int) {
			red.Add(w, uint64(id))
		})
		total = red.Reduce(root)
	}); err != nil {
		t.Fatal(err)
	}
	if total != 120 {
		t.Fatalf("reduced %d, want 120", total)
	}
}
