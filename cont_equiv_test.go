package emuchick

// The continuation engine's central contract: figures are byte-identical to
// the goroutine engine's. Both engines share every event-claiming path in
// the simulator core, so the same kernel must produce the same (time, seq)
// stream — and therefore bit-for-bit the same figure JSON — regardless of
// which engine drives the procs and how many cells run in parallel.

import (
	"bytes"
	"testing"

	"emuchick/internal/experiments"
	"emuchick/internal/kernels"
)

// TestContinuationFiguresBitIdentical pins the engine-equivalence contract
// at the figure level: the spawn-strategy sweep (fig5) and the pointer-chase
// scaling study (fig6) must render byte-for-byte the same JSON on both proc
// engines, serially and with cells running in parallel.
func TestContinuationFiguresBitIdentical(t *testing.T) {
	for _, id := range []string{"fig5", "fig6"} {
		for _, parallel := range []int{1, 4} {
			g := figuresJSON(t, id,
				experiments.WithParallel(parallel),
				experiments.WithProcEngine(kernels.GoroutineProcs))
			c := figuresJSON(t, id,
				experiments.WithParallel(parallel),
				experiments.WithProcEngine(kernels.ContinuationProcs))
			if !bytes.Equal(g, c) {
				t.Errorf("%s -parallel %d: engines disagree:\ngoroutine:    %s\ncontinuation: %s",
					id, parallel, g, c)
			}
		}
	}
}
