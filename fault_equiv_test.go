package emuchick

// The fault layer's central contract, mirrored from the observer model: a
// nil or empty fault plan is byte-identical to an uninjected run, and any
// (plan, seed) reproduces bit-identically at every experiment parallelism.
// These golden tests pin both halves at the figure level — the same bytes
// cmd/emubench archives.

import (
	"bytes"
	"testing"

	"emuchick/internal/experiments"
	"emuchick/internal/fault"
	"emuchick/internal/report"
)

func figuresJSON(t *testing.T, id string, opts ...experiments.Option) []byte {
	t.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.Run(append([]experiments.Option{
		experiments.WithScale(experiments.QuickScale), experiments.WithTrials(1),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, fig := range figs {
		if err := report.FigureJSON(&buf, fig); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestZeroFaultFiguresBitIdentical is the identity half of the contract:
// injecting nothing — a nil plan, the zero plan, or a seeded-but-empty plan
// — must leave the figures byte-for-byte unchanged.
func TestZeroFaultFiguresBitIdentical(t *testing.T) {
	base := figuresJSON(t, "fig4")
	cases := []struct {
		name string
		plan *FaultPlan
	}{
		{"nil", nil},
		{"zero", &fault.Plan{}},
		{"seeded-empty", &fault.Plan{Seed: 99}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := figuresJSON(t, "fig4", WithFaultPlan(tc.plan), WithFaultSeed(7))
			if !bytes.Equal(base, got) {
				t.Fatalf("%s plan changed the figures:\nbase:    %s\nfaulted: %s", tc.name, base, got)
			}
		})
	}
}

// TestFaultedFiguresDeterministicAcrossParallel is the reproducibility half:
// under a fixed (plan, seed), a sequential run and an 8-worker run must
// produce byte-identical figures — for an explicitly injected plan and for
// both degradation experiments' built-in plans.
func TestFaultedFiguresDeterministicAcrossParallel(t *testing.T) {
	plan, err := ParseFaultPlan("chan=4@2,migstall=10us/100us", 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		id   string
		opts []experiments.Option
	}{
		// fig6 migrates on every block-1 element, so this plan visibly
		// bites — the determinism check is not vacuous.
		{"injected-plan", "fig6", []experiments.Option{WithFaultPlan(plan)}},
		{"degradation-stream", "degradation-stream", []experiments.Option{WithFaultSeed(7)}},
		{"degradation-chase", "degradation-chase", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := figuresJSON(t, tc.id, append(tc.opts, WithParallel(1))...)
			par := figuresJSON(t, tc.id, append(tc.opts, WithParallel(8))...)
			if !bytes.Equal(seq, par) {
				t.Fatalf("faulted %s differs across parallelism:\nseq: %s\npar: %s", tc.id, seq, par)
			}
		})
	}
	// Guard against the whole table passing vacuously: the injected plan
	// must actually change fig6 relative to a healthy run.
	if bytes.Equal(figuresJSON(t, "fig6"), figuresJSON(t, "fig6", WithFaultPlan(plan))) {
		t.Fatal("injected plan was a no-op on fig6")
	}
}

// TestFaultSeedChangesSelection guards the other direction: with a
// Count-based rule, different seeds must be able to degrade different
// nodelet subsets (otherwise -fault-seed would be decorative).
func TestFaultSeedChangesSelection(t *testing.T) {
	pickOf := func(seed uint64) []float64 {
		p := &fault.Plan{Seed: seed, Channels: []fault.Slowdown{{Factor: 4, Count: 2}}}
		r, err := p.Resolve(8, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r.ChannelScale
	}
	base := pickOf(1)
	for seed := uint64(2); seed < 10; seed++ {
		got := pickOf(seed)
		for i := range got {
			if got[i] != base[i] {
				return // found a seed with a different selection
			}
		}
	}
	t.Fatal("seeds 1..9 all degraded the same nodelet pair")
}
