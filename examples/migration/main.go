// Migration: measure the thread-migration engine the way section IV-D
// does — the ping-pong microbenchmark on the hardware-matched and
// simulator-matched configurations (9 vs 16 M migrations/s), the
// single-migration latency (1-2 us), and the block-size-1 pointer-chasing
// dip that the engine's throughput explains.
package main

import (
	"fmt"
	"log"

	"emuchick"
)

func main() {
	// Ping-pong saturation: N threads bouncing between two nodelets.
	fmt.Printf("%-18s %10s %16s %14s\n", "machine", "threads", "migrations/s", "mean latency")
	for _, m := range []struct {
		name string
		cfg  emuchick.Config
	}{
		{"hardware", emuchick.HardwareChick()},
		{"vendor simulator", emuchick.SimMatched()},
	} {
		for _, threads := range []int{1, 64} {
			res, err := emuchick.RunPingPong(m.cfg, emuchick.PingPongConfig{
				Threads: threads, Iterations: 1000, NodeletA: 0, NodeletB: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %10d %13.2f M/s %14v\n",
				m.name, threads, res.MigrationsPerSec/1e6, res.MeanLatency)
		}
	}
	fmt.Println("\nThe paper: hardware sustains ~9 M migrations/s where the vendor")
	fmt.Println("simulator does ~16 M/s, and one migration costs ~1-2 us — the")
	fmt.Println("discrepancy behind Fig. 10's pointer-chase mismatch.")

	// The engine's signature in a real kernel: the block-1 chase dip.
	fmt.Printf("\n%-18s %10s %14s\n", "machine", "block", "chase MB/s")
	for _, m := range []struct {
		name string
		cfg  emuchick.Config
	}{
		{"hardware", emuchick.HardwareChick()},
		{"vendor simulator", emuchick.SimMatched()},
	} {
		for _, block := range []int{1, 4, 64} {
			res, err := emuchick.RunPointerChase(m.cfg, emuchick.ChaseConfig{
				Elements: 16384, BlockSize: block, Mode: emuchick.FullBlockShuffle,
				Seed: 7, Threads: 512, Nodelets: 8,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %10d %11.1f\n", m.name, block, res.MBps())
		}
	}
	fmt.Println("\nAt block size 1 every element crosses a nodelet boundary, so the")
	fmt.Println("migration engine becomes the bottleneck; \"performance recovers when")
	fmt.Println("even as few as four elements are accessed between each migration.\"")
}
