// Graphwalk: the streaming-graph scenario that motivates the paper
// (section I — STINGER-style analysis). A dynamic graph stores adjacency
// as chains of fixed-size edge blocks; under churn those blocks fragment
// across memory. The example builds the same graph under the stinger
// package's two placement policies —
//
//   - at_vertex: a vertex's blocks stay on its home nodelet,
//   - round_robin: blocks scatter across nodelets (worst-case
//     fragmentation of a shared pool),
//
// then runs two timed phases on the Emu model: a streaming insertion batch
// and a full traversal (per-vertex weight sums). The traversal is the
// pointer-chasing benchmark in application form: the Emu's bandwidth
// barely moves under fragmentation, but every scattered block hop costs a
// thread migration.
package main

import (
	"fmt"
	"log"

	"emuchick"
	"emuchick/internal/stinger"
	"emuchick/internal/workload"
)

const (
	vertices   = 2048
	meanDegree = 8
	workers    = 256
)

// buildEdges generates a deterministic R-MAT edge stream — the skewed
// degree distribution streaming-graph benchmarks use.
func buildEdges() []stinger.Edge {
	rng := workload.NewRNG(99)
	// Mildly skewed R-MAT: enough irregularity to be graph-like without a
	// few hub vertices serializing the per-vertex walk and hiding the
	// fragmentation effect this example isolates.
	cfg := workload.RMATConfig{Scale: 11, Edges: 2048 * meanDegree, A: 0.3, B: 0.25, C: 0.25, D: 0.2}
	rmat, err := workload.RMAT(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	edges := make([]stinger.Edge, len(rmat))
	for i, e := range rmat {
		edges[i] = stinger.Edge{Src: e.Src, Dst: e.Dst, Weight: rng.Uint64()%100 + 1}
	}
	return edges
}

type phaseResult struct {
	insert     emuchick.Time
	traverse   emuchick.Time
	migrations uint64
}

func runPhases(placement stinger.Placement, edges []stinger.Edge) phaseResult {
	sys := emuchick.NewSystem(emuchick.HardwareChick())
	g, err := stinger.New(sys, stinger.Config{
		Vertices: vertices, EdgesPerBlock: 4,
		Placement: placement, PoolBlocksPerNodelet: len(edges),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reference sums for verification.
	want := make(map[int]uint64)
	for _, e := range edges {
		want[e.Src] += e.Weight
	}

	var out phaseResult
	sums := make([]uint64, vertices)
	_, err = sys.Run(func(root *emuchick.Thread) {
		// Phase 1: streaming insertion, partitioned by source vertex so
		// no two threads append to the same chain.
		t0 := root.Now()
		for w := 0; w < 64; w++ {
			w := w
			root.SpawnAt(w%8, func(th *emuchick.Thread) {
				for _, e := range edges {
					if e.Src%64 == w {
						if err := g.InsertTimed(th, e); err != nil {
							log.Fatal(err)
						}
					}
				}
			})
		}
		root.Sync()
		out.insert = root.Now() - t0

		// Phase 2: full traversal.
		t1 := root.Now()
		emuchick.SpawnWorkers(root, 8, workers, emuchick.RecursiveRemoteSpawn,
			func(th *emuchick.Thread, id int) {
				for v := id; v < vertices; v += workers {
					var sum uint64
					g.WalkTimed(th, v, func(dst int, w uint64) { sum += w })
					sums[v] = sum
				}
			})
		out.traverse = root.Now() - t1
	})
	if err != nil {
		log.Fatal(err)
	}
	for v := 0; v < vertices; v++ {
		if sums[v] != want[v] {
			log.Fatalf("%v: vertex %d sum %d, want %d", placement, v, sums[v], want[v])
		}
	}
	out.migrations = sys.Counters.TotalMigrations()
	return out
}

func main() {
	edges := buildEdges()
	clustered := runPhases(stinger.PlaceAtVertex, edges)
	fragmented := runPhases(stinger.PlaceRoundRobin, edges)

	bytes := float64(len(edges) * 16)
	fmt.Printf("graph: %d vertices, %d edges, 4-edge blocks, %d walk threads\n\n",
		vertices, len(edges), workers)
	fmt.Printf("%-12s %12s %12s %15s %12s\n", "placement", "insert", "traverse", "walk bandwidth", "migrations")
	for _, row := range []struct {
		name string
		r    phaseResult
	}{{"at_vertex", clustered}, {"round_robin", fragmented}} {
		fmt.Printf("%-12s %12v %12v %12.1f MB/s %12d\n",
			row.name, row.r.insert, row.r.traverse,
			bytes/row.r.traverse.Seconds()/1e6, row.r.migrations)
	}
	fmt.Printf("\nfragmentation cost: traversal %.2fx slower, %d extra migrations\n",
		fragmented.traverse.Seconds()/clustered.traverse.Seconds(),
		fragmented.migrations-clustered.migrations)
	fmt.Println("\nThis is the pointer-chasing result (Figs. 6 and 8) in application")
	fmt.Println("form: a cache-less migratory-thread machine degrades gracefully under")
	fmt.Println("the memory fragmentation a streaming graph accumulates.")
}
