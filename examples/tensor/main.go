// Tensor: the paper's second motivating application domain (ParTI-style
// sparse tensor decomposition). The bottleneck of CP/Tucker algorithms is
// sparse tensor contraction with SpMV-like weak locality; this example
// contracts a random 3-mode tensor with a vector (TTV) on the Emu model
// under the 1D-striped and 2D slice-blocked layouts, showing that the
// SpMV layout lesson of Fig. 9a carries over to tensors.
package main

import (
	"fmt"
	"log"

	"emuchick"
	"emuchick/internal/tensor"
)

func main() {
	cfg := emuchick.HardwareChick()
	dims := [3]int{64, 64, 64}
	const nnz = 20000

	fmt.Printf("TTV on %s: %dx%dx%d tensor, %d nonzeros, Y(i,j) = sum_k X(i,j,k) v(k)\n\n",
		cfg.Name, dims[0], dims[1], dims[2], nnz)
	fmt.Printf("%-8s %12s %14s\n", "layout", "time", "bandwidth")
	var bw [2]float64
	for i, layout := range tensor.Layouts {
		res, err := tensor.TTVEmu(cfg, tensor.TTVConfig{
			Dims: dims, NNZ: nnz, Seed: 42, Layout: layout, GrainNNZ: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		bw[i] = res.MBps()
		fmt.Printf("%-8s %12v %11.1f MB/s\n", layout, res.Elapsed, res.MBps())
	}
	fmt.Printf("\n2d over 1d: %.1fx\n", bw[1]/bw[0])
	fmt.Println("\nAs with CSR SpMV, striping nonzeros word-by-word costs a migration")
	fmt.Println("per entry, while slice-blocked placement keeps entry reads local and")
	fmt.Println("pushes output updates through memory-side atomics.")

	// Grain sensitivity, as in the SpMV study.
	fmt.Printf("\n%-10s %14s\n", "grain", "2d bandwidth")
	for _, grain := range []int{4, 16, 256, 1 << 20} {
		res, err := tensor.TTVEmu(cfg, tensor.TTVConfig{
			Dims: dims, NNZ: nnz, Seed: 42, Layout: tensor.Layout2D, GrainNNZ: grain,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %11.1f MB/s\n", grain, res.MBps())
	}

	// MTTKRP — the CP-ALS bottleneck kernel — adds a rank dimension: every
	// nonzero reads 2R replicated factor words locally, so the relative
	// cost of the 1D layout's migrations falls as R grows.
	fmt.Printf("\nMTTKRP layout sensitivity vs rank (same tensor shape):\n")
	fmt.Printf("%-6s %12s %12s %10s\n", "rank", "1d MB/s", "2d MB/s", "2d/1d")
	for _, rank := range []int{1, 2, 4, 8} {
		var bw [2]float64
		for i, layout := range tensor.Layouts {
			res, err := tensor.MTTKRPEmu(cfg, tensor.MTTKRPConfig{
				Dims: dims, NNZ: nnz / 4, Rank: rank, Seed: 42,
				Layout: layout, GrainNNZ: 16,
			})
			if err != nil {
				log.Fatal(err)
			}
			bw[i] = res.MBps()
		}
		fmt.Printf("%-6d %12.1f %12.1f %10.2f\n", rank, bw[0], bw[1], bw[1]/bw[0])
	}
	fmt.Println("\nLayout matters most for low-arithmetic-intensity contractions; the")
	fmt.Println("factor reads of high-rank MTTKRP amortize the migrations that make")
	fmt.Println("TTV and SpMV layout-sensitive.")
}
