// Quickstart: build a simulated Emu Chick, stripe an array across its
// nodelets, spawn workers with a remote-spawn tree, and sum the array in
// parallel — the smallest program that exercises migration-aware
// allocation, remote spawning, memory-side atomics, and the machine
// counters.
package main

import (
	"fmt"
	"log"

	"emuchick"
)

func main() {
	cfg := emuchick.HardwareChick()
	sys := emuchick.NewSystem(cfg)

	// 65536 8-byte words, word i on nodelet i mod 8 — the analogue of
	// the Emu intrinsic mw_malloc1dlong.
	const n = 1 << 16
	arr := sys.Mem.AllocStriped(n)
	var want uint64
	for i := 0; i < n; i++ {
		sys.Mem.Write(arr.At(i), uint64(i))
		want += uint64(i)
	}
	// The accumulator lives on nodelet 0; workers update it with posted
	// memory-side atomics, so no thread ever migrates toward it.
	acc := sys.Mem.AllocLocal(0, 1)

	const workers = 64 // 8 per nodelet
	elapsed, err := sys.Run(func(root *emuchick.Thread) {
		emuchick.SpawnWorkers(root, 8, workers, emuchick.RecursiveRemoteSpawn,
			func(w *emuchick.Thread, id int) {
				// Worker id serves stripe id mod 8, so every Load is
				// local; the 8 workers of a nodelet interleave over it.
				nl, rank := id%8, id/8
				var sum uint64
				for i := nl + 8*rank; i < n; i += 8 * (workers / 8) {
					sum += w.Load(arr.At(i))
				}
				w.RemoteAdd(acc.At(0), sum)
			})
	})
	if err != nil {
		log.Fatal(err)
	}
	got := sys.Mem.Read(acc.At(0))
	if got != want {
		log.Fatalf("sum = %d, want %d", got, want)
	}

	bytes := int64(n) * 8
	fmt.Printf("machine        %s\n", cfg.Name)
	fmt.Printf("summed         %d words -> %d (correct)\n", n, got)
	fmt.Printf("simulated time %v\n", elapsed)
	fmt.Printf("bandwidth      %.1f MB/s\n", float64(bytes)/elapsed.Seconds()/1e6)
	fmt.Printf("threads        %d spawned, max %d live\n",
		sys.Counters.ThreadsSpawned, sys.Counters.MaxLiveThreads)
	fmt.Printf("migrations     %d (all loads were local by construction)\n",
		sys.Counters.TotalMigrations())
	fmt.Printf("word traffic   %d words across %d nodelets\n",
		sys.Counters.TotalWords(), sys.Nodelets())

	// The same sum with a naive local-spawn strategy: workers start on
	// nodelet 0 and migrate to their data, and the spawn loop serializes
	// on one nodelet — the contrast behind Fig. 5.
	sys2 := emuchick.NewSystem(cfg)
	arr2 := sys2.Mem.AllocStriped(n)
	for i := 0; i < n; i++ {
		sys2.Mem.Write(arr2.At(i), uint64(i))
	}
	acc2 := sys2.Mem.AllocLocal(0, 1)
	elapsed2, err := sys2.Run(func(root *emuchick.Thread) {
		emuchick.SpawnWorkers(root, 8, workers, emuchick.SerialSpawn,
			func(w *emuchick.Thread, id int) {
				nl, rank := id%8, id/8
				var sum uint64
				for i := nl + 8*rank; i < n; i += 8 * (workers / 8) {
					sum += w.Load(arr2.At(i))
				}
				w.RemoteAdd(acc2.At(0), sum)
			})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserial_spawn comparison: %v (%.2fx slower), %d migrations\n",
		elapsed2, elapsed2.Seconds()/elapsed.Seconds(), sys2.Counters.TotalMigrations())
}
