// SpMV: reproduce Fig. 9a's comparison interactively — the same synthetic
// 5-point Laplacian multiplied under the three Emu data layouts of Fig. 3
// (local, 1D-striped, custom 2D), showing how placement drives thread
// migration and therefore bandwidth ("smart thread migration", section V-A).
package main

import (
	"fmt"
	"log"

	"emuchick"
)

func main() {
	cfg := emuchick.HardwareChick()
	const gridN = 50 // 2500x2500 Laplacian with 5 diagonals

	type row struct {
		layout emuchick.SpMVLayout
		res    emuchick.Result
	}
	var rows []row
	for _, layout := range []emuchick.SpMVLayout{emuchick.SpMVLocal, emuchick.SpMV1D, emuchick.SpMV2D} {
		res, err := emuchick.RunSpMV(cfg, emuchick.SpMVConfig{
			GridN: gridN, Layout: layout, GrainNNZ: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{layout, res})
	}

	fmt.Printf("SpMV on %s: %dx%d Laplacian (n=%d), grain 16\n\n",
		cfg.Name, gridN*gridN, gridN*gridN, gridN)
	fmt.Printf("%-7s %12s %14s\n", "layout", "time", "bandwidth")
	for _, r := range rows {
		fmt.Printf("%-7s %12v %11.1f MB/s\n", r.layout, r.res.Elapsed, r.res.MBps())
	}
	base := rows[0].res.MBps()
	fmt.Printf("\nspeedups over local: 1d %.1fx, 2d %.1fx\n",
		rows[1].res.MBps()/base, rows[2].res.MBps()/base)
	fmt.Println("\nlocal serializes on one nodelet's channel; 1D migrates on nearly")
	fmt.Println("every nonzero; the two-stage 2D layout keeps whole rows local and")
	fmt.Println("never migrates — the ordering Fig. 9a reports.")

	// Grain-size sensitivity (the Emu side of the paper's grain finding).
	fmt.Printf("\n%-10s %14s\n", "grain", "2d bandwidth")
	for _, grain := range []int{4, 16, 64, 1024, 1 << 20} {
		res, err := emuchick.RunSpMV(cfg, emuchick.SpMVConfig{
			GridN: gridN, Layout: emuchick.SpMV2D, GrainNNZ: grain,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %11.1f MB/s\n", grain, res.MBps())
	}
	fmt.Println("\nsmall grains win on the Emu (the paper's best is 16 elements per")
	fmt.Println("spawn); a huge grain degenerates to serial execution.")
}
