package kernels

import (
	"testing"
	"testing/quick"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
)

func TestShare(t *testing.T) {
	// 10 items over 3 parts: 4,3,3.
	wantLo := []int{0, 4, 7}
	wantHi := []int{4, 7, 10}
	for r := 0; r < 3; r++ {
		lo, hi := share(10, r, 3)
		if lo != wantLo[r] || hi != wantHi[r] {
			t.Fatalf("share(10,%d,3) = [%d,%d)", r, lo, hi)
		}
	}
	if lo, hi := share(5, 0, 0); lo != 0 || hi != 0 {
		t.Fatal("zero parts not empty")
	}
}

// Property: share tiles [0,n) exactly for any n and parts.
func TestSharePartitionProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		parts := int(pRaw%32) + 1
		next := 0
		for r := 0; r < parts; r++ {
			lo, hi := share(n, r, parts)
			if lo != next || hi < lo {
				return false
			}
			next = hi
		}
		return next == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamAddVerifies(t *testing.T) {
	res, err := StreamAdd(machine.HardwareChick(), StreamConfig{
		ElemsPerNodelet: 64, Nodelets: 8, Threads: 16, Strategy: cilk.SerialRemoteSpawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 64*8*24 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestStreamSingleNodeletThreadScaling(t *testing.T) {
	bw := func(threads int) float64 {
		res, err := StreamAdd(machine.HardwareChick(), StreamConfig{
			ElemsPerNodelet: 512, Nodelets: 1, Threads: threads, Strategy: cilk.SerialSpawn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	b1, b8, b64 := bw(1), bw(8), bw(64)
	if b8 < 4*b1 {
		t.Fatalf("8 threads only %.1fx of 1 thread (%v vs %v)", b8/b1, b8, b1)
	}
	if b64 < b8 {
		t.Fatalf("scaling regressed: 8->%v 64->%v", b8, b64)
	}
	// Plateau: 64 threads should not be 8x of 8 threads.
	if b64 > 6*b8 {
		t.Fatalf("no plateau: 8->%v 64->%v", b8, b64)
	}
}

func TestStreamRemoteSpawnBeatsSerial(t *testing.T) {
	bw := func(s cilk.Strategy) float64 {
		res, err := StreamAdd(machine.HardwareChick(), StreamConfig{
			ElemsPerNodelet: 128, Nodelets: 8, Threads: 256, Strategy: s,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	serial := bw(cilk.SerialSpawn)
	remote := bw(cilk.SerialRemoteSpawn)
	if remote <= serial {
		t.Fatalf("remote spawn (%v MB/s) should beat serial spawn (%v MB/s)", remote, serial)
	}
}

func TestStreamNodePeakNearPaper(t *testing.T) {
	// The calibrated model should produce roughly the paper's 1.2 GB/s
	// node STREAM peak (within ~25%).
	res, err := StreamAdd(machine.HardwareChick(), StreamConfig{
		ElemsPerNodelet: 1024, Nodelets: 8, Threads: 512, Strategy: cilk.RecursiveRemoteSpawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	gb := res.GBps()
	if gb < 0.9 || gb > 1.5 {
		t.Fatalf("node STREAM peak = %.3f GB/s, want ~1.2", gb)
	}
}

func TestStreamKernelNames(t *testing.T) {
	want := map[StreamKernel]string{
		StreamAddKernel: "add", StreamCopyKernel: "copy",
		StreamScaleKernel: "scale", StreamTriadKernel: "triad",
	}
	//lint:allow nodeterminism order-independent assertions over a literal map
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if StreamKernel(9).String() == "" {
		t.Error("unknown kernel String empty")
	}
}

func TestStreamAllKernelsVerify(t *testing.T) {
	for _, k := range StreamKernels {
		res, err := Stream(machine.HardwareChick(), StreamConfig{
			Kernel: k, ElemsPerNodelet: 64, Nodelets: 8, Threads: 16,
			Strategy: cilk.SerialRemoteSpawn,
		})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Bytes != 64*8*k.bytesPerElement() {
			t.Fatalf("%v: bytes = %d", k, res.Bytes)
		}
	}
}

func TestStreamCopyMovesFewerBytesButRunsFaster(t *testing.T) {
	run := func(k StreamKernel) metrics.Result {
		res, err := Stream(machine.HardwareChick(), StreamConfig{
			Kernel: k, ElemsPerNodelet: 256, Nodelets: 8, Threads: 64,
			Strategy: cilk.SerialRemoteSpawn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cp, add := run(StreamCopyKernel), run(StreamAddKernel)
	if cp.Bytes >= add.Bytes {
		t.Fatal("copy should count fewer bytes than add")
	}
	if cp.Elapsed >= add.Elapsed {
		t.Fatalf("copy (%v) should finish before add (%v)", cp.Elapsed, add.Elapsed)
	}
}

func TestStreamRejectsBadConfig(t *testing.T) {
	bad := []StreamConfig{
		{ElemsPerNodelet: 0, Nodelets: 1, Threads: 1},
		{ElemsPerNodelet: 8, Nodelets: 0, Threads: 1},
		{ElemsPerNodelet: 8, Nodelets: 1, Threads: 0},
		{ElemsPerNodelet: 8, Nodelets: 99, Threads: 1},
	}
	for _, cfg := range bad {
		if _, err := StreamAdd(machine.HardwareChick(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
