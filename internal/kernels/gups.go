package kernels

import (
	"fmt"

	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
)

// GUPSConfig parameterizes a RandomAccess-style kernel. The paper uses
// GUPS as the nearest relative of pointer chasing ("GUPS lacks
// data-dependent loads, and pointer chase does not modify the list"), so
// the kernel exists both as a comparison workload and as an exercise of
// the memory-side atomic path.
type GUPSConfig struct {
	TableWords int // striped table size in 8-byte words
	Updates    int // total updates to perform
	Threads    int
	Seed       uint64
}

// GUPS performs random read-modify-write updates over a striped table
// using posted memory-side atomics (no thread ever migrates), and reports
// the update bandwidth at 8 bytes per update.
func GUPS(mcfg machine.Config, cfg GUPSConfig, opts ...RunOption) (metrics.Result, error) {
	if cfg.TableWords <= 0 || cfg.Updates <= 0 || cfg.Threads <= 0 {
		return metrics.Result{}, fmt.Errorf("kernels: invalid GUPS config %+v", cfg)
	}
	sys := newSystem(mcfg, opts...)
	table := sys.Mem.AllocStriped(cfg.TableWords)
	stream := workload.GUPSStream(cfg.Updates, cfg.TableWords, workload.NewRNG(cfg.Seed))

	// Reference: count how many times each slot is bumped.
	want := make([]uint64, cfg.TableWords)
	for _, idx := range stream {
		want[idx]++
	}

	nodelets := sys.Nodelets()
	var res metrics.Result
	_, err := sys.Run(func(root *machine.Thread) {
		t0 := root.Now()
		for k := 0; k < cfg.Threads; k++ {
			k := k
			lo, hi := share(cfg.Updates, k, cfg.Threads)
			if lo == hi {
				continue
			}
			root.SpawnAt(k%nodelets, func(w *machine.Thread) {
				for j := lo; j < hi; j++ {
					w.RemoteAdd(table.At(stream[j]), 1)
					w.Compute(4)
				}
			})
		}
		root.Sync()
		res.Elapsed = root.Now() - t0
	})
	if err != nil {
		return metrics.Result{}, err
	}
	for i, w := range want {
		if got := sys.Mem.Read(table.At(i)); got != w {
			return metrics.Result{}, fmt.Errorf("kernels: GUPS slot %d = %d, want %d", i, got, w)
		}
	}
	if m := sys.Counters.TotalMigrations(); m != 0 {
		return metrics.Result{}, fmt.Errorf("kernels: GUPS migrated %d times; atomics must not migrate", m)
	}
	res.Bytes = int64(cfg.Updates) * 8
	return res, nil
}
