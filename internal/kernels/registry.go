package kernels

import (
	"fmt"
	"sort"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/workload"
)

// The registry names every benchmark kernel so callers that only hold a
// string — a jobspec request, an emurun flag, the emuchick.Run facade — can
// resolve and invoke it. Each entry adapts the kernel's typed config to the
// flat Params vocabulary shared by the CLI flags and the job server's JSON
// schema, and flattens the kernel's typed result into a Measurement: a
// labelled float64 vector that serializes, checkpoints, and caches
// uniformly.

// Params is the flat, kernel-agnostic parameter set. Every kernel reads the
// subset it understands and ignores the rest; the zero value of a field
// means "unset" (jobspec.Canonical fills defaults, the CLIs supply them as
// flag defaults). Field meanings match the emurun flags of the same name.
type Params struct {
	Nodelets int    `json:"nodelets,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	Elems    int    `json:"elems,omitempty"` // stream: per nodelet; chase/gups: total
	Strategy string `json:"strategy,omitempty"`
	Block    int    `json:"block,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	GridN    int    `json:"grid_n,omitempty"`
	Layout   string `json:"layout,omitempty"`
	Grain    int    `json:"grain,omitempty"`
	Iters    int    `json:"iters,omitempty"`
	Updates  int    `json:"updates,omitempty"`
	NodeletA int    `json:"nodelet_a,omitempty"`
	NodeletB int    `json:"nodelet_b,omitempty"`
}

// DefaultParams is the shared default vector — the single source of the
// per-kernel flag defaults emurun historically used, now also the values
// jobspec.Canonical substitutes for unset request fields.
func DefaultParams() Params {
	return Params{
		Nodelets: 8,
		Threads:  64,
		Elems:    4096,
		Strategy: cilk.SerialRemoteSpawn.String(),
		Block:    64,
		Mode:     workload.FullBlockShuffle.String(),
		Seed:     1,
		GridN:    32,
		Layout:   SpMV2D.String(),
		Grain:    16,
		Iters:    1000,
		Updates:  16384,
		NodeletA: 0,
		NodeletB: 1,
	}
}

// Measurement is a kernel run's result flattened to a labelled vector —
// the canonical form recorded in checkpoint logs, cached by the job
// server, and printed by emurun. Values[i] is described by Labels[i].
type Measurement struct {
	Kernel string    `json:"kernel"`
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

// Result reinterprets a bandwidth-kernel measurement (labels "bytes",
// "elapsed_ps") as a metrics.Result.
func (m Measurement) Result() metrics.Result {
	var r metrics.Result
	if len(m.Values) >= 2 {
		r.Bytes = int64(m.Values[0])
		r.Elapsed = sim.Time(m.Values[1])
	}
	return r
}

// PingPong reinterprets a ping-pong measurement as its typed result.
func (m Measurement) PingPong() PingPongResult {
	var r PingPongResult
	if len(m.Values) >= 4 {
		r.Migrations = uint64(m.Values[0])
		r.Elapsed = sim.Time(m.Values[1])
		r.MigrationsPerSec = m.Values[2]
		r.MeanLatency = sim.Time(m.Values[3])
	}
	return r
}

// bandwidthLabels is the measurement shape shared by every byte-moving
// kernel; pingpongLabels is the migration microbenchmark's.
var (
	bandwidthLabels = []string{"bytes", "elapsed_ps"}
	pingpongLabels  = []string{"migrations", "elapsed_ps", "migrations_per_sec", "mean_latency_ps"}
)

// Kernel is one registered benchmark: a name, the labels of its measurement
// vector, and an adapter from flat Params to the kernel's typed entry point.
type Kernel struct {
	Name string
	Doc  string
	// Labels describe the measurement vector Run produces, in order.
	Labels []string
	Run    func(cfg machine.Config, p Params, opts ...RunOption) (Measurement, error)
}

var kernelRegistry = map[string]Kernel{}

// register adds a kernel at package init; duplicate names are a
// programming error.
func register(k Kernel) {
	if _, dup := kernelRegistry[k.Name]; dup {
		panic(fmt.Sprintf("kernels: duplicate kernel %q", k.Name))
	}
	kernelRegistry[k.Name] = k
}

// ByName resolves a registered kernel.
func ByName(name string) (Kernel, error) {
	k, ok := kernelRegistry[name]
	if !ok {
		return Kernel{}, fmt.Errorf("kernels: unknown kernel %q (have %v)", name, Names())
	}
	return k, nil
}

// Names lists the registered kernel names in sorted order.
func Names() []string {
	names := make([]string, 0, len(kernelRegistry))
	for name := range kernelRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseSpMVLayout maps a layout name back to its SpMVLayout.
func ParseSpMVLayout(name string) (SpMVLayout, error) {
	switch name {
	case "local":
		return SpMVLocal, nil
	case "1d":
		return SpMV1D, nil
	case "2d":
		return SpMV2D, nil
	default:
		return 0, fmt.Errorf("kernels: unknown SpMV layout %q (local, 1d, 2d)", name)
	}
}

// Typed-config-to-Params inverses, used by the deprecated facade wrappers so
// the old entry points route losslessly through the registry.

// StreamParams flattens a StreamConfig.
func StreamParams(c StreamConfig) Params {
	return Params{Elems: c.ElemsPerNodelet, Nodelets: c.Nodelets,
		Threads: c.Threads, Strategy: c.Strategy.String()}
}

// ChaseParams flattens a ChaseConfig.
func ChaseParams(c ChaseConfig) Params {
	return Params{Elems: c.Elements, Block: c.BlockSize, Mode: c.Mode.String(),
		Seed: c.Seed, Threads: c.Threads, Nodelets: c.Nodelets}
}

// SpMVParams flattens an SpMVConfig.
func SpMVParams(c SpMVConfig) Params {
	return Params{GridN: c.GridN, Layout: c.Layout.String(), Grain: c.GrainNNZ}
}

// PingPongParams flattens a PingPongConfig.
func PingPongParams(c PingPongConfig) Params {
	return Params{Threads: c.Threads, Iters: c.Iterations, NodeletA: c.NodeletA, NodeletB: c.NodeletB}
}

// GUPSParams flattens a GUPSConfig.
func GUPSParams(c GUPSConfig) Params {
	return Params{Elems: c.TableWords, Updates: c.Updates, Threads: c.Threads, Seed: c.Seed}
}

// asMeasurement flattens a bandwidth result.
func asMeasurement(kernel string, res metrics.Result, err error) (Measurement, error) {
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Kernel: kernel, Labels: bandwidthLabels,
		Values: []float64{float64(res.Bytes), float64(res.Elapsed)}}, nil
}

func init() {
	register(Kernel{
		Name:   "stream",
		Doc:    "STREAM ADD bandwidth benchmark (Figs. 4-5)",
		Labels: bandwidthLabels,
		Run: func(cfg machine.Config, p Params, opts ...RunOption) (Measurement, error) {
			strat, err := cilk.ParseStrategy(p.Strategy)
			if err != nil {
				return Measurement{}, err
			}
			res, err := StreamAdd(cfg, StreamConfig{
				ElemsPerNodelet: p.Elems, Nodelets: p.Nodelets, Threads: p.Threads, Strategy: strat,
			}, opts...)
			return asMeasurement("stream", res, err)
		},
	})
	register(Kernel{
		Name:   "chase",
		Doc:    "block-shuffled pointer chasing (Fig. 6)",
		Labels: bandwidthLabels,
		Run: func(cfg machine.Config, p Params, opts ...RunOption) (Measurement, error) {
			mode, err := workload.ParseShuffleMode(p.Mode)
			if err != nil {
				return Measurement{}, err
			}
			res, err := PointerChase(cfg, ChaseConfig{
				Elements: p.Elems, BlockSize: p.Block, Mode: mode, Seed: p.Seed,
				Threads: p.Threads, Nodelets: p.Nodelets,
			}, opts...)
			return asMeasurement("chase", res, err)
		},
	})
	register(Kernel{
		Name:   "spmv",
		Doc:    "CSR SpMV over the synthetic Laplacian (Fig. 9a)",
		Labels: bandwidthLabels,
		Run: func(cfg machine.Config, p Params, opts ...RunOption) (Measurement, error) {
			layout, err := ParseSpMVLayout(p.Layout)
			if err != nil {
				return Measurement{}, err
			}
			res, err := SpMV(cfg, SpMVConfig{GridN: p.GridN, Layout: layout, GrainNNZ: p.Grain}, opts...)
			return asMeasurement("spmv", res, err)
		},
	})
	register(Kernel{
		Name:   "pingpong",
		Doc:    "thread-migration microbenchmark (Fig. 10)",
		Labels: pingpongLabels,
		Run: func(cfg machine.Config, p Params, opts ...RunOption) (Measurement, error) {
			pp, err := PingPong(cfg, PingPongConfig{
				Threads: p.Threads, Iterations: p.Iters, NodeletA: p.NodeletA, NodeletB: p.NodeletB,
			}, opts...)
			if err != nil {
				return Measurement{}, err
			}
			return Measurement{Kernel: "pingpong", Labels: pingpongLabels, Values: []float64{
				float64(pp.Migrations), float64(pp.Elapsed), pp.MigrationsPerSec, float64(pp.MeanLatency),
			}}, nil
		},
	})
	register(Kernel{
		Name:   "gups",
		Doc:    "RandomAccess-style update kernel",
		Labels: bandwidthLabels,
		Run: func(cfg machine.Config, p Params, opts ...RunOption) (Measurement, error) {
			res, err := GUPS(cfg, GUPSConfig{
				TableWords: p.Elems, Updates: p.Updates, Threads: p.Threads, Seed: p.Seed,
			}, opts...)
			return asMeasurement("gups", res, err)
		},
	})
}
