package kernels

import (
	"testing"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/workload"
)

// Kernel-level engine equivalence: each ported kernel must report the exact
// same simulated elapsed time (and thus bandwidth/latency figures) on the
// goroutine and continuation engines, across every spawn strategy and both
// machine configurations the paper's figures use.

func TestStreamEnginesAgreeAllStrategies(t *testing.T) {
	for _, strat := range cilk.Strategies {
		for _, nodelets := range []int{1, 8} {
			cfg := StreamConfig{ElemsPerNodelet: 64, Nodelets: nodelets, Threads: 13, Strategy: strat}
			g, err := StreamAdd(machine.HardwareChick(), cfg, WithProcEngine(GoroutineProcs))
			if err != nil {
				t.Fatalf("%v/%dnl goroutine: %v", strat, nodelets, err)
			}
			c, err := StreamAdd(machine.HardwareChick(), cfg, WithProcEngine(ContinuationProcs))
			if err != nil {
				t.Fatalf("%v/%dnl continuation: %v", strat, nodelets, err)
			}
			if g != c {
				t.Errorf("%v/%dnl: goroutine %+v, continuation %+v", strat, nodelets, g, c)
			}
		}
	}
}

func TestStreamEnginesAgreeAllKernels(t *testing.T) {
	for _, k := range StreamKernels {
		cfg := StreamConfig{Kernel: k, ElemsPerNodelet: 32, Nodelets: 8, Threads: 16, Strategy: cilk.RecursiveRemoteSpawn}
		g, err := Stream(machine.HardwareChick(), cfg, WithProcEngine(GoroutineProcs))
		if err != nil {
			t.Fatalf("%v goroutine: %v", k, err)
		}
		c, err := Stream(machine.HardwareChick(), cfg, WithProcEngine(ContinuationProcs))
		if err != nil {
			t.Fatalf("%v continuation: %v", k, err)
		}
		if g != c {
			t.Errorf("%v: goroutine %+v, continuation %+v", k, g, c)
		}
	}
}

func TestChaseEnginesAgree(t *testing.T) {
	for _, mode := range []workload.ShuffleMode{workload.NoShuffle, workload.BlockShuffle, workload.FullBlockShuffle} {
		cfg := ChaseConfig{Elements: 256, BlockSize: 16, Mode: mode, Seed: 7, Threads: 9, Nodelets: 8}
		g, gs, err := PointerChaseWithStats(machine.HardwareChick(), cfg, WithProcEngine(GoroutineProcs))
		if err != nil {
			t.Fatalf("%v goroutine: %v", mode, err)
		}
		c, cs, err := PointerChaseWithStats(machine.HardwareChick(), cfg, WithProcEngine(ContinuationProcs))
		if err != nil {
			t.Fatalf("%v continuation: %v", mode, err)
		}
		if g != c || gs != cs {
			t.Errorf("%v: goroutine %+v/%+v, continuation %+v/%+v", mode, g, gs, c, cs)
		}
	}
}

func TestPingPongEnginesAgree(t *testing.T) {
	for _, threads := range []int{1, 4, 16} {
		cfg := PingPongConfig{Threads: threads, Iterations: 25, NodeletA: 0, NodeletB: 5}
		g, err := PingPong(machine.SimMatched(), cfg, WithProcEngine(GoroutineProcs))
		if err != nil {
			t.Fatalf("threads=%d goroutine: %v", threads, err)
		}
		c, err := PingPong(machine.SimMatched(), cfg, WithProcEngine(ContinuationProcs))
		if err != nil {
			t.Fatalf("threads=%d continuation: %v", threads, err)
		}
		if g != c {
			t.Errorf("threads=%d: goroutine %+v, continuation %+v", threads, g, c)
		}
	}
}
