package kernels

import (
	"testing"

	"emuchick/internal/machine"
	"emuchick/internal/sim"
)

func TestPingPongSingleThreadLatency(t *testing.T) {
	res, err := PingPong(machine.HardwareChick(), PingPongConfig{
		Threads: 1, Iterations: 500, NodeletA: 0, NodeletB: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// "the latency for a single thread migration on the current system is
	// approximately 1-2 us" (section IV-D).
	if res.MeanLatency < 1*sim.Microsecond || res.MeanLatency > 2*sim.Microsecond {
		t.Fatalf("single-migration latency = %v, want 1-2 us", res.MeanLatency)
	}
	if res.Migrations != 1000 {
		t.Fatalf("migrations = %d", res.Migrations)
	}
}

func TestPingPongHardwareRate(t *testing.T) {
	// Saturated hardware: ~9 M migrations/s.
	res, err := PingPong(machine.HardwareChick(), PingPongConfig{
		Threads: 64, Iterations: 200, NodeletA: 0, NodeletB: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MigrationsPerSec < 8e6 || res.MigrationsPerSec > 9.5e6 {
		t.Fatalf("hardware rate = %.2f M/s, want ~9", res.MigrationsPerSec/1e6)
	}
}

func TestPingPongSimulatorRate(t *testing.T) {
	// The vendor-simulator config: ~16 M migrations/s.
	res, err := PingPong(machine.SimMatched(), PingPongConfig{
		Threads: 64, Iterations: 200, NodeletA: 0, NodeletB: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MigrationsPerSec < 14e6 || res.MigrationsPerSec > 16.5e6 {
		t.Fatalf("simulator rate = %.2f M/s, want ~16", res.MigrationsPerSec/1e6)
	}
}

func TestPingPongRejectsBadConfig(t *testing.T) {
	bad := []PingPongConfig{
		{Threads: 0, Iterations: 1, NodeletA: 0, NodeletB: 1},
		{Threads: 1, Iterations: 0, NodeletA: 0, NodeletB: 1},
		{Threads: 1, Iterations: 1, NodeletA: 3, NodeletB: 3},
		{Threads: 1, Iterations: 1, NodeletA: 0, NodeletB: 99},
	}
	for _, cfg := range bad {
		if _, err := PingPong(machine.HardwareChick(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
