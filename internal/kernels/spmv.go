package kernels

import (
	"fmt"
	"math"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/sparse"
)

// Per-nonzero and per-row instruction overheads of the (untuned) CSR SpMV
// inner loop: floating-point multiply-add and index arithmetic on a simple
// in-order core.
const (
	spmvNNZCycles = 24
	spmvRowCycles = 10
)

// SpMVLayout selects one of the three Emu data layouts of Fig. 3.
type SpMVLayout int

const (
	// SpMVLocal places everything (matrix, x, y) on nodelet 0 with
	// contiguous mallocs — the paper's "local" case, which serializes
	// behind one nodelet's channel and core.
	SpMVLocal SpMVLayout = iota
	// SpMV1D stripes the matrix arrays word-by-word across nodelets
	// (mw_malloc1dlong), replicates x, and keeps y on nodelet 0; a
	// thread migrates on nearly every nonzero.
	SpMV1D
	// SpMV2D uses the paper's custom two-stage allocation: each nodelet
	// holds the values and column indices of its assigned rows
	// contiguously, so no migrations occur within a row.
	SpMV2D
)

// SpMVLayouts lists the three layouts in the paper's order.
var SpMVLayouts = []SpMVLayout{SpMVLocal, SpMV1D, SpMV2D}

// String returns the paper's name for the layout.
func (l SpMVLayout) String() string {
	switch l {
	case SpMVLocal:
		return "local"
	case SpMV1D:
		return "1d"
	case SpMV2D:
		return "2d"
	default:
		return fmt.Sprintf("SpMVLayout(%d)", int(l))
	}
}

// SpMVConfig parameterizes one Emu SpMV run over the synthetic Laplacian.
type SpMVConfig struct {
	// GridN is the stencil grid edge; the matrix is GridN^2 x GridN^2
	// with five diagonals.
	GridN int
	// Layout selects the data placement.
	Layout SpMVLayout
	// GrainNNZ is the number of matrix elements per spawned task (the
	// paper finds 16 most effective on the Emu). Thread concurrency is
	// bounded by the machine's hardware contexts, as on the real Chick.
	GrainNNZ int
	// Nodelets restricts the layout to the first N nodelets; zero means
	// all of them.
	Nodelets int
	// StripeX places the input vector as a 1D-striped array instead of
	// replicating it per nodelet — the ablation of the paper's "smart
	// thread migration" recommendation #2 (replicate common inputs).
	// Only meaningful for the 1D and 2D layouts.
	StripeX bool
}

// SpMV multiplies the Laplacian by a fixed dyadic-valued vector under the
// configured layout, verifies y against the reference MulVec, and reports
// effective bandwidth over the paper's useful-byte count.
func SpMV(mcfg machine.Config, cfg SpMVConfig, opts ...RunOption) (metrics.Result, error) {
	if cfg.GridN <= 0 || cfg.GrainNNZ <= 0 {
		return metrics.Result{}, fmt.Errorf("kernels: invalid spmv config %+v", cfg)
	}
	sys := newSystem(mcfg, opts...)
	nodelets := cfg.Nodelets
	if nodelets == 0 {
		nodelets = sys.Nodelets()
	}
	if nodelets > sys.Nodelets() {
		return metrics.Result{}, fmt.Errorf("kernels: spmv wants %d nodelets, machine has %d",
			nodelets, sys.Nodelets())
	}
	m := sparse.Laplacian2D(cfg.GridN)
	xv := make([]float64, m.Cols)
	for i := range xv {
		xv[i] = 1 + float64(i%7)*0.125 // dyadic values: exact FP arithmetic
	}
	want := m.MulVec(xv)

	// Average Laplacian row has ~5 nonzeros; convert the nnz grain to a
	// row grain.
	grainRows := cfg.GrainNNZ / 5
	if grainRows < 1 {
		grainRows = 1
	}

	var elapsed metricsTime
	var err error
	switch cfg.Layout {
	case SpMVLocal:
		elapsed, err = spmvLocal(sys, m, xv, grainRows)
	case SpMV1D:
		elapsed, err = spmv1D(sys, m, xv, grainRows, nodelets, cfg.StripeX)
	case SpMV2D:
		elapsed, err = spmv2D(sys, m, xv, grainRows, nodelets, cfg.StripeX)
	default:
		return metrics.Result{}, fmt.Errorf("kernels: unknown layout %v", cfg.Layout)
	}
	if err != nil {
		return metrics.Result{}, err
	}
	for r := 0; r < m.Rows; r++ {
		if got := math.Float64frombits(sys.Mem.Read(elapsed.y.At(r))); got != want[r] {
			return metrics.Result{}, fmt.Errorf("kernels: spmv y[%d] = %v, want %v", r, got, want[r])
		}
	}
	if cfg.Layout == SpMV2D && !cfg.StripeX {
		if mig := sys.Counters.TotalMigrations(); mig != 0 {
			return metrics.Result{}, fmt.Errorf("kernels: 2d layout migrated %d times; rows must be migration-free", mig)
		}
	}
	return metrics.Result{Bytes: m.UsefulBytes(), Elapsed: elapsed.t}, nil
}

// metricsTime carries the timed duration plus the y vector handle for
// verification.
type metricsTime struct {
	t sim.Time
	y vector
}

// makeXLoader allocates the input vector under the requested placement and
// returns the timed accessor kernels use for x[col]. Replication (the
// default and the paper's recommendation) makes every x read local;
// striping makes x[col] live on nodelet col mod N, so reading it migrates.
func makeXLoader(sys *machine.System, xv []float64, stripeX bool) func(*machine.Thread, int) float64 {
	if stripeX {
		xs := sys.Mem.AllocStriped(len(xv))
		for c := range xv {
			sys.Mem.Write(xs.At(c), math.Float64bits(xv[c]))
		}
		return func(w *machine.Thread, c int) float64 {
			return math.Float64frombits(w.Load(xs.At(c)))
		}
	}
	xr := sys.Mem.AllocReplicated(len(xv))
	for c := range xv {
		xr.Broadcast(sys.Mem, c, math.Float64bits(xv[c]))
	}
	return func(w *machine.Thread, c int) float64 {
		return math.Float64frombits(w.Load(xr.At(w.Nodelet(), c)))
	}
}

// spmvLocal runs the all-on-nodelet-0 layout.
func spmvLocal(sys *machine.System, m *sparse.CSR, xv []float64, grainRows int) (metricsTime, error) {
	rp := sys.Mem.AllocLocal(0, m.Rows+1)
	ci := sys.Mem.AllocLocal(0, m.NNZ())
	vv := sys.Mem.AllocLocal(0, m.NNZ())
	xa := sys.Mem.AllocLocal(0, m.Cols)
	ya := sys.Mem.AllocLocal(0, m.Rows)
	for r := 0; r <= m.Rows; r++ {
		sys.Mem.Write(rp.At(r), uint64(m.RowPtr[r]))
	}
	for k := 0; k < m.NNZ(); k++ {
		sys.Mem.Write(ci.At(k), uint64(m.ColIdx[k]))
		sys.Mem.Write(vv.At(k), math.Float64bits(m.Val[k]))
	}
	for c := range xv {
		sys.Mem.Write(xa.At(c), math.Float64bits(xv[c]))
	}
	var out metricsTime
	out.y = ya
	_, err := sys.Run(func(root *machine.Thread) {
		t0 := root.Now()
		cilk.ParallelFor(root, m.Rows, grainRows, func(w *machine.Thread, lo, hi int) {
			for r := lo; r < hi; r++ {
				kLo := w.Load(rp.At(r))
				kHi := w.Load(rp.At(r + 1))
				var sum float64
				for k := kLo; k < kHi; k++ {
					c := w.Load(ci.At(int(k)))
					v := math.Float64frombits(w.Load(vv.At(int(k))))
					x := math.Float64frombits(w.Load(xa.At(int(c))))
					sum += v * x
					w.Compute(spmvNNZCycles)
				}
				w.Store(ya.At(r), math.Float64bits(sum))
				w.Compute(spmvRowCycles)
			}
		})
		out.t = root.Now() - t0
	})
	return out, err
}

// spmv1D runs the word-striped layout: matrix arrays striped, x replicated
// (or striped under the ablation), y on nodelet 0.
func spmv1D(sys *machine.System, m *sparse.CSR, xv []float64, grainRows, nodelets int, stripeX bool) (metricsTime, error) {
	rp := sys.Mem.AllocStriped(m.Rows + 1)
	ci := sys.Mem.AllocStriped(m.NNZ())
	vv := sys.Mem.AllocStriped(m.NNZ())
	loadX := makeXLoader(sys, xv, stripeX)
	ya := sys.Mem.AllocLocal(0, m.Rows)
	for r := 0; r <= m.Rows; r++ {
		sys.Mem.Write(rp.At(r), uint64(m.RowPtr[r]))
	}
	for k := 0; k < m.NNZ(); k++ {
		sys.Mem.Write(ci.At(k), uint64(m.ColIdx[k]))
		sys.Mem.Write(vv.At(k), math.Float64bits(m.Val[k]))
	}
	var out metricsTime
	out.y = ya
	_, err := sys.Run(func(root *machine.Thread) {
		t0 := root.Now()
		cilk.ParallelFor(root, m.Rows, grainRows, func(w *machine.Thread, lo, hi int) {
			for r := lo; r < hi; r++ {
				kLo := w.Load(rp.At(r))     // migrates to nodelet r mod N
				kHi := w.Load(rp.At(r + 1)) // and again for r+1
				var sum float64
				for k := kLo; k < kHi; k++ {
					// ColIdx and Val share stripe indices, so the pair
					// is one migration followed by a local load.
					c := w.Load(ci.At(int(k)))
					v := math.Float64frombits(w.Load(vv.At(int(k))))
					x := loadX(w, int(c))
					sum += v * x
					w.Compute(spmvNNZCycles)
				}
				w.Store(ya.At(r), math.Float64bits(sum)) // posted to nodelet 0
				w.Compute(spmvRowCycles)
			}
		})
		out.t = root.Now() - t0
	})
	return out, err
}

// spmv2D runs the two-stage blocked layout: rows dealt round-robin, each
// nodelet's shard contiguous, per-row (offset, length) metadata local.
func spmv2D(sys *machine.System, m *sparse.CSR, xv []float64, grainRows, nodelets int, stripeX bool) (metricsTime, error) {
	part := sparse.PartitionRows(m, nodelets)
	// Shards need padding to the system's nodelet count.
	ciWords := make([]int, sys.Nodelets())
	metaWords := make([]int, sys.Nodelets())
	for nl := 0; nl < nodelets; nl++ {
		ciWords[nl] = part.WordsOf[nl]
		metaWords[nl] = 2 * len(part.RowsOf[nl])
	}
	ci := sys.Mem.AllocBlocked(ciWords)
	vv := sys.Mem.AllocBlocked(ciWords)
	meta := sys.Mem.AllocBlocked(metaWords)
	loadX := makeXLoader(sys, xv, stripeX)
	ya := sys.Mem.AllocLocal(0, m.Rows)
	for nl := 0; nl < nodelets; nl++ {
		for slot, r := range part.RowsOf[nl] {
			off := part.Offset[r]
			sys.Mem.Write(meta.At(nl, 2*slot), uint64(off))
			sys.Mem.Write(meta.At(nl, 2*slot+1), uint64(m.RowNNZ(r)))
			for j := 0; j < m.RowNNZ(r); j++ {
				k := m.RowPtr[r] + int64(j)
				sys.Mem.Write(ci.At(nl, off+j), uint64(m.ColIdx[k]))
				sys.Mem.Write(vv.At(nl, off+j), math.Float64bits(m.Val[k]))
			}
		}
	}
	var out metricsTime
	out.y = ya
	_, err := sys.Run(func(root *machine.Thread) {
		t0 := root.Now()
		for nl := 0; nl < nodelets; nl++ {
			nl := nl
			rows := part.RowsOf[nl]
			if len(rows) == 0 {
				continue
			}
			root.SpawnAt(nl, func(coord *machine.Thread) {
				cilk.ParallelFor(coord, len(rows), grainRows, func(w *machine.Thread, lo, hi int) {
					for slot := lo; slot < hi; slot++ {
						r := rows[slot]
						off := w.Load(meta.At(nl, 2*slot))
						cnt := w.Load(meta.At(nl, 2*slot+1))
						var sum float64
						for j := uint64(0); j < cnt; j++ {
							c := w.Load(ci.At(nl, int(off+j)))
							v := math.Float64frombits(w.Load(vv.At(nl, int(off+j))))
							x := loadX(w, int(c))
							sum += v * x
							w.Compute(spmvNNZCycles)
						}
						w.Store(ya.At(r), math.Float64bits(sum)) // posted to nodelet 0
						w.Compute(spmvRowCycles)
					}
				})
			})
		}
		root.Sync()
		out.t = root.Now() - t0
	})
	return out, err
}
