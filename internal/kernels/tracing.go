package kernels

import (
	"context"
	"io"

	"emuchick/internal/fault"
	"emuchick/internal/machine"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// Package-level tracing hook: kernels build their own System per run, so
// callers that want an operation trace (cmd/emurun's -trace flag) register
// a writer here before invoking a kernel.
var (
	traceWriter io.Writer
	traceLimit  int
)

// TraceNextSystem routes the first limit machine operations of every
// subsequently constructed kernel system to w; pass (nil, 0) to disable.
// Not safe for concurrent kernel invocations — it exists for the
// single-run CLI path.
func TraceNextSystem(w io.Writer, limit int) {
	traceWriter = w
	traceLimit = limit
}

// RunOption configures the System a kernel builds for one run. Every kernel
// entry point accepts trailing RunOptions; passing none costs nothing.
type RunOption func(*runConfig)

type runConfig struct {
	obs       trace.Observer
	sample    sim.Time
	sampleSet bool
	ctx       context.Context
	plan      *fault.Plan
	maxEvents uint64
	engine    ProcEngine
}

// ProcEngine selects how a kernel's simulated threadlets are hosted by the
// event engine.
type ProcEngine int

const (
	// ContinuationProcs (the default) hosts each threadlet as a resumable
	// state machine the event loop steps in place — no goroutine, no
	// channel handoff per context switch, and bounded bytes per threadlet,
	// which is what makes rack-scale thread counts simulable.
	ContinuationProcs ProcEngine = iota
	// GoroutineProcs hosts each threadlet on its own goroutine, parking on
	// a channel at every wait — the original engine, kept as a
	// compatibility shim and as the independent reference implementation
	// the equivalence tests diff the continuation engine against.
	GoroutineProcs
)

// String names the engine for reports and jobspec fingerprints.
func (e ProcEngine) String() string {
	if e == GoroutineProcs {
		return "goroutine"
	}
	return "continuation"
}

// WithProcEngine selects the proc engine for kernels that have both
// implementations (STREAM, pointer chase, ping-pong). The two engines are
// byte-identical in simulated time, counters, and traces — this knob exists
// for host-side performance comparison and for regression-testing the
// equivalence, not to change results. Kernels without a continuation port
// always use goroutine procs regardless of this option.
func WithProcEngine(e ProcEngine) RunOption {
	return func(c *runConfig) { c.engine = e }
}

// WithObserver streams the run's machine events and gauge samples to obs.
// The observer composes with (does not replace) a TraceNextSystem writer.
func WithObserver(obs trace.Observer) RunOption {
	return func(c *runConfig) { c.obs = obs }
}

// WithSampleInterval sets the gauge-sampling interval of the run's system
// (d <= 0 disables sampling). Without this option the machine default
// applies.
func WithSampleInterval(d sim.Time) RunOption {
	return func(c *runConfig) { c.sample = d; c.sampleSet = true }
}

// WithContext makes the run cancellable: once ctx is done the simulation
// aborts promptly and the kernel returns ctx's error.
func WithContext(ctx context.Context) RunOption {
	return func(c *runConfig) { c.ctx = ctx }
}

// WithFaultPlan injects a deterministic fault plan into the run's system
// before the kernel starts (see internal/fault). A nil or empty plan is a
// no-op and the run stays byte-identical to an uninjected one; later
// WithFaultPlan options replace earlier ones.
func WithFaultPlan(p *fault.Plan) RunOption {
	return func(c *runConfig) { c.plan = p }
}

// WithMaxEvents caps the run at n dispatched engine events: past the budget
// the simulation aborts with a sim.RunError instead of running open-ended.
// 0 keeps the engine unlimited. The experiment watchdog uses this as the
// deterministic half of its deadline (wall clocks vary; event counts don't).
func WithMaxEvents(n uint64) RunOption {
	return func(c *runConfig) { c.maxEvents = n }
}

// resolveRunConfig folds the option list into one runConfig, so kernels with
// engine-dependent bodies can branch on it before building their system.
func resolveRunConfig(opts []RunOption) runConfig {
	var c runConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&c)
		}
	}
	return c
}

// newSystem builds a machine with the package tracing hook and the per-run
// options applied.
func newSystem(cfg machine.Config, opts ...RunOption) *machine.System {
	rc := resolveRunConfig(opts)
	return newSystemRC(cfg, &rc)
}

// newSystemRC is newSystem over an already-resolved runConfig.
func newSystemRC(cfg machine.Config, c *runConfig) *machine.System {
	sys := machine.NewSystem(cfg)
	if traceWriter != nil {
		sys.TraceTo(traceWriter, traceLimit)
	}
	if c.plan != nil {
		sys.InjectFaults(c.plan)
	}
	if c.obs != nil {
		sys.Attach(trace.Tee(sys.Observer(), c.obs))
	}
	if c.sampleSet {
		sys.SampleEvery(c.sample)
	}
	if c.ctx != nil {
		sys.WatchContext(c.ctx)
	}
	if c.maxEvents > 0 {
		sys.Eng.MaxEvents = c.maxEvents
	}
	return sys
}
