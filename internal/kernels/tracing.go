package kernels

import (
	"io"

	"emuchick/internal/machine"
)

// Package-level tracing hook: kernels build their own System per run, so
// callers that want an operation trace (cmd/emurun's -trace flag) register
// a writer here before invoking a kernel.
var (
	traceWriter io.Writer
	traceLimit  int
)

// TraceNextSystem routes the first limit machine operations of every
// subsequently constructed kernel system to w; pass (nil, 0) to disable.
// Not safe for concurrent kernel invocations — it exists for the
// single-run CLI path.
func TraceNextSystem(w io.Writer, limit int) {
	traceWriter = w
	traceLimit = limit
}

// newSystem builds a machine with the package tracing hook applied.
func newSystem(cfg machine.Config) *machine.System {
	sys := machine.NewSystem(cfg)
	if traceWriter != nil {
		sys.TraceTo(traceWriter, traceLimit)
	}
	return sys
}
