package kernels

import (
	"context"
	"io"

	"emuchick/internal/fault"
	"emuchick/internal/machine"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// Package-level tracing hook: kernels build their own System per run, so
// callers that want an operation trace (cmd/emurun's -trace flag) register
// a writer here before invoking a kernel.
var (
	traceWriter io.Writer
	traceLimit  int
)

// TraceNextSystem routes the first limit machine operations of every
// subsequently constructed kernel system to w; pass (nil, 0) to disable.
// Not safe for concurrent kernel invocations — it exists for the
// single-run CLI path.
func TraceNextSystem(w io.Writer, limit int) {
	traceWriter = w
	traceLimit = limit
}

// RunOption configures the System a kernel builds for one run. Every kernel
// entry point accepts trailing RunOptions; passing none costs nothing.
type RunOption func(*runConfig)

type runConfig struct {
	obs       trace.Observer
	sample    sim.Time
	sampleSet bool
	ctx       context.Context
	plan      *fault.Plan
	maxEvents uint64
}

// WithObserver streams the run's machine events and gauge samples to obs.
// The observer composes with (does not replace) a TraceNextSystem writer.
func WithObserver(obs trace.Observer) RunOption {
	return func(c *runConfig) { c.obs = obs }
}

// WithSampleInterval sets the gauge-sampling interval of the run's system
// (d <= 0 disables sampling). Without this option the machine default
// applies.
func WithSampleInterval(d sim.Time) RunOption {
	return func(c *runConfig) { c.sample = d; c.sampleSet = true }
}

// WithContext makes the run cancellable: once ctx is done the simulation
// aborts promptly and the kernel returns ctx's error.
func WithContext(ctx context.Context) RunOption {
	return func(c *runConfig) { c.ctx = ctx }
}

// WithFaultPlan injects a deterministic fault plan into the run's system
// before the kernel starts (see internal/fault). A nil or empty plan is a
// no-op and the run stays byte-identical to an uninjected one; later
// WithFaultPlan options replace earlier ones.
func WithFaultPlan(p *fault.Plan) RunOption {
	return func(c *runConfig) { c.plan = p }
}

// WithMaxEvents caps the run at n dispatched engine events: past the budget
// the simulation aborts with a sim.RunError instead of running open-ended.
// 0 keeps the engine unlimited. The experiment watchdog uses this as the
// deterministic half of its deadline (wall clocks vary; event counts don't).
func WithMaxEvents(n uint64) RunOption {
	return func(c *runConfig) { c.maxEvents = n }
}

// newSystem builds a machine with the package tracing hook and the per-run
// options applied.
func newSystem(cfg machine.Config, opts ...RunOption) *machine.System {
	sys := machine.NewSystem(cfg)
	if traceWriter != nil {
		sys.TraceTo(traceWriter, traceLimit)
	}
	if len(opts) == 0 {
		return sys
	}
	var c runConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&c)
		}
	}
	if c.plan != nil {
		sys.InjectFaults(c.plan)
	}
	if c.obs != nil {
		sys.Attach(trace.Tee(sys.Observer(), c.obs))
	}
	if c.sampleSet {
		sys.SampleEvery(c.sample)
	}
	if c.ctx != nil {
		sys.WatchContext(c.ctx)
	}
	if c.maxEvents > 0 {
		sys.Eng.MaxEvents = c.maxEvents
	}
	return sys
}
