package kernels

import (
	"fmt"

	"emuchick/internal/machine"
	"emuchick/internal/sim"
)

// PingPongConfig parameterizes the ping-pong migration microbenchmark of
// section III-E: N threads migrate back and forth between two nodelets
// several thousand times, exposing the migration engine's throughput and
// the per-migration latency.
type PingPongConfig struct {
	Threads    int
	Iterations int // round trips per thread
	NodeletA   int
	NodeletB   int
}

// PingPongResult reports the migration metrics of Fig. 10's bottom panel.
type PingPongResult struct {
	Migrations       uint64
	Elapsed          sim.Time
	MigrationsPerSec float64
	// MeanLatency is elapsed time per migration per thread — with one
	// thread it is the single-migration latency the paper bounds at
	// 1-2 us.
	MeanLatency sim.Time
}

// PingPong runs the microbenchmark on a fresh system built from mcfg.
func PingPong(mcfg machine.Config, cfg PingPongConfig, opts ...RunOption) (PingPongResult, error) {
	if cfg.Threads <= 0 || cfg.Iterations <= 0 {
		return PingPongResult{}, fmt.Errorf("kernels: invalid ping-pong config %+v", cfg)
	}
	if cfg.NodeletA == cfg.NodeletB {
		return PingPongResult{}, fmt.Errorf("kernels: ping-pong needs two distinct nodelets")
	}
	rc := resolveRunConfig(opts)
	sys := newSystemRC(mcfg, &rc)
	if cfg.NodeletA >= sys.Nodelets() || cfg.NodeletB >= sys.Nodelets() {
		return PingPongResult{}, fmt.Errorf("kernels: ping-pong nodelets out of range")
	}
	var out PingPongResult
	var err error
	if rc.engine == GoroutineProcs {
		_, err = sys.Run(func(root *machine.Thread) {
			t0 := root.Now()
			for k := 0; k < cfg.Threads; k++ {
				root.SpawnAt(cfg.NodeletA, func(w *machine.Thread) {
					for i := 0; i < cfg.Iterations; i++ {
						w.MigrateTo(cfg.NodeletB)
						w.MigrateTo(cfg.NodeletA)
					}
				})
			}
			root.Sync()
			out.Elapsed = root.Now() - t0
		})
	} else {
		_, err = sys.RunCont(&pingContRoot{sp: pingSpawner{cfg: cfg}, out: &out.Elapsed})
	}
	if err != nil {
		return PingPongResult{}, err
	}
	want := uint64(cfg.Threads) * uint64(cfg.Iterations) * 2
	got := sys.Counters.Nodelet(cfg.NodeletA).MigrationsOut + sys.Counters.Nodelet(cfg.NodeletB).MigrationsOut
	if got != want {
		return PingPongResult{}, fmt.Errorf("kernels: ping-pong migrations %d, want %d", got, want)
	}
	out.Migrations = want
	if out.Elapsed > 0 {
		out.MigrationsPerSec = float64(want) / out.Elapsed.Seconds()
	}
	perThread := want / uint64(cfg.Threads)
	out.MeanLatency = sim.Time(int64(out.Elapsed) / int64(perThread))
	return out, nil
}
