package kernels

import (
	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
	"emuchick/internal/sim"
)

// Continuation-form kernel bodies: the spawn-heavy kernels (STREAM,
// pointer chase, ping-pong) restated as machine.CBody state machines with
// operation sequences identical to their goroutine twins. A kernel run on
// either engine produces the same simulated times, counters, traces, and
// memory — the goroutine closures remain in the kernel files as the
// reference the equivalence tests diff against.

// timedRoot wraps a resumable spawn tree as a run's root body and records
// the elapsed time from body start to the tree's final join — the same
// measured region as `t0 := root.Now(); ...; res = root.Now() - t0` in the
// goroutine roots.
type timedRoot struct {
	drive   func(t *machine.CThread) (parked bool)
	out     *sim.Time
	started bool
	done    bool
	t0      sim.Time
}

//emu:nohandoff CBody contract: park state, never the goroutine
func (r *timedRoot) Step(t *machine.CThread) bool {
	if !r.started {
		r.started = true
		r.t0 = t.Now()
	}
	if !r.done {
		//lint:allow nohandoff drive is bound at construction to cilk Workers.Drive or Grouped.Drive, both pure CThread state machines
		if r.drive(t) {
			return false
		}
		r.done = true
		*r.out = t.Now() - r.t0
	}
	return true
}

// streamShared is the per-run state every STREAM worker reads.
type streamShared struct {
	a, b, c vector
	kernel  StreamKernel
	loads   int
	index   func(nl, j int) int
}

// streamWorker walks one worker's share of the stripe:
// load a[i] (+ b[i]), store c[i], charge the loop overhead.
type streamWorker struct {
	sh     *streamShared
	nl     int // the nodelet whose stripe this worker serves
	j, hi  int
	va, vb uint64
	pc     int
}

//emu:nohandoff CBody contract: park state, never the goroutine
func (w *streamWorker) Step(t *machine.CThread) bool {
	s := w.sh
	for {
		switch w.pc {
		case 0: // loop head
			if w.j >= w.hi {
				return true
			}
			w.pc = 1
			//lint:allow nohandoff index is the arithmetic stripe-index closure from streamShared construction
			if t.CLoad(s.a.At(s.index(w.nl, w.j))) {
				return false
			}
		case 1:
			w.va = t.Value()
			if s.loads == 2 {
				w.pc = 2
				//lint:allow nohandoff index is the arithmetic stripe-index closure from streamShared construction
				if t.CLoad(s.b.At(s.index(w.nl, w.j))) {
					return false
				}
			} else {
				w.vb = 0
				w.pc = 3
			}
		case 2:
			w.vb = t.Value()
			w.pc = 3
		case 3:
			w.pc = 4
			//lint:allow nohandoff index is the arithmetic stripe-index closure from streamShared construction
			if t.CStore(s.c.At(s.index(w.nl, w.j)), s.kernel.apply(w.va, w.vb)) {
				return false
			}
		case 4:
			w.j++
			w.pc = 0
			if t.CCompute(streamOverheadCycles) {
				return false
			}
		}
	}
}

// streamContRoot builds the continuation root body for one STREAM run.
func streamContRoot(cfg StreamConfig, sh *streamShared, out *sim.Time) machine.CBody {
	ws := cilk.NewWorkers(cfg.Nodelets, cfg.Threads, cfg.Strategy, func(id int) machine.CBody {
		nl := id % cfg.Nodelets
		rank := id / cfg.Nodelets
		ranks := (cfg.Threads - nl + cfg.Nodelets - 1) / cfg.Nodelets
		lo, hi := share(cfg.ElemsPerNodelet, rank, ranks)
		return &streamWorker{sh: sh, nl: nl, j: lo, hi: hi}
	})
	return &timedRoot{drive: ws.Drive, out: out}
}

// chaseWorker walks one pointer chain: two dependent loads and the loop
// overhead per element, until the end-of-list sentinel.
type chaseWorker struct {
	sums []uint64
	k    int
	addr memsys.Addr
	sum  uint64
	next uint64
	pc   int
}

//emu:nohandoff CBody contract: park state, never the goroutine
func (w *chaseWorker) Step(t *machine.CThread) bool {
	for {
		switch w.pc {
		case 0: // payload load
			w.pc = 1
			if t.CLoad(w.addr) {
				return false
			}
		case 1: // next-pointer load
			w.sum += t.Value()
			w.pc = 2
			if t.CLoad(w.addr.Plus(1)) {
				return false
			}
		case 2: // loop overhead
			w.next = t.Value()
			w.pc = 3
			if t.CCompute(chaseOverheadCycles) {
				return false
			}
		case 3:
			if w.next == endOfList {
				w.sums[w.k] = w.sum
				return true
			}
			w.addr = memsys.Addr(w.next)
			w.pc = 0
		}
	}
}

// chaseContRoot builds the continuation root body for one pointer-chase run.
func chaseContRoot(groups [][]int, starts []memsys.Addr, sums []uint64, out *sim.Time) machine.CBody {
	g := cilk.NewGrouped(groups, func(k int) machine.CBody {
		return &chaseWorker{sums: sums, k: k, addr: starts[k]}
	})
	return &timedRoot{drive: g.Drive, out: out}
}

// pingWorker migrates back and forth between two nodelets.
type pingWorker struct {
	a, b     int
	iters, i int
	pc       int
}

//emu:nohandoff CBody contract: park state, never the goroutine
func (w *pingWorker) Step(t *machine.CThread) bool {
	for w.i < w.iters {
		switch w.pc {
		case 0:
			w.pc = 1
			if t.CMigrateTo(w.b) {
				return false
			}
		case 1:
			w.pc = 0
			w.i++
			if t.CMigrateTo(w.a) {
				return false
			}
		}
	}
	return true
}

// pingSpawner fans the ping-pong workers out from the root, all on nodelet A.
type pingSpawner struct {
	cfg PingPongConfig
	k   int
}

func (s *pingSpawner) drive(t *machine.CThread) bool {
	for s.k < s.cfg.Threads {
		s.k++
		w := &pingWorker{a: s.cfg.NodeletA, b: s.cfg.NodeletB, iters: s.cfg.Iterations}
		if t.CSpawnAt(s.cfg.NodeletA, w) {
			return false
		}
	}
	return true
}

// pingContRoot builds the continuation root body for one ping-pong run:
// spawn every worker, explicit sync, record elapsed — the goroutine root's
// exact sequence.
type pingContRoot struct {
	sp      pingSpawner
	out     *sim.Time
	started bool
	synced  bool
	t0      sim.Time
}

//emu:nohandoff CBody contract: park state, never the goroutine
func (r *pingContRoot) Step(t *machine.CThread) bool {
	if !r.started {
		r.started = true
		r.t0 = t.Now()
	}
	if !r.sp.drive(t) {
		return false
	}
	if !r.synced {
		r.synced = true
		if t.CSync() {
			return false
		}
	}
	if r.out != nil {
		*r.out = t.Now() - r.t0
		r.out = nil
	}
	return true
}
