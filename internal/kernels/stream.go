// Package kernels implements the paper's four benchmarks against the Emu
// machine model: STREAM ADD with the four spawn strategies (section IV-A),
// block-shuffled pointer chasing (IV-B), CSR SpMV under three data layouts
// (IV-C), and the ping-pong migration microbenchmark (IV-D), plus a
// GUPS-style random-access kernel for comparison. Every kernel verifies its
// functional result against a reference computation before reporting a
// measurement.
package kernels

import (
	"fmt"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
	"emuchick/internal/metrics"
)

// streamOverheadCycles is the per-element loop overhead of the tuned STREAM
// ADD inner loop (index arithmetic, bounds test, branch) beyond its three
// memory operations.
const streamOverheadCycles = 8

// vector is any allocation addressable by element index; both
// memsys.Local and memsys.Striped satisfy it.
type vector interface {
	At(i int) memsys.Addr
}

// StreamKernel selects one of the four STREAM operations. The paper
// reports ADD; the other three complete McCalpin's suite over the same
// 8-byte integer arrays the Emu port uses.
type StreamKernel int

const (
	// StreamAddKernel computes c[i] = a[i] + b[i] (24 B/element).
	StreamAddKernel StreamKernel = iota
	// StreamCopyKernel computes c[i] = a[i] (16 B/element).
	StreamCopyKernel
	// StreamScaleKernel computes c[i] = 3*a[i] (16 B/element).
	StreamScaleKernel
	// StreamTriadKernel computes c[i] = a[i] + 3*b[i] (24 B/element).
	StreamTriadKernel
)

// StreamKernels lists the suite in McCalpin's order.
var StreamKernels = []StreamKernel{StreamCopyKernel, StreamScaleKernel, StreamAddKernel, StreamTriadKernel}

// String names the kernel as STREAM does.
func (k StreamKernel) String() string {
	switch k {
	case StreamAddKernel:
		return "add"
	case StreamCopyKernel:
		return "copy"
	case StreamScaleKernel:
		return "scale"
	case StreamTriadKernel:
		return "triad"
	default:
		return fmt.Sprintf("StreamKernel(%d)", int(k))
	}
}

// loadsStores reports the kernel's memory operations per element.
func (k StreamKernel) loadsStores() (loads, stores int) {
	switch k {
	case StreamAddKernel, StreamTriadKernel:
		return 2, 1
	default:
		return 1, 1
	}
}

// bytesPerElement is the kernel's STREAM byte accounting.
func (k StreamKernel) bytesPerElement() int64 {
	loads, stores := k.loadsStores()
	return int64(loads+stores) * 8
}

// apply computes the kernel's result for one element.
func (k StreamKernel) apply(a, b uint64) uint64 {
	switch k {
	case StreamAddKernel:
		return a + b
	case StreamCopyKernel:
		return a
	case StreamScaleKernel:
		return 3 * a
	case StreamTriadKernel:
		return a + 3*b
	default:
		panic("kernels: unknown stream kernel")
	}
}

// StreamConfig parameterizes one STREAM run.
type StreamConfig struct {
	// Kernel selects the operation; the zero value is ADD, the kernel
	// the paper reports.
	Kernel StreamKernel
	// ElemsPerNodelet is the array length divided by the nodelet count;
	// total elements = ElemsPerNodelet * Nodelets.
	ElemsPerNodelet int
	// Nodelets is how many nodelets the arrays (and workers) span;
	// 1 reproduces Fig. 4, 8 reproduces Fig. 5.
	Nodelets int
	// Threads is the worker count.
	Threads int
	// Strategy selects the spawn tree.
	Strategy cilk.Strategy
}

// StreamAdd runs the STREAM ADD kernel (c[i] = a[i] + b[i] over 8-byte
// integers, the paper's port); it is Stream with the kernel forced to ADD.
func StreamAdd(mcfg machine.Config, cfg StreamConfig, opts ...RunOption) (metrics.Result, error) {
	cfg.Kernel = StreamAddKernel
	return Stream(mcfg, cfg, opts...)
}

// Stream runs the configured STREAM kernel on a fresh system built from
// mcfg and returns the measured bandwidth result. The measured region
// spans worker creation through the final join, which is what makes the
// spawn strategies of Fig. 5 distinguishable.
func Stream(mcfg machine.Config, cfg StreamConfig, opts ...RunOption) (metrics.Result, error) {
	if cfg.ElemsPerNodelet <= 0 || cfg.Threads <= 0 || cfg.Nodelets <= 0 {
		return metrics.Result{}, fmt.Errorf("kernels: invalid stream config %+v", cfg)
	}
	rc := resolveRunConfig(opts)
	sys := newSystemRC(mcfg, &rc)
	if cfg.Nodelets > sys.Nodelets() {
		return metrics.Result{}, fmt.Errorf("kernels: stream wants %d nodelets, machine has %d",
			cfg.Nodelets, sys.Nodelets())
	}
	n := cfg.ElemsPerNodelet * cfg.Nodelets

	// On one nodelet the arrays are plain local allocations
	// (mw_localmalloc); across nodelets they are striped word by word
	// (mw_malloc1dlong), so element i lives on nodelet i mod N and a
	// worker walking stride N touches only local words.
	var a, b, c vector
	if cfg.Nodelets == 1 {
		a = sys.Mem.AllocLocal(0, n)
		b = sys.Mem.AllocLocal(0, n)
		c = sys.Mem.AllocLocal(0, n)
	} else {
		a = sys.Mem.AllocStriped(n)
		b = sys.Mem.AllocStriped(n)
		c = sys.Mem.AllocStriped(n)
	}
	// index maps (nodelet, slot) to the element a worker on that nodelet
	// processes; with one nodelet elements are simply consecutive.
	index := func(nl, j int) int {
		if cfg.Nodelets == 1 {
			return j
		}
		return nl + j*cfg.Nodelets
	}
	for i := 0; i < n; i++ {
		sys.Mem.Write(a.At(i), uint64(i))
		sys.Mem.Write(b.At(i), uint64(2*i))
	}

	loads, _ := cfg.Kernel.loadsStores()
	var res metrics.Result
	var err error
	if rc.engine == GoroutineProcs {
		_, err = sys.Run(func(root *machine.Thread) {
			t0 := root.Now()
			cilk.SpawnWorkers(root, cfg.Nodelets, cfg.Threads, cfg.Strategy, func(w *machine.Thread, id int) {
				// Worker id serves nodelet id mod Nodelets and takes its
				// rank-th contiguous share of that nodelet's stripe.
				nl := id % cfg.Nodelets
				rank := id / cfg.Nodelets
				ranks := (cfg.Threads - nl + cfg.Nodelets - 1) / cfg.Nodelets
				lo, hi := share(cfg.ElemsPerNodelet, rank, ranks)
				for j := lo; j < hi; j++ {
					i := index(nl, j)
					va := w.Load(a.At(i))
					var vb uint64
					if loads == 2 {
						vb = w.Load(b.At(i))
					}
					w.Store(c.At(i), cfg.Kernel.apply(va, vb))
					w.Compute(streamOverheadCycles)
				}
			})
			res.Elapsed = root.Now() - t0
		})
	} else {
		sh := &streamShared{a: a, b: b, c: c, kernel: cfg.Kernel, loads: loads, index: index}
		_, err = sys.RunCont(streamContRoot(cfg, sh, &res.Elapsed))
	}
	if err != nil {
		return metrics.Result{}, err
	}
	res.Bytes = int64(n) * cfg.Kernel.bytesPerElement()

	for i := 0; i < n; i++ {
		want := cfg.Kernel.apply(uint64(i), uint64(2*i))
		if got := sys.Mem.Read(c.At(i)); got != want {
			return metrics.Result{}, fmt.Errorf("kernels: stream %v c[%d] = %d, want %d",
				cfg.Kernel, i, got, want)
		}
	}
	return res, nil
}

// share splits n items into parts pieces and returns the half-open range of
// piece rank (earlier pieces take the remainder).
func share(n, rank, parts int) (lo, hi int) {
	if parts <= 0 {
		return 0, 0
	}
	base := n / parts
	rem := n % parts
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
