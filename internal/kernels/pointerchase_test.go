package kernels

import (
	"testing"

	"emuchick/internal/machine"
	"emuchick/internal/workload"
)

func chaseBW(t *testing.T, cfg ChaseConfig) float64 {
	t.Helper()
	res, err := PointerChase(machine.HardwareChick(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.MBps()
}

func TestPointerChaseVerifiesAllModes(t *testing.T) {
	for _, mode := range workload.ShuffleModes {
		res, err := PointerChase(machine.HardwareChick(), ChaseConfig{
			Elements: 512, BlockSize: 16, Mode: mode, Seed: 42, Threads: 8, Nodelets: 8,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Bytes != 512*16 {
			t.Fatalf("%v: bytes = %d", mode, res.Bytes)
		}
	}
}

func TestPointerChaseBlockOneDip(t *testing.T) {
	// The defining Emu result: block size 1 migrates on almost every
	// element and is far slower; performance recovers by block ~8.
	base := ChaseConfig{Elements: 4096, Mode: workload.FullBlockShuffle, Seed: 7, Threads: 128, Nodelets: 8}
	cfg1 := base
	cfg1.BlockSize = 1
	cfg8 := base
	cfg8.BlockSize = 8
	cfg256 := base
	cfg256.BlockSize = 256
	b1 := chaseBW(t, cfg1)
	b8 := chaseBW(t, cfg8)
	b256 := chaseBW(t, cfg256)
	if b1 >= b8/2 {
		t.Fatalf("block-1 dip missing: block1=%v block8=%v MB/s", b1, b8)
	}
	// Flatness across moderate blocks: within 2x.
	if b8 > 2*b256 || b256 > 2*b8 {
		t.Fatalf("not flat: block8=%v block256=%v MB/s", b8, b256)
	}
}

func TestPointerChaseInsensitiveToShuffleAboveBlockOne(t *testing.T) {
	// With decent block sizes, intra vs full shuffle barely matters on
	// the Emu (no caches to defeat).
	base := ChaseConfig{Elements: 4096, BlockSize: 64, Seed: 3, Threads: 128, Nodelets: 8}
	intra := base
	intra.Mode = workload.IntraBlockShuffle
	full := base
	full.Mode = workload.FullBlockShuffle
	bi := chaseBW(t, intra)
	bf := chaseBW(t, full)
	ratio := bi / bf
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("shuffle sensitivity too high: intra=%v full=%v", bi, bf)
	}
}

func TestPointerChaseThreadScaling(t *testing.T) {
	base := ChaseConfig{Elements: 4096, BlockSize: 64, Mode: workload.FullBlockShuffle, Seed: 9, Nodelets: 8}
	few := base
	few.Threads = 16
	many := base
	many.Threads = 256
	bf := chaseBW(t, few)
	bm := chaseBW(t, many)
	if bm < 2*bf {
		t.Fatalf("thread scaling weak: 16->%v 256->%v MB/s", bf, bm)
	}
}

func TestPointerChaseSimFasterAtBlockOne(t *testing.T) {
	// Fig. 10: the vendor-simulator config (16 M mig/s) outruns hardware
	// (9 M mig/s) on the migration-bound case but matches elsewhere.
	cfg := ChaseConfig{Elements: 2048, BlockSize: 1, Mode: workload.FullBlockShuffle, Seed: 5, Threads: 256, Nodelets: 8}
	hw, err := PointerChase(machine.HardwareChick(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := PointerChase(machine.SimMatched(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sm.MBps() <= hw.MBps()*12/10 {
		t.Fatalf("sim (%v) should clearly beat hw (%v) at block 1", sm.MBps(), hw.MBps())
	}
}

func TestPointerChaseMoreThreadsThanElements(t *testing.T) {
	// Threads beyond elements leave some chains empty; must still verify.
	if _, err := PointerChase(machine.HardwareChick(), ChaseConfig{
		Elements: 8, BlockSize: 2, Mode: workload.BlockShuffle, Seed: 1, Threads: 16, Nodelets: 8,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPointerChaseRejectsBadConfig(t *testing.T) {
	bad := []ChaseConfig{
		{Elements: 0, BlockSize: 1, Threads: 1, Nodelets: 1},
		{Elements: 8, BlockSize: 0, Threads: 1, Nodelets: 1},
		{Elements: 8, BlockSize: 1, Threads: 0, Nodelets: 1},
		{Elements: 8, BlockSize: 1, Threads: 1, Nodelets: 0},
		{Elements: 8, BlockSize: 1, Threads: 1, Nodelets: 1000},
	}
	for _, cfg := range bad {
		if _, err := PointerChase(machine.HardwareChick(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
