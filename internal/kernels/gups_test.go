package kernels

import (
	"testing"

	"emuchick/internal/machine"
)

func TestGUPSVerifies(t *testing.T) {
	res, err := GUPS(machine.HardwareChick(), GUPSConfig{
		TableWords: 256, Updates: 2048, Threads: 32, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 2048*8 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
}

func TestGUPSThreadScaling(t *testing.T) {
	bw := func(threads int) float64 {
		res, err := GUPS(machine.HardwareChick(), GUPSConfig{
			TableWords: 512, Updates: 4096, Threads: threads, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	if one, many := bw(1), bw(64); many <= one {
		t.Fatalf("GUPS did not scale: 1->%v 64->%v MB/s", one, many)
	}
}

func TestGUPSRejectsBadConfig(t *testing.T) {
	bad := []GUPSConfig{
		{TableWords: 0, Updates: 1, Threads: 1},
		{TableWords: 1, Updates: 0, Threads: 1},
		{TableWords: 1, Updates: 1, Threads: 0},
	}
	for _, cfg := range bad {
		if _, err := GUPS(machine.HardwareChick(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
