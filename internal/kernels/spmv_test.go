package kernels

import (
	"testing"

	"emuchick/internal/machine"
)

func TestSpMVLayoutNames(t *testing.T) {
	if SpMVLocal.String() != "local" || SpMV1D.String() != "1d" || SpMV2D.String() != "2d" {
		t.Fatal("layout names wrong")
	}
	if SpMVLayout(9).String() == "" {
		t.Fatal("unknown layout String empty")
	}
}

func TestSpMVAllLayoutsVerify(t *testing.T) {
	for _, layout := range SpMVLayouts {
		res, err := SpMV(machine.HardwareChick(), SpMVConfig{
			GridN: 8, Layout: layout, GrainNNZ: 16,
		})
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Bytes <= 0 || res.Elapsed <= 0 {
			t.Fatalf("%v: empty result %+v", layout, res)
		}
	}
}

func TestSpMVLayoutOrdering(t *testing.T) {
	// Fig. 9a: 2D > 1D > local in effective bandwidth.
	bw := map[SpMVLayout]float64{}
	for _, layout := range SpMVLayouts {
		res, err := SpMV(machine.HardwareChick(), SpMVConfig{
			GridN: 24, Layout: layout, GrainNNZ: 16,
		})
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		bw[layout] = res.MBps()
	}
	if !(bw[SpMV2D] > bw[SpMV1D] && bw[SpMV1D] > bw[SpMVLocal]) {
		t.Fatalf("layout ordering broken: local=%.1f 1d=%.1f 2d=%.1f MB/s",
			bw[SpMVLocal], bw[SpMV1D], bw[SpMV2D])
	}
}

func TestSpMVSmallGrainBeatsHugeGrainOnEmu(t *testing.T) {
	// Section IV-C: "a much smaller grain size of 16 elements per spawn
	// is most effective for the Emu implementation" — a huge grain
	// serializes the machine.
	small, err := SpMV(machine.HardwareChick(), SpMVConfig{GridN: 16, Layout: SpMV2D, GrainNNZ: 16})
	if err != nil {
		t.Fatal(err)
	}
	huge, err := SpMV(machine.HardwareChick(), SpMVConfig{GridN: 16, Layout: SpMV2D, GrainNNZ: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if small.MBps() <= huge.MBps() {
		t.Fatalf("grain 16 (%v MB/s) should beat huge grain (%v MB/s)", small.MBps(), huge.MBps())
	}
}

func TestSpMV2DScalesWithMatrixSize(t *testing.T) {
	bw := func(n int) float64 {
		res, err := SpMV(machine.HardwareChick(), SpMVConfig{GridN: n, Layout: SpMV2D, GrainNNZ: 16})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	if small, big := bw(6), bw(24); big <= small {
		t.Fatalf("2D bandwidth should grow with n: n=6 %.1f, n=24 %.1f MB/s", small, big)
	}
}

func TestSpMVStripedXCostsMigrations(t *testing.T) {
	// The paper's "smart migration" recommendation: replicate common
	// inputs like x. Striping x instead forces a migration per gather.
	replicated, err := SpMV(machine.HardwareChick(), SpMVConfig{
		GridN: 16, Layout: SpMV2D, GrainNNZ: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	striped, err := SpMV(machine.HardwareChick(), SpMVConfig{
		GridN: 16, Layout: SpMV2D, GrainNNZ: 16, StripeX: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if striped.MBps() >= replicated.MBps() {
		t.Fatalf("striped x (%v MB/s) should lose to replicated x (%v MB/s)",
			striped.MBps(), replicated.MBps())
	}
}

func TestSpMVCSXPaysOnlyWhenChannelBound(t *testing.T) {
	// The compressed index stream trades channel words for decode cycles,
	// so where the kernel binds decides who wins: the prototype's 150 MHz
	// single core is issue-bound (CSR stays ahead), while the full-speed
	// configuration's four 300 MHz cores push the bottleneck onto the
	// channel and CSX pulls ahead — the quantitative answer to the
	// paper's SparseX future-work question.
	ratio := func(cfg machine.Config) float64 {
		csr, err := SpMV(cfg, SpMVConfig{GridN: 48, Layout: SpMV2D, GrainNNZ: 16})
		if err != nil {
			t.Fatal(err)
		}
		csx, err := SpMVCSX(cfg, SpMVCSXConfig{GridN: 48, GrainNNZ: 16})
		if err != nil {
			t.Fatal(err)
		}
		if csx.Bytes != csr.Bytes {
			t.Fatalf("useful-byte accounting differs: %d vs %d", csx.Bytes, csr.Bytes)
		}
		return csx.MBps() / csr.MBps()
	}
	hw := ratio(machine.HardwareChick())
	full := ratio(machine.FullSpeed(1))
	if hw > 1.02 {
		t.Fatalf("csx should not beat csr on the core-bound prototype (ratio %.2f)", hw)
	}
	if full <= 1.0 {
		t.Fatalf("csx should win on the channel-bound full-speed machine (ratio %.2f)", full)
	}
	if full <= hw {
		t.Fatalf("csx advantage should grow with core speed: hw %.2f, full %.2f", hw, full)
	}
}

func TestSpMVCSXRejectsBadConfig(t *testing.T) {
	for _, cfg := range []SpMVCSXConfig{{GridN: 0, GrainNNZ: 16}, {GridN: 8, GrainNNZ: 0}} {
		if _, err := SpMVCSX(machine.HardwareChick(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSpMVRejectsBadConfig(t *testing.T) {
	bad := []SpMVConfig{
		{GridN: 0, Layout: SpMVLocal, GrainNNZ: 16},
		{GridN: 4, Layout: SpMVLocal, GrainNNZ: 0},
		{GridN: 4, Layout: SpMVLayout(42), GrainNNZ: 16},
		{GridN: 4, Layout: SpMVLocal, GrainNNZ: 16, Nodelets: 999},
	}
	for _, cfg := range bad {
		if _, err := SpMV(machine.HardwareChick(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
