package kernels

import (
	"reflect"
	"testing"

	"emuchick/internal/machine"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"chase", "gups", "pingpong", "spmv", "stream"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		k, err := ByName(name)
		if err != nil || k.Name != name || k.Run == nil || len(k.Labels) == 0 {
			t.Fatalf("ByName(%q) = %+v, %v", name, k, err)
		}
	}
	if _, err := ByName("linpack"); err == nil {
		t.Fatal("unknown kernel resolved")
	}
}

// TestRegistryMatchesTypedEntryPoints pins losslessness: invoking a kernel
// through the registry with the flattened params produces exactly the typed
// entry point's result.
func TestRegistryMatchesTypedEntryPoints(t *testing.T) {
	cfg := machine.HardwareChick()

	sc := StreamConfig{ElemsPerNodelet: 64, Nodelets: 8, Threads: 16}
	direct, err := StreamAdd(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := ByName("stream")
	m, err := k.Run(cfg, StreamParams(sc))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Result(); got != direct {
		t.Fatalf("registry stream %+v != direct %+v", got, direct)
	}

	pc := PingPongConfig{Threads: 4, Iterations: 50, NodeletA: 0, NodeletB: 1}
	ppDirect, err := PingPong(cfg, pc)
	if err != nil {
		t.Fatal(err)
	}
	kp, _ := ByName("pingpong")
	pm, err := kp.Run(cfg, PingPongParams(pc))
	if err != nil {
		t.Fatal(err)
	}
	if got := pm.PingPong(); got != ppDirect {
		t.Fatalf("registry pingpong %+v != direct %+v", got, ppDirect)
	}
}

// TestRegistryRejectsBadEnums: the adapters surface enum parse errors
// instead of panicking or silently defaulting.
func TestRegistryRejectsBadEnums(t *testing.T) {
	cfg := machine.HardwareChick()
	cases := map[string]Params{
		"stream": {Elems: 16, Nodelets: 8, Threads: 4, Strategy: "bogus"},
		"chase":  {Elems: 64, Block: 8, Threads: 4, Mode: "bogus", Seed: 1},
		"spmv":   {GridN: 8, Layout: "3d", Grain: 16},
	}
	for name, p := range cases {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Run(cfg, p); err == nil {
			t.Errorf("%s accepted %+v", name, p)
		}
	}
}
