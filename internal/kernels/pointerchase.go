package kernels

import (
	"fmt"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
)

// chaseOverheadCycles is the per-element cost of the list-walk loop beyond
// its two loads (pointer compare, sum update, branch). The walk is not
// hand-tuned the way STREAM is, which is why pointer chasing settles at
// ~80% of the STREAM peak on the Emu (Fig. 8).
const chaseOverheadCycles = 16

// endOfList is the next-pointer sentinel. Addr 0 is a valid address, so the
// terminator is all-ones instead.
const endOfList = ^uint64(0)

// ChaseConfig parameterizes one pointer-chasing run (section III-E).
type ChaseConfig struct {
	Elements  int // list elements; each is 16 bytes (payload + next)
	BlockSize int // elements per locality block
	Mode      workload.ShuffleMode
	Seed      uint64
	Threads   int
	Nodelets  int // nodelets the blocks round-robin across
}

// ChaseStats exposes the machine-side event counts of a pointer-chase run,
// feeding the comparison metric section V-B proposes ("network traffic,
// i.e. threads migrated measured using context size and time").
type ChaseStats struct {
	Migrations     uint64
	MigrationBytes int64 // Migrations x thread-context size
}

// PointerChase builds a block-shuffled linked list laid out block-by-block
// across nodelets (block b on nodelet b mod N), splits it into one chain
// per thread, and times all threads walking their chains concurrently.
// Every element visit is two data-dependent 8-byte loads; entering a block
// that lives on another nodelet migrates the thread.
func PointerChase(mcfg machine.Config, cfg ChaseConfig, opts ...RunOption) (metrics.Result, error) {
	res, _, err := PointerChaseWithStats(mcfg, cfg, opts...)
	return res, err
}

// PointerChaseWithStats is PointerChase plus the run's migration counts.
func PointerChaseWithStats(mcfg machine.Config, cfg ChaseConfig, opts ...RunOption) (metrics.Result, ChaseStats, error) {
	if cfg.Elements <= 0 || cfg.BlockSize <= 0 || cfg.Threads <= 0 || cfg.Nodelets <= 0 {
		return metrics.Result{}, ChaseStats{}, fmt.Errorf("kernels: invalid chase config %+v", cfg)
	}
	rc := resolveRunConfig(opts)
	sys := newSystemRC(mcfg, &rc)
	if cfg.Nodelets > sys.Nodelets() {
		return metrics.Result{}, ChaseStats{}, fmt.Errorf("kernels: chase wants %d nodelets, machine has %d",
			cfg.Nodelets, sys.Nodelets())
	}

	// Block b (elements [b*bs, min((b+1)*bs, n))) lives contiguously on
	// nodelet b mod N. blockBase[b] is its word offset in that nodelet's
	// chunk.
	n, bs := cfg.Elements, cfg.BlockSize
	numBlocks := (n + bs - 1) / bs
	blockBase := make([]int, numBlocks)
	perNodelet := make([]int, sys.Nodelets())
	for b := 0; b < numBlocks; b++ {
		nl := b % cfg.Nodelets
		blockBase[b] = perNodelet[nl]
		lo, hi := b*bs, (b+1)*bs
		if hi > n {
			hi = n
		}
		perNodelet[nl] += 2 * (hi - lo)
	}
	list := sys.Mem.AllocBlocked(perNodelet)

	// addrOf returns the payload address of element position p; its next
	// pointer is the following word.
	addrOf := func(p int) memsys.Addr {
		b := p / bs
		w := p % bs
		return list.At(b%cfg.Nodelets, blockBase[b]+2*w)
	}

	// Link the shuffled traversal order into one chain per thread and
	// record each thread's expected payload sum.
	order := workload.ListOrder(n, bs, cfg.Mode, workload.NewRNG(cfg.Seed))
	starts := make([]memsys.Addr, cfg.Threads)
	expect := make([]uint64, cfg.Threads)
	counts := make([]int, cfg.Threads)
	for k := 0; k < cfg.Threads; k++ {
		lo, hi := share(n, k, cfg.Threads)
		counts[k] = hi - lo
		if lo == hi {
			continue
		}
		starts[k] = addrOf(order[lo])
		for j := lo; j < hi; j++ {
			p := order[j]
			sys.Mem.Write(addrOf(p), uint64(p)+1)
			expect[k] += uint64(p) + 1
			next := endOfList
			if j+1 < hi {
				next = uint64(addrOf(order[j+1]))
			}
			sys.Mem.Write(addrOf(p).Plus(1), next)
		}
	}

	// Workers spawn at their chain's first block via a recursive
	// remote-spawn tree — the "smart" placement and spawning of
	// section V-A.
	groups := make([][]int, sys.Nodelets())
	for k := 0; k < cfg.Threads; k++ {
		if counts[k] == 0 {
			continue
		}
		nl := starts[k].Nodelet()
		groups[nl] = append(groups[nl], k)
	}

	sums := make([]uint64, cfg.Threads)
	var res metrics.Result
	var err error
	if rc.engine == GoroutineProcs {
		_, err = sys.Run(func(root *machine.Thread) {
			t0 := root.Now()
			cilk.SpawnGrouped(root, groups, func(w *machine.Thread, k int) {
				addr := starts[k]
				var sum uint64
				for {
					sum += w.Load(addr)
					next := w.Load(addr.Plus(1))
					w.Compute(chaseOverheadCycles)
					if next == endOfList {
						break
					}
					addr = memsys.Addr(next)
				}
				sums[k] = sum
			})
			res.Elapsed = root.Now() - t0
		})
	} else {
		_, err = sys.RunCont(chaseContRoot(groups, starts, sums, &res.Elapsed))
	}
	if err != nil {
		return metrics.Result{}, ChaseStats{}, err
	}
	for k := range sums {
		if sums[k] != expect[k] {
			return metrics.Result{}, ChaseStats{}, fmt.Errorf("kernels: chase thread %d sum %d, want %d", k, sums[k], expect[k])
		}
	}
	res.Bytes = int64(n) * 16
	stats := ChaseStats{Migrations: sys.Counters.TotalMigrations()}
	stats.MigrationBytes = int64(stats.Migrations) * mcfg.ContextBytes
	return res, stats, nil
}
