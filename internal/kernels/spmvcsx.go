package kernels

import (
	"fmt"
	"math"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/sparse"
)

// SpMVCSX implements the paper's named future-work direction ("new
// state-of-the-art SpMV formats ... such as SparseX, which uses the
// Compressed Sparse eXtended format"): CSR SpMV under the 2D layout, with
// the column-index stream delta-compressed four-to-a-word (sparse.CSX).
// On a machine whose channels move 8-byte words, compressing indices cuts
// the words per nonzero from three (index, value, x) to about 2.3, which
// converts directly into effective bandwidth once the channel is the
// bottleneck.

// csxDecodeCycles is the per-nonzero cost of unpacking a 16-bit delta and
// updating the running column (shift, mask, add).
const csxDecodeCycles = 4

// SpMVCSXConfig parameterizes the compressed-format run.
type SpMVCSXConfig struct {
	GridN    int
	GrainNNZ int
}

// SpMVCSX multiplies the synthetic Laplacian by the same dyadic vector as
// SpMV, using the 2D row partition with packed delta indices, verifies the
// result, and reports effective bandwidth over the SAME useful-byte count
// as the CSR kernels — so its MB/s are directly comparable to Fig. 9a's.
func SpMVCSX(mcfg machine.Config, cfg SpMVCSXConfig, opts ...RunOption) (metrics.Result, error) {
	if cfg.GridN <= 0 || cfg.GrainNNZ <= 0 {
		return metrics.Result{}, fmt.Errorf("kernels: invalid spmv-csx config %+v", cfg)
	}
	m := sparse.Laplacian2D(cfg.GridN)
	x, err := sparse.EncodeCSX(m)
	if err != nil {
		return metrics.Result{}, err
	}
	xv := make([]float64, m.Cols)
	for i := range xv {
		xv[i] = 1 + float64(i%7)*0.125
	}
	want := m.MulVec(xv)

	sys := newSystem(mcfg, opts...)
	nodelets := sys.Nodelets()
	part := sparse.PartitionRows(m, nodelets)

	// Per-nodelet shards: packed delta words, values, and 4-word row
	// metadata (delta offset, value offset, nnz, first column).
	deltaWords := make([]int, nodelets)
	valWords := make([]int, nodelets)
	metaWords := make([]int, nodelets)
	for nl := 0; nl < nodelets; nl++ {
		for _, r := range part.RowsOf[nl] {
			deltaWords[nl] += len(x.DeltaWords[r])
			valWords[nl] += int(x.RowNNZCount[r])
		}
		metaWords[nl] = 4 * len(part.RowsOf[nl])
	}
	dsh := sys.Mem.AllocBlocked(deltaWords)
	vsh := sys.Mem.AllocBlocked(valWords)
	meta := sys.Mem.AllocBlocked(metaWords)
	loadX := makeXLoader(sys, xv, false)
	ya := sys.Mem.AllocLocal(0, m.Rows)

	dOff := make([]int, nodelets)
	vOff := make([]int, nodelets)
	for nl := 0; nl < nodelets; nl++ {
		for slot, r := range part.RowsOf[nl] {
			sys.Mem.Write(meta.At(nl, 4*slot), uint64(dOff[nl]))
			sys.Mem.Write(meta.At(nl, 4*slot+1), uint64(vOff[nl]))
			sys.Mem.Write(meta.At(nl, 4*slot+2), uint64(x.RowNNZCount[r]))
			sys.Mem.Write(meta.At(nl, 4*slot+3), uint64(x.RowFirst[r]))
			for _, w := range x.DeltaWords[r] {
				sys.Mem.Write(dsh.At(nl, dOff[nl]), w)
				dOff[nl]++
			}
			for j := 0; j < int(x.RowNNZCount[r]); j++ {
				sys.Mem.Write(vsh.At(nl, vOff[nl]), math.Float64bits(x.Val[x.RowValOff[r]+int64(j)]))
				vOff[nl]++
			}
		}
	}

	grainRows := cfg.GrainNNZ / 5
	if grainRows < 1 {
		grainRows = 1
	}
	var elapsed sim.Time
	_, err = sys.Run(func(root *machine.Thread) {
		t0 := root.Now()
		for nl := 0; nl < nodelets; nl++ {
			nl := nl
			rows := part.RowsOf[nl]
			if len(rows) == 0 {
				continue
			}
			root.SpawnAt(nl, func(coord *machine.Thread) {
				cilk.ParallelFor(coord, len(rows), grainRows, func(w *machine.Thread, lo, hi int) {
					for slot := lo; slot < hi; slot++ {
						r := rows[slot]
						dBase := w.Load(meta.At(nl, 4*slot))
						vBase := w.Load(meta.At(nl, 4*slot+1))
						cnt := int(w.Load(meta.At(nl, 4*slot+2)))
						col := int64(w.Load(meta.At(nl, 4*slot+3)))
						var sum float64
						var dw uint64
						for j := 0; j < cnt; j++ {
							if j > 0 {
								k := j - 1
								if k%4 == 0 {
									dw = w.Load(dsh.At(nl, int(dBase)+k/4))
								}
								col += int64(dw >> (uint(k) % 4 * 16) & 0xFFFF)
								w.Compute(csxDecodeCycles)
							}
							v := math.Float64frombits(w.Load(vsh.At(nl, int(vBase)+j)))
							sum += v * loadX(w, int(col))
							w.Compute(spmvNNZCycles)
						}
						w.Store(ya.At(r), math.Float64bits(sum)) // posted to nodelet 0
						w.Compute(spmvRowCycles)
					}
				})
			})
		}
		root.Sync()
		elapsed = root.Now() - t0
	})
	if err != nil {
		return metrics.Result{}, err
	}
	for r := 0; r < m.Rows; r++ {
		if got := math.Float64frombits(sys.Mem.Read(ya.At(r))); got != want[r] {
			return metrics.Result{}, fmt.Errorf("kernels: spmv-csx y[%d] = %v, want %v", r, got, want[r])
		}
	}
	if mig := sys.Counters.TotalMigrations(); mig != 0 {
		return metrics.Result{}, fmt.Errorf("kernels: csx layout migrated %d times", mig)
	}
	return metrics.Result{Bytes: m.UsefulBytes(), Elapsed: elapsed}, nil
}
