package sparse

import "fmt"

// CSX is a lightweight take on the Compressed Sparse eXtended format the
// paper's future work points at (SparseX): per row, the first column index
// is stored absolutely and the remaining indices as deltas, packed four
// 16-bit deltas per 64-bit word. On a machine whose memory system moves
// 8-byte words, shrinking the column-index stream directly shrinks the
// words-per-nonzero the SpMV kernel must load — the quantity the whole
// characterization is about.
type CSX struct {
	Rows, Cols int
	// RowFirst[r] is row r's first column (or -1 for an empty row).
	RowFirst []int64
	// RowNNZCount[r] is the nonzero count of row r.
	RowNNZCount []int32
	// DeltaWords[r] holds row r's packed deltas: four 16-bit deltas per
	// word, in order, for nonzeros 1..nnz-1.
	DeltaWords [][]uint64
	// Val holds the values in CSR order.
	Val []float64
	// RowValOff[r] is row r's offset into Val.
	RowValOff []int64
}

// maxDelta is the largest column step a 16-bit delta can encode.
const maxDelta = 1<<16 - 1

// EncodeCSX compresses a CSR matrix. It fails if any within-row column
// step exceeds 16 bits (the full CSX format would fall back to wider
// units; the synthetic Laplacians and any matrix with bounded bandwidth
// fit easily).
func EncodeCSX(m *CSR) (*CSX, error) {
	x := &CSX{
		Rows:        m.Rows,
		Cols:        m.Cols,
		RowFirst:    make([]int64, m.Rows),
		RowNNZCount: make([]int32, m.Rows),
		DeltaWords:  make([][]uint64, m.Rows),
		Val:         append([]float64(nil), m.Val...),
		RowValOff:   make([]int64, m.Rows),
	}
	for r := 0; r < m.Rows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		x.RowValOff[r] = lo
		x.RowNNZCount[r] = int32(hi - lo)
		if lo == hi {
			x.RowFirst[r] = -1
			continue
		}
		x.RowFirst[r] = m.ColIdx[lo]
		prev := m.ColIdx[lo]
		var words []uint64
		var cur uint64
		shift := 0
		for k := lo + 1; k < hi; k++ {
			d := m.ColIdx[k] - prev
			if d <= 0 || d > maxDelta {
				return nil, fmt.Errorf("sparse: row %d delta %d not 16-bit encodable", r, d)
			}
			cur |= uint64(d) << shift
			shift += 16
			if shift == 64 {
				words = append(words, cur)
				cur, shift = 0, 0
			}
			prev = m.ColIdx[k]
		}
		if shift > 0 {
			words = append(words, cur)
		}
		x.DeltaWords[r] = words
	}
	return x, nil
}

// RowColumns decodes row r's column indices (a reference/verification
// helper; the simulated kernel decodes inline).
func (x *CSX) RowColumns(r int) []int64 {
	n := int(x.RowNNZCount[r])
	if n == 0 {
		return nil
	}
	cols := make([]int64, n)
	cols[0] = x.RowFirst[r]
	for i := 1; i < n; i++ {
		w := x.DeltaWords[r][(i-1)/4]
		d := w >> (uint(i-1) % 4 * 16) & 0xFFFF
		cols[i] = cols[i-1] + int64(d)
	}
	return cols
}

// IndexWords reports how many 8-byte words the column-index stream needs:
// one absolute word per non-empty row plus the packed delta words —
// roughly nnz/4 instead of CSR's nnz.
func (x *CSX) IndexWords() int {
	words := 0
	for r := 0; r < x.Rows; r++ {
		if x.RowNNZCount[r] > 0 {
			words += 1 + len(x.DeltaWords[r])
		}
	}
	return words
}
