package sparse

import (
	"testing"
	"testing/quick"

	"emuchick/internal/workload"
)

func TestPartitionRoundRobin(t *testing.T) {
	m := Laplacian2D(4) // 16 rows
	p := PartitionRows(m, 8)
	if p.Nodelets != 8 {
		t.Fatal("nodelet count lost")
	}
	for r := 0; r < m.Rows; r++ {
		if p.NodeletOf(r) != r%8 {
			t.Fatalf("row %d on nodelet %d", r, p.NodeletOf(r))
		}
	}
	// 16 rows over 8 nodelets: 2 rows each.
	for nl := 0; nl < 8; nl++ {
		if len(p.RowsOf[nl]) != 2 {
			t.Fatalf("nodelet %d has %d rows", nl, len(p.RowsOf[nl]))
		}
	}
}

func TestPartitionOffsetsDense(t *testing.T) {
	m := Laplacian2D(5) // 25 rows, uneven over 8 nodelets
	p := PartitionRows(m, 8)
	// Per nodelet, offsets must tile the shard exactly.
	for nl := 0; nl < 8; nl++ {
		next := 0
		for _, r := range p.RowsOf[nl] {
			if p.Offset[r] != next {
				t.Fatalf("row %d offset %d, want %d", r, p.Offset[r], next)
			}
			next += m.RowNNZ(r)
		}
		if next != p.WordsOf[nl] {
			t.Fatalf("nodelet %d words %d, rows sum to %d", nl, p.WordsOf[nl], next)
		}
	}
}

func TestPartitionSlots(t *testing.T) {
	m := Laplacian2D(4)
	p := PartitionRows(m, 3)
	for nl := 0; nl < 3; nl++ {
		for slot, r := range p.RowsOf[nl] {
			if p.Slot[r] != slot {
				t.Fatalf("row %d slot %d, want %d", r, p.Slot[r], slot)
			}
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero nodelets did not panic")
		}
	}()
	PartitionRows(Laplacian2D(2), 0)
}

// Property: every row appears exactly once across shards and shard word
// counts sum to NNZ, for random matrices and nodelet counts.
func TestPartitionCoverageProperty(t *testing.T) {
	f := func(seed uint64, nlRaw uint8) bool {
		nodelets := int(nlRaw%16) + 1
		m := Random(40, 30, 6, workload.NewRNG(seed))
		p := PartitionRows(m, nodelets)
		seen := make([]bool, m.Rows)
		words := 0
		for nl := 0; nl < nodelets; nl++ {
			for _, r := range p.RowsOf[nl] {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
			words += p.WordsOf[nl]
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return words == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
