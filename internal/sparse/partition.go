package sparse

// Partition assigns matrix rows to nodelets for the Emu "2D" layout: the
// paper's two-stage allocation first computes "the lengths of each row that
// is assigned to a nodelet" and then allocates each nodelet's shard of the
// value and column-index arrays locally. Rows are dealt round-robin (row r
// to nodelet r mod N), which also balances the diagonal structure of the
// Laplacian inputs.
type Partition struct {
	Nodelets int
	// RowsOf[nl] lists the matrix rows assigned to nodelet nl, in order.
	RowsOf [][]int
	// WordsOf[nl] is the number of nonzeros (and hence 8-byte words per
	// array) nodelet nl's shard holds.
	WordsOf []int
	// Slot[r] is the index of row r within its nodelet's row list.
	Slot []int
	// Offset[r] is the starting nonzero offset of row r within its
	// nodelet's shard.
	Offset []int
}

// PartitionRows builds the round-robin row partition of m over nodelets.
func PartitionRows(m *CSR, nodelets int) *Partition {
	if nodelets <= 0 {
		panic("sparse: partition needs positive nodelet count")
	}
	p := &Partition{
		Nodelets: nodelets,
		RowsOf:   make([][]int, nodelets),
		WordsOf:  make([]int, nodelets),
		Slot:     make([]int, m.Rows),
		Offset:   make([]int, m.Rows),
	}
	for r := 0; r < m.Rows; r++ {
		nl := r % nodelets
		p.Slot[r] = len(p.RowsOf[nl])
		p.Offset[r] = p.WordsOf[nl]
		p.RowsOf[nl] = append(p.RowsOf[nl], r)
		p.WordsOf[nl] += m.RowNNZ(r)
	}
	return p
}

// NodeletOf reports the nodelet that owns row r.
func (p *Partition) NodeletOf(r int) int { return r % p.Nodelets }
