package sparse

import (
	"testing"
	"testing/quick"

	"emuchick/internal/workload"
)

func TestCSXRoundTripLaplacian(t *testing.T) {
	m := Laplacian2D(8)
	x, err := EncodeCSX(m)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < m.Rows; r++ {
		cols := x.RowColumns(r)
		if len(cols) != m.RowNNZ(r) {
			t.Fatalf("row %d count %d, want %d", r, len(cols), m.RowNNZ(r))
		}
		for i, c := range cols {
			if c != m.ColIdx[m.RowPtr[r]+int64(i)] {
				t.Fatalf("row %d col %d = %d, want %d", r, i, c, m.ColIdx[m.RowPtr[r]+int64(i)])
			}
		}
	}
}

func TestCSXCompression(t *testing.T) {
	m := Laplacian2D(16)
	x, err := EncodeCSX(m)
	if err != nil {
		t.Fatal(err)
	}
	// CSR needs one word per nonzero for indices; CSX needs roughly
	// rows + nnz/4.
	if x.IndexWords() >= m.NNZ() {
		t.Fatalf("no compression: %d index words for %d nonzeros", x.IndexWords(), m.NNZ())
	}
	if x.IndexWords() > m.Rows+m.NNZ()/4+m.Rows {
		t.Fatalf("compression below expectation: %d words", x.IndexWords())
	}
}

func TestCSXEmptyRows(t *testing.T) {
	m := &CSR{Rows: 3, Cols: 4, RowPtr: []int64{0, 0, 2, 2},
		ColIdx: []int64{1, 3}, Val: []float64{5, 7}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	x, err := EncodeCSX(m)
	if err != nil {
		t.Fatal(err)
	}
	if x.RowFirst[0] != -1 || x.RowFirst[2] != -1 {
		t.Fatal("empty rows not marked")
	}
	cols := x.RowColumns(1)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 {
		t.Fatalf("row 1 cols = %v", cols)
	}
	if x.RowColumns(0) != nil {
		t.Fatal("empty row decoded nonzeros")
	}
}

func TestCSXRejectsWideDeltas(t *testing.T) {
	m := &CSR{Rows: 1, Cols: 1 << 20, RowPtr: []int64{0, 2},
		ColIdx: []int64{0, 1 << 17}, Val: []float64{1, 2}}
	if _, err := EncodeCSX(m); err == nil {
		t.Fatal("17-bit delta accepted")
	}
}

// Property: encode/decode is the identity for random banded matrices.
func TestCSXRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := Random(30, 40, 6, workload.NewRNG(seed))
		x, err := EncodeCSX(m)
		if err != nil {
			// Random matrices can have wide deltas; that is a valid
			// refusal, not a failure.
			return true
		}
		for r := 0; r < m.Rows; r++ {
			cols := x.RowColumns(r)
			if len(cols) != m.RowNNZ(r) {
				return false
			}
			for i, c := range cols {
				if c != m.ColIdx[m.RowPtr[r]+int64(i)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
