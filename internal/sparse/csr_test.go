package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"emuchick/internal/workload"
)

func TestLaplacianStructure(t *testing.T) {
	const n = 4
	m := Laplacian2D(n)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != n*n || m.Cols != n*n {
		t.Fatalf("dims %dx%d", m.Rows, m.Cols)
	}
	// nnz of the 5-point stencil: 5n^2 - 4n.
	want := 5*n*n - 4*n
	if m.NNZ() != want {
		t.Fatalf("nnz = %d, want %d", m.NNZ(), want)
	}
	// Interior rows have exactly 5 entries, corners have 3.
	if m.RowNNZ(n+1) != 5 {
		t.Fatalf("interior row nnz = %d", m.RowNNZ(n+1))
	}
	if m.RowNNZ(0) != 3 || m.RowNNZ(n*n-1) != 3 {
		t.Fatal("corner rows wrong")
	}
}

func TestLaplacianRowSums(t *testing.T) {
	// Applying the Laplacian to the all-ones vector gives the boundary
	// deficit per row: 4 - (#neighbours), i.e. zero for interior rows.
	const n = 8
	m := Laplacian2D(n)
	ones := make([]float64, n*n)
	for i := range ones {
		ones[i] = 1
	}
	y := m.MulVec(ones)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			if y[i*n+j] != 0 {
				t.Fatalf("interior row (%d,%d) sum = %v", i, j, y[i*n+j])
			}
		}
	}
	if y[0] != 2 { // corner: 4 - 2 neighbours
		t.Fatalf("corner row sum = %v", y[0])
	}
}

func TestLaplacianSymmetricAction(t *testing.T) {
	// The 5-point Laplacian is symmetric: x'Ay == y'Ax.
	const n = 6
	m := Laplacian2D(n)
	rng := workload.NewRNG(17)
	x := make([]float64, n*n)
	y := make([]float64, n*n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	ay := m.MulVec(y)
	ax := m.MulVec(x)
	var xAy, yAx float64
	for i := range x {
		xAy += x[i] * ay[i]
		yAx += y[i] * ax[i]
	}
	if math.Abs(xAy-yAx) > 1e-9*math.Abs(xAy) {
		t.Fatalf("asymmetric action: %v vs %v", xAy, yAx)
	}
}

func TestLaplacianPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Laplacian2D(0) did not panic")
		}
	}()
	Laplacian2D(0)
}

func TestMulVecDimensionCheck(t *testing.T) {
	m := Laplacian2D(3)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	m.MulVec(make([]float64, 4))
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *CSR { return Laplacian2D(3) }
	cases := []struct {
		name string
		mut  func(*CSR)
	}{
		{"rowptr start", func(m *CSR) { m.RowPtr[0] = 1 }},
		{"rowptr end", func(m *CSR) { m.RowPtr[m.Rows] = 0 }},
		{"rowptr order", func(m *CSR) { m.RowPtr[1], m.RowPtr[2] = m.RowPtr[2], m.RowPtr[1]+100 }},
		{"column range", func(m *CSR) { m.ColIdx[0] = int64(m.Cols) }},
		{"len mismatch", func(m *CSR) { m.Val = m.Val[:len(m.Val)-1] }},
	}
	for _, c := range cases {
		m := fresh()
		c.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s corruption not caught", c.name)
		}
	}
}

func TestRandomMatrixValid(t *testing.T) {
	m := Random(50, 40, 7, workload.NewRNG(3))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < m.Rows; r++ {
		if m.RowNNZ(r) > 7 {
			t.Fatalf("row %d has %d nonzeros", r, m.RowNNZ(r))
		}
		// Columns strictly ascending within a row (no duplicates).
		for k := m.RowPtr[r] + 1; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] <= m.ColIdx[k-1] {
				t.Fatalf("row %d columns not strictly ascending", r)
			}
		}
	}
}

func TestUsefulBytes(t *testing.T) {
	m := Laplacian2D(4)
	want := int64(m.NNZ())*16 + int64(m.Rows)*16 + int64(m.Cols)*8
	if m.UsefulBytes() != want {
		t.Fatalf("UsefulBytes = %d", m.UsefulBytes())
	}
}

// Property: MulVec is linear — A(ax + by) == a*Ax + b*Ay.
func TestMulVecLinearityProperty(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		rng := workload.NewRNG(seed)
		m := Random(20, 20, 5, rng)
		a := float64(aRaw%8) - 3
		b := float64(bRaw%8) - 3
		x := make([]float64, 20)
		y := make([]float64, 20)
		z := make([]float64, 20)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
			z[i] = a*x[i] + b*y[i]
		}
		az := m.MulVec(z)
		ax := m.MulVec(x)
		ay := m.MulVec(y)
		for i := range az {
			want := a*ax[i] + b*ay[i]
			if math.Abs(az[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Laplacian2D validates and has 5n^2-4n nonzeros for all n.
func TestLaplacianSizeProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%24) + 1
		m := Laplacian2D(n)
		return m.Validate() == nil && m.NNZ() == 5*n*n-4*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
