// Package sparse provides the Compressed Sparse Row matrices the SpMV
// benchmark runs over, including the paper's synthetic inputs: Laplacian
// matrices of d-dimensional k-point stencils (the tested case is d=2, k=4,
// giving an n^2-by-n^2 matrix with 5 diagonals).
package sparse

import (
	"fmt"

	"emuchick/internal/workload"
)

// CSR is a sparse matrix in Compressed Sparse Row format: row r's nonzeros
// occupy Val[RowPtr[r]:RowPtr[r+1]] with column indices in the matching
// slice of ColIdx.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int64
	Val        []float64
}

// NNZ reports the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ reports the number of nonzeros in row r.
func (m *CSR) RowNNZ(r int) int { return int(m.RowPtr[r+1] - m.RowPtr[r]) }

// Validate checks the structural invariants of the CSR encoding.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d for %d rows", len(m.RowPtr), m.Rows)
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: ColIdx/Val length mismatch %d/%d", len(m.ColIdx), len(m.Val))
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != int64(len(m.Val)) {
		return fmt.Errorf("sparse: RowPtr endpoints %d..%d for %d nonzeros",
			m.RowPtr[0], m.RowPtr[m.Rows], len(m.Val))
	}
	for r := 0; r < m.Rows; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("sparse: RowPtr decreases at row %d", r)
		}
		if m.RowPtr[r] < 0 || m.RowPtr[r+1] > int64(len(m.Val)) {
			return fmt.Errorf("sparse: RowPtr out of bounds at row %d", r)
		}
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if c := m.ColIdx[k]; c < 0 || c >= int64(m.Cols) {
				return fmt.Errorf("sparse: row %d has column %d of %d", r, c, m.Cols)
			}
		}
	}
	return nil
}

// MulVec computes y = A*x with a simple sequential reference loop. It is
// the oracle every simulated SpMV result is checked against.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVec with |x|=%d for %d columns", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var sum float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			sum += m.Val[k] * x[m.ColIdx[k]]
		}
		y[r] = sum
	}
	return y
}

// Laplacian2D builds the synthetic input of section III-E: the 5-point
// stencil Laplacian of an n-by-n grid — an n^2-by-n^2 matrix with 5
// diagonals (4 on the main diagonal, -1 toward each grid neighbour).
func Laplacian2D(n int) *CSR {
	if n <= 0 {
		panic("sparse: Laplacian2D needs a positive grid size")
	}
	rows := n * n
	m := &CSR{
		Rows:   rows,
		Cols:   rows,
		RowPtr: make([]int64, rows+1),
	}
	// Upper bound 5 nonzeros per row.
	m.ColIdx = make([]int64, 0, 5*rows)
	m.Val = make([]float64, 0, 5*rows)
	idx := func(i, j int) int64 { return int64(i*n + j) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := idx(i, j)
			// Emit in ascending column order.
			if i > 0 {
				m.ColIdx = append(m.ColIdx, idx(i-1, j))
				m.Val = append(m.Val, -1)
			}
			if j > 0 {
				m.ColIdx = append(m.ColIdx, idx(i, j-1))
				m.Val = append(m.Val, -1)
			}
			m.ColIdx = append(m.ColIdx, r)
			m.Val = append(m.Val, 4)
			if j < n-1 {
				m.ColIdx = append(m.ColIdx, idx(i, j+1))
				m.Val = append(m.Val, -1)
			}
			if i < n-1 {
				m.ColIdx = append(m.ColIdx, idx(i+1, j))
				m.Val = append(m.Val, -1)
			}
			m.RowPtr[r+1] = int64(len(m.Val))
		}
	}
	return m
}

// Random builds a rows-by-cols matrix where each row holds between 0 and
// maxRowNNZ nonzeros at distinct random columns — the generator behind the
// package's property tests.
func Random(rows, cols, maxRowNNZ int, rng *workload.RNG) *CSR {
	if rows < 0 || cols <= 0 || maxRowNNZ < 0 {
		panic("sparse: invalid Random dimensions")
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	for r := 0; r < rows; r++ {
		nnz := 0
		if maxRowNNZ > 0 {
			nnz = rng.Intn(maxRowNNZ + 1)
		}
		if nnz > cols {
			nnz = cols
		}
		seen := map[int64]bool{}
		for len(seen) < nnz {
			seen[int64(rng.Intn(cols))] = true
		}
		cols := make([]int64, 0, nnz)
		for c := range seen {
			cols = append(cols, c)
		}
		// Deterministic order: insertion order of a map is not, so sort.
		for i := 1; i < len(cols); i++ {
			for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
				cols[j], cols[j-1] = cols[j-1], cols[j]
			}
		}
		for _, c := range cols {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, rng.Float64()*2-1)
		}
		m.RowPtr[r+1] = int64(len(m.Val))
	}
	return m
}

// UsefulBytes reports the "effective bandwidth" byte count of one SpMV pass
// in the sense the paper plots: every nonzero moves an 8-byte value and an
// 8-byte column index, every row moves an 8-byte row pointer and an 8-byte
// result, and every column of x is read once.
func (m *CSR) UsefulBytes() int64 {
	return int64(m.NNZ())*16 + int64(m.Rows)*16 + int64(m.Cols)*8
}
