package tensor

import (
	"fmt"
	"math"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/workload"
)

// MTTKRP (matricized tensor times Khatri-Rao product) is the bottleneck
// kernel of the CP decomposition the paper's introduction targets via
// ParTI: for factor matrices B (J x R) and C (K x R),
//
//	Y(i, r) = sum over nonzeros (i,j,k,v) of v * B(j,r) * C(k,r).
//
// Per nonzero it reads 2R factor words and accumulates R outputs — the
// same weak-locality gather/scatter pattern as SpMV, at a higher byte
// count per entry.

// mttkrpNNZCyclesPerRank is the compute cost per nonzero per rank column
// (two multiplies and an add on the in-order core).
const mttkrpNNZCyclesPerRank = 12

// MTTKRPConfig parameterizes one Emu MTTKRP run.
type MTTKRPConfig struct {
	Dims     [3]int
	NNZ      int
	Rank     int // factor columns, typically small (4-32) in CP-ALS
	Seed     uint64
	Layout   Layout // 1D striped nonzeros vs 2D slice-blocked
	GrainNNZ int
}

// MTTKRPRef computes the reference result on the host.
func MTTKRPRef(t *COO, b, c []float64, rank int) []float64 {
	y := make([]float64, t.Dims[0]*rank)
	for n := range t.Val {
		i, j, k := int(t.I[n]), int(t.J[n]), int(t.K[n])
		for r := 0; r < rank; r++ {
			y[i*rank+r] += t.Val[n] * b[j*rank+r] * c[k*rank+r]
		}
	}
	return y
}

// MTTKRPEmu runs the kernel on a fresh machine: factor matrices are
// replicated per nodelet (they are the "commonly used inputs" of the
// paper's smart-migration recommendation), the output rows are striped,
// and nonzeros are placed per the layout. The result is verified exactly
// (dyadic values).
func MTTKRPEmu(mcfg machine.Config, cfg MTTKRPConfig) (metrics.Result, error) {
	if cfg.NNZ <= 0 || cfg.GrainNNZ <= 0 || cfg.Rank <= 0 {
		return metrics.Result{}, fmt.Errorf("tensor: invalid MTTKRP config %+v", cfg)
	}
	t := Random(cfg.Dims, cfg.NNZ, newRNGFor(cfg.Seed))
	if err := t.Validate(); err != nil {
		return metrics.Result{}, err
	}
	rank := cfg.Rank
	b := make([]float64, cfg.Dims[1]*rank)
	c := make([]float64, cfg.Dims[2]*rank)
	for i := range b {
		b[i] = 1 + float64(i%4)*0.25
	}
	for i := range c {
		c[i] = 1 - float64(i%3)*0.5
	}
	want := MTTKRPRef(t, b, c, rank)

	sys := machine.NewSystem(mcfg)
	nodelets := sys.Nodelets()

	bRep := sys.Mem.AllocReplicated(len(b))
	cRep := sys.Mem.AllocReplicated(len(c))
	for i, v := range b {
		bRep.Broadcast(sys.Mem, i, math.Float64bits(v))
	}
	for i, v := range c {
		cRep.Broadcast(sys.Mem, i, math.Float64bits(v))
	}
	ya := sys.Mem.AllocStriped(cfg.Dims[0] * rank)

	// body processes one nonzero from the thread's resident shard.
	body := func(w *machine.Thread, coordA, valA memsys.Addr) {
		i, j, k := unpackCoord(w.Load(coordA))
		v := math.Float64frombits(w.Load(valA))
		nl := w.Nodelet()
		for r := 0; r < rank; r++ {
			bb := math.Float64frombits(w.Load(bRep.At(nl, int(j)*rank+r)))
			cc := math.Float64frombits(w.Load(cRep.At(nl, int(k)*rank+r)))
			w.RemoteAddFloat(ya.At(int(i)*rank+r), v*bb*cc)
			w.Compute(mttkrpNNZCyclesPerRank)
		}
	}

	var elapsed sim.Time
	var err error
	switch cfg.Layout {
	case Layout1D:
		coords := sys.Mem.AllocStriped(t.NNZ())
		vals := sys.Mem.AllocStriped(t.NNZ())
		for n := 0; n < t.NNZ(); n++ {
			sys.Mem.Write(coords.At(n), packCoord(t.I[n], t.J[n], t.K[n]))
			sys.Mem.Write(vals.At(n), math.Float64bits(t.Val[n]))
		}
		_, err = sys.Run(func(root *machine.Thread) {
			t0 := root.Now()
			cilk.ParallelFor(root, t.NNZ(), cfg.GrainNNZ, func(w *machine.Thread, lo, hi int) {
				for n := lo; n < hi; n++ {
					body(w, coords.At(n), vals.At(n))
				}
			})
			elapsed = root.Now() - t0
		})
	case Layout2D:
		perNL := make([]int, nodelets)
		for n := 0; n < t.NNZ(); n++ {
			perNL[int(t.I[n])%nodelets]++
		}
		coords := sys.Mem.AllocBlocked(perNL)
		vals := sys.Mem.AllocBlocked(perNL)
		fill := make([]int, nodelets)
		for n := 0; n < t.NNZ(); n++ {
			nl := int(t.I[n]) % nodelets
			sys.Mem.Write(coords.At(nl, fill[nl]), packCoord(t.I[n], t.J[n], t.K[n]))
			sys.Mem.Write(vals.At(nl, fill[nl]), math.Float64bits(t.Val[n]))
			fill[nl]++
		}
		_, err = sys.Run(func(root *machine.Thread) {
			t0 := root.Now()
			for nl := 0; nl < nodelets; nl++ {
				nl := nl
				count := perNL[nl]
				if count == 0 {
					continue
				}
				root.SpawnAt(nl, func(coord *machine.Thread) {
					cilk.ParallelFor(coord, count, cfg.GrainNNZ, func(w *machine.Thread, lo, hi int) {
						for n := lo; n < hi; n++ {
							body(w, coords.At(nl, n), vals.At(nl, n))
						}
					})
				})
			}
			root.Sync()
			elapsed = root.Now() - t0
		})
	default:
		return metrics.Result{}, fmt.Errorf("tensor: unknown layout %v", cfg.Layout)
	}
	if err != nil {
		return metrics.Result{}, err
	}
	for idx, w := range want {
		got := math.Float64frombits(sys.Mem.Read(ya.At(idx)))
		if got != w {
			return metrics.Result{}, fmt.Errorf("tensor: MTTKRP Y[%d] = %v, want %v", idx, got, w)
		}
	}
	// Useful bytes per nonzero: coordinates + value + 2R factor reads +
	// R output accumulations, 8 bytes each.
	bytes := int64(cfg.NNZ) * int64(2+3*rank) * 8
	return metrics.Result{Bytes: bytes, Elapsed: elapsed}, nil
}

// newRNGFor isolates MTTKRP's tensors from TTV's for equal seeds.
func newRNGFor(seed uint64) *workload.RNG { return workload.NewRNG(seed ^ 0xABCDEF) }
