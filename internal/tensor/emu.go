package tensor

import (
	"fmt"
	"math"

	"emuchick/internal/cilk"
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/workload"
)

// Layout selects the Emu data placement for the TTV kernel, mirroring the
// SpMV study: Layout1D stripes the nonzero arrays word-by-word (a
// migration on nearly every entry), Layout2D deals mode-0 slices
// round-robin to nodelets with each shard contiguous (no migrations while
// reading entries).
type Layout int

const (
	Layout1D Layout = iota
	Layout2D
)

// Layouts lists both options.
var Layouts = []Layout{Layout1D, Layout2D}

// String names the layout.
func (l Layout) String() string {
	switch l {
	case Layout1D:
		return "1d"
	case Layout2D:
		return "2d"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Per-entry compute cost of the contraction loop.
const ttvNNZCycles = 24

// TTVConfig parameterizes one Emu TTV run.
type TTVConfig struct {
	Dims     [3]int
	NNZ      int
	Seed     uint64
	Layout   Layout
	GrainNNZ int
}

// TTVEmu contracts a random tensor's mode 2 with a dyadic vector on a
// fresh machine and verifies against the reference TTV. Effective bytes
// count each entry's packed coordinates, value, vector read, and output
// accumulation — the analogue of SpMV's useful-bytes metric.
func TTVEmu(mcfg machine.Config, cfg TTVConfig) (metrics.Result, error) {
	if cfg.NNZ <= 0 || cfg.GrainNNZ <= 0 {
		return metrics.Result{}, fmt.Errorf("tensor: invalid TTV config %+v", cfg)
	}
	t := Random(cfg.Dims, cfg.NNZ, workload.NewRNG(cfg.Seed))
	if err := t.Validate(); err != nil {
		return metrics.Result{}, err
	}
	v := make([]float64, cfg.Dims[2])
	for k := range v {
		v[k] = 1 + float64(k%5)*0.25
	}
	want := t.TTV(v)

	sys := machine.NewSystem(mcfg)
	cells := cfg.Dims[0] * cfg.Dims[1]

	// The vector is replicated (the paper's recommendation for common
	// inputs); the output is striped by cell and accumulated with posted
	// memory-side float adds, so entry processing never migrates toward
	// the output.
	vr := sys.Mem.AllocReplicated(cfg.Dims[2])
	for k := range v {
		vr.Broadcast(sys.Mem, k, math.Float64bits(v[k]))
	}
	ya := sys.Mem.AllocStriped(cells)

	var elapsed sim.Time
	var runErr error
	switch cfg.Layout {
	case Layout1D:
		elapsed, runErr = ttv1D(sys, t, vr, ya, cfg.GrainNNZ)
	case Layout2D:
		elapsed, runErr = ttv2D(sys, t, vr, ya, cfg.GrainNNZ)
	default:
		return metrics.Result{}, fmt.Errorf("tensor: unknown layout %v", cfg.Layout)
	}
	if runErr != nil {
		return metrics.Result{}, runErr
	}
	for c := 0; c < cells; c++ {
		got := math.Float64frombits(sys.Mem.Read(ya.At(c)))
		if got != want[c] {
			return metrics.Result{}, fmt.Errorf("tensor: Y[%d] = %v, want %v", c, got, want[c])
		}
	}
	return metrics.Result{Bytes: int64(cfg.NNZ) * 32, Elapsed: elapsed}, nil
}

// packCoord packs (i, j, k) into one word, as an Emu port would to keep
// the per-entry footprint small (21 bits per mode).
func packCoord(i, j, k int32) uint64 {
	return uint64(uint32(i))<<42 | uint64(uint32(j))<<21 | uint64(uint32(k))
}

func unpackCoord(w uint64) (i, j, k int32) {
	return int32(w >> 42 & 0x1FFFFF), int32(w >> 21 & 0x1FFFFF), int32(w & 0x1FFFFF)
}

// ttv1D stripes the coordinate and value arrays word-by-word.
func ttv1D(sys *machine.System, t *COO, vr memsys.Replicated, ya memsys.Striped, grain int) (sim.Time, error) {
	coords := sys.Mem.AllocStriped(t.NNZ())
	vals := sys.Mem.AllocStriped(t.NNZ())
	for n := 0; n < t.NNZ(); n++ {
		sys.Mem.Write(coords.At(n), packCoord(t.I[n], t.J[n], t.K[n]))
		sys.Mem.Write(vals.At(n), math.Float64bits(t.Val[n]))
	}
	var elapsed sim.Time
	_, err := sys.Run(func(root *machine.Thread) {
		t0 := root.Now()
		cilk.ParallelFor(root, t.NNZ(), grain, func(w *machine.Thread, lo, hi int) {
			for n := lo; n < hi; n++ {
				cw := w.Load(coords.At(n)) // migrates to nodelet n mod N
				i, j, k := unpackCoord(cw)
				val := math.Float64frombits(w.Load(vals.At(n))) // local: same stripe
				vk := math.Float64frombits(w.Load(vr.At(w.Nodelet(), int(k))))
				w.RemoteAddFloat(ya.At(int(i)*t.Dims[1]+int(j)), val*vk)
				w.Compute(ttvNNZCycles)
			}
		})
		elapsed = root.Now() - t0
	})
	return elapsed, err
}

// ttv2D deals mode-0 slices round-robin: nodelet nl holds the entries of
// slices i with i mod N == nl, contiguous in its shard.
func ttv2D(sys *machine.System, t *COO, vr memsys.Replicated, ya memsys.Striped, grain int) (sim.Time, error) {
	nodelets := sys.Nodelets()
	perNL := make([]int, nodelets)
	for n := 0; n < t.NNZ(); n++ {
		perNL[int(t.I[n])%nodelets]++
	}
	coords := sys.Mem.AllocBlocked(perNL)
	vals := sys.Mem.AllocBlocked(perNL)
	fill := make([]int, nodelets)
	for n := 0; n < t.NNZ(); n++ {
		nl := int(t.I[n]) % nodelets
		sys.Mem.Write(coords.At(nl, fill[nl]), packCoord(t.I[n], t.J[n], t.K[n]))
		sys.Mem.Write(vals.At(nl, fill[nl]), math.Float64bits(t.Val[n]))
		fill[nl]++
	}
	var elapsed sim.Time
	_, err := sys.Run(func(root *machine.Thread) {
		t0 := root.Now()
		for nl := 0; nl < nodelets; nl++ {
			nl := nl
			count := perNL[nl]
			if count == 0 {
				continue
			}
			root.SpawnAt(nl, func(coord *machine.Thread) {
				cilk.ParallelFor(coord, count, grain, func(w *machine.Thread, lo, hi int) {
					for n := lo; n < hi; n++ {
						cw := w.Load(coords.At(nl, n)) // local
						i, j, k := unpackCoord(cw)
						val := math.Float64frombits(w.Load(vals.At(nl, n)))
						vk := math.Float64frombits(w.Load(vr.At(nl, int(k))))
						w.RemoteAddFloat(ya.At(int(i)*t.Dims[1]+int(j)), val*vk)
						w.Compute(ttvNNZCycles)
					}
				})
			})
		}
		root.Sync()
		elapsed = root.Now() - t0
	})
	return elapsed, err
}
