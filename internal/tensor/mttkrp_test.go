package tensor

import (
	"math"
	"testing"

	"emuchick/internal/machine"
	"emuchick/internal/workload"
)

func TestMTTKRPRefHandChecked(t *testing.T) {
	// X(0,1,0)=2 only; B(1,:) = [3, 5]; C(0,:) = [7, 11], rank 2.
	x := &COO{
		Dims: [3]int{2, 2, 2},
		I:    []int32{0}, J: []int32{1}, K: []int32{0},
		Val: []float64{2},
	}
	b := []float64{0, 0, 3, 5}  // row-major J x R
	c := []float64{7, 11, 0, 0} // row-major K x R
	y := MTTKRPRef(x, b, c, 2)
	// Y(0,0) = 2*3*7 = 42; Y(0,1) = 2*5*11 = 110; row 1 zero.
	want := []float64{42, 110, 0, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestMTTKRPRefMatchesTTVAtRankOneOnes(t *testing.T) {
	// With rank 1 and B = all-ones, MTTKRP reduces to TTV with v = C
	// column 0, summed over j into row i... more precisely
	// Y(i) = sum v * 1 * C(k): equal to contracting modes 1 and 2.
	x := Random([3]int{5, 6, 7}, 40, workload.NewRNG(3))
	b := make([]float64, 6)
	c := make([]float64, 7)
	for i := range b {
		b[i] = 1
	}
	for i := range c {
		c[i] = 1 + float64(i)*0.5
	}
	y := MTTKRPRef(x, b, c, 1)
	// Independent accumulation.
	want := make([]float64, 5)
	for n := range x.Val {
		want[x.I[n]] += x.Val[n] * c[x.K[n]]
	}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestMTTKRPEmuBothLayoutsVerify(t *testing.T) {
	for _, layout := range Layouts {
		res, err := MTTKRPEmu(machine.HardwareChick(), MTTKRPConfig{
			Dims: [3]int{12, 12, 12}, NNZ: 200, Rank: 4, Seed: 5,
			Layout: layout, GrainNNZ: 8,
		})
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Bytes != 200*(2+3*4)*8 {
			t.Fatalf("%v: bytes = %d", layout, res.Bytes)
		}
	}
}

// TestMTTKRPLayoutSensitivityFallsWithRank pins an emergent property of
// the model: at rank 1 MTTKRP is migration-bound like TTV, so the 2D
// layout wins clearly; as the rank grows, the 2R local factor reads per
// nonzero amortize the 1D layout's one migration per entry and the
// layouts converge. Data layout matters most for low-arithmetic-intensity
// kernels — the SpMV/TTV end of the paper's application space.
func TestMTTKRPLayoutSensitivityFallsWithRank(t *testing.T) {
	ratio := func(rank int) float64 {
		bw := map[Layout]float64{}
		for _, l := range Layouts {
			res, err := MTTKRPEmu(machine.HardwareChick(), MTTKRPConfig{
				Dims: [3]int{24, 24, 24}, NNZ: 1200, Rank: rank, Seed: 9,
				Layout: l, GrainNNZ: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			bw[l] = res.MBps()
		}
		return bw[Layout2D] / bw[Layout1D]
	}
	r1, r8 := ratio(1), ratio(8)
	if r1 < 1.2 {
		t.Fatalf("rank-1 MTTKRP should favor 2D clearly: ratio %.2f", r1)
	}
	if r8 >= r1 {
		t.Fatalf("layout sensitivity should fall with rank: rank1 %.2f, rank8 %.2f", r1, r8)
	}
}

func TestMTTKRPRejectsBadConfig(t *testing.T) {
	bad := []MTTKRPConfig{
		{Dims: [3]int{4, 4, 4}, NNZ: 0, Rank: 2, GrainNNZ: 4},
		{Dims: [3]int{4, 4, 4}, NNZ: 8, Rank: 0, GrainNNZ: 4},
		{Dims: [3]int{4, 4, 4}, NNZ: 8, Rank: 2, GrainNNZ: 0},
		{Dims: [3]int{4, 4, 4}, NNZ: 8, Rank: 2, GrainNNZ: 4, Layout: Layout(9)},
	}
	for _, cfg := range bad {
		if _, err := MTTKRPEmu(machine.HardwareChick(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
