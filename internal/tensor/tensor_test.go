package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"emuchick/internal/machine"
	"emuchick/internal/workload"
)

func TestRandomTensorValid(t *testing.T) {
	x := Random([3]int{10, 12, 14}, 200, workload.NewRNG(3))
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 200 {
		t.Fatalf("NNZ = %d", x.NNZ())
	}
	// Sorted by (i, j, k).
	for n := 1; n < x.NNZ(); n++ {
		a := int64(x.I[n-1])<<40 | int64(x.J[n-1])<<20 | int64(x.K[n-1])
		b := int64(x.I[n])<<40 | int64(x.J[n])<<20 | int64(x.K[n])
		if b < a {
			t.Fatal("entries not sorted")
		}
	}
}

func TestValidateCatchesBadTensors(t *testing.T) {
	x := Random([3]int{4, 4, 4}, 10, workload.NewRNG(1))
	x.I[0] = 4
	if x.Validate() == nil {
		t.Fatal("out-of-range coordinate not caught")
	}
	y := Random([3]int{4, 4, 4}, 10, workload.NewRNG(1))
	y.Val = y.Val[:9]
	if y.Validate() == nil {
		t.Fatal("length mismatch not caught")
	}
	z := &COO{Dims: [3]int{0, 1, 1}}
	if z.Validate() == nil {
		t.Fatal("zero mode size not caught")
	}
}

func TestTTVReference(t *testing.T) {
	// Hand-checkable tensor: X(0,0,0)=2, X(0,1,1)=3, X(1,0,0)=5.
	x := &COO{
		Dims: [3]int{2, 2, 2},
		I:    []int32{0, 0, 1},
		J:    []int32{0, 1, 0},
		K:    []int32{0, 1, 0},
		Val:  []float64{2, 3, 5},
	}
	y := x.TTV([]float64{10, 100})
	want := []float64{20, 300, 50, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	x.TTV([]float64{1})
}

// Property: TTV is linear in the vector.
func TestTTVLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		x := Random([3]int{6, 5, 7}, 60, rng)
		u := make([]float64, 7)
		v := make([]float64, 7)
		w := make([]float64, 7)
		for k := range u {
			u[k] = rng.Float64()
			v[k] = rng.Float64()
			w[k] = 2*u[k] - 3*v[k]
		}
		yu, yv, yw := x.TTV(u), x.TTV(v), x.TTV(w)
		for c := range yw {
			if math.Abs(yw[c]-(2*yu[c]-3*yv[c])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPackCoordRoundTripProperty(t *testing.T) {
	f := func(i, j, k uint32) bool {
		i &= 0x1FFFFF
		j &= 0x1FFFFF
		k &= 0x1FFFFF
		gi, gj, gk := unpackCoord(packCoord(int32(i), int32(j), int32(k)))
		return gi == int32(i) && gj == int32(j) && gk == int32(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTTVEmuBothLayoutsVerify(t *testing.T) {
	for _, layout := range Layouts {
		res, err := TTVEmu(machine.HardwareChick(), TTVConfig{
			Dims: [3]int{16, 16, 16}, NNZ: 400, Seed: 5, Layout: layout, GrainNNZ: 16,
		})
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Bytes != 400*32 || res.Elapsed <= 0 {
			t.Fatalf("%v: result %+v", layout, res)
		}
	}
}

func TestTTVEmu2DBeats1D(t *testing.T) {
	bw := func(layout Layout) float64 {
		res, err := TTVEmu(machine.HardwareChick(), TTVConfig{
			Dims: [3]int{24, 24, 24}, NNZ: 2000, Seed: 9, Layout: layout, GrainNNZ: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	if d1, d2 := bw(Layout1D), bw(Layout2D); d2 <= d1 {
		t.Fatalf("2d (%v MB/s) should beat 1d (%v MB/s)", d2, d1)
	}
}

func TestTTVEmuRejectsBadConfig(t *testing.T) {
	if _, err := TTVEmu(machine.HardwareChick(), TTVConfig{
		Dims: [3]int{4, 4, 4}, NNZ: 0, GrainNNZ: 4,
	}); err == nil {
		t.Fatal("zero nnz accepted")
	}
	if _, err := TTVEmu(machine.HardwareChick(), TTVConfig{
		Dims: [3]int{4, 4, 4}, NNZ: 8, GrainNNZ: 0,
	}); err == nil {
		t.Fatal("zero grain accepted")
	}
	if Layout(9).String() == "" {
		t.Fatal("unknown layout String empty")
	}
	if Layout1D.String() != "1d" || Layout2D.String() != "2d" {
		t.Fatal("layout names wrong")
	}
}
