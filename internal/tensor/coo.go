// Package tensor provides the sparse-tensor workload behind the paper's
// second motivating application: ParTI-style tensor decomposition (CP and
// Tucker), whose bottleneck kernels are sparse tensor contractions with
// the same weak locality as SpMV. The package implements 3-mode COO
// tensors, a reference tensor-times-vector (TTV) contraction, and Emu
// kernels that contrast the 1D-striped and 2D row-blocked layouts the
// paper studies for SpMV.
package tensor

import (
	"fmt"

	"emuchick/internal/workload"
)

// COO is a 3-mode sparse tensor in coordinate format. Entries with equal
// coordinates accumulate.
type COO struct {
	Dims [3]int
	I    []int32 // mode-0 coordinates
	J    []int32 // mode-1 coordinates
	K    []int32 // mode-2 coordinates
	Val  []float64
}

// NNZ reports the stored entry count.
func (t *COO) NNZ() int { return len(t.Val) }

// Validate checks structural invariants.
func (t *COO) Validate() error {
	for m, d := range t.Dims {
		if d <= 0 {
			return fmt.Errorf("tensor: mode %d has size %d", m, d)
		}
	}
	if len(t.I) != len(t.Val) || len(t.J) != len(t.Val) || len(t.K) != len(t.Val) {
		return fmt.Errorf("tensor: coordinate/value lengths differ")
	}
	for n := range t.Val {
		if t.I[n] < 0 || int(t.I[n]) >= t.Dims[0] ||
			t.J[n] < 0 || int(t.J[n]) >= t.Dims[1] ||
			t.K[n] < 0 || int(t.K[n]) >= t.Dims[2] {
			return fmt.Errorf("tensor: entry %d coordinates out of range", n)
		}
	}
	return nil
}

// Random builds a tensor with nnz entries at uniform coordinates and
// dyadic values (so contractions are exact in float64), sorted by (i, j)
// so that slice-contiguous layouts are constructible.
func Random(dims [3]int, nnz int, rng *workload.RNG) *COO {
	t := &COO{Dims: dims}
	for n := 0; n < nnz; n++ {
		t.I = append(t.I, int32(rng.Intn(dims[0])))
		t.J = append(t.J, int32(rng.Intn(dims[1])))
		t.K = append(t.K, int32(rng.Intn(dims[2])))
		t.Val = append(t.Val, float64(rng.Intn(16))*0.25-2)
	}
	t.sortByIJ()
	return t
}

// sortByIJ sorts entries by (i, j, k) with a simple insertion sort on an
// index permutation (tensors here are small; determinism matters more
// than asymptotics).
func (t *COO) sortByIJ() {
	n := t.NNZ()
	key := func(n int) int64 {
		return int64(t.I[n])<<40 | int64(t.J[n])<<20 | int64(t.K[n])
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && key(idx[j]) < key(idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	i2 := make([]int32, n)
	j2 := make([]int32, n)
	k2 := make([]int32, n)
	v2 := make([]float64, n)
	for p, q := range idx {
		i2[p], j2[p], k2[p], v2[p] = t.I[q], t.J[q], t.K[q], t.Val[q]
	}
	t.I, t.J, t.K, t.Val = i2, j2, k2, v2
}

// TTV contracts mode 2 with v: Y(i,j) = sum_k X(i,j,k) * v(k). The result
// is dense over modes 0 and 1, returned row-major.
func (t *COO) TTV(v []float64) []float64 {
	if len(v) != t.Dims[2] {
		panic(fmt.Sprintf("tensor: TTV with |v|=%d for mode size %d", len(v), t.Dims[2]))
	}
	y := make([]float64, t.Dims[0]*t.Dims[1])
	for n := range t.Val {
		y[int(t.I[n])*t.Dims[1]+int(t.J[n])] += t.Val[n] * v[t.K[n]]
	}
	return y
}
