package experiments

import (
	"emuchick/internal/cilk"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "fig10",
		Title: "Emu hardware vs vendor-simulator validation (STREAM, pointer chase, ping-pong)",
		Paper: "STREAM matches between hardware and the matched simulator; " +
			"pointer chasing matches in shape but not magnitude because the " +
			"simulated migration engine does 16 M migrations/s where hardware " +
			"does 9 M/s (exposed by ping-pong).",
		Run: runFig10,
	})
	register(&Experiment{
		ID:    "migration-anchors",
		Title: "Migration-engine scalars from the ping-pong microbenchmark",
		Paper: "Hardware: ~9 M migrations/s; simulator: ~16 M/s; single-thread " +
			"migration latency approximately 1-2 us.",
		Run: runMigrationAnchors,
	})
}

// fig10Platforms pairs the two validation configurations.
var fig10Platforms = []struct {
	label string
	cfg   func() machine.Config
}{
	{"hardware", machine.HardwareChick},
	{"simulator", machine.SimMatched},
}

func runFig10(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elems, chaseElems := 512, 65536
	threads := []int{8, 32, 64, 128, 256, 512}
	trials := o.Trials
	if trials > 3 {
		trials = 3
	}
	if o.Quick {
		elems, chaseElems = 96, 8192
		threads = []int{64, 256}
		trials = 2
	}

	stream := &metrics.Figure{
		ID:     "fig10-stream",
		Title:  "STREAM: hardware vs simulator (8 nodelets)",
		XLabel: "threads",
		YLabel: "MB/s",
	}
	for _, p := range fig10Platforms {
		s := &metrics.Series{Name: p.label}
		for _, th := range threads {
			res, err := kernels.StreamAdd(p.cfg(), kernels.StreamConfig{
				ElemsPerNodelet: elems, Nodelets: 8, Threads: th, Strategy: cilk.SerialRemoteSpawn,
			})
			if err != nil {
				return nil, err
			}
			s.Add(float64(th), single(res.MBps()))
		}
		stream.Series = append(stream.Series, s)
	}

	chase := &metrics.Figure{
		ID:     "fig10-chase",
		Title:  "Pointer chasing: hardware vs simulator (512 threads, full_block_shuffle)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
	}
	for _, p := range fig10Platforms {
		s := &metrics.Series{Name: p.label}
		for _, bs := range chaseBlocks(o.Quick) {
			stats := metrics.Trials(trials, func(trial int) float64 {
				res, err := kernels.PointerChase(p.cfg(), kernels.ChaseConfig{
					Elements: chaseElems, BlockSize: bs, Mode: workload.FullBlockShuffle,
					Seed: uint64(trial)*53 + 3, Threads: 512, Nodelets: 8,
				})
				if err != nil {
					panic(err)
				}
				return res.MBps()
			})
			s.Add(float64(bs), stats)
		}
		chase.Series = append(chase.Series, s)
	}

	pp := &metrics.Figure{
		ID:     "fig10-pingpong",
		Title:  "Ping-pong migration rate: hardware vs simulator",
		XLabel: "threads",
		YLabel: "migrations/s (millions)",
	}
	ppThreads := []int{1, 2, 4, 8, 16, 32, 64}
	iters := 300
	if o.Quick {
		ppThreads = []int{1, 16, 64}
		iters = 100
	}
	for _, p := range fig10Platforms {
		s := &metrics.Series{Name: p.label}
		for _, th := range ppThreads {
			res, err := kernels.PingPong(p.cfg(), kernels.PingPongConfig{
				Threads: th, Iterations: iters, NodeletA: 0, NodeletB: 1,
			})
			if err != nil {
				return nil, err
			}
			s.Add(float64(th), single(res.MigrationsPerSec/1e6))
		}
		pp.Series = append(pp.Series, s)
	}
	return []*metrics.Figure{stream, chase, pp}, nil
}

func runMigrationAnchors(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	iters := 500
	if o.Quick {
		iters = 100
	}
	fig := &metrics.Figure{
		ID:     "migration-anchors",
		Title:  "Migration scalars (ping-pong)",
		XLabel: "anchor",
		YLabel: "value",
		XTicks: map[float64]string{
			0: "hw migrations/s (M)",
			1: "sim migrations/s (M)",
			2: "hw 1-thread latency (us)",
		},
	}
	measured := &metrics.Series{Name: "measured"}
	paperS := &metrics.Series{Name: "paper"}

	hw, err := kernels.PingPong(machine.HardwareChick(), kernels.PingPongConfig{
		Threads: 64, Iterations: iters, NodeletA: 0, NodeletB: 1,
	})
	if err != nil {
		return nil, err
	}
	sm, err := kernels.PingPong(machine.SimMatched(), kernels.PingPongConfig{
		Threads: 64, Iterations: iters, NodeletA: 0, NodeletB: 1,
	})
	if err != nil {
		return nil, err
	}
	one, err := kernels.PingPong(machine.HardwareChick(), kernels.PingPongConfig{
		Threads: 1, Iterations: iters, NodeletA: 0, NodeletB: 1,
	})
	if err != nil {
		return nil, err
	}
	measured.Add(0, single(hw.MigrationsPerSec/1e6))
	measured.Add(1, single(sm.MigrationsPerSec/1e6))
	measured.Add(2, single(one.MeanLatency.Seconds()*1e6))
	paperS.Add(0, single(9))
	paperS.Add(1, single(16))
	paperS.Add(2, single(1.5)) // "approximately 1-2 us"
	fig.Series = []*metrics.Series{measured, paperS}
	return []*metrics.Figure{fig}, nil
}
