package experiments

import (
	"emuchick/internal/cilk"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "fig10",
		Title: "Emu hardware vs vendor-simulator validation (STREAM, pointer chase, ping-pong)",
		Paper: "STREAM matches between hardware and the matched simulator; " +
			"pointer chasing matches in shape but not magnitude because the " +
			"simulated migration engine does 16 M migrations/s where hardware " +
			"does 9 M/s (exposed by ping-pong).",
		Runner: runFig10,
	})
	register(&Experiment{
		ID:    "migration-anchors",
		Title: "Migration-engine scalars from the ping-pong microbenchmark",
		Paper: "Hardware: ~9 M migrations/s; simulator: ~16 M/s; single-thread " +
			"migration latency approximately 1-2 us.",
		Runner: runMigrationAnchors,
	})
}

// fig10Platforms pairs the two validation configurations.
var fig10Platforms = []struct {
	label string
	cfg   func() machine.Config
}{
	{"hardware", machine.HardwareChick},
	{"simulator", machine.SimMatched},
}

func fig10PlatformNames() []string {
	names := make([]string, len(fig10Platforms))
	for i, p := range fig10Platforms {
		names[i] = p.label
	}
	return names
}

func runFig10(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elems, chaseElems := 512, 65536
	threads := []int{8, 32, 64, 128, 256, 512}
	trials := min(o.Trials, 3)
	if o.Quick {
		elems, chaseElems = 96, 8192
		threads = []int{64, 256}
		trials = 2
	}

	streamStats, err := sweep{series: len(fig10Platforms), points: len(threads)}.run(o,
		func(o Options, si, pi, _ int) (float64, error) {
			res, err := kernels.StreamAdd(fig10Platforms[si].cfg(), kernels.StreamConfig{
				ElemsPerNodelet: elems, Nodelets: 8, Threads: threads[pi], Strategy: cilk.SerialRemoteSpawn,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	stream := &metrics.Figure{
		ID:     "fig10-stream",
		Title:  "STREAM: hardware vs simulator (8 nodelets)",
		XLabel: "threads",
		YLabel: "MB/s",
		Series: assemble(fig10PlatformNames(), xsOf(threads), streamStats),
	}

	blocks := chaseBlocks(o.Quick)
	chaseStats, err := sweep{series: len(fig10Platforms), points: len(blocks), trials: trials}.run(o,
		func(o Options, si, pi, trial int) (float64, error) {
			res, err := kernels.PointerChase(fig10Platforms[si].cfg(), kernels.ChaseConfig{
				Elements: chaseElems, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*53 + 3, Threads: 512, Nodelets: 8,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	chase := &metrics.Figure{
		ID:     "fig10-chase",
		Title:  "Pointer chasing: hardware vs simulator (512 threads, full_block_shuffle)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
		Series: assemble(fig10PlatformNames(), xsOf(blocks), chaseStats),
	}

	ppThreads := []int{1, 2, 4, 8, 16, 32, 64}
	iters := 300
	if o.Quick {
		ppThreads = []int{1, 16, 64}
		iters = 100
	}
	ppStats, err := sweep{series: len(fig10Platforms), points: len(ppThreads)}.run(o,
		func(o Options, si, pi, _ int) (float64, error) {
			res, err := kernels.PingPong(fig10Platforms[si].cfg(), kernels.PingPongConfig{
				Threads: ppThreads[pi], Iterations: iters, NodeletA: 0, NodeletB: 1,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MigrationsPerSec / 1e6, nil
		})
	if err != nil {
		return nil, err
	}
	pp := &metrics.Figure{
		ID:     "fig10-pingpong",
		Title:  "Ping-pong migration rate: hardware vs simulator",
		XLabel: "threads",
		YLabel: "migrations/s (millions)",
		Series: assemble(fig10PlatformNames(), xsOf(ppThreads), ppStats),
	}
	return []*metrics.Figure{stream, chase, pp}, nil
}

func runMigrationAnchors(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	iters := 500
	if o.Quick {
		iters = 100
	}
	fig := &metrics.Figure{
		ID:     "migration-anchors",
		Title:  "Migration scalars (ping-pong)",
		XLabel: "anchor",
		YLabel: "value",
		XTicks: map[float64]string{
			0: "hw migrations/s (M)",
			1: "sim migrations/s (M)",
			2: "hw 1-thread latency (us)",
		},
	}
	// The three anchor measurements are independent ping-pong simulations.
	anchors := []struct {
		cfg     machine.Config
		threads int
		value   func(kernels.PingPongResult) float64
	}{
		{machine.HardwareChick(), 64, func(r kernels.PingPongResult) float64 { return r.MigrationsPerSec / 1e6 }},
		{machine.SimMatched(), 64, func(r kernels.PingPongResult) float64 { return r.MigrationsPerSec / 1e6 }},
		{machine.HardwareChick(), 1, func(r kernels.PingPongResult) float64 { return r.MeanLatency.Seconds() * 1e6 }},
	}
	vals := make([]float64, len(anchors))
	err := parallelFor(o, len(anchors), func(i int) error {
		res, err := kernels.PingPong(anchors[i].cfg, kernels.PingPongConfig{
			Threads: anchors[i].threads, Iterations: iters, NodeletA: 0, NodeletB: 1,
		}, o.KernelOptions()...)
		if err != nil {
			return err
		}
		vals[i] = anchors[i].value(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	measured := &metrics.Series{Name: "measured"}
	paperS := &metrics.Series{Name: "paper"}
	for i, v := range vals {
		measured.Add(float64(i), single(v))
	}
	paperS.Add(0, single(9))
	paperS.Add(1, single(16))
	paperS.Add(2, single(1.5)) // "approximately 1-2 us"
	fig.Series = []*metrics.Series{measured, paperS}
	return []*metrics.Figure{fig}, nil
}
