package experiments

import (
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "fig11",
		Title: "Pointer chasing on the full-speed 64-nodelet Emu (simulator projection)",
		Paper: "At design speed and 64 nodelets the system remains insensitive " +
			"to block size, and bandwidth scales with thread count into the " +
			"thousands of threads.",
		Run: runFig11,
	})
}

func runFig11(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elements := 131072
	threadSets := []int{512, 1024, 2048, 4096}
	blocks := []int{2, 8, 32, 128, 512, 2048}
	// The projection sweep is deterministic apart from the shuffle seed;
	// cap trials to keep the 64-nodelet runs tractable.
	trials := o.Trials
	if trials > 3 {
		trials = 3
	}
	if o.Quick {
		elements = 32768
		threadSets = []int{512, 2048}
		blocks = []int{8, 128}
		trials = 2
	}
	fig := &metrics.Figure{
		ID:     "fig11",
		Title:  "Pointer chasing (Emu simulator, 64 nodelets, full speed)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
	}
	for _, th := range threadSets {
		s := &metrics.Series{Name: seriesName("threads", th)}
		for _, bs := range blocks {
			stats := metrics.Trials(trials, func(trial int) float64 {
				res, err := kernels.PointerChase(machine.FullSpeed(8), kernels.ChaseConfig{
					Elements: elements, BlockSize: bs, Mode: workload.FullBlockShuffle,
					Seed: uint64(trial)*61 + 11, Threads: th, Nodelets: 64,
				})
				if err != nil {
					panic(err)
				}
				return res.MBps()
			})
			s.Add(float64(bs), stats)
		}
		fig.Series = append(fig.Series, s)
	}
	return []*metrics.Figure{fig}, nil
}
