package experiments

import (
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "fig11",
		Title: "Pointer chasing on the full-speed 64-nodelet Emu (simulator projection)",
		Paper: "At design speed and 64 nodelets the system remains insensitive " +
			"to block size, and bandwidth scales with thread count into the " +
			"thousands of threads.",
		Runner: runFig11,
	})
}

func runFig11(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elements := 131072
	threadSets := []int{512, 1024, 2048, 4096}
	blocks := []int{2, 8, 32, 128, 512, 2048}
	// The projection sweep is deterministic apart from the shuffle seed;
	// cap trials to keep the 64-nodelet runs tractable.
	trials := min(o.Trials, 3)
	if o.Quick {
		elements = 32768
		threadSets = []int{512, 2048}
		blocks = []int{8, 128}
		trials = 2
	}
	stats, err := sweep{series: len(threadSets), points: len(blocks), trials: trials}.run(o,
		func(o Options, si, pi, trial int) (float64, error) {
			res, err := kernels.PointerChase(machine.FullSpeed(8), kernels.ChaseConfig{
				Elements: elements, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*61 + 11, Threads: threadSets[si], Nodelets: 64,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     "fig11",
		Title:  "Pointer chasing (Emu simulator, 64 nodelets, full speed)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
		Series: assemble(threadSeriesNames(threadSets), xsOf(blocks), stats),
	}
	return []*metrics.Figure{fig}, nil
}
