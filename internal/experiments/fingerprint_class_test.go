package experiments

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"emuchick/internal/analysis/fingerprint"
	"emuchick/internal/fault"
	"emuchick/internal/kernels"
	"emuchick/internal/sim"
	"emuchick/internal/storefs"
	"emuchick/internal/trace"
)

// These tests derive their field lists from fingerprint.Fields — the same
// classification table the fingerprint analyzer enforces against Options
// and optionsFingerprint at lint time — instead of duplicating the in/out
// lists by hand. The analyzer pins the static half (every field classified,
// the fingerprint function reads exactly the In fields); the tests here pin
// the behavioral half (In fields change the fingerprint and are refused on
// resume, Out fields do neither). Adding an Options field without extending
// the table fails the analyzer; adding a table entry without extending the
// mutation maps fails these tests.

func mustPlan(t *testing.T) *fault.Plan {
	t.Helper()
	plan, err := fault.Parse("migstall=10us/100us", 7)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// fieldMutations sets each Options field to a value different from the
// zero-ish baseline the sensitivity test starts from.
func fieldMutations(t *testing.T) map[string]func(*Options) {
	return map[string]func(*Options){
		"Trials":         func(o *Options) { o.Trials = 5 },
		"Quick":          func(o *Options) { o.Quick = !o.Quick },
		"Faults":         func(o *Options) { o.Faults = mustPlan(t) },
		"FaultSeed":      func(o *Options) { o.FaultSeed = 9 },
		"Parallel":       func(o *Options) { o.Parallel = 7 },
		"ProcEngine":     func(o *Options) { o.ProcEngine = kernels.GoroutineProcs },
		"Observer":       func(o *Options) { o.Observer = trace.FuncObserver{OnEvent: func(trace.Event) {}} },
		"SampleInterval": func(o *Options) { o.SampleInterval = sim.Microsecond },
		"Checkpoint":     func(o *Options) { o.Checkpoint = "elsewhere.ckpt" },
		"CellTimeout":    func(o *Options) { o.CellTimeout = time.Minute },
		"Retries":        func(o *Options) { o.Retries = 3 },
		"ctx":            func(o *Options) { o.ctx = context.Background() },
		"ckptFS":         func(o *Options) { o.ckptFS = storefs.OS{} },
		"ckpt":           func(o *Options) { o.ckpt = &Checkpoint{} },
		"maxEvents":      func(o *Options) { o.maxEvents = 1 },
		"ckptHook":       func(o *Options) { o.ckptHook = func(int) {} },
	}
}

// sortedFieldNames returns the classification table's keys in a fixed order.
func sortedFieldNames() []string {
	var names []string
	for name := range fingerprint.Fields {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TestFingerprintTableMatchesOptionsStruct: the exported table, the Options
// struct, and the test mutation map must name exactly the same fields. (The
// analyzer enforces table <-> struct too; checking it here keeps `go test`
// self-sufficient.)
func TestFingerprintTableMatchesOptionsStruct(t *testing.T) {
	rt := reflect.TypeOf(Options{})
	structFields := map[string]bool{}
	for i := 0; i < rt.NumField(); i++ {
		structFields[rt.Field(i).Name] = true
	}
	muts := fieldMutations(t)
	for _, name := range sortedFieldNames() {
		if !structFields[name] {
			t.Errorf("table entry %q matches no Options field", name)
		}
		if _, ok := muts[name]; !ok {
			t.Errorf("no mutation for field %q; extend fieldMutations so its sensitivity is tested", name)
		}
	}
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if _, ok := fingerprint.Fields[name]; !ok {
			t.Errorf("Options field %q is not classified in fingerprint.Fields", name)
		}
	}
}

// TestFingerprintSensitivityMatchesTable: mutating a field changes
// optionsFingerprint exactly when the table classifies it In.
func TestFingerprintSensitivityMatchesTable(t *testing.T) {
	muts := fieldMutations(t)
	base := Options{Trials: 1}
	baseFP := optionsFingerprint("fig4", base)
	for _, name := range sortedFieldNames() {
		mut, ok := muts[name]
		if !ok {
			continue // already reported by the coverage test
		}
		o := base
		mut(&o)
		changed := optionsFingerprint("fig4", o) != baseFP
		wantChanged := fingerprint.Fields[name] == fingerprint.In
		if changed != wantChanged {
			t.Errorf("field %s (classified %v): fingerprint changed = %v, want %v",
				name, fingerprint.Fields[name], changed, wantChanged)
		}
	}
}

// TestCheckpointResumeHonorsFingerprintTable is the end-to-end half: against
// a complete log, a resume differing in an In field must be refused with a
// fingerprint error, and a resume differing in any Out field must be
// accepted and replay byte-identical figures.
func TestCheckpointResumeHonorsFingerprintTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	base := ckptFigureBytes(t, "fig4", path) // complete log at quick, trials=1
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	resumeMutations := map[string]Option{
		"Trials":         WithTrials(2),
		"Quick":          WithScale(FullScale),
		"Faults":         WithFaultPlan(mustPlan(t)),
		"FaultSeed":      WithFaultSeed(9),
		"Parallel":       WithParallel(2),
		"ProcEngine":     WithProcEngine(kernels.GoroutineProcs),
		"Observer":       WithObserver(trace.FuncObserver{OnEvent: func(trace.Event) {}}),
		"SampleInterval": WithSampleInterval(sim.Microsecond),
		"CellTimeout":    WithCellTimeout(time.Minute),
		"Retries":        WithRetries(3),
		"ctx":            WithContext(context.Background()),
		"ckptFS":         WithCheckpointFS(storefs.OS{}),
		"maxEvents":      optionFunc(func(o *Options) { o.maxEvents = 1 }),
		"ckptHook":       optionFunc(func(o *Options) { o.ckptHook = func(int) {} }),
	}
	skipped := map[string]string{
		"Checkpoint": "the log's own path: pointing at a different path opens a different log, not a resume of this one",
		"ckpt":       "internal handle; Run resolves it from Checkpoint itself",
	}
	for _, name := range sortedFieldNames() {
		class := fingerprint.Fields[name]
		t.Run(name, func(t *testing.T) {
			if reason, ok := skipped[name]; ok {
				t.Skip(reason)
			}
			opt, ok := resumeMutations[name]
			if !ok {
				t.Fatalf("no resume mutation for field %q; extend the table", name)
			}
			figs, err := e.Run(WithScale(QuickScale), WithTrials(1), WithCheckpoint(path), opt)
			if class == fingerprint.In {
				if err == nil {
					t.Fatalf("resume with a different %s was accepted; In fields must refuse", name)
				}
				if !strings.Contains(err.Error(), "fingerprint") {
					t.Fatalf("unexpected refusal message: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("resume with a different %s was refused (%v); Out fields must replay", name, err)
			}
			if got := figuresToJSON(t, figs); !bytes.Equal(base, got) {
				t.Fatalf("resume with a different %s is not byte-identical:\nbase: %s\ngot:  %s", name, base, got)
			}
		})
	}
	// A different experiment against the same file must also be refused.
	e6, err := ByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e6.Run(WithScale(QuickScale), WithTrials(1), WithCheckpoint(path)); err == nil {
		t.Fatal("resume under a different experiment was accepted")
	}
}
