package experiments

import (
	"emuchick/internal/cpukernels"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

func init() {
	register(&Experiment{
		ID:    "fig6",
		Title: "Pointer chasing on the Emu Chick (8 nodelets) vs block size",
		Paper: "Bandwidth is flat across block sizes (no spatial-locality " +
			"sensitivity), except a deep dip at block size 1 where every " +
			"element migrates; performance recovers by block ~4.",
		Runner: runFig6,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Pointer chasing on Sandy Bridge Xeon vs block size",
		Paper: "Small blocks waste 3/4 of each cache line; best performance " +
			"between 256 and 4096 elements (~one 8 KiB DRAM page); declines " +
			"beyond a page.",
		Runner: runFig7,
	})
}

func chaseBlocks(quick bool) []int {
	if quick {
		return []int{1, 8, 64, 512}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
}

func threadSeriesNames(threadSets []int) []string {
	names := make([]string, len(threadSets))
	for i, th := range threadSets {
		names[i] = seriesName("threads", th)
	}
	return names
}

func runFig6(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	// The list must be much larger than threads x largest block so that
	// every nodelet stays populated at the top of the block sweep.
	elements := 65536
	threadSets := []int{64, 128, 256, 512}
	trials := min(o.Trials, 5)
	if o.Quick {
		elements = 8192
		threadSets = []int{64, 256}
	}
	blocks := chaseBlocks(o.Quick)
	stats, err := sweep{series: len(threadSets), points: len(blocks), trials: trials}.run(o,
		func(o Options, si, pi, trial int) (float64, error) {
			res, err := kernels.PointerChase(machine.HardwareChick(), kernels.ChaseConfig{
				Elements: elements, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*1009 + 1, Threads: threadSets[si], Nodelets: 8,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     "fig6",
		Title:  "Pointer chasing (Emu Chick, 8 nodelets, full_block_shuffle)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
		Series: assemble(threadSeriesNames(threadSets), xsOf(blocks), stats),
	}
	return []*metrics.Figure{fig}, nil
}

func runFig7(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	// The Xeon's cache-line and DRAM-page behaviour only emerges when the
	// list exceeds the L3 (20 MiB), so the full sweep walks a 32 MiB
	// list; trials are capped because the per-access cache model makes
	// these the costliest runs of the suite.
	elements := 1 << 21
	threadSets := []int{1, 8, 32}
	trials := min(o.Trials, 2)
	if o.Quick {
		elements = 1 << 16
		threadSets = []int{4, 32}
	}
	blocks := chaseBlocks(o.Quick)
	stats, err := sweep{series: len(threadSets), points: len(blocks), trials: trials}.run(o,
		func(o Options, si, pi, trial int) (float64, error) {
			res, err := cpukernels.PointerChase(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
				Elements: elements, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*2027 + 1, Threads: threadSets[si],
			})
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     "fig7",
		Title:  "Pointer chasing (Sandy Bridge Xeon, full_block_shuffle)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
		Series: assemble(threadSeriesNames(threadSets), xsOf(blocks), stats),
	}
	return []*metrics.Figure{fig}, nil
}
