package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"emuchick/internal/sim"
	"emuchick/internal/storefs"
)

// The checkpoint is a write-ahead log of finished sweep cells: one JSONL
// record is appended (and flushed by the OS on process death — O_APPEND,
// no userspace buffering) after every completed (series, point, trial)
// simulation, so a killed run loses at most the cell in flight. On resume
// the log is replayed, completed cells are re-slotted without re-running,
// and the assembled figures are byte-identical to an uninterrupted run —
// Go's JSON encoding of float64 round-trips exactly, so a replayed value
// is the bit pattern the simulation produced.
//
// Cells are addressed by (sweep, cell): cell is the runner's flat
// series×points×trials index, and sweep counts the sweep.run calls an
// experiment makes in order (fig10 runs three sweeps; each gets its own
// index). Both are deterministic for a given experiment and options, which
// is what makes replay-by-index sound.
//
// The header record carries the experiment id and an options fingerprint;
// a resume under different workload-shaping options (trials, scale, fault
// plan, seed) is refused rather than silently mixing incompatible cells.
// Parallelism is deliberately outside the fingerprint: results are slotted
// by index, never by arrival order, so a sweep may be resumed at any
// -parallel.

// ckptKey addresses one recorded cell.
type ckptKey struct {
	sweep, cell int
}

// ckptRecord is the one-line JSON schema of every checkpoint entry.
type ckptRecord struct {
	Type  string       `json:"type"` // "header", "cell", or "fail"
	Exp   string       `json:"exp,omitempty"`
	FP    string       `json:"fp,omitempty"`
	Sweep int          `json:"sweep,omitempty"`
	Cell  int          `json:"cell,omitempty"`
	V     *float64     `json:"v,omitempty"`
	Fail  *CellFailure `json:"fail,omitempty"`
}

// ParkedProcRecord is the serializable form of one sim.ParkedProc in a
// failure record.
type ParkedProcRecord struct {
	Name     string `json:"name"`
	Site     string `json:"site"`
	ParkedAt int64  `json:"parked_at"`
	WakeAt   int64  `json:"wake_at,omitempty"`
	HasWake  bool   `json:"has_wake,omitempty"`
}

// CellFailure is the post-mortem of a cell that could not produce a result:
// which cell, how many attempts it was given, and — when the underlying
// error was a sim.RunError — the engine's structured state at death,
// including the parked-proc dump.
type CellFailure struct {
	Sweep    int    `json:"sweep"`
	Cell     int    `json:"cell"`
	Series   int    `json:"series"`
	Point    int    `json:"point"`
	Trial    int    `json:"trial"`
	Attempts int    `json:"attempts"`
	Kind     string `json:"kind"` // sim.FailureKind string, or "error"
	Reason   string `json:"reason"`
	SimTime  int64  `json:"sim_time,omitempty"`
	Fired    uint64 `json:"fired,omitempty"`
	// Parked lists up to maxParkedRecorded parked procs; ParkedTotal is the
	// full count (a full-machine deadlock can park thousands of threadlets).
	Parked      []ParkedProcRecord `json:"parked,omitempty"`
	ParkedTotal int                `json:"parked_total,omitempty"`
}

// maxParkedRecorded bounds the per-failure proc dump in the checkpoint.
const maxParkedRecorded = 32

// NewCellFailure builds a failure record from a cell's final error,
// extracting the structured sim.RunError detail when present.
func NewCellFailure(attempts int, err error) *CellFailure {
	cf := &CellFailure{Attempts: attempts, Kind: "error", Reason: err.Error()}
	var re *sim.RunError
	if errors.As(err, &re) {
		cf.Kind = re.Kind.String()
		cf.SimTime = int64(re.Now)
		cf.Fired = re.Fired
		cf.ParkedTotal = len(re.Parked)
		n := len(re.Parked)
		if n > maxParkedRecorded {
			n = maxParkedRecorded
		}
		for _, p := range re.Parked[:n] {
			cf.Parked = append(cf.Parked, ParkedProcRecord{
				Name:     p.Name,
				Site:     p.Site,
				ParkedAt: int64(p.ParkedAt),
				WakeAt:   int64(p.WakeAt),
				HasWake:  p.HasWake,
			})
		}
	}
	return cf
}

// Checkpoint is an open write-ahead log. Record/RecordFailure are safe for
// concurrent use by sweep workers; Lookup and nextSweep are called from the
// runner's coordinating goroutine.
type Checkpoint struct {
	mu       sync.Mutex
	f        storefs.File
	exp      string
	fp       string
	done     map[ckptKey]float64
	failures []CellFailure // loaded from an existing log, for reporting
	sweeps   int
	recorded int
	onRecord func(recorded int) // test hook, called after each Record
}

// CheckpointPath resolves a checkpoint argument for one experiment: a
// directory — an existing one, or any path with a trailing separator —
// maps to <dir>/<exp-id>.ckpt so one flag can serve a multi-experiment run
// (each experiment keeps its own log); any other path is used as-is.
func CheckpointPath(path, expID string) string {
	if strings.HasSuffix(path, "/") || strings.HasSuffix(path, string(os.PathSeparator)) {
		return filepath.Join(path, expID+".ckpt")
	}
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return filepath.Join(path, expID+".ckpt")
	}
	return path
}

// OpenCheckpoint opens (or creates) the write-ahead log at path for the
// given experiment and options fingerprint. An existing log is replayed:
// completed cells become Lookup hits, recorded failures are kept for
// reporting, and a torn final line — the expected signature of a kill
// mid-append — is dropped. A log written by a different experiment or under
// different workload-shaping options is refused.
func OpenCheckpoint(path, exp, fingerprint string) (*Checkpoint, error) {
	return OpenCheckpointIn(storefs.Default, path, exp, fingerprint)
}

// OpenCheckpointIn is OpenCheckpoint against an explicit filesystem — the
// seam the job server uses to route WAL appends through its (possibly
// fault-injecting) store filesystem.
func OpenCheckpointIn(fsys storefs.FS, path, exp, fingerprint string) (*Checkpoint, error) {
	if fsys == nil {
		fsys = storefs.Default
	}
	c := &Checkpoint{exp: exp, fp: fingerprint, done: map[ckptKey]float64{}}
	data, err := fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	hasHeader := false
	valid := 0 // byte offset past the last fully parsed line
	off := 0
	line := 0
	for off < len(data) {
		line++
		end := len(data)
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			end = off + nl + 1
		}
		raw := bytes.TrimSpace(data[off:end])
		if len(raw) == 0 {
			valid, off = end, end
			continue
		}
		var rec ckptRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			if len(bytes.TrimSpace(data[end:])) == 0 {
				break // torn tail from a kill mid-write: discard and resume
			}
			return nil, fmt.Errorf("checkpoint %s: corrupt record at line %d: %w", path, line, err)
		}
		switch rec.Type {
		case "header":
			if rec.Exp != exp || rec.FP != fingerprint {
				return nil, fmt.Errorf(
					"checkpoint %s was written for experiment %q (fingerprint %s); this run is %q (fingerprint %s) — delete the file or pass a fresh -checkpoint path",
					path, rec.Exp, rec.FP, exp, fingerprint)
			}
			hasHeader = true
		case "cell":
			if rec.V != nil {
				c.done[ckptKey{rec.Sweep, rec.Cell}] = *rec.V
			}
		case "fail":
			if rec.Fail != nil {
				c.failures = append(c.failures, *rec.Fail)
			}
		}
		valid, off = end, end
	}
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	// Drop any torn tail before appending, so the next resume never sees a
	// partial line spliced into a fresh record.
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	c.f = f
	if !hasHeader {
		if err := c.append(ckptRecord{Type: "header", Exp: exp, FP: fingerprint}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// append marshals rec and writes it as one line. Caller holds mu or is the
// only user.
func (c *Checkpoint) append(rec ckptRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	b = append(b, '\n')
	if _, err := c.f.Write(b); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Lookup reports the recorded result of a completed cell, if any. Failed
// cells are not returned — they re-run on resume.
func (c *Checkpoint) Lookup(sweep, cell int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.done[ckptKey{sweep, cell}]
	return v, ok
}

// Completed reports how many cell results the log holds.
func (c *Checkpoint) Completed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Failures returns the failure records the log holds (loaded plus newly
// recorded), in record order.
func (c *Checkpoint) Failures() []CellFailure {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CellFailure, len(c.failures))
	copy(out, c.failures)
	return out
}

// Record appends one completed cell to the log.
func (c *Checkpoint) Record(sweep, cell int, v float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.append(ckptRecord{Type: "cell", Sweep: sweep, Cell: cell, V: &v}); err != nil {
		return err
	}
	c.done[ckptKey{sweep, cell}] = v
	c.recorded++
	if c.onRecord != nil {
		c.onRecord(c.recorded)
	}
	return nil
}

// RecordFailure appends a cell's post-mortem to the log.
func (c *Checkpoint) RecordFailure(cf *CellFailure) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.append(ckptRecord{Type: "fail", Sweep: cf.Sweep, Cell: cf.Cell, Fail: cf}); err != nil {
		return err
	}
	c.failures = append(c.failures, *cf)
	return nil
}

// Close flushes and closes the log file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// nextSweep hands out the index for the next sweep.run call of this run.
// Sweeps execute sequentially inside a Runner, in source order, so the
// sequence is identical across the original run and every resume.
func (c *Checkpoint) nextSweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.sweeps
	c.sweeps++
	return n
}

// optionsFingerprint hashes every option that shapes the workload — and
// nothing that doesn't. Trials, scale, and the fault plan/seed change which
// cells exist or what they compute, so they are in; Parallel, Observer, the
// context, and the watchdog settings only change how cells are driven, so
// they are out (a run interrupted at -parallel 8 may resume at -parallel 1,
// or with a longer -cell-timeout, and still reuse every completed cell).
func optionsFingerprint(expID string, o Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s;trials=%d;quick=%t;faultseed=%d;", expID, o.Trials, o.Quick, o.FaultSeed)
	if o.Faults != nil {
		b, err := json.Marshal(o.Faults)
		if err != nil {
			// A plan that cannot marshal cannot be fingerprinted; make the
			// fingerprint unique so resume is refused rather than unsound.
			fmt.Fprintf(h, "unmarshalable=%p", o.Faults)
		} else {
			h.Write(b)
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
