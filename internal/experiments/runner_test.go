package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"emuchick/internal/report"
)

// figureBytes marshals every figure an experiment produces into one JSON
// blob, the same encoding cmd/emubench archives.
func figureBytes(t *testing.T, id string, opts ...Option) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.Run(opts...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, fig := range figs {
		if err := report.FigureJSON(&buf, fig); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestParallelRunnerByteIdentical is the tentpole's regression gate: the
// parallel worker pool must produce byte-identical figures to the
// sequential path, because results are slotted by cell index rather than
// arrival order.
func TestParallelRunnerByteIdentical(t *testing.T) {
	for _, id := range []string{"fig4", "fig6"} {
		seq := figureBytes(t, id, WithScale(QuickScale), WithTrials(2), WithParallel(1))
		par := figureBytes(t, id, WithScale(QuickScale), WithTrials(2), WithParallel(8))
		if !bytes.Equal(seq, par) {
			t.Errorf("%s: parallel run differs from sequential:\nseq: %s\npar: %s", id, seq, par)
		}
	}
}

func TestParallelForSlotsByIndex(t *testing.T) {
	const n = 100
	got := make([]int, n)
	err := parallelFor(Options{Parallel: 7}, n, func(i int) error {
		got[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelForReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := parallelFor(Options{Parallel: 4}, 10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("err = %v, want %v", errA, err)
	}
}

// Worker goroutines must convert panicked errors (the style the kernel
// closures use under metrics.Trials) into returned CellPanicErrors rather
// than crashing the process; the original error stays reachable via
// errors.Is through the wrapper.
func TestParallelForRecoversErrorPanics(t *testing.T) {
	boom := errors.New("boom")
	err := parallelFor(Options{Parallel: 4}, 8, func(i int) error {
		if i == 2 {
			panic(boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	var pe *CellPanicError
	if !errors.As(err, &pe) || pe.Cell != 2 {
		t.Fatalf("err = %#v, want CellPanicError for cell 2", err)
	}
}

// A non-error panic value used to re-raise on the worker goroutine and kill
// the whole process; it must come back as a CellPanicError naming the cell
// and carrying the stack captured at the panic site.
func TestParallelForRecoversNonErrorPanics(t *testing.T) {
	err := parallelFor(Options{Parallel: 4}, 8, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	})
	var pe *CellPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *CellPanicError", err, err)
	}
	if pe.Cell != 2 || pe.Value != any("kaboom") {
		t.Fatalf("got cell %d value %v, want cell 2 value kaboom", pe.Cell, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic record missing stack or value: %v", err)
	}
	// The sequential path must be guarded the same way.
	err = parallelFor(Options{Parallel: 1}, 3, func(i int) error {
		if i == 1 {
			panic("seq-kaboom")
		}
		return nil
	})
	if !errors.As(err, &pe) || pe.Cell != 1 {
		t.Fatalf("sequential guard: err = %v, want CellPanicError for cell 1", err)
	}
}

func TestParallelForRunsEveryCellOnce(t *testing.T) {
	var count atomic.Int64
	if err := parallelFor(Options{Parallel: 3}, 57, func(int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 57 {
		t.Fatalf("ran %d cells, want 57", count.Load())
	}
}

// Regression: a context cancelled before parallelFor started still let the
// pool spawn and each worker evaluate one cell before noticing; with a large
// index space and expensive cells that is real wasted simulation work. A
// pre-cancelled context must run zero cells, and a mid-run cancel must stop
// workers at their next pull rather than draining the index space.
func TestParallelForPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var count atomic.Int64
	err := parallelFor(Options{Parallel: 4, ctx: ctx}, 1000, func(int) error {
		count.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count.Load() != 0 {
		t.Fatalf("pre-cancelled parallelFor ran %d cells, want 0", count.Load())
	}
}

func TestParallelForMidRunCancelStopsPulling(t *testing.T) {
	const workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	err := parallelFor(Options{Parallel: workers, ctx: ctx}, 1000, func(int) error {
		if count.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker may finish the cell it already pulled, but none may pull
	// again after the cancel: at most cancel-point + one cell per worker.
	if n := count.Load(); n > 3+workers {
		t.Fatalf("ran %d cells after a cancel at cell 3 with %d workers", n, workers)
	}
}

func TestSweepAggregatesTrialsInOrder(t *testing.T) {
	g := sweep{series: 2, points: 3, trials: 4}
	stats, err := g.run(Options{Parallel: 5}, func(o Options, si, pi, trial int) (float64, error) {
		return float64(si*1000 + pi*10 + trial), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || len(stats[0]) != 3 {
		t.Fatalf("shape = %dx%d", len(stats), len(stats[0]))
	}
	// Point (1,2): values 1020..1023 -> mean 1021.5, min 1020, max 1023.
	st := stats[1][2]
	if st.N != 4 || st.Mean != 1021.5 || st.Min != 1020 || st.Max != 1023 {
		t.Fatalf("stats[1][2] = %+v", st)
	}
}
