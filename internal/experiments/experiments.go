// Package experiments regenerates every table and figure in the paper's
// evaluation section. Each experiment produces one or more metrics.Figure
// values holding the same curves (series over the same swept parameter)
// the paper plots; cmd/emubench renders them as tables, CSV, or ASCII
// charts, and EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"sort"

	"emuchick/internal/metrics"
	"emuchick/internal/sim"
)

// Options tunes an experiment run.
type Options struct {
	// Trials is the number of trials per data point for seeded
	// workloads; the paper uses ten. Deterministic kernels (STREAM,
	// SpMV, ping-pong) run once since the simulation is exact.
	Trials int
	// Quick shrinks workload sizes and sweep ranges for CI.
	Quick bool
	// Parallel is the worker count used to fan independent
	// (series × sweep-point × trial) simulations across goroutines;
	// 0 or less means runtime.GOMAXPROCS(0). Results are identical to a
	// sequential run regardless of the setting.
	Parallel int
}

// Defaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		if o.Quick {
			o.Trials = 3
		} else {
			o.Trials = 10
		}
	}
	return o
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string // e.g. "fig5", "stream-anchors"
	Title string
	// Paper summarizes what the paper reports for this artifact — the
	// shape the reproduction is expected to match.
	Paper string
	Run   func(Options) ([]*metrics.Figure, error)
}

var registry = map[string]*Experiment{}

// register adds an experiment at package init; duplicate IDs are a
// programming error.
func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// ByID returns the experiment with the given id.
func ByID(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns every experiment in id order.
func All() []*Experiment {
	var out []*Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// single wraps one-shot measurements as 1-trial stats.
func single(v float64) metrics.Stats {
	return metrics.Aggregate([]float64{v})
}

// seriesName builds labels like "threads=64".
func seriesName(key string, v int) string {
	return fmt.Sprintf("%s=%d", key, v)
}

// machineNs converts nanoseconds to sim.Time for config tweaks.
func machineNs(ns int64) sim.Time { return sim.Time(ns) * sim.Nanosecond }
