// Package experiments regenerates every table and figure in the paper's
// evaluation section. Each experiment produces one or more metrics.Figure
// values holding the same curves (series over the same swept parameter)
// the paper plots; cmd/emubench renders them as tables, CSV, or ASCII
// charts, and EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"emuchick/internal/fault"
	"emuchick/internal/kernels"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/storefs"
	"emuchick/internal/trace"
)

// Options is the resolved option set of one experiment run — the value the
// functional options (WithTrials, WithScale, WithParallel, WithObserver,
// WithContext, ...) fold into, and the form Runner functions and
// claims.Claim checks receive. Construct it with ApplyOptions; the struct
// no longer implements Option itself (the legacy `e.Run(Options{...})`
// adapter was removed once every caller had migrated).
type Options struct {
	// Trials is the number of trials per data point for seeded
	// workloads; the paper uses ten. Deterministic kernels (STREAM,
	// SpMV, ping-pong) run once since the simulation is exact.
	Trials int
	// Quick shrinks workload sizes and sweep ranges for CI.
	Quick bool
	// Parallel is the worker count used to fan independent
	// (series × sweep-point × trial) simulations across goroutines;
	// 0 or less means runtime.GOMAXPROCS(0). Results are identical to a
	// sequential run regardless of the setting.
	Parallel int
	// Observer streams every simulated run's machine events and gauge
	// samples (see internal/trace). Attaching an observer forces the
	// experiment sequential so traces from independent simulations do not
	// interleave; figures and counters are unchanged either way.
	Observer trace.Observer
	// SampleInterval overrides the gauge-sampling interval of traced
	// systems: 0 keeps the machine default, negative disables sampling.
	SampleInterval sim.Time
	// Faults injects a deterministic fault plan into every system the
	// experiment builds (nil injects nothing; see internal/fault). A nil or
	// empty plan leaves every figure byte-identical to an uninjected run.
	Faults *fault.Plan
	// FaultSeed overrides the plan's seed when non-zero. It also drives
	// the seeded nodelet choices of the degradation experiments' built-in
	// plans, so a different seed degrades a different nodelet subset.
	FaultSeed uint64
	// Checkpoint, when non-empty, is the path of a write-ahead log: every
	// completed sweep cell is appended as it finishes, and a log left by an
	// interrupted run is resumed — completed cells are replayed instead of
	// re-simulated, with figures byte-identical to an uninterrupted run.
	Checkpoint string
	// ProcEngine selects how simulated threadlets are hosted in kernels
	// with both implementations: continuation state machines (the default)
	// or goroutines (the compatibility engine). The two engines are
	// byte-identical in every figure — this knob only changes host-side
	// performance, so it is excluded from checkpoint fingerprints.
	ProcEngine kernels.ProcEngine
	// CellTimeout arms the per-cell watchdog: a cell's simulation is killed
	// after this much wall-clock time (and, as a deterministic backstop, a
	// scale-derived engine event budget). Killed cells are retried up to
	// Retries times, then recorded as failures and left as NaN holes in the
	// figure, which is marked Incomplete. 0 disables the watchdog.
	CellTimeout time.Duration
	// Retries is how many extra attempts a watchdog-killed cell gets before
	// it is recorded as failed. Only meaningful with CellTimeout set.
	Retries int

	// ctx, when non-nil, cancels in-flight simulations; set via WithContext.
	ctx context.Context
	// ckptFS, when non-nil, is the filesystem the checkpoint WAL is opened
	// on; set via WithCheckpointFS (the job server routes it through its
	// store filesystem so injected storage faults reach WAL appends too).
	// Like Parallel it only changes how the log is written, never which
	// cells run, so it is outside the checkpoint fingerprint.
	ckptFS storefs.FS
	// ckpt is the open write-ahead log for this run, resolved from
	// Checkpoint by Experiment.Run.
	ckpt *Checkpoint
	// maxEvents caps each cell's engine at n dispatched events; set by the
	// watchdog (withWatchdog) as the deterministic half of the deadline.
	maxEvents uint64
	// ckptHook, when non-nil, observes every Record call (test hook).
	ckptHook func(recorded int)
}

// Defaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		if o.Quick {
			o.Trials = 3
		} else {
			o.Trials = 10
		}
	}
	return o
}

// Option configures one Experiment.Run call.
type Option interface {
	apply(*Options)
}

// optionFunc adapts a mutation function to the Option interface.
type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// WithTrials sets the number of trials per data point.
func WithTrials(n int) Option {
	return optionFunc(func(o *Options) { o.Trials = n })
}

// Scale selects a workload scale for WithScale.
type Scale int

const (
	// FullScale runs the paper-sized workloads.
	FullScale Scale = iota
	// QuickScale shrinks workload sizes and sweep ranges for CI.
	QuickScale
)

// WithScale selects full or quick workloads.
func WithScale(s Scale) Option {
	return optionFunc(func(o *Options) { o.Quick = s == QuickScale })
}

// WithParallel sets the worker count for independent simulations
// (0 or less means runtime.GOMAXPROCS(0)).
func WithParallel(n int) Option {
	return optionFunc(func(o *Options) { o.Parallel = n })
}

// WithObserver streams every simulated run's events and samples to obs and
// forces the experiment sequential (traces from concurrent simulations
// would interleave); results are identical at any parallelism.
func WithObserver(obs trace.Observer) Option {
	return optionFunc(func(o *Options) { o.Observer = obs })
}

// WithSampleInterval overrides the gauge-sampling interval of traced
// systems (0 keeps the machine default, negative disables).
func WithSampleInterval(d sim.Time) Option {
	return optionFunc(func(o *Options) { o.SampleInterval = d })
}

// WithContext makes the run cancellable: once ctx is done, in-flight
// simulations abort and Run returns ctx's error.
func WithContext(ctx context.Context) Option {
	return optionFunc(func(o *Options) { o.ctx = ctx })
}

// WithFaultPlan injects the fault plan into every system the experiment
// builds (nil injects nothing).
func WithFaultPlan(p *fault.Plan) Option {
	return optionFunc(func(o *Options) { o.Faults = p })
}

// WithFaultSeed overrides the fault plan's seed (and seeds the degradation
// experiments' built-in plans); 0 keeps the plan's own seed.
func WithFaultSeed(seed uint64) Option {
	return optionFunc(func(o *Options) { o.FaultSeed = seed })
}

// WithProcEngine selects the proc engine for every simulation the
// experiment builds; figures are byte-identical on either engine.
func WithProcEngine(e kernels.ProcEngine) Option {
	return optionFunc(func(o *Options) { o.ProcEngine = e })
}

// WithCheckpoint writes a write-ahead log of completed sweep cells to path
// and resumes from it if the file already holds compatible records; see
// Options.Checkpoint.
func WithCheckpoint(path string) Option {
	return optionFunc(func(o *Options) { o.Checkpoint = path })
}

// WithCheckpointFS routes the checkpoint write-ahead log through fsys
// instead of the real filesystem; nil keeps the default. Results are
// unchanged by the choice of filesystem.
func WithCheckpointFS(fsys storefs.FS) Option {
	return optionFunc(func(o *Options) { o.ckptFS = fsys })
}

// WithCellTimeout arms the per-cell watchdog; see Options.CellTimeout.
func WithCellTimeout(d time.Duration) Option {
	return optionFunc(func(o *Options) { o.CellTimeout = d })
}

// WithRetries sets how many extra attempts a watchdog-killed cell gets; see
// Options.Retries.
func WithRetries(n int) Option {
	return optionFunc(func(o *Options) { o.Retries = n })
}

// WithCheckpointHook installs a callback observing every checkpoint Record
// call with the running count of freshly recorded cells. The job server uses
// it as its per-job progress signal (and tests as a deterministic mid-sweep
// trigger); it has no effect on results and only fires on checkpointed runs.
func WithCheckpointHook(fn func(recorded int)) Option {
	return optionFunc(func(o *Options) { o.ckptHook = fn })
}

// ApplyOptions folds opts in order into an Options value (later options
// win), for facades that accept Option lists.
func ApplyOptions(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt.apply(&o)
		}
	}
	return o
}

// KernelOptions converts run-level options into the per-kernel RunOptions an
// experiment threads into each Emu simulation it builds. It returns nil —
// allocating nothing — when no option needs forwarding, which is every
// untraced, uncancelled run.
func (o Options) KernelOptions() []kernels.RunOption {
	if o.Observer == nil && o.ctx == nil && o.SampleInterval == 0 && o.Faults == nil && o.maxEvents == 0 &&
		o.ProcEngine == kernels.ContinuationProcs {
		return nil
	}
	ks := make([]kernels.RunOption, 0, 6)
	if o.ProcEngine != kernels.ContinuationProcs {
		ks = append(ks, kernels.WithProcEngine(o.ProcEngine))
	}
	if o.Observer != nil {
		ks = append(ks, kernels.WithObserver(o.Observer))
	}
	if o.SampleInterval != 0 {
		ks = append(ks, kernels.WithSampleInterval(o.SampleInterval))
	}
	if o.Faults != nil {
		ks = append(ks, kernels.WithFaultPlan(o.faultPlan()))
	}
	if o.ctx != nil {
		ks = append(ks, kernels.WithContext(o.ctx))
	}
	if o.maxEvents > 0 {
		ks = append(ks, kernels.WithMaxEvents(o.maxEvents))
	}
	return ks
}

// faultPlan is the run's fault plan with any FaultSeed override applied.
func (o Options) faultPlan() *fault.Plan {
	if o.Faults == nil || o.FaultSeed == 0 || o.Faults.Seed == o.FaultSeed {
		return o.Faults
	}
	p := *o.Faults
	p.Seed = o.FaultSeed
	return &p
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string // e.g. "fig5", "stream-anchors"
	Title string
	// Paper summarizes what the paper reports for this artifact — the
	// shape the reproduction is expected to match.
	Paper string
	// Runner produces the experiment's figures from resolved options.
	Runner func(Options) ([]*metrics.Figure, error)
}

// Run executes the experiment with the given functional options. With a
// checkpoint path set, the write-ahead log is opened (resuming any
// compatible records already in it) before the runner starts and closed
// when it returns — interrupting the run at any point leaves a valid log.
func (e *Experiment) Run(opts ...Option) ([]*metrics.Figure, error) {
	return e.RunResolved(ApplyOptions(opts...))
}

// RunResolved executes the experiment from an already-resolved option set —
// the entry point for code that is handed an Options value (claims checks
// receive one) rather than composing options itself.
func (e *Experiment) RunResolved(o Options) ([]*metrics.Figure, error) {
	if o.Checkpoint == "" {
		return e.runner(o)
	}
	// The fingerprint covers resolved options (runners fill defaults the
	// same way), so `-quick` and `-quick -trials 3` fingerprint alike.
	ck, err := OpenCheckpointIn(o.ckptFS, CheckpointPath(o.Checkpoint, e.ID), e.ID, optionsFingerprint(e.ID, o.withDefaults()))
	if err != nil {
		return nil, err
	}
	defer ck.Close()
	ck.onRecord = o.ckptHook
	o.ckpt = ck
	return e.runner(o)
}

// runner wraps the raw Runner so every entry path (checkpointed or not)
// marks figures assembled around failed cells as Incomplete.
func (e *Experiment) runner(o Options) ([]*metrics.Figure, error) {
	figs, err := e.Runner(o)
	for _, fig := range figs {
		fig.MarkIncomplete()
	}
	return figs, err
}

var registry = map[string]*Experiment{}

// register adds an experiment at package init; duplicate IDs are a
// programming error.
func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// ByID returns the experiment with the given id.
func ByID(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns every experiment in id order.
func All() []*Experiment {
	var out []*Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// single wraps one-shot measurements as 1-trial stats.
func single(v float64) metrics.Stats {
	return metrics.Aggregate([]float64{v})
}

// seriesName builds labels like "threads=64".
func seriesName(key string, v int) string {
	return fmt.Sprintf("%s=%d", key, v)
}

// machineNs converts nanoseconds to sim.Time for config tweaks.
func machineNs(ns int64) sim.Time { return sim.Time(ns) * sim.Nanosecond }
