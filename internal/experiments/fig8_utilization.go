package experiments

import (
	"emuchick/internal/cilk"
	"emuchick/internal/cpukernels"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

func init() {
	register(&Experiment{
		ID:    "fig8",
		Title: "Pointer-chasing bandwidth utilization, Emu vs Sandy Bridge",
		Paper: "Normalized to each system's measured STREAM peak, the Emu " +
			"sustains ~80% across block sizes (50% in the worst cases), " +
			"while the Xeon stays below ~25% except at multi-KiB blocks.",
		Run: runFig8,
	})
}

// measuredStreamPeakEmu runs the best STREAM configuration and returns its
// bandwidth in B/s — the normalization denominator the paper uses ("the
// best result on the STREAM benchmark").
func measuredStreamPeakEmu(quick bool) (float64, error) {
	elems := 2048
	if quick {
		elems = 1024
	}
	res, err := kernels.StreamAdd(machine.HardwareChick(), kernels.StreamConfig{
		ElemsPerNodelet: elems, Nodelets: 8, Threads: 512, Strategy: cilk.RecursiveRemoteSpawn,
	})
	if err != nil {
		return 0, err
	}
	return res.BytesPerSec(), nil
}

func measuredStreamPeakXeon(quick bool) (float64, error) {
	elems := 1 << 18
	if quick {
		elems = 1 << 16
	}
	res, err := cpukernels.StreamAdd(xeon.SandyBridgeXeon(), cpukernels.StreamConfig{
		Elements: elems, Threads: 32,
	})
	if err != nil {
		return 0, err
	}
	return res.BytesPerSec(), nil
}

func runFig8(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	emuPeak, err := measuredStreamPeakEmu(o.Quick)
	if err != nil {
		return nil, err
	}
	xeonPeak, err := measuredStreamPeakXeon(o.Quick)
	if err != nil {
		return nil, err
	}

	// As in Fig. 7, the Xeon list must exceed the L3 for the paper's
	// utilization contrast to appear; trials are capped for the same
	// cost reason.
	emuElems, xeonElems := 16384, 1<<21
	trials := o.Trials
	if trials > 2 {
		trials = 2
	}
	if o.Quick {
		emuElems, xeonElems = 8192, 1<<16
	}
	fig := &metrics.Figure{
		ID:     "fig8",
		Title:  "Bandwidth utilization of pointer chasing (fraction of measured STREAM peak)",
		XLabel: "block size (elements)",
		YLabel: "fraction of peak",
	}
	emu := &metrics.Series{Name: "emu_chick_512t"}
	xeonS := &metrics.Series{Name: "sandy_bridge_32t"}
	for _, bs := range chaseBlocks(o.Quick) {
		emuStats := metrics.Trials(trials, func(trial int) float64 {
			res, err := kernels.PointerChase(machine.HardwareChick(), kernels.ChaseConfig{
				Elements: emuElems, BlockSize: bs, Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*31 + 7, Threads: 512, Nodelets: 8,
			})
			if err != nil {
				panic(err)
			}
			return res.BytesPerSec() / emuPeak
		})
		emu.Add(float64(bs), emuStats)
		xeonStats := metrics.Trials(trials, func(trial int) float64 {
			res, err := cpukernels.PointerChase(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
				Elements: xeonElems, BlockSize: bs, Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*37 + 5, Threads: 32,
			})
			if err != nil {
				panic(err)
			}
			return res.BytesPerSec() / xeonPeak
		})
		xeonS.Add(float64(bs), xeonStats)
	}
	fig.Series = []*metrics.Series{emu, xeonS}
	return []*metrics.Figure{fig}, nil
}
