package experiments

import (
	"emuchick/internal/cilk"
	"emuchick/internal/cpukernels"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

func init() {
	register(&Experiment{
		ID:    "fig8",
		Title: "Pointer-chasing bandwidth utilization, Emu vs Sandy Bridge",
		Paper: "Normalized to each system's measured STREAM peak, the Emu " +
			"sustains ~80% across block sizes (50% in the worst cases), " +
			"while the Xeon stays below ~25% except at multi-KiB blocks.",
		Runner: runFig8,
	})
}

// measuredStreamPeakEmu runs the best STREAM configuration and returns its
// bandwidth in B/s — the normalization denominator the paper uses ("the
// best result on the STREAM benchmark").
func measuredStreamPeakEmu(o Options) (float64, error) {
	elems := 2048
	if o.Quick {
		elems = 1024
	}
	res, err := kernels.StreamAdd(machine.HardwareChick(), kernels.StreamConfig{
		ElemsPerNodelet: elems, Nodelets: 8, Threads: 512, Strategy: cilk.RecursiveRemoteSpawn,
	}, o.KernelOptions()...)
	if err != nil {
		return 0, err
	}
	return res.BytesPerSec(), nil
}

func measuredStreamPeakXeon(quick bool) (float64, error) {
	elems := 1 << 18
	if quick {
		elems = 1 << 16
	}
	res, err := cpukernels.StreamAdd(xeon.SandyBridgeXeon(), cpukernels.StreamConfig{
		Elements: elems, Threads: 32,
	})
	if err != nil {
		return 0, err
	}
	return res.BytesPerSec(), nil
}

func runFig8(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	// The two normalization peaks are independent simulations of their own.
	var emuPeak, xeonPeak float64
	err := parallelFor(o, 2, func(i int) error {
		var err error
		if i == 0 {
			emuPeak, err = measuredStreamPeakEmu(o)
		} else {
			xeonPeak, err = measuredStreamPeakXeon(o.Quick)
		}
		return err
	})
	if err != nil {
		return nil, err
	}

	// As in Fig. 7, the Xeon list must exceed the L3 for the paper's
	// utilization contrast to appear; trials are capped for the same
	// cost reason.
	emuElems, xeonElems := 16384, 1<<21
	trials := min(o.Trials, 2)
	if o.Quick {
		emuElems, xeonElems = 8192, 1<<16
	}
	blocks := chaseBlocks(o.Quick)
	stats, err := sweep{series: 2, points: len(blocks), trials: trials}.run(o,
		func(o Options, si, pi, trial int) (float64, error) {
			if si == 0 {
				res, err := kernels.PointerChase(machine.HardwareChick(), kernels.ChaseConfig{
					Elements: emuElems, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
					Seed: uint64(trial)*31 + 7, Threads: 512, Nodelets: 8,
				}, o.KernelOptions()...)
				if err != nil {
					return 0, err
				}
				return res.BytesPerSec() / emuPeak, nil
			}
			res, err := cpukernels.PointerChase(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
				Elements: xeonElems, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*37 + 5, Threads: 32,
			})
			if err != nil {
				return 0, err
			}
			return res.BytesPerSec() / xeonPeak, nil
		})
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     "fig8",
		Title:  "Bandwidth utilization of pointer chasing (fraction of measured STREAM peak)",
		XLabel: "block size (elements)",
		YLabel: "fraction of peak",
		Series: assemble([]string{"emu_chick_512t", "sandy_bridge_32t"}, xsOf(blocks), stats),
	}
	return []*metrics.Figure{fig}, nil
}
