package experiments

import "testing"

func TestAblationRegistryComplete(t *testing.T) {
	for _, id := range []string{
		"ablation-migration-rate",
		"ablation-spawn-locality",
		"ablation-grain",
		"ablation-replication",
		"ablation-migration-latency",
	} {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing %s: %v", id, err)
		}
	}
}

func TestAblationMigrationRateMonotone(t *testing.T) {
	fig := runOne(t, "ablation-migration-rate")["ablation-migration-rate"]
	s := fig.Series[0]
	// A faster engine must not slow the migration-bound kernel.
	if at(t, s, 16) <= at(t, s, 9) {
		t.Fatalf("faster engine slower: 9M->%v 16M->%v", at(t, s, 9), at(t, s, 16))
	}
}

func TestAblationSpawnLocality(t *testing.T) {
	fig := runOne(t, "ablation-spawn-locality")["ablation-spawn-locality"]
	s := fig.Series[0]
	// x: 0=serial_spawn ... 3=recursive_remote_spawn.
	if at(t, s, 2) <= at(t, s, 0) {
		t.Fatalf("remote spawn (%v) not better than serial (%v)", at(t, s, 2), at(t, s, 0))
	}
	if len(fig.XTicks) != 4 {
		t.Fatal("strategy tick labels missing")
	}
}

func TestAblationGrainOppositeOptima(t *testing.T) {
	fig := runOne(t, "ablation-grain")["ablation-grain"]
	if len(fig.Series) != 2 {
		t.Fatal("expected emu and cpu series")
	}
	emu, cpu := fig.Series[0], fig.Series[1]
	// Quick grains are {16, 1024}: small wins on Emu, large on CPU.
	if at(t, emu, 16) <= at(t, emu, 1024) {
		t.Fatalf("emu: grain 16 (%v) should beat 1024 (%v)", at(t, emu, 16), at(t, emu, 1024))
	}
	if at(t, cpu, 1024) <= at(t, cpu, 16) {
		t.Fatalf("cpu: grain 1024 (%v) should beat 16 (%v)", at(t, cpu, 1024), at(t, cpu, 16))
	}
}

func TestAblationReplicationWins(t *testing.T) {
	fig := runOne(t, "ablation-replication")["ablation-replication"]
	rep := fig.FindSeries("x_replicated")
	str := fig.FindSeries("x_striped")
	if rep == nil || str == nil {
		t.Fatal("missing series")
	}
	for _, p := range rep.Points {
		if st, err := str.At(p.X); err != nil || st.Mean >= p.Stats.Mean {
			t.Fatalf("at n=%v striped (%v) not worse than replicated (%v)", p.X, st.Mean, p.Stats.Mean)
		}
	}
}

func TestExtensionCSXDirections(t *testing.T) {
	fig := runOne(t, "extension-csx")["extension-csx"]
	hwCSR := fig.FindSeries("hw_csr")
	hwCSX := fig.FindSeries("hw_csx")
	fullCSR := fig.FindSeries("fullspeed_csr")
	fullCSX := fig.FindSeries("fullspeed_csx")
	if hwCSR == nil || hwCSX == nil || fullCSR == nil || fullCSX == nil {
		t.Fatal("missing series")
	}
	x := hwCSR.Points[len(hwCSR.Points)-1].X
	if at(t, hwCSX, x) > at(t, hwCSR, x)*1.05 {
		t.Fatal("csx should not clearly beat csr on the core-bound prototype")
	}
	if at(t, fullCSX, x) <= at(t, fullCSR, x) {
		t.Fatalf("csx should win at full speed: csr %v, csx %v",
			at(t, fullCSR, x), at(t, fullCSX, x))
	}
}

func TestScalingNodesRoughlyLinear(t *testing.T) {
	fig := runOne(t, "scaling-nodes")["scaling-nodes"]
	m := fig.FindSeries("measured")
	if m == nil {
		t.Fatal("missing measured series")
	}
	one, eight := at(t, m, 1), at(t, m, 8)
	if eight < 4*one {
		t.Fatalf("node scaling too weak: 1->%v 8->%v GB/s", one, eight)
	}
	if eight > 8.5*one {
		t.Fatalf("node scaling super-linear: 1->%v 8->%v GB/s", one, eight)
	}
}

func TestAblationMigrationLatencyHidden(t *testing.T) {
	fig := runOne(t, "ablation-migration-latency")["ablation-migration-latency"]
	s := fig.Series[0]
	// With 512 threads the engine rate dominates: quadrupling the
	// latency must cost far less than 4x.
	lo, hi := at(t, s, 800), at(t, s, 3000)
	if hi < lo/2 {
		t.Fatalf("latency not hidden: 800ns->%v 3000ns->%v", lo, hi)
	}
}
