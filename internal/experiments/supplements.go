package experiments

import (
	"emuchick/internal/cpukernels"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

// Supplementary experiments: not figures of the paper, but direct
// executions of things the paper describes in prose — the three shuffle
// modes of Fig. 2 as a sensitivity study, and the novel comparison metric
// section V-B proposes.

func init() {
	register(&Experiment{
		ID:    "supplement-shuffle-modes",
		Title: "Pointer-chasing sensitivity to the three shuffle modes, Emu vs Xeon",
		Paper: "Section III-E defines intra_block, block, and full shuffles; " +
			"the Emu's cache-less memory should be insensitive to which one " +
			"is applied, while the Xeon's prefetcher and row buffers care.",
		Runner: runSupplementShuffleModes,
	})
	register(&Experiment{
		ID:    "supplement-vb-metric",
		Title: "Section V-B's proposed cross-architecture metric on pointer chasing",
		Paper: "Section V-B: compare 'network traffic (threads migrated " +
			"measured using context size and time, or B/s)' on the Emu with " +
			"the cache-line overfetch ('cache misses avoided') on the CPU.",
		Runner: runSupplementVBMetric,
	})
}

func runSupplementShuffleModes(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	emuElems, xeonElems := 16384, 1<<18
	blocks := []int{4, 32, 256}
	trials := min(o.Trials, 3)
	if o.Quick {
		emuElems, xeonElems = 4096, 1<<14
		blocks = []int{4, 64}
		trials = 2
	}
	modes := []workload.ShuffleMode{
		workload.IntraBlockShuffle, workload.BlockShuffle, workload.FullBlockShuffle,
	}
	names := make([]string, len(modes))
	for i, mode := range modes {
		names[i] = mode.String()
	}

	emuStats, err := sweep{series: len(modes), points: len(blocks), trials: trials}.run(o,
		func(o Options, si, pi, trial int) (float64, error) {
			res, err := kernels.PointerChase(machine.HardwareChick(), kernels.ChaseConfig{
				Elements: emuElems, BlockSize: blocks[pi], Mode: modes[si],
				Seed: uint64(trial)*101 + 13, Threads: 256, Nodelets: 8,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	emu := &metrics.Figure{
		ID:     "supplement-shuffle-emu",
		Title:  "Pointer chasing by shuffle mode (Emu Chick, 256 threads)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
		Series: assemble(names, xsOf(blocks), emuStats),
	}

	cpuStats, err := sweep{series: len(modes), points: len(blocks), trials: trials}.run(o,
		func(o Options, si, pi, trial int) (float64, error) {
			res, err := cpukernels.PointerChase(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
				Elements: xeonElems, BlockSize: blocks[pi], Mode: modes[si],
				Seed: uint64(trial)*103 + 7, Threads: 32,
			})
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	cpu := &metrics.Figure{
		ID:     "supplement-shuffle-xeon",
		Title:  "Pointer chasing by shuffle mode (Sandy Bridge, 32 threads)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
		Series: assemble(names, xsOf(blocks), cpuStats),
	}
	return []*metrics.Figure{emu, cpu}, nil
}

func runSupplementVBMetric(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	// The Xeon list must exceed the L3 or there is no overfetch to see.
	emuElems, xeonElems := 16384, 1<<21
	blocks := []int{1, 4, 16, 64, 256, 1024}
	if o.Quick {
		emuElems, xeonElems = 4096, 1<<14
		blocks = []int{1, 16, 256}
	}
	fig := &metrics.Figure{
		ID: "supplement-vb-metric",
		Title: "Section V-B metric: data moved beyond the useful bytes " +
			"(Emu: migrated thread contexts; Xeon: cache-line overfetch + writebacks)",
		XLabel: "block size (elements)",
		YLabel: "overhead bytes per useful byte",
	}
	stats, err := sweep{series: 2, points: len(blocks)}.run(o,
		func(o Options, si, pi, _ int) (float64, error) {
			if si == 0 {
				res, st, err := kernels.PointerChaseWithStats(machine.HardwareChick(), kernels.ChaseConfig{
					Elements: emuElems, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
					Seed: 17, Threads: 256, Nodelets: 8,
				}, o.KernelOptions()...)
				if err != nil {
					return 0, err
				}
				return float64(st.MigrationBytes) / float64(res.Bytes), nil
			}
			cres, cst, err := cpukernels.PointerChaseWithStats(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
				Elements: xeonElems, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
				Seed: 19, Threads: 32,
			})
			if err != nil {
				return 0, err
			}
			over := float64(cst.DRAMLineBytes+cst.WritebackBytes-cres.Bytes) / float64(cres.Bytes)
			if over < 0 {
				over = 0 // cached runs can fetch less than the useful count
			}
			return over, nil
		})
	if err != nil {
		return nil, err
	}
	fig.Series = assemble([]string{"emu_migration_traffic", "xeon_overfetch"}, xsOf(blocks), stats)
	return []*metrics.Figure{fig}, nil
}
