package experiments

import (
	"emuchick/internal/cpukernels"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

// Supplementary experiments: not figures of the paper, but direct
// executions of things the paper describes in prose — the three shuffle
// modes of Fig. 2 as a sensitivity study, and the novel comparison metric
// section V-B proposes.

func init() {
	register(&Experiment{
		ID:    "supplement-shuffle-modes",
		Title: "Pointer-chasing sensitivity to the three shuffle modes, Emu vs Xeon",
		Paper: "Section III-E defines intra_block, block, and full shuffles; " +
			"the Emu's cache-less memory should be insensitive to which one " +
			"is applied, while the Xeon's prefetcher and row buffers care.",
		Run: runSupplementShuffleModes,
	})
	register(&Experiment{
		ID:    "supplement-vb-metric",
		Title: "Section V-B's proposed cross-architecture metric on pointer chasing",
		Paper: "Section V-B: compare 'network traffic (threads migrated " +
			"measured using context size and time, or B/s)' on the Emu with " +
			"the cache-line overfetch ('cache misses avoided') on the CPU.",
		Run: runSupplementVBMetric,
	})
}

func runSupplementShuffleModes(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	emuElems, xeonElems := 16384, 1<<18
	blocks := []int{4, 32, 256}
	trials := min(o.Trials, 3)
	if o.Quick {
		emuElems, xeonElems = 4096, 1<<14
		blocks = []int{4, 64}
		trials = 2
	}
	modes := []workload.ShuffleMode{
		workload.IntraBlockShuffle, workload.BlockShuffle, workload.FullBlockShuffle,
	}

	emu := &metrics.Figure{
		ID:     "supplement-shuffle-emu",
		Title:  "Pointer chasing by shuffle mode (Emu Chick, 256 threads)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
	}
	for _, mode := range modes {
		mode := mode
		s := &metrics.Series{Name: mode.String()}
		for _, bs := range blocks {
			bs := bs
			stats := metrics.Trials(trials, func(trial int) float64 {
				res, err := kernels.PointerChase(machine.HardwareChick(), kernels.ChaseConfig{
					Elements: emuElems, BlockSize: bs, Mode: mode,
					Seed: uint64(trial)*101 + 13, Threads: 256, Nodelets: 8,
				})
				if err != nil {
					panic(err)
				}
				return res.MBps()
			})
			s.Add(float64(bs), stats)
		}
		emu.Series = append(emu.Series, s)
	}

	cpu := &metrics.Figure{
		ID:     "supplement-shuffle-xeon",
		Title:  "Pointer chasing by shuffle mode (Sandy Bridge, 32 threads)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
	}
	for _, mode := range modes {
		mode := mode
		s := &metrics.Series{Name: mode.String()}
		for _, bs := range blocks {
			bs := bs
			stats := metrics.Trials(trials, func(trial int) float64 {
				res, err := cpukernels.PointerChase(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
					Elements: xeonElems, BlockSize: bs, Mode: mode,
					Seed: uint64(trial)*103 + 7, Threads: 32,
				})
				if err != nil {
					panic(err)
				}
				return res.MBps()
			})
			s.Add(float64(bs), stats)
		}
		cpu.Series = append(cpu.Series, s)
	}
	return []*metrics.Figure{emu, cpu}, nil
}

func runSupplementVBMetric(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	// The Xeon list must exceed the L3 or there is no overfetch to see.
	emuElems, xeonElems := 16384, 1<<21
	blocks := []int{1, 4, 16, 64, 256, 1024}
	if o.Quick {
		emuElems, xeonElems = 4096, 1<<14
		blocks = []int{1, 16, 256}
	}
	fig := &metrics.Figure{
		ID: "supplement-vb-metric",
		Title: "Section V-B metric: data moved beyond the useful bytes " +
			"(Emu: migrated thread contexts; Xeon: cache-line overfetch + writebacks)",
		XLabel: "block size (elements)",
		YLabel: "overhead bytes per useful byte",
	}
	emu := &metrics.Series{Name: "emu_migration_traffic"}
	cpu := &metrics.Series{Name: "xeon_overfetch"}
	for _, bs := range blocks {
		res, st, err := kernels.PointerChaseWithStats(machine.HardwareChick(), kernels.ChaseConfig{
			Elements: emuElems, BlockSize: bs, Mode: workload.FullBlockShuffle,
			Seed: 17, Threads: 256, Nodelets: 8,
		})
		if err != nil {
			return nil, err
		}
		emu.Add(float64(bs), single(float64(st.MigrationBytes)/float64(res.Bytes)))

		cres, cst, err := cpukernels.PointerChaseWithStats(xeon.SandyBridgeXeon(), cpukernels.ChaseConfig{
			Elements: xeonElems, BlockSize: bs, Mode: workload.FullBlockShuffle,
			Seed: 19, Threads: 32,
		})
		if err != nil {
			return nil, err
		}
		over := float64(cst.DRAMLineBytes+cst.WritebackBytes-cres.Bytes) / float64(cres.Bytes)
		if over < 0 {
			over = 0 // cached runs can fetch less than the useful count
		}
		cpu.Add(float64(bs), single(over))
	}
	fig.Series = []*metrics.Series{emu, cpu}
	return []*metrics.Figure{fig}, nil
}
