package experiments

import (
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
)

func init() {
	register(&Experiment{
		ID:    "extension-csx",
		Title: "SpMV with delta-compressed indices (CSX) vs CSR, prototype vs full speed",
		Paper: "Section III-E future work: 'new state-of-the-art SpMV formats " +
			"and algorithms such as SparseX, which uses the Compressed Sparse " +
			"eXtended (CSX) format'. Compression trades channel words for " +
			"decode cycles, so it pays only where the channel is the " +
			"bottleneck.",
		Runner: runExtensionCSX,
	})
}

func runExtensionCSX(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	sizes := []int{16, 32, 48, 64, 100}
	if o.Quick {
		sizes = []int{16, 32}
	}
	fig := &metrics.Figure{
		ID:     "extension-csx",
		Title:  "SpMV 2D: CSR vs delta-compressed CSX indices",
		XLabel: "Laplacian size n",
		YLabel: "MB/s",
	}
	configs := []struct {
		label string
		cfg   machine.Config
	}{
		{"hw", machine.HardwareChick()},
		{"fullspeed", machine.FullSpeed(1)},
	}
	// Series are ordered (config, format): hw_csr, hw_csx, fullspeed_csr,
	// fullspeed_csx — format alternates fastest.
	names := make([]string, 0, len(configs)*2)
	for _, mc := range configs {
		names = append(names, mc.label+"_csr", mc.label+"_csx")
	}
	stats, err := sweep{series: len(names), points: len(sizes)}.run(o,
		func(o Options, si, pi, _ int) (float64, error) {
			mc := configs[si/2]
			if si%2 == 0 {
				res, err := kernels.SpMV(mc.cfg, kernels.SpMVConfig{
					GridN: sizes[pi], Layout: kernels.SpMV2D, GrainNNZ: 16,
				}, o.KernelOptions()...)
				if err != nil {
					return 0, err
				}
				return res.MBps(), nil
			}
			res, err := kernels.SpMVCSX(mc.cfg, kernels.SpMVCSXConfig{GridN: sizes[pi], GrainNNZ: 16}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	fig.Series = assemble(names, xsOf(sizes), stats)
	return []*metrics.Figure{fig}, nil
}
