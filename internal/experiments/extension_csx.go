package experiments

import (
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
)

func init() {
	register(&Experiment{
		ID:    "extension-csx",
		Title: "SpMV with delta-compressed indices (CSX) vs CSR, prototype vs full speed",
		Paper: "Section III-E future work: 'new state-of-the-art SpMV formats " +
			"and algorithms such as SparseX, which uses the Compressed Sparse " +
			"eXtended (CSX) format'. Compression trades channel words for " +
			"decode cycles, so it pays only where the channel is the " +
			"bottleneck.",
		Run: runExtensionCSX,
	})
}

func runExtensionCSX(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	sizes := []int{16, 32, 48, 64, 100}
	if o.Quick {
		sizes = []int{16, 32}
	}
	fig := &metrics.Figure{
		ID:     "extension-csx",
		Title:  "SpMV 2D: CSR vs delta-compressed CSX indices",
		XLabel: "Laplacian size n",
		YLabel: "MB/s",
	}
	configs := []struct {
		label string
		cfg   machine.Config
	}{
		{"hw", machine.HardwareChick()},
		{"fullspeed", machine.FullSpeed(1)},
	}
	for _, mc := range configs {
		csr := &metrics.Series{Name: mc.label + "_csr"}
		csx := &metrics.Series{Name: mc.label + "_csx"}
		for _, n := range sizes {
			r1, err := kernels.SpMV(mc.cfg, kernels.SpMVConfig{
				GridN: n, Layout: kernels.SpMV2D, GrainNNZ: 16,
			})
			if err != nil {
				return nil, err
			}
			csr.Add(float64(n), single(r1.MBps()))
			r2, err := kernels.SpMVCSX(mc.cfg, kernels.SpMVCSXConfig{GridN: n, GrainNNZ: 16})
			if err != nil {
				return nil, err
			}
			csx.Add(float64(n), single(r2.MBps()))
		}
		fig.Series = append(fig.Series, csr, csx)
	}
	return []*metrics.Figure{fig}, nil
}
