package experiments

import (
	"emuchick/internal/cilk"
	"emuchick/internal/cpukernels"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/xeon"
)

func init() {
	register(&Experiment{
		ID:    "stream-anchors",
		Title: "STREAM scalar anchors from section IV-A",
		Paper: "Sandy Bridge reaches close to its nominal 51.2 GB/s; the Emu " +
			"Chick peaks at ~1.2 GB/s on one node; an initial (unstable) " +
			"8-node test reached 6.5 GB/s.",
		Runner: runStreamAnchors,
	})
}

func runStreamAnchors(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	emuElems, xeonElems := 1024, 1<<18
	if o.Quick {
		emuElems, xeonElems = 256, 1<<16
	}
	fig := &metrics.Figure{
		ID:     "stream-anchors",
		Title:  "STREAM scalar anchors (GB/s)",
		XLabel: "anchor",
		YLabel: "GB/s",
		XTicks: map[float64]string{
			0: "sandy bridge STREAM",
			1: "emu chick 1 node",
			2: "emu chick 8 nodes",
		},
	}
	// The three anchors are independent simulations fanned across the pool.
	anchors := []func() (float64, error){
		func() (float64, error) {
			r, err := cpukernels.StreamAdd(xeon.SandyBridgeXeon(), cpukernels.StreamConfig{
				Elements: xeonElems, Threads: 32,
			})
			return r.GBps(), err
		},
		func() (float64, error) {
			r, err := kernels.StreamAdd(machine.HardwareChick(), kernels.StreamConfig{
				ElemsPerNodelet: emuElems, Nodelets: 8, Threads: 512, Strategy: cilk.RecursiveRemoteSpawn,
			}, o.KernelOptions()...)
			return r.GBps(), err
		},
		func() (float64, error) {
			r, err := kernels.StreamAdd(machine.HardwareChickNodes(8), kernels.StreamConfig{
				ElemsPerNodelet: emuElems, Nodelets: 64, Threads: 4096, Strategy: cilk.RecursiveRemoteSpawn,
			}, o.KernelOptions()...)
			return r.GBps(), err
		},
	}
	vals := make([]float64, len(anchors))
	err := parallelFor(o, len(anchors), func(i int) error {
		v, err := anchors[i]()
		if err != nil {
			return err
		}
		vals[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	measured := &metrics.Series{Name: "measured"}
	paperS := &metrics.Series{Name: "paper"}
	for i, v := range vals {
		measured.Add(float64(i), single(v))
	}
	paperS.Add(0, single(51.2)) // nominal; the paper measures "close to" it
	paperS.Add(1, single(1.2))
	paperS.Add(2, single(6.5)) // unstable initial test
	fig.Series = []*metrics.Series{measured, paperS}
	return []*metrics.Figure{fig}, nil
}
