package experiments

import (
	"testing"

	"emuchick/internal/metrics"
)

var quick = Options{Quick: true, Trials: 2}

// runOne runs an experiment by id and returns its figures keyed by figure id.
func runOne(t *testing.T, id string) map[string]*metrics.Figure {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.RunResolved(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) == 0 {
		t.Fatalf("%s produced no figures", id)
	}
	out := map[string]*metrics.Figure{}
	for _, f := range figs {
		if f.ID == "" || len(f.Series) == 0 {
			t.Fatalf("%s produced an empty figure %+v", id, f)
		}
		out[f.ID] = f
	}
	return out
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{
		"ablation-grain", "ablation-migration-latency", "ablation-migration-rate",
		"ablation-replication", "ablation-spawn-locality",
		"degradation-chase", "degradation-stream", "extension-csx",
		"fig10", "fig11", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9a", "fig9b", "migration-anchors", "scaling-nodes", "stream-anchors",
		"supplement-shuffle-modes", "supplement-vb-metric",
	}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if len(All()) != len(want) {
		t.Fatal("All() incomplete")
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	for _, e := range All() {
		if e.Title == "" || e.Paper == "" || e.Runner == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func at(t *testing.T, s *metrics.Series, x float64) float64 {
	t.Helper()
	st, err := s.At(x)
	if err != nil {
		t.Fatal(err)
	}
	return st.Mean
}

func TestFig4ShapePlateauAndSpawnParity(t *testing.T) {
	fig := runOne(t, "fig4")["fig4"]
	serial := fig.FindSeries("serial_spawn")
	recursive := fig.FindSeries("recursive_spawn")
	if serial == nil || recursive == nil {
		t.Fatal("missing series")
	}
	// Scaling into the plateau: 16 threads well above 1 thread; 64 not
	// much above 16 (the plateau).
	if at(t, serial, 16) < 4*at(t, serial, 1) {
		t.Fatalf("no thread scaling: 1->%v 16->%v", at(t, serial, 1), at(t, serial, 16))
	}
	if at(t, serial, 64) > 2.6*at(t, serial, 16) {
		t.Fatalf("no plateau: 16->%v 64->%v", at(t, serial, 16), at(t, serial, 64))
	}
	// "There is not much difference between the two approaches."
	for _, x := range []float64{4, 64} {
		r := at(t, serial, x) / at(t, recursive, x)
		if r < 0.6 || r > 1.7 {
			t.Fatalf("spawn strategies diverge at %v threads: ratio %.2f", x, r)
		}
	}
}

func TestFig5RemoteSpawnEssential(t *testing.T) {
	fig := runOne(t, "fig5")["fig5"]
	remotePeak := 0.0
	localPeak := 0.0
	for _, s := range fig.Series {
		m := s.MaxMean()
		switch s.Name {
		case "serial_remote_spawn", "recursive_remote_spawn":
			if m > remotePeak {
				remotePeak = m
			}
		default:
			if m > localPeak {
				localPeak = m
			}
		}
	}
	if remotePeak <= localPeak {
		t.Fatalf("remote spawns (%v MB/s) must beat local spawns (%v MB/s)", remotePeak, localPeak)
	}
}

func TestFig6FlatWithBlockOneDip(t *testing.T) {
	fig := runOne(t, "fig6")["fig6"]
	s := fig.FindSeries("threads=256")
	if s == nil {
		t.Fatal("missing threads=256 series")
	}
	b1, b8, b512 := at(t, s, 1), at(t, s, 8), at(t, s, 512)
	if b1 >= b8/2 {
		t.Fatalf("block-1 dip missing: %v vs %v", b1, b8)
	}
	if b8 > 2*b512 || b512 > 2*b8 {
		t.Fatalf("not flat: block8=%v block512=%v", b8, b512)
	}
}

func TestFig7PageSweetSpot(t *testing.T) {
	fig := runOne(t, "fig7")["fig7"]
	s := fig.FindSeries("threads=32")
	if s == nil {
		t.Fatal("missing threads=32 series")
	}
	if at(t, s, 512) <= at(t, s, 1) {
		t.Fatalf("no page sweet spot: block1=%v block512=%v", at(t, s, 1), at(t, s, 512))
	}
}

func TestFig8EmuBeatsXeonUtilization(t *testing.T) {
	fig := runOne(t, "fig8")["fig8"]
	emu := fig.FindSeries("emu_chick_512t")
	xeon := fig.FindSeries("sandy_bridge_32t")
	if emu == nil || xeon == nil {
		t.Fatal("missing series")
	}
	// At moderate blocks the Emu sustains a large fraction of its peak
	// and stays there across the sweep. (The Emu-vs-Xeon contrast needs
	// lists larger than the Xeon's L3, which quick sizes don't reach;
	// the full-scale runs, the cpukernels tests, and the claims package
	// cover it.)
	if e := at(t, emu, 64); e < 0.5 || e > 1.05 {
		t.Fatalf("emu utilization at block 64 = %.2f, want ~0.8", e)
	}
	for _, bs := range chaseBlocks(true)[1:] {
		if e := at(t, emu, float64(bs)); e < 0.4 {
			t.Fatalf("emu utilization at block %d = %.2f, not sustained", bs, e)
		}
	}
	// The Xeon series must at least exist with sane values.
	for _, p := range xeon.Points {
		if p.Stats.Mean <= 0 || p.Stats.Mean > 1.1 {
			t.Fatalf("xeon utilization at block %v = %.2f", p.X, p.Stats.Mean)
		}
	}
}

func TestFig9aLayoutOrdering(t *testing.T) {
	fig := runOne(t, "fig9a")["fig9a"]
	local := fig.FindSeries("local")
	d1 := fig.FindSeries("1d")
	d2 := fig.FindSeries("2d")
	if local == nil || d1 == nil || d2 == nil {
		t.Fatal("missing series")
	}
	n := fig9aSizes(true)
	big := float64(n[len(n)-1])
	if !(at(t, d2, big) > at(t, d1, big) && at(t, d1, big) > at(t, local, big)) {
		t.Fatalf("layout ordering broken at n=%v: local=%v 1d=%v 2d=%v",
			big, at(t, local, big), at(t, d1, big), at(t, d2, big))
	}
}

func TestFig9bCPUVariantsScale(t *testing.T) {
	fig := runOne(t, "fig9b")["fig9b"]
	mkl := fig.FindSeries("mkl")
	if mkl == nil {
		t.Fatal("missing mkl series")
	}
	sizes := fig9bSizes(true)
	if at(t, mkl, float64(sizes[len(sizes)-1])) <= at(t, mkl, float64(sizes[0])) {
		t.Fatal("mkl bandwidth should grow with matrix size")
	}
}

func TestFig10ValidationGap(t *testing.T) {
	figs := runOne(t, "fig10")
	stream := figs["fig10-stream"]
	chase := figs["fig10-chase"]
	pp := figs["fig10-pingpong"]
	if stream == nil || chase == nil || pp == nil {
		t.Fatal("missing panels")
	}
	// STREAM validates: hardware and simulator within 2%.
	hs, ss := stream.FindSeries("hardware"), stream.FindSeries("simulator")
	for _, p := range hs.Points {
		sim := at(t, ss, p.X)
		r := p.Stats.Mean / sim
		if r < 0.98 || r > 1.02 {
			t.Fatalf("STREAM mismatch at %v threads: hw=%v sim=%v", p.X, p.Stats.Mean, sim)
		}
	}
	// Pointer chase does NOT validate at migration-bound block sizes.
	hc, sc := chase.FindSeries("hardware"), chase.FindSeries("simulator")
	if at(t, sc, 1) <= at(t, hc, 1)*1.2 {
		t.Fatalf("chase gap missing at block 1: hw=%v sim=%v", at(t, hc, 1), at(t, sc, 1))
	}
	// Ping-pong saturates near 9 vs 16 M/s.
	hp, sp := pp.FindSeries("hardware"), pp.FindSeries("simulator")
	if h := at(t, hp, 64); h < 8 || h > 9.5 {
		t.Fatalf("hardware ping-pong = %v M/s", h)
	}
	if s := at(t, sp, 64); s < 14 || s > 16.5 {
		t.Fatalf("simulator ping-pong = %v M/s", s)
	}
}

func TestFig11ScalesWithThreads(t *testing.T) {
	fig := runOne(t, "fig11")["fig11"]
	lo := fig.FindSeries("threads=512")
	hi := fig.FindSeries("threads=2048")
	if lo == nil || hi == nil {
		t.Fatal("missing series")
	}
	if at(t, hi, 128) <= at(t, lo, 128) {
		t.Fatalf("no thread scaling at full speed: 512->%v 2048->%v",
			at(t, lo, 128), at(t, hi, 128))
	}
}

func TestStreamAnchors(t *testing.T) {
	fig := runOne(t, "stream-anchors")["stream-anchors"]
	measured := fig.FindSeries("measured")
	paper := fig.FindSeries("paper")
	if measured == nil || paper == nil {
		t.Fatal("missing series")
	}
	// Each anchor should land within 2x of the paper's value (the 8-node
	// figure was an unstable early test, so the band is generous).
	for _, p := range paper.Points {
		m := at(t, measured, p.X)
		if m < p.Stats.Mean/2.5 || m > p.Stats.Mean*2.5 {
			t.Fatalf("anchor %v: measured %v vs paper %v", fig.XTicks[p.X], m, p.Stats.Mean)
		}
	}
}

func TestMigrationAnchors(t *testing.T) {
	fig := runOne(t, "migration-anchors")["migration-anchors"]
	measured := fig.FindSeries("measured")
	if measured == nil {
		t.Fatal("missing measured series")
	}
	if v := at(t, measured, 0); v < 8 || v > 9.5 {
		t.Fatalf("hw migration rate anchor = %v M/s", v)
	}
	if v := at(t, measured, 1); v < 14 || v > 16.5 {
		t.Fatalf("sim migration rate anchor = %v M/s", v)
	}
	if v := at(t, measured, 2); v < 1 || v > 2 {
		t.Fatalf("migration latency anchor = %v us", v)
	}
}
