package experiments

import (
	"emuchick/internal/cilk"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
)

func init() {
	register(&Experiment{
		ID:    "scaling-nodes",
		Title: "STREAM bandwidth scaling across node cards",
		Paper: "Section IV-A: one node sustains ~1.2 GB/s; the single " +
			"successful 8-node run reached 6.5 GB/s (sub-linear, on " +
			"unstable firmware); future systems target up to 160 GB/s.",
		Runner: runScalingNodes,
	})
}

func runScalingNodes(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elems := 512
	threadsPerNodelet := 64
	if o.Quick {
		elems = 128
		threadsPerNodelet = 32
	}
	nodeCounts := []int{1, 2, 4, 8}
	vals := make([]float64, len(nodeCounts))
	err := parallelFor(o, len(nodeCounts), func(i int) error {
		cfg := machine.HardwareChickNodes(nodeCounts[i])
		nodelets := cfg.TotalNodelets()
		res, err := kernels.StreamAdd(cfg, kernels.StreamConfig{
			ElemsPerNodelet: elems, Nodelets: nodelets,
			Threads: threadsPerNodelet * nodelets, Strategy: cilk.RecursiveRemoteSpawn,
		}, o.KernelOptions()...)
		if err != nil {
			return err
		}
		vals[i] = res.GBps()
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     "scaling-nodes",
		Title:  "STREAM (Emu Chick prototype, 1-8 node cards)",
		XLabel: "nodes",
		YLabel: "GB/s",
	}
	measured := &metrics.Series{Name: "measured"}
	ideal := &metrics.Series{Name: "linear_from_1_node"}
	oneNode := vals[0]
	for i, nodes := range nodeCounts {
		measured.Add(float64(nodes), single(vals[i]))
		ideal.Add(float64(nodes), single(oneNode*float64(nodes)))
	}
	fig.Series = []*metrics.Series{measured, ideal}
	return []*metrics.Figure{fig}, nil
}
