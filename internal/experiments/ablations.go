package experiments

import (
	"strconv"

	"emuchick/internal/cilk"
	"emuchick/internal/cpukernels"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/workload"
	"emuchick/internal/xeon"
)

// Ablations isolate the design choices DESIGN.md section 6 calls out:
// each sweeps exactly one knob of the model or of the programming strategy
// and shows its effect on a paper-relevant measurement.

func init() {
	register(&Experiment{
		ID:    "ablation-migration-rate",
		Title: "Block-1 pointer chasing vs migration-engine rate",
		Paper: "Implied by section IV-D: the 9 vs 16 M migrations/s engine " +
			"rate is what separates hardware from simulator on " +
			"migration-bound kernels; sweeping the rate isolates it.",
		Runner: runAblationMigrationRate,
	})
	register(&Experiment{
		ID:    "ablation-spawn-locality",
		Title: "STREAM bandwidth per spawn strategy at fixed thread count",
		Paper: "Fig. 5 distilled: remote spawning is what saturates " +
			"multi-nodelet bandwidth.",
		Runner: runAblationSpawnLocality,
	})
	register(&Experiment{
		ID:    "ablation-grain",
		Title: "SpMV bandwidth vs grain size on Emu (2D) and Haswell (cilk_spawn)",
		Paper: "Section IV-C: 16 elements per spawn is best on the Emu; " +
			"16384 on the CPU.",
		Runner: runAblationGrain,
	})
	register(&Experiment{
		ID:    "ablation-replication",
		Title: "SpMV 2D with replicated vs striped input vector",
		Paper: "Section V-A recommendation #2: replicate commonly used " +
			"inputs like x; striping x costs a migration per gather.",
		Runner: runAblationReplication,
	})
	register(&Experiment{
		ID:    "ablation-migration-latency",
		Title: "Block-1 pointer chasing vs per-migration latency",
		Paper: "Complementary to the rate ablation: with enough threads the " +
			"dip is set by engine throughput, not by per-migration latency.",
		Runner: runAblationMigrationLatency,
	})
}

func runAblationMigrationRate(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elements, threads := 16384, 512
	rates := []float64{4.5e6, 9e6, 16e6, 24e6, 32e6}
	trials := min(o.Trials, 3)
	if o.Quick {
		elements = 4096
		rates = []float64{9e6, 16e6}
		trials = 2
	}
	stats, err := sweep{series: 1, points: len(rates), trials: trials}.run(o,
		func(o Options, _, pi, trial int) (float64, error) {
			cfg := machine.HardwareChick()
			cfg.MigrationsPerSec = rates[pi]
			res, err := kernels.PointerChase(cfg, kernels.ChaseConfig{
				Elements: elements, BlockSize: 1, Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*17 + 3, Threads: threads, Nodelets: 8,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(rates))
	for i, rate := range rates {
		xs[i] = rate / 1e6
	}
	fig := &metrics.Figure{
		ID:     "ablation-migration-rate",
		Title:  "Pointer chasing, block 1, vs migration-engine rate",
		XLabel: "engine rate (M migrations/s)",
		YLabel: "MB/s",
		Series: assemble([]string{"block1_512t"}, xs, stats),
	}
	return []*metrics.Figure{fig}, nil
}

func runAblationSpawnLocality(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elems, threads := 512, 256
	if o.Quick {
		elems = 128
	}
	fig := &metrics.Figure{
		ID:     "ablation-spawn-locality",
		Title:  "STREAM, 8 nodelets, 256 threads, per spawn strategy",
		XLabel: "strategy (0=serial 1=recursive 2=serial_remote 3=recursive_remote)",
		YLabel: "MB/s",
		XTicks: map[float64]string{},
	}
	stats, err := sweep{series: 1, points: len(cilk.Strategies)}.run(o,
		func(o Options, _, pi, _ int) (float64, error) {
			res, err := kernels.StreamAdd(machine.HardwareChick(), kernels.StreamConfig{
				ElemsPerNodelet: elems, Nodelets: 8, Threads: threads, Strategy: cilk.Strategies[pi],
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(cilk.Strategies))
	for i, strat := range cilk.Strategies {
		xs[i] = float64(i)
		fig.XTicks[float64(i)] = strat.String()
	}
	fig.Series = assemble([]string{"stream_256t"}, xs, stats)
	return []*metrics.Figure{fig}, nil
}

func runAblationGrain(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	emuN, cpuN := 50, 320
	grains := []int{4, 16, 64, 256, 1024, 4096, 16384}
	if o.Quick {
		emuN, cpuN = 16, 64
		grains = []int{16, 1024}
	}
	stats, err := sweep{series: 2, points: len(grains)}.run(o,
		func(o Options, si, pi, _ int) (float64, error) {
			if si == 0 {
				res, err := kernels.SpMV(machine.HardwareChick(), kernels.SpMVConfig{
					GridN: emuN, Layout: kernels.SpMV2D, GrainNNZ: grains[pi],
				}, o.KernelOptions()...)
				if err != nil {
					return 0, err
				}
				return res.MBps(), nil
			}
			res, err := cpukernels.SpMV(xeon.HaswellXeon(), cpukernels.SpMVConfig{
				GridN: cpuN, Variant: cpukernels.SpMVCilkSpawn, Threads: 56, GrainNNZ: grains[pi],
			})
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	names := []string{
		"emu_2d_n" + strconv.Itoa(emuN),
		"haswell_cilk_spawn_n" + strconv.Itoa(cpuN),
	}
	fig := &metrics.Figure{
		ID:     "ablation-grain",
		Title:  "SpMV effective bandwidth vs elements per spawn",
		XLabel: "grain (elements per spawn)",
		YLabel: "MB/s",
		Series: assemble(names, xsOf(grains), stats),
	}
	return []*metrics.Figure{fig}, nil
}

func runAblationReplication(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	sizes := []int{16, 32, 50, 64}
	if o.Quick {
		sizes = []int{12, 20}
	}
	stats, err := sweep{series: 2, points: len(sizes)}.run(o,
		func(o Options, si, pi, _ int) (float64, error) {
			res, err := kernels.SpMV(machine.HardwareChick(), kernels.SpMVConfig{
				GridN: sizes[pi], Layout: kernels.SpMV2D, GrainNNZ: 16, StripeX: si == 1,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     "ablation-replication",
		Title:  "SpMV 2D: replicated vs striped input vector",
		XLabel: "Laplacian size n",
		YLabel: "MB/s",
		Series: assemble([]string{"x_replicated", "x_striped"}, xsOf(sizes), stats),
	}
	return []*metrics.Figure{fig}, nil
}

func runAblationMigrationLatency(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elements, threads := 16384, 512
	latenciesNs := []int64{400, 800, 1500, 3000, 6000}
	trials := min(o.Trials, 3)
	if o.Quick {
		elements = 4096
		latenciesNs = []int64{800, 3000}
		trials = 2
	}
	stats, err := sweep{series: 1, points: len(latenciesNs), trials: trials}.run(o,
		func(o Options, _, pi, trial int) (float64, error) {
			cfg := machine.HardwareChick()
			cfg.MigrationLatency = machineNs(latenciesNs[pi])
			res, err := kernels.PointerChase(cfg, kernels.ChaseConfig{
				Elements: elements, BlockSize: 1, Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*23 + 9, Threads: threads, Nodelets: 8,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(latenciesNs))
	for i, ns := range latenciesNs {
		xs[i] = float64(ns)
	}
	fig := &metrics.Figure{
		ID:     "ablation-migration-latency",
		Title:  "Pointer chasing, block 1, vs per-migration latency",
		XLabel: "migration latency (ns)",
		YLabel: "MB/s",
		Series: assemble([]string{"block1_512t"}, xs, stats),
	}
	return []*metrics.Figure{fig}, nil
}
