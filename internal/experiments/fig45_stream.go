package experiments

import (
	"emuchick/internal/cilk"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
)

func init() {
	register(&Experiment{
		ID:    "fig4",
		Title: "STREAM bandwidth on a single nodelet vs thread count",
		Paper: "Bandwidth scales up through ~32 threads then plateaus; " +
			"serial_spawn and recursive_spawn are nearly identical.",
		Runner: runFig4,
	})
	register(&Experiment{
		ID:    "fig5",
		Title: "STREAM bandwidth on eight nodelets vs thread count and spawn strategy",
		Paper: "Remote-spawn strategies are required to reach the node's " +
			"~1.2 GB/s peak; local-spawn strategies bottleneck on nodelet 0.",
		Runner: runFig5,
	})
}

func fig4Threads(quick bool) []int {
	if quick {
		return []int{1, 4, 16, 64}
	}
	return []int{1, 2, 4, 8, 16, 24, 32, 48, 64}
}

// runStreamSweep fans one STREAM simulation per (strategy, threads) cell.
func runStreamSweep(o Options, strategies []cilk.Strategy, threads []int, elems, nodelets int) ([]*metrics.Series, error) {
	stats, err := sweep{series: len(strategies), points: len(threads)}.run(o, func(o Options, si, pi, _ int) (float64, error) {
		res, err := kernels.StreamAdd(machine.HardwareChick(), kernels.StreamConfig{
			ElemsPerNodelet: elems, Nodelets: nodelets, Threads: threads[pi], Strategy: strategies[si],
		}, o.KernelOptions()...)
		if err != nil {
			return 0, err
		}
		return res.MBps(), nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(strategies))
	for i, strat := range strategies {
		names[i] = strat.String()
	}
	return assemble(names, xsOf(threads), stats), nil
}

func runFig4(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elems := 1024
	if o.Quick {
		elems = 192
	}
	series, err := runStreamSweep(o, []cilk.Strategy{cilk.SerialSpawn, cilk.RecursiveSpawn},
		fig4Threads(o.Quick), elems, 1)
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     "fig4",
		Title:  "STREAM (Emu Chick, 1 nodelet)",
		XLabel: "threads",
		YLabel: "MB/s",
		Series: series,
	}
	return []*metrics.Figure{fig}, nil
}

func fig5Threads(quick bool) []int {
	if quick {
		return []int{8, 64, 256}
	}
	return []int{8, 16, 32, 64, 128, 256, 512}
}

func runFig5(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	elems := 512
	if o.Quick {
		elems = 96
	}
	series, err := runStreamSweep(o, cilk.Strategies, fig5Threads(o.Quick), elems, 8)
	if err != nil {
		return nil, err
	}
	fig := &metrics.Figure{
		ID:     "fig5",
		Title:  "STREAM (Emu Chick, 8 nodelets)",
		XLabel: "threads",
		YLabel: "MB/s",
		Series: series,
	}
	return []*metrics.Figure{fig}, nil
}
