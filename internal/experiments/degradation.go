package experiments

import (
	"emuchick/internal/cilk"
	"emuchick/internal/fault"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/sim"
	"emuchick/internal/workload"
)

// Graceful-degradation experiments: the paper characterizes a prototype that
// itself ran degraded (half-rate clock, 9 M of 16 M migrations/s, one usable
// node), so the natural follow-up question is how the machine's headline
// behaviours — peak STREAM bandwidth and the flat pointer-chase profile —
// decay as individual components fail. Both experiments build their fault
// plans from internal/fault, so every curve is deterministic per
// (plan, seed) and the zero-fault point is byte-identical to the healthy
// figures.

func init() {
	register(&Experiment{
		ID:    "degradation-stream",
		Title: "STREAM peak bandwidth vs number of degraded nodelets",
		Paper: "Projection (no paper figure): aggregate bandwidth falls " +
			"roughly linearly as NCDRAM channels are throttled, since STREAM " +
			"load-balances across nodelets and each degraded channel serves " +
			"its partition slower; core slowdown on top adds little because " +
			"STREAM is channel-bound.",
		Runner: runDegradationStream,
	})
	register(&Experiment{
		ID:    "degradation-chase",
		Title: "Pointer chasing under fabric-link faults (2 nodes)",
		Paper: "Projection (no paper figure): Fig. 6's flatness across block " +
			"sizes survives link degradation (every block size pays the same " +
			"slower link), while an outage window with migration stalls " +
			"depresses all block sizes and exercises the retry/backoff path.",
		Runner: runDegradationChase,
	})
}

// degradationPlan is one series of the STREAM degradation sweep: a plan
// builder parameterized by how many nodelets are degraded.
type degradationPlan struct {
	name  string
	build func(k int, seed uint64) *fault.Plan
}

func degradedCounts(quick bool) []int {
	if quick {
		return []int{0, 2, 4, 8}
	}
	return []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
}

func runDegradationStream(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	// Same workload as fig5's peak point, so the k=0 column reproduces the
	// healthy machine's peak bandwidth exactly.
	elems, threads := 512, 256
	if o.Quick {
		elems, threads = 96, 64
	}
	plans := []degradationPlan{
		{"chan x2", func(k int, seed uint64) *fault.Plan {
			return &fault.Plan{Seed: seed,
				Channels: []fault.Slowdown{{Factor: 2, Count: k}}}
		}},
		{"chan x4", func(k int, seed uint64) *fault.Plan {
			return &fault.Plan{Seed: seed,
				Channels: []fault.Slowdown{{Factor: 4, Count: k}}}
		}},
		{"chan+cores x4", func(k int, seed uint64) *fault.Plan {
			return &fault.Plan{Seed: seed,
				Channels: []fault.Slowdown{{Factor: 4, Count: k}},
				Cores:    []fault.Slowdown{{Factor: 4, Count: k}}}
		}},
	}
	counts := degradedCounts(o.Quick)
	stats, err := sweep{series: len(plans), points: len(counts)}.run(o, func(o Options, si, pi, _ int) (float64, error) {
		ks := o.KernelOptions()
		if k := counts[pi]; k > 0 {
			// k == 0 passes no plan at all, keeping the baseline column on
			// the exact fault-free code paths.
			ks = append(ks, kernels.WithFaultPlan(plans[si].build(k, o.FaultSeed)))
		}
		res, err := kernels.StreamAdd(machine.HardwareChick(), kernels.StreamConfig{
			ElemsPerNodelet: elems, Nodelets: 8, Threads: threads,
			Strategy: cilk.RecursiveRemoteSpawn,
		}, ks...)
		if err != nil {
			return 0, err
		}
		return res.MBps(), nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(plans))
	for i, p := range plans {
		names[i] = p.name
	}
	fig := &metrics.Figure{
		ID:     "degradation-stream",
		Title:  "STREAM under nodelet degradation (Emu Chick, 8 nodelets)",
		XLabel: "degraded nodelets",
		YLabel: "MB/s",
		Series: assemble(names, xsOf(counts), stats),
	}
	return []*metrics.Figure{fig}, nil
}

// chaseFaultPlans are the series of the pointer-chase degradation figure.
// The outage series combines a node-0 link outage window with periodic
// migration-engine stalls, so it exercises the full retry-with-backoff path.
func chaseFaultPlans() []degradationPlan {
	return []degradationPlan{
		{"healthy", func(int, uint64) *fault.Plan { return nil }},
		{"link x4", func(_ int, seed uint64) *fault.Plan {
			return &fault.Plan{Seed: seed,
				Links: []fault.LinkFault{{Factor: 4}}}
		}},
		{"outage+stall", func(_ int, seed uint64) *fault.Plan {
			return &fault.Plan{Seed: seed,
				Links: []fault.LinkFault{{Factor: 0, Start: 0,
					End: 500 * sim.Microsecond, Nodes: []int{0}}},
				Stalls: []fault.Stall{{Duration: 20 * sim.Microsecond,
					Period: 200 * sim.Microsecond}}}
		}},
	}
}

func runDegradationChase(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	// Two node cards so migrations cross the faulted fabric link; workload
	// mirrors fig6 at its middle thread count.
	elements, threads := 65536, 256
	trials := min(o.Trials, 3)
	if o.Quick {
		elements, threads = 8192, 64
	}
	blocks := chaseBlocks(o.Quick)
	plans := chaseFaultPlans()
	stats, err := sweep{series: len(plans), points: len(blocks), trials: trials}.run(o,
		func(o Options, si, pi, trial int) (float64, error) {
			ks := o.KernelOptions()
			if plan := plans[si].build(0, o.FaultSeed); plan != nil {
				ks = append(ks, kernels.WithFaultPlan(plan))
			}
			res, err := kernels.PointerChase(machine.HardwareChickNodes(2), kernels.ChaseConfig{
				Elements: elements, BlockSize: blocks[pi], Mode: workload.FullBlockShuffle,
				Seed: uint64(trial)*1009 + 1, Threads: threads, Nodelets: 16,
			}, ks...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(plans))
	for i, p := range plans {
		names[i] = p.name
	}
	fig := &metrics.Figure{
		ID:     "degradation-chase",
		Title:  "Pointer chasing under link faults (Emu Chick, 2 nodes)",
		XLabel: "block size (elements)",
		YLabel: "MB/s",
		Series: assemble(names, xsOf(blocks), stats),
	}
	return []*metrics.Figure{fig}, nil
}
