package experiments

import "testing"

func TestSupplementShuffleModes(t *testing.T) {
	figs := runOne(t, "supplement-shuffle-modes")
	emu := figs["supplement-shuffle-emu"]
	cpu := figs["supplement-shuffle-xeon"]
	if emu == nil || cpu == nil {
		t.Fatal("missing panels")
	}
	// Emu: the three modes agree within ~2x at the middle block size.
	x := emu.Series[0].Points[0].X
	lo, hi := 0.0, 0.0
	for _, s := range emu.Series {
		v := at(t, s, x)
		if lo == 0 || v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 2.5*lo {
		t.Fatalf("emu mode sensitivity too high: %v..%v MB/s", lo, hi)
	}
	// Xeon: intra-block (sequential blocks, prefetchable) beats the full
	// shuffle at small blocks.
	intra := cpu.FindSeries("intra_block_shuffle")
	full := cpu.FindSeries("full_block_shuffle")
	if intra == nil || full == nil {
		t.Fatal("missing xeon series")
	}
	small := cpu.Series[0].Points[0].X
	if at(t, intra, small) <= at(t, full, small) {
		t.Fatalf("xeon intra (%v) should beat full (%v) at block %v",
			at(t, intra, small), at(t, full, small), small)
	}
}

func TestSupplementVBMetric(t *testing.T) {
	fig := runOne(t, "supplement-vb-metric")["supplement-vb-metric"]
	emu := fig.FindSeries("emu_migration_traffic")
	cpu := fig.FindSeries("xeon_overfetch")
	if emu == nil || cpu == nil {
		t.Fatal("missing series")
	}
	// Emu migration traffic collapses with block size: amortized one
	// ~200 B context per block instead of per element.
	first := emu.Points[0]
	last := emu.Points[len(emu.Points)-1]
	if last.Stats.Mean >= first.Stats.Mean/4 {
		t.Fatalf("migration traffic should collapse with block size: %v -> %v",
			first.Stats.Mean, last.Stats.Mean)
	}
	// At block 1, migrating ~200 B contexts per 16 B element is the
	// dominant overhead (>1 byte moved per useful byte).
	if first.Stats.Mean < 1 {
		t.Fatalf("block-1 migration overhead = %v bytes/byte", first.Stats.Mean)
	}
	// The Xeon pays overfetch at every block size of this sweep.
	for _, p := range cpu.Points {
		if p.Stats.Mean < 0 {
			t.Fatalf("negative overfetch at block %v", p.X)
		}
	}
}
