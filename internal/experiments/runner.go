package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"emuchick/internal/metrics"
)

// The experiment layer parallelizes at the level of independent simulations:
// every (series × sweep-point × trial) cell of a figure builds its own
// System, so cells can run on any OS thread in any order. Determinism is
// preserved by construction — each cell writes its result into a slot
// chosen by cell index, never by arrival order, so assembled figures are
// byte-identical to a sequential run.

// parallelism resolves an Options.Parallel value to a worker count. An
// attached observer forces one worker: concurrent cells would interleave
// their event streams, and determinism makes the results identical anyway.
func (o Options) parallelism() int {
	if o.Observer != nil {
		return 1
	}
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// interrupted reports the cancellation error of the run's context, if any.
func (o Options) interrupted() error {
	if o.ctx == nil {
		return nil
	}
	return o.ctx.Err()
}

// parallelFor runs fn(i) for every i in [0, n) across the option's worker
// count and returns the lowest-indexed error, if any. Workers pull indices
// from a shared counter; results must be slotted by index inside fn.
func parallelFor(o Options, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// A context cancelled before the loop starts runs zero cells: without
	// this check each worker would evaluate one cell before noticing.
	if err := o.interrupted(); err != nil {
		return err
	}
	workers := o.parallelism()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := o.interrupted(); err != nil {
				errs[i] = err
				break
			}
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := o.interrupted(); err != nil {
						errs[i] = err
						return
					}
					errs[i] = guard(fn, i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// guard runs fn(i), converting a panicked error back into a returned one so
// a worker goroutine never takes the process down for a failure the
// sequential path would have surfaced. Non-error panics propagate unchanged.
func guard(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	return fn(i)
}

// sweep is the shape shared by nearly every figure runner: a dense
// series × points × trials matrix of independent simulations, fanned across
// the worker pool and aggregated into per-point trial statistics in
// deterministic (series, point, trial) order.
type sweep struct {
	series, points, trials int
}

// assemble builds labelled series from a sweep's slotted results, one
// series per name, one point per x.
func assemble(names []string, xs []float64, stats [][]metrics.Stats) []*metrics.Series {
	out := make([]*metrics.Series, len(names))
	for si, name := range names {
		s := &metrics.Series{Name: name}
		for pi, x := range xs {
			s.Add(x, stats[si][pi])
		}
		out[si] = s
	}
	return out
}

// xsOf widens an integer sweep axis to the float64 x positions of a figure.
func xsOf(vals []int) []float64 {
	xs := make([]float64, len(vals))
	for i, v := range vals {
		xs[i] = float64(v)
	}
	return xs
}

// run evaluates eval for every cell and returns per-point statistics
// slotted as out[series][point].
func (g sweep) run(o Options, eval func(si, pi, trial int) (float64, error)) ([][]metrics.Stats, error) {
	if g.trials <= 0 {
		g.trials = 1
	}
	vals := make([]float64, g.series*g.points*g.trials)
	err := parallelFor(o, len(vals), func(i int) error {
		si := i / (g.points * g.trials)
		pi := i / g.trials % g.points
		trial := i % g.trials
		v, err := eval(si, pi, trial)
		if err != nil {
			return err
		}
		vals[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]metrics.Stats, g.series)
	for si := range out {
		out[si] = make([]metrics.Stats, g.points)
		for pi := range out[si] {
			base := (si*g.points + pi) * g.trials
			out[si][pi] = metrics.Aggregate(vals[base : base+g.trials])
		}
	}
	return out, nil
}
