package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"emuchick/internal/metrics"
	"emuchick/internal/sim"
)

// The experiment layer parallelizes at the level of independent simulations:
// every (series × sweep-point × trial) cell of a figure builds its own
// System, so cells can run on any OS thread in any order. Determinism is
// preserved by construction — each cell writes its result into a slot
// chosen by cell index, never by arrival order, so assembled figures are
// byte-identical to a sequential run.

// parallelism resolves an Options.Parallel value to a worker count. An
// attached observer forces one worker: concurrent cells would interleave
// their event streams, and determinism makes the results identical anyway.
func (o Options) parallelism() int {
	if o.Observer != nil {
		return 1
	}
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// interrupted reports the cancellation error of the run's context, if any.
func (o Options) interrupted() error {
	if o.ctx == nil {
		return nil
	}
	return o.ctx.Err()
}

// parallelFor runs fn(i) for every i in [0, n) across the option's worker
// count and returns the lowest-indexed error, if any. Workers pull indices
// from a shared counter; results must be slotted by index inside fn.
func parallelFor(o Options, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// A context cancelled before the loop starts runs zero cells: without
	// this check each worker would evaluate one cell before noticing.
	if err := o.interrupted(); err != nil {
		return err
	}
	workers := o.parallelism()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := o.interrupted(); err != nil {
				errs[i] = err
				break
			}
			errs[i] = guard(fn, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					if err := o.interrupted(); err != nil {
						errs[i] = err
						return
					}
					errs[i] = guard(fn, i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CellPanicError is a panic recovered from one sweep cell, converted into an
// ordinary error so a worker goroutine never takes the whole process down.
// It carries the flat cell index and the stack captured at the panic site.
type CellPanicError struct {
	Cell  int
	Value any
	Stack []byte
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("experiments: cell %d panicked: %v\n%s", e.Cell, e.Value, e.Stack)
}

// Unwrap exposes a panicked error value to errors.Is/As chains; non-error
// panic values unwrap to nothing.
func (e *CellPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// guard runs fn(i), converting any recovered panic — error or not — into a
// returned *CellPanicError. Before this existed for every value, a non-error
// panic re-raised on a worker goroutine and killed the process with no
// indication of which cell died.
func guard(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellPanicError{Cell: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// sweep is the shape shared by nearly every figure runner: a dense
// series × points × trials matrix of independent simulations, fanned across
// the worker pool and aggregated into per-point trial statistics in
// deterministic (series, point, trial) order.
type sweep struct {
	series, points, trials int
}

// assemble builds labelled series from a sweep's slotted results, one
// series per name, one point per x.
func assemble(names []string, xs []float64, stats [][]metrics.Stats) []*metrics.Series {
	out := make([]*metrics.Series, len(names))
	for si, name := range names {
		s := &metrics.Series{Name: name}
		for pi, x := range xs {
			s.Add(x, stats[si][pi])
		}
		out[si] = s
	}
	return out
}

// xsOf widens an integer sweep axis to the float64 x positions of a figure.
func xsOf(vals []int) []float64 {
	xs := make([]float64, len(vals))
	for i, v := range vals {
		xs[i] = float64(v)
	}
	return xs
}

// EventBudget is the watchdog's deterministic backstop: a cap on dispatched
// engine events per cell, sized an order of magnitude above what the largest
// healthy cell of each scale fires. Wall clocks vary with machine load; the
// event count of a runaway simulation does not. Exported so the jobspec
// kernel runner arms the same budget as the sweep watchdog.
func EventBudget(quick bool) uint64 {
	if quick {
		return 1 << 26
	}
	return 1 << 30
}

// withWatchdog derives the per-attempt Options for one cell: with the
// watchdog armed, the cell gets its own deadline context (layered on the
// run's context, so outer cancellation still wins) and the scale-derived
// event budget. The caller must invoke the returned cancel when the attempt
// finishes.
func (o Options) withWatchdog() (Options, context.CancelFunc) {
	if o.CellTimeout <= 0 {
		return o, func() {}
	}
	parent := o.ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithTimeout(parent, o.CellTimeout)
	o.ctx = ctx
	if o.maxEvents == 0 {
		o.maxEvents = EventBudget(o.Quick)
	}
	return o, cancel
}

// runCell evaluates one cell under the watchdog and retry policy. It
// returns exactly one of:
//   - (v, nil, nil): the cell produced a result;
//   - (_, failure, nil): the cell failed terminally (deterministic engine
//     death, or watchdog kills through every retry) — the sweep records the
//     failure and continues with a NaN hole;
//   - (_, nil, err): the run must abort (outer cancellation, or an error the
//     policy does not own).
func runCell(o Options, eval func(Options, int, int, int) (float64, error), si, pi, trial int) (float64, *CellFailure, error) {
	attempts := 1
	if o.CellTimeout > 0 {
		attempts += o.Retries
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		ao, cancel := o.withWatchdog()
		v, err := eval(ao, si, pi, trial)
		cancel()
		if err == nil {
			return v, nil, nil
		}
		lastErr = err
		// The run's own context ending (SIGINT, outer deadline) aborts the
		// sweep; the checkpoint already holds every finished cell.
		if pe := o.interrupted(); pe != nil {
			return 0, nil, pe
		}
		var re *sim.RunError
		if errors.As(err, &re) {
			switch re.Kind {
			case sim.FailDeadlock, sim.FailMaxEvents, sim.FailMaxTime:
				// Deterministic deaths: a retry replays the same simulation
				// to the same end, so record the post-mortem immediately.
				return 0, NewCellFailure(a, err), nil
			}
		}
		if o.CellTimeout > 0 && errors.Is(err, context.DeadlineExceeded) {
			continue // watchdog kill: the cell gets another attempt
		}
		return 0, nil, err
	}
	return 0, NewCellFailure(attempts, lastErr), nil
}

// run evaluates eval for every cell and returns per-point statistics
// slotted as out[series][point]. eval receives the per-attempt Options it
// must thread into the simulation it builds (KernelOptions carries the
// watchdog's deadline context and event budget).
//
// With a checkpoint open, completed cells are replayed from the log instead
// of re-simulated and fresh results are appended as they finish; terminal
// cell failures become NaN holes (surfacing as Stats.Failed counts and an
// Incomplete figure) rather than aborting the sweep.
func (g sweep) run(o Options, eval func(o Options, si, pi, trial int) (float64, error)) ([][]metrics.Stats, error) {
	if g.trials <= 0 {
		g.trials = 1
	}
	sweepIdx := 0
	if o.ckpt != nil {
		sweepIdx = o.ckpt.nextSweep()
	}
	vals := make([]float64, g.series*g.points*g.trials)
	err := parallelFor(o, len(vals), func(i int) error {
		si := i / (g.points * g.trials)
		pi := i / g.trials % g.points
		trial := i % g.trials
		if o.ckpt != nil {
			if v, ok := o.ckpt.Lookup(sweepIdx, i); ok {
				vals[i] = v
				return nil
			}
		}
		v, fail, err := runCell(o, eval, si, pi, trial)
		if err != nil {
			return err
		}
		if fail != nil {
			fail.Sweep, fail.Cell = sweepIdx, i
			fail.Series, fail.Point, fail.Trial = si, pi, trial
			if o.ckpt != nil {
				if err := o.ckpt.RecordFailure(fail); err != nil {
					return err
				}
			}
			vals[i] = math.NaN()
			return nil
		}
		vals[i] = v
		if o.ckpt != nil {
			return o.ckpt.Record(sweepIdx, i, v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]metrics.Stats, g.series)
	for si := range out {
		out[si] = make([]metrics.Stats, g.points)
		for pi := range out[si] {
			base := (si*g.points + pi) * g.trials
			out[si][pi] = metrics.Aggregate(vals[base : base+g.trials])
		}
	}
	return out, nil
}
