package experiments

import (
	"emuchick/internal/cpukernels"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/metrics"
	"emuchick/internal/xeon"
)

func init() {
	register(&Experiment{
		ID:    "fig9a",
		Title: "SpMV effective bandwidth on the Emu Chick for three data layouts",
		Paper: "local tops out near ~50 MB/s (no parallelism), 1D near " +
			"~100 MB/s (a migration per element), and 2D scales with n to " +
			"~250 MB/s at n=100; grain 16 works best.",
		Runner: runFig9a,
	})
	register(&Experiment{
		ID:    "fig9b",
		Title: "SpMV effective bandwidth on Haswell Xeon (MKL, cilk_for, cilk_spawn)",
		Paper: "MKL and cilk_for scale well with matrix size into the GB/s " +
			"range; cilk_spawn depends strongly on grain size, best at 16384.",
		Runner: runFig9b,
	})
}

func fig9aSizes(quick bool) []int {
	if quick {
		return []int{8, 16, 24}
	}
	return []int{16, 25, 32, 50, 64, 100}
}

func runFig9a(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	sizes := fig9aSizes(o.Quick)
	layouts := kernels.SpMVLayouts
	stats, err := sweep{series: len(layouts), points: len(sizes)}.run(o,
		func(o Options, si, pi, _ int) (float64, error) {
			res, err := kernels.SpMV(machine.HardwareChick(), kernels.SpMVConfig{
				GridN: sizes[pi], Layout: layouts[si], GrainNNZ: 16,
			}, o.KernelOptions()...)
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(layouts))
	for i, layout := range layouts {
		names[i] = layout.String()
	}
	fig := &metrics.Figure{
		ID:     "fig9a",
		Title:  "SpMV (Emu Chick, 8 nodelets, grain 16)",
		XLabel: "Laplacian size n",
		YLabel: "MB/s",
		Series: assemble(names, xsOf(sizes), stats),
	}
	return []*metrics.Figure{fig}, nil
}

func fig9bSizes(quick bool) []int {
	if quick {
		return []int{16, 32}
	}
	return []int{16, 32, 64, 100, 128, 192}
}

func runFig9b(o Options) ([]*metrics.Figure, error) {
	o = o.withDefaults()
	type variant struct {
		name    string
		variant cpukernels.SpMVVariant
		grain   int
	}
	variants := []variant{
		{"mkl", cpukernels.SpMVMKL, 0},
		{"cilk_for", cpukernels.SpMVCilkFor, 0},
		{"cilk_spawn_g16384", cpukernels.SpMVCilkSpawn, 16384},
		{"cilk_spawn_g16", cpukernels.SpMVCilkSpawn, 16},
	}
	if o.Quick {
		variants = variants[:3]
	}
	sizes := fig9bSizes(o.Quick)
	stats, err := sweep{series: len(variants), points: len(sizes)}.run(o,
		func(o Options, si, pi, _ int) (float64, error) {
			res, err := cpukernels.SpMV(xeon.HaswellXeon(), cpukernels.SpMVConfig{
				GridN: sizes[pi], Variant: variants[si].variant, Threads: 56, GrainNNZ: variants[si].grain,
			})
			if err != nil {
				return 0, err
			}
			return res.MBps(), nil
		})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	fig := &metrics.Figure{
		ID:     "fig9b",
		Title:  "SpMV (Haswell Xeon E7-4850 v3, 56 threads)",
		XLabel: "Laplacian size n",
		YLabel: "MB/s",
		Series: assemble(names, xsOf(sizes), stats),
	}
	return []*metrics.Figure{fig}, nil
}
