package experiments

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emuchick/internal/fault"
	"emuchick/internal/metrics"
	"emuchick/internal/report"
	"emuchick/internal/sim"
)

// figuresToJSON marshals a figure set the same way figureBytes does, for
// comparing runs that need custom option plumbing.
func figuresToJSON(t *testing.T, figs []*metrics.Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, fig := range figs {
		if err := report.FigureJSON(&buf, fig); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// runFigureBytes runs an experiment with functional options and returns the
// FigureJSON bytes of every figure it produced.
func runFigureBytes(t *testing.T, id string, opts ...Option) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.Run(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return figuresToJSON(t, figs)
}

// ckptFigureBytes is runFigureBytes with a checkpoint attached.
func ckptFigureBytes(t *testing.T, id, path string, extra ...Option) []byte {
	t.Helper()
	opts := append([]Option{WithScale(QuickScale), WithTrials(1), WithCheckpoint(path)}, extra...)
	return runFigureBytes(t, id, opts...)
}

// TestCheckpointCompleteRunIsByteIdentical pins the identity half of the
// contract: a checkpointed run writing a cold log, and a second run replaying
// the now complete log, must both match an uncheckpointed run byte for byte.
func TestCheckpointCompleteRunIsByteIdentical(t *testing.T) {
	base := figureBytes(t, "fig4", WithScale(QuickScale), WithTrials(1))
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	cold := ckptFigureBytes(t, "fig4", path)
	if !bytes.Equal(base, cold) {
		t.Fatalf("checkpointed run differs from plain run:\nbase: %s\nckpt: %s", base, cold)
	}
	warm := ckptFigureBytes(t, "fig4", path)
	if !bytes.Equal(base, warm) {
		t.Fatalf("replayed run differs from plain run:\nbase: %s\nwarm: %s", base, warm)
	}
}

// TestCheckpointResumeByteIdentical is the acceptance gate: a run cancelled
// after an arbitrary number of recorded cells and resumed from its
// checkpoint — at a different parallelism, with and without a fault plan —
// produces byte-identical figures to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	plan, err := fault.Parse("chan=4@2,migstall=10us/100us", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Cut points are chosen so the interrupted run cannot finish before the
	// cancellation is observed: a worker checks the context before every new
	// cell, so at most cutAt+interP cells complete, and every quick sweep
	// here has at least 8 cells.
	cases := []struct {
		name    string
		id      string
		cutAt   int
		interP  int // parallelism of the interrupted run
		resumeP int // parallelism of the resumed run
		extra   []Option
	}{
		{"fig4-seq-to-par", "fig4", 3, 1, 8, nil},
		{"fig4-par-to-seq", "fig4", 2, 2, 1, nil},
		{"fig6-faulted", "fig6", 3, 2, 3, []Option{WithFaultPlan(plan)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runFigureBytes(t, tc.id,
				append([]Option{WithScale(QuickScale), WithTrials(1), WithParallel(tc.resumeP)}, tc.extra...)...)
			path := filepath.Join(t.TempDir(), tc.id+".ckpt")

			// Interrupted run: cancel the context once cutAt cells are in the
			// log — a deterministic stand-in for a kill at an arbitrary point.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			hook := optionFunc(func(o *Options) {
				o.ckptHook = func(recorded int) {
					if recorded >= tc.cutAt {
						cancel()
					}
				}
			})
			e, err := ByID(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			_, err = e.Run(append([]Option{
				WithScale(QuickScale), WithTrials(1),
				WithParallel(tc.interP), WithCheckpoint(path), WithContext(ctx), hook,
			}, tc.extra...)...)
			if err == nil {
				t.Fatal("interrupted run reported success")
			}
			fi, err := os.Stat(path)
			if err != nil || fi.Size() == 0 {
				t.Fatalf("interrupted run left no checkpoint: %v", err)
			}

			// Resume at a different parallelism; figures must match the
			// uninterrupted baseline exactly.
			got := ckptFigureBytes(t, tc.id, path,
				append([]Option{WithParallel(tc.resumeP)}, tc.extra...)...)
			if !bytes.Equal(base, got) {
				t.Fatalf("resumed figures differ from uninterrupted run:\nbase: %s\ngot:  %s", base, got)
			}
		})
	}
}

// The fingerprint-mismatch refusal contract is covered field by field in
// fingerprint_class_test.go, driven by the classification table the
// fingerprint analyzer exports (fingerprint.Fields) rather than a
// hand-maintained in/out list.

// TestCheckpointTornTailTolerated: a kill mid-append leaves a partial final
// line; resume must drop it and recover every complete record.
func TestCheckpointTornTailTolerated(t *testing.T) {
	base := figureBytes(t, "fig4", WithScale(QuickScale), WithTrials(1))
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	ckptFigureBytes(t, "fig4", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the header and three full cell records, then splice in a torn
	// line as a kill mid-write would.
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 5 {
		t.Fatalf("checkpoint too small to truncate: %d lines", len(lines))
	}
	torn := append(bytes.Join(lines[:4], nil), []byte(`{"type":"cell","TORNMARKER`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got := ckptFigureBytes(t, "fig4", path)
	if !bytes.Equal(base, got) {
		t.Fatalf("resume from torn checkpoint differs:\nbase: %s\ngot:  %s", base, got)
	}
	// The torn line must be gone from the repaired log.
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(repaired, []byte("TORNMARKER")) {
		t.Fatal("torn partial line still present after resume")
	}
}

// TestCheckpointMidFileCorruptionRefused: garbage anywhere but the tail is
// not a crash artifact and must fail loudly instead of being skipped.
func TestCheckpointMidFileCorruptionRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig4.ckpt")
	ckptFigureBytes(t, "fig4", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	lines[1] = []byte("{garbage\n")
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(WithScale(QuickScale), WithTrials(1), WithCheckpoint(path)); err == nil {
		t.Fatal("mid-file corruption was accepted")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// deadlockExperiment builds an unregistered experiment whose sweep deadlocks
// on exactly one cell, so the failure path can be exercised hermetically.
func deadlockExperiment() *Experiment {
	return &Experiment{
		ID:    "test-deadlock",
		Title: "synthetic deadlock",
		Runner: func(o Options) ([]*metrics.Figure, error) {
			stats, err := sweep{series: 1, points: 3}.run(o, func(o Options, _, pi, _ int) (float64, error) {
				if pi == 1 {
					eng := sim.NewEngine()
					sem := sim.NewSemaphore(eng, "slots", 1)
					eng.Go("holder", func(p *sim.Proc) {
						sem.Acquire(p)
						p.ParkReason("hold-forever") // never unparked
					})
					eng.Go("blocked", func(p *sim.Proc) {
						p.Delay(5)
						sem.Acquire(p)
					})
					if err := eng.Run(); err != nil {
						return 0, err
					}
					return 0, nil
				}
				return float64(10 * (pi + 1)), nil
			})
			if err != nil {
				return nil, err
			}
			fig := &metrics.Figure{ID: "test-deadlock", Title: "synthetic", XLabel: "x", YLabel: "y"}
			fig.Series = assemble([]string{"only"}, xsOf([]int{1, 2, 3}), stats)
			return []*metrics.Figure{fig}, nil
		},
	}
}

// TestDeadlockedCellRecordsFailureAndCompletes is the second acceptance
// gate: a cell whose simulation deadlocks must surface the sim.RunError in
// the checkpoint failure record — naming the parked procs — while the sweep
// completes the remaining cells and marks the figure Incomplete.
func TestDeadlockedCellRecordsFailureAndCompletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deadlock.ckpt")
	e := deadlockExperiment()
	figs, err := e.Run(WithScale(QuickScale), WithTrials(1), WithCheckpoint(path))
	if err != nil {
		t.Fatalf("sweep aborted instead of completing around the dead cell: %v", err)
	}
	if len(figs) != 1 || !figs[0].Incomplete {
		t.Fatalf("figure not marked Incomplete: %+v", figs[0])
	}
	pts := figs[0].Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].Stats.Mean != 10 || pts[2].Stats.Mean != 30 {
		t.Fatalf("healthy cells wrong: %+v", pts)
	}
	if !math.IsNaN(pts[1].Stats.Mean) || pts[1].Stats.N != 0 || pts[1].Stats.Failed != 1 {
		t.Fatalf("dead cell is not a NaN hole: %+v", pts[1].Stats)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"type":"fail"`, `"kind":"deadlock"`, "holder", "blocked", `"site":"slots"`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("checkpoint failure record missing %q:\n%s", frag, data)
		}
	}

	// Resume re-runs the failed cell (same deadlock) but replays the healthy
	// ones; the assembled figure is unchanged.
	figs2, err := e.Run(WithScale(QuickScale), WithTrials(1), WithCheckpoint(path))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(figuresToJSON(t, figs), figuresToJSON(t, figs2)) {
		t.Fatal("resumed incomplete figure differs")
	}
}

// TestWatchdogKillsStuckCellAfterRetries: a cell that exceeds the wall-clock
// deadline on every attempt is retried the configured number of times, then
// recorded as failed (kind "interrupted") without aborting the sweep.
func TestWatchdogKillsStuckCellAfterRetries(t *testing.T) {
	attempts := 0
	e := &Experiment{
		ID:    "test-watchdog",
		Title: "synthetic hang",
		Runner: func(o Options) ([]*metrics.Figure, error) {
			stats, err := sweep{series: 1, points: 2}.run(o, func(o Options, _, pi, _ int) (float64, error) {
				if pi == 1 {
					attempts++
					// An endlessly self-rescheduling proc: only the watchdog's
					// deadline (via Interrupt) ends this engine.
					eng := sim.NewEngine()
					eng.Interrupt = o.ctx.Err
					eng.Go("spinner", func(p *sim.Proc) {
						for {
							p.Delay(1)
						}
					})
					if err := eng.Run(); err != nil {
						return 0, err
					}
					return 0, nil
				}
				return 42, nil
			})
			if err != nil {
				return nil, err
			}
			fig := &metrics.Figure{ID: "test-watchdog", Title: "synthetic", XLabel: "x", YLabel: "y"}
			fig.Series = assemble([]string{"only"}, xsOf([]int{1, 2}), stats)
			return []*metrics.Figure{fig}, nil
		},
	}
	path := filepath.Join(t.TempDir(), "watchdog.ckpt")
	figs, err := e.Run(WithScale(QuickScale), WithTrials(1), WithParallel(1),
		WithCellTimeout(50*time.Millisecond), WithRetries(2), WithCheckpoint(path))
	if err != nil {
		t.Fatalf("watchdog failure aborted the sweep: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("stuck cell ran %d attempts, want 3 (1 + 2 retries)", attempts)
	}
	if !figs[0].Incomplete {
		t.Fatal("figure not marked Incomplete after watchdog kill")
	}
	if !math.IsNaN(figs[0].Series[0].Points[1].Stats.Mean) {
		t.Fatalf("killed cell not a hole: %+v", figs[0].Series[0].Points[1].Stats)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"type":"fail"`, `"kind":"interrupted"`, `"attempts":3`, "spinner"} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("failure record missing %q:\n%s", frag, data)
		}
	}
}

// TestWatchdogThreadsBudgetIntoKernelOptions pins the deterministic half of
// the watchdog: arming CellTimeout also sets the scale-derived event budget,
// and KernelOptions forwards both into each cell's simulation.
func TestWatchdogThreadsBudgetIntoKernelOptions(t *testing.T) {
	var o Options
	o.CellTimeout = time.Second
	ao, cancel := o.withWatchdog()
	defer cancel()
	if ao.maxEvents != EventBudget(false) {
		t.Fatalf("maxEvents = %d, want %d", ao.maxEvents, EventBudget(false))
	}
	if ao.ctx == nil {
		t.Fatal("watchdog did not install a deadline context")
	}
	if ks := ao.KernelOptions(); len(ks) != 2 {
		t.Fatalf("KernelOptions forwarded %d options, want 2 (context + budget)", len(ks))
	}
	o.Quick = true
	aq, cancel2 := o.withWatchdog()
	defer cancel2()
	if aq.maxEvents != EventBudget(true) {
		t.Fatalf("quick maxEvents = %d, want %d", aq.maxEvents, EventBudget(true))
	}
}
