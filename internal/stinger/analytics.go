package stinger

import (
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
)

// Graph analytics kernels in the style the paper's motivation names
// (STINGER's breadth-first search and connectivity). Both keep their
// per-vertex state (distances, labels) in striped simulated memory and do
// all per-vertex work with timed operations; only the level/iteration
// bookkeeping (frontier lists, convergence flags) is host-side, standing
// in for the runtime's work-queues.

// unvisited marks a vertex not yet reached by BFS.
const unvisited = ^uint64(0)

// BFS computes hop distances from src with a level-synchronous parallel
// expansion: each level's frontier is partitioned across worker threads
// spawned at their vertices' home nodelets; neighbour distance checks use
// memory-side atomics (no migration) and distance writes are posted
// stores. It returns the distance of every vertex (-1 if unreachable).
// BFS must run inside a kernel thread (within System.Run).
func BFS(t *machine.Thread, g *Graph, src, workers int) []int64 {
	sys := g.sys
	dist := sys.Mem.AllocStriped(g.cfg.Vertices)
	for v := 0; v < g.cfg.Vertices; v++ {
		sys.Mem.Write(dist.At(v), unvisited)
	}
	sys.Mem.Write(dist.At(src), 0)

	frontier := []int{src}
	level := uint64(0)
	inNext := make([]bool, g.cfg.Vertices)
	for len(frontier) > 0 {
		// Partition the frontier round-robin over min(workers, |frontier|)
		// threads, each spawned at its first vertex's home nodelet.
		active := workers
		if len(frontier) < active {
			active = len(frontier)
		}
		next := make([][]int, active)
		groups := make([][]int, sys.Nodelets())
		for w := 0; w < active; w++ {
			nl := frontier[w] % sys.Nodelets()
			groups[nl] = append(groups[nl], w)
		}
		spawnBFSLevel(t, g, groups, frontier, active, level, dist, next, inNext)
		frontier = frontier[:0]
		for _, part := range next {
			frontier = append(frontier, part...)
		}
		for _, v := range frontier {
			inNext[v] = false
		}
		level++
	}

	out := make([]int64, g.cfg.Vertices)
	for v := range out {
		d := sys.Mem.Read(dist.At(v))
		if d == unvisited {
			out[v] = -1
		} else {
			out[v] = int64(d)
		}
	}
	return out
}

// spawnBFSLevel expands one frontier level in parallel.
func spawnBFSLevel(t *machine.Thread, g *Graph, groups [][]int, frontier []int,
	active int, level uint64, dist memsys.Striped, next [][]int, inNext []bool) {
	for nl := range groups {
		for _, w := range groups[nl] {
			w := w
			nl := nl
			t.SpawnAt(nl, func(th *machine.Thread) {
				for fi := w; fi < len(frontier); fi += active {
					v := frontier[fi]
					g.WalkTimed(th, v, func(dst int, _ uint64) {
						// Memory-side atomic read: no migration.
						if th.FetchAdd(dist.At(dst), 0) == unvisited {
							th.Store(dist.At(dst), level+1) // posted
							if !inNext[dst] {
								inNext[dst] = true
								next[w] = append(next[w], dst)
							}
						}
					})
				}
			})
		}
	}
	t.Sync()
}

// Components computes weakly-connected component labels by iterative
// minimum-label propagation over the directed edges (treated as
// undirected): every vertex repeatedly adopts the minimum label among
// itself and its neighbours, and pushes its label to them, until a full
// pass changes nothing. It returns the final label of every vertex.
func Components(t *machine.Thread, g *Graph, workers int) []uint64 {
	sys := g.sys
	labels := sys.Mem.AllocStriped(g.cfg.Vertices)
	for v := 0; v < g.cfg.Vertices; v++ {
		sys.Mem.Write(labels.At(v), uint64(v))
	}
	for {
		changed := make([]bool, workers)
		emitPass := func(w int, th *machine.Thread) {
			for v := w; v < g.cfg.Vertices; v += workers {
				lv := th.FetchAdd(labels.At(v), 0)
				minL := lv
				g.WalkTimed(th, v, func(dst int, _ uint64) {
					ld := th.FetchAdd(labels.At(dst), 0)
					if ld < minL {
						minL = ld
					}
					if lv < ld {
						th.Store(labels.At(dst), lv) // pull dst down (posted)
						changed[w] = true
					}
				})
				if minL < lv {
					th.Store(labels.At(v), minL)
					changed[w] = true
				}
			}
		}
		for w := 0; w < workers; w++ {
			w := w
			t.SpawnAt(w%sys.Nodelets(), func(th *machine.Thread) { emitPass(w, th) })
		}
		t.Sync()
		any := false
		for _, c := range changed {
			any = any || c
		}
		if !any {
			break
		}
	}
	out := make([]uint64, g.cfg.Vertices)
	for v := range out {
		out[v] = sys.Mem.Read(labels.At(v))
	}
	return out
}
