// Package stinger is a small streaming-graph substrate in the style of
// STINGER, the framework the paper names as the target of its larger goal
// ("to develop a performance-portable, Emu-compatible API for Georgia
// Tech's STINGER"). It stores adjacency as chains of fixed-size edge
// blocks — the structure a dynamic graph maintains under insertions — over
// the Emu model's global address space:
//
//   - the vertex table (head, tail, degree per vertex) is striped across
//     nodelets, so vertex v's metadata lives on nodelet v mod N;
//   - edge blocks come from per-nodelet pools, claimed at simulated time
//     with memory-side FetchAdd on the pool cursor;
//   - the block placement policy is pluggable: PlaceAtVertex keeps a
//     vertex's blocks on its home nodelet, PlaceRoundRobin scatters them
//     (the fragmentation the paper's pointer-chasing benchmark bounds).
//
// Both edge insertion and traversal run as timed kernels on the machine
// model, so the package measures exactly what the paper's section I
// motivates: how a dynamic, fragmented data structure behaves on a
// migratory-thread machine.
package stinger

import (
	"fmt"

	"emuchick/internal/machine"
	"emuchick/internal/memsys"
)

// Placement selects where a vertex's next edge block is allocated.
type Placement int

const (
	// PlaceAtVertex allocates blocks on the vertex's home nodelet, the
	// locality-preserving policy.
	PlaceAtVertex Placement = iota
	// PlaceRoundRobin allocates blocks round-robin across nodelets,
	// modelling a fragmented shared pool.
	PlaceRoundRobin
)

// String names the policy.
func (p Placement) String() string {
	switch p {
	case PlaceAtVertex:
		return "at_vertex"
	case PlaceRoundRobin:
		return "round_robin"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Edge is one directed weighted edge.
type Edge struct {
	Src, Dst int
	Weight   uint64
}

// Config sizes a graph.
type Config struct {
	Vertices      int
	EdgesPerBlock int
	Placement     Placement
	// PoolBlocksPerNodelet pre-sizes each nodelet's block pool; inserts
	// beyond the pool fail. Sizing is a setup decision, as in STINGER.
	PoolBlocksPerNodelet int
}

// Block word layout: [next, count, dst0, w0, dst1, w1, ...].
const (
	blockNext  = 0
	blockCount = 1
	blockHdr   = 2
)

// nilRef marks an empty chain / last block.
const nilRef = ^uint64(0)

// Graph is a streaming graph resident in one machine's address space.
type Graph struct {
	sys *machine.System
	cfg Config

	// Striped vertex table: head, tail, degree.
	head memsys.Striped
	tail memsys.Striped
	deg  memsys.Striped

	// Per-nodelet block pools and their allocation cursors.
	pools   []memsys.Local
	cursors memsys.Striped // one word per nodelet, resident locally

	nextRR int // round-robin placement cursor (host-side policy state)
}

// New allocates the graph's vertex table and block pools. It must run
// before System.Run.
func New(sys *machine.System, cfg Config) (*Graph, error) {
	if cfg.Vertices <= 0 || cfg.EdgesPerBlock <= 0 || cfg.PoolBlocksPerNodelet <= 0 {
		return nil, fmt.Errorf("stinger: invalid config %+v", cfg)
	}
	g := &Graph{
		sys:  sys,
		cfg:  cfg,
		head: sys.Mem.AllocStriped(cfg.Vertices),
		tail: sys.Mem.AllocStriped(cfg.Vertices),
		deg:  sys.Mem.AllocStriped(cfg.Vertices),
	}
	blockWords := blockHdr + 2*cfg.EdgesPerBlock
	for nl := 0; nl < sys.Nodelets(); nl++ {
		g.pools = append(g.pools, sys.Mem.AllocLocal(nl, cfg.PoolBlocksPerNodelet*blockWords))
	}
	g.cursors = sys.Mem.AllocStriped(sys.Nodelets())
	for v := 0; v < cfg.Vertices; v++ {
		sys.Mem.Write(g.head.At(v), nilRef)
		sys.Mem.Write(g.tail.At(v), nilRef)
	}
	return g, nil
}

// Vertices reports the vertex count.
func (g *Graph) Vertices() int { return g.cfg.Vertices }

// blockWords is the word size of one edge block.
func (g *Graph) blockWords() int { return blockHdr + 2*g.cfg.EdgesPerBlock }

// placementNodelet picks the home nodelet for a new block of vertex v.
func (g *Graph) placementNodelet(v int) int {
	switch g.cfg.Placement {
	case PlaceAtVertex:
		return v % g.sys.Nodelets()
	case PlaceRoundRobin:
		nl := g.nextRR
		g.nextRR = (g.nextRR + 1) % g.sys.Nodelets()
		return nl
	default:
		panic("stinger: unknown placement")
	}
}

// InsertTimed appends one edge at simulated time, called from a kernel
// thread. Concurrent inserts to the SAME source vertex must be serialized
// by the caller (partition batches by source), exactly as lock-free
// STINGER updates partition work.
func (g *Graph) InsertTimed(t *machine.Thread, e Edge) error {
	if e.Src < 0 || e.Src >= g.cfg.Vertices || e.Dst < 0 || e.Dst >= g.cfg.Vertices {
		return fmt.Errorf("stinger: edge %v out of range", e)
	}
	// Reading the vertex record migrates the thread to v's home nodelet.
	tail := t.Load(g.tail.At(e.Src))
	var tailAddr memsys.Addr
	needBlock := tail == nilRef
	if !needBlock {
		tailAddr = memsys.Addr(tail)
		cnt := t.Load(tailAddr.Plus(blockCount))
		needBlock = int(cnt) >= g.cfg.EdgesPerBlock
	}
	if needBlock {
		nl := g.placementNodelet(e.Src)
		// Claim a pool slot with a memory-side atomic; no migration.
		slot := t.FetchAdd(g.cursors.At(nl), 1)
		if int(slot) >= g.cfg.PoolBlocksPerNodelet {
			return fmt.Errorf("stinger: nodelet %d block pool exhausted", nl)
		}
		blk := g.pools[nl].At(int(slot) * g.blockWords())
		// Initialize the block (posted remote stores if the pool is on
		// another nodelet).
		t.Store(blk.Plus(blockNext), nilRef)
		t.Store(blk.Plus(blockCount), 0)
		if tail == nilRef {
			t.Store(g.head.At(e.Src), uint64(blk))
		} else {
			t.Store(tailAddr.Plus(blockNext), uint64(blk))
		}
		t.Store(g.tail.At(e.Src), uint64(blk))
		tailAddr = blk
	}
	cnt := t.Load(tailAddr.Plus(blockCount)) // may migrate to the block's nodelet
	t.Store(tailAddr.Plus(blockHdr+2*int(cnt)), uint64(e.Dst))
	t.Store(tailAddr.Plus(blockHdr+2*int(cnt)+1), e.Weight)
	t.Store(tailAddr.Plus(blockCount), cnt+1)
	t.RemoteAdd(g.deg.At(e.Src), 1)
	return nil
}

// BuildInsert appends one edge functionally at setup time (zero simulated
// time) — for constructing an initial graph before the timed region.
func (g *Graph) BuildInsert(e Edge) error {
	if e.Src < 0 || e.Src >= g.cfg.Vertices || e.Dst < 0 || e.Dst >= g.cfg.Vertices {
		return fmt.Errorf("stinger: edge %v out of range", e)
	}
	mem := g.sys.Mem
	tail := mem.Read(g.tail.At(e.Src))
	var tailAddr memsys.Addr
	needBlock := tail == nilRef
	if !needBlock {
		tailAddr = memsys.Addr(tail)
		needBlock = int(mem.Read(tailAddr.Plus(blockCount))) >= g.cfg.EdgesPerBlock
	}
	if needBlock {
		nl := g.placementNodelet(e.Src)
		slot := mem.Read(g.cursors.At(nl))
		if int(slot) >= g.cfg.PoolBlocksPerNodelet {
			return fmt.Errorf("stinger: nodelet %d block pool exhausted", nl)
		}
		mem.Write(g.cursors.At(nl), slot+1)
		blk := g.pools[nl].At(int(slot) * g.blockWords())
		mem.Write(blk.Plus(blockNext), nilRef)
		mem.Write(blk.Plus(blockCount), 0)
		if tail == nilRef {
			mem.Write(g.head.At(e.Src), uint64(blk))
		} else {
			mem.Write(tailAddr.Plus(blockNext), uint64(blk))
		}
		mem.Write(g.tail.At(e.Src), uint64(blk))
		tailAddr = blk
	}
	cnt := mem.Read(tailAddr.Plus(blockCount))
	mem.Write(tailAddr.Plus(blockHdr+2*int(cnt)), uint64(e.Dst))
	mem.Write(tailAddr.Plus(blockHdr+2*int(cnt)+1), e.Weight)
	mem.Write(tailAddr.Plus(blockCount), cnt+1)
	mem.Write(g.deg.At(e.Src), mem.Read(g.deg.At(e.Src))+1)
	return nil
}

// Degree functionally reads vertex v's degree.
func (g *Graph) Degree(v int) uint64 { return g.sys.Mem.Read(g.deg.At(v)) }

// WalkTimed traverses vertex v's chain at simulated time, invoking visit
// for every (dst, weight) pair. The first load migrates the thread to v's
// home nodelet; each block hop may migrate again under PlaceRoundRobin.
func (g *Graph) WalkTimed(t *machine.Thread, v int, visit func(dst int, w uint64)) {
	addr := t.Load(g.head.At(v))
	for addr != nilRef {
		blk := memsys.Addr(addr)
		next := t.Load(blk.Plus(blockNext))
		cnt := t.Load(blk.Plus(blockCount))
		for e := 0; e < int(cnt); e++ {
			dst := t.Load(blk.Plus(blockHdr + 2*e))
			w := t.Load(blk.Plus(blockHdr + 2*e + 1))
			visit(int(dst), w)
		}
		t.Compute(8)
		addr = next
	}
}

// Walk functionally traverses vertex v's chain at setup/verification time.
func (g *Graph) Walk(v int, visit func(dst int, w uint64)) {
	mem := g.sys.Mem
	addr := mem.Read(g.head.At(v))
	for addr != nilRef {
		blk := memsys.Addr(addr)
		next := mem.Read(blk.Plus(blockNext))
		cnt := mem.Read(blk.Plus(blockCount))
		for e := 0; e < int(cnt); e++ {
			visit(int(mem.Read(blk.Plus(blockHdr+2*e))), mem.Read(blk.Plus(blockHdr+2*e+1)))
		}
		addr = next
	}
}
