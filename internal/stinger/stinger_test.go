package stinger

import (
	"testing"
	"testing/quick"

	"emuchick/internal/machine"
	"emuchick/internal/workload"
)

func newGraph(t *testing.T, placement Placement) (*machine.System, *Graph) {
	t.Helper()
	sys := machine.NewSystem(machine.HardwareChick())
	g, err := New(sys, Config{
		Vertices: 64, EdgesPerBlock: 4, Placement: placement, PoolBlocksPerNodelet: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

func TestBuildInsertAndWalk(t *testing.T) {
	_, g := newGraph(t, PlaceAtVertex)
	edges := []Edge{{0, 1, 10}, {0, 2, 20}, {0, 3, 30}, {0, 4, 40}, {0, 5, 50}, {7, 0, 5}}
	for _, e := range edges {
		if err := g.BuildInsert(e); err != nil {
			t.Fatal(err)
		}
	}
	if g.Degree(0) != 5 || g.Degree(7) != 1 || g.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(7), g.Degree(3))
	}
	var got []Edge
	g.Walk(0, func(dst int, w uint64) { got = append(got, Edge{0, dst, w}) })
	if len(got) != 5 {
		t.Fatalf("walk found %d edges", len(got))
	}
	for i, e := range got {
		if e != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, e, edges[i])
		}
	}
}

func TestInsertTimedMatchesBuildInsert(t *testing.T) {
	sysA, a := newGraph(t, PlaceAtVertex)
	_, b := newGraph(t, PlaceAtVertex)
	rng := workload.NewRNG(7)
	var edges []Edge
	for i := 0; i < 200; i++ {
		edges = append(edges, Edge{rng.Intn(64), rng.Intn(64), rng.Uint64() % 100})
	}
	for _, e := range edges {
		if err := b.BuildInsert(e); err != nil {
			t.Fatal(err)
		}
	}
	// Timed inserts, partitioned by source so per-vertex order is
	// preserved and concurrent appenders never share a chain.
	_, err := sysA.Run(func(root *machine.Thread) {
		for w := 0; w < 8; w++ {
			w := w
			root.SpawnAt(w, func(th *machine.Thread) {
				for _, e := range edges {
					if e.Src%8 == w {
						if err := a.InsertTimed(th, e); err != nil {
							t.Error(err)
							return
						}
					}
				}
			})
		}
		root.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 64; v++ {
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("vertex %d degree %d vs %d", v, a.Degree(v), b.Degree(v))
		}
		var wa, wb []Edge
		a.Walk(v, func(dst int, w uint64) { wa = append(wa, Edge{v, dst, w}) })
		b.Walk(v, func(dst int, w uint64) { wb = append(wb, Edge{v, dst, w}) })
		if len(wa) != len(wb) {
			t.Fatalf("vertex %d edge counts differ", v)
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("vertex %d edge %d: %+v vs %+v", v, i, wa[i], wb[i])
			}
		}
	}
}

func TestWalkTimedVisitsAllEdges(t *testing.T) {
	sys, g := newGraph(t, PlaceAtVertex)
	rng := workload.NewRNG(9)
	want := map[int]uint64{}
	for i := 0; i < 300; i++ {
		e := Edge{rng.Intn(64), rng.Intn(64), rng.Uint64()%50 + 1}
		if err := g.BuildInsert(e); err != nil {
			t.Fatal(err)
		}
		want[e.Src] += e.Weight
	}
	got := make([]uint64, 64)
	_, err := sys.Run(func(root *machine.Thread) {
		for w := 0; w < 16; w++ {
			w := w
			root.SpawnAt(w%8, func(th *machine.Thread) {
				for v := w; v < 64; v += 16 {
					var sum uint64
					g.WalkTimed(th, v, func(dst int, wt uint64) { sum += wt })
					got[v] = sum
				}
			})
		}
		root.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 64; v++ {
		if got[v] != want[v] {
			t.Fatalf("vertex %d weight sum %d, want %d", v, got[v], want[v])
		}
	}
}

func TestPlacementDrivesMigrations(t *testing.T) {
	walkAll := func(placement Placement) uint64 {
		sys, g := newGraph(t, placement)
		rng := workload.NewRNG(11)
		for i := 0; i < 400; i++ {
			if err := g.BuildInsert(Edge{rng.Intn(64), rng.Intn(64), 1}); err != nil {
				t.Fatal(err)
			}
		}
		_, err := sys.Run(func(root *machine.Thread) {
			for w := 0; w < 8; w++ {
				w := w
				root.SpawnAt(w, func(th *machine.Thread) {
					for v := w; v < 64; v += 8 {
						g.WalkTimed(th, v, func(int, uint64) {})
					}
				})
			}
			root.Sync()
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Counters.TotalMigrations()
	}
	clustered := walkAll(PlaceAtVertex)
	scattered := walkAll(PlaceRoundRobin)
	if clustered != 0 {
		t.Fatalf("at_vertex placement migrated %d times", clustered)
	}
	if scattered == 0 {
		t.Fatal("round_robin placement should migrate")
	}
}

func TestPoolExhaustion(t *testing.T) {
	sys := machine.NewSystem(machine.HardwareChick())
	g, err := New(sys, Config{Vertices: 8, EdgesPerBlock: 2, Placement: PlaceAtVertex, PoolBlocksPerNodelet: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0's pool (nodelet 0) holds one block = 2 edges.
	if err := g.BuildInsert(Edge{0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.BuildInsert(Edge{0, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.BuildInsert(Edge{0, 3, 1}); err == nil {
		t.Fatal("pool exhaustion not reported")
	}
}

func TestConfigAndEdgeValidation(t *testing.T) {
	sys := machine.NewSystem(machine.HardwareChick())
	if _, err := New(sys, Config{Vertices: 0, EdgesPerBlock: 1, PoolBlocksPerNodelet: 1}); err == nil {
		t.Fatal("zero vertices accepted")
	}
	_, g := newGraph(t, PlaceAtVertex)
	if err := g.BuildInsert(Edge{-1, 0, 1}); err == nil {
		t.Fatal("negative src accepted")
	}
	if err := g.BuildInsert(Edge{0, 64, 1}); err == nil {
		t.Fatal("dst out of range accepted")
	}
	if PlaceAtVertex.String() != "at_vertex" || PlaceRoundRobin.String() != "round_robin" {
		t.Fatal("placement names wrong")
	}
	if Placement(9).String() == "" {
		t.Fatal("unknown placement String empty")
	}
}

// Property: for any edge batch, walking every vertex recovers exactly the
// inserted multiset per source, in insertion order.
func TestInsertWalkRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%150) + 1
		sys := machine.NewSystem(machine.HardwareChick())
		g, err := New(sys, Config{
			Vertices: 32, EdgesPerBlock: 3, Placement: PlaceRoundRobin, PoolBlocksPerNodelet: 128,
		})
		if err != nil {
			return false
		}
		rng := workload.NewRNG(seed)
		perSrc := map[int][]Edge{}
		for i := 0; i < n; i++ {
			e := Edge{rng.Intn(32), rng.Intn(32), rng.Uint64() % 1000}
			if err := g.BuildInsert(e); err != nil {
				return false
			}
			perSrc[e.Src] = append(perSrc[e.Src], e)
		}
		for v := 0; v < 32; v++ {
			var got []Edge
			g.Walk(v, func(dst int, w uint64) { got = append(got, Edge{v, dst, w}) })
			if len(got) != len(perSrc[v]) || int(g.Degree(v)) != len(got) {
				return false
			}
			for i := range got {
				if got[i] != perSrc[v][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
