package stinger

import (
	"testing"
	"testing/quick"

	"emuchick/internal/machine"
	"emuchick/internal/workload"
)

// refBFS is a host-side reference breadth-first search over the graph's
// functional adjacency.
func refBFS(g *Graph, src int) []int64 {
	dist := make([]int64, g.Vertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Walk(v, func(dst int, _ uint64) {
			if dist[dst] == -1 {
				dist[dst] = dist[v] + 1
				queue = append(queue, dst)
			}
		})
	}
	return dist
}

// refComponents computes weakly-connected components with union-find.
func refComponents(g *Graph) []int {
	parent := make([]int, g.Vertices())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < g.Vertices(); v++ {
		g.Walk(v, func(dst int, _ uint64) {
			a, b := find(v), find(dst)
			if a != b {
				parent[a] = b
			}
		})
	}
	roots := make([]int, g.Vertices())
	for v := range roots {
		roots[v] = find(v)
	}
	return roots
}

func randomGraph(t *testing.T, sys *machine.System, vertices, edges int, seed uint64) *Graph {
	t.Helper()
	g, err := New(sys, Config{
		Vertices: vertices, EdgesPerBlock: 3,
		Placement: PlaceAtVertex, PoolBlocksPerNodelet: edges + vertices,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(seed)
	for i := 0; i < edges; i++ {
		if err := g.BuildInsert(Edge{rng.Intn(vertices), rng.Intn(vertices), 1}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestBFSMatchesReference(t *testing.T) {
	sys := machine.NewSystem(machine.HardwareChick())
	g := randomGraph(t, sys, 48, 120, 3)
	want := refBFS(g, 0)
	var got []int64
	_, err := sys.Run(func(root *machine.Thread) {
		got = BFS(root, g, 0, 16)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSLinearChain(t *testing.T) {
	sys := machine.NewSystem(machine.HardwareChick())
	g, err := New(sys, Config{Vertices: 20, EdgesPerBlock: 2, Placement: PlaceAtVertex, PoolBlocksPerNodelet: 32})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 19; v++ {
		if err := g.BuildInsert(Edge{v, v + 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	if _, err := sys.Run(func(root *machine.Thread) {
		got = BFS(root, g, 0, 8)
	}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if got[v] != int64(v) {
			t.Fatalf("chain dist[%d] = %d", v, got[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	sys := machine.NewSystem(machine.HardwareChick())
	g, err := New(sys, Config{Vertices: 8, EdgesPerBlock: 2, Placement: PlaceAtVertex, PoolBlocksPerNodelet: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.BuildInsert(Edge{0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	var got []int64
	if _, err := sys.Run(func(root *machine.Thread) {
		got = BFS(root, g, 0, 4)
	}); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 || got[7] != -1 {
		t.Fatalf("dist = %v", got)
	}
}

func TestComponentsMatchReference(t *testing.T) {
	sys := machine.NewSystem(machine.HardwareChick())
	g := randomGraph(t, sys, 40, 50, 9)
	wantRoots := refComponents(g)
	var got []uint64
	if _, err := sys.Run(func(root *machine.Thread) {
		got = Components(root, g, 16)
	}); err != nil {
		t.Fatal(err)
	}
	// Labels must induce the same partition as union-find roots.
	for a := 0; a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			sameRef := wantRoots[a] == wantRoots[b]
			sameGot := got[a] == got[b]
			if sameRef != sameGot {
				t.Fatalf("vertices %d,%d: reference same=%v, got same=%v", a, b, sameRef, sameGot)
			}
		}
	}
}

// Property: BFS distances match the reference for random graphs and
// sources.
func TestBFSProperty(t *testing.T) {
	f := func(seed uint64, srcRaw uint8) bool {
		sys := machine.NewSystem(machine.HardwareChick())
		g, err := New(sys, Config{
			Vertices: 24, EdgesPerBlock: 2, Placement: PlaceRoundRobin, PoolBlocksPerNodelet: 128,
		})
		if err != nil {
			return false
		}
		rng := workload.NewRNG(seed)
		for i := 0; i < 40; i++ {
			if err := g.BuildInsert(Edge{rng.Intn(24), rng.Intn(24), 1}); err != nil {
				return false
			}
		}
		src := int(srcRaw) % 24
		want := refBFS(g, src)
		var got []int64
		if _, err := sys.Run(func(root *machine.Thread) {
			got = BFS(root, g, src, 8)
		}); err != nil {
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
