package cilk

import (
	"testing"
	"testing/quick"

	"emuchick/internal/machine"
)

func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		SerialSpawn:          "serial_spawn",
		RecursiveSpawn:       "recursive_spawn",
		SerialRemoteSpawn:    "serial_remote_spawn",
		RecursiveRemoteSpawn: "recursive_remote_spawn",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
		parsed, err := ParseStrategy(name)
		if err != nil || parsed != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, parsed, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted a bogus name")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy has empty String")
	}
}

func TestRemoteProperty(t *testing.T) {
	if SerialSpawn.Remote() || RecursiveSpawn.Remote() {
		t.Error("local strategies report Remote")
	}
	if !SerialRemoteSpawn.Remote() || !RecursiveRemoteSpawn.Remote() {
		t.Error("remote strategies do not report Remote")
	}
}

// runWorkers executes SpawnWorkers under the given strategy and returns the
// system plus a per-worker record of (ran, nodelet at start).
func runWorkers(t *testing.T, workers int, strat Strategy) (*machine.System, []int) {
	t.Helper()
	s := machine.NewSystem(machine.HardwareChick())
	startNodelet := make([]int, workers)
	for i := range startNodelet {
		startNodelet[i] = -1
	}
	_, err := s.Run(func(th *machine.Thread) {
		SpawnWorkers(th, 8, workers, strat, func(w *machine.Thread, id int) {
			if startNodelet[id] != -1 {
				t.Errorf("worker %d ran twice", id)
			}
			startNodelet[id] = w.Nodelet()
			w.Compute(100)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, startNodelet
}

func TestSpawnWorkersRunsEveryWorkerOnce(t *testing.T) {
	for _, strat := range Strategies {
		for _, workers := range []int{1, 3, 8, 17, 64} {
			_, starts := runWorkers(t, workers, strat)
			for id, nl := range starts {
				if nl == -1 {
					t.Fatalf("%v: worker %d of %d never ran", strat, id, workers)
				}
			}
		}
	}
}

func TestRemoteStrategiesPlaceWorkersOnTheirNodelets(t *testing.T) {
	for _, strat := range []Strategy{SerialRemoteSpawn, RecursiveRemoteSpawn} {
		_, starts := runWorkers(t, 24, strat)
		for id, nl := range starts {
			if nl != id%8 {
				t.Errorf("%v: worker %d started on nodelet %d, want %d", strat, id, nl, id%8)
			}
		}
	}
}

func TestLocalStrategiesStartOnRootNodelet(t *testing.T) {
	for _, strat := range []Strategy{SerialSpawn, RecursiveSpawn} {
		_, starts := runWorkers(t, 24, strat)
		for id, nl := range starts {
			if nl != 0 {
				t.Errorf("%v: worker %d started on nodelet %d, want 0", strat, id, nl)
			}
		}
	}
}

func TestRemoteStrategiesAvoidMigrations(t *testing.T) {
	// Remote spawning places threads at their data, so a worker touching
	// only nodelet-local memory never migrates.
	s := machine.NewSystem(machine.HardwareChick())
	arr := s.Mem.AllocStriped(64)
	_, err := s.Run(func(th *machine.Thread) {
		SpawnWorkers(th, 8, 16, SerialRemoteSpawn, func(w *machine.Thread, id int) {
			for i := id % 8; i < 64; i += 8 {
				w.Load(arr.At(i))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := s.Counters.TotalMigrations(); m != 0 {
		t.Fatalf("remote-spawn workers migrated %d times", m)
	}
}

func TestSerialSpawnWorkersMigrateToData(t *testing.T) {
	s := machine.NewSystem(machine.HardwareChick())
	arr := s.Mem.AllocStriped(64)
	_, err := s.Run(func(th *machine.Thread) {
		SpawnWorkers(th, 8, 16, SerialSpawn, func(w *machine.Thread, id int) {
			for i := id % 8; i < 64; i += 8 {
				w.Load(arr.At(i))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Workers for nodelets 1..7 (14 of 16 workers) must migrate at least once.
	if m := s.Counters.TotalMigrations(); m < 14 {
		t.Fatalf("expected >= 14 migrations, got %d", m)
	}
}

func TestSpawnWorkersZeroAndBounds(t *testing.T) {
	s := machine.NewSystem(machine.HardwareChick())
	_, err := s.Run(func(th *machine.Thread) {
		SpawnWorkers(th, 8, 0, SerialSpawn, func(*machine.Thread, int) {
			t.Error("worker ran for workers=0")
		})
		func() {
			defer func() {
				if recover() == nil {
					t.Error("nodelets out of range did not panic")
				}
			}()
			SpawnWorkers(th, 99, 1, SerialSpawn, func(*machine.Thread, int) {})
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpawnGroupedPlacesWorkersAndRunsOnce(t *testing.T) {
	s := machine.NewSystem(machine.HardwareChick())
	// Workers 0..9 spread unevenly: nodelet 1 gets {0,1,2}, nodelet 4
	// gets {3}, nodelet 7 gets {4..9}; nodelets 0,2,3,5,6 get none.
	groups := make([][]int, 8)
	groups[1] = []int{0, 1, 2}
	groups[4] = []int{3}
	groups[7] = []int{4, 5, 6, 7, 8, 9}
	startNodelet := make([]int, 10)
	for i := range startNodelet {
		startNodelet[i] = -1
	}
	_, err := s.Run(func(th *machine.Thread) {
		SpawnGrouped(th, groups, func(w *machine.Thread, id int) {
			if startNodelet[id] != -1 {
				t.Errorf("worker %d ran twice", id)
			}
			startNodelet[id] = w.Nodelet()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 1, 4, 7, 7, 7, 7, 7, 7}
	for id, nl := range startNodelet {
		if nl != want[id] {
			t.Fatalf("worker %d started on nodelet %d, want %d", id, nl, want[id])
		}
	}
}

func TestSpawnGroupedEmpty(t *testing.T) {
	s := machine.NewSystem(machine.HardwareChick())
	_, err := s.Run(func(th *machine.Thread) {
		SpawnGrouped(th, make([][]int, 8), func(*machine.Thread, int) {
			t.Error("worker ran for empty groups")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: SpawnGrouped runs every id exactly once at its group's nodelet
// for any random grouping.
func TestSpawnGroupedCoverageProperty(t *testing.T) {
	f := func(assign []uint8) bool {
		if len(assign) > 40 {
			assign = assign[:40]
		}
		s := machine.NewSystem(machine.HardwareChick())
		groups := make([][]int, 8)
		want := make([]int, len(assign))
		for id, a := range assign {
			nl := int(a % 8)
			groups[nl] = append(groups[nl], id)
			want[id] = nl
		}
		got := make([]int, len(assign))
		for i := range got {
			got[i] = -1
		}
		_, err := s.Run(func(th *machine.Thread) {
			SpawnGrouped(th, groups, func(w *machine.Thread, id int) {
				if got[id] != -1 {
					got[id] = -2 // duplicate marker
					return
				}
				got[id] = w.Nodelet()
			})
		})
		if err != nil {
			return false
		}
		for id := range want {
			if got[id] != want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversRangeExactly(t *testing.T) {
	s := machine.NewSystem(machine.HardwareChick())
	const n = 100
	hits := make([]int, n)
	_, err := s.Run(func(th *machine.Thread) {
		ParallelFor(th, n, 7, func(w *machine.Thread, lo, hi int) {
			if hi-lo > 7 {
				t.Errorf("chunk [%d,%d) exceeds grain", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	s := machine.NewSystem(machine.HardwareChick())
	_, err := s.Run(func(th *machine.Thread) {
		ParallelFor(th, 0, 4, func(*machine.Thread, int, int) {
			t.Error("body ran for n=0")
		})
		ran := false
		ParallelFor(th, 1, 0, func(w *machine.Thread, lo, hi int) {
			// grain <= 0 is clamped to 1
			if lo != 0 || hi != 1 {
				t.Errorf("chunk [%d,%d)", lo, hi)
			}
			ran = true
		})
		if !ran {
			t.Error("n=1 body never ran")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: for any (workers, strategy), every worker id in [0, workers)
// runs exactly once.
func TestSpawnWorkersCoverageProperty(t *testing.T) {
	f := func(w uint8, sIdx uint8) bool {
		workers := int(w%48) + 1
		strat := Strategies[int(sIdx)%len(Strategies)]
		s := machine.NewSystem(machine.HardwareChick())
		count := make([]int, workers)
		_, err := s.Run(func(th *machine.Thread) {
			SpawnWorkers(th, 8, workers, strat, func(_ *machine.Thread, id int) {
				count[id]++
			})
		})
		if err != nil {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ParallelFor partitions [0,n) into disjoint covering chunks for
// any n and grain.
func TestParallelForPartitionProperty(t *testing.T) {
	f := func(nRaw, gRaw uint8) bool {
		n := int(nRaw % 200)
		grain := int(gRaw % 32)
		s := machine.NewSystem(machine.HardwareChick())
		hits := make([]int, n)
		_, err := s.Run(func(th *machine.Thread) {
			ParallelFor(th, n, grain, func(_ *machine.Thread, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
		})
		if err != nil {
			return false
		}
		for _, h := range hits {
			if h != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
