package cilk

import (
	"emuchick/internal/machine"
	"emuchick/internal/memsys"
)

// SumReducer is the migratory-thread analogue of a Cilk sum reducer — a
// feature the paper notes was "in progress" for the Emu toolchain
// (section III-A). Each nodelet owns a private partial-sum cell, workers
// accumulate into the cell of whatever nodelet they currently occupy using
// memory-side atomics (local, contention-free across nodelets, and never
// causing a migration), and Reduce gathers the partials with remote
// atomics, again without migrating.
type SumReducer struct {
	cells memsys.Replicated
}

// NewSumReducer allocates one partial-sum cell per nodelet. It must be
// called before System.Run (allocation is a setup-time operation).
func NewSumReducer(sys *machine.System) *SumReducer {
	return &SumReducer{cells: sys.Mem.AllocReplicated(1)}
}

// Add accumulates v into the calling thread's resident nodelet's cell.
func (r *SumReducer) Add(t *machine.Thread, v uint64) {
	t.RemoteAdd(r.cells.At(t.Nodelet(), 0), v)
}

// Reduce gathers every nodelet's partial and returns the total. The reads
// use blocking memory-side atomics (FetchAdd of zero), so the reducing
// thread stays put. Reduce must only be called after all Adds have been
// joined (e.g. after Sync).
func (r *SumReducer) Reduce(t *machine.Thread) uint64 {
	var total uint64
	for nl := 0; nl < t.System().Nodelets(); nl++ {
		total += t.FetchAdd(r.cells.At(nl, 0), 0)
	}
	return total
}

// Value functionally reads the current total without simulated time — a
// verification helper, not part of the machine model.
func (r *SumReducer) Value(sys *machine.System) uint64 {
	var total uint64
	for nl := 0; nl < sys.Nodelets(); nl++ {
		total += sys.Mem.Read(r.cells.At(nl, 0))
	}
	return total
}
