package cilk

import (
	"testing"

	"emuchick/internal/machine"
	"emuchick/internal/sim"
)

func TestSumReducerCorrectness(t *testing.T) {
	sys := machine.NewSystem(machine.HardwareChick())
	red := NewSumReducer(sys)
	var got uint64
	_, err := sys.Run(func(th *machine.Thread) {
		SpawnWorkers(th, 8, 32, SerialRemoteSpawn, func(w *machine.Thread, id int) {
			for k := 0; k <= id; k++ {
				red.Add(w, 1)
			}
		})
		got = red.Reduce(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(32 * 33 / 2) // sum of 1..32
	if got != want {
		t.Fatalf("Reduce = %d, want %d", got, want)
	}
	if v := red.Value(sys); v != want {
		t.Fatalf("Value = %d, want %d", v, want)
	}
}

func TestSumReducerNeverMigrates(t *testing.T) {
	sys := machine.NewSystem(machine.HardwareChick())
	red := NewSumReducer(sys)
	_, err := sys.Run(func(th *machine.Thread) {
		SpawnWorkers(th, 8, 16, SerialRemoteSpawn, func(w *machine.Thread, id int) {
			for k := 0; k < 10; k++ {
				red.Add(w, uint64(k))
			}
		})
		red.Reduce(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := sys.Counters.TotalMigrations(); m != 0 {
		t.Fatalf("reducer caused %d migrations", m)
	}
}

func TestSumReducerBeatsSharedCell(t *testing.T) {
	// Accumulating through per-nodelet cells spreads the atomic traffic
	// over all channels; a single shared cell serializes on one. The
	// reducer must be measurably faster under load.
	const workers, adds = 64, 64
	elapsedReducer := func() sim.Time {
		sys := machine.NewSystem(machine.HardwareChick())
		red := NewSumReducer(sys)
		elapsed, err := sys.Run(func(th *machine.Thread) {
			SpawnWorkers(th, 8, workers, SerialRemoteSpawn, func(w *machine.Thread, id int) {
				for k := 0; k < adds; k++ {
					red.Add(w, 1)
				}
			})
			red.Reduce(th)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}()
	elapsedShared := func() sim.Time {
		sys := machine.NewSystem(machine.HardwareChick())
		cell := sys.Mem.AllocLocal(0, 1)
		elapsed, err := sys.Run(func(th *machine.Thread) {
			SpawnWorkers(th, 8, workers, SerialRemoteSpawn, func(w *machine.Thread, id int) {
				for k := 0; k < adds; k++ {
					w.RemoteAdd(cell.At(0), 1)
				}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Mem.Read(cell.At(0)); got != workers*adds {
			t.Fatalf("shared cell = %d", got)
		}
		return elapsed
	}()
	if elapsedReducer >= elapsedShared {
		t.Fatalf("reducer (%v) not faster than shared cell (%v)", elapsedReducer, elapsedShared)
	}
}
