package cilk

import (
	"fmt"

	"emuchick/internal/machine"
)

// Continuation-form spawn trees: SpawnWorkers and SpawnGrouped restated as
// resumable state machines over machine.CThread. Each machine performs the
// IDENTICAL sequence of spawn/sync operations as its goroutine twin — same
// tree shape, same spawn order, same explicit syncs — so a kernel ported to
// the continuation engine produces a bit-identical event stream. The
// recursive helpers (spawnRangeLocal and friends) become iterative drivers:
// the caller-side half of each recursion is a loop that shrinks its range,
// and the spawned-side half is a coordinator CBody carrying the subrange.

// contSpawner is one resumable caller-side spawn loop. drive issues spawns
// until it parks (parked=true: the enclosing Step must return) or until
// every spawn in its range has been issued (parked=false).
type contSpawner interface {
	drive(t *machine.CThread, mk func(int) machine.CBody) (parked bool)
}

// contCoord is the spawned-side coordinator shape shared by every strategy:
// run a spawner over the delegated subrange, then an explicit sync — the
// continuation of the goroutine closures `func(c) { spawnXxx(c, ...); c.Sync() }`.
type contCoord struct {
	s      contSpawner
	mk     func(int) machine.CBody
	synced bool
}

//emu:nohandoff CBody contract: park state, never the goroutine
func (c *contCoord) Step(t *machine.CThread) bool {
	if !c.synced {
		if c.s.drive(t, c.mk) {
			return false
		}
		c.synced = true
		if t.CSync() {
			return false
		}
	}
	return true
}

// contSerial mirrors SerialSpawn's caller loop: workers local spawns in id
// order.
type contSerial struct{ w, workers int }

func (s *contSerial) drive(t *machine.CThread, mk func(int) machine.CBody) bool {
	for s.w < s.workers {
		w := s.w
		s.w++
		if t.CSpawn(mk(w)) {
			return true
		}
	}
	return false
}

// contRange mirrors spawnRangeLocal's caller side: spawn a coordinator for
// the lower half, then descend into the upper half in place.
type contRange struct{ lo, hi int }

func (r *contRange) drive(t *machine.CThread, mk func(int) machine.CBody) bool {
	for {
		switch n := r.hi - r.lo; {
		case n <= 0:
			return false
		case n == 1:
			w := r.lo
			r.lo = r.hi
			if t.CSpawn(mk(w)) {
				return true
			}
		default:
			mid := r.lo + n/2
			lower := contRange{lo: r.lo, hi: mid}
			r.lo = mid
			if t.CSpawn(&contCoord{s: &lower, mk: mk}) {
				return true
			}
		}
	}
}

// contIDs mirrors spawnIDsLocal's caller side over an explicit id list.
type contIDs struct{ ids []int }

func (s *contIDs) drive(t *machine.CThread, mk func(int) machine.CBody) bool {
	for {
		switch n := len(s.ids); {
		case n == 0:
			return false
		case n == 1:
			id := s.ids[0]
			s.ids = nil
			if t.CSpawn(mk(id)) {
				return true
			}
		default:
			mid := n / 2
			left := contIDs{ids: s.ids[:mid]}
			s.ids = s.ids[mid:]
			if t.CSpawn(&contCoord{s: &left, mk: mk}) {
				return true
			}
		}
	}
}

// contSerialRemote mirrors SerialRemoteSpawn's caller loop: one remote spawn
// per nodelet, each hosting a serial per-nodelet coordinator.
type contSerialRemote struct{ nl, nodelets, workers int }

func (s *contSerialRemote) drive(t *machine.CThread, mk func(int) machine.CBody) bool {
	for s.nl < s.nodelets && s.nl < s.workers {
		nl := s.nl
		s.nl++
		coord := &contSerialNodelet{w: nl, step: s.nodelets, workers: s.workers}
		if t.CSpawnAt(nl, &contCoord{s: coord, mk: mk}) {
			return true
		}
	}
	return false
}

// contSerialNodelet is the per-nodelet serial spawner of SerialRemoteSpawn:
// workers nl, nl+nodelets, nl+2*nodelets, ...
type contSerialNodelet struct{ w, step, workers int }

func (s *contSerialNodelet) drive(t *machine.CThread, mk func(int) machine.CBody) bool {
	for s.w < s.workers {
		w := s.w
		s.w += s.step
		if t.CSpawn(mk(w)) {
			return true
		}
	}
	return false
}

// contNodelets mirrors spawnNodeletsRecursive's caller side: spawn the upper
// half of the nodelet range at its first nodelet, descend into the lower half.
type contNodelets struct{ nodelets, nlo, nhi, workers int }

func (s *contNodelets) drive(t *machine.CThread, mk func(int) machine.CBody) bool {
	for {
		switch n := s.nhi - s.nlo; {
		case n <= 0:
			return false
		case n == 1:
			nl := s.nlo
			s.nlo = s.nhi
			coord := &contNodeletIDs{nl: nl, step: s.nodelets, workers: s.workers}
			if t.CSpawnAt(nl, &contCoord{s: coord, mk: mk}) {
				return true
			}
		default:
			mid := s.nlo + n/2
			upper := contNodelets{nodelets: s.nodelets, nlo: mid, nhi: s.nhi, workers: s.workers}
			s.nhi = mid
			if t.CSpawnAt(mid, &contCoord{s: &upper, mk: mk}) {
				return true
			}
		}
	}
}

// contNodeletIDs is the leaf coordinator of RecursiveRemoteSpawn: build the
// nodelet's worker-id list, then a local recursive tree over it.
type contNodeletIDs struct {
	nl, step, workers int
	built             bool
	ids               contIDs
}

func (s *contNodeletIDs) drive(t *machine.CThread, mk func(int) machine.CBody) bool {
	if !s.built {
		s.built = true
		for w := s.nl; w < s.workers; w += s.step {
			s.ids.ids = append(s.ids.ids, w)
		}
	}
	return s.ids.drive(t, mk)
}

// contGroups mirrors spawnGroupRange's caller side over the populated
// nodelet list.
type contGroups struct {
	groups [][]int
	nls    []int
}

func (s *contGroups) drive(t *machine.CThread, mk func(int) machine.CBody) bool {
	for {
		switch n := len(s.nls); {
		case n == 0:
			return false
		case n == 1:
			nl := s.nls[0]
			s.nls = nil
			if t.CSpawnAt(nl, &contCoord{s: &contIDs{ids: s.groups[nl]}, mk: mk}) {
				return true
			}
		default:
			mid := n / 2
			right := contGroups{groups: s.groups, nls: s.nls[mid:]}
			s.nls = s.nls[:mid]
			if t.CSpawnAt(right.nls[0], &contCoord{s: &right, mk: mk}) {
				return true
			}
		}
	}
}

// Workers is SpawnWorkers for the continuation engine: construct with
// NewWorkers, then call Drive from the body's Step each time it is resumed.
// Drive reports parked=true when the enclosing Step must return false; once
// it reports parked=false the whole tree has been spawned AND joined, and
// the body continues past it — exactly where the goroutine SpawnWorkers call
// would have returned.
type Workers struct {
	nodelets, workers int
	strat             Strategy
	mk                func(int) machine.CBody
	spawner           contSpawner
	phase             uint8 // 0 validate, 1 spawn, 2 sync issued, 3 done
}

// NewWorkers prepares a continuation-form SpawnWorkers: workers bodies built
// by mk(w), spread over nodelets with the given strategy.
func NewWorkers(nodelets, workers int, strat Strategy, mk func(int) machine.CBody) *Workers {
	return &Workers{nodelets: nodelets, workers: workers, strat: strat, mk: mk}
}

// Drive advances the spawn tree; see the type comment for the protocol.
func (ws *Workers) Drive(t *machine.CThread) (parked bool) {
	for {
		switch ws.phase {
		case 0:
			if ws.workers <= 0 {
				ws.phase = 3
				return false
			}
			if ws.nodelets <= 0 || ws.nodelets > t.System().Nodelets() {
				panic(fmt.Sprintf("cilk: %d nodelets requested of %d", ws.nodelets, t.System().Nodelets()))
			}
			switch ws.strat {
			case SerialSpawn:
				ws.spawner = &contSerial{workers: ws.workers}
			case RecursiveSpawn:
				ws.spawner = &contRange{hi: ws.workers}
			case SerialRemoteSpawn:
				ws.spawner = &contSerialRemote{nodelets: ws.nodelets, workers: ws.workers}
			case RecursiveRemoteSpawn:
				ws.spawner = &contNodelets{nodelets: ws.nodelets, nhi: min(ws.nodelets, ws.workers), workers: ws.workers}
			default:
				panic("cilk: unknown strategy")
			}
			ws.phase = 1
		case 1:
			if ws.spawner.drive(t, ws.mk) {
				return true
			}
			ws.phase = 2
			if t.CSync() {
				return true
			}
		case 2:
			ws.phase = 3
		case 3:
			return false
		}
	}
}

// Grouped is SpawnGrouped for the continuation engine, with the same Drive
// protocol as Workers.
type Grouped struct {
	spawner *contGroups
	mk      func(int) machine.CBody
	phase   uint8
}

// NewGrouped prepares a continuation-form SpawnGrouped over groups[nl] =
// worker ids homed on nodelet nl.
func NewGrouped(groups [][]int, mk func(int) machine.CBody) *Grouped {
	var nls []int
	for nl, ids := range groups {
		if len(ids) > 0 {
			nls = append(nls, nl)
		}
	}
	return &Grouped{spawner: &contGroups{groups: groups, nls: nls}, mk: mk}
}

// Drive advances the grouped spawn tree; see Workers.Drive for the protocol.
func (g *Grouped) Drive(t *machine.CThread) (parked bool) {
	for {
		switch g.phase {
		case 0:
			if g.spawner.drive(t, g.mk) {
				return true
			}
			g.phase = 1
			if t.CSync() {
				return true
			}
		case 1:
			g.phase = 2
		case 2:
			return false
		}
	}
}
