package cilk

import (
	"testing"

	"emuchick/internal/machine"
	"emuchick/internal/memsys"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// Cross-engine equivalence for the spawn trees: every strategy must produce
// the identical trace event stream, elapsed time, and counters whether the
// tree is spawned by goroutine threads or continuation threadlets.

type streamRecorder struct {
	events []trace.Event
}

func (r *streamRecorder) Event(e trace.Event) { r.events = append(r.events, e) }
func (r *streamRecorder) Sample(trace.Sample) {}

// ctTouchWorker is the continuation twin of the goroutine test worker: load
// the worker's home word (migrating if the strategy left it remote), then a
// little compute.
type ctTouchWorker struct {
	arr memsys.Striped
	w   int
	pc  int
}

func (b *ctTouchWorker) Step(t *machine.CThread) bool {
	for {
		switch b.pc {
		case 0:
			b.pc++
			if t.CLoad(b.arr.At(b.w % b.arr.Len())) {
				return false
			}
		case 1:
			b.pc++
			if t.CCompute(5) {
				return false
			}
		default:
			return true
		}
	}
}

// ctWorkersRoot drives a Workers tree as the run's root body.
type ctWorkersRoot struct {
	ws   *Workers
	done bool
}

func (b *ctWorkersRoot) Step(t *machine.CThread) bool {
	if !b.done {
		if b.ws.Drive(t) {
			return false
		}
		b.done = true
	}
	return true
}

// ctGroupedRoot drives a Grouped tree as the run's root body.
type ctGroupedRoot struct {
	g    *Grouped
	done bool
}

func (b *ctGroupedRoot) Step(t *machine.CThread) bool {
	if !b.done {
		if b.g.Drive(t) {
			return false
		}
		b.done = true
	}
	return true
}

// runEnginePair runs the goroutine and continuation variants of one scenario
// on fresh systems and fails on any trace/time/counter divergence.
func runEnginePair(t *testing.T, label string,
	mkGo func(s *machine.System) func(*machine.Thread),
	mkCont func(s *machine.System) machine.CBody) {
	t.Helper()
	run := func(cont bool) (sim.Time, []trace.Event, []machine.NodeletCounters) {
		s := machine.NewSystem(machine.HardwareChick())
		rec := &streamRecorder{}
		s.Attach(rec)
		var elapsed sim.Time
		var err error
		if cont {
			elapsed, err = s.RunCont(mkCont(s))
		} else {
			elapsed, err = s.Run(mkGo(s))
		}
		if err != nil {
			t.Fatalf("%s (cont=%v): %v", label, cont, err)
		}
		return elapsed, rec.events, s.Counters.Snapshot()
	}
	ge, gev, gc := run(false)
	ce, cev, cc := run(true)
	if ge != ce {
		t.Errorf("%s: elapsed diverged: goroutine %v, continuation %v", label, ge, ce)
	}
	if len(gev) != len(cev) {
		t.Fatalf("%s: event count diverged: goroutine %d, continuation %d", label, len(gev), len(cev))
	}
	for i := range gev {
		if gev[i] != cev[i] {
			t.Fatalf("%s: event %d diverged:\n  goroutine    %+v\n  continuation %+v", label, i, gev[i], cev[i])
		}
	}
	for i := range gc {
		if gc[i] != cc[i] {
			t.Errorf("%s: counters diverged at nodelet %d:\n  goroutine    %+v\n  continuation %+v", label, i, gc[i], cc[i])
		}
	}
}

func TestContWorkersMatchGoroutineAllStrategies(t *testing.T) {
	const workers = 23 // odd and > nodelets: uneven trees, every shape branch
	for _, strat := range Strategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			runEnginePair(t, strat.String(),
				func(s *machine.System) func(*machine.Thread) {
					arr := s.Mem.AllocStriped(s.Nodelets())
					return func(th *machine.Thread) {
						SpawnWorkers(th, th.System().Nodelets(), workers, strat, func(c *machine.Thread, w int) {
							c.Load(arr.At(w % arr.Len()))
							c.Compute(5)
						})
					}
				},
				func(s *machine.System) machine.CBody {
					arr := s.Mem.AllocStriped(s.Nodelets())
					ws := NewWorkers(s.Nodelets(), workers, strat, func(w int) machine.CBody {
						return &ctTouchWorker{arr: arr, w: w}
					})
					return &ctWorkersRoot{ws: ws}
				})
		})
	}
}

func TestContGroupedMatchesGoroutine(t *testing.T) {
	// Uneven groups, some empty, out-of-order ids within a group.
	mkGroups := func(nodelets int) [][]int {
		groups := make([][]int, nodelets)
		groups[1] = []int{3, 0, 5}
		groups[4] = []int{1}
		groups[6] = []int{2, 4, 7, 6}
		return groups
	}
	runEnginePair(t, "grouped",
		func(s *machine.System) func(*machine.Thread) {
			arr := s.Mem.AllocStriped(s.Nodelets())
			groups := mkGroups(s.Nodelets())
			return func(th *machine.Thread) {
				SpawnGrouped(th, groups, func(c *machine.Thread, w int) {
					c.Load(arr.At(w % arr.Len()))
					c.Compute(5)
				})
			}
		},
		func(s *machine.System) machine.CBody {
			arr := s.Mem.AllocStriped(s.Nodelets())
			groups := mkGroups(s.Nodelets())
			g := NewGrouped(groups, func(w int) machine.CBody {
				return &ctTouchWorker{arr: arr, w: w}
			})
			return &ctGroupedRoot{g: g}
		})
}

func TestContWorkersZeroAndNegative(t *testing.T) {
	for _, workers := range []int{0, -3} {
		s := machine.NewSystem(machine.HardwareChick())
		ws := NewWorkers(s.Nodelets(), workers, RecursiveRemoteSpawn, func(int) machine.CBody {
			t.Fatal("worker built for an empty tree")
			return nil
		})
		if _, err := s.RunCont(&ctWorkersRoot{ws: ws}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if s.Counters.ThreadsSpawned != 1 { // just the root
			t.Fatalf("workers=%d spawned %d threads", workers, s.Counters.ThreadsSpawned)
		}
	}
}
