// Package cilk implements the thread-creation strategies the paper builds
// by hand because the Emu 17.11 toolchain lacked cilk_for (section III-E):
//
//   - serial_spawn          — a for loop of local spawns on one nodelet
//   - recursive_spawn       — a local recursive spawn tree
//   - serial_remote_spawn   — one remote spawn per nodelet, then local
//     serial spawning on each
//   - recursive_remote_spawn — a recursive spawn tree across nodelets,
//     then local recursive trees
//
// plus a grain-size ParallelFor built from recursive spawning, mirroring
// the cilk_spawn SpMV kernels with their "elements per spawn" parameter.
package cilk

import (
	"fmt"

	"emuchick/internal/machine"
)

// Strategy selects one of the paper's four spawn-tree shapes.
type Strategy int

const (
	SerialSpawn Strategy = iota
	RecursiveSpawn
	SerialRemoteSpawn
	RecursiveRemoteSpawn
)

// Strategies lists all four in presentation order (the order of Fig. 5's
// legend).
var Strategies = []Strategy{SerialSpawn, RecursiveSpawn, SerialRemoteSpawn, RecursiveRemoteSpawn}

// String returns the paper's snake_case name for the strategy.
func (s Strategy) String() string {
	switch s {
	case SerialSpawn:
		return "serial_spawn"
	case RecursiveSpawn:
		return "recursive_spawn"
	case SerialRemoteSpawn:
		return "serial_remote_spawn"
	case RecursiveRemoteSpawn:
		return "recursive_remote_spawn"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Remote reports whether the strategy first places a spawner on each
// nodelet (the property Fig. 5 shows is essential for multi-nodelet
// bandwidth).
func (s Strategy) Remote() bool {
	return s == SerialRemoteSpawn || s == RecursiveRemoteSpawn
}

// ParseStrategy maps a snake_case name back to its Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("cilk: unknown spawn strategy %q", name)
}

// SpawnWorkers creates workers threads spread across nodelets using the
// given strategy and blocks until all of them finish. Worker w runs
// body(thread, w). Workers are distributed round-robin over nodelets:
// worker w belongs to nodelet w mod nodelets, and with a non-remote
// strategy every worker is created on the caller's nodelet and must migrate
// to its data on first touch.
func SpawnWorkers(t *machine.Thread, nodelets, workers int, strat Strategy, body func(*machine.Thread, int)) {
	if workers <= 0 {
		return
	}
	if nodelets <= 0 || nodelets > t.System().Nodelets() {
		panic(fmt.Sprintf("cilk: %d nodelets requested of %d", nodelets, t.System().Nodelets()))
	}
	switch strat {
	case SerialSpawn:
		for w := 0; w < workers; w++ {
			w := w
			t.Spawn(func(c *machine.Thread) { body(c, w) })
		}
	case RecursiveSpawn:
		spawnRangeLocal(t, 0, workers, body)
	case SerialRemoteSpawn:
		for nl := 0; nl < nodelets && nl < workers; nl++ {
			nl := nl
			t.SpawnAt(nl, func(c *machine.Thread) {
				for w := nl; w < workers; w += nodelets {
					w := w
					c.Spawn(func(g *machine.Thread) { body(g, w) })
				}
				c.Sync()
			})
		}
	case RecursiveRemoteSpawn:
		spawnNodeletsRecursive(t, nodelets, 0, min(nodelets, workers), workers, body)
	default:
		panic("cilk: unknown strategy")
	}
	t.Sync()
}

// spawnRangeLocal spawns workers [lo, hi) with a local binary spawn tree.
func spawnRangeLocal(t *machine.Thread, lo, hi int, body func(*machine.Thread, int)) {
	switch hi - lo {
	case 0:
		return
	case 1:
		t.Spawn(func(c *machine.Thread) { body(c, lo) })
		return
	}
	mid := lo + (hi-lo)/2
	t.Spawn(func(c *machine.Thread) {
		spawnRangeLocal(c, lo, mid, body)
		c.Sync()
	})
	spawnRangeLocal(t, mid, hi, body)
}

// spawnNodeletsRecursive places one coordinator per nodelet in [nlo, nhi)
// with a recursive remote-spawn tree; each coordinator then builds a local
// recursive tree of its workers.
func spawnNodeletsRecursive(t *machine.Thread, nodelets, nlo, nhi, workers int, body func(*machine.Thread, int)) {
	switch nhi - nlo {
	case 0:
		return
	case 1:
		nl := nlo
		t.SpawnAt(nl, func(c *machine.Thread) {
			var ids []int
			for w := nl; w < workers; w += nodelets {
				ids = append(ids, w)
			}
			spawnIDsLocal(c, ids, body)
			c.Sync()
		})
		return
	}
	mid := nlo + (nhi-nlo)/2
	t.SpawnAt(mid, func(c *machine.Thread) {
		spawnNodeletsRecursive(c, nodelets, mid, nhi, workers, body)
		c.Sync()
	})
	spawnNodeletsRecursive(t, nodelets, nlo, mid, workers, body)
}

// spawnIDsLocal spawns one worker per id with a local binary tree.
func spawnIDsLocal(t *machine.Thread, ids []int, body func(*machine.Thread, int)) {
	switch len(ids) {
	case 0:
		return
	case 1:
		id := ids[0]
		t.Spawn(func(c *machine.Thread) { body(c, id) })
		return
	}
	mid := len(ids) / 2
	left := ids[:mid]
	t.Spawn(func(c *machine.Thread) {
		spawnIDsLocal(c, left, body)
		c.Sync()
	})
	spawnIDsLocal(t, ids[mid:], body)
}

// SpawnGrouped creates one worker per id in groups, where groups[nl] lists
// the worker ids that must start on nodelet nl, and blocks until all of
// them finish. Placement uses a recursive remote-spawn tree over the
// nodelets followed by local recursive trees — the paper's
// recursive_remote_spawn shape — so launching W workers costs O(log W)
// critical-path spawns instead of W. Kernels whose workers have
// data-dependent home nodelets (pointer chasing chains) use this instead
// of SpawnWorkers' round-robin placement.
func SpawnGrouped(t *machine.Thread, groups [][]int, body func(*machine.Thread, int)) {
	var nls []int
	for nl, ids := range groups {
		if len(ids) > 0 {
			nls = append(nls, nl)
		}
	}
	spawnGroupRange(t, groups, nls, body)
	t.Sync()
}

func spawnGroupRange(t *machine.Thread, groups [][]int, nls []int, body func(*machine.Thread, int)) {
	switch len(nls) {
	case 0:
		return
	case 1:
		nl := nls[0]
		t.SpawnAt(nl, func(c *machine.Thread) {
			spawnIDsLocal(c, groups[nl], body)
			c.Sync()
		})
		return
	}
	mid := len(nls) / 2
	right := nls[mid:]
	t.SpawnAt(right[0], func(c *machine.Thread) {
		spawnGroupRange(c, groups, right, body)
		c.Sync()
	})
	spawnGroupRange(t, groups, nls[:mid], body)
}

// ParallelFor executes body(lo, hi) over subranges of [0, n) of at most
// grain iterations each, using a recursive local spawn tree, and blocks
// until the whole range is done. It is the cilk_spawn-built analogue of
// cilk_for with a grain-size clause, the knob the paper sweeps for SpMV
// (16 iterations per spawn best on Emu, 16384 on the Xeon).
func ParallelFor(t *machine.Thread, n, grain int, body func(*machine.Thread, int, int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	parForRange(t, 0, n, grain, body)
	t.Sync()
}

func parForRange(t *machine.Thread, lo, hi, grain int, body func(*machine.Thread, int, int)) {
	if hi-lo <= grain {
		body(t, lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	t.Spawn(func(c *machine.Thread) {
		parForRange(c, lo, mid, grain, body)
		c.Sync()
	})
	parForRange(t, mid, hi, grain, body)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
