package machine

import (
	"strings"
	"testing"
)

func TestTraceCapturesOps(t *testing.T) {
	s := NewSystem(HardwareChick())
	var events []TraceEvent
	s.Trace(func(e TraceEvent) { events = append(events, e) })
	local := s.Mem.AllocLocal(0, 2)
	remote := s.Mem.AllocLocal(3, 2)
	_, err := s.Run(func(th *Thread) {
		th.Load(local.At(0))          // load
		th.Store(local.At(1), 1)      // store
		th.Store(remote.At(0), 2)     // remote_store
		th.RemoteAdd(remote.At(1), 1) // atomic
		th.Spawn(func(c *Thread) {})  // spawn
		th.Sync()
		th.MigrateTo(5) // migrate
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[TraceKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, k := range []TraceKind{TraceLoad, TraceStore, TraceRemoteStore, TraceAtomic, TraceSpawn, TraceMigrate} {
		if kinds[k] == 0 {
			t.Errorf("no %v events", k)
		}
	}
	// Remote ops carry their destination.
	for _, e := range events {
		if e.Kind == TraceRemoteStore && e.Target != 3 {
			t.Errorf("remote store target = %d", e.Target)
		}
		if e.Kind == TraceMigrate && e.Target != 5 {
			t.Errorf("migrate target = %d", e.Target)
		}
	}
	// Times are monotone non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("trace times not monotone")
		}
	}
}

func TestTraceToLimits(t *testing.T) {
	s := NewSystem(HardwareChick())
	var b strings.Builder
	s.TraceTo(&b, 3)
	arr := s.Mem.AllocLocal(0, 10)
	if _, err := s.Run(func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Load(arr.At(i))
		}
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(b.String(), "\n")
	if lines != 3 {
		t.Fatalf("trace emitted %d lines, want 3", lines)
	}
	if !strings.Contains(b.String(), "load") {
		t.Fatal("trace lines missing kind")
	}
}

func TestTraceEventStrings(t *testing.T) {
	if TraceLoad.String() != "load" || TraceMigrate.String() != "migrate" {
		t.Fatal("kind names wrong")
	}
	if TraceKind(42).String() == "" {
		t.Fatal("unknown kind empty")
	}
	e := TraceEvent{Kind: TraceMigrate, Nodelet: 1, Target: 2}
	if !strings.Contains(e.String(), "nl1 -> nl2") {
		t.Fatalf("event string %q", e.String())
	}
	e2 := TraceEvent{Kind: TraceLoad, Nodelet: 1, Target: -1}
	if strings.Contains(e2.String(), "->") {
		t.Fatalf("local event string %q", e2.String())
	}
}

func TestTraceUninstall(t *testing.T) {
	s := NewSystem(HardwareChick())
	count := 0
	s.Trace(func(TraceEvent) { count++ })
	s.Trace(nil)
	arr := s.Mem.AllocLocal(0, 1)
	if _, err := s.Run(func(th *Thread) { th.Load(arr.At(0)) }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatal("uninstalled tracer still fired")
	}
}
