package machine

import (
	"fmt"

	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// The Emu architecture pairs the Gossamer cores with stationary processors
// that run the operating system: "Any operating system requests are
// forwarded to the stationary control processors through the service
// queue" (section II). The model gives each node one stationary core and a
// service queue; a threadlet performing an OS request blocks for the queue
// round trip plus the request's execution on the stationary core.
//
// The benchmarks themselves make no OS requests inside their timed regions
// (neither do the paper's), but the path exists so that applications built
// on the model — and the service-queue ablation — can measure its cost.

// serviceQueueLatency is the one-way forwarding latency from a nodelet to
// its node's stationary processor.
const serviceQueueLatency = 500 * sim.Nanosecond

// stationaryHz is the stationary core's clock. The prototype implements it
// on the same FPGA fabric as the Gossamer cores.
const stationaryHz = 300e6

// ServiceCall forwards an operating-system request costing the given
// number of stationary-core cycles through the node's service queue and
// blocks until the response returns. It reports the request's total
// round-trip time.
func (t *Thread) ServiceCall(cycles int64) sim.Time {
	if cycles < 0 {
		panic(fmt.Sprintf("machine: negative service cycles %d", cycles))
	}
	s := t.sys
	node := s.Cfg.NodeOf(t.nodelet)
	start := t.p.Now()
	arrive := start + serviceQueueLatency
	_, served := s.stationary[node].Acquire(arrive, s.stationaryClock.Cycles(cycles))
	s.Counters.serviceCalls[t.nodelet]++
	finish := served + serviceQueueLatency
	s.emit(trace.KindService, t.nodelet, -1, 0, start, finish)
	t.p.WaitUntil(finish)
	return finish - start
}
