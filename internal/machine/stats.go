package machine

import "emuchick/internal/sim"

// NodeletStats reports how busy one nodelet's modelled resources were over
// an elapsed window — the per-nodelet view the vendor simulator's event
// counts provide, expressed as utilizations.
type NodeletStats struct {
	Nodelet            int
	ChannelUtilization float64
	ChannelOps         uint64
	ChannelMaxWait     sim.Time
	CoreUtilization    []float64 // one per Gossamer core
	ResidentPeak       int       // high-water mark of context slots
}

// NodeStats reports the shared per-node resources.
type NodeStats struct {
	Node                 int
	MigrationUtilization float64
	Migrations           uint64
	MigrationMaxWait     sim.Time
	FabricUtilization    float64
	StationaryOps        uint64
}

// SystemStats is the full utilization snapshot of a finished run.
type SystemStats struct {
	Elapsed  sim.Time
	Nodelets []NodeletStats
	Nodes    []NodeStats
}

// Stats summarizes resource utilization over the given elapsed window
// (typically the value System.Run returned).
func (s *System) Stats(elapsed sim.Time) SystemStats {
	out := SystemStats{Elapsed: elapsed}
	for _, nl := range s.nodelets {
		st := NodeletStats{
			Nodelet:            nl.id,
			ChannelUtilization: nl.channel.Utilization(elapsed),
			ChannelOps:         nl.channel.Ops(),
			ChannelMaxWait:     nl.channel.MaxWait(),
			ResidentPeak:       nl.slots.MaxInUse(),
		}
		for _, core := range nl.cores {
			st.CoreUtilization = append(st.CoreUtilization, core.Utilization(elapsed))
		}
		out.Nodelets = append(out.Nodelets, st)
	}
	for nd := 0; nd < s.Cfg.Nodes; nd++ {
		out.Nodes = append(out.Nodes, NodeStats{
			Node:                 nd,
			MigrationUtilization: s.migEngines[nd].Utilization(elapsed),
			Migrations:           s.migEngines[nd].Ops(),
			MigrationMaxWait:     s.migEngines[nd].MaxWait(),
			FabricUtilization:    s.links[nd].Utilization(elapsed),
			StationaryOps:        s.stationary[nd].Ops(),
		})
	}
	return out
}

// MeanChannel reports the average channel utilization across nodelets.
func (ss SystemStats) MeanChannel() float64 {
	if len(ss.Nodelets) == 0 {
		return 0
	}
	var sum float64
	for _, nl := range ss.Nodelets {
		sum += nl.ChannelUtilization
	}
	return sum / float64(len(ss.Nodelets))
}

// MaxCore reports the busiest Gossamer core's utilization.
func (ss SystemStats) MaxCore() float64 {
	best := 0.0
	for _, nl := range ss.Nodelets {
		for _, u := range nl.CoreUtilization {
			if u > best {
				best = u
			}
		}
	}
	return best
}

// BottleneckHint names the resource class with the highest utilization —
// a diagnostic for the "what limits this kernel" questions the paper's
// discussion section raises.
func (ss SystemStats) BottleneckHint() string {
	channel := ss.MeanChannel()
	core := ss.MaxCore()
	migration := 0.0
	for _, nd := range ss.Nodes {
		if nd.MigrationUtilization > migration {
			migration = nd.MigrationUtilization
		}
	}
	switch {
	case migration >= channel && migration >= core:
		return "migration-engine"
	case core >= channel:
		return "gossamer-core"
	default:
		return "memory-channel"
	}
}
