package machine

import (
	"fmt"
	"math"

	"emuchick/internal/fault"
	"emuchick/internal/memsys"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// Thread is one Gossamer threadlet: a lightweight context (the real thing is
// 16 registers, a PC, a stack counter and status — under 200 bytes) resident
// on some nodelet. Kernels are written against this API exactly the way the
// paper's Cilk benchmarks are written against the Emu toolchain:
//
//   - Load of a local word costs an issue slot, channel occupancy, and
//     memory latency.
//   - Load of a REMOTE word first migrates the thread to the word's nodelet
//     ("any remote read triggers a migration").
//   - Stores to remote words are posted through the network without
//     migrating, and atomics are executed by memory-side processors, both
//     matching section II.
//   - Spawn creates a child threadlet locally; SpawnAt creates it on a
//     chosen nodelet (a "remote spawn"); Sync joins all children.
//
// All methods must be called from the thread's own simulated context.
//
// Thread implements sim.Runner, and its contexts are pooled by the System
// (see acquireThread): the spawn hot path allocates neither a closure nor a
// Thread in steady state. The child join is embedded rather than allocated —
// children all call Done before their parent's RunProc returns (the implicit
// sync), so the embedded join can never outlive its Thread's lifetime.
type Thread struct {
	sys        *System
	p          *sim.Proc
	nodelet    int
	core       int
	children   *sim.Join // nil until the first spawn, then &childJoin
	childJoin  sim.Join
	parentJoin *sim.Join
	body       func(*Thread)
}

// RunProc is the sim.Runner body of a machine thread: acquire a context
// slot, run the body with the implicit cilk sync at function end, release
// the slot, notify the parent, and recycle the Thread.
func (t *Thread) RunProc(p *sim.Proc) {
	s := t.sys
	t.p = p
	home := s.nodelets[t.nodelet]
	home.slots.Acquire(p)
	t.core = home.nextCore
	home.nextCore = (home.nextCore + 1) % len(home.cores)
	s.Counters.threadStarted()
	s.emit(trace.KindThreadStart, t.nodelet, -1, 0, p.Now(), p.Now())
	t.body(t)
	// Implicit cilk sync at function end, matching Cilk semantics.
	t.Sync()
	s.nodelets[t.nodelet].slots.Release()
	s.Counters.threadFinished()
	s.emit(trace.KindThreadEnd, t.nodelet, -1, 0, p.Now(), p.Now())
	if t.parentJoin != nil {
		t.parentJoin.Done()
	}
	s.releaseThread(t)
}

// System returns the machine this thread runs on.
func (t *Thread) System() *System { return t.sys }

// Nodelet reports the nodelet the thread currently resides on.
func (t *Thread) Nodelet() int { return t.nodelet }

// Now reports the current simulated time.
func (t *Thread) Now() sim.Time { return t.p.Now() }

// Compute charges the given number of core cycles of non-memory work.
func (t *Thread) Compute(cycles int64) {
	if cycles <= 0 {
		return
	}
	s := t.sys
	nl := s.nodelets[t.nodelet]
	_, done := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(cycles))
	s.Counters.computeCycles[t.nodelet] += uint64(cycles)
	t.p.WaitUntil(done)
}

// localWordAccess models one blocking 8-byte access to the resident
// nodelet's channel: issue at the core, occupy the channel, then the
// load-to-use latency.
func (t *Thread) localWordAccess() {
	s := t.sys
	nl := s.nodelets[t.nodelet]
	_, issued := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(s.Cfg.MemIssueCycles))
	_, served := nl.channel.Acquire(issued, s.Cfg.WordAccessTime)
	t.p.WaitUntil(served + s.Cfg.MemLatency)
}

// Load reads the word at a, migrating to its home nodelet first if the
// address is remote. It returns the stored value.
func (t *Thread) Load(a memsys.Addr) uint64 {
	if home := a.Nodelet(); home != t.nodelet {
		t.migrate(home, a) // the read is the migration's trigger address
	}
	t.sys.Counters.localReads[t.nodelet]++
	issued := t.p.Now()
	t.localWordAccess()
	t.sys.emit(TraceLoad, t.nodelet, -1, a, issued, t.p.Now())
	return t.sys.Mem.Read(a)
}

// Store writes v to the word at a. A local store blocks like a load; a
// remote store is posted through the network without migrating the thread
// (the thread is charged only the issue cycle, and stalls only when the
// destination's finite remote queue is saturated).
//
// Memory-ordering note: the functional value becomes visible immediately
// even though the modelled delivery completes later, so programs that race
// a posted store against a reader observe the store "early". The paper's
// kernels (and this repository's) partition writers, or join with Sync
// before reading, exactly as real Emu programs must.
func (t *Thread) Store(a memsys.Addr, v uint64) {
	s := t.sys
	home := a.Nodelet()
	if home == t.nodelet {
		s.Counters.localWrites[t.nodelet]++
		issued := t.p.Now()
		t.localWordAccess()
		s.Mem.Write(a, v)
		s.emit(TraceStore, t.nodelet, -1, a, issued, t.p.Now())
		return
	}
	// Posted remote store: issue locally, deliver after the network flight,
	// occupying the destination channel on arrival.
	nl := s.nodelets[t.nodelet]
	_, issued := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(s.Cfg.MemIssueCycles))
	arrive := issued + t.networkLatency(home)
	_, served := s.nodelets[home].channel.Acquire(arrive, s.Cfg.WordAccessTime)
	s.Counters.remoteStores[home]++
	s.Mem.Write(a, v)
	s.emit(TraceRemoteStore, t.nodelet, home, a, issued, served)
	t.p.WaitUntil(t.postedAccept(issued, served))
}

// FetchAdd atomically adds delta to the word at a and returns the previous
// value. The operation is executed by the memory-side processor of the
// word's home nodelet; a remote FetchAdd blocks for the network round trip
// but does NOT migrate the thread.
func (t *Thread) FetchAdd(a memsys.Addr, delta uint64) uint64 {
	s := t.sys
	home := a.Nodelet()
	nl := s.nodelets[t.nodelet]
	_, issued := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(s.Cfg.MemIssueCycles))
	arrive := issued
	if home != t.nodelet {
		arrive += t.networkLatency(home)
	}
	// Read-modify-write occupies the home channel for two word times.
	_, served := s.nodelets[home].channel.Acquire(arrive, 2*s.Cfg.WordAccessTime)
	s.Counters.atomics[home]++
	old := s.Mem.Read(a)
	s.Mem.Write(a, old+delta)
	finish := served
	if home != t.nodelet {
		finish += t.networkLatency(home) // response flight
	} else {
		finish += s.Cfg.MemLatency
	}
	s.emit(TraceAtomic, t.nodelet, home, a, issued, finish)
	t.p.WaitUntil(finish)
	return old
}

// RemoteAdd posts an atomic add without waiting for completion — the
// "remote update" idiom Emu programs use to accumulate into far memory.
func (t *Thread) RemoteAdd(a memsys.Addr, delta uint64) {
	s := t.sys
	home := a.Nodelet()
	nl := s.nodelets[t.nodelet]
	_, issued := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(s.Cfg.MemIssueCycles))
	arrive := issued
	if home != t.nodelet {
		arrive += t.networkLatency(home)
	}
	_, served := s.nodelets[home].channel.Acquire(arrive, 2*s.Cfg.WordAccessTime)
	s.Counters.atomics[home]++
	s.emit(TraceAtomic, t.nodelet, home, a, issued, served)
	s.Mem.Write(a, s.Mem.Read(a)+delta)
	t.p.WaitUntil(t.postedAccept(issued, served))
}

// remoteQueueEntries bounds the per-nodelet queue of posted remote
// operations. A sender whose packet would land more than this many
// word-service times deep in the destination's backlog stalls until the
// queue drains — finite buffering, without which posted operations would
// be infinitely absorbing and destination contention invisible.
const remoteQueueEntries = 64

// postedAccept converts a posted operation's issue and service times into
// the moment the sender may proceed.
func (s *System) postedAccept(issued, served sim.Time) sim.Time {
	bound := served - sim.Time(remoteQueueEntries)*s.Cfg.WordAccessTime
	if bound > issued {
		return bound
	}
	return issued
}

func (t *Thread) postedAccept(issued, served sim.Time) sim.Time {
	return t.sys.postedAccept(issued, served)
}

// RemoteAddFloat posts an atomic float64 accumulation, the operation the
// memory-side processors provide for reductions into far memory (tensor
// contractions and SpMV outputs use it). Timing is identical to RemoteAdd.
func (t *Thread) RemoteAddFloat(a memsys.Addr, delta float64) {
	s := t.sys
	home := a.Nodelet()
	nl := s.nodelets[t.nodelet]
	_, issued := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(s.Cfg.MemIssueCycles))
	arrive := issued
	if home != t.nodelet {
		arrive += t.networkLatency(home)
	}
	_, served := s.nodelets[home].channel.Acquire(arrive, 2*s.Cfg.WordAccessTime)
	s.Counters.atomics[home]++
	s.emit(TraceAtomic, t.nodelet, home, a, issued, served)
	cur := math.Float64frombits(s.Mem.Read(a))
	s.Mem.Write(a, math.Float64bits(cur+delta))
	t.p.WaitUntil(t.postedAccept(issued, served))
}

// flightLatency is the one-way network flight time from nodelet src to the
// target nodelet's memory-side processor: the base migration latency, plus
// the inter-node hop when crossing node cards, plus the top-of-rack hop when
// crossing chassis (zero on single-tier machines). Thread and CThread share
// it so the two proc engines are arithmetic-identical by construction.
func (s *System) flightLatency(src, target int) sim.Time {
	lat := s.Cfg.MigrationLatency
	if s.Cfg.NodeOf(target) != s.Cfg.NodeOf(src) {
		lat += s.Cfg.InterNodeLatency
	}
	if s.Cfg.ChassisOf(target) != s.Cfg.ChassisOf(src) {
		lat += s.Cfg.InterChassisLatency
	}
	return lat
}

// spawnArrival is when a spawn packet issued at nodelet src at time at
// becomes runnable on nodelet nl.
func (s *System) spawnArrival(src, nl int, at sim.Time) sim.Time {
	if nl != src {
		at += s.Cfg.RemoteSpawnLatency
		if s.Cfg.NodeOf(nl) != s.Cfg.NodeOf(src) {
			at += s.Cfg.InterNodeLatency
		}
		if s.Cfg.ChassisOf(nl) != s.Cfg.ChassisOf(src) {
			at += s.Cfg.InterChassisLatency
		}
	}
	return at
}

// networkLatency is the one-way flight time from the thread's nodelet to
// the target nodelet's memory-side processor.
func (t *Thread) networkLatency(target int) sim.Time {
	return t.sys.flightLatency(t.nodelet, target)
}

// MigrateTo moves the thread's context to the target nodelet: it releases
// its context slot, queues at the local migration-engine egress port, flies
// across the (possibly inter-node) fabric, and claims a context slot at the
// destination. Migrating to the current nodelet is a no-op.
func (t *Thread) MigrateTo(target int) {
	t.migrate(target, 0)
}

// migrate is MigrateTo plus the trigger address: the remote word whose read
// forced the move (zero for an explicit MigrateTo), recorded on the
// migration's trace event.
func (t *Thread) migrate(target int, trigger memsys.Addr) {
	s := t.sys
	if target == t.nodelet {
		return
	}
	if target < 0 || target >= len(s.nodelets) {
		panic(fmt.Sprintf("machine: migrate to nodelet %d of %d", target, len(s.nodelets)))
	}
	s.Counters.migrationsOut[t.nodelet]++
	s.Counters.migrationsIn[target]++
	node := s.Cfg.NodeOf(t.nodelet)
	crossing := s.Cfg.NodeOf(target) != node
	depart := t.p.Now()
	if s.faults != nil {
		depart = t.faultBackoff(node, target, crossing, depart)
	}
	s.nodelets[t.nodelet].slots.Release()
	engine := s.migEngines[node]
	_, sent := engine.Acquire(depart, s.migSvc)
	flight := s.Cfg.MigrationLatency
	if crossing {
		link := s.links[node]
		xfer := s.ctxXfer
		if s.faults != nil {
			xfer = fault.Scale(xfer, s.faults.LinkScale(node, sent))
		}
		_, sent = link.Acquire(sent, xfer)
		flight += s.Cfg.InterNodeLatency
		if s.Cfg.ChassisOf(target) != s.Cfg.ChassisOf(t.nodelet) {
			flight += s.Cfg.InterChassisLatency
		}
	}
	s.emit(TraceMigrate, t.nodelet, target, trigger, depart, sent+flight)
	t.p.WaitUntil(sent + flight)
	t.nodelet = target
	to := s.nodelets[target]
	to.slots.Acquire(t.p)
	t.core = to.nextCore
	to.nextCore = (to.nextCore + 1) % len(to.cores)
}

// faultBackoff holds the thread at its source nodelet while a fault blocks
// the migration — a migration-engine stall window, or a fabric-link outage
// when the move crosses node cards. The thread keeps its context slot and
// polls with exponential backoff (the real backpressure a stalled engine
// exerts: the slot stays occupied, starving inbound work), which the
// StalledMigrations / MigrationRetries / BackoffCycles counters measure. It
// returns the time the migration finally departs. Windows are validated
// time-bounded, so the loop always terminates.
func (t *Thread) faultBackoff(node, target int, crossing bool, depart sim.Time) sim.Time {
	s := t.sys
	c, src := s.Counters, t.nodelet
	for attempt := 0; ; attempt++ {
		if _, blocked := s.faults.BlockedUntil(node, crossing, depart); !blocked {
			return depart
		}
		if attempt == 0 {
			c.stalledMigrations[src]++
		}
		c.migrationRetries[src]++
		cyc := s.faults.BackoffCycles(attempt)
		c.backoffCycles[src] += uint64(cyc)
		resume := depart + s.clock.Cycles(cyc)
		s.emit(trace.KindFaultStall, t.nodelet, target, 0, depart, resume)
		t.p.WaitUntil(resume)
		depart = resume
	}
}

// Spawn creates a child threadlet on the current nodelet (cilk_spawn). The
// parent is charged the spawn cost; the child becomes runnable immediately
// once it obtains a context slot. Children are joined by Sync.
func (t *Thread) Spawn(fn func(*Thread)) {
	t.Compute(t.sys.Cfg.LocalSpawnCycles)
	t.spawnOn(t.nodelet, t.p.Now(), fn)
}

// SpawnAt creates a child threadlet on the given nodelet — Emu's "remote
// spawn", which the paper shows is essential for saturating multi-nodelet
// bandwidth (Fig. 5). The parent continues after issuing the spawn packet.
func (t *Thread) SpawnAt(nl int, fn func(*Thread)) {
	s := t.sys
	if nl < 0 || nl >= len(s.nodelets) {
		panic(fmt.Sprintf("machine: spawn at nodelet %d of %d", nl, len(s.nodelets)))
	}
	t.Compute(s.Cfg.LocalSpawnCycles)
	t.spawnOn(nl, s.spawnArrival(t.nodelet, nl, t.p.Now()), fn)
}

//emu:hotpath the spawn path: pooled child thread, launch event instead of a closure
func (t *Thread) spawnOn(nl int, at sim.Time, fn func(*Thread)) {
	s := t.sys
	if t.children == nil {
		t.children = &t.childJoin
	}
	t.children.Add(1)
	if nl == t.nodelet {
		s.Counters.localSpawns[nl]++
	} else {
		s.Counters.remoteSpawns[nl]++
	}
	s.emit(TraceSpawn, t.nodelet, nl, 0, t.p.Now(), at)
	child := s.acquireThread()
	child.nodelet = nl
	child.body = fn
	child.parentJoin = t.children
	s.Eng.LaunchAt(at, "t", child)
}

// Sync blocks until every child this thread has spawned so far finishes
// (cilk_sync). A thread with no outstanding children returns immediately.
// While blocked, the thread's hardware context is saved to memory and its
// slot released — the runtime behaviour that lets deep spawn trees exceed
// the per-nodelet context count without deadlocking.
func (t *Thread) Sync() {
	if t.children == nil || t.children.Pending() == 0 {
		return
	}
	t.parkDuring(func() { t.children.Wait(t.p) })
}

// parkDuring releases the thread's context slot around a blocking wait and
// re-acquires it afterwards (possibly waiting for a free slot).
func (t *Thread) parkDuring(wait func()) {
	t.sys.nodelets[t.nodelet].slots.Release()
	wait()
	t.sys.nodelets[t.nodelet].slots.Acquire(t.p)
}

// Peek functionally reads a word the thread's resident nodelet owns without
// consuming simulated time. It is for setup and verification code; timed
// kernel code must use Load. Peeking remote memory panics — that would be a
// modelling bug (a free remote read).
func (t *Thread) Peek(a memsys.Addr) uint64 {
	if a.Nodelet() != t.nodelet {
		panic(fmt.Sprintf("machine: Peek of remote address %v from nodelet %d", a, t.nodelet))
	}
	return t.sys.Mem.Read(a)
}

// Poke functionally writes a local word without consuming simulated time.
// Like Peek, it is restricted to the resident nodelet.
func (t *Thread) Poke(a memsys.Addr, v uint64) {
	if a.Nodelet() != t.nodelet {
		panic(fmt.Sprintf("machine: Poke of remote address %v from nodelet %d", a, t.nodelet))
	}
	t.sys.Mem.Write(a, v)
}
