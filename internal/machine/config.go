// Package machine models the Emu Chick: nodes of eight nodelets, each
// nodelet combining a narrow NCDRAM channel with one or more cache-less,
// highly multithreaded Gossamer cores, plus the migration engine that moves
// thread contexts to data. It exposes a Thread API (Load/Store/Atomic/
// Compute/Spawn/Sync) against which the paper's Cilk kernels are written.
//
// The model is a calibrated queueing simulation, not an RTL simulation: each
// hardware resource (core issue port, memory channel, migration engine,
// inter-node link) is a deterministic single-server queue, and the constants
// are set from the rates the paper publishes (150 MHz Gossamer clock,
// 8-bit DDR4-1600 channels, 9 M vs 16 M migrations/s, 1-2 us migration
// latency, <200 B thread context). See DESIGN.md section 4 for the full
// calibration derivation.
package machine

import (
	"fmt"

	"emuchick/internal/sim"
)

// Config describes one Emu system configuration. The three presets —
// HardwareChick, SimMatched, and FullSpeed — correspond to the three
// platforms in the paper: the prototype hardware, the vendor simulator
// configured to match the prototype, and the vendor simulator configured at
// design speed.
type Config struct {
	Name string

	// Topology.
	Nodes           int // node cards (the Chick chassis has 8)
	NodeletsPerNode int // 8 on the Chick
	GCsPerNodelet   int // 1 on the prototype, 4 at design speed
	ThreadsPerGC    int // 64 on the prototype, 256 at design speed

	// Rack tier: a multi-chassis fabric above the node cards. Zero
	// NodesPerChassis means a single-tier machine (every node in one
	// chassis, the Chick itself) and leaves every latency computation
	// exactly as before — the rack fields are strictly additive.
	NodesPerChassis     int      // node cards per chassis; 0 = single-tier
	InterChassisLatency sim.Time // extra flight time when crossing chassis

	// Gossamer cores.
	CoreHz         int64 // 150 MHz prototype, 300 MHz design
	MemIssueCycles int64 // core cycles to issue one memory operation

	// NCDRAM channel (one per nodelet).
	WordAccessTime sim.Time // channel occupancy per 8-byte access
	MemLatency     sim.Time // additional load-to-use latency (not occupying the channel)

	// Migration engine (one shared engine per node card; the ping-pong
	// benchmark saturates it at 9 M migrations/s on hardware and 16 M/s
	// in the vendor simulator).
	MigrationsPerSec  float64  // sustained migration rate per node
	MigrationLatency  sim.Time // one-way context flight time, intra-node
	InterNodeLatency  sim.Time // extra flight time when crossing node cards
	ContextBytes      int64    // thread context size (paper: < 200 B)
	FabricBytesPerSec float64  // RapidIO-like per-node link bandwidth

	// Thread creation.
	LocalSpawnCycles   int64    // core cycles charged to the parent per local spawn
	RemoteSpawnLatency sim.Time // flight time of a remote spawn packet
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("machine: config %q: Nodes must be positive", c.Name)
	case c.NodeletsPerNode <= 0:
		return fmt.Errorf("machine: config %q: NodeletsPerNode must be positive", c.Name)
	case c.GCsPerNodelet <= 0:
		return fmt.Errorf("machine: config %q: GCsPerNodelet must be positive", c.Name)
	case c.ThreadsPerGC <= 0:
		return fmt.Errorf("machine: config %q: ThreadsPerGC must be positive", c.Name)
	case c.CoreHz <= 0:
		return fmt.Errorf("machine: config %q: CoreHz must be positive", c.Name)
	case c.WordAccessTime <= 0:
		return fmt.Errorf("machine: config %q: WordAccessTime must be positive", c.Name)
	case c.MemLatency < 0:
		return fmt.Errorf("machine: config %q: MemLatency must be non-negative", c.Name)
	case c.MigrationsPerSec <= 0:
		return fmt.Errorf("machine: config %q: MigrationsPerSec must be positive", c.Name)
	case c.ContextBytes <= 0:
		return fmt.Errorf("machine: config %q: ContextBytes must be positive", c.Name)
	case c.FabricBytesPerSec <= 0:
		return fmt.Errorf("machine: config %q: FabricBytesPerSec must be positive", c.Name)
	case c.MemIssueCycles <= 0:
		return fmt.Errorf("machine: config %q: MemIssueCycles must be positive", c.Name)
	case c.NodesPerChassis < 0:
		return fmt.Errorf("machine: config %q: NodesPerChassis must be non-negative", c.Name)
	case c.InterChassisLatency < 0:
		return fmt.Errorf("machine: config %q: InterChassisLatency must be non-negative", c.Name)
	case c.NodesPerChassis > 0 && c.Nodes%c.NodesPerChassis != 0:
		return fmt.Errorf("machine: config %q: Nodes (%d) must be a multiple of NodesPerChassis (%d)",
			c.Name, c.Nodes, c.NodesPerChassis)
	}
	return nil
}

// TotalNodelets reports the nodelet count across all nodes.
func (c Config) TotalNodelets() int { return c.Nodes * c.NodeletsPerNode }

// ContextsPerNodelet reports the hardware thread-context capacity of one
// nodelet (contexts resident across its Gossamer cores).
func (c Config) ContextsPerNodelet() int { return c.GCsPerNodelet * c.ThreadsPerGC }

// NodeOf reports which node card the given nodelet belongs to.
func (c Config) NodeOf(nodelet int) int { return nodelet / c.NodeletsPerNode }

// ChassisOf reports which chassis the given nodelet belongs to. On a
// single-tier machine (NodesPerChassis zero) every nodelet is in chassis 0,
// so no transfer ever crosses a chassis boundary.
func (c Config) ChassisOf(nodelet int) int {
	if c.NodesPerChassis <= 0 {
		return 0
	}
	return c.NodeOf(nodelet) / c.NodesPerChassis
}

// Chassis reports the chassis count (1 for a single-tier machine).
func (c Config) Chassis() int {
	if c.NodesPerChassis <= 0 {
		return 1
	}
	return c.Nodes / c.NodesPerChassis
}

// ChannelBytesPerSec reports the peak word-traffic rate of one NCDRAM
// channel under this configuration.
func (c Config) ChannelBytesPerSec() float64 {
	return 8 / c.WordAccessTime.Seconds()
}

// PeakMemoryBytesPerSec reports the aggregate peak word-traffic rate of the
// whole machine — the denominator for "% of peak" style metrics.
func (c Config) PeakMemoryBytesPerSec() float64 {
	return c.ChannelBytesPerSec() * float64(c.TotalNodelets())
}

// HardwareChick returns the configuration of the prototype hardware as the
// paper describes it in section III-A: one node usable (firmware bugs limit
// multi-node operation), 8 nodelets, a single 150 MHz Gossamer core per
// nodelet with 64 threadlet contexts, DDR4-1600 behind an 8-bit channel,
// and a node migration engine that sustains 9 M migrations/s at 1-2 us per
// migration (both measured by the paper's ping-pong benchmark).
//
// The 50 ns per-word channel occupancy and the 1.5 us load-to-use latency
// are calibrated so that (a) one node peaks at ~1.2 GB/s on STREAM and
// (b) single-nodelet STREAM scales through ~32 threads before plateauing,
// both as measured in the paper (Figs. 4-5).
func HardwareChick() Config {
	return Config{
		Name:               "emu-chick-hw",
		Nodes:              1,
		NodeletsPerNode:    8,
		GCsPerNodelet:      1,
		ThreadsPerGC:       64,
		CoreHz:             150e6,
		MemIssueCycles:     1,
		WordAccessTime:     50 * sim.Nanosecond,
		MemLatency:         1500 * sim.Nanosecond,
		MigrationsPerSec:   9e6,
		MigrationLatency:   1500 * sim.Nanosecond,
		InterNodeLatency:   800 * sim.Nanosecond,
		ContextBytes:       200,
		FabricBytesPerSec:  2.5e9,
		LocalSpawnCycles:   40,
		RemoteSpawnLatency: 2 * sim.Microsecond,
	}
}

// HardwareChickNodes returns the prototype configuration extended to the
// given number of node cards — the "initial test of the full 8-node
// configuration" that yielded 6.5 GB/s before becoming unstable.
func HardwareChickNodes(nodes int) Config {
	c := HardwareChick()
	c.Name = fmt.Sprintf("emu-chick-hw-%dnode", nodes)
	c.Nodes = nodes
	return c
}

// SimMatched returns the vendor simulator configured to match the prototype
// (the validation configuration of section IV-D). It is identical to
// HardwareChick except for the one discrepancy the paper isolates with the
// ping-pong benchmark: the simulated migration engine sustains 16 M
// migrations/s across a nodelet pair where hardware sustains 9 M.
func SimMatched() Config {
	c := HardwareChick()
	c.Name = "emu-sim-matched"
	c.MigrationsPerSec = 16e6
	c.MigrationLatency = 850 * sim.Nanosecond
	return c
}

// FullSpeed returns the design-speed configuration the paper projects with
// the simulator (Fig. 11): 300 MHz Gossamer cores, four cores per nodelet
// with 256 contexts each, DDR4-2133 channels, and the fast migration
// engine, across the given number of node cards (8 gives the 64-nodelet
// system of Fig. 11).
func FullSpeed(nodes int) Config {
	return Config{
		Name:               fmt.Sprintf("emu-fullspeed-%dnode", nodes),
		Nodes:              nodes,
		NodeletsPerNode:    8,
		GCsPerNodelet:      4,
		ThreadsPerGC:       256,
		CoreHz:             300e6,
		MemIssueCycles:     1,
		WordAccessTime:     sim.Time(37500), // 37.5 ns: DDR4-2133 scaling of the 1600 MT/s channel
		MemLatency:         900 * sim.Nanosecond,
		MigrationsPerSec:   16e6,
		MigrationLatency:   850 * sim.Nanosecond,
		InterNodeLatency:   500 * sim.Nanosecond,
		ContextBytes:       200,
		FabricBytesPerSec:  5e9,
		LocalSpawnCycles:   40,
		RemoteSpawnLatency: 1 * sim.Microsecond,
	}
}

// FullSpeedRack returns the design-speed configuration scaled to a rack of
// the given number of chassis, each an 8-node (64-nodelet) Fig. 11 system,
// joined by a top-of-rack fabric tier. A full rack is millions of hardware
// thread contexts (chassis × 64 nodelets × 1024 contexts), which is only
// tractable to simulate on the continuation proc engine — a goroutine per
// resident threadlet would exhaust the host long before the model does.
// FullSpeedRack(1) differs from FullSpeed(8) only in naming the chassis
// tier explicitly; no transfer crosses a chassis, so timings are identical.
func FullSpeedRack(chassis int) Config {
	c := FullSpeed(8 * chassis)
	c.Name = fmt.Sprintf("emu-fullspeed-rack-%dchassis", chassis)
	c.NodesPerChassis = 8
	// The rack tier is an aggregated top-of-rack switch hop: noticeably
	// longer than the in-chassis RapidIO mesh, same order of magnitude.
	c.InterChassisLatency = 2 * sim.Microsecond
	return c
}
