package machine

import (
	"testing"
	"testing/quick"

	"emuchick/internal/workload"
)

// randomProgram drives a system with a pseudo-random mix of every thread
// operation and returns it for invariant checking.
func randomProgram(t *testing.T, seed uint64, ops int) (*System, error) {
	t.Helper()
	sys := NewSystem(HardwareChick())
	arr := sys.Mem.AllocStriped(256)
	acc := sys.Mem.AllocLocal(3, 4)
	rng := workload.NewRNG(seed)
	// Pre-draw the op stream so the simulated schedule cannot influence
	// the workload (determinism of the generator itself).
	kinds := make([]int, ops)
	args := make([]int, ops)
	for i := range kinds {
		kinds[i] = rng.Intn(7)
		args[i] = rng.Intn(256)
	}
	_, err := sys.Run(func(root *Thread) {
		for w := 0; w < 8; w++ {
			w := w
			root.SpawnAt(w, func(th *Thread) {
				for i := w; i < ops; i += 8 {
					switch kinds[i] {
					case 0:
						th.Load(arr.At(args[i]))
					case 1:
						th.Store(arr.At(args[i]), uint64(i))
					case 2:
						th.FetchAdd(acc.At(args[i]%4), 1)
					case 3:
						th.RemoteAdd(acc.At(args[i]%4), 1)
					case 4:
						th.MigrateTo(args[i] % 8)
					case 5:
						th.Compute(int64(args[i]))
					case 6:
						th.Spawn(func(c *Thread) { c.Load(arr.At(args[i])) })
					}
				}
				th.Sync()
			})
		}
	})
	return sys, err
}

// Property: for any op mix, the machine's conservation laws hold —
// migrations out equal migrations in, every spawned thread completes, all
// context slots drain, and the per-nodelet spawn counts account for every
// thread.
func TestMachineConservationProperty(t *testing.T) {
	f := func(seed uint64, opsRaw uint8) bool {
		ops := int(opsRaw%100) + 20
		sys, err := randomProgram(t, seed, ops)
		if err != nil {
			return false
		}
		c := sys.Counters
		var in, out uint64
		for nl := 0; nl < c.Nodelets(); nl++ {
			in += c.Nodelet(nl).MigrationsIn
			out += c.Nodelet(nl).MigrationsOut
		}
		if in != out {
			return false
		}
		if c.ThreadsSpawned != c.ThreadsCompleted || c.LiveThreads != 0 {
			return false
		}
		if c.TotalSpawns() != c.ThreadsSpawned {
			return false
		}
		for nl := 0; nl < sys.Nodelets(); nl++ {
			if sys.nodelets[nl].slots.InUse() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same seed produces byte-identical counters and end time.
func TestMachineDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, errA := randomProgram(t, seed, 80)
		b, errB := randomProgram(t, seed, 80)
		if errA != nil || errB != nil {
			return false
		}
		if a.Eng.Now() != b.Eng.Now() || a.Eng.Fired() != b.Eng.Fired() {
			return false
		}
		for nl := 0; nl < a.Counters.Nodelets(); nl++ {
			if a.Counters.Nodelet(nl) != b.Counters.Nodelet(nl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
