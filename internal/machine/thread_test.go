package machine

import (
	"testing"

	"emuchick/internal/sim"
)

// run executes root on a fresh system with the given config and returns the
// system and elapsed time, failing the test on simulation errors.
func run(t *testing.T, cfg Config, root func(*Thread)) (*System, sim.Time) {
	t.Helper()
	s := NewSystem(cfg)
	elapsed, err := s.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	return s, elapsed
}

func TestLocalLoadTiming(t *testing.T) {
	cfg := HardwareChick()
	var got sim.Time
	s, _ := run(t, cfg, func(th *Thread) {
		arr := th.System().Mem.AllocLocal(0, 4)
		th.System().Mem.Write(arr.At(2), 99)
		t0 := th.Now()
		if v := th.Load(arr.At(2)); v != 99 {
			t.Errorf("Load = %d, want 99", v)
		}
		got = th.Now() - t0
	})
	want := s.clock.Cycles(cfg.MemIssueCycles) + cfg.WordAccessTime + cfg.MemLatency
	if got != want {
		t.Fatalf("local load took %v, want %v", got, want)
	}
	if s.Counters.Nodelet(0).LocalReads != 1 {
		t.Fatalf("LocalReads = %d", s.Counters.Nodelet(0).LocalReads)
	}
}

func TestRemoteLoadMigrates(t *testing.T) {
	s, _ := run(t, HardwareChick(), func(th *Thread) {
		arr := th.System().Mem.AllocLocal(5, 1)
		th.System().Mem.Write(arr.At(0), 7)
		if th.Nodelet() != 0 {
			t.Fatalf("root on nodelet %d", th.Nodelet())
		}
		if v := th.Load(arr.At(0)); v != 7 {
			t.Errorf("Load = %d", v)
		}
		if th.Nodelet() != 5 {
			t.Errorf("thread on nodelet %d after remote load, want 5", th.Nodelet())
		}
	})
	c := s.Counters
	if c.Nodelet(0).MigrationsOut != 1 || c.Nodelet(5).MigrationsIn != 1 {
		t.Fatalf("migration counters: out0=%d in5=%d",
			c.Nodelet(0).MigrationsOut, c.Nodelet(5).MigrationsIn)
	}
	// The read itself is served locally on nodelet 5.
	if c.Nodelet(5).LocalReads != 1 || c.Nodelet(0).LocalReads != 0 {
		t.Fatal("read served on wrong nodelet")
	}
}

func TestMigrationLatencyBounds(t *testing.T) {
	cfg := HardwareChick()
	var dur sim.Time
	run(t, cfg, func(th *Thread) {
		t0 := th.Now()
		th.MigrateTo(3)
		dur = th.Now() - t0
	})
	// One uncontended migration costs engine service + flight latency;
	// the paper measures 1-2 us end to end.
	if dur < cfg.MigrationLatency {
		t.Fatalf("migration faster than flight latency: %v", dur)
	}
	if dur > 2*sim.Microsecond {
		t.Fatalf("uncontended migration took %v, exceeds the paper's 2 us bound", dur)
	}
}

func TestMigrateToSelfIsFree(t *testing.T) {
	s, _ := run(t, HardwareChick(), func(th *Thread) {
		t0 := th.Now()
		th.MigrateTo(th.Nodelet())
		if th.Now() != t0 {
			t.Error("self-migration consumed time")
		}
	})
	if s.Counters.TotalMigrations() != 0 {
		t.Fatal("self-migration counted")
	}
}

func TestRemoteStoreIsPosted(t *testing.T) {
	cfg := HardwareChick()
	var dur sim.Time
	s, _ := run(t, cfg, func(th *Thread) {
		arr := th.System().Mem.AllocLocal(4, 1)
		t0 := th.Now()
		th.Store(arr.At(0), 11)
		dur = th.Now() - t0
		if th.Nodelet() != 0 {
			t.Error("remote store migrated the thread")
		}
		if th.System().Mem.Read(arr.At(0)) != 11 {
			t.Error("remote store lost")
		}
	})
	// Posted: the thread only pays the issue cycle, far less than a
	// migration or the memory latency.
	if dur >= cfg.MemLatency {
		t.Fatalf("posted store blocked for %v", dur)
	}
	if s.Counters.Nodelet(4).RemoteStores != 1 {
		t.Fatalf("RemoteStores = %d", s.Counters.Nodelet(4).RemoteStores)
	}
}

func TestLocalStoreBlocks(t *testing.T) {
	cfg := HardwareChick()
	var dur sim.Time
	run(t, cfg, func(th *Thread) {
		arr := th.System().Mem.AllocLocal(0, 1)
		t0 := th.Now()
		th.Store(arr.At(0), 5)
		dur = th.Now() - t0
	})
	want := NewSystem(cfg).clock.Cycles(cfg.MemIssueCycles) + cfg.WordAccessTime + cfg.MemLatency
	if dur != want {
		t.Fatalf("local store took %v, want %v", dur, want)
	}
}

func TestFetchAddLocalAndRemote(t *testing.T) {
	s, _ := run(t, HardwareChick(), func(th *Thread) {
		local := th.System().Mem.AllocLocal(0, 1)
		remote := th.System().Mem.AllocLocal(6, 1)
		if old := th.FetchAdd(local.At(0), 5); old != 0 {
			t.Errorf("local FetchAdd returned %d", old)
		}
		if old := th.FetchAdd(local.At(0), 3); old != 5 {
			t.Errorf("second FetchAdd returned %d", old)
		}
		if old := th.FetchAdd(remote.At(0), 9); old != 0 {
			t.Errorf("remote FetchAdd returned %d", old)
		}
		if th.Nodelet() != 0 {
			t.Error("FetchAdd migrated the thread")
		}
	})
	if s.Counters.Nodelet(0).Atomics != 2 || s.Counters.Nodelet(6).Atomics != 1 {
		t.Fatal("atomic counters wrong")
	}
}

func TestRemoteAddAccumulates(t *testing.T) {
	s, _ := run(t, HardwareChick(), func(th *Thread) {
		acc := th.System().Mem.AllocLocal(7, 1)
		for i := 0; i < 10; i++ {
			th.RemoteAdd(acc.At(0), 2)
		}
		th.Sync()
		if got := th.System().Mem.Read(acc.At(0)); got != 20 {
			t.Errorf("accumulated %d, want 20", got)
		}
	})
	if s.Counters.Nodelet(7).Atomics != 10 {
		t.Fatal("RemoteAdd atomics miscounted")
	}
}

func TestRemoteAddFloat(t *testing.T) {
	s, _ := run(t, HardwareChick(), func(th *Thread) {
		acc := th.System().Mem.AllocLocal(5, 1)
		for i := 0; i < 8; i++ {
			th.RemoteAddFloat(acc.At(0), 0.25)
		}
		th.Sync()
		if th.Nodelet() != 0 {
			t.Error("RemoteAddFloat migrated the thread")
		}
	})
	if s.Counters.Nodelet(5).Atomics != 8 {
		t.Fatalf("Atomics = %d", s.Counters.Nodelet(5).Atomics)
	}
}

func TestPostedBackpressure(t *testing.T) {
	// A burst of posted stores to one remote word must throttle to the
	// destination channel's service rate once the finite remote queue
	// fills, so doubling the burst roughly doubles the time.
	elapsedFor := func(n int) sim.Time {
		s := NewSystem(HardwareChick())
		cell := s.Mem.AllocLocal(7, 1)
		elapsed, err := s.Run(func(th *Thread) {
			for i := 0; i < n; i++ {
				th.Store(cell.At(0), uint64(i))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	small, big := elapsedFor(500), elapsedFor(1000)
	ratio := big.Seconds() / small.Seconds()
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("backpressure missing: 500->%v 1000->%v (ratio %.2f)", small, big, ratio)
	}
}

func TestSpawnSyncSemantics(t *testing.T) {
	s, _ := run(t, HardwareChick(), func(th *Thread) {
		sum := th.System().Mem.AllocLocal(0, 1)
		for i := 0; i < 8; i++ {
			th.Spawn(func(c *Thread) {
				c.Compute(100)
				c.FetchAdd(sum.At(0), 1)
			})
		}
		th.Sync()
		if got := th.Peek(sum.At(0)); got != 8 {
			t.Errorf("after Sync sum = %d, want 8", got)
		}
	})
	if s.Counters.ThreadsSpawned != 9 || s.Counters.ThreadsCompleted != 9 {
		t.Fatalf("thread accounting: %d spawned, %d completed",
			s.Counters.ThreadsSpawned, s.Counters.ThreadsCompleted)
	}
	if s.Counters.Nodelet(0).LocalSpawns != 9 {
		t.Fatalf("LocalSpawns = %d, want 9 (root + 8 children)", s.Counters.Nodelet(0).LocalSpawns)
	}
}

func TestImplicitSyncAtThreadEnd(t *testing.T) {
	// A thread that returns without calling Sync must still be joined
	// after its children (Cilk semantics).
	var childDone bool
	run(t, HardwareChick(), func(th *Thread) {
		th.Spawn(func(c *Thread) {
			c.Spawn(func(g *Thread) {
				g.Compute(10000)
				childDone = true
			})
			// no explicit Sync
		})
		th.Sync()
		if !childDone {
			t.Error("grandchild not finished at parent Sync")
		}
	})
}

func TestSpawnAtPlacesChild(t *testing.T) {
	s, _ := run(t, HardwareChick(), func(th *Thread) {
		for nl := 0; nl < 8; nl++ {
			nl := nl
			th.SpawnAt(nl, func(c *Thread) {
				if c.Nodelet() != nl {
					t.Errorf("child started on nodelet %d, want %d", c.Nodelet(), nl)
				}
			})
		}
		th.Sync()
	})
	for nl := 1; nl < 8; nl++ {
		if s.Counters.Nodelet(nl).RemoteSpawns != 1 {
			t.Fatalf("nodelet %d RemoteSpawns = %d", nl, s.Counters.Nodelet(nl).RemoteSpawns)
		}
	}
	if s.Counters.TotalMigrations() != 0 {
		t.Fatal("remote spawns must not count as migrations")
	}
}

func TestContextSlotsLimitResidentThreads(t *testing.T) {
	cfg := HardwareChick()
	cfg.ThreadsPerGC = 4 // tiny capacity to make the limit observable
	s := NewSystem(cfg)
	var maxLive int
	_, err := s.Run(func(th *Thread) {
		for i := 0; i < 16; i++ {
			th.Spawn(func(c *Thread) {
				c.Compute(1000)
			})
		}
		th.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	maxLive = s.nodelets[0].slots.MaxInUse()
	if maxLive > cfg.ContextsPerNodelet() {
		t.Fatalf("resident threads %d exceeded context capacity %d", maxLive, cfg.ContextsPerNodelet())
	}
	if s.Counters.ThreadsCompleted != 17 {
		t.Fatalf("completed %d of 17", s.Counters.ThreadsCompleted)
	}
}

func TestMigrationReleasesSlot(t *testing.T) {
	// A full nodelet must accept a new spawn once a resident thread
	// migrates away.
	cfg := HardwareChick()
	cfg.ThreadsPerGC = 2
	s := NewSystem(cfg)
	_, err := s.Run(func(th *Thread) {
		remote := s.Mem.AllocLocal(1, 1)
		// Root holds slot 1 of 2. Child A takes slot 2 and migrates away.
		th.Spawn(func(a *Thread) {
			a.Load(remote.At(0)) // migrates to nodelet 1
			a.Compute(100000)
		})
		// Child B needs the slot A vacates.
		th.Spawn(func(b *Thread) { b.Compute(10) })
		th.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeekPokeLocalityEnforced(t *testing.T) {
	run(t, HardwareChick(), func(th *Thread) {
		remote := th.System().Mem.AllocLocal(3, 1)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("remote Peek did not panic")
				}
			}()
			th.Peek(remote.At(0))
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("remote Poke did not panic")
				}
			}()
			th.Poke(remote.At(0), 1)
		}()
	})
}

func TestCrossNodeMigration(t *testing.T) {
	cfg := HardwareChickNodes(2)
	s, _ := run(t, cfg, func(th *Thread) {
		arr := th.System().Mem.AllocLocal(12, 1) // node 1
		th.Load(arr.At(0))
		if th.Nodelet() != 12 {
			t.Errorf("on nodelet %d, want 12", th.Nodelet())
		}
	})
	if s.Counters.Nodelet(12).MigrationsIn != 1 {
		t.Fatal("cross-node migration not counted")
	}
	if s.links[0].Ops() != 1 {
		t.Fatal("cross-node migration did not use the fabric link")
	}
}

func TestDeterminism(t *testing.T) {
	trial := func() (sim.Time, uint64, uint64) {
		s := NewSystem(HardwareChick())
		arr := s.Mem.AllocStriped(256)
		elapsed, err := s.Run(func(th *Thread) {
			for w := 0; w < 16; w++ {
				w := w
				th.SpawnAt(w%8, func(c *Thread) {
					for i := w; i < 256; i += 16 {
						c.Load(arr.At(i))
					}
				})
			}
			th.Sync()
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, s.Counters.TotalMigrations(), s.Counters.TotalWords()
	}
	e1, m1, w1 := trial()
	e2, m2, w2 := trial()
	if e1 != e2 || m1 != m2 || w1 != w2 {
		t.Fatalf("runs diverged: (%v,%d,%d) vs (%v,%d,%d)", e1, m1, w1, e2, m2, w2)
	}
}

func TestComputeChargesCore(t *testing.T) {
	cfg := HardwareChick()
	var dur sim.Time
	s, _ := run(t, cfg, func(th *Thread) {
		t0 := th.Now()
		th.Compute(150) // 150 cycles at 150 MHz = 1 us
		dur = th.Now() - t0
	})
	if dur != s.clock.Cycles(150) {
		t.Fatalf("Compute(150) took %v", dur)
	}
	if s.Counters.Nodelet(0).ComputeCycles != 150 {
		t.Fatal("compute cycles miscounted")
	}
	// Compute(0) is free.
	run(t, cfg, func(th *Thread) {
		t0 := th.Now()
		th.Compute(0)
		if th.Now() != t0 {
			t.Error("Compute(0) consumed time")
		}
	})
}

func TestCoreContentionSerializesIssue(t *testing.T) {
	// Two threads computing on the same single-core nodelet take twice as
	// long in aggregate as one.
	cfg := HardwareChick()
	_, one := run(t, cfg, func(th *Thread) {
		th.Spawn(func(c *Thread) { c.Compute(15000) })
		th.Sync()
	})
	_, two := run(t, cfg, func(th *Thread) {
		th.Spawn(func(c *Thread) { c.Compute(15000) })
		th.Spawn(func(c *Thread) { c.Compute(15000) })
		th.Sync()
	})
	if two < one+NewSystem(cfg).clock.Cycles(15000)*9/10 {
		t.Fatalf("core contention missing: one=%v two=%v", one, two)
	}
}
