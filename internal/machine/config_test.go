package machine

import (
	"math"
	"strings"
	"testing"
)

func TestPresetConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{
		HardwareChick(),
		HardwareChickNodes(8),
		SimMatched(),
		FullSpeed(1),
		FullSpeed(8),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %q invalid: %v", cfg.Name, err)
		}
	}
}

func TestValidateCatchesEveryField(t *testing.T) {
	base := HardwareChick()
	mutations := []struct {
		field string
		mut   func(*Config)
	}{
		{"Nodes", func(c *Config) { c.Nodes = 0 }},
		{"NodeletsPerNode", func(c *Config) { c.NodeletsPerNode = 0 }},
		{"GCsPerNodelet", func(c *Config) { c.GCsPerNodelet = 0 }},
		{"ThreadsPerGC", func(c *Config) { c.ThreadsPerGC = -1 }},
		{"CoreHz", func(c *Config) { c.CoreHz = 0 }},
		{"WordAccessTime", func(c *Config) { c.WordAccessTime = 0 }},
		{"MemLatency", func(c *Config) { c.MemLatency = -1 }},
		{"MigrationsPerSec", func(c *Config) { c.MigrationsPerSec = 0 }},
		{"ContextBytes", func(c *Config) { c.ContextBytes = 0 }},
		{"FabricBytesPerSec", func(c *Config) { c.FabricBytesPerSec = 0 }},
		{"MemIssueCycles", func(c *Config) { c.MemIssueCycles = 0 }},
	}
	for _, m := range mutations {
		c := base
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation of %s not caught", m.field)
		} else if !strings.Contains(err.Error(), base.Name) {
			t.Errorf("error for %s does not name the config: %v", m.field, err)
		}
	}
}

func TestTopologyHelpers(t *testing.T) {
	c := FullSpeed(8)
	if c.TotalNodelets() != 64 {
		t.Fatalf("TotalNodelets = %d, want 64", c.TotalNodelets())
	}
	if c.ContextsPerNodelet() != 4*256 {
		t.Fatalf("ContextsPerNodelet = %d", c.ContextsPerNodelet())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(7) != 0 || c.NodeOf(8) != 1 || c.NodeOf(63) != 7 {
		t.Fatal("NodeOf mapping wrong")
	}
}

func TestHardwareChickMatchesPaperScales(t *testing.T) {
	c := HardwareChick()
	// One Gossamer core per nodelet with 64 threadlets (section III-A).
	if c.GCsPerNodelet != 1 || c.ThreadsPerGC != 64 {
		t.Fatal("prototype core/thread counts wrong")
	}
	if c.CoreHz != 150e6 {
		t.Fatal("prototype clock should be 150 MHz")
	}
	// 8 narrow channels per node; per-channel peak should be in the
	// NCDRAM ballpark the paper describes (~2 GB/s raw, less sustained).
	ch := c.ChannelBytesPerSec()
	if ch < 100e6 || ch > 2.2e9 {
		t.Fatalf("channel rate %v B/s out of NCDRAM range", ch)
	}
	// Node peak should make ~1.2 GB/s STREAM achievable.
	peak := c.PeakMemoryBytesPerSec()
	if peak < 1.2e9 {
		t.Fatalf("node peak %v B/s cannot support the measured 1.2 GB/s STREAM", peak)
	}
}

func TestSimMatchedDiffersOnlyInMigrationEngine(t *testing.T) {
	hw, sm := HardwareChick(), SimMatched()
	if sm.MigrationsPerSec <= hw.MigrationsPerSec {
		t.Fatal("simulator migration engine should be faster than hardware")
	}
	// Ratio should reflect 16 M/s vs 9 M/s pair rates.
	ratio := sm.MigrationsPerSec / hw.MigrationsPerSec
	if math.Abs(ratio-16.0/9.0) > 0.01 {
		t.Fatalf("migration rate ratio = %.3f, want 16/9", ratio)
	}
	// Memory subsystem must be identical so STREAM validates (Fig. 10).
	if sm.WordAccessTime != hw.WordAccessTime || sm.MemLatency != hw.MemLatency ||
		sm.CoreHz != hw.CoreHz || sm.ThreadsPerGC != hw.ThreadsPerGC {
		t.Fatal("SimMatched memory/core model must match hardware")
	}
}

func TestFullSpeedIsDesignConfig(t *testing.T) {
	c := FullSpeed(8)
	if c.CoreHz != 300e6 || c.GCsPerNodelet != 4 || c.ThreadsPerGC != 256 {
		t.Fatal("full-speed config does not match the design parameters")
	}
	if c.WordAccessTime >= HardwareChick().WordAccessTime {
		t.Fatal("full-speed memory should be faster than DDR4-1600 prototype")
	}
}
