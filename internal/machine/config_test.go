package machine

import (
	"math"
	"strings"
	"testing"
)

func TestPresetConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{
		HardwareChick(),
		HardwareChickNodes(8),
		SimMatched(),
		FullSpeed(1),
		FullSpeed(8),
		FullSpeedRack(1),
		FullSpeedRack(4),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %q invalid: %v", cfg.Name, err)
		}
	}
}

func TestValidateCatchesEveryField(t *testing.T) {
	base := HardwareChick()
	mutations := []struct {
		field string
		mut   func(*Config)
	}{
		{"Nodes", func(c *Config) { c.Nodes = 0 }},
		{"NodeletsPerNode", func(c *Config) { c.NodeletsPerNode = 0 }},
		{"GCsPerNodelet", func(c *Config) { c.GCsPerNodelet = 0 }},
		{"ThreadsPerGC", func(c *Config) { c.ThreadsPerGC = -1 }},
		{"CoreHz", func(c *Config) { c.CoreHz = 0 }},
		{"WordAccessTime", func(c *Config) { c.WordAccessTime = 0 }},
		{"MemLatency", func(c *Config) { c.MemLatency = -1 }},
		{"MigrationsPerSec", func(c *Config) { c.MigrationsPerSec = 0 }},
		{"ContextBytes", func(c *Config) { c.ContextBytes = 0 }},
		{"FabricBytesPerSec", func(c *Config) { c.FabricBytesPerSec = 0 }},
		{"MemIssueCycles", func(c *Config) { c.MemIssueCycles = 0 }},
		{"NodesPerChassis", func(c *Config) { c.NodesPerChassis = -1 }},
		{"InterChassisLatency", func(c *Config) { c.InterChassisLatency = -1 }},
		{"Nodes%NodesPerChassis", func(c *Config) { c.Nodes = 3; c.NodesPerChassis = 2 }},
	}
	for _, m := range mutations {
		c := base
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation of %s not caught", m.field)
		} else if !strings.Contains(err.Error(), base.Name) {
			t.Errorf("error for %s does not name the config: %v", m.field, err)
		}
	}
}

func TestTopologyHelpers(t *testing.T) {
	c := FullSpeed(8)
	if c.TotalNodelets() != 64 {
		t.Fatalf("TotalNodelets = %d, want 64", c.TotalNodelets())
	}
	if c.ContextsPerNodelet() != 4*256 {
		t.Fatalf("ContextsPerNodelet = %d", c.ContextsPerNodelet())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(7) != 0 || c.NodeOf(8) != 1 || c.NodeOf(63) != 7 {
		t.Fatal("NodeOf mapping wrong")
	}
}

func TestChassisTopologyHelpers(t *testing.T) {
	// Single-tier: everything is chassis 0, and the chassis count is 1,
	// regardless of node count — no transfer ever crosses a chassis.
	st := HardwareChickNodes(8)
	if st.Chassis() != 1 {
		t.Fatalf("single-tier Chassis() = %d, want 1", st.Chassis())
	}
	for _, nl := range []int{0, 7, 8, 63} {
		if st.ChassisOf(nl) != 0 {
			t.Fatalf("single-tier ChassisOf(%d) = %d, want 0", nl, st.ChassisOf(nl))
		}
	}
	// Rack tier: 4 chassis of 8 nodes (64 nodelets) each.
	r := FullSpeedRack(4)
	if r.Chassis() != 4 {
		t.Fatalf("rack Chassis() = %d, want 4", r.Chassis())
	}
	if r.TotalNodelets() != 256 {
		t.Fatalf("rack TotalNodelets = %d, want 256", r.TotalNodelets())
	}
	for _, tc := range []struct{ nodelet, chassis int }{
		{0, 0}, {63, 0}, {64, 1}, {127, 1}, {128, 2}, {255, 3},
	} {
		if got := r.ChassisOf(tc.nodelet); got != tc.chassis {
			t.Errorf("ChassisOf(%d) = %d, want %d", tc.nodelet, got, tc.chassis)
		}
	}
}

func TestFullSpeedRackExtendsFullSpeed(t *testing.T) {
	// One chassis is exactly the 64-nodelet Fig. 11 machine with the rack
	// tier named explicitly: same timings everywhere, and since no transfer
	// crosses a chassis the extra latency field is never charged.
	r1, fs := FullSpeedRack(1), FullSpeed(8)
	r1.Name, fs.Name = "", ""
	r1.NodesPerChassis, r1.InterChassisLatency = 0, 0
	if r1 != fs {
		t.Fatalf("FullSpeedRack(1) differs from FullSpeed(8) beyond the rack tier:\nrack:      %+v\nfullspeed: %+v", r1, fs)
	}
	r := FullSpeedRack(2)
	if r.Nodes != 16 || r.NodesPerChassis != 8 || r.InterChassisLatency <= 0 {
		t.Fatalf("FullSpeedRack(2) rack tier wrong: %+v", r)
	}
	// A full rack reaches the million-threadlet regime the continuation
	// engine exists for: chassis x 64 nodelets x 1024 contexts.
	if contexts := FullSpeedRack(16).TotalNodelets() * r.ContextsPerNodelet(); contexts < 1<<20 {
		t.Fatalf("16-chassis rack holds %d contexts, want >= 2^20", contexts)
	}
}

func TestHardwareChickMatchesPaperScales(t *testing.T) {
	c := HardwareChick()
	// One Gossamer core per nodelet with 64 threadlets (section III-A).
	if c.GCsPerNodelet != 1 || c.ThreadsPerGC != 64 {
		t.Fatal("prototype core/thread counts wrong")
	}
	if c.CoreHz != 150e6 {
		t.Fatal("prototype clock should be 150 MHz")
	}
	// 8 narrow channels per node; per-channel peak should be in the
	// NCDRAM ballpark the paper describes (~2 GB/s raw, less sustained).
	ch := c.ChannelBytesPerSec()
	if ch < 100e6 || ch > 2.2e9 {
		t.Fatalf("channel rate %v B/s out of NCDRAM range", ch)
	}
	// Node peak should make ~1.2 GB/s STREAM achievable.
	peak := c.PeakMemoryBytesPerSec()
	if peak < 1.2e9 {
		t.Fatalf("node peak %v B/s cannot support the measured 1.2 GB/s STREAM", peak)
	}
}

func TestSimMatchedDiffersOnlyInMigrationEngine(t *testing.T) {
	hw, sm := HardwareChick(), SimMatched()
	if sm.MigrationsPerSec <= hw.MigrationsPerSec {
		t.Fatal("simulator migration engine should be faster than hardware")
	}
	// Ratio should reflect 16 M/s vs 9 M/s pair rates.
	ratio := sm.MigrationsPerSec / hw.MigrationsPerSec
	if math.Abs(ratio-16.0/9.0) > 0.01 {
		t.Fatalf("migration rate ratio = %.3f, want 16/9", ratio)
	}
	// Memory subsystem must be identical so STREAM validates (Fig. 10).
	if sm.WordAccessTime != hw.WordAccessTime || sm.MemLatency != hw.MemLatency ||
		sm.CoreHz != hw.CoreHz || sm.ThreadsPerGC != hw.ThreadsPerGC {
		t.Fatal("SimMatched memory/core model must match hardware")
	}
}

func TestFullSpeedIsDesignConfig(t *testing.T) {
	c := FullSpeed(8)
	if c.CoreHz != 300e6 || c.GCsPerNodelet != 4 || c.ThreadsPerGC != 256 {
		t.Fatal("full-speed config does not match the design parameters")
	}
	if c.WordAccessTime >= HardwareChick().WordAccessTime {
		t.Fatal("full-speed memory should be faster than DDR4-1600 prototype")
	}
}
