package machine

import (
	"testing"

	"emuchick/internal/sim"
)

func TestCrossNodeRemoteStoreLatency(t *testing.T) {
	cfg := HardwareChickNodes(2)
	s := NewSystem(cfg)
	intra := s.Mem.AllocLocal(4, 1)  // same node as nodelet 0
	inter := s.Mem.AllocLocal(12, 1) // node 1
	var intraDur, interDur sim.Time
	_, err := s.Run(func(th *Thread) {
		t0 := th.Now()
		th.Store(intra.At(0), 1)
		intraDur = th.Now() - t0
		t0 = th.Now()
		th.Store(inter.At(0), 2)
		interDur = th.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	// Posted stores never block for the flight either way.
	if intraDur != interDur {
		t.Fatalf("posted stores should cost the sender equally: %v vs %v", intraDur, interDur)
	}
	if s.Counters.Nodelet(12).RemoteStores != 1 {
		t.Fatal("cross-node store not delivered")
	}
}

func TestCrossNodeFetchAddPaysInterNodeRTT(t *testing.T) {
	cfg := HardwareChickNodes(2)
	s := NewSystem(cfg)
	intra := s.Mem.AllocLocal(4, 1)
	inter := s.Mem.AllocLocal(12, 1)
	var intraDur, interDur sim.Time
	_, err := s.Run(func(th *Thread) {
		t0 := th.Now()
		th.FetchAdd(intra.At(0), 1)
		intraDur = th.Now() - t0
		t0 = th.Now()
		th.FetchAdd(inter.At(0), 1)
		interDur = th.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	// The cross-node round trip adds 2x InterNodeLatency.
	want := intraDur + 2*cfg.InterNodeLatency
	if interDur != want {
		t.Fatalf("cross-node FetchAdd = %v, want %v", interDur, want)
	}
}

func TestCrossNodePingPongSlower(t *testing.T) {
	// Migrating across node cards pays the fabric link and the extra
	// inter-node latency, so a cross-node ping-pong is slower than an
	// intra-node one at a single thread.
	cfg := HardwareChickNodes(2)
	run := func(b int) sim.Time {
		s := NewSystem(cfg)
		elapsed, err := s.Run(func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.MigrateTo(b)
				th.MigrateTo(0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	intra := run(1)  // nodelet on the same node
	inter := run(12) // nodelet on node 1
	if inter <= intra {
		t.Fatalf("cross-node ping-pong (%v) should be slower than intra-node (%v)", inter, intra)
	}
}

func TestFullSpeed64NodeletTopology(t *testing.T) {
	s := NewSystem(FullSpeed(8))
	if s.Nodelets() != 64 {
		t.Fatalf("nodelets = %d", s.Nodelets())
	}
	arr := s.Mem.AllocStriped(64)
	_, err := s.Run(func(th *Thread) {
		for i := 0; i < 64; i++ {
			th.Load(arr.At(i)) // touch every nodelet across all 8 nodes
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters.TotalMigrations() != 63 {
		t.Fatalf("migrations = %d, want 63", s.Counters.TotalMigrations())
	}
	// Crossing 8 nodes uses 7 node boundaries' fabric links at least once.
	links := 0
	for nd := 0; nd < 8; nd++ {
		if s.links[nd].Ops() > 0 {
			links++
		}
	}
	if links < 7 {
		t.Fatalf("only %d fabric links used", links)
	}
}
