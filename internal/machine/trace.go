package machine

import (
	"context"
	"io"

	"emuchick/internal/memsys"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// The machine layer streams its operations into a trace.Observer: thread
// spawn/start/end, migrations with their trigger address, memory operation
// issue/complete, and periodic per-nodelet gauge samples. The contract is
// zero overhead when detached (emit is a single nil check, no allocation)
// and zero perturbation when attached: an observer only reads model state,
// never schedules events or touches a resource, so simulated times and
// counters are bit-identical either way. Gauge samples therefore piggyback
// on traced operations — the first operation at or after each interval
// boundary triggers one Sample per nodelet — instead of being driven by
// engine events of their own, which could outlive the last thread and move
// the run's end time.

// TraceKind classifies one traced machine operation.
//
// Deprecated: use trace.Kind; TraceKind is the same type.
type TraceKind = trace.Kind

// Legacy names for the original machine-layer kinds; new code should use
// the trace package's richer vocabulary directly.
const (
	TraceLoad        = trace.KindLoad
	TraceStore       = trace.KindStore
	TraceRemoteStore = trace.KindRemoteStore
	TraceAtomic      = trace.KindAtomic
	TraceMigrate     = trace.KindMigrate
	TraceSpawn       = trace.KindSpawn
)

// TraceEvent is one machine operation as observed by a tracer.
//
// Deprecated: use trace.Event; TraceEvent is the same type.
type TraceEvent = trace.Event

// defaultSampleEvery is the gauge sampling interval a system starts with;
// SampleEvery overrides it, and sampling only occurs while an observer is
// attached.
const defaultSampleEvery = sim.Microsecond

// Attach installs obs as the system's observer (nil detaches). It must be
// called before Run; the machine emits events synchronously from the
// engine's context, so obs needs no locking but must not touch the
// simulation.
func (s *System) Attach(obs trace.Observer) { s.obs = obs }

// Observer returns the attached observer, or nil.
func (s *System) Observer() trace.Observer { return s.obs }

// SampleEvery sets the gauge-sampling interval (d <= 0 disables sampling).
// Samples are taken at the first traced operation at or after each interval
// boundary, so they can never perturb the event stream.
func (s *System) SampleEvery(d sim.Time) {
	if d <= 0 {
		s.sampleEvery = 0
		return
	}
	s.sampleEvery = d
	s.nextSample = d
}

// WatchContext aborts the run with ctx's error once ctx is cancelled (nil
// detaches). The engine polls the context every few thousand events, so a
// SIGINT-driven cancel lands promptly without per-event overhead.
func (s *System) WatchContext(ctx context.Context) {
	if ctx == nil {
		s.Eng.Interrupt = nil
		return
	}
	s.Eng.Interrupt = ctx.Err
}

// Trace installs fn as the system's operation tracer (nil uninstalls).
// Tracing is for debugging and inspection; it does not affect timing.
//
// Deprecated: fn is adapted into a trace.Observer that ignores gauge
// samples; new code should Attach an Observer.
func (s *System) Trace(fn func(TraceEvent)) {
	if fn == nil {
		s.Attach(nil)
		return
	}
	s.Attach(trace.FuncObserver{OnEvent: fn})
}

// TraceTo installs a tracer that writes one line per event to w and stops
// after limit events (0 = unlimited).
func (s *System) TraceTo(w io.Writer, limit int) {
	count := 0
	s.Trace(func(e TraceEvent) {
		if limit > 0 && count >= limit {
			return
		}
		count++
		io.WriteString(w, e.String()+"\n")
	})
}

// emit streams one event to the observer, then takes gauge samples if an
// interval boundary has passed. The nil check is the entire cost of the
// detached fast path; keeping only that check in emit lets it inline into
// every machine operation, so a detached run never pays a call here at all.
//
//emu:hotpath nil-observer emit path: one inlined comparison when detached
func (s *System) emit(kind trace.Kind, nodelet, target int, addr memsys.Addr, start, end sim.Time) {
	if s.obs == nil {
		return
	}
	s.emitSlow(kind, nodelet, target, addr, start, end)
}

// emitSlow is emit's attached-observer path: deliver the event, then sample
// gauges if an interval boundary has passed. The local re-check mirrors
// emit's guard (it can't fail — emit already returned on nil).
func (s *System) emitSlow(kind trace.Kind, nodelet, target int, addr memsys.Addr, start, end sim.Time) {
	obs := s.obs
	if obs == nil {
		return
	}
	obs.Event(trace.Event{Time: start, End: end, Kind: kind, Nodelet: nodelet, Target: target, Addr: addr})
	if s.sampleEvery > 0 {
		if now := s.Eng.Now(); now >= s.nextSample {
			s.takeSamples(now)
		}
	}
}

// takeSamples reads every nodelet's gauges at now and advances the next
// sampling boundary past now. Both callers (emit, and the end-of-run
// boundary flush) already hold a non-nil observer, but the delivery loop
// re-checks locally so the guard is visible at the call through the
// interface itself.
//
//emu:hotpath runs only while sampling, but sits on the traced-run emit path
func (s *System) takeSamples(now sim.Time) {
	obs := s.obs
	if obs == nil {
		return
	}
	for i := range s.nodelets {
		nl := s.nodelets[i]
		obs.Sample(trace.Sample{
			Time:             now,
			Nodelet:          i,
			ContextsUsed:     nl.slots.InUse(),
			ContextWaiters:   nl.slots.Waiting(),
			ChannelBacklog:   backlog(nl.channel, now),
			MigrationBacklog: backlog(s.migEngines[s.Cfg.NodeOf(i)], now),
		})
	}
	if s.sampleEvery > 0 {
		steps := (now-s.nextSample)/s.sampleEvery + 1
		s.nextSample += steps * s.sampleEvery
	}
}

// backlog is the service time already booked ahead of a new arrival at r —
// its queue depth expressed in time.
func backlog(r *sim.Resource, now sim.Time) sim.Time {
	if b := r.FreeAt() - now; b > 0 {
		return b
	}
	return 0
}
