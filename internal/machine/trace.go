package machine

import (
	"fmt"
	"io"

	"emuchick/internal/memsys"
	"emuchick/internal/sim"
)

// TraceKind classifies one traced machine operation.
type TraceKind int

const (
	TraceLoad TraceKind = iota
	TraceStore
	TraceRemoteStore
	TraceAtomic
	TraceMigrate
	TraceSpawn
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceLoad:
		return "load"
	case TraceStore:
		return "store"
	case TraceRemoteStore:
		return "remote_store"
	case TraceAtomic:
		return "atomic"
	case TraceMigrate:
		return "migrate"
	case TraceSpawn:
		return "spawn"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one machine operation as observed by a tracer.
type TraceEvent struct {
	Time    sim.Time
	Kind    TraceKind
	Nodelet int         // where the issuing thread resides
	Target  int         // destination nodelet (migrations, remote ops); -1 otherwise
	Addr    memsys.Addr // the word involved, when applicable
}

// String renders the event as one trace line.
func (e TraceEvent) String() string {
	if e.Target >= 0 {
		return fmt.Sprintf("%12v %-12s nl%d -> nl%d %v", e.Time, e.Kind, e.Nodelet, e.Target, e.Addr)
	}
	return fmt.Sprintf("%12v %-12s nl%d %v", e.Time, e.Kind, e.Nodelet, e.Addr)
}

// Trace installs fn as the system's operation tracer (nil uninstalls).
// Tracing is for debugging and inspection; it does not affect timing.
func (s *System) Trace(fn func(TraceEvent)) { s.tracer = fn }

// TraceTo installs a tracer that writes one line per event to w and stops
// after limit events (0 = unlimited).
func (s *System) TraceTo(w io.Writer, limit int) {
	count := 0
	s.Trace(func(e TraceEvent) {
		if limit > 0 && count >= limit {
			return
		}
		count++
		fmt.Fprintln(w, e.String())
	})
}

// emit sends an event to the tracer if one is installed.
func (s *System) emit(kind TraceKind, nodelet, target int, addr memsys.Addr) {
	if s.tracer == nil {
		return
	}
	s.tracer(TraceEvent{Time: s.Eng.Now(), Kind: kind, Nodelet: nodelet, Target: target, Addr: addr})
}
