package machine

// Counters mirror the event counts the Emu vendor simulator reports ("the
// number of thread spawns, migrations, and memory operations per nodelet",
// section III-B). They are exact — every simulated operation increments
// exactly one of them — which the counter tests rely on.
//
// Storage is struct-of-arrays over a single arena: one contiguous []uint64
// holds every per-nodelet series back to back, so a whole-machine reduction
// (TotalWords, Snapshot, the gauge scorecards) walks unit-stride memory
// instead of striding over 104-byte per-nodelet structs, and the increment
// paths index a flat series with no pointer chasing. NodeletCounters remains
// the assembled per-nodelet view the public API returns.
type Counters struct {
	nodelets int
	arena    []uint64 // the single backing allocation, series-major

	// Per-nodelet series, each a window into arena.
	localSpawns, remoteSpawns   []uint64
	migrationsIn, migrationsOut []uint64
	localReads, localWrites     []uint64
	remoteStores, atomics       []uint64
	computeCycles, serviceCalls []uint64
	// Fault-injection series (zero on healthy runs); see internal/fault.
	stalledMigrations, migrationRetries, backoffCycles []uint64

	ThreadsSpawned   uint64
	ThreadsCompleted uint64
	LiveThreads      int
	MaxLiveThreads   int
}

// numSeries is how many per-nodelet series the arena holds.
const numSeries = 13

// NodeletCounters is the assembled per-nodelet view of the counter set.
type NodeletCounters struct {
	LocalSpawns   uint64 // threads created on this nodelet by a local parent
	RemoteSpawns  uint64 // threads created on this nodelet by a remote parent
	MigrationsIn  uint64
	MigrationsOut uint64
	LocalReads    uint64 // 8-byte word reads served by this nodelet's channel
	LocalWrites   uint64 // 8-byte word writes from resident threads
	RemoteStores  uint64 // posted stores arriving from other nodelets
	Atomics       uint64 // memory-side atomic operations served
	ComputeCycles uint64 // non-memory core cycles charged on this nodelet
	ServiceCalls  uint64 // OS requests forwarded to the stationary core

	// Fault-injection counters (zero on healthy runs): migrations that hit
	// at least one stall/outage window, individual backoff retries, and
	// the total core cycles spent backing off. See internal/fault.
	StalledMigrations uint64
	MigrationRetries  uint64
	BackoffCycles     uint64
}

func newCounters(nodelets int) *Counters {
	c := &Counters{nodelets: nodelets, arena: make([]uint64, numSeries*nodelets)}
	series := func(i int) []uint64 { return c.arena[i*nodelets : (i+1)*nodelets : (i+1)*nodelets] }
	c.localSpawns = series(0)
	c.remoteSpawns = series(1)
	c.migrationsIn = series(2)
	c.migrationsOut = series(3)
	c.localReads = series(4)
	c.localWrites = series(5)
	c.remoteStores = series(6)
	c.atomics = series(7)
	c.computeCycles = series(8)
	c.serviceCalls = series(9)
	c.stalledMigrations = series(10)
	c.migrationRetries = series(11)
	c.backoffCycles = series(12)
	return c
}

// Nodelet assembles a copy of the counters for one nodelet from the series.
func (c *Counters) Nodelet(nl int) NodeletCounters {
	return NodeletCounters{
		LocalSpawns:       c.localSpawns[nl],
		RemoteSpawns:      c.remoteSpawns[nl],
		MigrationsIn:      c.migrationsIn[nl],
		MigrationsOut:     c.migrationsOut[nl],
		LocalReads:        c.localReads[nl],
		LocalWrites:       c.localWrites[nl],
		RemoteStores:      c.remoteStores[nl],
		Atomics:           c.atomics[nl],
		ComputeCycles:     c.computeCycles[nl],
		ServiceCalls:      c.serviceCalls[nl],
		StalledMigrations: c.stalledMigrations[nl],
		MigrationRetries:  c.migrationRetries[nl],
		BackoffCycles:     c.backoffCycles[nl],
	}
}

// Snapshot returns a copy of every nodelet's counters, for whole-machine
// comparisons (the trace-equivalence tests diff traced vs untraced runs).
func (c *Counters) Snapshot() []NodeletCounters {
	out := make([]NodeletCounters, c.nodelets)
	for i := range out {
		out[i] = c.Nodelet(i)
	}
	return out
}

// Nodelets reports how many nodelets the counter set spans.
func (c *Counters) Nodelets() int { return c.nodelets }

// TotalMigrations sums migrations-out across nodelets (each migration is
// counted once out and once in).
func (c *Counters) TotalMigrations() uint64 { return sum(c.migrationsOut) }

// TotalSpawns sums thread creations across nodelets.
func (c *Counters) TotalSpawns() uint64 {
	return sum(c.localSpawns) + sum(c.remoteSpawns)
}

// TotalWords sums word reads, word writes, remote stores, and atomics —
// the total channel word traffic of the run.
func (c *Counters) TotalWords() uint64 {
	return sum(c.localReads) + sum(c.localWrites) + sum(c.remoteStores) + sum(c.atomics)
}

// TotalBytes is TotalWords scaled to bytes.
func (c *Counters) TotalBytes() uint64 { return 8 * c.TotalWords() }

func sum(series []uint64) uint64 {
	var total uint64
	for _, v := range series {
		total += v
	}
	return total
}

func (c *Counters) threadStarted() {
	c.ThreadsSpawned++
	c.LiveThreads++
	if c.LiveThreads > c.MaxLiveThreads {
		c.MaxLiveThreads = c.LiveThreads
	}
}

func (c *Counters) threadFinished() {
	c.ThreadsCompleted++
	c.LiveThreads--
}
