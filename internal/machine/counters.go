package machine

// Counters mirror the event counts the Emu vendor simulator reports ("the
// number of thread spawns, migrations, and memory operations per nodelet",
// section III-B). They are exact — every simulated operation increments
// exactly one of them — which the counter tests rely on.
type Counters struct {
	perNodelet []NodeletCounters

	ThreadsSpawned   uint64
	ThreadsCompleted uint64
	LiveThreads      int
	MaxLiveThreads   int
}

// NodeletCounters is the per-nodelet slice of the counter set.
type NodeletCounters struct {
	LocalSpawns   uint64 // threads created on this nodelet by a local parent
	RemoteSpawns  uint64 // threads created on this nodelet by a remote parent
	MigrationsIn  uint64
	MigrationsOut uint64
	LocalReads    uint64 // 8-byte word reads served by this nodelet's channel
	LocalWrites   uint64 // 8-byte word writes from resident threads
	RemoteStores  uint64 // posted stores arriving from other nodelets
	Atomics       uint64 // memory-side atomic operations served
	ComputeCycles uint64 // non-memory core cycles charged on this nodelet
	ServiceCalls  uint64 // OS requests forwarded to the stationary core

	// Fault-injection counters (zero on healthy runs): migrations that hit
	// at least one stall/outage window, individual backoff retries, and
	// the total core cycles spent backing off. See internal/fault.
	StalledMigrations uint64
	MigrationRetries  uint64
	BackoffCycles     uint64
}

func newCounters(nodelets int) *Counters {
	return &Counters{perNodelet: make([]NodeletCounters, nodelets)}
}

// Nodelet returns a copy of the counters for one nodelet.
func (c *Counters) Nodelet(nl int) NodeletCounters { return c.perNodelet[nl] }

// Snapshot returns a copy of every nodelet's counters, for whole-machine
// comparisons (the trace-equivalence tests diff traced vs untraced runs).
func (c *Counters) Snapshot() []NodeletCounters {
	out := make([]NodeletCounters, len(c.perNodelet))
	copy(out, c.perNodelet)
	return out
}

// Nodelets reports how many nodelets the counter set spans.
func (c *Counters) Nodelets() int { return len(c.perNodelet) }

// TotalMigrations sums migrations-out across nodelets (each migration is
// counted once out and once in).
func (c *Counters) TotalMigrations() uint64 {
	var total uint64
	for i := range c.perNodelet {
		total += c.perNodelet[i].MigrationsOut
	}
	return total
}

// TotalSpawns sums thread creations across nodelets.
func (c *Counters) TotalSpawns() uint64 {
	var total uint64
	for i := range c.perNodelet {
		total += c.perNodelet[i].LocalSpawns + c.perNodelet[i].RemoteSpawns
	}
	return total
}

// TotalWords sums word reads, word writes, remote stores, and atomics —
// the total channel word traffic of the run.
func (c *Counters) TotalWords() uint64 {
	var total uint64
	for i := range c.perNodelet {
		nc := &c.perNodelet[i]
		total += nc.LocalReads + nc.LocalWrites + nc.RemoteStores + nc.Atomics
	}
	return total
}

// TotalBytes is TotalWords scaled to bytes.
func (c *Counters) TotalBytes() uint64 { return 8 * c.TotalWords() }

func (c *Counters) threadStarted() {
	c.ThreadsSpawned++
	c.LiveThreads++
	if c.LiveThreads > c.MaxLiveThreads {
		c.MaxLiveThreads = c.LiveThreads
	}
}

func (c *Counters) threadFinished() {
	c.ThreadsCompleted++
	c.LiveThreads--
}
