package machine

import (
	"fmt"

	"emuchick/internal/fault"
	"emuchick/internal/memsys"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// System is one simulated Emu machine: an engine, a global address space,
// and the modelled hardware resources of every nodelet. A System is
// single-use: construct, allocate, Run, read results.
type System struct {
	Cfg      Config
	Eng      *sim.Engine
	Mem      *memsys.Space
	Counters *Counters

	clock           sim.Clock
	stationaryClock sim.Clock
	faults          *fault.Resolved // nil on healthy machines (the fast path)
	obs             trace.Observer
	sampleEvery     sim.Time // gauge sampling interval; 0 disables
	nextSample      sim.Time // next sampling boundary
	nodelets        []*nodelet
	links           []*sim.Resource // per-node fabric egress link
	migEngines      []*sim.Resource // per-node migration engine
	stationary      []*sim.Resource // per-node stationary (OS) processor

	// freeThreads pools finished Thread contexts for reuse, so spawn-heavy
	// kernels allocate thread state only up to the peak live count. The
	// simulated analogue is exact: a Gossamer context slot is likewise a
	// recycled hardware resource, not a fresh allocation per threadlet.
	freeThreads []*Thread

	// freeCThreads pools continuation threadlet contexts the same way; on
	// the continuation engine this pool plus the sim proc pool is the entire
	// steady-state allocation footprint of a spawn.
	freeCThreads []*CThread

	// Migration-path constants, precomputed so the hot migrate path does no
	// floating-point division per hop.
	migSvc  sim.Time // service time of one migration at the engine's rate
	ctxXfer sim.Time // fabric transfer time of one thread context
}

// nodelet bundles the modelled resources of one nodelet.
type nodelet struct {
	id       int
	cores    []*sim.Resource // issue port of each Gossamer core
	nextCore int             // round-robin core assignment cursor
	channel  *sim.Resource   // the NCDRAM channel
	slots    *sim.Semaphore  // resident thread-context capacity
}

// NewSystem builds a system from the configuration. It panics on an invalid
// configuration (a construction-time programming error, per the Validate
// contract).
func NewSystem(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.TotalNodelets()
	// Pending events are bounded by resident thread contexts (each runnable
	// thread has at most one scheduled wake-up) plus a little slack for
	// spawn/unpark chains; pre-sizing the queue avoids growth reallocations
	// on the hot path.
	eng := sim.NewEngineSized(n*cfg.ContextsPerNodelet() + 64)
	s := &System{
		Cfg:             cfg,
		Eng:             eng,
		Mem:             memsys.NewSpace(n),
		Counters:        newCounters(n),
		clock:           sim.NewClock(cfg.CoreHz),
		stationaryClock: sim.NewClock(stationaryHz),
		sampleEvery:     defaultSampleEvery,
		nextSample:      defaultSampleEvery,
		nodelets:        make([]*nodelet, n),
		links:           make([]*sim.Resource, cfg.Nodes),
		migEngines:      make([]*sim.Resource, cfg.Nodes),
		stationary:      make([]*sim.Resource, cfg.Nodes),
		migSvc:          sim.Interval(cfg.MigrationsPerSec),
		ctxXfer:         sim.TransferTime(cfg.ContextBytes, cfg.FabricBytesPerSec),
	}
	for i := 0; i < n; i++ {
		nl := &nodelet{
			id:      i,
			cores:   make([]*sim.Resource, cfg.GCsPerNodelet),
			channel: sim.NewResource(fmt.Sprintf("nl%d.channel", i)),
			slots:   sim.NewSemaphore(eng, fmt.Sprintf("nl%d.contexts", i), cfg.ContextsPerNodelet()),
		}
		for c := range nl.cores {
			nl.cores[c] = sim.NewResource(fmt.Sprintf("nl%d.gc%d", i, c))
		}
		s.nodelets[i] = nl
	}
	for nd := 0; nd < cfg.Nodes; nd++ {
		s.links[nd] = sim.NewResource(fmt.Sprintf("node%d.fabric", nd))
		s.migEngines[nd] = sim.NewResource(fmt.Sprintf("node%d.migration", nd))
		s.stationary[nd] = sim.NewResource(fmt.Sprintf("node%d.stationary", nd))
	}
	return s
}

// InjectFaults binds a fault plan to the machine before Run. Core and channel
// slowdowns are pushed into the affected resources as service-time scales;
// link windows and migration-engine stalls are consulted on the migrate path.
// A nil or empty plan is a no-op that leaves the machine on its exact
// fault-free code paths (the byte-identity contract of package fault).
// Injecting an invalid plan panics, matching NewSystem's Validate contract.
func (s *System) InjectFaults(p *fault.Plan) {
	r, err := p.Resolve(len(s.nodelets), s.Cfg.Nodes)
	if err != nil {
		panic(err)
	}
	if r == nil {
		return
	}
	s.faults = r
	for i, nl := range s.nodelets {
		if f := r.CoreScale[i]; f != 1 {
			for _, core := range nl.cores {
				core.SetServiceScale(f)
			}
		}
		if f := r.ChannelScale[i]; f != 1 {
			nl.channel.SetServiceScale(f)
		}
	}
}

// Faults reports the resolved fault plan bound to this machine (nil when
// healthy).
func (s *System) Faults() *fault.Resolved { return s.faults }

// Nodelets reports the total nodelet count.
func (s *System) Nodelets() int { return len(s.nodelets) }

// Clock returns the Gossamer core clock.
func (s *System) Clock() sim.Clock { return s.clock }

// ChannelUtilization reports the busy fraction of one nodelet's NCDRAM
// channel over the given elapsed window.
func (s *System) ChannelUtilization(nl int, elapsed sim.Time) float64 {
	return s.nodelets[nl].channel.Utilization(elapsed)
}

// MeanChannelUtilization averages channel utilization across nodelets.
func (s *System) MeanChannelUtilization(elapsed sim.Time) float64 {
	var sum float64
	for i := range s.nodelets {
		sum += s.nodelets[i].channel.Utilization(elapsed)
	}
	return sum / float64(len(s.nodelets))
}

// Run executes root as the initial thread on nodelet 0 (where the Chick's
// runtime launches a program's main thread) and drives the simulation until
// every thread has finished. It returns the total simulated time.
func (s *System) Run(root func(*Thread)) (sim.Time, error) {
	start := s.beginRun()
	s.startThread(0, "main", root, nil)
	return s.finishRun(start)
}

// RunCont executes root as the initial continuation threadlet on nodelet 0.
// It is Run for the continuation proc engine: the same begin/finish
// bookkeeping, the same main-thread spawn accounting, but no goroutine is
// created for this or any descendant threadlet — the event loop resumes
// each CThread's state machine in place.
func (s *System) RunCont(root CBody) (sim.Time, error) {
	start := s.beginRun()
	t := s.acquireCThread()
	t.nodelet = 0
	t.body = root
	s.Eng.SpawnContAt(s.Eng.Now(), "main", t)
	return s.finishRun(start)
}

// beginRun emits the run-begin marker and accounts the main thread's spawn.
func (s *System) beginRun() sim.Time {
	start := s.Eng.Now()
	s.emit(trace.KindRunBegin, len(s.nodelets), -1, 0, start, start)
	s.Counters.localSpawns[0]++ // the main thread itself
	return start
}

// finishRun drives the engine and closes out the run's observability.
func (s *System) finishRun(start sim.Time) (sim.Time, error) {
	if err := s.Eng.Run(); err != nil {
		return 0, err
	}
	end := s.Eng.Now()
	if s.obs != nil && s.sampleEvery > 0 {
		s.takeSamples(end) // closing gauge snapshot at the run's end time
	}
	s.emit(trace.KindRunEnd, len(s.nodelets), -1, 0, end, end)
	return end - start, nil
}

// startThread creates a thread on the given nodelet, dispatched at the
// current time — the immediate-spawn path (Run's main thread). The thread
// first waits for a context slot, runs body, then releases the slot and
// notifies parentJoin (if any); see Thread.RunProc.
func (s *System) startThread(nl int, name string, body func(*Thread), parentJoin *sim.Join) {
	t := s.acquireThread()
	t.nodelet = nl
	t.body = body
	t.parentJoin = parentJoin
	s.Eng.SpawnAt(s.Eng.Now(), name, t)
}

// acquireThread pops a pooled Thread or allocates a fresh one.
//
//emu:hotpath pool hit is the steady state; the miss path is factored into newThread
func (s *System) acquireThread() *Thread {
	if n := len(s.freeThreads); n > 0 {
		t := s.freeThreads[n-1]
		s.freeThreads[n-1] = nil
		s.freeThreads = s.freeThreads[:n-1]
		*t = Thread{sys: s}
		return t
	}
	return s.newThread()
}

func (s *System) newThread() *Thread {
	return &Thread{sys: s}
}

// releaseThread returns a finished Thread to the pool. References are
// dropped so the pool never pins a body closure or a parent's join.
//
//emu:hotpath the tail of every simulated thread
func (s *System) releaseThread(t *Thread) {
	t.body = nil
	t.parentJoin = nil
	t.children = nil
	s.freeThreads = append(s.freeThreads, t)
}

// acquireCThread pops a pooled continuation threadlet or allocates one.
//
//emu:hotpath pool hit is the steady state; the miss path is factored into newCThread
func (s *System) acquireCThread() *CThread {
	if n := len(s.freeCThreads); n > 0 {
		t := s.freeCThreads[n-1]
		s.freeCThreads[n-1] = nil
		s.freeCThreads = s.freeCThreads[:n-1]
		*t = CThread{sys: s}
		return t
	}
	return s.newCThread()
}

func (s *System) newCThread() *CThread {
	return &CThread{sys: s}
}

// releaseCThread returns a finished continuation threadlet to the pool.
//
//emu:hotpath the tail of every continuation threadlet
func (s *System) releaseCThread(t *CThread) {
	t.body = nil
	t.spawnBody = nil
	t.parentJoin = nil
	t.children = nil
	s.freeCThreads = append(s.freeCThreads, t)
}
