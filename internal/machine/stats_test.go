package machine

import (
	"testing"

	"emuchick/internal/sim"
)

func TestServiceCallRoundTrip(t *testing.T) {
	s := NewSystem(HardwareChick())
	var dur sim.Time
	elapsed, err := s.Run(func(th *Thread) {
		dur = th.ServiceCall(3000) // 10 us at 300 MHz
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*serviceQueueLatency + s.stationaryClock.Cycles(3000)
	if dur != want {
		t.Fatalf("service call took %v, want %v", dur, want)
	}
	if elapsed != dur {
		t.Fatalf("elapsed %v != call duration %v", elapsed, dur)
	}
	if s.Counters.Nodelet(0).ServiceCalls != 1 {
		t.Fatal("service call not counted")
	}
}

func TestServiceCallsSerializeOnStationaryCore(t *testing.T) {
	s := NewSystem(HardwareChick())
	elapsed, err := s.Run(func(th *Thread) {
		for i := 0; i < 4; i++ {
			th.Spawn(func(c *Thread) { c.ServiceCall(30000) }) // 100 us each
		}
		th.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Four 100 us requests share one stationary core: >= 400 us.
	if elapsed < 400*sim.Microsecond {
		t.Fatalf("stationary core did not serialize: %v", elapsed)
	}
}

func TestServiceCallNegativePanics(t *testing.T) {
	s := NewSystem(HardwareChick())
	_, err := s.Run(func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("negative cycles did not panic")
			}
		}()
		th.ServiceCall(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsReflectActivity(t *testing.T) {
	s := NewSystem(HardwareChick())
	arr := s.Mem.AllocLocal(0, 64)
	elapsed, err := s.Run(func(th *Thread) {
		for i := 0; i < 64; i++ {
			th.Load(arr.At(i))
		}
		th.MigrateTo(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats(elapsed)
	if len(st.Nodelets) != 8 || len(st.Nodes) != 1 {
		t.Fatalf("stats shape: %d nodelets, %d nodes", len(st.Nodelets), len(st.Nodes))
	}
	if st.Nodelets[0].ChannelOps != 64 {
		t.Fatalf("channel ops = %d", st.Nodelets[0].ChannelOps)
	}
	if st.Nodelets[0].ChannelUtilization <= 0 {
		t.Fatal("no channel utilization recorded")
	}
	if st.Nodelets[1].ChannelOps != 0 {
		t.Fatal("idle nodelet has channel ops")
	}
	if st.Nodes[0].Migrations != 1 {
		t.Fatalf("migration ops = %d", st.Nodes[0].Migrations)
	}
	if st.Nodelets[0].ResidentPeak < 1 {
		t.Fatal("resident peak missing")
	}
}

func TestBottleneckHint(t *testing.T) {
	// Migration-saturated run: ping-pong style.
	s := NewSystem(HardwareChick())
	elapsed, err := s.Run(func(th *Thread) {
		for k := 0; k < 32; k++ {
			th.Spawn(func(c *Thread) {
				for i := 0; i < 50; i++ {
					c.MigrateTo(1)
					c.MigrateTo(0)
				}
			})
		}
		th.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if hint := s.Stats(elapsed).BottleneckHint(); hint != "migration-engine" {
		t.Fatalf("ping-pong bottleneck = %q", hint)
	}

	// Compute-saturated run.
	s2 := NewSystem(HardwareChick())
	elapsed2, err := s2.Run(func(th *Thread) {
		th.Compute(100000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if hint := s2.Stats(elapsed2).BottleneckHint(); hint != "gossamer-core" {
		t.Fatalf("compute bottleneck = %q", hint)
	}
}

func TestStatsAggregates(t *testing.T) {
	s := NewSystem(HardwareChick())
	arr := s.Mem.AllocStriped(128)
	elapsed, err := s.Run(func(th *Thread) {
		for i := 0; i < 128; i++ {
			th.Load(arr.At(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats(elapsed)
	if st.MeanChannel() <= 0 {
		t.Fatal("MeanChannel = 0 for a memory-bound run")
	}
	if st.MaxCore() <= 0 {
		t.Fatal("MaxCore = 0")
	}
	if empty := (SystemStats{}); empty.MeanChannel() != 0 || empty.MaxCore() != 0 {
		t.Fatal("empty stats not zero")
	}
}
