package machine

import (
	"fmt"

	"emuchick/internal/fault"
	"emuchick/internal/memsys"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// CThread is the continuation-form Gossamer threadlet: the same machine
// model as Thread, expressed as an explicit state machine the event loop
// resumes by a method call instead of a goroutine it hands a channel token
// to. A CThread plus its sim.Proc is the entire saved context of a parked
// threadlet — a couple of hundred bytes, like the <200 B register file the
// hardware swaps in and out — which is what makes rack-scale configurations
// (millions of resident contexts) simulable.
//
// Every operation mirrors its Thread counterpart op for op: the same
// resource acquisitions in the same order at the same times, counters
// bumped before waits, trace events and functional memory effects on the
// same side of each wait. The two engines therefore produce bit-identical
// (at, seq) event streams for the same kernel — the byte-identical-figures
// contract — which cont_equiv_test.go and the kernel golden tests enforce.
//
// Bodies implement CBody. A body method that can block returns parked=true
// after arranging its continuation, and the body's Step must immediately
// return false; when the pending micro-op completes, the wrapper re-enters
// Step. Bodies never see the op machinery below.
type CThread struct {
	sys        *System
	p          *sim.Proc
	nodelet    int
	core       int
	children   *sim.Join // nil until the first spawn, then &childJoin
	childJoin  sim.Join
	parentJoin *sim.Join
	body       CBody

	phase cphase // lifecycle position (start/body/sync/finish)

	// The pending micro-op: which operation is mid-flight across a park,
	// and how far through its stages it has advanced.
	op       cop
	opStage  uint8
	opAddr   memsys.Addr
	opIssued sim.Time
	val      uint64 // landing register of the last CLoad

	// Migration sub-machine state (opLoad stage 0 and opMigrate share it).
	migStage   uint8
	migTarget  int
	migTrigger memsys.Addr
	migAttempt int
	migDepart  sim.Time

	// Spawn op state.
	spawnNl   int
	spawnBody CBody
}

// CBody is the body of a continuation-form threadlet: the state-machine
// analogue of the func(*Thread) a goroutine thread runs. Step resumes the
// body with no micro-op pending; it returns true when the body has run to
// completion, or false after a CThread operation reported parked=true.
type CBody interface {
	Step(t *CThread) bool
}

// cphase is a CThread's position in the thread lifecycle that Thread.RunProc
// expresses as straight-line code.
type cphase uint8

const (
	cphStart    cphase = iota // waiting to claim the initial context slot
	cphAcquired               // slot held; assign a core, emit thread start
	cphBody                   // driving the body (and its pending micro-ops)
	cphSync                   // implicit end-of-body cilk sync in flight
	cphFinish                 // release, notify parent, recycle
)

// cop identifies the micro-op a parked CThread is in the middle of.
type cop uint8

const (
	opNone    cop = iota
	opDelay       // a pure sleep; nothing to do on completion
	opLoad        // migrate-if-remote, issue, then read + emit on completion
	opStore       // local store: issue, then write + emit on completion
	opMigrate     // explicit MigrateTo
	opSpawn       // parent-side spawn cost, then the child launch
	opSync        // children joined; re-acquire a context slot
)

// StepProc is the sim.Stepper hook: it drives the lifecycle phases, running
// any pending micro-op to completion before re-entering the body, exactly
// mirroring the straight-line order of Thread.RunProc.
//
//emu:nohandoff
func (t *CThread) StepProc(p *sim.Proc) {
	for {
		switch t.phase {
		case cphStart:
			t.p = p
			t.phase = cphAcquired
			if t.sys.nodelets[t.nodelet].slots.AcquireCont(p) {
				return
			}
		case cphAcquired:
			s := t.sys
			home := s.nodelets[t.nodelet]
			t.core = home.nextCore
			home.nextCore = (home.nextCore + 1) % len(home.cores)
			s.Counters.threadStarted()
			s.emit(trace.KindThreadStart, t.nodelet, -1, 0, p.Now(), p.Now())
			t.phase = cphBody
		case cphBody:
			if t.op != opNone && t.runOp() {
				return
			}
			//lint:allow nohandoff CBody implementations live downstream (kernels, cilk) and each Step carries its own //emu:nohandoff annotation
			if !t.body.Step(t) {
				return
			}
			// Implicit cilk sync at body end, matching Cilk semantics.
			t.phase = cphSync
			if t.CSync() {
				return
			}
		case cphSync:
			if t.op != opNone && t.runOp() {
				return
			}
			t.phase = cphFinish
		case cphFinish:
			s := t.sys
			s.nodelets[t.nodelet].slots.Release()
			s.Counters.threadFinished()
			s.emit(trace.KindThreadEnd, t.nodelet, -1, 0, p.Now(), p.Now())
			if t.parentJoin != nil {
				t.parentJoin.Done()
			}
			s.releaseCThread(t)
			p.Exit()
			return
		}
	}
}

// runOp advances the pending micro-op; parked=true means a wait was
// scheduled and the caller must return from StepProc.
//
//emu:nohandoff
func (t *CThread) runOp() (parked bool) {
	for {
		switch t.op {
		case opNone:
			return false
		case opDelay:
			// The sleep completed by the time we were re-dispatched.
			t.op = opNone
			return false
		case opLoad:
			switch t.opStage {
			case 0: // migrating to the word's home nodelet first
				if t.migStep() {
					return true
				}
				t.opStage = 1
			case 1: // issue the local access
				t.sys.Counters.localReads[t.nodelet]++
				t.opIssued = t.p.Now()
				t.opStage = 2
				if t.localAccess() {
					return true
				}
			case 2: // access complete: observe, then read
				s := t.sys
				s.emit(TraceLoad, t.nodelet, -1, t.opAddr, t.opIssued, t.p.Now())
				t.val = s.Mem.Read(t.opAddr)
				t.op = opNone
				return false
			}
		case opStore:
			switch t.opStage {
			case 0: // issue the local access
				t.sys.Counters.localWrites[t.nodelet]++
				t.opIssued = t.p.Now()
				t.opStage = 1
				if t.localAccess() {
					return true
				}
			case 1: // access complete: write, then observe
				s := t.sys
				s.Mem.Write(t.opAddr, t.val)
				s.emit(TraceStore, t.nodelet, -1, t.opAddr, t.opIssued, t.p.Now())
				t.op = opNone
				return false
			}
		case opMigrate:
			if t.migStep() {
				return true
			}
			t.op = opNone
			return false
		case opSpawn:
			switch t.opStage {
			case 0: // the parent-side spawn cost
				t.opStage = 1
				if t.compute(t.sys.Cfg.LocalSpawnCycles) {
					return true
				}
			case 1: // cost paid: launch the child
				s := t.sys
				t.spawnOnCont(t.spawnNl, s.spawnArrival(t.nodelet, t.spawnNl, t.p.Now()), t.spawnBody)
				t.spawnBody = nil
				t.op = opNone
				return false
			}
		case opSync:
			switch t.opStage {
			case 0: // children joined: reclaim a context slot
				t.opStage = 1
				if t.sys.nodelets[t.nodelet].slots.AcquireCont(t.p) {
					return true
				}
			case 1:
				t.op = opNone
				return false
			}
		default:
			panic(fmt.Sprintf("machine: unknown continuation op %d", t.op))
		}
	}
}

// localAccess books one blocking 8-byte access on the resident nodelet's
// channel — Thread.localWordAccess restated; parked=true means the sleep to
// its completion time was scheduled.
//
//emu:nohandoff
func (t *CThread) localAccess() (parked bool) {
	s := t.sys
	nl := s.nodelets[t.nodelet]
	_, issued := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(s.Cfg.MemIssueCycles))
	_, served := nl.channel.Acquire(issued, s.Cfg.WordAccessTime)
	return t.p.SleepUntil(served + s.Cfg.MemLatency)
}

// compute books cycles of core work — Thread.Compute restated.
//
//emu:nohandoff
func (t *CThread) compute(cycles int64) (parked bool) {
	if cycles <= 0 {
		return false
	}
	s := t.sys
	nl := s.nodelets[t.nodelet]
	_, done := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(cycles))
	s.Counters.computeCycles[t.nodelet] += uint64(cycles)
	return t.p.SleepUntil(done)
}

// migStep drives the migration sub-machine — Thread.migrate restated as
// stages: fault backoff at the source (holding the slot), departure through
// the migration engine and fabric, arrival, slot acquisition, core
// assignment. beginMigrate must have set the mig fields.
//
//emu:nohandoff
func (t *CThread) migStep() (parked bool) {
	s := t.sys
	for {
		node := s.Cfg.NodeOf(t.nodelet)
		crossing := s.Cfg.NodeOf(t.migTarget) != node
		switch t.migStage {
		case 0: // fault backoff: hold the slot until the window clears
			if s.faults != nil {
				if _, blocked := s.faults.BlockedUntil(node, crossing, t.migDepart); blocked {
					c := s.Counters
					if t.migAttempt == 0 {
						c.stalledMigrations[t.nodelet]++
					}
					c.migrationRetries[t.nodelet]++
					cyc := s.faults.BackoffCycles(t.migAttempt)
					c.backoffCycles[t.nodelet] += uint64(cyc)
					resume := t.migDepart + s.clock.Cycles(cyc)
					s.emit(trace.KindFaultStall, t.nodelet, t.migTarget, 0, t.migDepart, resume)
					t.migAttempt++
					t.migDepart = resume
					if t.p.SleepUntil(resume) {
						return true
					}
					continue // re-check the window at the new depart time
				}
			}
			t.migStage = 1
		case 1: // depart: release the slot, book the engine and the fabric
			s.nodelets[t.nodelet].slots.Release()
			engine := s.migEngines[node]
			_, sent := engine.Acquire(t.migDepart, s.migSvc)
			flight := s.Cfg.MigrationLatency
			if crossing {
				link := s.links[node]
				xfer := s.ctxXfer
				if s.faults != nil {
					xfer = fault.Scale(xfer, s.faults.LinkScale(node, sent))
				}
				_, sent = link.Acquire(sent, xfer)
				flight += s.Cfg.InterNodeLatency
				if s.Cfg.ChassisOf(t.migTarget) != s.Cfg.ChassisOf(t.nodelet) {
					flight += s.Cfg.InterChassisLatency
				}
			}
			s.emit(TraceMigrate, t.nodelet, t.migTarget, t.migTrigger, t.migDepart, sent+flight)
			t.migStage = 2
			if t.p.SleepUntil(sent + flight) {
				return true
			}
		case 2: // arrived: claim a context slot at the destination
			t.nodelet = t.migTarget
			t.migStage = 3
			if s.nodelets[t.nodelet].slots.AcquireCont(t.p) {
				return true
			}
		case 3: // slot claimed: assign a core
			to := s.nodelets[t.nodelet]
			t.core = to.nextCore
			to.nextCore = (to.nextCore + 1) % len(to.cores)
			return false
		}
	}
}

// beginMigrate validates the target and records the migration bookkeeping,
// mirroring the entry of Thread.migrate (counters before the backoff loop).
func (t *CThread) beginMigrate(target int, trigger memsys.Addr) {
	s := t.sys
	if target < 0 || target >= len(s.nodelets) {
		panic(fmt.Sprintf("machine: migrate to nodelet %d of %d", target, len(s.nodelets)))
	}
	s.Counters.migrationsOut[t.nodelet]++
	s.Counters.migrationsIn[target]++
	t.migTarget = target
	t.migTrigger = trigger
	t.migAttempt = 0
	t.migDepart = t.p.Now()
	t.migStage = 0
}

// System returns the machine this threadlet runs on.
func (t *CThread) System() *System { return t.sys }

// Nodelet reports the nodelet the threadlet currently resides on.
func (t *CThread) Nodelet() int { return t.nodelet }

// Now reports the current simulated time.
func (t *CThread) Now() sim.Time { return t.p.Now() }

// Value returns the word the last completed CLoad read.
func (t *CThread) Value() uint64 { return t.val }

// CCompute charges cycles of non-memory work — Thread.Compute. parked=true
// means Step must return; the work is complete when Step is re-entered.
//
//emu:nohandoff
func (t *CThread) CCompute(cycles int64) (parked bool) {
	if cycles <= 0 {
		return false
	}
	t.op = opDelay
	if t.compute(cycles) {
		return true
	}
	t.op = opNone
	return false
}

// CLoad reads the word at a — Thread.Load. It migrates first when a is
// remote; the value is available from Value() once the op completes.
//
//emu:nohandoff
func (t *CThread) CLoad(a memsys.Addr) (parked bool) {
	t.op = opLoad
	t.opAddr = a
	if home := a.Nodelet(); home != t.nodelet {
		t.opStage = 0
		t.beginMigrate(home, a) // the read is the migration's trigger address
	} else {
		t.opStage = 1
	}
	return t.runOp()
}

// CStore writes v to the word at a — Thread.Store: a local store blocks
// like a load, a remote store is posted without migrating.
//
//emu:nohandoff
func (t *CThread) CStore(a memsys.Addr, v uint64) (parked bool) {
	s := t.sys
	home := a.Nodelet()
	if home == t.nodelet {
		t.op = opStore
		t.opStage = 0
		t.opAddr = a
		t.val = v
		return t.runOp()
	}
	// Posted remote store: every effect lands at issue time; only the
	// backpressure sleep can park.
	nl := s.nodelets[t.nodelet]
	_, issued := nl.cores[t.core].Acquire(t.p.Now(), s.clock.Cycles(s.Cfg.MemIssueCycles))
	arrive := issued + s.flightLatency(t.nodelet, home)
	_, served := s.nodelets[home].channel.Acquire(arrive, s.Cfg.WordAccessTime)
	s.Counters.remoteStores[home]++
	s.Mem.Write(a, v)
	s.emit(TraceRemoteStore, t.nodelet, home, a, issued, served)
	t.op = opDelay
	if t.p.SleepUntil(s.postedAccept(issued, served)) {
		return true
	}
	t.op = opNone
	return false
}

// CMigrateTo moves the threadlet's context to the target nodelet —
// Thread.MigrateTo. Migrating to the current nodelet is a no-op.
//
//emu:nohandoff
func (t *CThread) CMigrateTo(target int) (parked bool) {
	if target == t.nodelet {
		return false
	}
	t.op = opMigrate
	t.beginMigrate(target, 0)
	return t.runOp()
}

// CSpawn creates a child threadlet on the current nodelet — Thread.Spawn.
// The child's body is itself a CBody; children are joined by CSync (or the
// implicit sync when this body's Step returns true).
//
//emu:nohandoff
func (t *CThread) CSpawn(body CBody) (parked bool) {
	t.op = opSpawn
	t.opStage = 0
	t.spawnNl = t.nodelet
	t.spawnBody = body
	return t.runOp()
}

// CSpawnAt creates a child threadlet on the given nodelet — Thread.SpawnAt.
//
//emu:nohandoff
func (t *CThread) CSpawnAt(nl int, body CBody) (parked bool) {
	if nl < 0 || nl >= len(t.sys.nodelets) {
		panic(fmt.Sprintf("machine: spawn at nodelet %d of %d", nl, len(t.sys.nodelets)))
	}
	t.op = opSpawn
	t.opStage = 0
	t.spawnNl = nl
	t.spawnBody = body
	return t.runOp()
}

// spawnOnCont is Thread.spawnOn for a continuation child: same counters,
// same trace event, same launch-event pattern — the child's first dispatch
// claims its seq when the launch fires at its arrival time.
//
//emu:hotpath the continuation spawn path: pooled child, launch event, no closure
func (t *CThread) spawnOnCont(nl int, at sim.Time, body CBody) {
	s := t.sys
	if t.children == nil {
		t.children = &t.childJoin
	}
	t.children.Add(1)
	if nl == t.nodelet {
		s.Counters.localSpawns[nl]++
	} else {
		s.Counters.remoteSpawns[nl]++
	}
	s.emit(TraceSpawn, t.nodelet, nl, 0, t.p.Now(), at)
	child := s.acquireCThread()
	child.nodelet = nl
	child.body = body
	child.parentJoin = t.children
	s.Eng.LaunchContAt(at, "t", child)
}

// CSync joins all children spawned so far — Thread.Sync: the context slot is
// released while blocked and re-acquired after the join, letting deep spawn
// trees exceed the per-nodelet context count without deadlocking.
//
//emu:nohandoff
func (t *CThread) CSync() (parked bool) {
	if t.children == nil || t.children.Pending() == 0 {
		return false
	}
	t.sys.nodelets[t.nodelet].slots.Release()
	t.op = opSync
	t.opStage = 0
	t.children.WaitCont(t.p) // Pending > 0, so this always parks
	return true
}

// CPeek functionally reads a local word without consuming simulated time —
// Thread.Peek, with the same remote-access panic.
func (t *CThread) CPeek(a memsys.Addr) uint64 {
	if a.Nodelet() != t.nodelet {
		panic(fmt.Sprintf("machine: Peek of remote address %v from nodelet %d", a, t.nodelet))
	}
	return t.sys.Mem.Read(a)
}

// CPoke functionally writes a local word without consuming simulated time —
// Thread.Poke.
func (t *CThread) CPoke(a memsys.Addr, v uint64) {
	if a.Nodelet() != t.nodelet {
		panic(fmt.Sprintf("machine: Poke of remote address %v from nodelet %d", a, t.nodelet))
	}
	t.sys.Mem.Write(a, v)
}
