package machine

import "testing"

func TestCounterAggregates(t *testing.T) {
	s := NewSystem(HardwareChick())
	arr := s.Mem.AllocStriped(64)
	remote := s.Mem.AllocLocal(3, 2)
	_, err := s.Run(func(th *Thread) {
		th.SpawnAt(2, func(c *Thread) {
			for i := 0; i < 16; i++ {
				c.Load(arr.At(i)) // striped walk: migrations + local reads
			}
			c.Store(remote.At(0), 7) // posted remote store
			c.RemoteAdd(remote.At(1), 1)
		})
		th.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counters
	if c.Nodelets() != 8 {
		t.Fatalf("Nodelets = %d", c.Nodelets())
	}
	// Every spawn (root + child) appears in per-nodelet totals.
	if c.TotalSpawns() != c.ThreadsSpawned {
		t.Fatalf("TotalSpawns %d != ThreadsSpawned %d", c.TotalSpawns(), c.ThreadsSpawned)
	}
	// Word traffic: 16 reads + 1 remote store + 1 atomic.
	if c.TotalWords() != 18 {
		t.Fatalf("TotalWords = %d", c.TotalWords())
	}
	if c.TotalBytes() != 18*8 {
		t.Fatalf("TotalBytes = %d", c.TotalBytes())
	}
	if c.TotalMigrations() == 0 {
		t.Fatal("striped walk produced no migrations")
	}
}

func TestSystemAccessors(t *testing.T) {
	s := NewSystem(HardwareChick())
	if s.Nodelets() != 8 {
		t.Fatalf("Nodelets = %d", s.Nodelets())
	}
	if s.Clock().Hz() != 150e6 {
		t.Fatalf("Clock = %d Hz", s.Clock().Hz())
	}
	arr := s.Mem.AllocLocal(0, 8)
	elapsed, err := s.Run(func(th *Thread) {
		for i := 0; i < 8; i++ {
			th.Load(arr.At(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if u := s.ChannelUtilization(0, elapsed); u <= 0 {
		t.Fatal("nodelet 0 channel utilization zero")
	}
	if u := s.ChannelUtilization(1, elapsed); u != 0 {
		t.Fatal("idle nodelet has utilization")
	}
	mean := s.MeanChannelUtilization(elapsed)
	if mean <= 0 || mean >= s.ChannelUtilization(0, elapsed) {
		t.Fatalf("mean utilization = %v", mean)
	}
}
