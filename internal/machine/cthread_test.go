package machine

import (
	"testing"
	"unsafe"

	"emuchick/internal/fault"
	"emuchick/internal/memsys"
	"emuchick/internal/sim"
	"emuchick/internal/trace"
)

// TestCThreadUnderContextBound pins the machine-layer half of the
// threadlet-scale claim: a CThread is the whole continuation state of a
// simulated Emu thread — phase, pending micro-op, migration cursor, spawn
// slot — and it must stay within the <200 B hardware thread context the
// paper reports, matching the bound sim.Proc's own size test enforces.
func TestCThreadUnderContextBound(t *testing.T) {
	if size := unsafe.Sizeof(CThread{}); size >= 200 {
		t.Fatalf("machine.CThread is %d bytes; the continuation thread state must stay under the 200 B hardware context bound", size)
	}
}

// The engine-equivalence suite: every scenario is written twice — once
// against the goroutine Thread API and once as a CBody state machine with
// the identical operation sequence — and the two runs must agree on elapsed
// time, every per-nodelet counter, and the full trace event/sample streams
// including timestamps. This is the machine-layer half of the
// byte-identical-figures contract.

// eqCollector records the full observer stream for comparison.
type eqCollector struct {
	events  []trace.Event
	samples []trace.Sample
}

func (c *eqCollector) Event(e trace.Event)   { c.events = append(c.events, e) }
func (c *eqCollector) Sample(s trace.Sample) { c.samples = append(c.samples, s) }

// runEngines runs the scenario on both proc engines and fails the test on
// the first divergence. mk builds the scenario against a fresh system (so
// allocations land identically) and returns the two equivalent bodies.
func runEngines(t *testing.T, cfg Config, plan *fault.Plan, mk func(s *System) (func(*Thread), CBody)) {
	t.Helper()
	run := func(cont bool) (sim.Time, *eqCollector, []NodeletCounters) {
		s := NewSystem(cfg)
		if plan != nil {
			s.InjectFaults(plan)
		}
		col := &eqCollector{}
		s.Attach(col)
		g, c := mk(s)
		var elapsed sim.Time
		var err error
		if cont {
			elapsed, err = s.RunCont(c)
		} else {
			elapsed, err = s.Run(g)
		}
		if err != nil {
			t.Fatalf("run (cont=%v) failed: %v", cont, err)
		}
		return elapsed, col, s.Counters.Snapshot()
	}
	ge, gcol, gcnt := run(false)
	ce, ccol, ccnt := run(true)

	if ge != ce {
		t.Errorf("elapsed time diverged: goroutine %v, continuation %v", ge, ce)
	}
	if !snapshotEqual(gcnt, ccnt) {
		for i := range gcnt {
			if gcnt[i] != ccnt[i] {
				t.Errorf("counters diverged at nodelet %d:\n  goroutine    %+v\n  continuation %+v", i, gcnt[i], ccnt[i])
			}
		}
	}
	if len(gcol.events) != len(ccol.events) {
		t.Fatalf("event streams diverged in length: goroutine %d, continuation %d", len(gcol.events), len(ccol.events))
	}
	for i := range gcol.events {
		if gcol.events[i] != ccol.events[i] {
			t.Fatalf("event %d diverged:\n  goroutine    %+v\n  continuation %+v", i, gcol.events[i], ccol.events[i])
		}
	}
	if len(gcol.samples) != len(ccol.samples) {
		t.Fatalf("sample streams diverged in length: goroutine %d, continuation %d", len(gcol.samples), len(ccol.samples))
	}
	for i := range gcol.samples {
		if gcol.samples[i] != ccol.samples[i] {
			t.Fatalf("sample %d diverged:\n  goroutine    %+v\n  continuation %+v", i, gcol.samples[i], ccol.samples[i])
		}
	}
}

// ctLoadOnce loads one word and exits — the child body of the mixed test.
type ctLoadOnce struct {
	a  memsys.Addr
	pc int
}

func (b *ctLoadOnce) Step(t *CThread) bool {
	if b.pc == 0 {
		b.pc = 1
		if t.CLoad(b.a) {
			return false
		}
	}
	return true
}

// ctMixed exercises every CThread operation kind once, in lockstep with its
// goroutine twin in TestContThreadMatchesGoroutineMixedOps.
type ctMixed struct {
	local, remote memsys.Local
	pc            int
}

func (b *ctMixed) Step(t *CThread) bool {
	for {
		switch b.pc {
		case 0:
			b.pc++
			if t.CLoad(b.local.At(0)) {
				return false
			}
		case 1:
			b.pc++
			if t.CStore(b.local.At(1), 7) {
				return false
			}
		case 2:
			b.pc++
			if t.CStore(b.remote.At(0), 9) {
				return false
			}
		case 3:
			b.pc++
			if t.CCompute(25) {
				return false
			}
		case 4:
			b.pc++
			if t.CSpawn(&ctLoadOnce{a: b.local.At(0)}) {
				return false
			}
		case 5:
			b.pc++
			if t.CSync() {
				return false
			}
		case 6:
			b.pc++
			if t.CMigrateTo(5) {
				return false
			}
		case 7:
			b.pc++
			if t.CLoad(b.local.At(0)) { // remote now: migrates back
				return false
			}
		default:
			return true
		}
	}
}

func TestContThreadMatchesGoroutineMixedOps(t *testing.T) {
	runEngines(t, HardwareChick(), nil, func(s *System) (func(*Thread), CBody) {
		local := s.Mem.AllocLocal(0, 2)
		remote := s.Mem.AllocLocal(3, 1)
		g := func(th *Thread) {
			th.Load(local.At(0))
			th.Store(local.At(1), 7)
			th.Store(remote.At(0), 9)
			th.Compute(25)
			th.Spawn(func(c *Thread) { c.Load(local.At(0)) })
			th.Sync()
			th.MigrateTo(5)
			th.Load(local.At(0)) // remote now: migrates back
		}
		return g, &ctMixed{local: local, remote: remote}
	})
}

// ctTreeChild: load a local word, compute a little.
type ctTreeChild struct {
	arr memsys.Striped
	pc  int
}

func (b *ctTreeChild) Step(t *CThread) bool {
	for {
		switch b.pc {
		case 0:
			b.pc++
			if t.CLoad(b.arr.At(t.Nodelet())) {
				return false
			}
		case 1:
			b.pc++
			if t.CCompute(10) {
				return false
			}
		default:
			return true
		}
	}
}

// ctTreeRoot fans fan children round-robin across nodelets, joined by the
// implicit end-of-body sync.
type ctTreeRoot struct {
	arr  memsys.Striped
	fan  int
	next int
}

func (b *ctTreeRoot) Step(t *CThread) bool {
	for b.next < b.fan {
		nl := b.next % t.System().Nodelets()
		b.next++
		if t.CSpawnAt(nl, &ctTreeChild{arr: b.arr}) {
			return false
		}
	}
	return true
}

// TestContThreadMatchesGoroutineSpawnTree forces context-slot contention
// (2 contexts per nodelet, 4 children each plus the root): both engines must
// park identically in slot queues and during the implicit sync's
// release/re-acquire.
func TestContThreadMatchesGoroutineSpawnTree(t *testing.T) {
	cfg := HardwareChick()
	cfg.ThreadsPerGC = 2 // squeeze: ContextsPerNodelet() == 2
	const fan = 32
	runEngines(t, cfg, nil, func(s *System) (func(*Thread), CBody) {
		arr := s.Mem.AllocStriped(s.Nodelets())
		g := func(th *Thread) {
			for i := 0; i < fan; i++ {
				th.SpawnAt(i%th.System().Nodelets(), func(c *Thread) {
					c.Load(arr.At(c.Nodelet()))
					c.Compute(10)
				})
			}
		}
		return g, &ctTreeRoot{arr: arr, fan: fan}
	})
}

// ctPing ping-pongs between two nodelets, loading a word on each side.
type ctPing struct {
	arr          memsys.Striped
	a, b, rounds int
	i, pc        int
}

func (p *ctPing) Step(t *CThread) bool {
	for p.i < p.rounds {
		switch p.pc {
		case 0:
			p.pc = 1
			if t.CMigrateTo(p.b) {
				return false
			}
		case 1:
			p.pc = 2
			if t.CLoad(p.arr.At(p.b)) {
				return false
			}
		case 2:
			p.pc = 3
			if t.CMigrateTo(p.a) {
				return false
			}
		case 3:
			p.pc = 0
			p.i++
			if t.CLoad(p.arr.At(p.a)) {
				return false
			}
		}
	}
	return true
}

func pingScenario(a, b, rounds int) func(s *System) (func(*Thread), CBody) {
	return func(s *System) (func(*Thread), CBody) {
		arr := s.Mem.AllocStriped(s.Nodelets())
		g := func(th *Thread) {
			for i := 0; i < rounds; i++ {
				th.MigrateTo(b)
				th.Load(arr.At(b))
				th.MigrateTo(a)
				th.Load(arr.At(a))
			}
		}
		return g, &ctPing{arr: arr, a: a, b: b, rounds: rounds}
	}
}

// TestContThreadMatchesGoroutineCrossNode drives migrations across node
// cards, exercising the migration engine, fabric link, and inter-node tier
// on both engines.
func TestContThreadMatchesGoroutineCrossNode(t *testing.T) {
	runEngines(t, HardwareChickNodes(2), nil, pingScenario(0, 12, 40))
}

// TestContThreadMatchesGoroutineCrossChassis drives migrations across the
// rack tier of FullSpeedRack, covering the inter-chassis hop in both
// engines' flight paths.
func TestContThreadMatchesGoroutineCrossChassis(t *testing.T) {
	// Nodelet 70 is on node 8, chassis 1; nodelet 0 is chassis 0.
	runEngines(t, FullSpeedRack(2), nil, pingScenario(0, 70, 25))
}

// TestContThreadMatchesGoroutineUnderFaults covers the migration backoff
// state machine: stall windows force both engines through the same retry
// sequence, FaultStall events included.
func TestContThreadMatchesGoroutineUnderFaults(t *testing.T) {
	plan := &fault.Plan{
		Stalls: []fault.Stall{{Duration: 40 * sim.Microsecond, Period: 100 * sim.Microsecond}},
	}
	runEngines(t, HardwareChick(), plan, pingScenario(0, 5, 60))
}

// TestContThreadPoolRecycles: a spawn-heavy continuation run must reuse
// CThread contexts rather than allocating one per spawn — the pool high-water
// mark is the peak live count, not the total spawn count.
func TestContThreadPoolRecycles(t *testing.T) {
	s := NewSystem(HardwareChick())
	arr := s.Mem.AllocStriped(s.Nodelets())
	const fan = 200
	if _, err := s.RunCont(&ctTreeRoot{arr: arr, fan: fan}); err != nil {
		t.Fatal(err)
	}
	if s.Counters.ThreadsSpawned != fan+1 {
		t.Fatalf("spawned %d threads, want %d", s.Counters.ThreadsSpawned, fan+1)
	}
	// The pool's high-water mark is the peak of spawned-but-unfinished
	// contexts (launch precedes start, so it can exceed MaxLiveThreads),
	// but recycling must keep it far below the total spawn count.
	pooled := len(s.freeCThreads)
	if pooled == 0 {
		t.Fatal("no CThreads returned to the pool")
	}
	if pooled >= fan/2 {
		t.Fatalf("pool holds %d contexts after %d spawns — contexts are not recycled", pooled, fan)
	}
}

// TestRunContFunctionalResults: values stored by continuation threadlets land
// in memory exactly as the goroutine engine's do.
func TestRunContFunctionalResults(t *testing.T) {
	build := func() (*System, memsys.Local, memsys.Local) {
		s := NewSystem(HardwareChick())
		return s, s.Mem.AllocLocal(0, 2), s.Mem.AllocLocal(3, 1)
	}
	gs, glocal, gremote := build()
	if _, err := gs.Run(func(th *Thread) {
		th.Store(glocal.At(1), 7)
		th.Store(gremote.At(0), 9)
	}); err != nil {
		t.Fatal(err)
	}
	cs, clocal, cremote := build()
	if _, err := cs.RunCont(&ctMixed{local: clocal, remote: cremote}); err != nil {
		t.Fatal(err)
	}
	if got, want := cs.Mem.Read(clocal.At(1)), gs.Mem.Read(glocal.At(1)); got != want {
		t.Fatalf("local store: continuation wrote %d, goroutine %d", got, want)
	}
	if got, want := cs.Mem.Read(cremote.At(0)), gs.Mem.Read(gremote.At(0)); got != want {
		t.Fatalf("remote store: continuation wrote %d, goroutine %d", got, want)
	}
}
