package machine

import (
	"testing"

	"emuchick/internal/fault"
	"emuchick/internal/sim"
)

// pingPongWorkload migrates between two nodelets and does a little memory
// work — it exercises cores, channels, the migration engine, and (when the
// nodelets sit on different node cards) the fabric link.
func pingPongWorkload(a, b, rounds int) func(*Thread) {
	return func(th *Thread) {
		arr := th.System().Mem.AllocStriped(th.System().Nodelets())
		for i := 0; i < rounds; i++ {
			th.MigrateTo(b)
			th.Load(arr.At(b))
			th.MigrateTo(a)
			th.Load(arr.At(a))
		}
	}
}

// runWithPlan runs the workload on a fresh system with the plan injected and
// returns elapsed time and the counter snapshot.
func runWithPlan(t *testing.T, cfg Config, plan *fault.Plan, body func(*Thread)) (sim.Time, []NodeletCounters) {
	t.Helper()
	s := NewSystem(cfg)
	s.InjectFaults(plan)
	elapsed, err := s.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	return elapsed, s.Counters.Snapshot()
}

func snapshotEqual(a, b []NodeletCounters) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The byte-identity contract: nil plan, empty plan, and all-factor-1 plans
// must leave elapsed time and every counter identical to an uninjected run.
func TestNoOpFaultPlansAreIdentity(t *testing.T) {
	cfg := HardwareChick()
	body := pingPongWorkload(0, 5, 50)
	baseElapsed, baseCounters := runWithPlan(t, cfg, nil, body)

	plans := map[string]*fault.Plan{
		"empty":    {},
		"seeded":   {Seed: 42},
		"factor-1": {Cores: []fault.Slowdown{{Factor: 1}}, Channels: []fault.Slowdown{{Factor: 1}}},
	}
	for name, plan := range plans {
		elapsed, counters := runWithPlan(t, cfg, plan, body)
		if elapsed != baseElapsed {
			t.Errorf("%s plan: elapsed %v != baseline %v", name, elapsed, baseElapsed)
		}
		if !snapshotEqual(counters, baseCounters) {
			t.Errorf("%s plan: counters diverged from baseline", name)
		}
		for i := range counters {
			nc := counters[i]
			if nc.StalledMigrations != 0 || nc.MigrationRetries != 0 || nc.BackoffCycles != 0 {
				t.Errorf("%s plan: nodelet %d has fault counters on a healthy run", name, i)
			}
		}
	}
}

func TestInjectFaultsOnHealthySystemLeavesNilResolved(t *testing.T) {
	s := NewSystem(HardwareChick())
	s.InjectFaults(nil)
	s.InjectFaults(&fault.Plan{})
	if s.Faults() != nil {
		t.Fatal("empty plan left a resolved fault table on the system")
	}
}

func TestChannelThrottleSlowsRun(t *testing.T) {
	cfg := HardwareChick()
	body := pingPongWorkload(0, 5, 50)
	base, _ := runWithPlan(t, cfg, nil, body)
	slow, _ := runWithPlan(t, cfg, &fault.Plan{
		Channels: []fault.Slowdown{{Factor: 4}},
	}, body)
	if slow <= base {
		t.Fatalf("4x channel throttle did not slow the run: %v vs %v", slow, base)
	}
}

func TestCoreSlowdownSlowsComputeBoundRun(t *testing.T) {
	cfg := HardwareChick()
	body := func(th *Thread) { th.Compute(100000) }
	base, _ := runWithPlan(t, cfg, nil, body)
	slow, _ := runWithPlan(t, cfg, &fault.Plan{
		Cores: []fault.Slowdown{{Factor: 2, Nodelets: []int{0}}},
	}, body)
	if slow != 2*base {
		t.Fatalf("2x core slowdown on a pure-compute run: %v, want %v", slow, 2*base)
	}
}

func TestMigrationStallCountsRetries(t *testing.T) {
	cfg := HardwareChick()
	// Stall the engine 40 us out of every 100 us: a 100-round ping-pong
	// (~ms of run time) must hit several windows.
	plan := &fault.Plan{
		Stalls: []fault.Stall{{Duration: 40 * sim.Microsecond, Period: 100 * sim.Microsecond}},
	}
	elapsed, counters := runWithPlan(t, cfg, plan, pingPongWorkload(0, 5, 100))
	base, _ := runWithPlan(t, cfg, nil, pingPongWorkload(0, 5, 100))
	if elapsed <= base {
		t.Fatalf("stall windows did not slow the run: %v vs %v", elapsed, base)
	}
	var stalled, retries, cycles uint64
	for _, nc := range counters {
		stalled += nc.StalledMigrations
		retries += nc.MigrationRetries
		cycles += nc.BackoffCycles
	}
	if stalled == 0 || retries == 0 || cycles == 0 {
		t.Fatalf("fault counters empty under stall plan: stalled=%d retries=%d cycles=%d",
			stalled, retries, cycles)
	}
	if retries < stalled {
		t.Fatalf("retries (%d) < stalled migrations (%d)", retries, stalled)
	}
}

func TestLinkOutageBlocksCrossNodeMigrations(t *testing.T) {
	cfg := HardwareChickNodes(2)
	// Outage on node 0's egress link for the first 200 us. The first
	// cross-node migration departs near t=0, so it must back off.
	plan := &fault.Plan{
		Links: []fault.LinkFault{{Factor: 0, Start: 0, End: 200 * sim.Microsecond, Nodes: []int{0}}},
	}
	_, counters := runWithPlan(t, cfg, plan, func(th *Thread) {
		th.MigrateTo(12) // node 1
		th.MigrateTo(0)
	})
	if counters[0].StalledMigrations == 0 {
		t.Fatal("outbound cross-node migration did not stall during the outage")
	}
	// The return migration (node 1 -> node 0) uses node 1's healthy link.
	if counters[12].StalledMigrations != 0 {
		t.Fatal("node 1's healthy link stalled a migration")
	}
	// Intra-node migrations never touch the link: same plan, intra-node
	// ping-pong, zero fault counters.
	_, intra := runWithPlan(t, cfg, plan, pingPongWorkload(0, 5, 10))
	for i, nc := range intra {
		if nc.StalledMigrations != 0 {
			t.Fatalf("intra-node migration on nodelet %d stalled under a link-only fault", i)
		}
	}
}

func TestLinkDegradationSlowsCrossNodeRun(t *testing.T) {
	cfg := HardwareChickNodes(2)
	body := pingPongWorkload(0, 12, 50)
	base, _ := runWithPlan(t, cfg, nil, body)
	slow, _ := runWithPlan(t, cfg, &fault.Plan{
		Links: []fault.LinkFault{{Factor: 8}},
	}, body)
	if slow <= base {
		t.Fatalf("8x link degradation did not slow cross-node ping-pong: %v vs %v", slow, base)
	}
}

// A fixed (plan, seed) must reproduce bit-identically run over run.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	cfg := HardwareChick()
	plan := &fault.Plan{
		Seed:     7,
		Cores:    []fault.Slowdown{{Factor: 2, Count: 3}},
		Channels: []fault.Slowdown{{Factor: 4, Count: 2}},
		Stalls:   []fault.Stall{{Duration: 20 * sim.Microsecond, Period: 80 * sim.Microsecond}},
	}
	e1, c1 := runWithPlan(t, cfg, plan, pingPongWorkload(0, 5, 60))
	e2, c2 := runWithPlan(t, cfg, plan, pingPongWorkload(0, 5, 60))
	if e1 != e2 {
		t.Fatalf("elapsed differs across identical faulted runs: %v vs %v", e1, e2)
	}
	if !snapshotEqual(c1, c2) {
		t.Fatal("counters differ across identical faulted runs")
	}
}

func TestInjectInvalidPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid plan did not panic")
		}
	}()
	NewSystem(HardwareChick()).InjectFaults(&fault.Plan{
		Cores: []fault.Slowdown{{Factor: 0.5}},
	})
}
