package memsys

import "fmt"

// Local is a contiguous allocation on a single nodelet — the analogue of
// the Emu intrinsic mw_localmalloc. Every element shares one home nodelet,
// so any thread using it from elsewhere migrates there (the paper's "local"
// SpMV layout, which serializes behind one memory channel).
type Local struct {
	base  Addr
	words int
}

// AllocLocal reserves words contiguous words on the given nodelet.
func (s *Space) AllocLocal(nodelet, words int) Local {
	off := s.allocWords(nodelet, words)
	return Local{base: NewAddr(nodelet, off), words: words}
}

// Len reports the element count.
func (l Local) Len() int { return l.words }

// Nodelet reports the home nodelet.
func (l Local) Nodelet() int { return l.base.Nodelet() }

// At returns the address of element i.
//
//emu:hotpath per-element address math of every Local traversal
func (l Local) At(i int) Addr {
	if uint(i) >= uint(l.words) {
		badIndex("Local", i, l.words)
	}
	return l.base.Plus(i)
}

// badIndex reports an out-of-range element access, factored out of the At
// accessors so their index math inlines into kernel loops.
func badIndex(kind string, i, n int) {
	panic(fmt.Sprintf("memsys: %s index %d out of %d", kind, i, n))
}

// Striped is a word-granularity round-robin allocation across all nodelets —
// the analogue of mw_malloc1dlong. Element i lives on nodelet i mod N,
// which is what makes naive traversals migrate on every element (the
// paper's "1D" SpMV layout) and what lets STREAM workers pick an
// all-local stride.
type Striped struct {
	bases []Addr // per-nodelet base of this allocation's slab
	words int
}

// AllocStriped reserves words elements striped word-by-word across the
// space's nodelets.
func (s *Space) AllocStriped(words int) Striped {
	if words < 0 {
		panic("memsys: negative allocation")
	}
	n := s.Nodelets()
	bases := make([]Addr, n)
	for nl := 0; nl < n; nl++ {
		// Nodelet nl holds elements nl, nl+n, nl+2n, ...
		per := (words - nl + n - 1) / n
		if per < 0 {
			per = 0
		}
		off := s.allocWords(nl, per)
		bases[nl] = NewAddr(nl, off)
	}
	return Striped{bases: bases, words: words}
}

// Len reports the element count.
func (st Striped) Len() int { return st.words }

// Nodelets reports how many nodelets the stripe spans.
func (st Striped) Nodelets() int { return len(st.bases) }

// At returns the address of element i: nodelet i mod N, slot i div N.
//
//emu:hotpath per-element address math of every Striped traversal
func (st Striped) At(i int) Addr {
	if uint(i) >= uint(st.words) {
		badIndex("Striped", i, st.words)
	}
	n := len(st.bases)
	return st.bases[i%n].Plus(i / n)
}

// NodeletOf reports which nodelet owns element i without building the Addr.
func (st Striped) NodeletOf(i int) int { return i % len(st.bases) }

// Replicated is one private copy of a block per nodelet, the discipline the
// paper recommends ("using replicated allocations for commonly used inputs
// like the vector x in the SpMV benchmark"). Reads are always local; the
// writer must update every copy.
type Replicated struct {
	copies []Local
	words  int
}

// AllocReplicated reserves an identical words-long block on every nodelet.
func (s *Space) AllocReplicated(words int) Replicated {
	n := s.Nodelets()
	copies := make([]Local, n)
	for nl := 0; nl < n; nl++ {
		copies[nl] = s.AllocLocal(nl, words)
	}
	return Replicated{copies: copies, words: words}
}

// Len reports the per-copy element count.
func (r Replicated) Len() int { return r.words }

// At returns the address of element i in the copy on the given nodelet.
func (r Replicated) At(nodelet, i int) Addr { return r.copies[nodelet].At(i) }

// Copy returns the Local block holding the given nodelet's replica.
func (r Replicated) Copy(nodelet int) Local { return r.copies[nodelet] }

// Broadcast functionally writes v to element i of every replica. It is a
// zero-time initialization helper; simulated-time replication is the
// kernel's job.
func (r Replicated) Broadcast(s *Space, i int, v uint64) {
	for nl := range r.copies {
		s.Write(r.copies[nl].At(i), v)
	}
}

// Matrix2D is the analogue of the Emu intrinsic mw_malloc2d, which
// "stripes entire data structures across nodelets": row r of the matrix is
// a contiguous cols-word block on nodelet r mod N. (The paper's SpMV "2D"
// layout does NOT use this intrinsic — it builds a two-stage Blocked
// allocation because its rows have unequal lengths — but the intrinsic
// itself is part of the allocation API the paper describes.)
type Matrix2D struct {
	rows, cols int
	perNodelet []Local // nodelet nl holds rows nl, nl+N, ... back to back
}

// Alloc2D reserves a rows-by-cols word matrix with row-granularity
// round-robin placement.
func (s *Space) Alloc2D(rows, cols int) Matrix2D {
	if rows < 0 || cols <= 0 {
		panic(fmt.Sprintf("memsys: Alloc2D(%d, %d)", rows, cols))
	}
	n := s.Nodelets()
	per := make([]Local, n)
	for nl := 0; nl < n; nl++ {
		count := (rows - nl + n - 1) / n
		if count < 0 {
			count = 0
		}
		per[nl] = s.AllocLocal(nl, count*cols)
	}
	return Matrix2D{rows: rows, cols: cols, perNodelet: per}
}

// Rows reports the row count.
func (m Matrix2D) Rows() int { return m.rows }

// Cols reports the row length in words.
func (m Matrix2D) Cols() int { return m.cols }

// RowNodelet reports the home nodelet of row r.
func (m Matrix2D) RowNodelet(r int) int { return r % len(m.perNodelet) }

// At returns the address of word (r, c).
func (m Matrix2D) At(r, c int) Addr {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("memsys: Matrix2D index (%d,%d) of (%d,%d)", r, c, m.rows, m.cols))
	}
	n := len(m.perNodelet)
	return m.perNodelet[r%n].At((r/n)*m.cols + c)
}

// Row returns the contiguous Local window of row r... rows of one nodelet
// share a Local, so the window is expressed as (block, first index).
func (m Matrix2D) Row(r int) (Local, int) {
	n := len(m.perNodelet)
	return m.perNodelet[r%n], (r / n) * m.cols
}

// Blocked is the paper's custom two-stage "2D" allocation: an explicit,
// possibly unequal number of contiguous words on each nodelet. The SpMV 2D
// layout computes per-nodelet row extents first and then allocates each
// nodelet's shard, so that a thread working on one row never migrates
// mid-row.
type Blocked struct {
	chunks []Local
}

// AllocBlocked reserves perNodeletWords[nl] contiguous words on nodelet nl.
// The slice length must equal the space's nodelet count.
func (s *Space) AllocBlocked(perNodeletWords []int) Blocked {
	if len(perNodeletWords) != s.Nodelets() {
		panic(fmt.Sprintf("memsys: AllocBlocked got %d sizes for %d nodelets",
			len(perNodeletWords), s.Nodelets()))
	}
	chunks := make([]Local, len(perNodeletWords))
	for nl, w := range perNodeletWords {
		chunks[nl] = s.AllocLocal(nl, w)
	}
	return Blocked{chunks: chunks}
}

// Chunk returns the contiguous shard on the given nodelet.
func (b Blocked) Chunk(nodelet int) Local { return b.chunks[nodelet] }

// At returns the address of element i within nodelet nl's shard.
func (b Blocked) At(nodelet, i int) Addr { return b.chunks[nodelet].At(i) }

// TotalLen reports the summed element count across shards.
func (b Blocked) TotalLen() int {
	total := 0
	for _, c := range b.chunks {
		total += c.Len()
	}
	return total
}
