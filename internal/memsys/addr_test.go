package memsys

import (
	"testing"
	"testing/quick"
)

func TestAddrRoundTrip(t *testing.T) {
	a := NewAddr(7, 12345)
	if a.Nodelet() != 7 || a.Offset() != 12345 {
		t.Fatalf("round trip failed: %v", a)
	}
}

func TestAddrPlus(t *testing.T) {
	a := NewAddr(3, 100)
	b := a.Plus(5)
	if b.Nodelet() != 3 || b.Offset() != 105 {
		t.Fatalf("Plus = %v", b)
	}
}

func TestAddrString(t *testing.T) {
	if s := NewAddr(2, 255).String(); s != "n2:0xff" {
		t.Fatalf("String = %q", s)
	}
}

func TestAddrBounds(t *testing.T) {
	for _, f := range []func(){
		func() { NewAddr(-1, 0) },
		func() { NewAddr(MaxNodelets, 0) },
		func() { NewAddr(0, offsetMask+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range address did not panic")
				}
			}()
			f()
		}()
	}
	// Extremes must be fine.
	a := NewAddr(MaxNodelets-1, offsetMask)
	if a.Nodelet() != MaxNodelets-1 || a.Offset() != offsetMask {
		t.Fatal("extreme address corrupted")
	}
}

// Property: encode/decode is the identity for all valid (nodelet, offset).
func TestAddrRoundTripProperty(t *testing.T) {
	f := func(nl uint8, off uint64) bool {
		off &= offsetMask
		a := NewAddr(int(nl), off)
		return a.Nodelet() == int(nl) && a.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct (nodelet, offset) pairs produce distinct addresses.
func TestAddrInjectivityProperty(t *testing.T) {
	f := func(n1, n2 uint8, o1, o2 uint32) bool {
		a1 := NewAddr(int(n1), uint64(o1))
		a2 := NewAddr(int(n2), uint64(o2))
		same := n1 == n2 && o1 == o2
		return (a1 == a2) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
