package memsys

import "fmt"

// Space is the global address space of one simulated Emu system: an
// independently growing word heap per nodelet plus a bump allocator.
// Allocation never frees (the benchmarks in the paper are single-phase),
// which keeps placement trivially deterministic.
type Space struct {
	heaps [][]uint64
}

// NewSpace returns an empty address space spanning the given nodelet count.
func NewSpace(nodelets int) *Space {
	if nodelets <= 0 || nodelets > MaxNodelets {
		panic(fmt.Sprintf("memsys: nodelet count %d out of range", nodelets))
	}
	return &Space{heaps: make([][]uint64, nodelets)}
}

// Nodelets reports the number of nodelets the space spans.
func (s *Space) Nodelets() int { return len(s.heaps) }

// HeapWords reports how many words are allocated on the given nodelet.
func (s *Space) HeapWords(nodelet int) int { return len(s.heaps[nodelet]) }

// TotalWords reports the number of allocated words across all nodelets.
func (s *Space) TotalWords() int {
	total := 0
	for _, h := range s.heaps {
		total += len(h)
	}
	return total
}

// allocWords reserves words contiguous words on a nodelet and returns the
// base word offset.
func (s *Space) allocWords(nodelet, words int) uint64 {
	if nodelet < 0 || nodelet >= len(s.heaps) {
		panic(fmt.Sprintf("memsys: alloc on nodelet %d of %d", nodelet, len(s.heaps)))
	}
	if words < 0 {
		panic("memsys: negative allocation")
	}
	base := uint64(len(s.heaps[nodelet]))
	s.heaps[nodelet] = append(s.heaps[nodelet], make([]uint64, words)...)
	return base
}

// Read returns the word at a. Reading unallocated memory is a bug in the
// simulated program and panics.
//
//emu:hotpath the functional load under every simulated memory read
func (s *Space) Read(a Addr) uint64 {
	nl, off := a.Nodelet(), a.Offset()
	if nl >= len(s.heaps) || off >= uint64(len(s.heaps[nl])) {
		badAccess("read", a)
	}
	return s.heaps[nl][off]
}

// Write stores v at a. Writing unallocated memory panics.
//
//emu:hotpath the functional store under every simulated memory write
func (s *Space) Write(a Addr, v uint64) {
	nl, off := a.Nodelet(), a.Offset()
	if nl >= len(s.heaps) || off >= uint64(len(s.heaps[nl])) {
		badAccess("write", a)
	}
	s.heaps[nl][off] = v
}

// badAccess reports an out-of-bounds access. Factored out of Read/Write so
// their bodies fit the inlining budget (the message formatting would
// otherwise keep two single-expression accessors out of line).
func badAccess(op string, a Addr) {
	panic(fmt.Sprintf("memsys: %s of unallocated address %v", op, a))
}

// Valid reports whether a refers to an allocated word.
func (s *Space) Valid(a Addr) bool {
	nl, off := a.Nodelet(), a.Offset()
	return nl < len(s.heaps) && off < uint64(len(s.heaps[nl]))
}
