package memsys

import (
	"testing"
	"testing/quick"
)

func TestLocalPlacement(t *testing.T) {
	s := NewSpace(8)
	l := s.AllocLocal(5, 100)
	if l.Nodelet() != 5 || l.Len() != 100 {
		t.Fatalf("local: nodelet=%d len=%d", l.Nodelet(), l.Len())
	}
	for i := 0; i < 100; i++ {
		if l.At(i).Nodelet() != 5 {
			t.Fatalf("element %d on nodelet %d", i, l.At(i).Nodelet())
		}
	}
	// Contiguity.
	if l.At(99).Offset()-l.At(0).Offset() != 99 {
		t.Fatal("local allocation not contiguous")
	}
}

func TestLocalOutOfRangePanics(t *testing.T) {
	s := NewSpace(2)
	l := s.AllocLocal(0, 3)
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			l.At(i)
		}()
	}
}

func TestStripedPlacement(t *testing.T) {
	s := NewSpace(8)
	st := s.AllocStriped(100)
	if st.Len() != 100 || st.Nodelets() != 8 {
		t.Fatalf("striped: len=%d nodelets=%d", st.Len(), st.Nodelets())
	}
	for i := 0; i < 100; i++ {
		if got := st.At(i).Nodelet(); got != i%8 {
			t.Fatalf("element %d on nodelet %d, want %d", i, got, i%8)
		}
		if got := st.NodeletOf(i); got != i%8 {
			t.Fatalf("NodeletOf(%d) = %d", i, got)
		}
	}
	// Elements i and i+8 are adjacent words on the same nodelet.
	if st.At(8).Offset()-st.At(0).Offset() != 1 {
		t.Fatal("striped slab not dense per nodelet")
	}
}

func TestStripedUnevenLength(t *testing.T) {
	s := NewSpace(4)
	st := s.AllocStriped(6) // nodelets 0,1 get 2 elements; 2,3 get 1
	seen := map[Addr]bool{}
	for i := 0; i < 6; i++ {
		a := st.At(i)
		if seen[a] {
			t.Fatalf("address %v assigned twice", a)
		}
		seen[a] = true
		s.Write(a, uint64(i)+1)
	}
	for i := 0; i < 6; i++ {
		if s.Read(st.At(i)) != uint64(i)+1 {
			t.Fatalf("element %d corrupted", i)
		}
	}
}

func TestReplicatedPlacement(t *testing.T) {
	s := NewSpace(4)
	r := s.AllocReplicated(10)
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
	for nl := 0; nl < 4; nl++ {
		if r.At(nl, 0).Nodelet() != nl {
			t.Fatalf("replica %d not on its nodelet", nl)
		}
		if r.Copy(nl).Nodelet() != nl {
			t.Fatalf("Copy(%d) on wrong nodelet", nl)
		}
	}
	r.Broadcast(s, 3, 77)
	for nl := 0; nl < 4; nl++ {
		if s.Read(r.At(nl, 3)) != 77 {
			t.Fatalf("broadcast missed replica %d", nl)
		}
	}
	// Replicas are independent.
	s.Write(r.At(1, 3), 5)
	if s.Read(r.At(0, 3)) != 77 {
		t.Fatal("replicas share storage")
	}
}

func TestBlockedPlacement(t *testing.T) {
	s := NewSpace(3)
	b := s.AllocBlocked([]int{4, 0, 7})
	if b.TotalLen() != 11 {
		t.Fatalf("TotalLen = %d", b.TotalLen())
	}
	if b.Chunk(0).Len() != 4 || b.Chunk(1).Len() != 0 || b.Chunk(2).Len() != 7 {
		t.Fatal("chunk sizes wrong")
	}
	if b.At(2, 6).Nodelet() != 2 {
		t.Fatal("blocked element on wrong nodelet")
	}
}

func TestBlockedSizeMismatchPanics(t *testing.T) {
	s := NewSpace(3)
	defer func() {
		if recover() == nil {
			t.Fatal("size/nodelet mismatch did not panic")
		}
	}()
	s.AllocBlocked([]int{1, 2})
}

func TestMatrix2DPlacement(t *testing.T) {
	s := NewSpace(4)
	m := s.Alloc2D(10, 3)
	if m.Rows() != 10 || m.Cols() != 3 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	for r := 0; r < 10; r++ {
		if m.RowNodelet(r) != r%4 {
			t.Fatalf("row %d on nodelet %d", r, m.RowNodelet(r))
		}
		// Rows are contiguous.
		if m.At(r, 2).Offset()-m.At(r, 0).Offset() != 2 {
			t.Fatalf("row %d not contiguous", r)
		}
		for c := 0; c < 3; c++ {
			if m.At(r, c).Nodelet() != r%4 {
				t.Fatalf("(%d,%d) on nodelet %d", r, c, m.At(r, c).Nodelet())
			}
		}
	}
	// Row windows agree with At.
	blk, first := m.Row(9)
	if blk.At(first) != m.At(9, 0) {
		t.Fatal("Row window disagrees with At")
	}
}

func TestMatrix2DNoAliasing(t *testing.T) {
	s := NewSpace(3)
	m := s.Alloc2D(7, 5)
	seen := map[Addr]bool{}
	for r := 0; r < 7; r++ {
		for c := 0; c < 5; c++ {
			a := m.At(r, c)
			if seen[a] {
				t.Fatalf("(%d,%d) aliases", r, c)
			}
			seen[a] = true
		}
	}
}

func TestMatrix2DBounds(t *testing.T) {
	s := NewSpace(2)
	m := s.Alloc2D(2, 2)
	for _, f := range []func(){
		func() { m.At(-1, 0) },
		func() { m.At(2, 0) },
		func() { m.At(0, 2) },
		func() { s.Alloc2D(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range 2D access did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: a striped allocation is a bijection onto per-nodelet dense
// slabs — no two elements share an address and every element is on
// nodelet i mod N, for arbitrary sizes and nodelet counts.
func TestStripedBijectionProperty(t *testing.T) {
	f := func(nl uint8, words uint16) bool {
		n := int(nl%16) + 1
		w := int(words % 2048)
		s := NewSpace(n)
		st := s.AllocStriped(w)
		seen := make(map[Addr]bool, w)
		for i := 0; i < w; i++ {
			a := st.At(i)
			if a.Nodelet() != i%n || seen[a] {
				return false
			}
			seen[a] = true
		}
		return s.TotalWords() == w || w == 0 && s.TotalWords() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: consecutive allocations of any kind never alias — writing a
// distinct value through every handle and reading it back succeeds.
func TestAllocationsNeverAliasProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s := NewSpace(4)
		l := s.AllocLocal(int(a%4), int(a%64)+1)
		st := s.AllocStriped(int(b%64) + 1)
		r := s.AllocReplicated(int(c%16) + 1)
		var addrs []Addr
		for i := 0; i < l.Len(); i++ {
			addrs = append(addrs, l.At(i))
		}
		for i := 0; i < st.Len(); i++ {
			addrs = append(addrs, st.At(i))
		}
		for nl := 0; nl < 4; nl++ {
			for i := 0; i < r.Len(); i++ {
				addrs = append(addrs, r.At(nl, i))
			}
		}
		for i, ad := range addrs {
			s.Write(ad, uint64(i)+1)
		}
		for i, ad := range addrs {
			if s.Read(ad) != uint64(i)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
