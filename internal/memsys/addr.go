// Package memsys models the Emu system's partitioned global address space.
//
// Every 8-byte word lives on exactly one nodelet, and the nodelet identity
// is recoverable from the address alone — this is the property that drives
// the Emu execution model: a Gossamer thread that dereferences an address
// owned by another nodelet migrates there. The package provides the four
// allocation disciplines the paper exercises:
//
//   - Local   — the analogue of mw_localmalloc: a contiguous block on one
//     nodelet.
//   - Striped — the analogue of mw_malloc1dlong: word i of the array lives
//     on nodelet i mod N.
//   - Replicated — one private copy of the block per nodelet (used for the
//     SpMV input vector x).
//   - Blocked — the paper's custom two-stage "2D" allocation: a
//     caller-specified number of words on each nodelet, contiguous per
//     nodelet.
//
// The space also stores data functionally, so simulated kernels compute
// real results that tests can verify against reference implementations.
package memsys

import "fmt"

// WordBytes is the memory access granularity of the Emu model: every load
// and store moves one 8-byte word, matching the paper's "8-byte word can be
// transferred in a single burst" NCDRAM description.
const WordBytes = 8

// Addr identifies one word in the global address space. The high byte holds
// the nodelet number and the low 56 bits hold the word offset within that
// nodelet's heap, mirroring how real Emu addresses encode locality in the
// upper bits.
type Addr uint64

const (
	offsetBits = 56
	offsetMask = (uint64(1) << offsetBits) - 1

	// MaxNodelets is the largest system the address encoding supports;
	// the full Emu Chick is 64 nodelets (8 nodes x 8 nodelets).
	MaxNodelets = 256
)

// NewAddr builds the address of word number offset on the given nodelet.
//
//emu:hotpath every address computation (At, Plus) funnels through here
func NewAddr(nodelet int, offset uint64) Addr {
	if uint(nodelet) >= MaxNodelets || offset > offsetMask {
		badAddr(nodelet, offset)
	}
	return Addr(uint64(nodelet)<<offsetBits | offset)
}

// badAddr reports an unencodable address component, factored out of NewAddr
// so the valid path inlines into the allocation accessors.
func badAddr(nodelet int, offset uint64) {
	if nodelet < 0 || nodelet >= MaxNodelets {
		panic(fmt.Sprintf("memsys: nodelet %d out of range", nodelet))
	}
	panic(fmt.Sprintf("memsys: offset %d overflows address encoding", offset))
}

// Nodelet reports which nodelet owns the addressed word.
func (a Addr) Nodelet() int { return int(uint64(a) >> offsetBits) }

// Offset reports the word offset within the owning nodelet's heap.
func (a Addr) Offset() uint64 { return uint64(a) & offsetMask }

// Plus returns the address n words after a on the same nodelet.
func (a Addr) Plus(n int) Addr {
	return NewAddr(a.Nodelet(), a.Offset()+uint64(n))
}

// String renders the address as nodelet:offset.
func (a Addr) String() string {
	return fmt.Sprintf("n%d:%#x", a.Nodelet(), a.Offset())
}
