package memsys

import "testing"

func TestSpaceReadWrite(t *testing.T) {
	s := NewSpace(4)
	l := s.AllocLocal(2, 10)
	s.Write(l.At(3), 42)
	if got := s.Read(l.At(3)); got != 42 {
		t.Fatalf("Read = %d", got)
	}
	if got := s.Read(l.At(0)); got != 0 {
		t.Fatalf("fresh memory = %d, want 0", got)
	}
}

func TestSpaceUnallocatedPanics(t *testing.T) {
	s := NewSpace(2)
	s.AllocLocal(0, 4)
	cases := []Addr{
		NewAddr(0, 4),   // one past the end
		NewAddr(1, 0),   // nodelet with no allocations
		NewAddr(100, 0), // nodelet outside the space
	}
	for _, a := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("read of %v did not panic", a)
				}
			}()
			s.Read(a)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("write of %v did not panic", a)
				}
			}()
			s.Write(a, 1)
		}()
	}
}

func TestSpaceValid(t *testing.T) {
	s := NewSpace(2)
	l := s.AllocLocal(1, 2)
	if !s.Valid(l.At(1)) {
		t.Fatal("allocated address reported invalid")
	}
	if s.Valid(NewAddr(1, 2)) {
		t.Fatal("unallocated address reported valid")
	}
}

func TestSpaceAccounting(t *testing.T) {
	s := NewSpace(3)
	s.AllocLocal(0, 5)
	s.AllocLocal(0, 7)
	s.AllocLocal(2, 1)
	if s.HeapWords(0) != 12 || s.HeapWords(1) != 0 || s.HeapWords(2) != 1 {
		t.Fatalf("heap words = %d/%d/%d", s.HeapWords(0), s.HeapWords(1), s.HeapWords(2))
	}
	if s.TotalWords() != 13 {
		t.Fatalf("TotalWords = %d", s.TotalWords())
	}
}

func TestSpaceSequentialAllocationsDisjoint(t *testing.T) {
	s := NewSpace(1)
	a := s.AllocLocal(0, 4)
	b := s.AllocLocal(0, 4)
	s.Write(a.At(3), 1)
	s.Write(b.At(0), 2)
	if s.Read(a.At(3)) != 1 {
		t.Fatal("allocations overlap")
	}
}

func TestNewSpaceBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxNodelets + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSpace(%d) did not panic", n)
				}
			}()
			NewSpace(n)
		}()
	}
}
