package chaos

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"emuchick/internal/storefs"
)

// writeThrough runs one atomic-write-shaped op sequence (create, write,
// sync, close, rename) against fsys, returning the first error.
func writeThrough(fsys storefs.FS, dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fsys.OpenFile(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(dir, name))
}

// TestEmptyPlanIsTransparent: a ruleless FS behaves exactly like the OS.
func TestEmptyPlanIsTransparent(t *testing.T) {
	dir := t.TempDir()
	fsys := New(Plan{Seed: 3}, nil)
	if err := writeThrough(fsys, dir, "a.json", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(filepath.Join(dir, "a.json"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if n := fsys.Ops(); n != 4 { // create, write, sync, rename
		t.Fatalf("ops = %d, want 4", n)
	}
	if inj := fsys.Injected(); len(inj) != 0 {
		t.Fatalf("empty plan injected %v", inj)
	}
}

// TestPlanDeterminism: the same (plan, op sequence) injects the same faults
// at the same ops with the same torn prefixes, run after run.
func TestPlanDeterminism(t *testing.T) {
	run := func() ([]Record, []byte) {
		dir := t.TempDir()
		fsys := New(NoisyPlan(42, 3), nil)
		for i := 0; i < 8; i++ {
			_ = writeThrough(fsys, dir, "f.json", bytes.Repeat([]byte{byte('a' + i)}, 64))
		}
		data, _ := os.ReadFile(filepath.Join(dir, "f.json.tmp"))
		return fsys.Injected(), data
	}
	inj1, tmp1 := run()
	inj2, tmp2 := run()
	if len(inj1) == 0 {
		t.Fatal("noisy plan injected nothing over 32 ops")
	}
	if !reflect.DeepEqual(stripPaths(inj1), stripPaths(inj2)) {
		t.Fatalf("fault schedule not deterministic:\n%v\n%v", inj1, inj2)
	}
	if !bytes.Equal(tmp1, tmp2) {
		t.Fatalf("torn prefixes differ: %d vs %d bytes", len(tmp1), len(tmp2))
	}
}

func stripPaths(recs []Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		r.Path = filepath.Base(r.Path)
		out[i] = r
	}
	return out
}

// TestTornWriteLeavesStrictPrefix: a torn write lands fewer bytes than asked
// and reports ErrTorn.
func TestTornWriteLeavesStrictPrefix(t *testing.T) {
	dir := t.TempDir()
	fsys := New(Plan{Seed: 7, Rules: []Rule{{Kind: Torn, At: 2}}}, nil)
	data := bytes.Repeat([]byte("x"), 256)
	err := writeThrough(fsys, dir, "t.json", data)
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("err = %v, want ErrTorn", err)
	}
	got, _ := os.ReadFile(filepath.Join(dir, "t.json.tmp"))
	if len(got) >= len(data) {
		t.Fatalf("torn write landed %d of %d bytes", len(got), len(data))
	}
	if _, err := os.Stat(filepath.Join(dir, "t.json")); !os.IsNotExist(err) {
		t.Fatal("torn write reached the destination path")
	}
}

// TestNoSpaceAndSyncAndRename: each kind fires only on its own op class.
func TestNoSpaceAndSyncAndRename(t *testing.T) {
	cases := []struct {
		kind Kind
		at   int // ops: 1 create, 2 write, 3 sync, 4 rename
		want error
	}{
		{NoSpace, 2, ErrNoSpace},
		{SyncFail, 3, ErrSync},
		{RenameFail, 4, ErrRename},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			fsys := New(Plan{Seed: 1, Rules: []Rule{{Kind: tc.kind, At: tc.at}}}, nil)
			err := writeThrough(fsys, dir, "f.json", []byte("payload"))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if _, err := os.Stat(filepath.Join(dir, "f.json")); !os.IsNotExist(err) {
				t.Fatal("failed write reached the destination path")
			}
			inj := fsys.Injected()
			if len(inj) != 1 || inj[0].Kind != tc.kind || inj[0].Op != tc.at {
				t.Fatalf("injected = %v, want one %v at op %d", inj, tc.kind, tc.at)
			}
		})
	}
}

// TestRuleArmsUntilEligible: an exact-At rule whose op class does not match
// at At fires at the next eligible op instead of being lost.
func TestRuleArmsUntilEligible(t *testing.T) {
	dir := t.TempDir()
	// Op 1 is a create; the rename-fail rule armed at 1 must wait for op 4.
	fsys := New(Plan{Seed: 1, Rules: []Rule{{Kind: RenameFail, At: 1}}}, nil)
	err := writeThrough(fsys, dir, "f.json", []byte("payload"))
	if !errors.Is(err, ErrRename) {
		t.Fatalf("err = %v, want ErrRename", err)
	}
	if inj := fsys.Injected(); len(inj) != 1 || inj[0].Op != 4 {
		t.Fatalf("injected = %v, want rename fault at op 4", inj)
	}
}

// TestCrashFreezesEverything: after the kill op, every operation (reads
// included) fails with ErrCrashed, the hook fires exactly once, and the
// on-disk state keeps whatever was durable before the kill.
func TestCrashFreezesEverything(t *testing.T) {
	dir := t.TempDir()
	hooks := 0
	fsys := New(Plan{Seed: 9, Rules: []Rule{{Kind: Crash, At: 6}}}, func() { hooks++ })
	if err := writeThrough(fsys, dir, "a.json", []byte("first")); err != nil {
		t.Fatal(err) // ops 1-4, before the kill
	}
	err := writeThrough(fsys, dir, "b.json", []byte("second")) // dies at op 6 (the write)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !fsys.Crashed() {
		t.Fatal("FS not marked crashed")
	}
	if hooks != 1 {
		t.Fatalf("crash hook fired %d times", hooks)
	}
	if _, err := fsys.ReadFile(filepath.Join(dir, "a.json")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v, want ErrCrashed", err)
	}
	if err := writeThrough(fsys, dir, "c.json", []byte("third")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v, want ErrCrashed", err)
	}
	// The frozen directory still holds the pre-kill survivor.
	got, err := os.ReadFile(filepath.Join(dir, "a.json"))
	if err != nil || string(got) != "first" {
		t.Fatalf("survivor = %q, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "c.json")); !os.IsNotExist(err) {
		t.Fatal("post-crash write reached the disk")
	}
}

// TestKillOpSeededAndBounded: KillOp is deterministic per seed and always
// lands in [1, maxOp]; different seeds spread across the range.
func TestKillOpSeededAndBounded(t *testing.T) {
	seen := map[int]bool{}
	for seed := uint64(1); seed <= 64; seed++ {
		op := KillOp(seed, 40)
		if op != KillOp(seed, 40) {
			t.Fatalf("KillOp(%d) not deterministic", seed)
		}
		if op < 1 || op > 40 {
			t.Fatalf("KillOp(%d, 40) = %d out of range", seed, op)
		}
		seen[op] = true
	}
	if len(seen) < 10 {
		t.Fatalf("64 seeds hit only %d distinct kill ops", len(seen))
	}
}
