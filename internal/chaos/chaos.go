// Package chaos is deterministic fault injection for the serving stack's
// storage, the disk-side sibling of internal/fault: where a fault.Plan
// degrades the simulated machine, a chaos.Plan degrades the filesystem the
// job server persists itself to. A seeded plan decides, per storage
// operation, whether that operation is torn mid-write, refused with ENOSPC,
// fails its fsync or rename — or kills the whole filesystem, the
// deterministic stand-in for a process crash at an arbitrary write.
//
// The same contract internal/fault established applies here: every choice a
// plan makes derives from its seed and the operation counter, never from the
// wall clock or ambient randomness, so a given (plan, seed) replays the same
// fault sequence on every run (the package is in the nodeterminism
// analyzer's audited set). An empty plan is transparent: the FS behaves
// exactly like the real one.
//
// The server-side contract the fuzz harness proves against this package:
// every injected failure becomes a correct outcome — a job fails with a
// structured error, a cache entry is never half-written, a torn WAL tail is
// dropped on reload — and a crash at any operation leaves a directory a
// restarted server resumes to byte-identical results.
package chaos

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"emuchick/internal/storefs"
	"emuchick/internal/workload"
)

// Kind names one injectable storage fault.
type Kind int

const (
	// Torn writes a seeded strict prefix of the data, then fails — the
	// signature of a kill mid-append.
	Torn Kind = iota
	// NoSpace refuses creates and writes with an ENOSPC-shaped error,
	// writing nothing.
	NoSpace
	// SyncFail makes fsync report failure (the data may or may not be
	// durable; the caller must not rename over good data afterwards).
	SyncFail
	// RenameFail makes the atomic-replacement rename fail, leaving the
	// temp file behind and the destination untouched.
	RenameFail
	// Crash kills the filesystem at the matched operation: a data write
	// first lands a seeded partial prefix (kill mid-write), then this and
	// every later operation — reads included — fails with ErrCrashed. The
	// on-disk state freezes as a real SIGKILL would leave it.
	Crash
)

func (k Kind) String() string {
	switch k {
	case Torn:
		return "torn"
	case NoSpace:
		return "enospc"
	case SyncFail:
		return "syncfail"
	case RenameFail:
		return "renamefail"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injected fault errors, wrapped in *fs.PathError by the FS so callers see
// which path suffered.
var (
	ErrTorn    = errors.New("chaos: torn write (injected)")
	ErrNoSpace = errors.New("chaos: no space left on device (injected ENOSPC)")
	ErrSync    = errors.New("chaos: fsync failed (injected)")
	ErrRename  = errors.New("chaos: rename failed (injected)")
	// ErrCrashed is returned by every operation after a Crash rule fired.
	ErrCrashed = errors.New("chaos: filesystem crashed (injected kill)")
)

// Rule selects the operations one fault kind fires on. The FS counts every
// mutating operation (create, write, sync, truncate, rename, remove) on one
// global 1-based counter; a rule fires when the counter matches At exactly,
// or matches Phase modulo Every for a periodic rule. A rule whose kind
// cannot apply to the matched operation (a RenameFail on a write, say) arms
// and fires at the next operation it can apply to, so exact-At rules stay
// meaningful without the caller knowing the op schedule byte for byte.
type Rule struct {
	Kind Kind
	// At fires the rule once, at the first eligible op with index >= At
	// (1-based). 0 disables the one-shot form.
	At int
	// Every/Phase fire the rule at every eligible op whose index is
	// congruent to Phase mod Every. Every 0 disables the periodic form.
	Every, Phase int
}

// eligible reports whether the rule's kind can apply to the given op.
func (r Rule) eligible(op opKind) bool {
	switch r.Kind {
	case Torn:
		return op == opWrite
	case NoSpace:
		return op == opWrite || op == opCreate
	case SyncFail:
		return op == opSync
	case RenameFail:
		return op == opRename
	case Crash:
		return true
	}
	return false
}

// Plan is one deterministic storage-fault scenario. The zero value injects
// nothing and the FS is then a transparent wrapper.
type Plan struct {
	// Seed drives every choice the plan makes: torn-prefix lengths and the
	// seeded constructors below. Zero behaves as seed 1.
	Seed  uint64
	Rules []Rule
}

// KillPlan returns a plan whose only rule crashes the filesystem at a
// seeded operation in [1, maxOp] — the crash-point fuzzer's per-seed plan.
// KillOp reports which operation a given (seed, maxOp) selects.
func KillPlan(seed uint64, maxOp int) Plan {
	return Plan{Seed: seed, Rules: []Rule{{Kind: Crash, At: KillOp(seed, maxOp)}}}
}

// KillOp is the seeded crash operation KillPlan(seed, maxOp) uses.
func KillOp(seed uint64, maxOp int) int {
	if maxOp < 1 {
		maxOp = 1
	}
	return 1 + rng(seed, 0).Intn(maxOp)
}

// NoisyPlan returns a plan that periodically injects every non-crash fault
// kind: each kind gets a seeded phase modulo every, so different seeds
// degrade different operations. Smaller every means noisier storage.
func NoisyPlan(seed uint64, every int) Plan {
	if every < 1 {
		every = 1
	}
	p := Plan{Seed: seed}
	for i, k := range []Kind{Torn, NoSpace, SyncFail, RenameFail} {
		p.Rules = append(p.Rules, Rule{Kind: k, Every: every, Phase: rng(seed, uint64(i)+1).Intn(every)})
	}
	return p
}

// rng derives a salted deterministic stream from the plan seed, mirroring
// internal/fault's per-rule streams.
func rng(seed, salt uint64) *workload.RNG {
	if seed == 0 {
		seed = 1
	}
	return workload.NewRNG(seed ^ (salt+1)*0x9E3779B97F4A7C15)
}

// opKind classifies the counted mutating operations.
type opKind int

const (
	opCreate opKind = iota
	opWrite
	opSync
	opTruncate
	opRename
	opRemove
)

func (o opKind) String() string {
	return [...]string{"create", "write", "sync", "truncate", "rename", "remove"}[o]
}

// Record is one injected fault, for test assertions and fault accounting.
type Record struct {
	Op   int    // global op index the fault fired at
	Kind Kind   // which fault
	Path string // the path it hit
}

// FS is a storefs.FS that injects the plan's faults. All methods are safe
// for concurrent use; operations are ordered by one global counter under a
// single mutex, which is what makes single-worker fault schedules exactly
// reproducible.
type FS struct {
	inner storefs.FS
	plan  Plan

	mu       sync.Mutex
	ops      int
	crashed  bool
	fired    []bool // per one-shot rule
	injected []Record
	onCrash  func()
}

// New wraps the real filesystem with the plan's faults. onCrash, when
// non-nil, is called exactly once, outside the FS lock, when a Crash rule
// fires (the fuzz harness uses it to tear the server down).
func New(plan Plan, onCrash func()) *FS {
	return &FS{inner: storefs.Default, plan: plan, fired: make([]bool, len(plan.Rules)), onCrash: onCrash}
}

// Ops reports how many mutating operations the FS has counted.
func (c *FS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether a Crash rule has fired.
func (c *FS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Injected returns every fault fired so far, in op order.
func (c *FS) Injected() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.injected))
	copy(out, c.injected)
	return out
}

// step counts one mutating op and resolves the fault to inject, if any.
// It returns the op index, the matched kind, and whether a fault fires.
// Caller holds c.mu.
func (c *FS) step(op opKind, path string) (int, Kind, bool) {
	c.ops++
	for i, r := range c.plan.Rules {
		if !r.eligible(op) {
			continue
		}
		oneShot := r.At > 0 && !c.fired[i] && c.ops >= r.At
		periodic := r.Every > 0 && c.ops%r.Every == r.Phase%r.Every
		if !oneShot && !periodic {
			continue
		}
		if oneShot {
			c.fired[i] = true
		}
		c.injected = append(c.injected, Record{Op: c.ops, Kind: r.Kind, Path: path})
		return c.ops, r.Kind, true
	}
	return c.ops, 0, false
}

// crash freezes the FS. Caller holds c.mu; the hook is returned so the
// caller can invoke it after unlocking.
func (c *FS) crash() func() {
	c.crashed = true
	hook := c.onCrash
	c.onCrash = nil
	return hook
}

// tornPrefix is the seeded strict-prefix length for a torn write at op.
func (c *FS) tornPrefix(op, n int) int {
	if n == 0 {
		return 0
	}
	return rng(c.plan.Seed, uint64(op)*2+1).Intn(n)
}

func pathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

func (c *FS) MkdirAll(path string, perm fs.FileMode) error {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return pathErr("mkdir", path, ErrCrashed)
	}
	return c.inner.MkdirAll(path, perm)
}

func (c *FS) ReadFile(path string) ([]byte, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, pathErr("read", path, ErrCrashed)
	}
	return c.inner.ReadFile(path)
}

func (c *FS) ReadDir(path string) ([]fs.DirEntry, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, pathErr("readdir", path, ErrCrashed)
	}
	return c.inner.ReadDir(path)
}

func (c *FS) Stat(path string) (fs.FileInfo, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, pathErr("stat", path, ErrCrashed)
	}
	return c.inner.Stat(path)
}

func (c *FS) OpenFile(path string) (storefs.File, error) {
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return nil, pathErr("open", path, ErrCrashed)
	}
	_, kind, fire := c.step(opCreate, path)
	var hook func()
	if fire && kind == Crash {
		hook = c.crash()
	}
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	if fire {
		switch kind {
		case NoSpace:
			return nil, pathErr("open", path, ErrNoSpace)
		case Crash:
			return nil, pathErr("open", path, ErrCrashed)
		}
	}
	f, err := c.inner.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: c, inner: f, path: path}, nil
}

func (c *FS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return pathErr("rename", oldpath, ErrCrashed)
	}
	_, kind, fire := c.step(opRename, newpath)
	var hook func()
	if fire && kind == Crash {
		hook = c.crash()
	}
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	if fire {
		switch kind {
		case RenameFail:
			return pathErr("rename", newpath, ErrRename)
		case Crash:
			// The kill lands before the rename: destination keeps its old
			// content, the temp file survives as an orphan.
			return pathErr("rename", newpath, ErrCrashed)
		}
	}
	return c.inner.Rename(oldpath, newpath)
}

func (c *FS) Remove(path string) error {
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return pathErr("remove", path, ErrCrashed)
	}
	_, kind, fire := c.step(opRemove, path)
	var hook func()
	if fire && kind == Crash {
		hook = c.crash()
	}
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	if fire && kind == Crash {
		return pathErr("remove", path, ErrCrashed)
	}
	return c.inner.Remove(path)
}

// file wraps one open handle, injecting write-side faults.
type file struct {
	fs    *FS
	inner storefs.File
	path  string
}

func (f *file) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return 0, pathErr("write", f.path, ErrCrashed)
	}
	op, kind, fire := c.step(opWrite, f.path)
	var hook func()
	if fire && kind == Crash {
		hook = c.crash()
	}
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	if fire {
		switch kind {
		case Torn, Crash:
			// Kill mid-write: a seeded strict prefix lands, the rest is lost.
			n := c.tornPrefix(op, len(p))
			if n > 0 {
				if wn, err := f.inner.Write(p[:n]); err != nil {
					return wn, err
				}
			}
			if kind == Crash {
				return n, pathErr("write", f.path, ErrCrashed)
			}
			return n, pathErr("write", f.path, ErrTorn)
		case NoSpace:
			return 0, pathErr("write", f.path, ErrNoSpace)
		}
	}
	return f.inner.Write(p)
}

func (f *file) Sync() error {
	c := f.fs
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return pathErr("sync", f.path, ErrCrashed)
	}
	_, kind, fire := c.step(opSync, f.path)
	var hook func()
	if fire && kind == Crash {
		hook = c.crash()
	}
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	if fire {
		switch kind {
		case SyncFail:
			return pathErr("sync", f.path, ErrSync)
		case Crash:
			return pathErr("sync", f.path, ErrCrashed)
		}
	}
	return f.inner.Sync()
}

func (f *file) Truncate(size int64) error {
	c := f.fs
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return pathErr("truncate", f.path, ErrCrashed)
	}
	_, kind, fire := c.step(opTruncate, f.path)
	var hook func()
	if fire && kind == Crash {
		hook = c.crash()
	}
	c.mu.Unlock()
	if hook != nil {
		hook()
	}
	if fire && kind == Crash {
		return pathErr("truncate", f.path, ErrCrashed)
	}
	return f.inner.Truncate(size)
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	c := f.fs
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return 0, pathErr("seek", f.path, ErrCrashed)
	}
	return f.inner.Seek(offset, whence)
}

func (f *file) Close() error {
	// Close always reaches the real handle so descriptors never leak, even
	// after a crash froze the data plane.
	return f.inner.Close()
}
