package trace

import (
	"strings"
	"testing"

	"emuchick/internal/sim"
)

func TestKindStrings(t *testing.T) {
	if KindLoad.String() != "load" || KindMigrate.String() != "migrate" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
	for k := Kind(0); k < numKinds; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
}

func TestKindHasAddr(t *testing.T) {
	if !KindLoad.HasAddr() || !KindMigrate.HasAddr() {
		t.Fatal("memory kinds should carry addresses")
	}
	if KindSpawn.HasAddr() || KindRunBegin.HasAddr() {
		t.Fatal("control kinds should not carry addresses")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: KindMigrate, Nodelet: 1, Target: 2}
	if !strings.Contains(e.String(), "nl1 -> nl2") {
		t.Fatalf("event string %q", e.String())
	}
	local := Event{Kind: KindLoad, Nodelet: 1, Target: -1}
	if strings.Contains(local.String(), "->") {
		t.Fatalf("local event string %q", local.String())
	}
}

func TestFuncObserverAndTee(t *testing.T) {
	var events, samples int
	a := FuncObserver{OnEvent: func(Event) { events++ }}
	b := FuncObserver{OnSample: func(Sample) { samples++ }}
	obs := Tee(nil, a, b)
	obs.Event(Event{Kind: KindLoad})
	obs.Sample(Sample{})
	if events != 1 || samples != 1 {
		t.Fatalf("tee delivered events=%d samples=%d", events, samples)
	}
	if Tee() != nil || Tee(nil) != nil {
		t.Fatal("empty tee should be nil")
	}
	if got := Tee(a); got == nil {
		t.Fatal("single tee should unwrap")
	}
}

func TestAggregatorBuckets(t *testing.T) {
	a := NewAggregator(sim.Microsecond)
	a.Event(Event{Kind: KindRunBegin, Nodelet: 8, Target: -1})
	// A migration departing nl0 at 0.5us arriving nl3 at 1.5us.
	a.Event(Event{Kind: KindMigrate, Nodelet: 0, Target: 3,
		Time: sim.Microsecond / 2, End: 3 * sim.Microsecond / 2})
	// Two loads on nl3 in bucket 0.
	a.Event(Event{Kind: KindLoad, Nodelet: 3, Target: -1})
	a.Event(Event{Kind: KindLoad, Nodelet: 3, Target: -1, Time: sim.Nanosecond})
	// A remote store served by nl5's channel.
	a.Event(Event{Kind: KindRemoteStore, Nodelet: 1, Target: 5, Time: 2 * sim.Microsecond})
	// A spawn landing on nl2.
	a.Event(Event{Kind: KindSpawn, Nodelet: 0, Target: 2, End: sim.Microsecond})

	if a.Runs() != 1 {
		t.Fatalf("runs = %d", a.Runs())
	}
	if got := a.TotalMigrations(); got != 1 {
		t.Fatalf("total migrations = %d", got)
	}
	if got := a.TotalWords(); got != 3 {
		t.Fatalf("total words = %d", got)
	}
	c0 := a.Cells(0)
	if c0[0].MigrationsOut != 1 {
		t.Fatalf("nl0 bucket0 out = %d", c0[0].MigrationsOut)
	}
	c3 := a.Cells(3)
	if c3[1].MigrationsIn != 1 {
		t.Fatalf("nl3 bucket1 in = %d", c3[1].MigrationsIn)
	}
	if c3[0].Words != 2 {
		t.Fatalf("nl3 bucket0 words = %d", c3[0].Words)
	}
	if a.Cells(2)[1].Spawns != 1 {
		t.Fatal("spawn not attributed to child nodelet")
	}
	if a.Cells(5)[2].Words != 1 {
		t.Fatal("remote store not attributed to home channel")
	}
	if rate := a.PeakMigrationsPerSec(); rate != 1e6 {
		t.Fatalf("peak migration rate = %v", rate)
	}
}

func TestAggregatorSamplesAndFigures(t *testing.T) {
	a := NewAggregator(0) // default bucket
	if a.Bucket() != DefaultBucket {
		t.Fatal("default bucket not applied")
	}
	a.Event(Event{Kind: KindMigrate, Nodelet: 0, Target: 1, End: sim.Nanosecond})
	a.Sample(Sample{Nodelet: 1, ContextWaiters: 7, ContextsUsed: 3, ChannelBacklog: 42})
	a.Sample(Sample{Nodelet: 1, ContextWaiters: 2, ChannelBacklog: 10})
	if a.PeakContextWaiters(1) != 7 {
		t.Fatalf("peak waiters = %d", a.PeakContextWaiters(1))
	}
	if a.PeakChannelBacklog(1) != 42 {
		t.Fatalf("peak backlog = %v", a.PeakChannelBacklog(1))
	}
	if a.PeakContextWaiters(99) != 0 || a.PeakChannelBacklog(-1) != 0 {
		t.Fatal("out-of-range peeks should be zero")
	}

	figs := a.Figures()
	if len(figs) != 2 {
		t.Fatalf("figures = %d", len(figs))
	}
	mig := figs[0]
	if mig.ID != "trace-migrations" || len(mig.Series) != a.Nodelets() {
		t.Fatalf("migration figure %q with %d series", mig.ID, len(mig.Series))
	}
	s0 := mig.FindSeries("nl0")
	if s0 == nil || len(s0.Points) != a.Buckets() {
		t.Fatal("nl0 series missing or wrong length")
	}
	if s0.Points[0].Stats.Mean != 1/DefaultBucket.Seconds() {
		t.Fatalf("nl0 rate = %v", s0.Points[0].Stats.Mean)
	}
}

func TestChromeWriterRing(t *testing.T) {
	w := NewChromeWriter(4)
	for i := 0; i < 10; i++ {
		w.Event(Event{Kind: KindLoad, Nodelet: 0, Target: -1, Time: sim.Time(i)})
	}
	if w.Len() != 4 {
		t.Fatalf("ring length = %d", w.Len())
	}
	if w.Dropped() != 6 {
		t.Fatalf("dropped = %d", w.Dropped())
	}
	// Oldest-first iteration must yield times 6,7,8,9.
	var times []sim.Time
	w.orderedEvents(func(e Event) { times = append(times, e.Time) })
	for i, want := range []sim.Time{6, 7, 8, 9} {
		if times[i] != want {
			t.Fatalf("ordered times = %v", times)
		}
	}
}

func TestChromeWriterChromeOutput(t *testing.T) {
	w := NewChromeWriter(64)
	w.Event(Event{Kind: KindRunBegin, Nodelet: 2, Target: -1})
	w.Event(Event{Kind: KindMigrate, Nodelet: 0, Target: 1, Addr: 7,
		Time: 0, End: sim.Microsecond})
	w.Event(Event{Kind: KindLoad, Nodelet: 1, Target: -1, Time: sim.Microsecond, End: sim.Microsecond + 5})
	w.Sample(Sample{Time: sim.Microsecond, Nodelet: 0, ContextsUsed: 1})
	if w.Runs() != 1 {
		t.Fatalf("runs = %d", w.Runs())
	}

	var b strings.Builder
	if err := w.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	info, err := ValidateChrome(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("self-produced chrome trace invalid: %v\n%s", err, b.String())
	}
	if info.Migrations != 1 {
		t.Fatalf("migrations in trace = %d", info.Migrations)
	}
	if info.Counters != 2 { // contexts + backlog tracks
		t.Fatalf("counter records = %d", info.Counters)
	}
	if info.Metadata == 0 {
		t.Fatal("no metadata records (process/thread names)")
	}
	if !strings.Contains(b.String(), "nodelet 1") {
		t.Fatal("missing thread_name metadata")
	}
}

func TestChromeWriterJSONLOutput(t *testing.T) {
	w := NewChromeWriter(64)
	w.Event(Event{Kind: KindMigrate, Nodelet: 0, Target: 5, Addr: 99, End: 10})
	w.Event(Event{Kind: KindThreadStart, Nodelet: 3, Target: -1})
	w.Sample(Sample{Nodelet: 2, ContextsUsed: 4, ContextWaiters: 1, ChannelBacklog: 100})
	var b strings.Builder
	if err := w.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	info, err := ValidateJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("self-produced JSONL invalid: %v\n%s", err, b.String())
	}
	if info.Events != 2 || info.Counters != 1 || info.Migrations != 1 {
		t.Fatalf("summary %+v", info)
	}
}

// Regression: sample-ring overwrites were counted (smDrop) but never exposed
// — Dropped() only reported event drops, so a trace whose counter tracks
// silently started mid-run looked complete. Both drop counts must now
// surface through the writer, both formats, and both validators.
func TestChromeWriterSampleDropsSurfaced(t *testing.T) {
	w := NewChromeWriter(8) // sample ring: 2 entries
	w.Event(Event{Kind: KindLoad, Nodelet: 0, Target: -1})
	for i := 0; i < 5; i++ {
		w.Sample(Sample{Time: sim.Time(i), Nodelet: 0})
	}
	if w.Dropped() != 0 {
		t.Fatalf("event drops = %d, want 0", w.Dropped())
	}
	if w.DroppedSamples() != 3 {
		t.Fatalf("sample drops = %d, want 3", w.DroppedSamples())
	}

	var jl strings.Builder
	if err := w.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	info, err := ValidateJSONL(strings.NewReader(jl.String()))
	if err != nil {
		t.Fatalf("JSONL with drops record invalid: %v\n%s", err, jl.String())
	}
	if info.DroppedSamples != 3 || info.DroppedEvents != 0 || info.Complete() {
		t.Fatalf("JSONL drop summary %+v", info)
	}

	var ch strings.Builder
	if err := w.WriteChrome(&ch); err != nil {
		t.Fatal(err)
	}
	info, err = ValidateChrome(strings.NewReader(ch.String()))
	if err != nil {
		t.Fatalf("chrome trace with drop metadata invalid: %v", err)
	}
	if info.DroppedSamples != 3 || info.Complete() {
		t.Fatalf("chrome drop summary %+v", info)
	}
}

// A writer with no drops must keep both formats byte-identical to the
// pre-drop-record schema: no "drops" line, no ring_dropped_* metadata.
func TestCompleteTraceCarriesNoDropRecords(t *testing.T) {
	w := NewChromeWriter(64)
	w.Event(Event{Kind: KindLoad, Nodelet: 0, Target: -1})
	var jl, ch strings.Builder
	if err := w.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChrome(&ch); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(jl.String(), "drops") || strings.Contains(ch.String(), "ring_dropped") {
		t.Fatal("complete trace carries drop records")
	}
	info, err := ValidateJSONL(strings.NewReader(jl.String()))
	if err != nil || !info.Complete() {
		t.Fatalf("complete trace reported incomplete: %+v, %v", info, err)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	if _, err := ValidateJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage JSONL accepted")
	}
	if _, err := ValidateJSONL(strings.NewReader(`{"t":0,"kind":"nope","nl":0}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ValidateJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty JSONL accepted")
	}
	if _, err := ValidateChrome(strings.NewReader("{}")); err == nil {
		t.Fatal("non-array chrome trace accepted")
	}
	if _, err := ValidateChrome(strings.NewReader(`[{"name":"x","ph":"?","ts":"0","pid":0,"tid":0}]`)); err == nil {
		t.Fatal("bad phase accepted")
	}
	if _, err := ValidateChrome(strings.NewReader(`[]`)); err == nil {
		t.Fatal("empty chrome trace accepted")
	}
}
