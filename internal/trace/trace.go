// Package trace is the observability layer of the reproduction: a pluggable
// Observer interface the machine model streams structured events into —
// thread spawn/start/end, migrations (source, destination, trigger address),
// memory operation issue/complete — plus periodic per-nodelet gauge samples
// (resident contexts, context waiters, channel and migration-engine
// backlog).
//
// The paper's entire argument rests on where threads migrate and when
// (Figs. 4-8 are all migration and bandwidth behaviour); end-of-run counters
// cannot show a migration storm or a saturated nodelet queue while it
// happens. An Observer can.
//
// Contract with the machine layer (the "zero-overhead" rules):
//
//   - When no observer is attached the emit path is a single nil check; the
//     hot path allocates nothing and performs no other work.
//   - An attached observer only *reads* model state. It never schedules
//     engine events, never touches a resource, and never advances time, so
//     simulated timing, counters, and figure metrics are bit-identical with
//     and without an observer. Gauge samples piggyback on traced operations
//     (the first operation at or after each interval boundary) for exactly
//     this reason — a sampler driven by its own engine events could outlive
//     the last thread and move the run's end time.
//
// Two sinks ship with the package: ChromeWriter, a ring-buffered writer
// whose output loads in Perfetto (chrome://tracing JSON) or streams as
// JSONL, and Aggregator, an in-memory reducer that derives per-nodelet
// time series (migrations/s, GB/s) usable by experiments.
package trace

import (
	"fmt"

	"emuchick/internal/memsys"
	"emuchick/internal/sim"
)

// Kind classifies one traced machine event.
type Kind int

const (
	// KindRunBegin marks System.Run starting; Nodelet holds the machine's
	// nodelet count.
	KindRunBegin Kind = iota
	// KindRunEnd marks the run draining; Time is the run's end time.
	KindRunEnd
	// KindSpawn is a parent issuing a spawn: Nodelet is the parent's
	// nodelet, Target the child's, End the child's dispatch time.
	KindSpawn
	// KindThreadStart marks a thread obtaining a context slot and starting
	// to run; the gap from its KindSpawn shows slot pressure.
	KindThreadStart
	// KindThreadEnd marks a thread finishing (after its implicit sync) —
	// the join side of the spawn tree.
	KindThreadEnd
	// KindMigrate is a thread context moving between nodelets: Nodelet is
	// the source, Target the destination, Addr the remote word that
	// triggered it (0 for an explicit MigrateTo), Time departure and End
	// arrival.
	KindMigrate
	// KindLoad is a local word read: Time issue, End load-to-use complete.
	KindLoad
	// KindStore is a local word write.
	KindStore
	// KindRemoteStore is a posted store: Nodelet the sender, Target the
	// word's home nodelet, End the delivery at the home channel.
	KindRemoteStore
	// KindAtomic is a memory-side atomic served by the word's home
	// nodelet (Target); blocking or posted.
	KindAtomic
	// KindService is an OS call forwarded to a node's stationary core.
	KindService
	// KindFaultStall is one backoff wait of a thread whose migration found
	// the engine stalled or the fabric link down (fault injection): Nodelet
	// is where the thread is stuck, Target the migration's destination,
	// Time the retry and End when the thread polls again. Consecutive
	// stall events for one migration render the stall window in Perfetto.
	KindFaultStall
	numKinds
)

// String names the kind in the stable lowercase vocabulary the JSONL schema
// uses.
func (k Kind) String() string {
	switch k {
	case KindRunBegin:
		return "run_begin"
	case KindRunEnd:
		return "run_end"
	case KindSpawn:
		return "spawn"
	case KindThreadStart:
		return "thread_start"
	case KindThreadEnd:
		return "thread_end"
	case KindMigrate:
		return "migrate"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindRemoteStore:
		return "remote_store"
	case KindAtomic:
		return "atomic"
	case KindService:
		return "service"
	case KindFaultStall:
		return "fault_stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// HasAddr reports whether events of this kind carry a meaningful address.
func (k Kind) HasAddr() bool {
	switch k {
	case KindLoad, KindStore, KindRemoteStore, KindAtomic, KindMigrate:
		return true
	}
	return false
}

// Event is one machine operation as observed by a tracer. Time is when the
// operation issued and End when it completed (End == Time for instantaneous
// markers); the difference is queueing plus service plus latency, so a
// saturated channel or migration engine is visible as stretching events.
type Event struct {
	Time    sim.Time
	End     sim.Time
	Kind    Kind
	Nodelet int         // where the issuing thread resides (see per-kind docs)
	Target  int         // destination nodelet for remote kinds; -1 otherwise
	Addr    memsys.Addr // the word involved, when Kind.HasAddr()
}

// Duration is the event's issue-to-complete span.
func (e Event) Duration() sim.Time { return e.End - e.Time }

// String renders the event as one human-readable trace line.
func (e Event) String() string {
	if e.Target >= 0 {
		return fmt.Sprintf("%12v %-12s nl%d -> nl%d %v", e.Time, e.Kind, e.Nodelet, e.Target, e.Addr)
	}
	return fmt.Sprintf("%12v %-12s nl%d %v", e.Time, e.Kind, e.Nodelet, e.Addr)
}

// Sample is one periodic gauge reading for one nodelet: the instantaneous
// queue depths the end-of-run counters cannot show.
type Sample struct {
	Time    sim.Time
	Nodelet int
	// ContextsUsed is the number of resident thread contexts (the
	// hardware run queue of the nodelet's Gossamer cores).
	ContextsUsed int
	// ContextWaiters is how many threads (inbound migrations or fresh
	// spawns) are blocked waiting for a context slot.
	ContextWaiters int
	// ChannelBacklog is the service time already booked ahead of a new
	// arrival at the nodelet's NCDRAM channel — its queue depth in time.
	ChannelBacklog sim.Time
	// MigrationBacklog is the backlog at the owning node's migration
	// engine (shared by the node's nodelets).
	MigrationBacklog sim.Time
}

// Observer receives the event stream of one or more runs. Implementations
// must not touch the simulation (see the package contract); they are called
// synchronously from the engine's single-threaded context, so they need no
// locking but must be cheap.
type Observer interface {
	// Event delivers one discrete machine event, in non-decreasing Time
	// order within a run.
	Event(Event)
	// Sample delivers one per-nodelet gauge reading; the machine emits a
	// burst of one Sample per nodelet at each sampling boundary.
	Sample(Sample)
}

// FuncObserver adapts a pair of functions to the Observer interface; either
// may be nil.
type FuncObserver struct {
	OnEvent  func(Event)
	OnSample func(Sample)
}

// Event implements Observer.
func (f FuncObserver) Event(e Event) {
	if f.OnEvent != nil {
		f.OnEvent(e)
	}
}

// Sample implements Observer.
func (f FuncObserver) Sample(s Sample) {
	if f.OnSample != nil {
		f.OnSample(s)
	}
}

// tee fans the stream out to several observers in order.
type tee []Observer

func (t tee) Event(e Event) {
	for _, o := range t {
		o.Event(e)
	}
}

func (t tee) Sample(s Sample) {
	for _, o := range t {
		o.Sample(s)
	}
}

// Tee returns an Observer that forwards every event and sample to each of
// obs in order. Nil entries are dropped; a single survivor is returned
// unwrapped.
func Tee(obs ...Observer) Observer {
	var out tee
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
