package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"emuchick/internal/sim"
)

// ChromeWriter is the file sink: a fixed-capacity ring buffer of events and
// samples that renders either as a Chrome-trace JSON array (loadable in
// Perfetto or chrome://tracing) or as JSONL in the package's native schema.
//
// The ring keeps the most recent entries and counts what it dropped, so an
// arbitrarily long run traces in bounded memory; after the initial fill the
// observer path performs no allocation. Writing happens after the run via
// WriteChrome/WriteJSONL — never while the simulation executes.
type ChromeWriter struct {
	events   []Event
	evNext   int // overwrite cursor once the event ring is full
	evDrop   uint64
	samples  []Sample
	smNext   int
	smDrop   uint64
	nodelets int // high-water nodelet count, from KindRunBegin events
	runs     int // KindRunBegin events seen
}

// DefaultRingCapacity is the event-ring size NewChromeWriter uses for
// capacity <= 0 (the sample ring is sized at a quarter of it).
const DefaultRingCapacity = 1 << 18

// NewChromeWriter returns a writer whose ring holds up to capacity events;
// capacity <= 0 selects DefaultRingCapacity.
func NewChromeWriter(capacity int) *ChromeWriter {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &ChromeWriter{
		events:  make([]Event, 0, capacity),
		samples: make([]Sample, 0, max(capacity/4, 1)),
	}
}

// Event implements Observer: O(1), allocation-free once the ring is full.
func (w *ChromeWriter) Event(e Event) {
	if e.Kind == KindRunBegin {
		w.runs++
		if e.Nodelet > w.nodelets {
			w.nodelets = e.Nodelet
		}
	}
	if len(w.events) < cap(w.events) {
		w.events = append(w.events, e)
		return
	}
	w.events[w.evNext] = e
	w.evNext++
	if w.evNext == len(w.events) {
		w.evNext = 0
	}
	w.evDrop++
}

// Sample implements Observer.
func (w *ChromeWriter) Sample(s Sample) {
	if len(w.samples) < cap(w.samples) {
		w.samples = append(w.samples, s)
		return
	}
	w.samples[w.smNext] = s
	w.smNext++
	if w.smNext == len(w.samples) {
		w.smNext = 0
	}
	w.smDrop++
}

// Len reports how many events the ring currently holds.
func (w *ChromeWriter) Len() int { return len(w.events) }

// Samples reports how many gauge samples the ring currently holds.
func (w *ChromeWriter) Samples() int { return len(w.samples) }

// Dropped reports how many events the ring overwrote (oldest-first).
func (w *ChromeWriter) Dropped() uint64 { return w.evDrop }

// DroppedSamples reports how many gauge samples the sample ring overwrote.
// The sample ring is a quarter of the event ring, so on long traced runs it
// overflows first; a trace whose counter tracks silently start mid-run is
// this number being non-zero.
func (w *ChromeWriter) DroppedSamples() uint64 { return w.smDrop }

// Runs reports how many System runs fed the writer.
func (w *ChromeWriter) Runs() int { return w.runs }

// ordered visits ring entries oldest-first.
func (w *ChromeWriter) orderedEvents(visit func(Event)) {
	for i := w.evNext; i < len(w.events); i++ {
		visit(w.events[i])
	}
	for i := 0; i < w.evNext; i++ {
		visit(w.events[i])
	}
}

func (w *ChromeWriter) orderedSamples(visit func(Sample)) {
	for i := w.smNext; i < len(w.samples); i++ {
		visit(w.samples[i])
	}
	for i := 0; i < w.smNext; i++ {
		visit(w.samples[i])
	}
}

// usec renders simulated time in the microseconds Chrome traces use,
// keeping sub-microsecond resolution as a decimal fraction.
func usec(t sim.Time) json.Number {
	return json.Number(strconv.FormatFloat(float64(t)/float64(sim.Microsecond), 'f', -1, 64))
}

// chromeEvent is one object of the Chrome trace JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   json.Number    `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the buffered trace as a Chrome-trace JSON array, one
// event object per line. Discrete operations become instant events on the
// issuing nodelet's track (duration and destination in args — instants
// render cleanly in Perfetto even when hundreds of threadlets overlap on
// one nodelet), and gauge samples become counter tracks.
func (w *ChromeWriter) WriteChrome(dst io.Writer) error {
	bw := bufio.NewWriter(dst)
	enc := json.NewEncoder(bw) // reused per event; Encode appends "\n"
	first := true
	emit := func(ev chromeEvent) {
		if first {
			bw.WriteString("[\n")
			first = false
		} else {
			bw.WriteString(",")
		}
		enc.Encode(ev)
	}

	emit(chromeEvent{Name: "process_name", Ph: "M", Ts: "0", Pid: 0,
		Args: map[string]any{"name": "emuchick"}})
	for nl := 0; nl < w.nodelets; nl++ {
		emit(chromeEvent{Name: "thread_name", Ph: "M", Ts: "0", Pid: 0, Tid: nl,
			Args: map[string]any{"name": fmt.Sprintf("nodelet %d", nl)}})
	}
	if w.evDrop > 0 {
		emit(chromeEvent{Name: "ring_dropped_events", Ph: "M", Ts: "0", Pid: 0,
			Args: map[string]any{"dropped": w.evDrop}})
	}
	if w.smDrop > 0 {
		emit(chromeEvent{Name: "ring_dropped_samples", Ph: "M", Ts: "0", Pid: 0,
			Args: map[string]any{"dropped": w.smDrop}})
	}

	w.orderedEvents(func(e Event) {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  chromeCategory(e.Kind),
			Ph:   "i",
			S:    "t",
			Ts:   usec(e.Time),
			Pid:  0,
			Tid:  e.Nodelet,
		}
		args := map[string]any{}
		if d := e.Duration(); d > 0 {
			args["dur_us"] = float64(d) / float64(sim.Microsecond)
		}
		if e.Target >= 0 {
			args["dst"] = e.Target
		}
		if e.Kind.HasAddr() && e.Addr != 0 {
			args["addr"] = fmt.Sprintf("0x%x", uint64(e.Addr))
		}
		if e.Kind == KindRunBegin {
			ce.Tid = 0
			args["nodelets"] = e.Nodelet
		}
		if len(args) > 0 {
			ce.Args = args
		}
		emit(ce)
	})

	w.orderedSamples(func(s Sample) {
		emit(chromeEvent{
			Name: fmt.Sprintf("nl%d contexts", s.Nodelet),
			Ph:   "C", Ts: usec(s.Time), Pid: 0, Tid: s.Nodelet,
			Args: map[string]any{"used": s.ContextsUsed, "waiting": s.ContextWaiters},
		})
		emit(chromeEvent{
			Name: fmt.Sprintf("nl%d backlog_us", s.Nodelet),
			Ph:   "C", Ts: usec(s.Time), Pid: 0, Tid: s.Nodelet,
			Args: map[string]any{
				"channel":   float64(s.ChannelBacklog) / float64(sim.Microsecond),
				"migration": float64(s.MigrationBacklog) / float64(sim.Microsecond),
			},
		})
	})

	if first {
		bw.WriteString("[\n")
	}
	bw.WriteString("]\n")
	return bw.Flush()
}

// chromeCategory groups kinds into the filterable categories Perfetto
// exposes.
func chromeCategory(k Kind) string {
	switch k {
	case KindMigrate:
		return "migration"
	case KindSpawn, KindThreadStart, KindThreadEnd:
		return "threads"
	case KindLoad, KindStore, KindRemoteStore, KindAtomic:
		return "memory"
	case KindFaultStall:
		return "fault"
	default:
		return "run"
	}
}

// jsonlEvent is the native JSONL schema: one object per line, "kind"
// discriminated. Gauge samples use kind "sample".
type jsonlEvent struct {
	T    int64  `json:"t"`             // issue time, ps
	End  int64  `json:"end,omitempty"` // completion time, ps
	Kind string `json:"kind"`
	Nl   int    `json:"nl"`
	Dst  *int   `json:"dst,omitempty"`
	Addr string `json:"addr,omitempty"`

	ContextsUsed   *int  `json:"contexts,omitempty"`
	ContextWaiters *int  `json:"waiting,omitempty"`
	ChanBacklog    int64 `json:"chan_backlog,omitempty"`
	MigBacklog     int64 `json:"mig_backlog,omitempty"`

	DroppedEvents  uint64 `json:"dropped_events,omitempty"`
	DroppedSamples uint64 `json:"dropped_samples,omitempty"`
}

// WriteJSONL renders the buffered trace in the native line-oriented schema:
// events first (time-ordered), then samples, then — only when either ring
// overwrote anything — one final "drops" record carrying both drop counts,
// so a truncated trace is distinguishable from a complete one.
func (w *ChromeWriter) WriteJSONL(dst io.Writer) error {
	bw := bufio.NewWriter(dst)
	enc := json.NewEncoder(bw)
	w.orderedEvents(func(e Event) {
		je := jsonlEvent{T: int64(e.Time), Kind: e.Kind.String(), Nl: e.Nodelet}
		if e.End != e.Time {
			je.End = int64(e.End)
		}
		if e.Target >= 0 {
			dst := e.Target
			je.Dst = &dst
		}
		if e.Kind.HasAddr() && e.Addr != 0 {
			je.Addr = fmt.Sprintf("0x%x", uint64(e.Addr))
		}
		enc.Encode(je)
	})
	w.orderedSamples(func(s Sample) {
		used, waiting := s.ContextsUsed, s.ContextWaiters
		enc.Encode(jsonlEvent{
			T: int64(s.Time), Kind: "sample", Nl: s.Nodelet,
			ContextsUsed: &used, ContextWaiters: &waiting,
			ChanBacklog: int64(s.ChannelBacklog), MigBacklog: int64(s.MigrationBacklog),
		})
	})
	if w.evDrop > 0 || w.smDrop > 0 {
		enc.Encode(jsonlEvent{
			Kind: "drops", DroppedEvents: w.evDrop, DroppedSamples: w.smDrop,
		})
	}
	return bw.Flush()
}
