package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TraceInfo summarizes a validated trace file.
type TraceInfo struct {
	Format     string // "chrome" or "jsonl"
	Events     int    // discrete events (chrome: ph "i"; jsonl: non-sample lines)
	Counters   int    // gauge records (chrome: ph "C"; jsonl: "sample" lines)
	Metadata   int    // chrome ph "M" records; jsonl "drops" lines
	Migrations int    // events whose kind/name is "migrate"
	// DroppedEvents and DroppedSamples are the writer's ring-overwrite
	// counts recorded in the trace (chrome: ring_dropped_* metadata; jsonl:
	// the trailing "drops" record). Zero for a complete trace.
	DroppedEvents  uint64
	DroppedSamples uint64
}

// Complete reports whether the trace recorded every event and sample the
// run emitted (neither ring overflowed).
func (i TraceInfo) Complete() bool { return i.DroppedEvents == 0 && i.DroppedSamples == 0 }

// validKinds is the closed JSONL vocabulary (plus the "sample" gauge record
// and the trailing "drops" accounting record).
var validKinds = func() map[string]bool {
	m := map[string]bool{"sample": true, "drops": true}
	for k := Kind(0); k < numKinds; k++ {
		m[k.String()] = true
	}
	return m
}()

// ValidateJSONL checks that every line of r is a well-formed native-schema
// record: valid JSON, a known "kind", a non-negative "nl", and a
// non-negative timestamp. It returns a summary or the first offending line.
func ValidateJSONL(r io.Reader) (TraceInfo, error) {
	info := TraceInfo{Format: "jsonl"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec struct {
			T              *int64 `json:"t"`
			Kind           string `json:"kind"`
			Nl             *int   `json:"nl"`
			DroppedEvents  uint64 `json:"dropped_events"`
			DroppedSamples uint64 `json:"dropped_samples"`
		}
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return info, fmt.Errorf("trace: line %d: %v", line, err)
		}
		if rec.T == nil || *rec.T < 0 {
			return info, fmt.Errorf("trace: line %d: missing or negative timestamp", line)
		}
		if !validKinds[rec.Kind] {
			return info, fmt.Errorf("trace: line %d: unknown kind %q", line, rec.Kind)
		}
		if rec.Kind == "drops" {
			info.Metadata++
			info.DroppedEvents += rec.DroppedEvents
			info.DroppedSamples += rec.DroppedSamples
			continue
		}
		if rec.Nl == nil || *rec.Nl < 0 {
			return info, fmt.Errorf("trace: line %d: missing nodelet", line)
		}
		if rec.Kind == "sample" {
			info.Counters++
		} else {
			info.Events++
			if rec.Kind == "migrate" {
				info.Migrations++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return info, err
	}
	if info.Events == 0 {
		return info, fmt.Errorf("trace: no events in JSONL trace")
	}
	return info, nil
}

// ValidateChrome checks that r holds a Chrome-trace JSON array whose every
// event has the required fields for its phase (Perfetto's minimum), and
// returns a summary.
func ValidateChrome(r io.Reader) (TraceInfo, error) {
	info := TraceInfo{Format: "chrome"}
	var events []struct {
		Name string      `json:"name"`
		Ph   string      `json:"ph"`
		Ts   json.Number `json:"ts"`
		Pid  *int        `json:"pid"`
		Tid  *int        `json:"tid"`
		Args struct {
			Dropped uint64 `json:"dropped"`
		} `json:"args"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&events); err != nil {
		return info, fmt.Errorf("trace: not a JSON array of events: %v", err)
	}
	for i, e := range events {
		if e.Name == "" {
			return info, fmt.Errorf("trace: event %d: missing name", i)
		}
		switch e.Ph {
		case "M":
			info.Metadata++
			switch e.Name {
			case "ring_dropped_events":
				info.DroppedEvents += e.Args.Dropped
			case "ring_dropped_samples":
				info.DroppedSamples += e.Args.Dropped
			}
			continue
		case "i", "I", "C", "X", "B", "E", "b", "e":
		default:
			return info, fmt.Errorf("trace: event %d: unsupported phase %q", i, e.Ph)
		}
		if e.Ts == "" {
			return info, fmt.Errorf("trace: event %d (%s): missing ts", i, e.Name)
		}
		if ts, err := e.Ts.Float64(); err != nil || ts < 0 {
			return info, fmt.Errorf("trace: event %d (%s): bad ts %q", i, e.Name, e.Ts)
		}
		if e.Pid == nil || e.Tid == nil {
			return info, fmt.Errorf("trace: event %d (%s): missing pid/tid", i, e.Name)
		}
		if e.Ph == "C" {
			info.Counters++
		} else {
			info.Events++
			if e.Name == KindMigrate.String() {
				info.Migrations++
			}
		}
	}
	if info.Events == 0 {
		return info, fmt.Errorf("trace: no events in Chrome trace")
	}
	return info, nil
}
