package trace

import (
	"fmt"

	"emuchick/internal/metrics"
	"emuchick/internal/sim"
)

// Aggregator is the in-memory sink: it reduces the event stream to
// per-nodelet time series — migrations/s and GB/s per time bucket — plus
// gauge high-water marks, without retaining individual events. Experiments
// use it to ask questions like "which nodelet's migration rate spiked while
// bandwidth collapsed" that end-of-run counters cannot answer.
//
// An Aggregator may observe several consecutive runs (an experiment sweep
// attaches one observer to every cell); each run's simulated clock restarts
// at zero, so buckets accumulate run-aligned totals and Runs reports how
// many runs contributed.
type Aggregator struct {
	bucket sim.Time

	cells    [][]BucketCounts // [nodelet][bucket]
	nbuckets int              // high-water bucket count across nodelets
	runs     int

	peakWaiters  []int
	peakBacklog  []sim.Time
	peakContexts []int
}

// BucketCounts are the event totals of one (nodelet, time-bucket) cell.
type BucketCounts struct {
	MigrationsOut uint64 // departures from this nodelet (by departure time)
	MigrationsIn  uint64 // arrivals at this nodelet (by arrival time)
	Spawns        uint64 // threads created on this nodelet
	Words         uint64 // 8-byte words this nodelet's channel served
}

// DefaultBucket is the time-bucket width NewAggregator uses for width <= 0.
const DefaultBucket = sim.Microsecond

// NewAggregator returns an aggregator with the given bucket width
// (width <= 0 selects DefaultBucket).
func NewAggregator(width sim.Time) *Aggregator {
	if width <= 0 {
		width = DefaultBucket
	}
	return &Aggregator{bucket: width}
}

// Bucket reports the bucket width.
func (a *Aggregator) Bucket() sim.Time { return a.bucket }

// Runs reports how many System runs fed the aggregator.
func (a *Aggregator) Runs() int { return a.runs }

// Nodelets reports the number of nodelets seen.
func (a *Aggregator) Nodelets() int { return len(a.cells) }

// Buckets reports the number of time buckets of the longest-running nodelet.
func (a *Aggregator) Buckets() int { return a.nbuckets }

// cell returns the bucket cell for (nl, t), growing storage as needed.
func (a *Aggregator) cell(nl int, t sim.Time) *BucketCounts {
	for len(a.cells) <= nl {
		a.cells = append(a.cells, nil)
		a.peakWaiters = append(a.peakWaiters, 0)
		a.peakBacklog = append(a.peakBacklog, 0)
		a.peakContexts = append(a.peakContexts, 0)
	}
	b := int(t / a.bucket)
	row := a.cells[nl]
	for len(row) <= b {
		row = append(row, BucketCounts{})
	}
	a.cells[nl] = row
	if b+1 > a.nbuckets {
		a.nbuckets = b + 1
	}
	return &a.cells[nl][b]
}

// Event implements Observer.
func (a *Aggregator) Event(e Event) {
	switch e.Kind {
	case KindRunBegin:
		a.runs++
	case KindMigrate:
		a.cell(e.Nodelet, e.Time).MigrationsOut++
		a.cell(e.Target, e.End).MigrationsIn++
	case KindSpawn:
		a.cell(e.Target, e.End).Spawns++
	case KindLoad, KindStore:
		a.cell(e.Nodelet, e.Time).Words++
	case KindRemoteStore, KindAtomic:
		// Served by the word's home channel.
		home := e.Target
		if home < 0 {
			home = e.Nodelet
		}
		a.cell(home, e.Time).Words++
	}
}

// Sample implements Observer, retaining gauge high-water marks.
func (a *Aggregator) Sample(s Sample) {
	a.cell(s.Nodelet, s.Time) // ensure the nodelet row exists
	if s.ContextWaiters > a.peakWaiters[s.Nodelet] {
		a.peakWaiters[s.Nodelet] = s.ContextWaiters
	}
	if s.ContextsUsed > a.peakContexts[s.Nodelet] {
		a.peakContexts[s.Nodelet] = s.ContextsUsed
	}
	if s.ChannelBacklog > a.peakBacklog[s.Nodelet] {
		a.peakBacklog[s.Nodelet] = s.ChannelBacklog
	}
}

// Cells returns a copy of one nodelet's bucket row (empty for an unseen
// nodelet), padded to the aggregator's bucket high-water mark.
func (a *Aggregator) Cells(nl int) []BucketCounts {
	out := make([]BucketCounts, a.nbuckets)
	if nl >= 0 && nl < len(a.cells) {
		copy(out, a.cells[nl])
	}
	return out
}

// PeakContextWaiters reports the worst context-slot queue observed on nl.
func (a *Aggregator) PeakContextWaiters(nl int) int {
	if nl < 0 || nl >= len(a.peakWaiters) {
		return 0
	}
	return a.peakWaiters[nl]
}

// PeakChannelBacklog reports the worst channel backlog observed on nl.
func (a *Aggregator) PeakChannelBacklog(nl int) sim.Time {
	if nl < 0 || nl >= len(a.peakBacklog) {
		return 0
	}
	return a.peakBacklog[nl]
}

// TotalMigrations sums departures across nodelets and buckets.
func (a *Aggregator) TotalMigrations() uint64 {
	var total uint64
	for _, row := range a.cells {
		for _, c := range row {
			total += c.MigrationsOut
		}
	}
	return total
}

// TotalWords sums channel word traffic across nodelets and buckets.
func (a *Aggregator) TotalWords() uint64 {
	var total uint64
	for _, row := range a.cells {
		for _, c := range row {
			total += c.Words
		}
	}
	return total
}

// PeakMigrationsPerSec reports the machine-wide migration rate of the
// busiest bucket.
func (a *Aggregator) PeakMigrationsPerSec() float64 {
	best := uint64(0)
	for b := 0; b < a.nbuckets; b++ {
		var sum uint64
		for _, row := range a.cells {
			if b < len(row) {
				sum += row[b].MigrationsOut
			}
		}
		if sum > best {
			best = sum
		}
	}
	return float64(best) / a.bucket.Seconds()
}

// series builds one labelled curve per nodelet with value(cell) at each
// bucket, x = bucket start time in microseconds.
func (a *Aggregator) series(value func(BucketCounts) float64) []*metrics.Series {
	out := make([]*metrics.Series, len(a.cells))
	for nl, row := range a.cells {
		s := &metrics.Series{Name: fmt.Sprintf("nl%d", nl)}
		for b := 0; b < a.nbuckets; b++ {
			var c BucketCounts
			if b < len(row) {
				c = row[b]
			}
			x := float64(sim.Time(b)*a.bucket) / float64(sim.Microsecond)
			s.Add(x, metrics.Aggregate([]float64{value(c)}))
		}
		out[nl] = s
	}
	return out
}

// MigrationFigure renders the per-nodelet migration rate (departures/s)
// over time as a figure, directly comparable to the paper's migration
// discussions.
func (a *Aggregator) MigrationFigure() *metrics.Figure {
	sec := a.bucket.Seconds()
	return &metrics.Figure{
		ID:     "trace-migrations",
		Title:  "Per-nodelet migration rate over simulated time",
		XLabel: "time (us)",
		YLabel: "migrations/s",
		Series: a.series(func(c BucketCounts) float64 { return float64(c.MigrationsOut) / sec }),
	}
}

// BandwidthFigure renders per-nodelet channel bandwidth (GB/s of 8-byte
// word traffic) over time.
func (a *Aggregator) BandwidthFigure() *metrics.Figure {
	sec := a.bucket.Seconds()
	return &metrics.Figure{
		ID:     "trace-bandwidth",
		Title:  "Per-nodelet channel bandwidth over simulated time",
		XLabel: "time (us)",
		YLabel: "GB/s",
		Series: a.series(func(c BucketCounts) float64 { return float64(c.Words) * 8 / sec / 1e9 }),
	}
}

// Figures returns both derived figures.
func (a *Aggregator) Figures() []*metrics.Figure {
	return []*metrics.Figure{a.MigrationFigure(), a.BandwidthFigure()}
}
