// Package sim provides a small, deterministic discrete-event simulation
// engine used by every machine model in this repository.
//
// Time is measured in integer picoseconds, which is fine enough to mix the
// clock domains that appear in the Emu Chick characterization (150 MHz and
// 300 MHz Gossamer cores, DDR4-1600 and DDR4-2133 memory channels, 2.6 GHz
// Xeon cores) without accumulating rounding drift, while still allowing
// several hours of simulated time in an int64.
//
// The engine is strictly sequential: exactly one simulated process runs at a
// time, and events with equal timestamps fire in the order they were
// scheduled. Two runs with the same inputs produce byte-identical results.
package sim

import "fmt"

// Time is a point in (or duration of) simulated time, in picoseconds.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time with an adaptive unit, e.g. "1.500us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
	}
}

// Seconds converts a duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Interval returns the duration of one operation at the given per-second
// rate. Interval(9e6) is the service time of a migration engine that
// sustains nine million migrations per second.
func Interval(perSecond float64) Time {
	if perSecond <= 0 {
		panic("sim: Interval requires a positive rate")
	}
	return Time(float64(Second)/perSecond + 0.5)
}

// TransferTime returns how long a transfer of the given number of bytes
// occupies a link with the given bandwidth in bytes per second.
func TransferTime(bytes int64, bytesPerSecond float64) Time {
	if bytesPerSecond <= 0 {
		panic("sim: TransferTime requires positive bandwidth")
	}
	if bytes < 0 {
		panic("sim: TransferTime requires non-negative size")
	}
	return Time(float64(bytes)/bytesPerSecond*float64(Second) + 0.5)
}

// Clock converts between cycle counts of a fixed-frequency clock and Time.
type Clock struct {
	hz         int64
	psPerCycle Time
}

// NewClock returns a Clock for the given frequency in hertz. The period is
// rounded to the nearest picosecond (for 150 MHz the error is below 0.005%).
func NewClock(hz int64) Clock {
	if hz <= 0 {
		panic("sim: NewClock requires a positive frequency")
	}
	ps := (int64(Second) + hz/2) / hz
	if ps < 1 {
		ps = 1
	}
	return Clock{hz: hz, psPerCycle: Time(ps)}
}

// Hz reports the clock frequency the Clock was built with.
func (c Clock) Hz() int64 { return c.hz }

// Period reports the duration of one cycle.
func (c Clock) Period() Time { return c.psPerCycle }

// Cycles returns the duration of n cycles.
func (c Clock) Cycles(n int64) Time {
	if n < 0 {
		panic("sim: negative cycle count")
	}
	return Time(n) * c.psPerCycle
}
