package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

// The property suite drives a Semaphore with a random program of mixed
// Acquire / TryAcquire / Release operations and checks it against a plain
// model (an integer slot count plus a FIFO queue of waiter ids):
//
//   - slots are granted to blocked waiters in strict FIFO (arrival) order,
//   - Waiting() and InUse() match the model after every operation,
//   - no waiter is lost (every enqueued waiter is eventually granted once
//     the program's trailing releases drain the queue) and none is granted
//     twice,
//
// including across the head-cursor compaction path (head > 32) that long
// queues trigger.

// semProgram interprets ops against a semaphore of the given capacity
// inside one simulated run and returns an error describing the first
// violated invariant.
func semProgram(capacity int, ops []byte) error {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", capacity)

	// Model state, updated by the driver while it holds the token.
	var (
		modelInUse   int
		fifo         []int // ids of waiters currently blocked, arrival order
		granted      []int // ids in the order their Acquire returned
		enqueued     []int // ids in the order their Acquire blocked
		next         int   // next waiter id
		holders      int   // granted-but-unreleased slots owned by the driver
		invariantErr error
	)
	check := func(format string, args ...any) {
		if invariantErr == nil {
			invariantErr = fmt.Errorf(format, args...)
		}
	}
	audit := func(when string) {
		if got, want := sem.Waiting(), len(fifo); got != want {
			check("%s: Waiting() = %d, model %d", when, got, want)
		}
		if got, want := sem.InUse(), modelInUse; got != want {
			check("%s: InUse() = %d, model %d", when, got, want)
		}
	}

	e.Go("driver", func(p *Proc) {
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // spawn a waiter that acquires, holds briefly, releases
				id := next
				next++
				wouldBlock := modelInUse >= capacity
				if wouldBlock {
					fifo = append(fifo, id)
					enqueued = append(enqueued, id)
				} else {
					modelInUse++
				}
				e.Go("waiter", func(wp *Proc) {
					sem.Acquire(wp)
					granted = append(granted, id)
					wp.Delay(3)
					// The model: this release either transfers the slot to
					// the FIFO head or frees it.
					if len(fifo) > 0 {
						fifo = fifo[1:]
					} else {
						modelInUse--
					}
					sem.Release()
				})
				// Let the waiter run up to its park or grant so the audit
				// below sees a settled state.
				p.Delay(1)
			case 2: // TryAcquire from the driver
				got := sem.TryAcquire()
				want := modelInUse < capacity
				if got != want {
					check("TryAcquire = %v with inUse=%d cap=%d", got, modelInUse, capacity)
				}
				if got {
					modelInUse++
					holders++
				}
			case 3: // release a driver-held slot, if any
				if holders > 0 {
					holders--
					if len(fifo) > 0 {
						fifo = fifo[1:]
						// Slot transferred to a waiter; it will release in
						// its own time.
					} else {
						modelInUse--
					}
					sem.Release()
					p.Delay(1)
				}
			}
			audit("after op")
		}
		// Drain: release every slot the driver still holds so no waiter is
		// pinned forever; waiter-held slots release themselves.
		for holders > 0 {
			holders--
			if len(fifo) > 0 {
				fifo = fifo[1:]
			} else {
				modelInUse--
			}
			sem.Release()
			p.Delay(1)
		}
	})
	if err := e.Run(); err != nil {
		return fmt.Errorf("run failed: %w", err)
	}
	if invariantErr != nil {
		return invariantErr
	}

	// Every waiter that blocked was granted exactly once, in arrival order.
	grantedOf := make(map[int]int, len(granted))
	for _, id := range granted {
		grantedOf[id]++
	}
	for id := 0; id < next; id++ {
		if grantedOf[id] != 1 {
			return fmt.Errorf("waiter %d granted %d times", id, grantedOf[id])
		}
	}
	// The grant order restricted to waiters that blocked must equal their
	// enqueue order (non-blocking acquires are granted inline and may
	// interleave arbitrarily with them).
	blocked := make(map[int]bool, len(enqueued))
	for _, id := range enqueued {
		blocked[id] = true
	}
	var grantedBlocked []int
	for _, id := range granted {
		if blocked[id] {
			grantedBlocked = append(grantedBlocked, id)
		}
	}
	if len(grantedBlocked) != len(enqueued) {
		return fmt.Errorf("granted %d blocked waiters, enqueued %d", len(grantedBlocked), len(enqueued))
	}
	for i := range enqueued {
		if grantedBlocked[i] != enqueued[i] {
			return fmt.Errorf("FIFO violated at %d: granted %v, enqueued %v", i, grantedBlocked, enqueued)
		}
	}
	if sem.InUse() != 0 {
		return fmt.Errorf("slots leaked: InUse() = %d at end", sem.InUse())
	}
	if sem.Waiting() != 0 {
		return fmt.Errorf("waiters pinned: Waiting() = %d at end", sem.Waiting())
	}
	return nil
}

func TestSemaphoreQuickProperties(t *testing.T) {
	f := func(capRaw uint8, ops []byte) bool {
		capacity := int(capRaw%4) + 1
		if err := semProgram(capacity, ops); err != nil {
			t.Logf("capacity=%d ops=%v: %v", capacity, ops, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSemaphoreQuickLongQueues biases the generator toward long waiter
// queues (capacity 1, acquire-heavy programs) so the randomized suite
// reaches the head-cursor compaction branch too.
func TestSemaphoreQuickLongQueues(t *testing.T) {
	f := func(seed uint8) bool {
		ops := make([]byte, 120)
		for i := range ops {
			// Mostly acquires with a sprinkle of TryAcquire/Release drawn
			// from the seed; the trailing drain unblocks everyone.
			if (int(seed)+i)%11 == 0 {
				ops[i] = 2 + byte(i%2)
			}
		}
		if err := semProgram(1, ops); err != nil {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSemaphoreCompactionCrossing pins the head > 32 compaction branch
// deterministically: a capacity-1 semaphore accumulates 80 waiters, the
// queue drains past the compaction threshold, 40 more arrive (appending to
// a compacted slice), and every waiter must still be granted exactly once
// in arrival order.
func TestSemaphoreCompactionCrossing(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", 1)
	var order []int
	spawn := func(id int, at, hold Time) {
		e.GoAt(at, "w", func(p *Proc) {
			sem.Acquire(p)
			order = append(order, id)
			p.Delay(hold)
			sem.Release()
		})
	}
	// Waiter 0 takes the slot at t=0 and holds it until t=200, so waiters
	// 1..79 all queue up (len = 79, head = 0) before any grant happens.
	spawn(0, 0, 200)
	for i := 1; i < 80; i++ {
		spawn(i, Time(i), 1)
	}
	// The release cascade from t=200 grants one waiter per tick; the head
	// cursor crosses the compaction threshold (head > 32 with head*2 >=
	// len) around t=240 with the queue still half full. The second wave
	// lands right after that, appending to the compacted slice while the
	// drain continues.
	for i := 80; i < 120; i++ {
		spawn(i, Time(160+i), 1)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 120 {
		t.Fatalf("granted %d waiters, want 120", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("grant order[%d] = %d; FIFO violated: %v", i, id, order)
		}
	}
	if sem.Waiting() != 0 || sem.InUse() != 0 {
		t.Fatalf("end state: waiting=%d inUse=%d", sem.Waiting(), sem.InUse())
	}
}
