package sim

import "testing"

func TestSemaphoreBlocksAtCapacity(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", 2)
	var acquiredAt [3]Time
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			sem.Acquire(p)
			acquiredAt[i] = p.Now()
			p.Delay(100)
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if acquiredAt[0] != 0 || acquiredAt[1] != 0 {
		t.Fatalf("first two should acquire at 0: %v", acquiredAt)
	}
	if acquiredAt[2] != 100 {
		t.Fatalf("third should acquire at 100, got %v", acquiredAt[2])
	}
	if sem.InUse() != 0 {
		t.Fatalf("InUse = %d after drain", sem.InUse())
	}
	if sem.MaxInUse() != 2 {
		t.Fatalf("MaxInUse = %d", sem.MaxInUse())
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", 1)
	var order []int
	e.Go("holder", func(p *Proc) {
		sem.Acquire(p)
		p.Delay(10)
		sem.Release()
	})
	for i := 0; i < 5; i++ {
		i := i
		e.GoAt(Time(i+1), "w", func(p *Proc) {
			sem.Acquire(p)
			order = append(order, i)
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("wakeup order = %v", order)
		}
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", 1)
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire on empty failed")
	}
	if sem.TryAcquire() {
		t.Fatal("TryAcquire at capacity succeeded")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestSemaphoreReleaseBelowZeroPanics(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release below zero did not panic")
		}
	}()
	sem.Release()
}

func TestJoinWaitsForAll(t *testing.T) {
	e := NewEngine()
	j := NewJoin(0)
	var doneAt Time
	e.Go("parent", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			d := Time(i * 10)
			j.Add(1)
			e.Go("child", func(c *Proc) {
				c.Delay(d)
				j.Done()
			})
		}
		j.Wait(p)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 30 {
		t.Fatalf("sync completed at %v, want 30", doneAt)
	}
}

func TestJoinAlreadyZero(t *testing.T) {
	e := NewEngine()
	var ran bool
	e.Go("p", func(p *Proc) {
		j := NewJoin(0)
		j.Wait(p) // must not block
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("Wait on zero join blocked")
	}
}

func TestJoinDoneBeforeWait(t *testing.T) {
	e := NewEngine()
	j := NewJoin(1)
	var doneAt Time
	e.Go("child", func(c *Proc) {
		c.Delay(5)
		j.Done()
	})
	e.Go("parent", func(p *Proc) {
		p.Delay(50) // child finishes before we wait
		j.Wait(p)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 50 {
		t.Fatalf("doneAt = %v, want 50", doneAt)
	}
}

func TestSemaphoreAccessors(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s", 3)
	if sem.Capacity() != 3 || sem.Waiting() != 0 {
		t.Fatal("fresh semaphore accessors wrong")
	}
	e.Go("holder", func(p *Proc) {
		sem.Acquire(p)
		p.Delay(100)
		sem.Release()
	})
	waiting := -1
	e.GoAt(10, "probe", func(p *Proc) {
		// The holder has 1 of 3 slots; taking two fills the semaphore,
		// so the third Acquire blocks until the holder releases at t=100.
		sem.Acquire(p)
		sem.Acquire(p)
		sem.Acquire(p)
		waiting = 0
		sem.Release()
		sem.Release()
		sem.Release()
	})
	e.GoAt(20, "observer", func(p *Proc) {
		if sem.Waiting() != 1 {
			t.Errorf("Waiting = %d at t=20", sem.Waiting())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waiting != 0 {
		t.Fatal("probe never proceeded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-capacity semaphore did not panic")
			}
		}()
		NewSemaphore(e, "bad", 0)
	}()
}

func TestJoinAccessors(t *testing.T) {
	j := NewJoin(2)
	if j.Pending() != 2 {
		t.Fatalf("Pending = %d", j.Pending())
	}
	j.Done()
	if j.Pending() != 1 {
		t.Fatalf("Pending = %d", j.Pending())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Add did not panic")
			}
		}()
		j.Add(-1)
	}()
}

func TestResourceName(t *testing.T) {
	if NewResource("ch").Name() != "ch" {
		t.Fatal("resource name lost")
	}
}

func TestJoinPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewJoin(-1) did not panic")
			}
		}()
		NewJoin(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Done below zero did not panic")
			}
		}()
		NewJoin(0).Done()
	}()
}
