package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events fire in (at, seq) order so that ties
// resolve in scheduling order and runs are deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a sequential discrete-event simulator. It is not safe for
// concurrent use; all interaction must happen from the goroutine that calls
// Run, or from a Proc while that Proc holds the control token.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	// parked is the control-token channel between the engine loop and the
	// currently running Proc. It is unbuffered: a send is a direct handoff.
	parked chan struct{}
	cur    *Proc

	procs     int    // live (spawned, not finished) procs
	fired     uint64 // events dispatched so far
	MaxEvents uint64 // safety valve; 0 means no limit
	MaxTime   Time   // safety valve; 0 means no limit
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched.
func (e *Engine) Fired() uint64 { return e.fired }

// LiveProcs reports the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }

// Schedule registers fn to run at absolute time t. Scheduling in the past is
// a bug in the caller and panics.
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After registers fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.Schedule(e.now+d, fn)
}

// Run dispatches events in order until none remain. It returns an error if a
// safety valve trips or if processes are still live when the event queue
// drains (a deadlock: some Proc parked forever).
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		if e.MaxEvents > 0 && e.fired >= e.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now)
		}
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		if e.MaxTime > 0 && ev.at > e.MaxTime {
			return fmt.Errorf("sim: exceeded MaxTime=%v", e.MaxTime)
		}
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	if e.procs > 0 {
		return fmt.Errorf("sim: deadlock: %d process(es) parked with no pending events at t=%v", e.procs, e.now)
	}
	return nil
}
