package sim

import "fmt"

// event is a scheduled engine action: a plain callback (fn set), the
// dispatch of a parked Proc (proc set), or the launch of a freshly spawned
// Proc (both set, fn == launchMark; firing it schedules the proc's first
// dispatch at the fire time). Dispatch and launch targets are kept in
// dedicated fields rather than closures so the context-switch and spawn hot
// paths (WaitUntil, Unpark, SpawnAt, LaunchAt) allocate nothing per event.
// Events fire in (at, seq) order so that ties resolve in scheduling order
// and runs are deterministic.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

// before reports whether a fires ahead of b in the engine's (at, seq)
// total order.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// numLanes bounds how many distinct timestamps can be lane-buffered at
// once. Machine models rarely have more than a few deadline classes in
// flight (current tick, plus a handful of operation latencies), so a small
// lane count absorbs almost all traffic while keeping the push/pop scans
// tiny. An interleaved four-vs-eight A/B across the bandwidth and chase
// figures measured no difference beyond run-to-run noise, so the count
// stays at four; it is a pure perf knob — the k-way merge keeps dispatch
// order bit-identical at any lane count.
const numLanes = 4

// lane is a FIFO of events that all share the timestamp at. head indexes
// the next entry to fire; the lane is empty (and reusable for another
// timestamp) when head catches up with the slice.
type lane struct {
	at   Time
	evs  []event
	head int
}

func (ln *lane) empty() bool { return ln.head == len(ln.evs) }

// Engine is a sequential discrete-event simulator. It is not safe for
// concurrent use; all interaction must happen from the goroutine that calls
// Run, or from a Proc while that Proc holds the control token.
//
// The pending-event queue has two parts:
//
//   - heap: a typed 4-ary min-heap ordered by (at, seq). A 4-ary layout
//     halves the tree depth of a binary heap and keeps each sibling scan
//     inside one or two cache lines, and holding event values directly
//     (instead of container/heap's interface{} boxing) makes push/pop
//     allocation-free.
//   - lanes: a small set of FIFOs, each holding events for one exact
//     timestamp. Simulated machines schedule in bursts of identical
//     deadlines — every Go/Unpark/dispatch lands at now, and symmetric
//     nodelets finish same-cost operations at the same future tick — so
//     most pushes join a lane in O(1) and never touch the heap. A lane
//     whose events have all fired is re-keyed to the next new timestamp
//     that needs one; only pushes that find all lanes busy with other
//     times fall through to the heap.
//
// Each lane is appended in scheduling order and holds a single timestamp,
// so its FIFO order is exactly the (at, seq) order among its entries; the
// heap is (at, seq)-ordered by construction. next() takes the smallest
// (at, seq) front across the heap and every lane — a k-way merge of sorted
// sequences over a strict total order (seq is unique) — so the dispatch
// order is bit-identical to a single heap's regardless of which queue an
// event landed in.
type Engine struct {
	now Time
	seq uint64

	heap    []event
	lanes   [numLanes]lane
	pending int // events scheduled but not yet fired, across heap and lanes

	// done carries the run's outcome from whichever goroutine drains the
	// queue (or trips a valve) back to the Run caller. Buffered so the
	// sender never blocks.
	done chan error

	procs int     // live (spawned, not finished) procs
	all   []*Proc // every registered Proc, for failure dumps (see register)

	// free holds finished Procs whose goroutines are parked in procLoop,
	// ready to be recycled by the next spawn; stop, captured by each pooled
	// goroutine at creation, is closed when Run ends so the pool drains.
	// freeCont is the separate pool for continuation procs, which have no
	// goroutine or channel to keep alive.
	free     []*Proc
	freeCont []*Proc
	stop     chan struct{}

	// aborted is set during failed-run teardown while live goroutine procs
	// are being released (see abortParked); each one acknowledges on
	// abortAck as its host goroutine unwinds.
	aborted  bool
	abortAck chan struct{}

	fired     uint64 // events dispatched so far
	MaxEvents uint64 // safety valve; 0 means no limit
	MaxTime   Time   // safety valve; 0 means no limit

	// Interrupt, when non-nil, is polled every 1024 dispatched events; a
	// non-nil return aborts the run with that error. Callers point it at a
	// context.Context's Err to make runs cancellable without per-event cost.
	Interrupt func() error
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// NewEngineSized is NewEngine with the event queues pre-sized for roughly
// hint concurrently pending events (machine models pass their hardware
// thread-context capacity), avoiding growth reallocations during the run.
func NewEngineSized(hint int) *Engine {
	e := NewEngine()
	if hint > 0 {
		e.heap = make([]event, 0, hint)
		for i := range e.lanes {
			e.lanes[i].evs = make([]event, 0, hint)
		}
	}
	return e
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched.
func (e *Engine) Fired() uint64 { return e.fired }

// LiveProcs reports the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }

// Pending reports the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int { return e.pending }

// Schedule registers fn to run at absolute time t. Scheduling in the past is
// a bug in the caller and panics.
func (e *Engine) Schedule(t Time, fn func()) {
	e.schedule(t, event{fn: fn})
}

// scheduleProc registers the dispatch of p at absolute time t without
// allocating a closure. The wake-up time is mirrored onto the Proc so a
// failure dump can distinguish "parked with a pending wake" from "parked
// forever".
//
//emu:hotpath every park/wake schedules through here
func (e *Engine) scheduleProc(t Time, p *Proc) {
	p.wakeAt = t
	p.hasWake = true
	e.schedule(t, event{proc: p})
}

//emu:hotpath lane-or-heap insert, allocation-free in steady state
func (e *Engine) schedule(t Time, ev event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.pending++
	ev.at = t
	ev.seq = e.seq
	// Join the lane already buffering this timestamp, or claim a drained
	// one for it; only a miss on both falls through to the heap.
	free := -1
	for i := range e.lanes {
		ln := &e.lanes[i]
		if ln.empty() {
			if free < 0 {
				free = i
			}
			continue
		}
		if ln.at == t {
			ln.evs = append(ln.evs, ev)
			return
		}
	}
	if free >= 0 {
		ln := &e.lanes[free]
		ln.at = t
		ln.evs = append(ln.evs[:0], ev)
		ln.head = 0
		return
	}
	e.pushHeap(ev)
}

// After registers fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.Schedule(e.now+d, fn)
}

// pushHeap inserts ev into the 4-ary min-heap.
//
//emu:hotpath
func (e *Engine) pushHeap(ev event) {
	e.heap = append(e.heap, ev)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.heap = h
}

// popHeap removes and returns the minimum event of the 4-ary min-heap.
//
//emu:hotpath
func (e *Engine) popHeap() event {
	// Vacated slots are not cleared: everything an event references (fn
	// closures, Procs) is reachable for the whole run anyway, and the
	// engine is dropped as a unit when the run ends.
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	e.heap = h
	if n > 0 {
		// Bottom-up sift (Wegener): walk the hole from the root to a leaf
		// along the min-child path, then drop the detached last element in
		// and bubble it up. The displaced leaf usually belongs near the
		// bottom, so this saves the per-level comparison against it that a
		// classic top-down sift would spend on the way.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if h[j].before(h[m]) {
					m = j
				}
			}
			h[i] = h[m]
			i = m
		}
		for i > 0 {
			p := (i - 1) >> 2
			if !last.before(h[p]) {
				break
			}
			h[i] = h[p]
			i = p
		}
		h[i] = last
	}
	return top
}

// next removes and returns the globally earliest pending event: the
// smallest (at, seq) front across the heap and every lane.
//
//emu:hotpath k-way merge front, one pass over four lanes
func (e *Engine) next() event {
	e.pending--
	best := -1 // lane index holding the current minimum; -1 means the heap
	var bestEv event
	have := len(e.heap) > 0
	if have {
		bestEv = e.heap[0]
	}
	for i := range e.lanes {
		ln := &e.lanes[i]
		if ln.empty() {
			continue
		}
		if front := ln.evs[ln.head]; !have || front.before(bestEv) {
			bestEv = front
			have = true
			best = i
		}
	}
	if best < 0 {
		return e.popHeap()
	}
	ln := &e.lanes[best]
	ln.head++
	if ln.empty() {
		ln.evs = ln.evs[:0]
		ln.head = 0
	}
	return bestEv
}

// fastForward is the uncontended-wait fast path behind Proc.WaitUntil: the
// calling Proc holds the control token and wants to sleep until t. If every
// pending event fires strictly after t, the dispatch event WaitUntil would
// schedule — claiming the next seq, at time t — would by construction be
// the very next event advance pops (any pending event at exactly t holds a
// smaller seq and would fire first, hence the strict comparison). In that
// case the schedule/pop round trip and the token hand-back are pure
// overhead: the engine instead claims the seq and the firing directly and
// hops the clock to t, leaving (now, seq, fired) — and therefore every
// subsequent event ordering — bit-identical to the slow path. Runs with a
// safety valve or interrupt hook in a state the event loop would act on
// decline the fast path so failure behaviour is byte-for-byte unchanged.
//
//emu:hotpath the no-contention wait: a clock hop instead of a queue round trip
func (e *Engine) fastForward(t Time) bool {
	if e.MaxEvents > 0 && e.fired >= e.MaxEvents {
		return false
	}
	if e.MaxTime > 0 && t > e.MaxTime {
		return false
	}
	if e.Interrupt != nil && e.fired&1023 == 0 {
		return false
	}
	if len(e.heap) > 0 && e.heap[0].at <= t {
		return false
	}
	for i := range e.lanes {
		ln := &e.lanes[i]
		if ln.head < len(ln.evs) && ln.at <= t {
			return false
		}
	}
	e.seq++
	e.fired++
	e.now = t
	return true
}

// Run dispatches events in order until none remain. It returns an error if a
// safety valve trips or if processes are still live when the event queue
// drains (a deadlock: some Proc parked forever).
//
// The event loop itself is not pinned to this goroutine: it migrates with
// the control token. When a Proc yields, its goroutine runs the loop until
// the token moves on — so a proc-to-proc context switch is one direct
// channel handoff, and a Proc whose own wake-up is the next event continues
// without any handoff at all.
// Run may be called again on the same engine after it returns: teardown
// leaves the engine in a clean reusable state whether the run succeeded or
// failed (the clock, seq counter, and fired count stay monotonic across
// runs — simulated time never rewinds).
func (e *Engine) Run() error {
	e.done = make(chan error, 1)
	e.advance(nil)
	err := <-e.done
	e.teardown(err != nil)
	return err
}

// teardown retires the proc pools after a run. After a failed run it first
// releases every proc still parked mid-body — historically those goroutines
// stayed blocked on their resume channels forever, a leak that accumulated
// in long-lived job servers as watchdog-killed, cancelled, and deadlocked
// runs piled up — and then clears the scheduling state (un-fired events,
// live-proc count, failure registry) the failure left behind, so reusing
// the engine cannot silently misbehave. Closing stop lets the freelisted
// goroutines, all parked in procLoop's select, exit.
func (e *Engine) teardown(failed bool) {
	if failed {
		e.abortParked()
		e.heap = e.heap[:0]
		for i := range e.lanes {
			ln := &e.lanes[i]
			ln.evs = ln.evs[:0]
			ln.head = 0
		}
		e.pending = 0
		e.procs = 0
	}
	if e.stop != nil {
		close(e.stop)
		e.stop = nil
	}
	e.free = nil
	e.freeCont = nil
	for i := range e.all {
		e.all[i].registered = false
		e.all[i] = nil
	}
	e.all = e.all[:0]
}

// abortParked wakes every goroutine proc still parked mid-body and unwinds
// it: the proc's next resume observes e.aborted and panics with an abort
// sentinel that procLoop recovers, acknowledging on abortAck before its
// goroutine exits. The unbuffered resume send doubles as the rendezvous — it
// completes only once the target goroutine has actually reached its receive,
// so a proc whose goroutine was still between "scheduled" and "parked"
// cannot be missed. Continuation procs have no goroutine to release; they
// are simply dropped with the rest of the engine state.
func (e *Engine) abortParked() {
	waking := 0
	for _, p := range e.all {
		if !p.done && p.resume != nil {
			waking++
		}
	}
	if waking == 0 {
		return
	}
	e.aborted = true
	e.abortAck = make(chan struct{}, waking)
	for _, p := range e.all {
		if !p.done && p.resume != nil {
			p.resume <- struct{}{}
		}
	}
	for i := 0; i < waking; i++ {
		<-e.abortAck
	}
	e.aborted = false
	e.abortAck = nil
}

// advance runs the event loop on the calling goroutine. self is the Proc
// the caller is running as (nil for the Run goroutine, or a just-finished
// Proc whose done flag is set). It returns true when the popped event
// re-dispatches self, in which case the caller simply keeps executing.
// Otherwise the token was handed to another Proc, or the run ended and its
// outcome was sent on e.done; either way the caller no longer holds the
// token and must block on its resume channel (a parked Proc) or return (the
// Run goroutine, a finished Proc).
//
//emu:hotpath the event loop itself; failure exits allocate via e.failure, which is fine — they end the run
func (e *Engine) advance(self *Proc) bool {
	for {
		if e.Pending() == 0 {
			if e.procs > 0 {
				e.done <- e.failure(FailDeadlock, nil)
			} else {
				e.done <- nil
			}
			return false
		}
		if e.MaxEvents > 0 && e.fired >= e.MaxEvents {
			e.done <- e.failure(FailMaxEvents, nil)
			return false
		}
		if e.Interrupt != nil && e.fired&1023 == 0 {
			if err := e.Interrupt(); err != nil {
				e.done <- e.failure(FailInterrupted, err)
				return false
			}
		}
		ev := e.next()
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		if e.MaxTime > 0 && ev.at > e.MaxTime {
			e.done <- e.failure(FailMaxTime, nil)
			return false
		}
		e.now = ev.at
		e.fired++
		if ev.proc == nil {
			ev.fn()
			continue
		}
		if ev.fn != nil {
			// Launch: schedule the new proc's first dispatch now, claiming
			// a fresh seq exactly as the closure-based deferred spawn did
			// when its Schedule closure fired.
			e.scheduleProc(e.now, ev.proc)
			continue
		}
		if ev.proc.done {
			panic("sim: dispatching finished proc " + ev.proc.name)
		}
		ev.proc.hasWake = false
		if s := ev.proc.stepper; s != nil {
			// Continuation dispatch: resume the state machine in place — a
			// method call, not a handoff. The token never leaves this
			// goroutine, so the loop just continues.
			s.StepProc(ev.proc)
			continue
		}
		if ev.proc == self {
			return true
		}
		ev.proc.resume <- struct{}{}
		return false
	}
}
