package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// A two-proc deadlock — each side parked on a different primitive — must be
// reported as a RunError that names both procs, their park sites, and the
// times they parked.
func TestRunErrorDeadlockNamesParkedProcs(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", 1)
	j := NewJoin(1) // never Done'd
	e.Go("holder", func(p *Proc) {
		sem.Acquire(p)
		p.Delay(3)
		j.Wait(p) // parks at t=3, forever
	})
	e.Go("blocked", func(p *Proc) {
		p.Delay(7)
		sem.Acquire(p) // parks at t=7, forever: holder never releases
	})
	err := e.Run()
	if err == nil {
		t.Fatal("deadlocked engine returned nil")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("deadlock error is not a *RunError: %T %v", err, err)
	}
	if re.Kind != FailDeadlock {
		t.Fatalf("Kind = %v, want FailDeadlock", re.Kind)
	}
	if len(re.Parked) != 2 {
		t.Fatalf("Parked has %d entries, want 2: %+v", len(re.Parked), re.Parked)
	}
	want := map[string]ParkedProc{
		"holder":  {Name: "holder", Site: "join", ParkedAt: 3},
		"blocked": {Name: "blocked", Site: "slots", ParkedAt: 7},
	}
	for _, p := range re.Parked {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected parked proc %+v", p)
		}
		if p.Site != w.Site || p.ParkedAt != w.ParkedAt {
			t.Fatalf("parked %s: got site=%q parkedAt=%v, want site=%q parkedAt=%v",
				p.Name, p.Site, p.ParkedAt, w.Site, w.ParkedAt)
		}
		if p.HasWake {
			t.Fatalf("deadlocked proc %s reports a pending wake at %v", p.Name, p.WakeAt)
		}
		delete(want, p.Name)
	}
	// The rendered message should be usable on its own: both names and both
	// sites inline.
	for _, frag := range []string{"deadlock", "holder@join", "blocked@slots", "t=3", "t=7"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error message %q missing %q", err.Error(), frag)
		}
	}
}

// A MaxEvents trip must report the fired-event count and the engine time it
// stopped at, plus the procs still in flight (with their pending wakes).
func TestRunErrorMaxEventsReportsFiredAndTime(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 100
	e.Go("looper", func(p *Proc) {
		for {
			p.Delay(2)
		}
	})
	err := e.Run()
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("MaxEvents error is not a *RunError: %T %v", err, err)
	}
	if re.Kind != FailMaxEvents {
		t.Fatalf("Kind = %v, want FailMaxEvents", re.Kind)
	}
	if re.Fired != 100 || re.MaxEvents != 100 {
		t.Fatalf("Fired=%d MaxEvents=%d, want 100/100", re.Fired, re.MaxEvents)
	}
	if re.Now != e.Now() {
		t.Fatalf("Now=%v, engine at %v", re.Now, e.Now())
	}
	if len(re.Parked) != 1 || re.Parked[0].Name != "looper" || !re.Parked[0].HasWake {
		t.Fatalf("expected looper parked with a pending wake, got %+v", re.Parked)
	}
	for _, frag := range []string{"MaxEvents=100", "100 events fired", "looper@wait"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error message %q missing %q", err.Error(), frag)
		}
	}
}

func TestRunErrorMaxTime(t *testing.T) {
	e := NewEngine()
	e.MaxTime = 50
	var tick func()
	tick = func() { e.After(10, tick) }
	e.Schedule(0, tick)
	var re *RunError
	if err := e.Run(); !errors.As(err, &re) || re.Kind != FailMaxTime {
		t.Fatalf("MaxTime trip: got %v, want RunError{FailMaxTime}", err)
	}
	if re.MaxTime != 50 {
		t.Fatalf("MaxTime field = %v, want 50", re.MaxTime)
	}
}

// An interrupted run must wrap the hook's error so errors.Is still matches
// context cancellation through the RunError, and must carry the parked dump
// so a watchdog kill is as diagnosable as a deadlock.
func TestRunErrorInterruptWrapsCause(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Interrupt = ctx.Err
	e.Go("worker", func(p *Proc) {
		for {
			p.Delay(1)
		}
	})
	err := e.Run()
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("interrupt error is not a *RunError: %T %v", err, err)
	}
	if re.Kind != FailInterrupted {
		t.Fatalf("Kind = %v, want FailInterrupted", re.Kind)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

// The registry compaction must not lose live procs or leak finished ones
// into the dump: spawn a long churn of short-lived procs, then deadlock with
// exactly two survivors.
func TestRunErrorDumpAfterProcChurn(t *testing.T) {
	e := NewEngine()
	e.Go("spawner", func(p *Proc) {
		for i := 0; i < 500; i++ {
			e.Go("ephemeral", func(c *Proc) { c.Delay(1) })
			p.Delay(2)
		}
		p.ParkReason("churn-done") // never woken
	})
	//lint:allow parksite asserting the bare-Park "park" fallback site below
	e.Go("lurker", func(p *Proc) { p.Park() })
	err := e.Run()
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailDeadlock {
		t.Fatalf("got %v, want deadlock RunError", err)
	}
	if len(re.Parked) != 2 {
		t.Fatalf("dump has %d procs after churn, want 2: %+v", len(re.Parked), re.Parked)
	}
	sites := map[string]string{}
	for _, p := range re.Parked {
		sites[p.Name] = p.Site
	}
	if sites["spawner"] != "churn-done" || sites["lurker"] != "park" {
		t.Fatalf("wrong survivors/sites: %v", sites)
	}
}
