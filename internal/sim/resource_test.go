package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceIdleStartsImmediately(t *testing.T) {
	r := NewResource("chan")
	start, done := r.Acquire(100, 10)
	if start != 100 || done != 110 {
		t.Fatalf("start=%v done=%v", start, done)
	}
	if r.FreeAt() != 110 {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
}

func TestResourceServiceScale(t *testing.T) {
	r := NewResource("chan")
	if r.ServiceScale() != 1 {
		t.Fatalf("initial scale = %v", r.ServiceScale())
	}
	r.SetServiceScale(2.5)
	start, done := r.Acquire(0, 10)
	if start != 0 || done != 25 {
		t.Fatalf("throttled op start=%v done=%v, want 0, 25", start, done)
	}
	// Restoring scale 1 restores the exact unthrottled arithmetic.
	r.SetServiceScale(1)
	start, done = r.Acquire(25, 10)
	if start != 25 || done != 35 {
		t.Fatalf("unthrottled op start=%v done=%v, want 25, 35", start, done)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scale < 1 did not panic")
		}
	}()
	r.SetServiceScale(0.5)
}

func TestResourceQueues(t *testing.T) {
	r := NewResource("chan")
	r.Acquire(0, 10)
	start, done := r.Acquire(0, 10) // arrives while busy
	if start != 10 || done != 20 {
		t.Fatalf("queued op start=%v done=%v", start, done)
	}
	if r.TotalWait() != 10 || r.MaxWait() != 10 {
		t.Fatalf("wait accounting: total=%v max=%v", r.TotalWait(), r.MaxWait())
	}
}

func TestResourceIdleGap(t *testing.T) {
	r := NewResource("chan")
	r.Acquire(0, 10)
	start, _ := r.Acquire(50, 10) // arrives after idle gap
	if start != 50 {
		t.Fatalf("start = %v, want 50", start)
	}
	if r.BusyTime() != 20 {
		t.Fatalf("busy = %v, want 20", r.BusyTime())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("chan")
	r.Acquire(0, 25)
	r.Acquire(0, 25)
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(10); u != 1 {
		t.Fatalf("utilization clamps to 1, got %v", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("utilization of empty window = %v", u)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("chan")
	r.Acquire(0, 10)
	r.Reset()
	if r.Ops() != 0 || r.BusyTime() != 0 || r.FreeAt() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative service time did not panic")
		}
	}()
	NewResource("chan").Acquire(0, -1)
}

// Property: AcquireRun(now, svc, k) leaves the resource in exactly the state
// k sequential Acquire(now, svc) calls would — same return values, same
// freeAt/busy/ops/waited/maxWait — for any prior schedule, arrival time,
// service time, run length, and service scale. This is the exact-equivalence
// contract the bulk-transfer call sites rely on.
func TestAcquireRunMatchesSequential(t *testing.T) {
	f := func(priorSteps, priorSvcs []uint8, gap, svc uint8, count uint8, scaleQ uint8) bool {
		runLen := int(count%16) + 1
		bulk := NewResource("bulk")
		seq := NewResource("seq")
		if scaleQ%4 != 0 {
			scale := 1 + float64(scaleQ)/64
			bulk.SetServiceScale(scale)
			seq.SetServiceScale(scale)
		}
		// Replay an arbitrary prior schedule on both resources.
		now := Time(0)
		n := len(priorSteps)
		if len(priorSvcs) < n {
			n = len(priorSvcs)
		}
		for i := 0; i < n; i++ {
			now += Time(priorSteps[i])
			bulk.Acquire(now, Time(priorSvcs[i]))
			seq.Acquire(now, Time(priorSvcs[i]))
		}
		now += Time(gap)
		bStart, bDone := bulk.AcquireRun(now, Time(svc), runLen)
		var sStart, sDone Time
		for i := 0; i < runLen; i++ {
			start, done := seq.Acquire(now, Time(svc))
			if i == 0 {
				sStart = start
			}
			sDone = done
		}
		return bStart == sStart && bDone == sDone &&
			bulk.FreeAt() == seq.FreeAt() &&
			bulk.BusyTime() == seq.BusyTime() &&
			bulk.Ops() == seq.Ops() &&
			bulk.TotalWait() == seq.TotalWait() &&
			bulk.MaxWait() == seq.MaxWait()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireRunSingleOpEqualsAcquire(t *testing.T) {
	a := NewResource("a")
	b := NewResource("b")
	aStart, aDone := a.AcquireRun(7, 5, 1)
	bStart, bDone := b.Acquire(7, 5)
	if aStart != bStart || aDone != bDone || a.TotalWait() != b.TotalWait() {
		t.Fatalf("run of 1: (%v,%v) vs Acquire (%v,%v)", aStart, aDone, bStart, bDone)
	}
}

func TestAcquireRunNonPositiveCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("count 0 did not panic")
		}
	}()
	NewResource("chan").AcquireRun(0, 1, 0)
}

// Property: for any arrival/service sequence, completions are monotone
// non-decreasing, no operation starts before it arrives, and total busy time
// equals the sum of service times.
func TestResourceInvariantsProperty(t *testing.T) {
	f := func(arrivalSteps, services []uint8) bool {
		r := NewResource("q")
		now := Time(0)
		var lastDone Time
		var sumSvc Time
		n := len(arrivalSteps)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			now += Time(arrivalSteps[i])
			svc := Time(services[i])
			start, done := r.Acquire(now, svc)
			if start < now || done != start+svc || done < lastDone {
				return false
			}
			lastDone = done
			sumSvc += svc
		}
		return r.BusyTime() == sumSvc && r.Ops() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
