package sim

// Proc is a simulated process: a goroutine whose execution is interleaved
// with the engine through a control token so that exactly one of (engine,
// some Proc) runs at any moment. While a Proc holds the token it may freely
// read and mutate engine-owned state (resources, counters, other model
// structures) without locks; when it performs a blocking operation it runs
// the engine's event loop itself until the token moves to the next runnable
// party (see Engine.advance) and is re-dispatched by a scheduled event.
//
// This is cooperative coroutine scheduling over goroutines — the idiomatic
// Go way to express a process-oriented discrete-event simulation while
// keeping the model code in straight-line style.
//
// Procs are pooled: when a body returns, the Proc (and its goroutine, with
// its grown stack) parks on the engine's freelist and is recycled by the
// next spawn. Spawn-heavy kernels — the paper's fine-grained Cilk trees —
// therefore create goroutines only up to the peak live count, not once per
// simulated thread.
// A Proc can instead be continuation-hosted (see cont.go): spawned with
// SpawnContAt/LaunchContAt it has no goroutine and a nil resume channel, and
// the event loop resumes it by calling its Stepper directly. The struct
// below is the entire park state of such a proc — on 64-bit it is under
// 200 bytes including its registry and event-queue footprint, which is what
// makes millions of concurrently parked threadlets tractable.
type Proc struct {
	eng     *Engine
	resume  chan struct{}
	runner  Runner
	stepper Stepper // non-nil exactly for continuation-hosted procs
	name    string
	done    bool

	// registered is true while the Proc sits in the engine's failure-dump
	// registry; compaction clears it so a recycled Proc re-registers.
	registered bool

	// Failure-dump bookkeeping, maintained on the park/wake paths with plain
	// field stores (no allocation, no formatting) so the hot path stays free.
	site     string // where the Proc last parked: "start", "wait", "join", a semaphore name, ...
	parkedAt Time   // when the Proc last gave up the control token
	wakeAt   Time   // pending dispatch time; valid only while hasWake
	hasWake  bool
}

// Runner runs the body of a simulated process. Machine layers implement it
// on their pooled thread types so a spawn allocates no per-spawn closure;
// Go and GoAt adapt plain functions through funcRunner.
type Runner interface {
	RunProc(p *Proc)
}

// funcRunner adapts a plain function to Runner. Func values are
// pointer-shaped, so storing one in the runner field does not allocate.
type funcRunner func(*Proc)

func (f funcRunner) RunProc(p *Proc) { f(p) }

// Name reports the name the Proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this Proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Go creates a process and schedules its first dispatch at the current time
// (plus any queued same-time events ahead of it). fn runs to completion in
// simulation order; when it returns, the process is finished.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt is like Go but delays the first dispatch until absolute time t.
func (e *Engine) GoAt(t Time, name string, fn func(*Proc)) *Proc {
	return e.SpawnAt(t, name, funcRunner(fn))
}

// SpawnAt creates (or recycles) a process running r and schedules its first
// dispatch at absolute time t. It is GoAt without the closure: the event
// pattern — one dispatch event whose seq is claimed now — is identical.
//
//emu:hotpath the pooled spawn path, allocation-free on a pool hit
func (e *Engine) SpawnAt(t Time, name string, r Runner) *Proc {
	p := e.acquireProc(name)
	p.runner = r
	e.procs++
	if !p.registered {
		e.register(p)
		p.registered = true
	}
	e.scheduleProc(t, p)
	return p
}

// LaunchAt creates (or recycles) a process running r whose first dispatch is
// scheduled when the launch event fires at absolute time t. This reproduces
// the event pattern of the closure-based deferred spawn it replaces —
// Schedule(t, func(){ Go(name, fn) }) — exactly: one event claims a seq now
// and fires at t; the dispatch event claims a fresh seq at fire time, queuing
// behind events already scheduled for t. Byte-for-byte the same dispatch
// order, without the per-spawn closure.
//
//emu:hotpath the deferred spawn path (machine spawnOn), allocation-free on a pool hit
func (e *Engine) LaunchAt(t Time, name string, r Runner) *Proc {
	p := e.acquireProc(name)
	p.runner = r
	e.procs++
	if !p.registered {
		e.register(p)
		p.registered = true
	}
	p.wakeAt = t
	p.hasWake = true
	e.schedule(t, event{fn: launchMark, proc: p})
	return p
}

// launchMark distinguishes a launch event (fn and proc both set) from a
// dispatch (proc only). It is never called.
var launchMark = func() {}

// acquireProc pops a finished Proc from the freelist — its goroutine is
// parked in procLoop awaiting recycling — or creates a fresh one.
//
//emu:hotpath pool hit is the steady state; the miss path is factored into newProc
func (e *Engine) acquireProc(name string) *Proc {
	if n := len(e.free); n > 0 {
		p := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.done = false
		p.name = name
		p.site = "start"
		p.parkedAt = e.now
		p.hasWake = false
		return p
	}
	return e.newProc(name)
}

// newProc allocates a Proc and starts its pooled host goroutine.
//
//emu:cold pool miss: runs once per pool-high-water proc, amortized away in steady state
func (e *Engine) newProc(name string) *Proc {
	if e.stop == nil {
		e.stop = make(chan struct{})
	}
	p := &Proc{eng: e, resume: make(chan struct{}), name: name, site: "start", parkedAt: e.now}
	go e.procLoop(p, e.stop)
	return p
}

// procLoop is the host goroutine of one pooled Proc. It waits for the
// process's first dispatch, runs the current body, then returns the Proc to
// the engine's freelist and parks until recycled — keeping the goroutine and
// its grown stack across simulated thread lifetimes. advance returning true
// means the freelisted Proc was already respawned and its new first dispatch
// fired while this goroutine still drove the event loop: the next body starts
// directly, with no channel handoff at all.
//
// stop is captured at creation: closing it (end of Run) releases every
// pooled goroutine. Procs parked mid-body when a run fails are woken by the
// teardown with e.aborted set: the resume panics with procAborted, the
// recover below catches it, and the goroutine acknowledges and exits instead
// of leaking on its resume channel.
func (e *Engine) procLoop(p *Proc, stop <-chan struct{}) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procAborted); ok {
				e.abortAck <- struct{}{}
				return
			}
			panic(r)
		}
	}()
	redispatched := false
	for {
		if !redispatched {
			select {
			case <-p.resume:
				if e.aborted {
					// Spawned but never dispatched when the run failed: the
					// body must not start during teardown.
					e.abortAck <- struct{}{}
					return
				}
			case <-stop:
				return
			}
		}
		p.runner.RunProc(p)
		p.done = true
		e.procs--
		// The token is still held here, so the freelist push is ordinary
		// engine-owned state mutation, race-free by the token discipline.
		e.free = append(e.free, p)
		redispatched = e.advance(p)
	}
}

// procAborted is the panic sentinel that unwinds a parked proc's goroutine
// through its body frames during failed-run teardown.
type procAborted struct{}

// yield gives up the control token: the Proc drives the engine loop until
// the token moves on, then blocks until re-dispatched. If this Proc's own
// wake-up is the next event, it continues immediately with no handoff. The
// caller must already have arranged for a future dispatch (a scheduled
// event or a registered waiter), otherwise the engine will report a
// deadlock.
//
//emu:hotpath a context switch is one channel handoff, nothing more
func (p *Proc) yield() {
	p.parkedAt = p.eng.now
	if p.eng.advance(p) {
		return
	}
	<-p.resume
	if p.eng.aborted {
		panic(procAborted{})
	}
}

// WaitUntil suspends the Proc until absolute simulated time t. Waiting for a
// time not after now returns immediately without yielding. When every
// pending event fires strictly after t, the dispatch this wait would
// schedule is provably the event the loop would pop next — the engine
// fast-forwards the clock in place instead of running the queue round trip
// (see Engine.fastForward).
//
//emu:hotpath
func (p *Proc) WaitUntil(t Time) {
	e := p.eng
	if t <= e.now {
		return
	}
	if e.fastForward(t) {
		return
	}
	p.site = "wait"
	e.scheduleProc(t, p)
	p.yield()
}

// Delay suspends the Proc for duration d.
func (p *Proc) Delay(d Time) {
	if d < 0 {
		panic("sim: negative delay")
	}
	p.WaitUntil(p.eng.now + d)
}

// Park suspends the Proc indefinitely; it resumes when another party calls
// Unpark. The caller must have registered itself somewhere an Unpark will
// come from before calling Park.
//
// Park leaves the generic "park" site in failure dumps; call sites should
// prefer ParkReason (the parksite analyzer flags bare Park calls).
//
//emu:hotpath
func (p *Proc) Park() { p.ParkReason("park") }

// ParkReason is Park with a site label recorded for failure dumps, so a
// deadlock report can say what each proc was blocked on. Synchronization
// primitives pass their own label ("join", the semaphore's name); callers of
// plain Park get the generic "park".
//
//emu:hotpath the park half of every context switch
func (p *Proc) ParkReason(site string) {
	p.site = site
	p.yield()
}

// Unpark schedules p to resume at the current time (after already-queued
// same-time events). It must be called exactly once per Park.
//
//emu:hotpath the wake half of every context switch
func (p *Proc) Unpark() {
	e := p.eng
	e.scheduleProc(e.now, p)
}

// UnparkAt schedules p to resume at absolute time t.
func (p *Proc) UnparkAt(t Time) {
	p.eng.scheduleProc(t, p)
}
