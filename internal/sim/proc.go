package sim

// Proc is a simulated process: a goroutine whose execution is interleaved
// with the engine through a control token so that exactly one of (engine,
// some Proc) runs at any moment. While a Proc holds the token it may freely
// read and mutate engine-owned state (resources, counters, other model
// structures) without locks; when it performs a blocking operation it runs
// the engine's event loop itself until the token moves to the next runnable
// party (see Engine.advance) and is re-dispatched by a scheduled event.
//
// This is cooperative coroutine scheduling over goroutines — the idiomatic
// Go way to express a process-oriented discrete-event simulation while
// keeping the model code in straight-line style.
type Proc struct {
	eng    *Engine
	resume chan struct{}
	name   string
	done   bool

	// Failure-dump bookkeeping, maintained on the park/wake paths with plain
	// field stores (no allocation, no formatting) so the hot path stays free.
	site     string // where the Proc last parked: "start", "wait", "join", a semaphore name, ...
	parkedAt Time   // when the Proc last gave up the control token
	wakeAt   Time   // pending dispatch time; valid only while hasWake
	hasWake  bool
}

// Name reports the name the Proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this Proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Go creates a process and schedules its first dispatch at the current time
// (plus any queued same-time events ahead of it). fn runs to completion in
// simulation order; when it returns, the process is finished.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt is like Go but delays the first dispatch until absolute time t.
func (e *Engine) GoAt(t Time, name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, resume: make(chan struct{}), name: name, site: "start", parkedAt: e.now}
	e.procs++
	e.register(p)
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.procs--
		// The finished Proc still holds the control token: keep driving
		// the event loop until it hands off or the run ends, then let the
		// goroutine exit. advance never returns true here — dispatching a
		// finished proc panics inside advance.
		e.advance(p)
	}()
	e.scheduleProc(t, p)
	return p
}

// yield gives up the control token: the Proc drives the engine loop until
// the token moves on, then blocks until re-dispatched. If this Proc's own
// wake-up is the next event, it continues immediately with no handoff. The
// caller must already have arranged for a future dispatch (a scheduled
// event or a registered waiter), otherwise the engine will report a
// deadlock.
//
//emu:hotpath a context switch is one channel handoff, nothing more
func (p *Proc) yield() {
	p.parkedAt = p.eng.now
	if p.eng.advance(p) {
		return
	}
	<-p.resume
}

// WaitUntil suspends the Proc until absolute simulated time t. Waiting for a
// time not after now returns immediately without yielding.
//
//emu:hotpath
func (p *Proc) WaitUntil(t Time) {
	e := p.eng
	if t <= e.now {
		return
	}
	p.site = "wait"
	e.scheduleProc(t, p)
	p.yield()
}

// Delay suspends the Proc for duration d.
func (p *Proc) Delay(d Time) {
	if d < 0 {
		panic("sim: negative delay")
	}
	p.WaitUntil(p.eng.now + d)
}

// Park suspends the Proc indefinitely; it resumes when another party calls
// Unpark. The caller must have registered itself somewhere an Unpark will
// come from before calling Park.
//
// Park leaves the generic "park" site in failure dumps; call sites should
// prefer ParkReason (the parksite analyzer flags bare Park calls).
//
//emu:hotpath
func (p *Proc) Park() { p.ParkReason("park") }

// ParkReason is Park with a site label recorded for failure dumps, so a
// deadlock report can say what each proc was blocked on. Synchronization
// primitives pass their own label ("join", the semaphore's name); callers of
// plain Park get the generic "park".
//
//emu:hotpath the park half of every context switch
func (p *Proc) ParkReason(site string) {
	p.site = site
	p.yield()
}

// Unpark schedules p to resume at the current time (after already-queued
// same-time events). It must be called exactly once per Park.
//
//emu:hotpath the wake half of every context switch
func (p *Proc) Unpark() {
	e := p.eng
	e.scheduleProc(e.now, p)
}

// UnparkAt schedules p to resume at absolute time t.
func (p *Proc) UnparkAt(t Time) {
	p.eng.scheduleProc(t, p)
}
