package sim

import "fmt"

// Resource models a single-server queue with deterministic service times:
// a memory channel, a core's issue port, a migration engine, a fabric link.
// An operation arriving at time now with service time svc begins when the
// server is free and completes svc later; the server is then busy until that
// completion. Latency that does not occupy the server (wire time, bank
// access time) should be added by the caller on top of the returned
// completion time.
//
// This "next-free-time" formulation is the standard building block for
// bandwidth/queueing models: it yields exact FIFO single-server behaviour at
// a tiny fraction of the cost of token-level simulation.
type Resource struct {
	name   string
	freeAt Time
	scale  float64 // service-time multiplier; 0 or 1 means unthrottled

	busy    Time   // total service time granted
	ops     uint64 // operations served
	waited  Time   // total queueing delay experienced by operations
	maxWait Time   // largest single queueing delay
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// SetServiceScale installs a service-time multiplier on the server — the
// throttle hook the fault-injection layer uses to model degraded hardware
// (a slowed core clock, a throttled NCDRAM channel). Every subsequent
// Acquire's service time is multiplied by f and rounded to the nearest
// picosecond; f == 1 (and the initial 0) restores the exact unthrottled
// arithmetic, so an unthrottled resource is byte-identical to one that never
// had the hook touched. f must be >= 1: faults degrade, they never
// accelerate.
func (r *Resource) SetServiceScale(f float64) {
	if f < 1 {
		panic(fmt.Sprintf("sim: resource %q service scale %v < 1", r.name, f))
	}
	r.scale = f
}

// ServiceScale reports the installed multiplier (1 when unthrottled).
func (r *Resource) ServiceScale() float64 {
	if r.scale == 0 {
		return 1
	}
	return r.scale
}

// Acquire books one operation of the given service time arriving now.
// It returns the operation's start and completion times and advances the
// server's free time. svc must be non-negative.
//
//emu:hotpath every modelled memory/core/fabric operation books through here
func (r *Resource) Acquire(now Time, svc Time) (start, done Time) {
	if svc < 0 {
		r.negativeService()
	}
	if r.scale != 0 && r.scale != 1 {
		svc = Time(float64(svc)*r.scale + 0.5)
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	wait := start - now
	done = start + svc
	r.freeAt = done
	r.busy += svc
	r.ops++
	r.waited += wait
	if wait > r.maxWait {
		r.maxWait = wait
	}
	return start, done
}

// AcquireRun books count back-to-back operations of identical service time
// arriving together at now — one bulk grant replacing count sequential
// Acquire calls. Because each operation in such a run starts exactly when
// its predecessor completes, the aggregate statistics have a closed form:
// every derived quantity (freeAt, busy, ops, waited, maxWait) is identical
// to the sequential loop's, which TestAcquireRunMatchesSequential verifies
// over randomized schedules. It returns the first operation's start time and
// the last operation's completion time.
//
//emu:hotpath the bulk-transfer path (streaming writebacks) books whole runs at once
func (r *Resource) AcquireRun(now Time, svc Time, count int) (start, done Time) {
	if svc < 0 {
		r.negativeService()
	}
	if count <= 0 {
		panic(fmt.Sprintf("sim: resource %q non-positive run count %d", r.name, count))
	}
	if r.scale != 0 && r.scale != 1 {
		svc = Time(float64(svc)*r.scale + 0.5)
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	k := Time(count)
	wait1 := start - now
	done = start + k*svc
	r.freeAt = done
	r.busy += k * svc
	r.ops += uint64(count)
	// Op i (0-based) waits wait1 + i*svc; the arithmetic series sums in
	// closed form, and the last op waits the longest.
	r.waited += k*wait1 + svc*(k*(k-1)/2)
	if last := wait1 + (k-1)*svc; last > r.maxWait {
		r.maxWait = last
	}
	return start, done
}

// negativeService reports a negative-service-time booking. Factored out of
// the acquire paths so their steady-state bodies stay within the inlining
// budget.
func (r *Resource) negativeService() {
	panic(fmt.Sprintf("sim: resource %q negative service time", r.name))
}

// FreeAt reports when the server next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Ops reports how many operations have been served.
func (r *Resource) Ops() uint64 { return r.ops }

// BusyTime reports the total service time granted so far.
func (r *Resource) BusyTime() Time { return r.busy }

// TotalWait reports the cumulative queueing delay across all operations.
func (r *Resource) TotalWait() Time { return r.waited }

// MaxWait reports the largest queueing delay any single operation saw.
func (r *Resource) MaxWait() Time { return r.maxWait }

// Utilization reports busy time as a fraction of the given elapsed window.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset returns the resource to idle and clears its statistics.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.ops = 0
	r.waited = 0
	r.maxWait = 0
}
