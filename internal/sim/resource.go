package sim

import "fmt"

// Resource models a single-server queue with deterministic service times:
// a memory channel, a core's issue port, a migration engine, a fabric link.
// An operation arriving at time now with service time svc begins when the
// server is free and completes svc later; the server is then busy until that
// completion. Latency that does not occupy the server (wire time, bank
// access time) should be added by the caller on top of the returned
// completion time.
//
// This "next-free-time" formulation is the standard building block for
// bandwidth/queueing models: it yields exact FIFO single-server behaviour at
// a tiny fraction of the cost of token-level simulation.
type Resource struct {
	name   string
	freeAt Time

	busy    Time   // total service time granted
	ops     uint64 // operations served
	waited  Time   // total queueing delay experienced by operations
	maxWait Time   // largest single queueing delay
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire books one operation of the given service time arriving now.
// It returns the operation's start and completion times and advances the
// server's free time. svc must be non-negative.
func (r *Resource) Acquire(now Time, svc Time) (start, done Time) {
	if svc < 0 {
		panic(fmt.Sprintf("sim: resource %q negative service time", r.name))
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	wait := start - now
	done = start + svc
	r.freeAt = done
	r.busy += svc
	r.ops++
	r.waited += wait
	if wait > r.maxWait {
		r.maxWait = wait
	}
	return start, done
}

// FreeAt reports when the server next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Ops reports how many operations have been served.
func (r *Resource) Ops() uint64 { return r.ops }

// BusyTime reports the total service time granted so far.
func (r *Resource) BusyTime() Time { return r.busy }

// TotalWait reports the cumulative queueing delay across all operations.
func (r *Resource) TotalWait() Time { return r.waited }

// MaxWait reports the largest queueing delay any single operation saw.
func (r *Resource) MaxWait() Time { return r.maxWait }

// Utilization reports busy time as a fraction of the given elapsed window.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset returns the resource to idle and clears its statistics.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.ops = 0
	r.waited = 0
	r.maxWait = 0
}
