package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// failDeadlock builds an engine whose run deadlocks with procs parked at
// several distinct sites: a bare park, a semaphore wait, and a join wait.
func failDeadlock() *Engine {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", 1)
	j := NewJoin(1)
	e.Go("holder", func(p *Proc) {
		sem.Acquire(p)
		p.ParkReason("never") // holds the slot forever
	})
	e.Go("sem-waiter", func(p *Proc) {
		p.Delay(1)
		sem.Acquire(p)
	})
	e.Go("join-waiter", func(p *Proc) {
		j.Wait(p)
	})
	return e
}

// failMaxEvents builds an engine whose run trips the MaxEvents valve while
// two procs ping-pong, leaving both parked mid-body.
func failMaxEvents() *Engine {
	e := NewEngine()
	e.MaxEvents = 64
	for i := 0; i < 2; i++ {
		e.Go("spinner", func(p *Proc) {
			for {
				p.Delay(1)
			}
		})
	}
	return e
}

// failInterrupted builds an engine whose Interrupt hook fires on its first
// poll, aborting the run with procs live.
func failInterrupted() *Engine {
	e := NewEngine()
	cause := errors.New("cancelled")
	e.Interrupt = func() error { return cause }
	for i := 0; i < 3; i++ {
		e.Go("worker", func(p *Proc) {
			for {
				p.Delay(1)
			}
		})
	}
	return e
}

// TestFailedRunsReleaseParkedGoroutines is the leak regression test: across
// many failing runs of every failure kind, the process goroutine count must
// return to its baseline. Before the teardown fix, every proc parked
// mid-body when a run failed stayed blocked on its resume channel forever —
// in a long-lived job server those leaked goroutines accumulated with every
// watchdog-killed, cancelled, or deadlocked job.
func TestFailedRunsReleaseParkedGoroutines(t *testing.T) {
	// Let goroutines from other tests settle before taking the baseline.
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	builders := []func() *Engine{failDeadlock, failMaxEvents, failInterrupted}
	const rounds = 40
	for i := 0; i < rounds; i++ {
		for _, build := range builders {
			e := build()
			if err := e.Run(); err == nil {
				t.Fatal("expected the run to fail")
			}
		}
	}

	// Teardown synchronizes with every released goroutine before Run
	// returns, but the runtime unwinds exiting goroutines asynchronously;
	// poll briefly before declaring a leak. With the old teardown this
	// plateaus hundreds of goroutines above baseline and fails.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across failing runs: baseline %d, now %d", baseline, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEngineReuseAfterFailure: an engine whose run failed must be clean for
// reuse — no stale live-proc count, no un-fired events, no failure-registry
// carryover — so a second, well-formed run succeeds and reports only its own
// procs on a subsequent failure.
func TestEngineReuseAfterFailure(t *testing.T) {
	e := failDeadlock()
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after failed run = %d, want 0", e.LiveProcs())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending events after failed run = %d, want 0", e.Pending())
	}

	// A clean run on the reused engine must succeed.
	var at Time
	e.Go("ok", func(p *Proc) {
		p.Delay(10)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("reused engine failed a clean run: %v", err)
	}
	if want := e.Now(); at != want {
		t.Fatalf("reused run resumed at %v, want %v (time stays monotonic)", at, want)
	}

	// A third run that fails must dump only its own procs, not ghosts from
	// the first failure.
	e.Go("fresh-stuck", func(p *Proc) { p.ParkReason("again") })
	err := e.Run()
	re, ok := err.(*RunError)
	if !ok {
		t.Fatalf("Run() = %v, want *RunError", err)
	}
	if len(re.Parked) != 1 || re.Parked[0].Name != "fresh-stuck" {
		t.Fatalf("failure dump carries stale procs: %+v", re.Parked)
	}
}

// TestEngineReuseAfterSuccess: back-to-back successful runs on one engine,
// with the clock staying monotonic across them.
func TestEngineReuseAfterSuccess(t *testing.T) {
	e := NewEngine()
	e.Go("a", func(p *Proc) { p.Delay(100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	firstNow := e.Now()
	if firstNow != 100 {
		t.Fatalf("first run ended at %v, want 100", firstNow)
	}
	var at Time
	e.Go("b", func(p *Proc) {
		p.Delay(50)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != firstNow+50 {
		t.Fatalf("second run resumed at %v, want %v", at, firstNow+50)
	}
	if e.LiveProcs() != 0 || e.Pending() != 0 {
		t.Fatalf("engine not clean after reuse: procs=%d pending=%d", e.LiveProcs(), e.Pending())
	}
}

// TestFailedRunReleasesContinuationProcs: continuation procs have no
// goroutine to leak, but a failed run must still reset the live count they
// contribute to.
func TestFailedRunReleasesContinuationProcs(t *testing.T) {
	e := NewEngine()
	e.SpawnContAt(0, "stuck", contForever{})
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs after failed run = %d, want 0", e.LiveProcs())
	}
	e.SpawnContAt(e.Now(), "ok", &exitOnce{})
	if err := e.Run(); err != nil {
		t.Fatalf("reused engine failed a clean run: %v", err)
	}
}
