package sim

// Continuation-form processes: the scalable alternative to goroutine-hosted
// Procs. A continuation proc has no goroutine and no resume channel — its
// body is an explicit state machine (a Stepper) that the event loop resumes
// by a plain method call, so a context switch costs one dynamic dispatch
// instead of a runtime channel handoff. The park state lives entirely in the
// Proc struct plus whatever the Stepper keeps, mirroring the hardware it
// models: an Emu threadlet context is a <200 B register file that a Gossamer
// core swaps in and out, not a stack.
//
// Both kinds of proc share every scheduling path (scheduleProc, launch
// events, fastForward), so a continuation port of a kernel that performs the
// identical sequence of waits and wakes produces a bit-identical (at, seq)
// event stream — the byte-identical-figures contract holds across engines.

// Stepper is the continuation-form analogue of Runner: the body of a
// simulated process expressed as a resumable state machine. StepProc is
// called once per dispatch of p, with the control token held; it must either
// run the body to completion and call p.Exit(), or arrange a future wake-up
// (a scheduled sleep or a registered waiter) and return. Returning without
// either is a deadlock, exactly as for a goroutine proc that parks with no
// waker.
type Stepper interface {
	StepProc(p *Proc)
}

// SpawnContAt creates (or recycles) a continuation process driven by s and
// schedules its first dispatch at absolute time t. It is SpawnAt without the
// goroutine: the event pattern — one dispatch event whose seq is claimed
// now — is identical.
//
//emu:hotpath the continuation spawn path, allocation-free on a pool hit
func (e *Engine) SpawnContAt(t Time, name string, s Stepper) *Proc {
	p := e.acquireContProc(name)
	p.stepper = s
	e.procs++
	if !p.registered {
		e.register(p)
		p.registered = true
	}
	e.scheduleProc(t, p)
	return p
}

// LaunchContAt is LaunchAt for continuation processes: the first dispatch is
// scheduled when the launch event fires at absolute time t, claiming a fresh
// seq at fire time exactly like the goroutine deferred spawn.
//
//emu:hotpath the continuation deferred spawn path, allocation-free on a pool hit
func (e *Engine) LaunchContAt(t Time, name string, s Stepper) *Proc {
	p := e.acquireContProc(name)
	p.stepper = s
	e.procs++
	if !p.registered {
		e.register(p)
		p.registered = true
	}
	p.wakeAt = t
	p.hasWake = true
	e.schedule(t, event{fn: launchMark, proc: p})
	return p
}

// acquireContProc pops a finished continuation Proc from its freelist or
// allocates a fresh one. Continuation procs never mix with the goroutine
// pool: a pooled goroutine proc carries a live resume channel and a parked
// host goroutine, neither of which a continuation proc has.
//
//emu:hotpath pool hit is the steady state; the miss path is factored into newContProc
func (e *Engine) acquireContProc(name string) *Proc {
	if n := len(e.freeCont); n > 0 {
		p := e.freeCont[n-1]
		e.freeCont[n-1] = nil
		e.freeCont = e.freeCont[:n-1]
		p.done = false
		p.name = name
		p.site = "start"
		p.parkedAt = e.now
		p.hasWake = false
		return p
	}
	return e.newContProc(name)
}

// newContProc allocates a continuation Proc: no channel, no goroutine.
func (e *Engine) newContProc(name string) *Proc {
	return &Proc{eng: e, name: name, site: "start", parkedAt: e.now}
}

// Exit finishes a continuation process. The Stepper must call it exactly
// once, when its body has run to completion, and must not touch p
// afterwards: the Proc returns to the freelist and may be recycled by the
// very next spawn.
//
//emu:hotpath the continuation thread-exit path
func (p *Proc) Exit() {
	p.done = true
	p.eng.procs--
	p.eng.freeCont = append(p.eng.freeCont, p)
}

// SleepUntil suspends a continuation process until absolute simulated time
// t. It is WaitUntil restated for steppers: parked=false means the wait
// completed in place (t not after now, or the clock fast-forwarded) and the
// body continues; parked=true means a dispatch was scheduled and StepProc
// must return, to be called again at t.
//
//emu:hotpath
func (p *Proc) SleepUntil(t Time) (parked bool) {
	e := p.eng
	if t <= e.now {
		return false
	}
	if e.fastForward(t) {
		return false
	}
	p.site = "wait"
	p.parkedAt = e.now
	e.scheduleProc(t, p)
	return true
}

// Suspend records the park site and park time of a continuation process
// about to return from StepProc awaiting an Unpark (from a semaphore grant,
// a join completion, ...). It is the bookkeeping half of ParkReason; the
// "give up the token" half is simply returning from StepProc.
//
//emu:hotpath the park half of a continuation context switch
func (p *Proc) Suspend(site string) {
	p.site = site
	p.parkedAt = p.eng.now
}
