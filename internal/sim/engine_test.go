package sim

import (
	"testing"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(5, func() {
		hits = append(hits, e.Now())
		e.After(7, func() { hits = append(hits, e.Now()) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != 5 || hits[1] != 12 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMaxEvents(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 100
	var tick func()
	tick = func() { e.After(1, tick) }
	e.Schedule(0, tick)
	if err := e.Run(); err == nil {
		t.Fatal("runaway loop not caught by MaxEvents")
	}
}

func TestEngineMaxTime(t *testing.T) {
	e := NewEngine()
	e.MaxTime = 50
	var tick func()
	tick = func() { e.After(10, tick) }
	e.Schedule(0, tick)
	if err := e.Run(); err == nil {
		t.Fatal("runaway loop not caught by MaxTime")
	}
	if e.Now() > 50 {
		t.Fatalf("engine ran past MaxTime: %v", e.Now())
	}
}

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 || e.Fired() != 0 {
		t.Fatal("empty run changed state")
	}
}

// Same-time scheduling from inside an event lands in the FIFO lane while
// earlier entries for the same timestamp sit in the heap; the pop rule must
// still deliver everything in global seq order.
func TestEngineTieBreakAcrossHeapAndLane(t *testing.T) {
	e := NewEngine()
	var order []int
	// Seeded ahead of time: these go through the heap.
	e.Schedule(100, func() {
		order = append(order, 0)
		// Scheduled at now: these take the lane, but the heap still holds
		// two entries for t=100 with smaller seq. They must fire first.
		e.Schedule(100, func() { order = append(order, 3) })
		e.Schedule(100, func() {
			order = append(order, 4)
			e.Schedule(100, func() { order = append(order, 5) })
		})
	})
	e.Schedule(100, func() { order = append(order, 1) })
	e.Schedule(100, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if i >= len(order) || order[i] != i {
			t.Fatalf("heap/lane tie order = %v, want 0..5", order)
		}
	}
}

// The lane must fully drain before time advances past a tick even when a
// strictly earlier heap event exists for a later time.
func TestEngineLaneDrainsBeforeTimeAdvances(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(10, func() {
		order = append(order, "t10-a")
		e.Schedule(10, func() { order = append(order, "t10-lane") })
	})
	e.Schedule(20, func() { order = append(order, "t20") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"t10-a", "t10-lane", "t20"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// A large interleaved stress mix: random-ish timestamps seeded up front plus
// same-time chains spawned inside events. Two runs must produce identical
// traces, and each run must be sorted by (time, seq).
func TestEngineHeapLaneStressDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var trace []Time
		var chain func(depth int)
		chain = func(depth int) {
			trace = append(trace, e.Now())
			if depth > 0 {
				e.Schedule(e.Now(), func() { chain(depth - 1) })
			}
		}
		for i := 0; i < 200; i++ {
			d := Time((i * 2654435761) % 37)
			depth := i % 4
			e.Schedule(d, func() { chain(depth) })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("time went backwards at %d: %v after %v", i, a[i], a[i-1])
		}
	}
}

// Determinism: two identical runs must visit identical (time, value) traces.
func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var trace []Time
		for i := 0; i < 50; i++ {
			d := Time((i * 7919) % 101)
			e.Schedule(d, func() { trace = append(trace, e.Now()) })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
