package sim

import "testing"

func TestProcDelayAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Go("p", func(p *Proc) {
		p.Delay(100)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Fatalf("proc resumed at %v, want 100", at)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d", e.LiveProcs())
	}
}

func TestProcWaitUntilPastIsNoop(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		p.Delay(50)
		p.WaitUntil(10) // already past; must not deadlock or rewind
		if p.Now() != 50 {
			t.Errorf("Now = %v, want 50", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "a")
			p.Delay(10)
		}
	})
	e.Go("b", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "b")
			p.Delay(10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestGoAt(t *testing.T) {
	e := NewEngine()
	var at Time
	e.GoAt(42, "late", func(p *Proc) { at = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 42 {
		t.Fatalf("started at %v, want 42", at)
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine()
	var waiter *Proc
	var resumedAt Time
	e.Go("waiter", func(p *Proc) {
		waiter = p
		//lint:allow parksite the bare Park/Unpark pair is the API under test
		p.Park()
		resumedAt = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Delay(200)
		waiter.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumedAt != 200 {
		t.Fatalf("resumed at %v, want 200", resumedAt)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	e.Go("stuck", func(p *Proc) { p.ParkReason("no-waker") })
	if err := e.Run(); err == nil {
		t.Fatal("parked-forever proc not reported as deadlock")
	}
}

func TestProcSpawnsProc(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Go("parent", func(p *Proc) {
		p.Delay(5)
		e.Go("child", func(c *Proc) {
			c.Delay(5)
			childAt = c.Now()
		})
		p.Delay(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 10 {
		t.Fatalf("child finished at %v, want 10", childAt)
	}
}

func TestProcAccessorsAndUnparkAt(t *testing.T) {
	e := NewEngine()
	var waiter *Proc
	var resumedAt Time
	e.Go("sleeper", func(p *Proc) {
		if p.Name() != "sleeper" || p.Engine() != e {
			t.Error("accessors wrong")
		}
		waiter = p
		p.ParkReason("timed-sleep")
		resumedAt = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		waiter.UnparkAt(500)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumedAt != 500 {
		t.Fatalf("UnparkAt resumed at %v", resumedAt)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative Delay did not panic")
			}
		}()
		p.Delay(-1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative After did not panic")
			}
		}()
		e2.After(-1, func() {})
	}()
}

func TestManyProcs(t *testing.T) {
	e := NewEngine()
	const n = 2000
	var finished int
	for i := 0; i < n; i++ {
		d := Time(i % 37)
		e.Go("w", func(p *Proc) {
			p.Delay(d)
			finished++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
}
