package sim

import (
	"fmt"
	"strings"
)

// FailureKind classifies why a run could not complete.
type FailureKind int

const (
	// FailDeadlock means the event queue drained while processes were still
	// live: some Proc parked forever with nothing left to wake it.
	FailDeadlock FailureKind = iota
	// FailMaxEvents means the MaxEvents safety valve tripped.
	FailMaxEvents
	// FailMaxTime means the MaxTime safety valve tripped.
	FailMaxTime
	// FailInterrupted means the Interrupt hook aborted the run (a cancelled
	// context or an expired watchdog deadline); Cause carries its error.
	FailInterrupted
)

// String names the failure kind for logs and failure records.
func (k FailureKind) String() string {
	switch k {
	case FailDeadlock:
		return "deadlock"
	case FailMaxEvents:
		return "max-events"
	case FailMaxTime:
		return "max-time"
	case FailInterrupted:
		return "interrupted"
	}
	return fmt.Sprintf("FailureKind(%d)", int(k))
}

// ParkedProc is the state of one live Proc at the moment a run failed: where
// it parked, when it last gave up the control token, and its scheduled
// wake-up if one was pending. At a deadlock no parked proc has a wake-up —
// that is what makes it a deadlock.
type ParkedProc struct {
	Name     string
	Site     string // park site: "wait", "join", a semaphore name, ...
	ParkedAt Time   // when the proc last yielded the control token
	WakeAt   Time   // scheduled wake-up time; only valid when HasWake
	HasWake  bool   // whether a dispatch event for this proc was pending
}

// RunError is the engine's structured failure report, replacing the bare
// one-line errors the valves and the deadlock detector used to return. It
// carries enough state — engine time, fired-event count, and a dump of every
// live Proc with its park site — for a caller to record a useful post-mortem
// without re-running the simulation.
type RunError struct {
	Kind      FailureKind
	Now       Time   // engine time when the run failed
	Fired     uint64 // events dispatched before the failure
	MaxEvents uint64 // the valve's setting (FailMaxEvents)
	MaxTime   Time   // the valve's setting (FailMaxTime)
	Parked    []ParkedProc
	Cause     error // the Interrupt hook's error (FailInterrupted)
}

// Unwrap exposes the interrupt cause so errors.Is sees context.Canceled or
// context.DeadlineExceeded through a RunError.
func (e *RunError) Unwrap() error { return e.Cause }

func (e *RunError) Error() string {
	switch e.Kind {
	case FailDeadlock:
		return fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events at t=%v%s",
			len(e.Parked), e.Now, e.parkedSummary())
	case FailMaxEvents:
		return fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v (%d events fired)%s",
			e.MaxEvents, e.Now, e.Fired, e.parkedSummary())
	case FailMaxTime:
		return fmt.Sprintf("sim: exceeded MaxTime=%v at t=%v (%d events fired)", e.MaxTime, e.Now, e.Fired)
	case FailInterrupted:
		return fmt.Sprintf("sim: run interrupted at t=%v after %d events: %v", e.Now, e.Fired, e.Cause)
	}
	return fmt.Sprintf("sim: run failed (%v) at t=%v", e.Kind, e.Now)
}

// parkedSummary lists the first few parked procs inline; the full dump stays
// in the Parked field for structured consumers.
func (e *RunError) parkedSummary() string {
	if len(e.Parked) == 0 {
		return ""
	}
	const maxListed = 8
	var b strings.Builder
	b.WriteString(": ")
	for i, p := range e.Parked {
		if i == maxListed {
			fmt.Fprintf(&b, ", +%d more", len(e.Parked)-i)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s@%s(parked t=%v", p.Name, p.Site, p.ParkedAt)
		if p.HasWake {
			fmt.Fprintf(&b, ", wake t=%v", p.WakeAt)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// register adds p to the failure-dump registry, compacting out finished
// procs once they dominate the slice so long runs with high proc turnover
// (millions of short-lived threadlets) keep the registry proportional to the
// live count rather than the spawn count. A recycled Proc that is still
// registered from its previous lifetime keeps its entry (the registered flag
// on the Proc prevents a duplicate); compaction clears the flag on the procs
// it drops so they re-register on their next spawn.
//
//emu:hotpath on the spawn path; the compaction sweep reuses the slice
func (e *Engine) register(p *Proc) {
	if len(e.all) > 64 && len(e.all) > 4*e.procs {
		live := e.all[:0]
		for _, q := range e.all {
			if !q.done {
				live = append(live, q)
			} else {
				q.registered = false
			}
		}
		for i := len(live); i < len(e.all); i++ {
			e.all[i] = nil
		}
		e.all = live
	}
	e.all = append(e.all, p)
}

// failure snapshots the engine's state into a RunError. The dump walks the
// proc registry in spawn order, so it is deterministic for a deterministic
// run.
func (e *Engine) failure(kind FailureKind, cause error) *RunError {
	re := &RunError{
		Kind:      kind,
		Now:       e.now,
		Fired:     e.fired,
		MaxEvents: e.MaxEvents,
		MaxTime:   e.MaxTime,
		Cause:     cause,
	}
	for _, p := range e.all {
		if p.done {
			continue
		}
		re.Parked = append(re.Parked, ParkedProc{
			Name:     p.name,
			Site:     p.site,
			ParkedAt: p.parkedAt,
			WakeAt:   p.wakeAt,
			HasWake:  p.hasWake,
		})
	}
	return re
}
