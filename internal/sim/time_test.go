package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{999, "999ps"},
		{Nanosecond, "1.000ns"},
		{1500 * Nanosecond, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000000s"},
		{-Nanosecond, "-1.000ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", got)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds() = %v", got)
	}
}

func TestInterval(t *testing.T) {
	if got := Interval(1e6); got != Microsecond {
		t.Fatalf("Interval(1e6) = %v, want 1us", got)
	}
	if got := Interval(9e6); got != Time(111111) {
		t.Fatalf("Interval(9e6) = %d ps, want 111111", int64(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Interval(0) did not panic")
		}
	}()
	Interval(0)
}

func TestTransferTime(t *testing.T) {
	// 64 bytes over 12.8 GB/s = 5 ns.
	if got := TransferTime(64, 12.8e9); got != 5*Nanosecond {
		t.Fatalf("TransferTime(64, 12.8e9) = %v, want 5ns", got)
	}
	if got := TransferTime(0, 1e9); got != 0 {
		t.Fatalf("TransferTime(0) = %v, want 0", got)
	}
}

func TestTransferTimePanics(t *testing.T) {
	for _, f := range []func(){
		func() { TransferTime(-1, 1e9) },
		func() { TransferTime(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestClock(t *testing.T) {
	c := NewClock(150e6)
	if c.Hz() != 150e6 {
		t.Fatalf("Hz = %d", c.Hz())
	}
	if c.Period() != 6667*Picosecond {
		t.Fatalf("150MHz period = %dps, want 6667", int64(c.Period()))
	}
	if got := c.Cycles(3); got != 3*6667 {
		t.Fatalf("Cycles(3) = %d", int64(got))
	}
	c2 := NewClock(1e12 * 10) // 10 THz clamps to 1 ps/cycle
	if c2.Period() != 1 {
		t.Fatalf("clamped period = %d", int64(c2.Period()))
	}
}

func TestClockPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewClock(0) did not panic")
			}
		}()
		NewClock(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Cycles(-1) did not panic")
			}
		}()
		NewClock(1e9).Cycles(-1)
	}()
}

// Property: Cycles is additive — Cycles(a)+Cycles(b) == Cycles(a+b).
func TestClockCyclesAdditiveProperty(t *testing.T) {
	c := NewClock(300e6)
	f := func(a, b uint16) bool {
		return c.Cycles(int64(a))+c.Cycles(int64(b)) == c.Cycles(int64(a)+int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock period error versus the exact rational period is at
// most half a picosecond per cycle.
func TestClockPeriodRoundingProperty(t *testing.T) {
	f := func(mhz uint16) bool {
		hz := int64(mhz%2000+1) * 1e6
		c := NewClock(hz)
		exact := float64(Second) / float64(hz)
		diff := float64(c.Period()) - exact
		if diff < 0 {
			diff = -diff
		}
		return diff <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
