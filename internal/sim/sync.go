package sim

import "fmt"

// Semaphore is a counting semaphore for Procs with FIFO wakeup order.
// The Emu model uses it for hardware thread-context slots: a Gossamer core
// has a fixed number of resident threadlet contexts, and a spawn or an
// inbound migration must wait for a free slot.
//
// The waiter queue is a slice with a head cursor rather than a shifted
// slice: dequeue is O(1) instead of an O(n) copy, which matters when
// oversubscribed kernels park hundreds of threadlets on one nodelet's
// context slots. Consumed head space is compacted away once it dominates
// the slice, so the queue's footprint stays proportional to the waiter
// count.
type Semaphore struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
	head     int // index of the next waiter to wake; entries before it are spent
	maxInUse int
}

// NewSemaphore returns a semaphore with the given capacity.
func NewSemaphore(eng *Engine, name string, capacity int) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q needs positive capacity", name))
	}
	return &Semaphore{eng: eng, name: name, capacity: capacity}
}

// Acquire takes one slot, blocking p until one is available.
//
//emu:hotpath every spawn and inbound migration acquires a context slot
func (s *Semaphore) Acquire(p *Proc) {
	if s.inUse < s.capacity {
		s.take()
		return
	}
	s.waiters = append(s.waiters, p)
	p.ParkReason(s.name)
	// The releaser transferred its slot to us and woke us; the count was
	// already adjusted in Release.
}

// AcquireCont is Acquire for continuation procs: parked=false means the
// slot was taken in place and the body continues; parked=true means p joined
// the FIFO waiter queue (recorded as its park site) and StepProc must
// return — the releaser transfers its slot and schedules p's next dispatch,
// with the count already adjusted, exactly as for a goroutine waiter. The
// two kinds of waiter mix freely in one queue.
//
//emu:hotpath every continuation spawn and inbound migration acquires a context slot
func (s *Semaphore) AcquireCont(p *Proc) (parked bool) {
	if s.inUse < s.capacity {
		s.take()
		return false
	}
	s.waiters = append(s.waiters, p)
	p.Suspend(s.name)
	return true
}

// TryAcquire takes a slot if one is free without blocking; it reports
// whether it succeeded.
func (s *Semaphore) TryAcquire() bool {
	if s.inUse < s.capacity {
		s.take()
		return true
	}
	return false
}

func (s *Semaphore) take() {
	s.inUse++
	if s.inUse > s.maxInUse {
		s.maxInUse = s.inUse
	}
}

// Release returns one slot. If a Proc is waiting, the slot transfers
// directly to the head of the queue.
//
//emu:hotpath O(1) dequeue via the head cursor; amortized compaction
func (s *Semaphore) Release() {
	if s.inUse <= 0 {
		panic(fmt.Sprintf("sim: semaphore %q released below zero", s.name))
	}
	if s.head < len(s.waiters) {
		w := s.waiters[s.head]
		s.waiters[s.head] = nil // don't pin the parked Proc via dead queue slots
		s.head++
		if s.head == len(s.waiters) {
			s.waiters = s.waiters[:0]
			s.head = 0
		} else if s.head > 32 && s.head*2 >= len(s.waiters) {
			n := copy(s.waiters, s.waiters[s.head:])
			for i := n; i < len(s.waiters); i++ {
				s.waiters[i] = nil
			}
			s.waiters = s.waiters[:n]
			s.head = 0
		}
		// Slot transfers: inUse stays the same.
		w.Unpark()
		return
	}
	s.inUse--
}

// InUse reports the number of slots currently held.
func (s *Semaphore) InUse() int { return s.inUse }

// Capacity reports the semaphore's capacity.
func (s *Semaphore) Capacity() int { return s.capacity }

// MaxInUse reports the high-water mark of held slots.
func (s *Semaphore) MaxInUse() int { return s.maxInUse }

// Waiting reports how many Procs are blocked in Acquire.
func (s *Semaphore) Waiting() int { return len(s.waiters) - s.head }

// Join is a completion counter, the simulation analogue of sync.WaitGroup.
// A parent uses it to implement cilk_sync: children call Done, the parent
// calls Wait.
type Join struct {
	remaining int
	waiter    *Proc
}

// NewJoin returns a Join expecting n completions.
func NewJoin(n int) *Join {
	if n < 0 {
		panic("sim: negative join count")
	}
	return &Join{remaining: n}
}

// Add registers n more expected completions.
func (j *Join) Add(n int) {
	if n < 0 {
		panic("sim: negative join add")
	}
	j.remaining += n
}

// Done records one completion, waking the waiter if the count reaches zero.
//
//emu:hotpath the join side of every thread exit
func (j *Join) Done() {
	if j.remaining <= 0 {
		panic("sim: join Done below zero")
	}
	j.remaining--
	if j.remaining == 0 && j.waiter != nil {
		w := j.waiter
		j.waiter = nil
		w.Unpark()
	}
}

// Pending reports the number of completions still outstanding.
func (j *Join) Pending() int { return j.remaining }

// Wait blocks p until the count reaches zero. At most one Proc may wait.
//
//emu:hotpath
func (j *Join) Wait(p *Proc) {
	if j.remaining == 0 {
		return
	}
	if j.waiter != nil {
		panic("sim: join already has a waiter")
	}
	j.waiter = p
	p.ParkReason("join")
}

// WaitCont is Wait for continuation procs: parked=false means the count was
// already zero and the body continues; parked=true means p is registered as
// the waiter and StepProc must return — the final Done schedules its next
// dispatch.
//
//emu:hotpath
func (j *Join) WaitCont(p *Proc) (parked bool) {
	if j.remaining == 0 {
		return false
	}
	if j.waiter != nil {
		panic("sim: join already has a waiter")
	}
	j.waiter = p
	p.Suspend("join")
	return true
}
