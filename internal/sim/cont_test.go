package sim

import (
	"fmt"
	"testing"
	"unsafe"
)

// TestProcParkStateUnderContextBound pins the struct-size half of the
// threadlet-scale claim: the entire park state of a continuation proc is
// the Proc struct itself, and it must stay within the <200 B hardware
// thread context the paper reports (section III-B). Growing it past the
// bound silently erodes the millions-of-threadlets capacity, so the bound
// is a test, not a comment.
func TestProcParkStateUnderContextBound(t *testing.T) {
	if size := unsafe.Sizeof(Proc{}); size >= 200 {
		t.Fatalf("sim.Proc is %d bytes; the continuation park state must stay under the 200 B hardware context bound", size)
	}
}

// scriptStep is one recorded action of a proc body: the op it performed and
// the simulated time it observed afterwards.
type scriptStep struct {
	proc string
	op   string
	at   Time
}

// contScript is a continuation body that sleeps through a fixed schedule of
// absolute wake times, logging each resumption. Its goroutine twin below
// runs the identical wait sequence, so the two engines must interleave the
// logs identically.
type contScript struct {
	wakes  []Time
	pc     int
	resumg bool // a parked sleep completed; log the wake on re-entry
	log    *[]scriptStep
}

func (s *contScript) StepProc(p *Proc) {
	if s.resumg {
		s.resumg = false
		*s.log = append(*s.log, scriptStep{p.Name(), "wake", p.Now()})
	}
	for s.pc < len(s.wakes) {
		t := s.wakes[s.pc]
		s.pc++
		if p.SleepUntil(t) {
			s.resumg = true
			return
		}
		*s.log = append(*s.log, scriptStep{p.Name(), "wake", p.Now()})
	}
	*s.log = append(*s.log, scriptStep{p.Name(), "exit", p.Now()})
	p.Exit()
}

func (s *contScript) runGoroutine(p *Proc) {
	for _, t := range s.wakes {
		p.WaitUntil(t)
		*s.log = append(*s.log, scriptStep{p.Name(), "wake", p.Now()})
	}
	*s.log = append(*s.log, scriptStep{p.Name(), "exit", p.Now()})
}

// contScript logs on non-parked waits too — mirror that in the goroutine
// twin by logging after every WaitUntil, parked or not. (SleepUntil returning
// false still completed the wait; the log entry above fires either way
// because the loop body continues.)

func scriptSchedules() [][]Time {
	return [][]Time{
		{10, 20, 30},
		{10, 15, 35},
		{5, 20, 20, 40}, // repeated time: exercises same-tick FIFO order
		{25},
	}
}

func TestContinuationMatchesGoroutineInterleaving(t *testing.T) {
	run := func(continuation bool) ([]scriptStep, Time, uint64) {
		e := NewEngine()
		var log []scriptStep
		for i, wakes := range scriptSchedules() {
			s := &contScript{wakes: wakes, log: &log}
			name := fmt.Sprintf("p%d", i)
			if continuation {
				e.SpawnContAt(0, name, s)
			} else {
				e.GoAt(0, name, s.runGoroutine)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log, e.Now(), e.Fired()
	}
	gLog, gNow, gFired := run(false)
	cLog, cNow, cFired := run(true)
	if gNow != cNow || gFired != cFired {
		t.Fatalf("engine state diverged: goroutine (now=%v fired=%d) vs continuation (now=%v fired=%d)",
			gNow, gFired, cNow, cFired)
	}
	if len(gLog) != len(cLog) {
		t.Fatalf("log lengths differ: %d vs %d", len(gLog), len(cLog))
	}
	for i := range gLog {
		if gLog[i] != cLog[i] {
			t.Fatalf("step %d diverged: goroutine %+v vs continuation %+v", i, gLog[i], cLog[i])
		}
	}
}

// contSemUser acquires a semaphore, holds it for a delay, releases, exits.
type contSemUser struct {
	sem   *Semaphore
	hold  Time
	pc    int
	order *[]string
}

func (s *contSemUser) StepProc(p *Proc) {
	for {
		switch s.pc {
		case 0:
			s.pc = 1
			if s.sem.AcquireCont(p) {
				return
			}
		case 1:
			*s.order = append(*s.order, p.Name())
			s.pc = 2
			if p.SleepUntil(p.Now() + s.hold) {
				return
			}
		case 2:
			s.sem.Release()
			p.Exit()
			return
		}
	}
}

// TestSemaphoreFIFOAcrossProcKinds interleaves goroutine and continuation
// waiters on one capacity-1 semaphore and checks the grant order is the
// arrival order regardless of the hosting.
func TestSemaphoreFIFOAcrossProcKinds(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "slots", 1)
	var order []string
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("p%d", i)
		if i%2 == 0 {
			e.SpawnContAt(0, name, &contSemUser{sem: sem, hold: 10, order: &order})
		} else {
			e.GoAt(0, name, func(p *Proc) {
				sem.Acquire(p)
				order = append(order, p.Name())
				p.Delay(10)
				sem.Release()
			})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "p1", "p2", "p3", "p4", "p5"}
	if len(order) != len(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// contForever suspends and never arranges a wake: a deadlock.
type contForever struct{}

func (contForever) StepProc(p *Proc) { p.Suspend("lost-wakeup") }

func TestContinuationDeadlockDumpHasParkSite(t *testing.T) {
	e := NewEngine()
	e.SpawnContAt(0, "stuck", contForever{})
	err := e.Run()
	re, ok := err.(*RunError)
	if !ok {
		t.Fatalf("Run() = %v, want *RunError", err)
	}
	if re.Kind != FailDeadlock {
		t.Fatalf("kind = %v, want deadlock", re.Kind)
	}
	if len(re.Parked) != 1 || re.Parked[0].Name != "stuck" || re.Parked[0].Site != "lost-wakeup" {
		t.Fatalf("parked dump = %+v", re.Parked)
	}
}

// exitOnce sleeps once and exits; used to observe freelist recycling.
type exitOnce struct{ d Time }

func (s *exitOnce) StepProc(p *Proc) {
	if p.Now() == 0 && s.d > 0 && p.SleepUntil(s.d) {
		s.d = 0
		return
	}
	p.Exit()
}

// TestContinuationProcsAreRecycled spawns waves of continuation procs and
// checks the engine reuses Proc structs from the continuation freelist
// rather than allocating one per spawn.
func TestContinuationProcsAreRecycled(t *testing.T) {
	// Teardown clears the pools between runs, so recycling is observed
	// within one run: a spawn after the first proc exits must reuse it.
	e := NewEngine()
	var second *Proc
	first := e.SpawnContAt(0, "a", &exitOnce{})
	e.Schedule(5, func() {
		second = e.SpawnContAt(5, "b", &exitOnce{})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("second spawn did not recycle the finished continuation proc")
	}
}

// TestJoinWaitContWakesOnLastDone: a continuation parent forks goroutine
// children through a Join and resumes exactly when the last one finishes.
type contJoiner struct {
	join *Join
	pc   int
	done *Time
}

func (s *contJoiner) StepProc(p *Proc) {
	switch s.pc {
	case 0:
		s.pc = 1
		if s.join.WaitCont(p) {
			return
		}
		fallthrough
	case 1:
		*s.done = p.Now()
		p.Exit()
	}
}

func TestJoinWaitContWakesOnLastDone(t *testing.T) {
	e := NewEngine()
	j := NewJoin(0)
	var done Time
	for i := 0; i < 3; i++ {
		j.Add(1)
		d := Time(10 * (i + 1))
		e.Go("child", func(p *Proc) {
			p.Delay(d)
			j.Done()
		})
	}
	e.SpawnContAt(0, "parent", &contJoiner{join: j, done: &done})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 30 {
		t.Fatalf("parent resumed at %v, want 30", done)
	}
}
