// Package jobspec defines the canonical declarative request schema shared
// by every way of asking this repo to simulate something: the emubench /
// emurun / emuvalidate command lines and the cmd/emuserved HTTP API are all
// thin parsers over one Spec. A Spec names either a registered experiment
// (a whole paper artifact sweep) or a registered kernel (one measurement),
// plus the workload-shaping knobs (scale, trials, fault plan) and the
// drive-side knobs (parallelism, checkpoint policy, watchdog QoS) that
// PRs 1-6 grew as loose flags.
//
// The package is the single source of truth for three contracts:
//
//   - Grammar and defaults: FromFlags registers the shared flag block once,
//     so -faults/-checkpoint/-cell-timeout/-retries cannot drift between
//     CLIs, and Canonical fills the same defaults the flags advertise.
//   - Content addressing: Fingerprint hashes exactly the workload-shaping
//     fields — keyed by the fingerprint.Fields In/Out classification — so
//     identical requests collide (cache hits) and different workloads never
//     do.
//   - Execution: Options / KernelPlan / RunKernel translate a validated
//     Spec into the experiments and kernels APIs, including the watchdog
//     retry policy and WAL-based measurement replay.
package jobspec

import (
	"encoding/json"
	"fmt"
	"time"

	"emuchick/internal/experiments"
	"emuchick/internal/fault"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
	"emuchick/internal/workload"

	"emuchick/internal/cilk"
)

// Scale names for Spec.Scale.
const (
	ScaleFull  = "full"
	ScaleQuick = "quick"
)

// Machine selects the simulated platform for kernel jobs. Experiment jobs
// build their own machines (each figure fixes its platforms), so they leave
// it zero.
type Machine struct {
	// Name is hw (the prototype), sim (the vendor simulator match), or
	// fullspeed (the design-speed projection). Empty means hw.
	Name string `json:"name,omitempty"`
	// Nodes is the node-card count (hw and fullspeed); 0 means 1.
	Nodes int `json:"nodes,omitempty"`
}

// Config resolves the machine selection, defaulting empty fields.
func (m Machine) Config() (machine.Config, error) {
	nodes := m.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	switch m.Name {
	case "", "hw", "hardware":
		if nodes > 1 {
			return machine.HardwareChickNodes(nodes), nil
		}
		return machine.HardwareChick(), nil
	case "sim", "simulator":
		return machine.SimMatched(), nil
	case "fullspeed", "design":
		return machine.FullSpeed(nodes), nil
	default:
		return machine.Config{}, fmt.Errorf("jobspec: unknown machine %q (hw, sim, fullspeed)", m.Name)
	}
}

// Duration is a time.Duration that marshals as a human-readable string
// ("30s", "2m") and unmarshals from either a string or nanoseconds.
type Duration time.Duration

// MarshalJSON writes the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30s"-style strings or numeric nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobspec: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("jobspec: duration must be a string like \"30s\" or nanoseconds: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// QoS is the per-job watchdog policy (PR 4's per-cell watchdog, expressed
// declaratively).
type QoS struct {
	// CellTimeout kills any single simulation after this wall-clock time
	// (0 disables the watchdog).
	CellTimeout Duration `json:"cell_timeout,omitempty"`
	// Retries is how many extra attempts a watchdog-killed cell gets.
	// 0 means the default (1); negative means none.
	Retries int `json:"retries,omitempty"`
}

// retries resolves the Retries encoding (0 = default 1, negative = 0).
func (q QoS) retries() int {
	if q.Retries == 0 {
		return 1
	}
	if q.Retries < 0 {
		return 0
	}
	return q.Retries
}

// CheckpointPolicy controls job durability. The CLIs point Path at a
// caller-chosen write-ahead log; the job server ignores Path and assigns a
// per-job log under its data directory unless Disable opts out.
type CheckpointPolicy struct {
	// Path is the WAL location for CLI runs (a directory path keeps one
	// log per experiment). Empty disables checkpointing on the CLIs.
	Path string `json:"path,omitempty"`
	// Disable opts a server job out of durability: a killed server
	// forgets the job's partial progress instead of resuming it.
	Disable bool `json:"disable,omitempty"`
}

// Spec is one declarative simulation request. Exactly one of Experiment or
// Kernel must be set.
type Spec struct {
	// Experiment is a registered experiment id (e.g. "fig6"); the job
	// regenerates that paper artifact's figures.
	Experiment string `json:"experiment,omitempty"`
	// Kernel is a registered kernel name (e.g. "gups"); the job takes one
	// measurement on the machine below.
	Kernel string `json:"kernel,omitempty"`
	// Machine and Params configure kernel jobs (unset fields take the
	// kernels.DefaultParams defaults). Experiment jobs must leave them zero.
	Machine Machine        `json:"machine,omitempty"`
	Params  kernels.Params `json:"params,omitempty"`
	// Scale is "full" (paper-sized, the default) or "quick" (CI-sized);
	// experiment jobs only.
	Scale string `json:"scale,omitempty"`
	// Trials repeats each data point (experiments: trials per point; the
	// paper uses 10, quick runs 3). 0 means the scale default.
	Trials int `json:"trials,omitempty"`
	// Faults is a fault-plan spec in the internal/fault grammar, e.g.
	// "chan=4@2,migstall=10us/100us"; empty injects nothing.
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the plan's nodelet choices (0: plan default).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Parallel is the per-job sweep worker count; 0 lets the driver choose.
	// Results are identical at any setting.
	Parallel int `json:"parallel,omitempty"`
	// Checkpoint is the durability policy.
	Checkpoint CheckpointPolicy `json:"checkpoint,omitempty"`
	// QoS is the watchdog/retry policy.
	QoS QoS `json:"qos,omitempty"`
}

// Canonical returns the spec with every defaultable field filled, so two
// requests that mean the same run compare (and fingerprint) equal. It does
// not validate; Validate reports errors on the original form.
func (s Spec) Canonical() Spec {
	c := s
	if c.Scale == "" {
		c.Scale = ScaleFull
	}
	c.QoS.Retries = c.QoS.retries()
	if c.Kernel != "" {
		if c.Machine.Name == "" {
			c.Machine.Name = "hw"
		}
		if c.Machine.Nodes <= 0 {
			c.Machine.Nodes = 1
		}
		if c.Trials <= 0 {
			c.Trials = 1
		}
		c.Params = mergeParams(c.Params)
	}
	if c.Experiment != "" && c.Trials <= 0 {
		// Mirrors experiments.Options.withDefaults, so the jobspec
		// fingerprint resolves trials exactly as the sweep runner will.
		if c.Scale == ScaleQuick {
			c.Trials = 3
		} else {
			c.Trials = 10
		}
	}
	return c
}

// mergeParams substitutes the registry defaults for unset (zero) fields.
// NodeletA/NodeletB default as a pair: (0, 0) — both unset — becomes the
// default (0, 1), but an explicit asymmetric choice is kept.
func mergeParams(p kernels.Params) kernels.Params {
	d := kernels.DefaultParams()
	if p.Nodelets == 0 {
		p.Nodelets = d.Nodelets
	}
	if p.Threads == 0 {
		p.Threads = d.Threads
	}
	if p.Elems == 0 {
		p.Elems = d.Elems
	}
	if p.Strategy == "" {
		p.Strategy = d.Strategy
	}
	if p.Block == 0 {
		p.Block = d.Block
	}
	if p.Mode == "" {
		p.Mode = d.Mode
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.GridN == 0 {
		p.GridN = d.GridN
	}
	if p.Layout == "" {
		p.Layout = d.Layout
	}
	if p.Grain == 0 {
		p.Grain = d.Grain
	}
	if p.Iters == 0 {
		p.Iters = d.Iters
	}
	if p.Updates == 0 {
		p.Updates = d.Updates
	}
	if p.NodeletA == 0 && p.NodeletB == 0 {
		p.NodeletA, p.NodeletB = d.NodeletA, d.NodeletB
	}
	return p
}

// Validate checks the spec against the registries and grammars it names.
// It validates the canonical form, so a spec that only omits defaultable
// fields is valid.
func (s Spec) Validate() error {
	c := s.Canonical()
	switch {
	case c.Experiment == "" && c.Kernel == "":
		return fmt.Errorf("jobspec: set exactly one of experiment or kernel")
	case c.Experiment != "" && c.Kernel != "":
		return fmt.Errorf("jobspec: experiment %q and kernel %q are mutually exclusive", c.Experiment, c.Kernel)
	}
	if c.Scale != ScaleFull && c.Scale != ScaleQuick {
		return fmt.Errorf("jobspec: unknown scale %q (full, quick)", s.Scale)
	}
	if s.Trials < 0 || s.Parallel < 0 || s.QoS.CellTimeout < 0 {
		return fmt.Errorf("jobspec: trials, parallel, and qos.cell_timeout must be non-negative")
	}
	if c.Faults != "" {
		if _, err := fault.Parse(c.Faults, c.FaultSeed); err != nil {
			return fmt.Errorf("jobspec: %w", err)
		}
	}
	if c.Experiment != "" {
		if _, err := experiments.ByID(c.Experiment); err != nil {
			return fmt.Errorf("jobspec: %w", err)
		}
		if s.Machine != (Machine{}) || s.Params != (kernels.Params{}) {
			return fmt.Errorf("jobspec: machine and params apply to kernel jobs only")
		}
		return nil
	}
	if _, err := kernels.ByName(c.Kernel); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	if _, err := c.Machine.Config(); err != nil {
		return err
	}
	if _, err := cilk.ParseStrategy(c.Params.Strategy); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	if _, err := workload.ParseShuffleMode(c.Params.Mode); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	if _, err := kernels.ParseSpMVLayout(c.Params.Layout); err != nil {
		return fmt.Errorf("jobspec: %w", err)
	}
	return nil
}

// FaultPlan parses the spec's fault plan, or returns nil when none is set.
func (s Spec) FaultPlan() (*fault.Plan, error) {
	if s.Faults == "" {
		return nil, nil
	}
	return fault.Parse(s.Faults, s.FaultSeed)
}

// Options translates the spec's experiment-facing fields into functional
// options for Experiment.Run (or experiments.ApplyOptions). Zero-valued
// fields emit no option, so downstream defaulting behaves exactly as if the
// corresponding flag had been left unset. Checkpointing is the caller's
// business: the CLI and the server choose different WAL paths.
func (s Spec) Options() ([]experiments.Option, error) {
	var opts []experiments.Option
	if s.Trials > 0 {
		opts = append(opts, experiments.WithTrials(s.Trials))
	}
	if s.Scale == ScaleQuick {
		opts = append(opts, experiments.WithScale(experiments.QuickScale))
	}
	if s.Parallel > 0 {
		opts = append(opts, experiments.WithParallel(s.Parallel))
	}
	plan, err := s.FaultPlan()
	if err != nil {
		return nil, err
	}
	if plan != nil {
		opts = append(opts, experiments.WithFaultPlan(plan))
	}
	if s.FaultSeed != 0 {
		opts = append(opts, experiments.WithFaultSeed(s.FaultSeed))
	}
	if s.QoS.CellTimeout > 0 {
		opts = append(opts, experiments.WithCellTimeout(time.Duration(s.QoS.CellTimeout)))
		opts = append(opts, experiments.WithRetries(s.QoS.retries()))
	}
	return opts, nil
}

// KernelPlan resolves a kernel spec to its registered kernel, machine
// configuration, and fully defaulted parameters.
func (s Spec) KernelPlan() (kernels.Kernel, machine.Config, kernels.Params, error) {
	c := s.Canonical()
	k, err := kernels.ByName(c.Kernel)
	if err != nil {
		return kernels.Kernel{}, machine.Config{}, kernels.Params{}, err
	}
	cfg, err := c.Machine.Config()
	if err != nil {
		return kernels.Kernel{}, machine.Config{}, kernels.Params{}, err
	}
	return k, cfg, c.Params, nil
}
