package jobspec

import (
	"flag"
	"runtime"
	"time"
)

// FromFlags is the one place the shared CLI flag block is defined, so the
// grammar, defaults, and help text of -faults/-checkpoint/-cell-timeout/
// -retries (and friends) cannot diverge between emubench, emurun, and
// emuvalidate. Each CLI asks for the groups it supports; the parsed values
// land in a Flags value whose Spec method seeds a jobspec request.

// Group selects which shared flag blocks a CLI registers.
type Group uint

const (
	// GroupSweep registers -trials, -quick, and -parallel.
	GroupSweep Group = 1 << iota
	// GroupFaults registers -faults and -fault-seed.
	GroupFaults
	// GroupCheckpoint registers -checkpoint and -resume.
	GroupCheckpoint
	// GroupQoS registers -cell-timeout and -retries.
	GroupQoS
)

// Flags holds the parsed values of the shared flag block. Fields of
// unregistered groups keep their defaults.
type Flags struct {
	Trials      int
	Quick       bool
	Parallel    int
	Faults      string
	FaultSeed   uint64
	Checkpoint  string
	Resume      bool
	CellTimeout time.Duration
	Retries     int
}

// FromFlags registers the requested shared flag groups on fs and returns
// the destination the parsed values land in.
func FromFlags(fs *flag.FlagSet, groups Group) *Flags {
	f := &Flags{Parallel: runtime.GOMAXPROCS(0), Retries: 1}
	if groups&GroupSweep != 0 {
		fs.IntVar(&f.Trials, "trials", 0, "trials per seeded data point (default: 10, or 3 with -quick)")
		fs.BoolVar(&f.Quick, "quick", false, "shrink workloads for a fast smoke run")
		fs.IntVar(&f.Parallel, "parallel", f.Parallel, "worker count for independent simulations (results are identical at any setting)")
	}
	if groups&GroupFaults != 0 {
		fs.StringVar(&f.Faults, "faults", "", "fault plan, e.g. 'chan=4@2,migstall=10us/100us' (see internal/fault)")
		fs.Uint64Var(&f.FaultSeed, "fault-seed", 0, "seed for the plan's nodelet choices (0: plan default)")
	}
	if groups&GroupCheckpoint != 0 {
		fs.StringVar(&f.Checkpoint, "checkpoint", "", "write-ahead log of completed work (a directory path keeps one log per experiment); killed runs resume with -resume")
		fs.BoolVar(&f.Resume, "resume", false, "allow resuming from an existing non-empty checkpoint")
	}
	if groups&GroupQoS != 0 {
		fs.DurationVar(&f.CellTimeout, "cell-timeout", 0, "per-cell watchdog: kill any single simulation after this wall-clock time (0 disables)")
		fs.IntVar(&f.Retries, "retries", 1, "extra attempts for a watchdog-killed cell before it is recorded as failed")
	}
	return f
}

// Spec seeds a jobspec request from the shared flags. The caller fills the
// target (experiment or kernel) and any kernel machine/params; Retries maps
// through the QoS encoding (flag 0 → no retries, flag 1 → the default).
func (f *Flags) Spec() Spec {
	s := Spec{
		Trials:     f.Trials,
		Faults:     f.Faults,
		FaultSeed:  f.FaultSeed,
		Parallel:   f.Parallel,
		Checkpoint: CheckpointPolicy{Path: f.Checkpoint},
		QoS:        QoS{CellTimeout: Duration(f.CellTimeout)},
	}
	if f.Quick {
		s.Scale = ScaleQuick
	}
	switch {
	case f.Retries <= 0:
		s.QoS.Retries = -1
	default:
		s.QoS.Retries = f.Retries
	}
	return s
}
