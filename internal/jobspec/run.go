package jobspec

import (
	"context"
	"errors"
	"time"

	"emuchick/internal/experiments"
	"emuchick/internal/kernels"
	"emuchick/internal/machine"
)

// CheckpointID names the write-ahead log owner for a kernel spec, the
// counterpart of an experiment id in an experiments.Checkpoint header.
func CheckpointID(kernel string) string { return "kernel/" + kernel }

// RunKernel executes a kernel spec once per trial under the spec's QoS
// policy: with a cell timeout set, each attempt gets its own deadline
// context plus the deterministic engine event budget, and watchdog kills
// are retried up to the retry allowance. onRetry (optional) observes each
// watchdog kill that will be retried. It returns the measurement, the
// number of attempts spent, and the terminal error if every attempt died.
//
// The simulation is deterministic, so trials produce identical
// measurements; the knob exists so an observer passed via extra can collect
// repeated-run traces, mirroring the facade's Run* semantics.
func RunKernel(ctx context.Context, s Spec, onRetry func(attempt, attempts int), extra ...kernels.RunOption) (kernels.Measurement, int, error) {
	c := s.Canonical()
	if err := s.Validate(); err != nil {
		return kernels.Measurement{}, 0, err
	}
	k, cfg, params, err := c.KernelPlan()
	if err != nil {
		return kernels.Measurement{}, 0, err
	}
	plan, err := c.FaultPlan()
	if err != nil {
		return kernels.Measurement{}, 0, err
	}
	base := make([]kernels.RunOption, 0, len(extra)+1)
	if plan != nil {
		base = append(base, kernels.WithFaultPlan(plan))
	}
	base = append(base, extra...)

	cellTimeout := time.Duration(c.QoS.CellTimeout)
	attempts := 1
	if cellTimeout > 0 {
		attempts += c.QoS.Retries
	}
	var lastErr error
	for a := 1; a <= attempts; a++ {
		ro := base
		cancel := context.CancelFunc(func() {})
		actx := ctx
		if cellTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, cellTimeout)
			ro = append(append([]kernels.RunOption{}, base...),
				kernels.WithMaxEvents(experiments.EventBudget(c.Scale == ScaleQuick)))
		}
		ro = append(append([]kernels.RunOption{}, ro...), kernels.WithContext(actx))
		m, err := runTrials(cfg, k, params, c.Trials, ro)
		cancel()
		if err == nil {
			return m, a, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return kernels.Measurement{}, a, err // outer cancellation: no retry
		}
		if cellTimeout > 0 && errors.Is(err, context.DeadlineExceeded) && a < attempts {
			if onRetry != nil {
				onRetry(a, attempts)
			}
			continue
		}
		return kernels.Measurement{}, a, err
	}
	return kernels.Measurement{}, attempts, lastErr
}

// runTrials invokes the kernel trials times (identical deterministic
// results; an attached observer sees every run).
func runTrials(cfg machine.Config, k kernels.Kernel, p kernels.Params, trials int, ro []kernels.RunOption) (kernels.Measurement, error) {
	if trials <= 0 {
		trials = 1
	}
	var m kernels.Measurement
	var err error
	for i := 0; i < trials; i++ {
		m, err = k.Run(cfg, p, ro...)
		if err != nil {
			return kernels.Measurement{}, err
		}
	}
	return m, nil
}

// RecordMeasurement appends a finished measurement to a write-ahead log:
// values land at cells 1..n of sweep 0, then the value count is written at
// cell 0 as the completion marker. A log killed mid-append therefore never
// replays a truncated vector — ReplayMeasurement requires the marker and
// every cell it promises.
func RecordMeasurement(ck *experiments.Checkpoint, m kernels.Measurement) error {
	for i, v := range m.Values {
		if err := ck.Record(0, i+1, v); err != nil {
			return err
		}
	}
	return ck.Record(0, 0, float64(len(m.Values)))
}

// ReplayMeasurement reassembles a measurement recorded by RecordMeasurement,
// reporting false when the log holds no complete vector.
func ReplayMeasurement(ck *experiments.Checkpoint, k kernels.Kernel) (kernels.Measurement, bool) {
	marker, ok := ck.Lookup(0, 0)
	if !ok {
		return kernels.Measurement{}, false
	}
	n := int(marker)
	vals := make([]float64, 0, n)
	for i := 1; i <= n; i++ {
		v, ok := ck.Lookup(0, i)
		if !ok {
			return kernels.Measurement{}, false
		}
		vals = append(vals, v)
	}
	return kernels.Measurement{Kernel: k.Name, Labels: k.Labels, Values: vals}, true
}

