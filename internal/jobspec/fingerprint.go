package jobspec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"emuchick/internal/analysis/fingerprint"
)

// The content address of a Spec must hash exactly the fields that shape the
// simulated workload, and none that merely change how it is driven — the
// same soundness argument the checkpoint fingerprint makes, guarded by the
// emulint fingerprint analyzer. Rather than restate that classification
// here (and let the two drift), the hash is keyed by the exported
// fingerprint.Fields table: every In-classified experiments option folds
// its jobspec value into the digest, every Out-classified one is skipped,
// and an In field jobspec does not know yet folds in as a constant marker —
// which versions the key space, so caches invalidate instead of silently
// colliding when the option vocabulary grows.

// Fingerprint returns the 16-hex-digit content address of the canonical
// spec. Two specs share a fingerprint iff they describe the same workload:
// drive-side fields (parallel, checkpoint policy, QoS) do not participate.
func (s Spec) Fingerprint() string {
	c := s.Canonical()
	h := sha256.New()
	io.WriteString(h, "jobspec/1;")
	fmt.Fprintf(h, "experiment=%s;kernel=%s;", c.Experiment, c.Kernel)
	if c.Kernel != "" {
		// Machine and params exist only for kernel jobs; canonical JSON of
		// the merged params keeps the digest stable across field additions
		// (omitempty drops unset fields).
		pb, err := json.Marshal(c.Params)
		if err != nil {
			// A params struct of plain ints and strings cannot fail to
			// marshal; if it ever does, poison the key rather than collide.
			pb = []byte(fmt.Sprintf("unmarshalable=%+v", c.Params))
		}
		fmt.Fprintf(h, "machine=%s/%d;params=%s;", c.Machine.Name, c.Machine.Nodes, pb)
	}
	for _, field := range workloadFields() {
		switch field {
		case "Trials":
			fmt.Fprintf(h, "trials=%d;", c.Trials)
		case "Quick":
			fmt.Fprintf(h, "quick=%t;", c.Scale == ScaleQuick)
		case "Faults":
			fmt.Fprintf(h, "faults=%s;", c.Faults)
		case "FaultSeed":
			fmt.Fprintf(h, "faultseed=%d;", c.FaultSeed)
		default:
			// Workload-shaping option jobspec cannot express yet: fold the
			// name in as a version marker (see package comment above).
			fmt.Fprintf(h, "unmapped=%s;", field)
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// workloadFields lists the In-classified fields of the experiments options
// struct in deterministic order.
func workloadFields() []string {
	var in []string
	for name, class := range fingerprint.Fields {
		if class == fingerprint.In {
			in = append(in, name)
		}
	}
	sort.Strings(in)
	return in
}
