package jobspec

import (
	"encoding/json"
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emuchick/internal/experiments"
	"emuchick/internal/kernels"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{
		Kernel:     "chase",
		Machine:    Machine{Name: "fullspeed", Nodes: 4},
		Params:     kernels.Params{Elems: 2048, Block: 8, Threads: 128},
		Trials:     2,
		Faults:     "chan=4@2",
		Parallel:   3,
		Checkpoint: CheckpointPolicy{Path: "/tmp/x.ckpt"},
		QoS:        QoS{CellTimeout: Duration(30 * time.Second), Retries: 2},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed the spec:\nin:  %+v\nout: %+v", in, out)
	}
	// The duration serializes human-readable, and numeric nanoseconds are
	// accepted on the way in.
	if !strings.Contains(string(b), `"cell_timeout": "30s"`) && !strings.Contains(string(b), `"cell_timeout":"30s"`) {
		t.Fatalf("cell_timeout not serialized as a duration string: %s", b)
	}
	var numeric Spec
	if err := json.Unmarshal([]byte(`{"kernel":"gups","qos":{"cell_timeout":1000000000}}`), &numeric); err != nil {
		t.Fatal(err)
	}
	if time.Duration(numeric.QoS.CellTimeout) != time.Second {
		t.Fatalf("numeric cell_timeout = %v, want 1s", time.Duration(numeric.QoS.CellTimeout))
	}
}

func TestValidate(t *testing.T) {
	bad := map[string]Spec{
		"no target":             {},
		"both targets":          {Experiment: "fig4", Kernel: "gups"},
		"unknown experiment":    {Experiment: "fig999"},
		"unknown kernel":        {Kernel: "linpack"},
		"unknown scale":         {Experiment: "fig4", Scale: "medium"},
		"negative trials":       {Experiment: "fig4", Trials: -1},
		"negative parallel":     {Experiment: "fig4", Parallel: -2},
		"bad fault grammar":     {Experiment: "fig4", Faults: "chan="},
		"unknown machine":       {Kernel: "gups", Machine: Machine{Name: "tpu"}},
		"bad strategy":          {Kernel: "stream", Params: kernels.Params{Strategy: "bogus"}},
		"bad shuffle mode":      {Kernel: "chase", Params: kernels.Params{Mode: "bogus"}},
		"bad spmv layout":       {Kernel: "spmv", Params: kernels.Params{Layout: "3d"}},
		"experiment w/ params":  {Experiment: "fig4", Params: kernels.Params{Threads: 4}},
		"experiment w/ machine": {Experiment: "fig4", Machine: Machine{Name: "hw"}},
	}
	for name, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", name, s)
		}
	}
	good := []Spec{
		{Experiment: "fig4"},
		{Experiment: "fig4", Scale: ScaleQuick, Trials: 2, Parallel: 4},
		{Kernel: "gups"},
		{Kernel: "stream", Machine: Machine{Name: "sim"}, Params: kernels.Params{Threads: 16}},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("rejected %+v: %v", s, err)
		}
	}
}

func TestCanonicalDefaults(t *testing.T) {
	c := Spec{Experiment: "fig4"}.Canonical()
	if c.Scale != ScaleFull || c.Trials != 10 {
		t.Fatalf("full experiment defaults: %+v", c)
	}
	q := Spec{Experiment: "fig4", Scale: ScaleQuick}.Canonical()
	if q.Trials != 3 {
		t.Fatalf("quick experiment trials = %d, want 3", q.Trials)
	}
	k := Spec{Kernel: "gups"}.Canonical()
	if k.Machine.Name != "hw" || k.Machine.Nodes != 1 || k.Trials != 1 {
		t.Fatalf("kernel machine defaults: %+v", k)
	}
	if k.Params != kernels.DefaultParams() {
		t.Fatalf("kernel params not defaulted: %+v", k.Params)
	}
	// An explicit asymmetric nodelet pair survives defaulting.
	pp := Spec{Kernel: "pingpong", Params: kernels.Params{NodeletA: 2}}.Canonical()
	if pp.Params.NodeletA != 2 || pp.Params.NodeletB != 0 {
		t.Fatalf("explicit nodelet pair overwritten: %+v", pp.Params)
	}
}

// TestFingerprintWorkloadSensitivity pins the content-address contract:
// workload-shaping fields move the fingerprint, drive-side fields do not,
// and defaultable forms collide with their canonical spelling.
func TestFingerprintWorkloadSensitivity(t *testing.T) {
	base := Spec{Experiment: "fig4"}
	fp := base.Fingerprint()

	same := map[string]Spec{
		"explicit full scale":     {Experiment: "fig4", Scale: ScaleFull},
		"explicit default trials": {Experiment: "fig4", Trials: 10},
		"parallel differs":        {Experiment: "fig4", Parallel: 7},
		"checkpoint differs":      {Experiment: "fig4", Checkpoint: CheckpointPolicy{Path: "x", Disable: true}},
		"qos differs":             {Experiment: "fig4", QoS: QoS{CellTimeout: Duration(time.Minute), Retries: 5}},
	}
	for name, s := range same {
		if got := s.Fingerprint(); got != fp {
			t.Errorf("%s: fingerprint moved (%s != %s) though the workload is identical", name, got, fp)
		}
	}
	diff := map[string]Spec{
		"quick scale":      {Experiment: "fig4", Scale: ScaleQuick},
		"other trials":     {Experiment: "fig4", Trials: 2},
		"faults":           {Experiment: "fig4", Faults: "chan=4@2"},
		"fault seed":       {Experiment: "fig4", Faults: "chan=4@2", FaultSeed: 9},
		"other experiment": {Experiment: "fig6"},
		"a kernel":         {Kernel: "gups"},
	}
	seen := map[string]string{"base": fp}
	for name, s := range diff {
		got := s.Fingerprint()
		for prev, prevFP := range seen {
			if got == prevFP {
				t.Errorf("%s collides with %s (%s)", name, prev, got)
			}
		}
		seen[name] = got
	}
	// Kernel jobs: params and machine are workload-shaping.
	kbase := Spec{Kernel: "gups"}.Fingerprint()
	if got := (Spec{Kernel: "gups", Params: kernels.DefaultParams()}).Fingerprint(); got != kbase {
		t.Errorf("explicit default params moved the kernel fingerprint")
	}
	if got := (Spec{Kernel: "gups", Params: kernels.Params{Updates: 99}}).Fingerprint(); got == kbase {
		t.Errorf("changed updates did not move the kernel fingerprint")
	}
	if got := (Spec{Kernel: "gups", Machine: Machine{Name: "fullspeed"}}).Fingerprint(); got == kbase {
		t.Errorf("changed machine did not move the kernel fingerprint")
	}
}

func TestFromFlagsSpec(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := FromFlags(fs, GroupSweep|GroupFaults|GroupCheckpoint|GroupQoS)
	err := fs.Parse([]string{
		"-trials", "4", "-quick", "-parallel", "2",
		"-faults", "chan=4@2", "-fault-seed", "7",
		"-checkpoint", "wal.ckpt", "-resume",
		"-cell-timeout", "45s", "-retries", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := f.Spec()
	if s.Trials != 4 || s.Scale != ScaleQuick || s.Parallel != 2 {
		t.Fatalf("sweep flags: %+v", s)
	}
	if s.Faults != "chan=4@2" || s.FaultSeed != 7 {
		t.Fatalf("fault flags: %+v", s)
	}
	if s.Checkpoint.Path != "wal.ckpt" || !f.Resume {
		t.Fatalf("checkpoint flags: %+v resume=%v", s.Checkpoint, f.Resume)
	}
	// -retries 0 means "no retries", which QoS encodes as -1 so the zero
	// value can keep meaning "default".
	if time.Duration(s.QoS.CellTimeout) != 45*time.Second || s.QoS.Retries != -1 {
		t.Fatalf("qos flags: %+v", s.QoS)
	}
	if got := s.Canonical().QoS.Retries; got != 0 {
		t.Fatalf("canonical retries = %d, want 0 (none)", got)
	}
}

// TestRunKernelMatchesDirectCall pins that the declarative path produces
// exactly what the typed entry point produces.
func TestRunKernelMatchesDirectCall(t *testing.T) {
	spec := Spec{
		Kernel: "gups",
		Params: kernels.Params{Elems: 64, Updates: 256, Threads: 8},
	}
	m, attempts, err := RunKernel(t.Context(), spec, nil)
	if err != nil || attempts != 1 {
		t.Fatalf("RunKernel: %v (attempts %d)", err, attempts)
	}
	k, cfg, params, err := spec.KernelPlan()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := k.Run(cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel != "gups" || len(m.Values) != len(direct.Values) {
		t.Fatalf("measurement shape: %+v vs %+v", m, direct)
	}
	for i := range m.Values {
		if m.Values[i] != direct.Values[i] {
			t.Fatalf("value %d differs: %v vs %v", i, m.Values[i], direct.Values[i])
		}
	}
}

// TestRecordReplayMeasurement covers the kernel WAL scheme: the completion
// marker is written last, so a log holding values but no marker (the torn
// signature of a kill mid-append) refuses to replay.
func TestRecordReplayMeasurement(t *testing.T) {
	spec := Spec{Kernel: "gups", Params: kernels.Params{Elems: 64, Updates: 256, Threads: 8}}
	k, _, _, err := spec.KernelPlan()
	if err != nil {
		t.Fatal(err)
	}
	m := kernels.Measurement{Kernel: "gups", Labels: k.Labels, Values: []float64{123, 456}}
	path := filepath.Join(t.TempDir(), "gups.ckpt")
	fp := spec.Fingerprint()

	ck, err := experiments.OpenCheckpoint(path, CheckpointID("gups"), fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ReplayMeasurement(ck, k); ok {
		t.Fatal("empty log replayed")
	}
	// Torn log: values recorded but the run died before the marker.
	for i, v := range m.Values {
		if err := ck.Record(0, i+1, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := ReplayMeasurement(ck, k); ok {
		t.Fatal("marker-less log replayed")
	}
	if err := ck.Record(0, 0, float64(len(m.Values))); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the complete vector replays; a different fingerprint refuses.
	ck2, err := experiments.OpenCheckpoint(path, CheckpointID("gups"), fp)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	got, ok := ReplayMeasurement(ck2, k)
	if !ok {
		t.Fatal("complete log did not replay")
	}
	if got.Values[0] != 123 || got.Values[1] != 456 || got.Kernel != "gups" {
		t.Fatalf("replayed %+v", got)
	}
	other := Spec{Kernel: "gups", Params: kernels.Params{Elems: 128, Updates: 256, Threads: 8}}
	if _, err := experiments.OpenCheckpoint(path, CheckpointID("gups"), other.Fingerprint()); err == nil {
		t.Fatal("log accepted under a different workload fingerprint")
	}
}
