package report

import (
	"strings"
	"testing"

	"emuchick/internal/metrics"
)

func sampleFigure() *metrics.Figure {
	emu := &metrics.Series{Name: "emu"}
	emu.Add(1, metrics.Aggregate([]float64{10}))
	emu.Add(8, metrics.Aggregate([]float64{80}))
	emu.Add(64, metrics.Aggregate([]float64{100}))
	xeon := &metrics.Series{Name: "xeon"}
	xeon.Add(1, metrics.Aggregate([]float64{50}))
	xeon.Add(64, metrics.Aggregate([]float64{60}))
	return &metrics.Figure{
		ID: "figX", Title: "demo", XLabel: "threads", YLabel: "MB/s",
		Series: []*metrics.Series{emu, xeon},
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("a", "long_header", "c")
	tab.AddRow("1", "2")
	tab.AddRow("wide_cell_here", "3", "4")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "long_header") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule line %q", lines[1])
	}
	if tab.Rows() != 2 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	// Columns align: "long_header" and "3" start at the same offset.
	h := strings.Index(lines[0], "long_header")
	if lines[2][h] == ' ' && lines[2][h-1] != ' ' {
		t.Fatal("column misaligned")
	}
}

func TestFigureCSV(t *testing.T) {
	var b strings.Builder
	if err := FigureCSV(&b, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+5 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "figure,series,x,mean,min,max,stddev,trials,failed" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "figX,emu,1,10,") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestFigureTable(t *testing.T) {
	tab := FigureTable(sampleFigure())
	out := tab.String()
	if !strings.Contains(out, "threads") || !strings.Contains(out, "emu") || !strings.Contains(out, "xeon") {
		t.Fatalf("missing headers:\n%s", out)
	}
	// xeon has no point at x=8: rendered as "-".
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "8 ") && strings.Contains(line, "-") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-point dash absent:\n%s", out)
	}
}

func TestAsciiChart(t *testing.T) {
	out := AsciiChart(sampleFigure(), 40, 8)
	if !strings.Contains(out, "figX") || !strings.Contains(out, "o = emu") || !strings.Contains(out, "x = xeon") {
		t.Fatalf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "log scale") {
		t.Fatalf("64:1 x range should use log scale:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("no marks plotted")
	}
}

func TestAsciiChartEmpty(t *testing.T) {
	f := &metrics.Figure{ID: "e", Series: []*metrics.Series{{Name: "none"}}}
	if out := AsciiChart(f, 10, 2); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output %q", out)
	}
}

func TestAsciiChartClampsSize(t *testing.T) {
	out := AsciiChart(sampleFigure(), 1, 1) // clamped to minimums
	if len(out) == 0 {
		t.Fatal("no output")
	}
}
