package report

import (
	"strings"
	"testing"
)

func TestFigureJSONRoundTrip(t *testing.T) {
	orig := sampleFigure()
	orig.XTicks = map[float64]string{1: "one"}
	var b strings.Builder
	if err := FigureJSON(&b, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFigureJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != orig.ID || back.Title != orig.Title || len(back.Series) != len(orig.Series) {
		t.Fatalf("metadata lost: %+v", back)
	}
	for i, s := range orig.Series {
		bs := back.Series[i]
		if bs.Name != s.Name || len(bs.Points) != len(s.Points) {
			t.Fatalf("series %d shape lost", i)
		}
		for j, p := range s.Points {
			bp := bs.Points[j]
			if bp.X != p.X || bp.Stats.Mean != p.Stats.Mean || bp.Stats.N != p.Stats.N {
				t.Fatalf("point %d/%d lost: %+v vs %+v", i, j, bp, p)
			}
		}
	}
	if back.XTicks[1] != "one" {
		t.Fatal("ticks lost")
	}
}

func TestParseFigureJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseFigureJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
