// Package report renders benchmark output: fixed-width tables mirroring
// the rows each paper figure plots, CSV for external plotting, and a plain
// ASCII line chart so the shape of a figure is visible directly in a
// terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"emuchick/internal/metrics"
)

// Table is a simple fixed-width text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		n, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		total += int64(n)
		return err
	}
	if err := line(t.headers); err != nil {
		return total, err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return total, err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		// strings.Builder never errors; this guards future Writer swaps.
		panic(err)
	}
	return b.String()
}

// FigureCSV renders a figure as CSV with one row per (series, point). An
// all-failed point renders empty moment cells (not zeros), with the failed
// column carrying the lost-trial count.
func FigureCSV(w io.Writer, f *metrics.Figure) error {
	if _, err := fmt.Fprintf(w, "figure,series,x,mean,min,max,stddev,trials,failed\n"); err != nil {
		return err
	}
	csvNum := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return fmt.Sprintf("%g", v)
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			_, err := fmt.Fprintf(w, "%s,%s,%g,%s,%s,%s,%s,%d,%d\n",
				f.ID, s.Name, p.X, csvNum(p.Stats.Mean), csvNum(p.Stats.Min),
				csvNum(p.Stats.Max), csvNum(p.Stats.StdDev), p.Stats.N, p.Stats.Failed)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// FigureTable renders a figure as a table with one column per series.
func FigureTable(f *metrics.Figure) *Table {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(headers...)
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		label := formatX(x)
		if name, ok := f.XTicks[x]; ok {
			label = name
		}
		row := []string{label}
		for _, s := range f.Series {
			st, err := s.At(x)
			switch {
			case err != nil:
				row = append(row, "-")
			case st.N == 0 && st.Failed > 0:
				row = append(row, "FAIL")
			default:
				row = append(row, fmt.Sprintf("%.2f", st.Mean))
			}
		}
		t.AddRow(row...)
	}
	return t
}

func formatX(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// AsciiChart renders the figure's series means as a log-x line chart of the
// given size. It is intentionally crude — the point is to eyeball shapes
// (plateaus, dips, crossings) without leaving the terminal.
func AsciiChart(f *metrics.Figure, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var xs []float64
	var ymax float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if math.IsNaN(p.Stats.Mean) {
				continue // all-failed hole: no position on the chart
			}
			xs = append(xs, p.X)
			if p.Stats.Mean > ymax {
				ymax = p.Stats.Mean
			}
		}
	}
	if len(xs) == 0 || ymax <= 0 {
		return "(no data)\n"
	}
	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		if x < xmin {
			xmin = x
		}
		if x > xmax {
			xmax = x
		}
	}
	logScale := xmin > 0 && xmax/xmin >= 8
	xpos := func(x float64) int {
		if xmax == xmin {
			return 0
		}
		var frac float64
		if logScale {
			frac = (math.Log2(x) - math.Log2(xmin)) / (math.Log2(xmax) - math.Log2(xmin))
		} else {
			frac = (x - xmin) / (xmax - xmin)
		}
		col := int(frac*float64(width-1) + 0.5)
		if col < 0 {
			col = 0
		}
		if col > width-1 {
			col = width - 1
		}
		return col
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			if math.IsNaN(p.Stats.Mean) {
				continue
			}
			row := height - 1 - int(p.Stats.Mean/ymax*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row > height-1 {
				row = height - 1
			}
			grid[row][xpos(p.X)] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (y: %s, max %.4g)", f.ID, f.Title, f.YLabel, ymax)
	if f.Incomplete {
		b.WriteString(" [INCOMPLETE]")
	}
	b.WriteByte('\n')
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+-" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "  x: %s from %s to %s", f.XLabel, formatX(xmin), formatX(xmax))
	if logScale {
		b.WriteString(" (log scale)")
	}
	b.WriteByte('\n')
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
