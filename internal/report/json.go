package report

import (
	"encoding/json"
	"io"
	"math"

	"emuchick/internal/metrics"
)

// jsonFigure is the stable on-disk schema for a regenerated figure.
type jsonFigure struct {
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	XLabel     string       `json:"x_label"`
	YLabel     string       `json:"y_label"`
	Incomplete bool         `json:"incomplete,omitempty"`
	Series     []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Name   string      `json:"name"`
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	X      float64 `json:"x"`
	XLabel string  `json:"x_tick,omitempty"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
	Trials int     `json:"trials"`
	// Failed counts trials that produced no value (watchdog-killed or dead
	// simulations). A point with Trials == 0 and Failed > 0 is a hole: its
	// moments are written as 0 (JSON has no NaN) and restored to NaN on
	// parse, with Failed preserving the distinction from a real zero.
	Failed int `json:"failed,omitempty"`
}

// FigureJSON writes the figure as indented JSON, the machine-readable
// companion to FigureCSV for archiving runs in EXPERIMENTS.md workflows.
func FigureJSON(w io.Writer, f *metrics.Figure) error {
	out := jsonFigure{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel, Incomplete: f.Incomplete}
	for _, s := range f.Series {
		js := jsonSeries{Name: s.Name}
		for _, p := range s.Points {
			js.Points = append(js.Points, jsonPoint{
				X:      p.X,
				XLabel: f.XTicks[p.X],
				Mean:   finiteOrZero(p.Stats.Mean),
				Min:    finiteOrZero(p.Stats.Min),
				Max:    finiteOrZero(p.Stats.Max),
				StdDev: finiteOrZero(p.Stats.StdDev),
				Trials: p.Stats.N,
				Failed: p.Stats.Failed,
			})
		}
		out.Series = append(out.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// finiteOrZero maps the NaN moments of an all-failed point to 0 for JSON
// (which cannot represent NaN); Failed > 0 with Trials == 0 marks the hole.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// ParseFigureJSON reads a figure previously written by FigureJSON.
func ParseFigureJSON(r io.Reader) (*metrics.Figure, error) {
	var in jsonFigure
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	f := &metrics.Figure{ID: in.ID, Title: in.Title, XLabel: in.XLabel, YLabel: in.YLabel, Incomplete: in.Incomplete}
	for _, js := range in.Series {
		s := &metrics.Series{Name: js.Name}
		for _, p := range js.Points {
			st := metrics.Stats{
				N: p.Trials, Mean: p.Mean, Min: p.Min, Max: p.Max, StdDev: p.StdDev, Failed: p.Failed,
			}
			if st.N == 0 && st.Failed > 0 {
				st.Mean, st.Min, st.Max, st.StdDev = math.NaN(), math.NaN(), math.NaN(), math.NaN()
			}
			s.Points = append(s.Points, metrics.Point{X: p.X, Stats: st})
			if p.XLabel != "" {
				if f.XTicks == nil {
					f.XTicks = map[float64]string{}
				}
				f.XTicks[p.X] = p.XLabel
			}
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}
