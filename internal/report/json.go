package report

import (
	"encoding/json"
	"io"

	"emuchick/internal/metrics"
)

// jsonFigure is the stable on-disk schema for a regenerated figure.
type jsonFigure struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Name   string      `json:"name"`
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	X      float64 `json:"x"`
	XLabel string  `json:"x_tick,omitempty"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
	Trials int     `json:"trials"`
}

// FigureJSON writes the figure as indented JSON, the machine-readable
// companion to FigureCSV for archiving runs in EXPERIMENTS.md workflows.
func FigureJSON(w io.Writer, f *metrics.Figure) error {
	out := jsonFigure{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		js := jsonSeries{Name: s.Name}
		for _, p := range s.Points {
			js.Points = append(js.Points, jsonPoint{
				X:      p.X,
				XLabel: f.XTicks[p.X],
				Mean:   p.Stats.Mean,
				Min:    p.Stats.Min,
				Max:    p.Stats.Max,
				StdDev: p.Stats.StdDev,
				Trials: p.Stats.N,
			})
		}
		out.Series = append(out.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ParseFigureJSON reads a figure previously written by FigureJSON.
func ParseFigureJSON(r io.Reader) (*metrics.Figure, error) {
	var in jsonFigure
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	f := &metrics.Figure{ID: in.ID, Title: in.Title, XLabel: in.XLabel, YLabel: in.YLabel}
	for _, js := range in.Series {
		s := &metrics.Series{Name: js.Name}
		for _, p := range js.Points {
			s.Points = append(s.Points, metrics.Point{
				X: p.X,
				Stats: metrics.Stats{
					N: p.Trials, Mean: p.Mean, Min: p.Min, Max: p.Max, StdDev: p.StdDev,
				},
			})
			if p.XLabel != "" {
				if f.XTicks == nil {
					f.XTicks = map[float64]string{}
				}
				f.XTicks[p.X] = p.XLabel
			}
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}
