package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"emuchick/internal/sim"
)

func TestResultBandwidth(t *testing.T) {
	r := Result{Bytes: 1e6, Elapsed: sim.Millisecond}
	if got := r.BytesPerSec(); got != 1e9 {
		t.Fatalf("BytesPerSec = %v", got)
	}
	if got := r.MBps(); got != 1000 {
		t.Fatalf("MBps = %v", got)
	}
	if got := r.GBps(); got != 1 {
		t.Fatalf("GBps = %v", got)
	}
	if (Result{Bytes: 100, Elapsed: 0}).BytesPerSec() != 0 {
		t.Fatal("zero elapsed should yield zero bandwidth")
	}
}

func TestAggregate(t *testing.T) {
	s := Aggregate([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if z := Aggregate(nil); z.N != 0 || z.Mean != 0 {
		t.Fatal("empty aggregate not zero")
	}
	one := Aggregate([]float64{5})
	if one.StdDev != 0 || one.Mean != 5 {
		t.Fatalf("single sample stats = %+v", one)
	}
}

func TestTrials(t *testing.T) {
	var seen []int
	s := Trials(4, func(i int) float64 {
		seen = append(seen, i)
		return float64(i)
	})
	if len(seen) != 4 || seen[0] != 0 || seen[3] != 3 {
		t.Fatalf("trial indices = %v", seen)
	}
	if s.Mean != 1.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Trials(0) did not panic")
		}
	}()
	Trials(0, func(int) float64 { return 0 })
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "emu"}
	s.Add(1, Aggregate([]float64{10}))
	s.Add(2, Aggregate([]float64{30}))
	s.Add(4, Aggregate([]float64{20}))
	if s.MaxMean() != 30 {
		t.Fatalf("MaxMean = %v", s.MaxMean())
	}
	st, err := s.At(2)
	if err != nil || st.Mean != 30 {
		t.Fatalf("At(2) = %+v, %v", st, err)
	}
	if _, err := s.At(99); err == nil {
		t.Fatal("missing point not reported")
	}
	if (&Series{}).MaxMean() != 0 {
		t.Fatal("empty MaxMean != 0")
	}
}

// Regression: At used exact float equality, so an x that arrived through
// arithmetic (0.1+0.2, unit conversions) missed the nominally present point.
func TestSeriesAtTolerance(t *testing.T) {
	s := &Series{Name: "emu"}
	s.Add(0.3, Aggregate([]float64{10}))
	s.Add(1e9, Aggregate([]float64{20}))
	if st, err := s.At(0.1 + 0.2); err != nil || st.Mean != 10 {
		t.Fatalf("At(0.1+0.2) = %+v, %v — computed x missed the 0.3 point", st, err)
	}
	// Relative tolerance: 1e9 reached via arithmetic that loses a few ULPs.
	if st, err := s.At(1e9 * (1 + 1e-12)); err != nil || st.Mean != 20 {
		t.Fatalf("At(1e9+eps) = %+v, %v", st, err)
	}
	// Distinct sweep points stay distinct.
	if _, err := s.At(0.31); err == nil {
		t.Fatal("At(0.31) matched the 0.3 point — tolerance too loose")
	}
}

func TestFigureFindSeries(t *testing.T) {
	f := &Figure{ID: "fig5", Series: []*Series{{Name: "a"}, {Name: "b"}}}
	if f.FindSeries("b") == nil {
		t.Fatal("existing series not found")
	}
	if f.FindSeries("c") != nil {
		t.Fatal("phantom series found")
	}
}

// Property: Min <= Mean <= Max, StdDev >= 0, and aggregation is invariant
// under permutation.
func TestAggregateInvariantsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		s := Aggregate(vals)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 || s.StdDev < 0 {
			return false
		}
		// Reverse and re-aggregate.
		rev := make([]float64, len(vals))
		for i := range vals {
			rev[i] = vals[len(vals)-1-i]
		}
		r := Aggregate(rev)
		return math.Abs(r.Mean-s.Mean) < 1e-9 && r.Min == s.Min && r.Max == s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
