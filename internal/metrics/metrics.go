// Package metrics holds the measurement vocabulary of the reproduction:
// bandwidth results, multi-trial statistics (the paper reports "the average
// memory bandwidth ... over ten trials"), and labelled series suitable for
// regenerating each figure's curves.
package metrics

import (
	"fmt"
	"math"

	"emuchick/internal/sim"
)

// Result is one timed benchmark run: how many useful bytes moved in how
// much simulated time.
type Result struct {
	Bytes   int64
	Elapsed sim.Time
}

// BytesPerSec reports the measured bandwidth.
func (r Result) BytesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds()
}

// MBps reports bandwidth in decimal megabytes per second, the unit most of
// the paper's plots use.
func (r Result) MBps() float64 { return r.BytesPerSec() / 1e6 }

// GBps reports bandwidth in decimal gigabytes per second.
func (r Result) GBps() float64 { return r.BytesPerSec() / 1e9 }

// Stats summarizes a set of trial measurements. Failed counts trials that
// produced no value (a NaN hole left by a watchdog-killed or deadlocked
// simulation); N counts only the trials that did.
type Stats struct {
	N                      int
	Mean, Min, Max, StdDev float64
	Failed                 int
}

// Aggregate reduces trial values to summary statistics. An empty input
// yields a zero Stats. NaN entries are failed trials: they are counted in
// Failed and excluded from the moments, and a point whose every trial
// failed carries NaN moments (rendered as a hole, never as a zero that
// could be mistaken for a measurement).
func Aggregate(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	var s Stats
	var sum float64
	for _, v := range values {
		if math.IsNaN(v) {
			s.Failed++
			continue
		}
		if s.N == 0 || v < s.Min {
			s.Min = v
		}
		if s.N == 0 || v > s.Max {
			s.Max = v
		}
		s.N++
		sum += v
	}
	if s.N == 0 {
		if s.Failed > 0 {
			s.Mean, s.Min, s.Max, s.StdDev = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		}
		return s
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		d := v - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Trials runs f once per trial index and aggregates the returned values.
// The paper uses ten trials per data point; callers pass the trial index
// through to their workload seeds so trials differ deterministically.
func Trials(n int, f func(trial int) float64) Stats {
	if n <= 0 {
		panic("metrics: trial count must be positive")
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = f(i)
	}
	return Aggregate(values)
}

// Point is one x position of a figure curve.
type Point struct {
	X     float64 // the swept parameter (threads, block size, matrix size)
	Stats Stats   // trial statistics of the measured metric at X
}

// Series is one labelled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x float64, st Stats) {
	s.Points = append(s.Points, Point{X: x, Stats: st})
}

// MaxMean reports the largest mean across the series' points (used for
// "peak measured bandwidth" normalization in Fig. 8).
func (s *Series) MaxMean() float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Stats.Mean > best {
			best = p.Stats.Mean
		}
	}
	return best
}

// At returns the stats at the given x, or an error if the series has no
// such point. Matching uses a relative tolerance rather than exact float
// equality: x positions often arrive through arithmetic (unit conversions,
// ratios of sweep parameters) whose rounding would otherwise make a
// nominally present point unfindable.
func (s *Series) At(x float64) (Stats, error) {
	for _, p := range s.Points {
		if sameX(p.X, x) {
			return p.Stats, nil
		}
	}
	return Stats{}, fmt.Errorf("metrics: series %q has no point at x=%v", s.Name, x)
}

// sameX compares x positions with a relative tolerance (absolute near zero).
func sameX(a, b float64) bool {
	const tol = 1e-9
	diff := math.Abs(a - b)
	if scale := math.Max(math.Abs(a), math.Abs(b)); scale > 1 {
		return diff <= tol*scale
	}
	return diff <= tol
}

// Figure is a regenerated paper artifact: a set of curves plus axis labels.
type Figure struct {
	ID     string // e.g. "fig5"
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	// XTicks optionally names x positions for categorical "figures"
	// (the scalar-anchor tables); nil for ordinary numeric sweeps.
	XTicks map[float64]string
	// Incomplete marks a figure assembled around failed cells: at least one
	// point lost trials to a watchdog kill or a simulation death, so holes
	// (NaN moments, Failed counts) stand in for measurements.
	Incomplete bool
}

// MarkIncomplete sets Incomplete if any point of any series recorded failed
// trials, and reports the result.
func (f *Figure) MarkIncomplete() bool {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Stats.Failed > 0 {
				f.Incomplete = true
				return true
			}
		}
	}
	return f.Incomplete
}

// FindSeries returns the named series, or nil.
func (f *Figure) FindSeries(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}
