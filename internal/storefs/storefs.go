// Package storefs is the storage seam of the serving stack: the small
// filesystem interface every durable write of the job server — job records,
// the content-addressed result cache, and the checkpoint write-ahead logs —
// goes through. Production code uses the OS implementation; internal/chaos
// provides a seeded fault-injecting implementation of the same interface, so
// torn writes, ENOSPC, sync failures, rename failures, and kill-at-an-
// arbitrary-write crashes can be replayed deterministically in tests.
//
// The interface is deliberately tiny — create/write/sync/rename/remove plus
// the read side — because every durability argument the server makes reduces
// to those operations: atomic record replacement is create+write+sync+rename,
// WAL appends are open+write, torn-tail recovery is truncate.
package storefs

import (
	"io"
	"io/fs"
	"os"
)

// File is an open handle for writing — the subset of *os.File the store and
// the checkpoint WAL use.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (used to drop torn WAL tails).
	Truncate(size int64) error
	// Seek positions the next Write.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem the serving stack's durable state lives on. Paths are
// ordinary OS paths; implementations wrap a real directory tree.
type FS interface {
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// OpenFile opens path for read/write, creating it when absent — the WAL
	// open mode (O_CREATE|O_RDWR).
	OpenFile(path string) (File, error)
	// ReadFile returns path's full contents.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(path string) ([]fs.DirEntry, error)
	// Stat describes a path.
	Stat(path string) (fs.FileInfo, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
}

// OS is the real filesystem.
type OS struct{}

// Default is the FS used when a caller passes nil.
var Default FS = OS{}

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}

func (OS) ReadFile(path string) ([]byte, error)      { return os.ReadFile(path) }
func (OS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (OS) Stat(path string) (fs.FileInfo, error)      { return os.Stat(path) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error                   { return os.Remove(path) }
