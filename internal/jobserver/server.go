// Package jobserver is the engine behind cmd/emuserved: a long-running
// simulation service that accepts declarative jobspec requests, multiplexes
// them across a shared bounded worker pool, and serves results from a
// content-addressed cache. It is the ROADMAP's "simulation as a service"
// assembled from the pieces PRs 1-6 built:
//
//   - jobspec.Fingerprint gives every request a content address; finished
//     results are cached under it in memory and on disk, and identical
//     requests — concurrent ones included, via single-flight following —
//     are served without re-simulating.
//   - The PR-4 checkpoint WAL becomes the per-job durable store: every
//     accepted job persists its record and streams completed sweep cells to
//     its own log, so a killed server resumes every in-flight job on
//     restart with byte-identical figures.
//   - PR-4 watchdogs/retries arrive per job through the jobspec QoS block,
//     and the engine Interrupt hook (PR 2) gives cancellation: DELETE
//     cancels one job, shutdown preempts all of them resumably.
package jobserver

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"emuchick/internal/experiments"
	"emuchick/internal/jobspec"
	"emuchick/internal/kernels"
	"emuchick/internal/metrics"
	"emuchick/internal/report"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is the externally visible job record — the JSON the API serves and
// the store persists.
type Job struct {
	ID   string       `json:"id"`
	Key  string       `json:"key"` // content address of Spec (jobspec fingerprint)
	Spec jobspec.Spec `json:"spec"`
	// State is the lifecycle phase; Source says where a done job's result
	// came from: "simulated", "cache", or "resumed" (simulated, but
	// completed across a server restart from the job's WAL).
	State  State  `json:"state"`
	Source string `json:"source,omitempty"`
	// Cells counts sweep cells recorded to the job's WAL so far — the
	// job's progress signal.
	Cells int `json:"cells,omitempty"`
	// Restarts counts server restarts this job survived.
	Restarts int    `json:"restarts,omitempty"`
	Error    string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Target names what the job runs, for logs and results.
func (r Job) Target() string {
	if r.Spec.Experiment != "" {
		return "experiment:" + r.Spec.Experiment
	}
	return "kernel:" + r.Spec.Kernel
}

// Result is the stable JSON schema of a finished job's payload, stored
// verbatim in the content-addressed cache (so identical requests receive
// byte-identical bytes).
type Result struct {
	Key     string            `json:"key"`
	Target  string            `json:"target"`
	Figures []json.RawMessage `json:"figures,omitempty"`
	// Measurement is the labelled value vector of a kernel job.
	Measurement *kernels.Measurement `json:"measurement,omitempty"`
}

// Stats is the server's job accounting. Simulated counts jobs whose result
// came from actually running simulations; CacheHits counts jobs served from
// the content-addressed cache instead. The cache contract in one line:
// resubmitting an identical spec must bump CacheHits, never Simulated.
type Stats struct {
	Submitted int `json:"submitted"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	Simulated int `json:"simulated"`
	CacheHits int `json:"cache_hits"`
	// Resumed counts jobs re-enqueued at boot that had WAL progress from a
	// previous server life.
	Resumed int `json:"resumed"`
	// Shed counts submits refused by admission control (queue depth,
	// in-flight byte budget, or drain). A shed request allocates nothing: no
	// job id, no record, no Submitted increment — it appears only here.
	Shed int `json:"shed"`
	// WatchTimeouts counts /watch streams the server closed because the
	// client could not drain an update within the write deadline.
	WatchTimeouts int `json:"watch_timeouts"`
}

// OverloadError is the typed refusal admission control returns from Submit;
// the HTTP layer maps it to 503 with a Retry-After header.
type OverloadError struct {
	// Reason says which limit refused the request ("queue full",
	// "in-flight byte budget exhausted", or "draining").
	Reason string
	// RetryAfter is the backoff hint surfaced in the Retry-After header.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return "jobserver: overloaded: " + e.Reason
}

// Config parameterizes a Server.
type Config struct {
	// DataDir is the durable root (job records, WALs, result cache).
	DataDir string
	// Workers bounds how many jobs simulate concurrently (<= 0: 2).
	Workers int
	// ParallelPerJob is the sweep worker count given to jobs whose spec
	// does not set one (<= 0: 1); Workers × ParallelPerJob is the server's
	// simulation CPU budget.
	ParallelPerJob int
	// QueueDepth bounds the pending backlog; submits beyond it are shed
	// with an OverloadError (<= 0: 1024).
	QueueDepth int
	// MaxInflightBytes bounds the total encoded-spec bytes of admitted jobs
	// that have not yet reached a terminal state; submits that would exceed
	// it are shed (<= 0: unlimited).
	MaxInflightBytes int64
	// RetryAfter is the backoff hint attached to shed submits
	// (<= 0: 1 second).
	RetryAfter time.Duration
	// WatchWriteTimeout is the per-update write deadline of the /watch
	// NDJSON stream; a client that cannot drain an update within it has its
	// stream closed, with the drop recorded in Stats.WatchTimeouts
	// (<= 0: 10 seconds).
	WatchWriteTimeout time.Duration
	// FS is the filesystem all durable state is written through (nil: the
	// real one). Tests inject a chaos.FS here.
	FS FS
	// CellHook, when non-nil, observes every job progress update — each
	// checkpointed sweep cell as it lands. Tests use it as a deterministic
	// mid-sweep trigger.
	CellHook func(jobID string, cells int)
	// Logf, when non-nil, receives server log lines.
	Logf func(format string, args ...any)
}

// job pairs the persisted record with the runtime state the server needs.
type job struct {
	mu      sync.Mutex
	rec     Job
	version int
	ping    chan struct{} // closed and replaced on every update
	cancel  context.CancelFunc
	// admitted is the byte charge this job holds against the server's
	// in-flight budget; guarded by Server.mu, not job.mu.
	admitted int64
	// saveMu serializes persists of this job's record (the submitter and a
	// worker can both save moments apart; both write the same .tmp path).
	saveMu sync.Mutex
}

func newJob(rec Job) *job {
	return &job{rec: rec, ping: make(chan struct{})}
}

// snapshot returns a copy of the record and its version.
func (j *job) snapshot() (Job, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec, j.version
}

// set mutates the record, bumps the version, and wakes watchers.
func (j *job) set(f func(*Job)) Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	f(&j.rec)
	j.version++
	close(j.ping)
	j.ping = make(chan struct{})
	return j.rec
}

// changed returns a channel that is closed once the job's version differs
// from the given one (immediately, if it already does).
func (j *job) changed(version int) <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.version != version {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return j.ping
}

// Server is the simulation job service.
type Server struct {
	cfg   Config
	store *store

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string            // submission order
	active    map[string]string   // fingerprint -> in-flight leader job id
	followers map[string][]string // leader id -> identical jobs awaiting its result
	cache     map[string][]byte   // fingerprint -> result bytes (backed by disk)
	stats     Stats
	seq       int
	inflight  int64 // encoded-spec bytes of admitted, non-terminal jobs

	draining atomic.Bool // set by BeginDrain; flips /readyz and sheds submits

	queue  chan *job
	root   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New opens (or creates) the data directory, re-enqueues every job that was
// queued or running when the previous server died, and starts the worker
// pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.ParallelPerJob <= 0 {
		cfg.ParallelPerJob = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.WatchWriteTimeout <= 0 {
		cfg.WatchWriteTimeout = 10 * time.Second
	}
	st, err := newStore(cfg.DataDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		store:     st,
		jobs:      map[string]*job{},
		active:    map[string]string{},
		followers: map[string][]string{},
		cache:     map[string][]byte{},
		queue:     make(chan *job, cfg.QueueDepth),
	}
	s.root, s.cancel = context.WithCancel(context.Background())

	recs, err := st.loadJobs()
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if n, ok := parseJobID(rec.ID); ok && n > s.seq {
			s.seq = n
		}
		j := newJob(rec)
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		s.stats.Submitted++
		switch rec.State {
		case StateDone:
			s.stats.Completed++
		case StateFailed:
			s.stats.Failed++
		case StateCanceled:
			s.stats.Canceled++
		case StateQueued, StateRunning:
			// Interrupted by the previous server's death: resume. The WAL
			// replays every completed cell, so the rerun is byte-identical
			// to an uninterrupted one.
			if st.hasCheckpoint(rec.ID) {
				s.stats.Resumed++
			}
			rec = j.set(func(r *Job) {
				r.State = StateQueued
				r.Restarts++
				r.Error = ""
			})
			if err := st.saveJob(rec); err != nil {
				return nil, err
			}
			s.chargeLocked(j, specCost(rec.Spec))
			s.enqueueLocked(j)
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.logf("jobserver: %d workers, %d jobs loaded (%d re-enqueued)", cfg.Workers, len(recs), s.stats.Queued)
	return s, nil
}

// saveJob persists a job's record. Saves of one job are serialized and each
// snapshots at write time, so whichever writer lands last persists the
// newest state — a submitter racing the worker can never overwrite a later
// transition with an earlier one, and the two can never collide on the
// record's temp file.
func (s *Server) saveJob(j *job) error {
	j.saveMu.Lock()
	defer j.saveMu.Unlock()
	rec, _ := j.snapshot()
	return s.store.saveJob(rec)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func parseJobID(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// Close preempts every running job (their WALs keep all finished cells) and
// stops the worker pool. Interrupted jobs persist as queued, so the next
// New on the same data directory resumes them.
func (s *Server) Close() error {
	s.cancel()
	s.wg.Wait()
	return nil
}

// Submit validates and enqueues one request, returning the accepted job
// record. A request whose fingerprint already has a cached result completes
// immediately as a cache hit; one identical to an in-flight job follows
// that job instead of simulating twice.
//
// Admission control runs before anything is allocated: a request that would
// push the pending backlog past QueueDepth or the admitted-spec bytes past
// MaxInflightBytes — and every request during drain — is shed with an
// *OverloadError, leaving no job id, no record, and no stats trace beyond
// Stats.Shed. Cache hits and single-flight followers consume neither queue
// slots nor budget, so they are admitted even at saturation.
func (s *Server) Submit(spec jobspec.Spec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	key := spec.Fingerprint()
	cost := specCost(spec)

	s.mu.Lock()
	if s.draining.Load() {
		return Job{}, s.shedLocked("draining")
	}
	_, cached := s.cachedResultLocked(key)
	_, following := s.active[key]
	if !cached && !following {
		if s.stats.Queued >= s.cfg.QueueDepth {
			return Job{}, s.shedLocked("queue full")
		}
		if s.cfg.MaxInflightBytes > 0 && s.inflight+cost > s.cfg.MaxInflightBytes {
			return Job{}, s.shedLocked("in-flight byte budget exhausted")
		}
	}
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	rec := Job{
		ID: id, Key: key, Spec: spec,
		State: StateQueued, SubmittedAt: time.Now().UTC(),
	}
	j := newJob(rec)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.stats.Submitted++

	// Content-addressed cache: identical request already answered.
	if cached {
		s.stats.CacheHits++
		s.stats.Completed++
		s.mu.Unlock()
		rec = j.set(func(r *Job) {
			r.State = StateDone
			r.Source = "cache"
			now := time.Now().UTC()
			r.FinishedAt = &now
		})
		err := s.saveJob(j)
		s.logf("jobserver: %s %s served from cache (key %s)", id, rec.Target(), key)
		return rec, err
	}
	// Single-flight: identical request currently in flight.
	if leader, ok := s.active[key]; ok {
		s.followers[leader] = append(s.followers[leader], id)
		s.mu.Unlock()
		err := s.saveJob(j)
		s.logf("jobserver: %s follows in-flight %s (key %s)", id, leader, key)
		return rec, err
	}
	s.active[key] = id
	s.chargeLocked(j, cost)
	if !s.enqueueLocked(j) {
		// Unreachable while QueueDepth == cap(s.queue) and Queued mirrors
		// channel occupancy, but kept as a backstop: fail the record rather
		// than lose it.
		delete(s.active, key)
		s.releaseLocked(j)
		s.stats.Failed++
		s.mu.Unlock()
		rec = j.set(func(r *Job) {
			r.State = StateFailed
			r.Error = "job queue full"
			now := time.Now().UTC()
			r.FinishedAt = &now
		})
		_ = s.saveJob(j)
		return rec, fmt.Errorf("jobserver: queue full (%d pending)", cap(s.queue))
	}
	s.mu.Unlock()
	err := s.saveJob(j)
	s.logf("jobserver: %s accepted %s (key %s)", id, rec.Target(), key)
	return rec, err
}

// shedLocked records one refused submit and builds its error. Caller holds
// s.mu; the lock is released here so shed paths can simply return.
func (s *Server) shedLocked(reason string) error {
	s.stats.Shed++
	s.mu.Unlock()
	s.logf("jobserver: submit shed: %s", reason)
	return &OverloadError{Reason: reason, RetryAfter: s.cfg.RetryAfter}
}

// specCost is the admission charge of one request: the size of its encoded
// spec, the same bytes the store persists.
func specCost(spec jobspec.Spec) int64 {
	b, err := json.Marshal(spec)
	if err != nil {
		return 1
	}
	return int64(len(b))
}

// chargeLocked charges a freshly admitted leader against the in-flight byte
// budget. Caller holds s.mu (or is the single-threaded boot path).
func (s *Server) chargeLocked(j *job, cost int64) {
	j.admitted = cost
	s.inflight += cost
}

// releaseLocked returns a job's admission charge; idempotent. Caller holds
// s.mu.
func (s *Server) releaseLocked(j *job) {
	s.inflight -= j.admitted
	j.admitted = 0
}

// BeginDrain flips the server into drain mode: /readyz starts failing and
// every new submit is shed, while queued and running jobs keep executing.
// Call it ahead of Close so front-ends stop routing before the listener
// goes away.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.logf("jobserver: draining (submits shed, %d jobs in flight)", s.Stats().Queued+s.Stats().Running)
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InflightBytes reports the admitted-spec bytes currently charged against
// the budget (tests assert it returns to zero).
func (s *Server) InflightBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// enqueueLocked pushes a job onto the bounded queue. Caller holds s.mu.
func (s *Server) enqueueLocked(j *job) bool {
	select {
	case s.queue <- j:
		s.stats.Queued++
		return true
	default:
		return false
	}
}

// Get returns one job's snapshot.
func (s *Server) Get(id string) (Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	rec, _ := j.snapshot()
	return rec, true
}

// List returns every job snapshot in submission order.
func (s *Server) List() []Job {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Job, 0, len(ids))
	for _, id := range ids {
		if rec, ok := s.Get(id); ok {
			out = append(out, rec)
		}
	}
	return out
}

// Stats returns the current job accounting.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResultBytes returns a done job's result payload.
func (s *Server) ResultBytes(id string) ([]byte, error) {
	rec, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("jobserver: unknown job %q", id)
	}
	if rec.State != StateDone {
		return nil, fmt.Errorf("jobserver: job %s is %s, not done", id, rec.State)
	}
	s.mu.Lock()
	data, ok := s.cachedResultLocked(rec.Key)
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("jobserver: job %s result missing from cache", id)
	}
	return data, nil
}

// Cancel cancels a queued or running job.
func (s *Server) Cancel(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("jobserver: unknown job %q", id)
	}
	j.mu.Lock()
	state := j.rec.State
	cancel := j.cancel
	j.mu.Unlock()
	switch state {
	case StateRunning:
		// The engine Interrupt hook aborts the in-flight simulation; the
		// worker records the terminal state.
		if cancel != nil {
			cancel()
		}
	case StateQueued:
		rec := j.set(func(r *Job) {
			r.State = StateCanceled
			r.Error = "canceled before start"
			now := time.Now().UTC()
			r.FinishedAt = &now
		})
		s.mu.Lock()
		s.stats.Canceled++
		if s.active[rec.Key] == id {
			delete(s.active, rec.Key)
		}
		s.releaseLocked(j)
		s.mu.Unlock()
		s.promoteFollowers(id)
		if err := s.saveJob(j); err != nil {
			return rec, err
		}
	}
	rec, _ := j.snapshot()
	return rec, nil
}

// WaitChanged returns a channel closed when the job's state advances past
// the given version (used by the wait/watch endpoints).
func (s *Server) WaitChanged(id string, version int) (<-chan struct{}, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.changed(version), true
}

// Snapshot returns the record plus its version for watch loops.
func (s *Server) Snapshot(id string) (Job, int, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, 0, false
	}
	rec, v := j.snapshot()
	return rec, v, true
}

// cachedResultLocked consults the in-memory cache, falling back to (and
// re-populating from) the disk cache. Caller holds s.mu.
func (s *Server) cachedResultLocked(key string) ([]byte, bool) {
	if data, ok := s.cache[key]; ok {
		return data, true
	}
	if data, ok := s.store.loadResult(key); ok {
		s.cache[key] = data
		return data, true
	}
	return nil, false
}

// worker drains the queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.root.Done():
			return
		case j := <-s.queue:
			s.mu.Lock()
			s.stats.Queued--
			s.mu.Unlock()
			s.runJob(j)
		}
	}
}

// runJob drives one job to a terminal state (or back to queued on server
// shutdown).
func (s *Server) runJob(j *job) {
	rec, _ := j.snapshot()
	if rec.State != StateQueued {
		return // canceled while waiting in the queue
	}
	ctx, cancel := context.WithCancel(s.root)
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()

	s.mu.Lock()
	s.stats.Running++
	s.mu.Unlock()
	rec = j.set(func(r *Job) {
		r.State = StateRunning
		now := time.Now().UTC()
		r.StartedAt = &now
	})
	_ = s.saveJob(j)

	// A follower promoted after its leader failed — or a request submitted
	// while an identical one was finishing — may find the answer cached by
	// now.
	s.mu.Lock()
	data, hit := s.cachedResultLocked(rec.Key)
	s.mu.Unlock()
	if hit {
		s.finish(j, func(st *Stats) { st.CacheHits++ }, func(r *Job) {
			r.State = StateDone
			r.Source = "cache"
		})
		s.settleFollowers(j, data)
		return
	}

	data, err := s.execute(ctx, j, rec)
	if err != nil {
		switch {
		case s.root.Err() != nil:
			// Server shutdown: park the job back in the queue state; its
			// WAL keeps every finished cell and the next boot resumes it.
			s.mu.Lock()
			s.stats.Running--
			s.mu.Unlock()
			prec := j.set(func(r *Job) {
				r.State = StateQueued
				r.Error = ""
			})
			_ = s.saveJob(j)
			s.logf("jobserver: %s interrupted by shutdown (%d cells durable)", rec.ID, prec.Cells)
		case ctx.Err() != nil:
			s.finish(j, func(st *Stats) { st.Canceled++ }, func(r *Job) {
				r.State = StateCanceled
				r.Error = "canceled"
			})
			s.settleFollowers(j, nil)
		default:
			s.finish(j, func(st *Stats) { st.Failed++ }, func(r *Job) {
				r.State = StateFailed
				r.Error = err.Error()
			})
			s.settleFollowers(j, nil)
			s.logf("jobserver: %s failed: %v", rec.ID, err)
		}
		return
	}

	s.mu.Lock()
	s.cache[rec.Key] = data
	s.mu.Unlock()
	if err := s.store.saveResult(rec.Key, data); err != nil {
		s.logf("jobserver: %s result not persisted: %v", rec.ID, err)
	}
	source := "simulated"
	if rec.Restarts > 0 {
		source = "resumed"
	}
	s.finish(j, func(st *Stats) { st.Simulated++ }, func(r *Job) {
		r.State = StateDone
		r.Source = source
	})
	s.settleFollowers(j, data)
	s.logf("jobserver: %s done (%s, key %s)", rec.ID, source, rec.Key)
}

// finish moves a running job to a terminal state and updates accounting,
// returning the job's admission charge to the in-flight budget.
func (s *Server) finish(j *job, bump func(*Stats), mut func(*Job)) {
	rec := j.set(func(r *Job) {
		mut(r)
		now := time.Now().UTC()
		r.FinishedAt = &now
	})
	s.mu.Lock()
	s.stats.Running--
	if rec.State == StateDone {
		s.stats.Completed++
	}
	bump(&s.stats)
	s.releaseLocked(j)
	s.mu.Unlock()
	_ = s.saveJob(j)
}

// settleFollowers resolves the single-flight group after its leader reached
// a terminal state: with a result, every follower completes as a cache hit;
// without one, the first follower is promoted to a fresh leader and
// re-enqueued (the rest keep following it).
func (s *Server) settleFollowers(j *job, data []byte) {
	rec, _ := j.snapshot()
	s.mu.Lock()
	if s.active[rec.Key] == rec.ID {
		delete(s.active, rec.Key)
	}
	ids := s.followers[rec.ID]
	delete(s.followers, rec.ID)
	s.mu.Unlock()
	if len(ids) == 0 {
		return
	}
	if data != nil {
		for _, id := range ids {
			s.mu.Lock()
			f, ok := s.jobs[id]
			s.stats.CacheHits++
			s.stats.Completed++
			s.mu.Unlock()
			if !ok {
				continue
			}
			f.set(func(r *Job) {
				r.State = StateDone
				r.Source = "cache"
				now := time.Now().UTC()
				r.FinishedAt = &now
			})
			_ = s.saveJob(f)
		}
		return
	}
	s.promoteFollowers(rec.ID)
	// Re-enqueue the promoted leader through the normal path.
	s.mu.Lock()
	if leader, ok := s.active[rec.Key]; ok {
		if lj, exists := s.jobs[leader]; exists {
			if !s.enqueueLocked(lj) {
				delete(s.active, rec.Key)
			}
		}
	}
	s.mu.Unlock()
}

// promoteFollowers makes the first follower of the given (terminal) leader
// the new active leader for its key. Caller must not hold s.mu.
func (s *Server) promoteFollowers(leaderID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := s.followers[leaderID]
	if len(ids) == 0 {
		delete(s.followers, leaderID)
		return
	}
	delete(s.followers, leaderID)
	next := ids[0]
	if j, ok := s.jobs[next]; ok {
		rec, _ := j.snapshot()
		s.active[rec.Key] = next
		if len(ids) > 1 {
			s.followers[next] = ids[1:]
		}
		// A promoted follower inherits its leader's admission: it was
		// accepted as a follower (free), so the charge lands now, without a
		// fresh admission check — admitted work is never shed retroactively.
		s.chargeLocked(j, specCost(rec.Spec))
		s.enqueueLocked(j)
	}
}

// onCells is the per-job progress sink, fed by the checkpoint hook.
func (s *Server) onCells(j *job, cells int) {
	rec := j.set(func(r *Job) { r.Cells = cells })
	if s.cfg.CellHook != nil {
		s.cfg.CellHook(rec.ID, cells)
	}
}

// execute runs the simulation behind one job and encodes its result.
func (s *Server) execute(ctx context.Context, j *job, rec Job) ([]byte, error) {
	spec := rec.Spec
	if spec.Experiment != "" {
		e, err := experiments.ByID(spec.Experiment)
		if err != nil {
			return nil, err
		}
		opts, err := spec.Options()
		if err != nil {
			return nil, err
		}
		if spec.Parallel <= 0 {
			opts = append(opts, experiments.WithParallel(s.cfg.ParallelPerJob))
		}
		if !spec.Checkpoint.Disable {
			opts = append(opts,
				experiments.WithCheckpoint(s.store.ckptPath(rec.ID)),
				experiments.WithCheckpointFS(s.store.fs),
				experiments.WithCheckpointHook(func(recorded int) { s.onCells(j, recorded) }),
			)
		}
		opts = append(opts, experiments.WithContext(ctx))
		figs, err := e.Run(opts...)
		if err != nil {
			return nil, err
		}
		return encodeResult(rec.Key, rec.Target(), figs, nil)
	}

	k, err := kernels.ByName(spec.Kernel)
	if err != nil {
		return nil, err
	}
	var ck *experiments.Checkpoint
	if !spec.Checkpoint.Disable {
		ck, err = experiments.OpenCheckpointIn(
			s.store.fs, s.store.ckptPath(rec.ID), jobspec.CheckpointID(spec.Kernel), rec.Key)
		if err != nil {
			return nil, err
		}
		defer ck.Close()
		if m, ok := jobspec.ReplayMeasurement(ck, k); ok {
			s.onCells(j, len(m.Values))
			return encodeResult(rec.Key, rec.Target(), nil, &m)
		}
	}
	m, _, err := jobspec.RunKernel(ctx, spec, nil)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		if err := jobspec.RecordMeasurement(ck, m); err != nil {
			return nil, err
		}
	}
	s.onCells(j, len(m.Values))
	return encodeResult(rec.Key, rec.Target(), nil, &m)
}

// encodeResult renders the stable result payload. Figures serialize through
// report.FigureJSON — the same bytes emubench -outdir archives — so the
// cache (and the kill-and-restart contract) can be checked by byte
// comparison.
func encodeResult(key, target string, figs []*metrics.Figure, m *kernels.Measurement) ([]byte, error) {
	out := Result{Key: key, Target: target, Measurement: m}
	for _, fig := range figs {
		var buf jsonBuffer
		if err := report.FigureJSON(&buf, fig); err != nil {
			return nil, err
		}
		out.Figures = append(out.Figures, json.RawMessage(buf.b))
	}
	return json.Marshal(out)
}

// jsonBuffer is a minimal io.Writer over a byte slice.
type jsonBuffer struct{ b []byte }

func (w *jsonBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
