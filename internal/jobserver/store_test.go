package jobserver

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// seedDataDir lays out an empty store directory tree for tests that plant
// corrupt files before the first boot.
func seedDataDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, sub := range []string{"jobs", "ckpt", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// writeFile plants one file in the seeded data directory.
func writeFile(t *testing.T, dir string, parts ...string) func(data string) {
	t.Helper()
	path := filepath.Join(append([]string{dir}, parts...)...)
	return func(data string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreRefusesCorruptJobRecords: damaged job records — unparsable JSON,
// or a record naming a different job than its filename — load as refused
// failed jobs. The rest of the store boots and serves normally; one damaged
// file never takes the server down.
func TestStoreRefusesCorruptJobRecords(t *testing.T) {
	goodSpec := quickKernel()
	good := Job{
		ID: "j000003", Key: goodSpec.Fingerprint(), Spec: goodSpec,
		State: StateDone, Source: "simulated", SubmittedAt: time.Now().UTC(),
	}
	goodJSON, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, id, data string
		wantErr        string
	}{
		{"truncated-json", "j000001", `{"id":"j000001","state":"run`, "unparsable record"},
		{"binary-garbage", "j000002", "\x00\x7fELF not json", "unparsable record"},
		{"foreign-id", "j000004", strings.Replace(string(goodJSON), "j000003", "j000099", 1), `names job "j000099"`},
	}

	dir := seedDataDir(t)
	writeFile(t, dir, "jobs", good.ID+".json")(string(goodJSON))
	for _, tc := range cases {
		writeFile(t, dir, "jobs", tc.id+".json")(tc.data)
	}

	srv := newTestServer(t, Config{DataDir: dir})
	defer srv.Close()

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, ok := srv.Get(tc.id)
			if !ok {
				t.Fatalf("corrupt record %s not loaded at all", tc.id)
			}
			if rec.State != StateFailed {
				t.Fatalf("corrupt record loaded as %s, want failed", rec.State)
			}
			if !strings.HasPrefix(rec.Error, "refused: corrupt job record") || !strings.Contains(rec.Error, tc.wantErr) {
				t.Fatalf("refusal error %q does not name the damage (%q)", rec.Error, tc.wantErr)
			}
		})
	}
	// The intact neighbor is untouched and the server still takes work.
	if rec, ok := srv.Get(good.ID); !ok || rec.State != StateDone {
		t.Fatalf("intact record alongside corrupt ones: %+v, %v", rec, ok)
	}
	sub, err := srv.Submit(quickKernel())
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, srv, sub.ID); got.State != StateDone {
		t.Fatalf("submit after corrupt boot ended %s: %s", got.State, got.Error)
	}
}

// TestStoreRefusesCorruptResults: a cached result that is truncated, carries
// a foreign key, or is not JSON at all is a cache miss — the job
// re-simulates and overwrites it — never served.
func TestStoreRefusesCorruptResults(t *testing.T) {
	spec := quickKernel()
	key := spec.Fingerprint()
	cases := []struct {
		name, data string
	}{
		{"truncated", `{"key":"` + key + `","target":"kernel:g`},
		{"foreign-key", `{"key":"somebody-else","target":"kernel:gups"}`},
		{"not-json", "not a result at all"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := seedDataDir(t)
			writeFile(t, dir, "results", key+".json")(tc.data)
			srv := newTestServer(t, Config{DataDir: dir})
			defer srv.Close()

			rec, err := srv.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			done := waitTerminal(t, srv, rec.ID)
			if done.State != StateDone || done.Source != "simulated" {
				t.Fatalf("job with corrupt cache entry finished %s/%s: %s", done.State, done.Source, done.Error)
			}
			if stats := srv.Stats(); stats.CacheHits != 0 || stats.Simulated != 1 {
				t.Fatalf("stats = %+v: corrupt cache entry must not count as a hit", stats)
			}
			// The re-simulated result has healed the cache file.
			b, err := os.ReadFile(filepath.Join(dir, "results", key+".json"))
			if err != nil {
				t.Fatal(err)
			}
			var res Result
			if err := json.Unmarshal(b, &res); err != nil || res.Key != key {
				t.Fatalf("cache entry not healed: %q, %v", b, err)
			}
		})
	}
}

// TestStoreRefusesForeignCheckpoint: a re-enqueued job whose WAL was written
// under a different fingerprint fails with a structured refusal instead of
// resuming from incompatible cells (or crashing).
func TestStoreRefusesForeignCheckpoint(t *testing.T) {
	spec := quickKernel()
	rec := Job{
		ID: "j000001", Key: spec.Fingerprint(), Spec: spec,
		State: StateQueued, SubmittedAt: time.Now().UTC(),
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	dir := seedDataDir(t)
	writeFile(t, dir, "jobs", rec.ID+".json")(string(b))
	writeFile(t, dir, "ckpt", rec.ID+".ckpt")(
		`{"type":"header","exp":"kernel:gups","fp":"0123456789abcdef"}` + "\n")

	srv := newTestServer(t, Config{DataDir: dir})
	defer srv.Close()
	done := waitTerminal(t, srv, rec.ID)
	if done.State != StateFailed {
		t.Fatalf("job with foreign checkpoint ended %s, want failed", done.State)
	}
	if !strings.Contains(done.Error, "checkpoint") || !strings.Contains(done.Error, "0123456789abcdef") {
		t.Fatalf("refusal error %q does not name the foreign checkpoint", done.Error)
	}
}

// TestStoreSweepsOrphanTempFiles: .tmp leftovers of interrupted atomic
// writes are removed at boot, and never surface as jobs or results.
func TestStoreSweepsOrphanTempFiles(t *testing.T) {
	dir := seedDataDir(t)
	writeFile(t, dir, "jobs", "j000009.json.tmp")(`{"id":"j000009"`)
	writeFile(t, dir, "results", "feedface.json.tmp")(`{"key":"feed`)

	srv := newTestServer(t, Config{DataDir: dir})
	defer srv.Close()
	for _, p := range []string{
		filepath.Join(dir, "jobs", "j000009.json.tmp"),
		filepath.Join(dir, "results", "feedface.json.tmp"),
	} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the boot sweep", p)
		}
	}
	if _, ok := srv.Get("j000009"); ok {
		t.Fatal("orphan temp file surfaced as a job")
	}
}
