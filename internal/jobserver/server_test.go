package jobserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emuchick/internal/jobspec"
	"emuchick/internal/kernels"
)

// quickExperiment is the standing e2e workload: small enough for CI, large
// enough to have several sweep cells to checkpoint.
func quickExperiment() jobspec.Spec {
	return jobspec.Spec{Experiment: "fig4", Scale: jobspec.ScaleQuick, Trials: 1, Parallel: 2}
}

func quickKernel() jobspec.Spec {
	return jobspec.Spec{Kernel: "gups", Params: kernels.Params{Elems: 64, Updates: 256, Threads: 8}}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	cfg.Logf = t.Logf
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// postJob submits a spec over HTTP and decodes the accepted record.
func postJob(t *testing.T, url string, spec jobspec.Spec) Job {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var rec Job
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// waitDone long-polls /wait until the job is terminal.
func waitDone(t *testing.T, url, id string) Job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id + "/wait?timeout=5s")
		if err != nil {
			t.Fatal(err)
		}
		var rec Job
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rec.State.terminal() {
			return rec
		}
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func getResult(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, b)
	}
	return b
}

// TestServeSubmitPollResultCacheHit is the tentpole e2e: submit over HTTP,
// poll to completion, fetch the result, then resubmit the identical spec and
// require a cache hit — same bytes, no second simulation.
func TestServeSubmitPollResultCacheHit(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, ParallelPerJob: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rec := postJob(t, ts.URL, quickExperiment())
	if rec.State != StateQueued {
		t.Fatalf("accepted state = %s", rec.State)
	}
	done := waitDone(t, ts.URL, rec.ID)
	if done.State != StateDone || done.Source != "simulated" {
		t.Fatalf("job finished %s/%s: %s", done.State, done.Source, done.Error)
	}
	if done.Cells == 0 {
		t.Fatal("no WAL progress reported for a checkpointed job")
	}
	first := getResult(t, ts.URL, rec.ID)
	var res Result
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if res.Key != rec.Key || res.Target != "experiment:fig4" || len(res.Figures) == 0 {
		t.Fatalf("result payload: key=%s target=%s figures=%d", res.Key, res.Target, len(res.Figures))
	}

	// Identical resubmit: served from the content-addressed cache without
	// re-simulating — the job accounting is the proof.
	rec2 := postJob(t, ts.URL, quickExperiment())
	done2 := waitDone(t, ts.URL, rec2.ID)
	if done2.State != StateDone || done2.Source != "cache" {
		t.Fatalf("resubmit finished %s/%s", done2.State, done2.Source)
	}
	if rec2.Key != rec.Key {
		t.Fatalf("identical specs got different keys: %s vs %s", rec.Key, rec2.Key)
	}
	second := getResult(t, ts.URL, rec2.ID)
	if !bytes.Equal(first, second) {
		t.Fatal("cache served different bytes")
	}
	stats := srv.Stats()
	if stats.Simulated != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats = %+v, want exactly 1 simulated + 1 cache hit", stats)
	}

	// A different workload must not hit the cache key.
	other := quickExperiment()
	other.Faults = "chan=4@2"
	if rec3 := postJob(t, ts.URL, other); rec3.Key == rec.Key {
		t.Fatal("different workload shares the cache key")
	}
}

// TestServeKernelJobAndDiscovery covers kernel jobs plus the discovery and
// status endpoints.
func TestServeKernelJobAndDiscovery(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, ep := range []string{"/v1/healthz", "/v1/stats", "/v1/kernels", "/v1/experiments", "/v1/jobs"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s: %s", ep, resp.Status, body)
		}
		if ep == "/v1/kernels" && !strings.Contains(string(body), "gups") {
			t.Fatalf("kernel listing missing gups: %s", body)
		}
	}

	rec := postJob(t, ts.URL, quickKernel())
	done := waitDone(t, ts.URL, rec.ID)
	if done.State != StateDone {
		t.Fatalf("kernel job %s: %s", done.State, done.Error)
	}
	var res Result
	if err := json.Unmarshal(getResult(t, ts.URL, rec.ID), &res); err != nil {
		t.Fatal(err)
	}
	if res.Target != "kernel:gups" || res.Measurement == nil || len(res.Measurement.Values) == 0 {
		t.Fatalf("kernel result: %+v", res)
	}

	// Invalid specs are rejected with 400 before touching the queue.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig4","kernel":"gups"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %s", resp.Status)
	}
}

// TestSingleFlightFollowers: two identical specs in flight at once simulate
// once; the follower completes from the leader's result.
func TestSingleFlightFollowers(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, ParallelPerJob: 2})
	defer srv.Close()

	a, err := srv.Submit(quickExperiment())
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Submit(quickExperiment())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID} {
		waitTerminal(t, srv, id)
	}
	stats := srv.Stats()
	if stats.Simulated != 1 || stats.CacheHits != 1 || stats.Completed != 2 {
		t.Fatalf("stats = %+v, want 1 simulated, 1 cache hit, 2 completed", stats)
	}
	ra, err := srv.ResultBytes(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := srv.ResultBytes(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, rb) {
		t.Fatal("follower result differs from leader result")
	}
}

func waitTerminal(t *testing.T, srv *Server, id string) Job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		rec, _, ok := srv.Snapshot(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if rec.State.terminal() {
			return rec
		}
		ch, _ := srv.WaitChanged(id, 0)
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
		}
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

// TestCancelQueuedJob: a job canceled while waiting in the queue never runs.
// The single worker is parked inside the first job's cell hook, so the
// second job is deterministically still queued when the DELETE lands.
func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	srv := newTestServer(t, Config{
		Workers:        1,
		ParallelPerJob: 1,
		CellHook: func(id string, cells int) {
			once.Do(func() { close(started) })
			<-block
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first, err := srv.Submit(quickExperiment())
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now wedged mid-sweep on job one
	// A different workload, so it queues behind the first instead of
	// following it.
	second, err := srv.Submit(quickKernel())
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+second.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, _ := srv.Get(second.ID); got.State != StateCanceled {
		t.Fatalf("canceled job is %s", got.State)
	}
	close(block)
	if got := waitTerminal(t, srv, first.ID); got.State != StateDone {
		t.Fatalf("first job ended %s: %s", got.State, got.Error)
	}
	if got := waitTerminal(t, srv, second.ID); got.State != StateCanceled {
		t.Fatalf("canceled job ran anyway: %s", got.State)
	}
	if stats := srv.Stats(); stats.Canceled != 1 || stats.Simulated != 1 {
		t.Fatalf("stats = %+v, want 1 canceled + 1 simulated", stats)
	}
}

// TestKillRestartResumeByteIdentical is the durability contract end to end:
// a server killed mid-sweep resumes the job from its WAL on the next boot,
// and the figures are byte-identical to a run that was never interrupted.
func TestKillRestartResumeByteIdentical(t *testing.T) {
	dataDir := t.TempDir()
	spec := quickExperiment()
	spec.Parallel = 1 // deterministic cell order for the interrupt trigger

	// Uninterrupted reference run in a separate data directory.
	ref := newTestServer(t, Config{Workers: 1})
	refRec, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, ref, refRec.ID); got.State != StateDone {
		t.Fatalf("reference run ended %s: %s", got.State, got.Error)
	}
	want, err := ref.ResultBytes(refRec.ID)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	// Interrupted run: kill the server once a few cells are in the WAL.
	var (
		once    sync.Once
		stopped = make(chan struct{})
	)
	var srv *Server
	srv = newTestServer(t, Config{
		DataDir: dataDir,
		Workers: 1,
		CellHook: func(id string, cells int) {
			if cells < 3 {
				return
			}
			// Close blocks until workers exit, so it must not run on the
			// worker goroutine delivering this hook.
			once.Do(func() {
				go func() {
					srv.Close()
					close(stopped)
				}()
			})
			// Hold the worker here until shutdown has actually begun:
			// Close cancels the root context first, the hook then returns,
			// and the sweep's next poll point parks the job back to
			// queued. Without this the remaining cells can outrun the
			// asynchronous Close and finish the job before the kill lands.
			<-srv.root.Done()
		},
	})
	rec, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stopped:
	case <-time.After(2 * time.Minute):
		t.Fatal("server did not die on the cell trigger")
	}
	if got, _ := srv.Get(rec.ID); got.State != StateQueued {
		t.Fatalf("interrupted job persisted as %s, want queued", got.State)
	}

	// Restart on the same data directory: the job is re-enqueued, resumes
	// from its WAL, and completes byte-identically.
	srv2 := newTestServer(t, Config{DataDir: dataDir, Workers: 1})
	defer srv2.Close()
	if stats := srv2.Stats(); stats.Resumed != 1 {
		t.Fatalf("boot stats = %+v, want 1 resumed", stats)
	}
	done := waitTerminal(t, srv2, rec.ID)
	if done.State != StateDone || done.Source != "resumed" || done.Restarts != 1 {
		t.Fatalf("resumed job: %+v (%s)", done, done.Error)
	}
	got, err := srv2.ResultBytes(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripKey(t, want), stripKey(t, got)) {
		t.Fatalf("resumed result differs from uninterrupted run:\nwant: %s\ngot:  %s", want, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("resumed result not byte-identical")
	}
}

// stripKey re-encodes a result without its key so a mismatch error shows
// whether figures (not just addressing) diverged; byte equality is still
// asserted on the raw payloads.
func stripKey(t *testing.T, data []byte) []byte {
	t.Helper()
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	r.Key = ""
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParseJobID pins the sequence recovery used at boot.
func TestParseJobID(t *testing.T) {
	if n, ok := parseJobID(fmt.Sprintf("j%06d", 42)); !ok || n != 42 {
		t.Fatalf("parseJobID = %d, %v", n, ok)
	}
	if _, ok := parseJobID("job-42"); ok {
		t.Fatal("malformed id parsed")
	}
}
