package jobserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emuchick/internal/chaos"
	"emuchick/internal/jobspec"
)

// The crash-restart fuzz harness. For each seed, the whole mixed workload
// runs against a chaos filesystem that kills itself at a seeded storage
// operation — freezing the directory exactly as a SIGKILL mid-write would —
// then a healthy server restarts on the survivors and the workload is
// resubmitted. The property under test: no crash point exists at which the
// final result bytes differ from an uninterrupted run, and no crash point
// leaves a corrupt cache entry or panics the server. Content addressing is
// what makes the property checkable: resubmitting a spec either revives the
// surviving state (records re-enqueue, WALs replay, cache hits) or
// re-simulates from scratch, and both roads must end at identical bytes.

// chaosWorkload is the mixed fuzz workload: one checkpointed experiment
// sweep and one kernel measurement. Parallel 1 keeps the per-job storage-op
// schedule deterministic.
func chaosWorkload() []jobspec.Spec {
	exp := quickExperiment()
	exp.Parallel = 1
	return []jobspec.Spec{exp, quickKernel()}
}

// referenceResults runs the workload uninterrupted on a pristine server and
// returns fingerprint -> result bytes.
func referenceResults(t *testing.T) map[string][]byte {
	t.Helper()
	srv := newTestServer(t, Config{Workers: 1})
	defer srv.Close()
	out := map[string][]byte{}
	for _, spec := range chaosWorkload() {
		rec, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := waitTerminal(t, srv, rec.ID); got.State != StateDone {
			t.Fatalf("reference job ended %s: %s", got.State, got.Error)
		}
		b, err := srv.ResultBytes(rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		out[rec.Key] = b
	}
	return out
}

// workloadOps measures how many storage operations the full workload costs,
// bounding the seeded kill points.
func workloadOps(t *testing.T) int {
	t.Helper()
	fsys := chaos.New(chaos.Plan{}, nil)
	srv := newTestServer(t, Config{Workers: 1, FS: fsys})
	defer srv.Close()
	runWorkload(t, srv)
	ops := fsys.Ops()
	if ops < 4 {
		t.Fatalf("workload cost only %d storage ops", ops)
	}
	return ops
}

// runWorkload submits every spec and drives each submitted job to a
// terminal state. Submit and wait errors are tolerated — under injected
// faults both are legitimate outcomes — but every job that exists must
// still terminate rather than wedge.
func runWorkload(t *testing.T, srv *Server) {
	t.Helper()
	var ids []string
	for _, spec := range chaosWorkload() {
		rec, _ := srv.Submit(spec) // error ≠ lost: the record (if any) still terminates
		if rec.ID != "" {
			ids = append(ids, rec.ID)
		}
	}
	for _, id := range ids {
		waitTerminal(t, srv, id)
	}
}

// validateResultsDir asserts the no-corrupt-cache invariant: every visible
// result file parses and matches its content address. Orphan .tmp files are
// legal (they are the signature of an interrupted atomic write, swept at
// the next boot); a torn or foreign .json is not.
func validateResultsDir(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		t.Fatal(err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, "results", name))
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := json.Unmarshal(b, &res); err != nil {
			t.Fatalf("corrupt cache entry %s: %v", name, err)
		}
		if res.Key != strings.TrimSuffix(name, ".json") {
			t.Fatalf("cache entry %s addressed as %q", name, res.Key)
		}
	}
}

// TestChaosKillRestartFuzz is the acceptance property over arbitrary crash
// points: for every seed, kill the filesystem at a seeded storage op, then
// prove a restarted server answers the same workload with bytes identical
// to the uninterrupted run.
func TestChaosKillRestartFuzz(t *testing.T) {
	want := referenceResults(t)
	maxOp := workloadOps(t)
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			dir := t.TempDir()
			fsys := chaos.New(chaos.KillPlan(seed, maxOp), nil)
			srv := newTestServer(t, Config{DataDir: dir, Workers: 1, FS: fsys})
			runWorkload(t, srv)
			srv.Close()
			t.Logf("seed %d: killed at op %d (fired=%v, %d ops total)",
				seed, chaos.KillOp(seed, maxOp), fsys.Crashed(), fsys.Ops())

			// The frozen directory must already satisfy the cache invariant.
			validateResultsDir(t, dir)

			// Restart on the survivors with a healthy disk; resubmit the
			// workload and demand byte-identical answers.
			srv2 := newTestServer(t, Config{DataDir: dir, Workers: 1})
			defer srv2.Close()
			for _, spec := range chaosWorkload() {
				rec, err := srv2.Submit(spec)
				if err != nil {
					t.Fatalf("post-restart submit: %v", err)
				}
				if got := waitTerminal(t, srv2, rec.ID); got.State != StateDone {
					t.Fatalf("post-restart job ended %s: %s", got.State, got.Error)
				}
				got, err := srv2.ResultBytes(rec.ID)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want[rec.Key], got) {
					t.Fatalf("crash at seeded op diverged for %s:\nwant: %s\ngot:  %s",
						rec.Key, want[rec.Key], got)
				}
			}
			validateResultsDir(t, dir)
		})
	}
}

// TestChaosFaultOutcomes drives the workload through persistently noisy
// storage — periodic torn writes, ENOSPC, sync and rename failures — and
// checks the degradation contract: every job reaches a terminal state, every
// failure carries a structured error, the cache never holds a corrupt entry,
// and a healthy restart serves the exact reference bytes.
func TestChaosFaultOutcomes(t *testing.T) {
	want := referenceResults(t)
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			fsys := chaos.New(chaos.NoisyPlan(seed, 5), nil)
			srv := newTestServer(t, Config{DataDir: dir, Workers: 1, FS: fsys})
			runWorkload(t, srv)
			if len(fsys.Injected()) == 0 {
				t.Fatal("noisy plan injected nothing")
			}
			for _, rec := range srv.List() {
				if !rec.State.terminal() {
					t.Fatalf("job %s wedged as %s under storage faults", rec.ID, rec.State)
				}
				if rec.State == StateFailed && rec.Error == "" {
					t.Fatalf("job %s failed without a structured error", rec.ID)
				}
			}
			srv.Close()
			validateResultsDir(t, dir)

			srv2 := newTestServer(t, Config{DataDir: dir, Workers: 1})
			defer srv2.Close()
			for _, spec := range chaosWorkload() {
				rec, err := srv2.Submit(spec)
				if err != nil {
					t.Fatalf("post-fault submit: %v", err)
				}
				if got := waitTerminal(t, srv2, rec.ID); got.State != StateDone {
					t.Fatalf("post-fault job ended %s: %s", got.State, got.Error)
				}
				got, err := srv2.ResultBytes(rec.ID)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want[rec.Key], got) {
					t.Fatalf("faulty-disk run diverged for %s", rec.Key)
				}
			}
		})
	}
}
