package jobserver

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"emuchick/internal/jobspec"
	"emuchick/internal/kernels"
)

// thirdSpec is a workload distinct from quickExperiment and quickKernel, so
// overload tests can submit three different fingerprints.
func thirdSpec() jobspec.Spec {
	return jobspec.Spec{Kernel: "gups", Params: kernels.Params{Elems: 128, Updates: 256, Threads: 8}}
}

// postRaw submits a spec and returns the raw response without asserting the
// status, for tests that expect shedding.
func postRaw(t *testing.T, url string, spec jobspec.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wedgeHook returns a CellHook that parks every worker on the returned
// channel, pinning whatever job is running until the test closes it.
func wedgeHook() (func(string, int), chan struct{}) {
	block := make(chan struct{})
	return func(string, int) { <-block }, block
}

// TestOverloadShedsWithRetryAfter saturates a depth-1 queue and proves the
// shed contract: 503 + Retry-After on the wire, Stats.Shed accounting, no
// phantom jobs — and full recovery once the backlog drains.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	hook, block := wedgeHook()
	srv := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 3 * time.Second,
		CellHook:   hook,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Job one wedges the only worker mid-sweep; job two fills the queue.
	first := postJob(t, ts.URL, quickExperiment())
	second := postJob(t, ts.URL, quickKernel())

	// Queue saturated: a third distinct workload is shed.
	resp := postRaw(t, ts.URL, thirdSpec())
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit: %s: %s", resp.Status, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}
	if !strings.Contains(body, "queue full") {
		t.Fatalf("shed body %q does not name the reason", body)
	}
	// An identical resubmit of an in-flight spec is a follower — admitted
	// even at saturation, since it consumes no queue slot.
	follower := postJob(t, ts.URL, quickExperiment())

	stats := srv.Stats()
	if stats.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", stats.Shed)
	}
	if stats.Submitted != 3 {
		t.Fatalf("Submitted = %d, want 3 (the shed request must not be counted)", stats.Submitted)
	}
	if _, ok := srv.Get("j000004"); ok {
		t.Fatal("shed request allocated a job id")
	}

	// Drain the backlog and recover: the shed spec is accepted now.
	close(block)
	for _, id := range []string{first.ID, second.ID, follower.ID} {
		if got := waitTerminal(t, srv, id); got.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, got.State, got.Error)
		}
	}
	retried := postJob(t, ts.URL, thirdSpec())
	if got := waitDone(t, ts.URL, retried.ID); got.State != StateDone {
		t.Fatalf("post-drain submit ended %s: %s", got.State, got.Error)
	}

	// Exact accounting across the whole episode: 4 accepted (one of them a
	// single-flight cache hit), 3 simulated, 1 shed, nothing lost or
	// double-counted, and the byte budget fully returned.
	stats = srv.Stats()
	if stats.Submitted != 4 || stats.Completed != 4 || stats.Simulated != 3 || stats.CacheHits != 1 || stats.Shed != 1 {
		t.Fatalf("final stats = %+v", stats)
	}
	if stats.Queued != 0 || stats.Running != 0 {
		t.Fatalf("residual queue accounting: %+v", stats)
	}
	if got := srv.InflightBytes(); got != 0 {
		t.Fatalf("InflightBytes = %d after all jobs terminal, want 0", got)
	}
}

// TestOverloadByteBudget: the in-flight byte budget sheds fresh work but
// never followers, and is returned in full when jobs finish.
func TestOverloadByteBudget(t *testing.T) {
	hook, block := wedgeHook()
	srv := newTestServer(t, Config{
		Workers:          1,
		MaxInflightBytes: specCost(quickExperiment()), // room for exactly one leader
		CellHook:         hook,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	leader := postJob(t, ts.URL, quickExperiment())
	if got := srv.InflightBytes(); got != specCost(quickExperiment()) {
		t.Fatalf("InflightBytes = %d, want the leader's cost %d", got, specCost(quickExperiment()))
	}

	resp := postRaw(t, ts.URL, quickKernel())
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "byte budget") {
		t.Fatalf("over-budget submit: %s: %s", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	follower := postJob(t, ts.URL, quickExperiment()) // identical: free

	close(block)
	for _, id := range []string{leader.ID, follower.ID} {
		if got := waitTerminal(t, srv, id); got.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, got.State, got.Error)
		}
	}
	if got := srv.InflightBytes(); got != 0 {
		t.Fatalf("InflightBytes = %d after completion, want 0", got)
	}
	// Budget free again: the shed spec is admitted.
	retried := postJob(t, ts.URL, quickKernel())
	if got := waitDone(t, ts.URL, retried.ID); got.State != StateDone {
		t.Fatalf("post-release submit ended %s: %s", got.State, got.Error)
	}
	if stats := srv.Stats(); stats.Shed != 1 || stats.Simulated != 2 || stats.CacheHits != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestReadyzFlipsDuringDrain: /readyz answers 200 until BeginDrain, 503
// after; /healthz stays 200 throughout (the process is alive either way);
// and a drained server sheds submits.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	srv := newTestServer(t, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, readBody(t, resp)
	}
	for _, path := range []string{"/healthz", "/v1/healthz", "/readyz", "/v1/readyz"} {
		if code, body := status(path); code != http.StatusOK {
			t.Fatalf("%s before drain: %d: %s", path, code, body)
		}
	}

	srv.BeginDrain()
	for _, path := range []string{"/readyz", "/v1/readyz"} {
		code, body := status(path)
		if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
			t.Fatalf("%s during drain: %d: %s", path, code, body)
		}
	}
	if code, _ := status("/healthz"); code != http.StatusOK {
		t.Fatal("liveness flipped during drain")
	}
	resp := postRaw(t, ts.URL, quickKernel())
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("submit during drain: %s: %s", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed missing Retry-After")
	}
	if stats := srv.Stats(); stats.Shed != 1 || stats.Submitted != 0 {
		t.Fatalf("stats = %+v, want only Shed touched", stats)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// stepWriter is a hand-cranked ResponseWriter: every Write hands its bytes
// to the test and blocks until the test releases it, so the test controls
// exactly which job versions land between stream records.
type stepWriter struct {
	header http.Header
	lines  chan []byte
	gate   chan struct{}
}

func newStepWriter() *stepWriter {
	return &stepWriter{header: http.Header{}, lines: make(chan []byte), gate: make(chan struct{})}
}

func (w *stepWriter) Header() http.Header { return w.header }
func (w *stepWriter) WriteHeader(int)     {}
func (w *stepWriter) Write(p []byte) (int, error) {
	w.lines <- append([]byte(nil), p...)
	<-w.gate
	return len(p), nil
}

// release lets the blocked Write return.
func (w *stepWriter) release() { w.gate <- struct{}{} }

// TestWatchDroppedAccounting pins the /watch degradation contract: a client
// that drains slowly skips intermediate versions, and the final record's
// watch_dropped counts exactly the updates it never saw — here, three
// version bumps land while the client is stalled, one is delivered, two are
// dropped.
func TestWatchDroppedAccounting(t *testing.T) {
	hook, block := wedgeHook()
	srv := newTestServer(t, Config{Workers: 1, CellHook: hook})
	defer srv.Close()

	rec, err := srv.Submit(quickKernel())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker is wedged in the cell hook: state running,
	// measurement recorded. From here every version bump is the test's.
	waitFor(t, func() bool {
		got, _ := srv.Get(rec.ID)
		return got.State == StateRunning && got.Cells > 0
	})

	w := newStepWriter()
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+rec.ID+"/watch", nil)
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(w, req)
		close(done)
	}()

	var first watchRecord
	mustDecode(t, <-w.lines, &first)
	if first.State != StateRunning || first.Dropped != nil {
		t.Fatalf("first record: state=%s dropped=%v", first.State, first.Dropped)
	}
	// While the client is stalled mid-Write, three updates land.
	srv.mu.Lock()
	j := srv.jobs[rec.ID]
	srv.mu.Unlock()
	for i := 0; i < 3; i++ {
		j.set(func(r *Job) { r.Cells++ })
	}
	w.release()

	var second watchRecord
	mustDecode(t, <-w.lines, &second)
	if second.Dropped != nil {
		t.Fatal("non-terminal record carries watch_dropped")
	}
	// Let the job finish while the client stalls on record two; the job's
	// only remaining transition is the terminal one.
	close(block)
	waitFor(t, func() bool {
		got, _ := srv.Get(rec.ID)
		return got.State.terminal()
	})
	w.release()

	var final watchRecord
	mustDecode(t, <-w.lines, &final)
	w.release()
	<-done
	if final.State != StateDone {
		t.Fatalf("final record state = %s: %s", final.State, final.Error)
	}
	if final.Dropped == nil || *final.Dropped != 2 {
		t.Fatalf("watch_dropped = %v, want 2 (three bumps, one delivered)", final.Dropped)
	}
}

// deadlineWriter refuses every write with the deadline error, standing in
// for a client whose connection never drains.
type deadlineWriter struct{ header http.Header }

func (w *deadlineWriter) Header() http.Header { return w.header }
func (w *deadlineWriter) WriteHeader(int)     {}
func (w *deadlineWriter) Write(p []byte) (int, error) {
	return 0, os.ErrDeadlineExceeded
}

// TestWatchStalledClientCounted: a stream whose writes hit the deadline is
// closed and counted in Stats.WatchTimeouts rather than pinning the handler.
func TestWatchStalledClientCounted(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, WatchWriteTimeout: 50 * time.Millisecond})
	defer srv.Close()
	rec, err := srv.Submit(quickKernel())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, srv, rec.ID)

	finished := make(chan struct{})
	go func() {
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+rec.ID+"/watch", nil)
		srv.Handler().ServeHTTP(&deadlineWriter{header: http.Header{}}, req)
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled watch pinned its handler")
	}
	if stats := srv.Stats(); stats.WatchTimeouts != 1 {
		t.Fatalf("WatchTimeouts = %d, want 1", stats.WatchTimeouts)
	}
}

// waitFor polls cond to true within the suite deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func mustDecode(t *testing.T, line []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(bytes.TrimSpace(line), v); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", line, err)
	}
}
