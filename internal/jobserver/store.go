package jobserver

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The store is the server's durable state, laid out under one data
// directory:
//
//	jobs/<id>.json     — the job record (spec + state), rewritten atomically
//	                     on every state transition; the restart scan
//	                     re-enqueues every job that was queued or running.
//	ckpt/<id>.ckpt     — the job's write-ahead log of completed sweep cells
//	                     (the PR-4 checkpoint, lifted to a per-job store);
//	                     a restarted job resumes from it byte-identically.
//	results/<key>.json — the content-addressed result cache, keyed by the
//	                     jobspec fingerprint; identical requests are served
//	                     from here without re-simulating.
//
// Writes go through a temp-file rename, so a kill mid-write leaves either
// the old record or the new one, never a torn file (the WAL has its own
// torn-tail tolerance).

type store struct {
	dir string
}

func newStore(dir string) (*store, error) {
	st := &store{dir: dir}
	for _, sub := range []string{"jobs", "ckpt", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("jobserver: %w", err)
		}
	}
	return st, nil
}

func (st *store) jobPath(id string) string    { return filepath.Join(st.dir, "jobs", id+".json") }
func (st *store) ckptPath(id string) string   { return filepath.Join(st.dir, "ckpt", id+".ckpt") }
func (st *store) resultPath(key string) string {
	return filepath.Join(st.dir, "results", key+".json")
}

// atomicWrite writes data to path via a temp file + rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// saveJob persists one job record.
func (st *store) saveJob(rec Job) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobserver: %w", err)
	}
	return atomicWrite(st.jobPath(rec.ID), b)
}

// loadJobs reads every persisted job record, sorted by id (ids are
// zero-padded sequence numbers, so this is submission order).
func (st *store) loadJobs() ([]Job, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("jobserver: %w", err)
	}
	var out []Job
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(st.dir, "jobs", name))
		if err != nil {
			return nil, fmt.Errorf("jobserver: %w", err)
		}
		var rec Job
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("jobserver: job record %s: %w", name, err)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// saveResult stores a completed result under its content key.
func (st *store) saveResult(key string, data []byte) error {
	return atomicWrite(st.resultPath(key), data)
}

// loadResult fetches a cached result from disk.
func (st *store) loadResult(key string) ([]byte, bool) {
	b, err := os.ReadFile(st.resultPath(key))
	if err != nil {
		return nil, false
	}
	return b, true
}

// hasCheckpoint reports whether the job's WAL holds any records.
func (st *store) hasCheckpoint(id string) bool {
	fi, err := os.Stat(st.ckptPath(id))
	return err == nil && fi.Size() > 0
}
