package jobserver

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"emuchick/internal/storefs"
)

// FS is the filesystem interface the store persists through — the storage
// seam of the server. The default is the real filesystem (storefs.OS);
// internal/chaos provides a seeded fault-injecting implementation so tests
// can replay torn writes, ENOSPC, sync/rename failures, and crashes at any
// storage operation deterministically.
type FS = storefs.FS

// The store is the server's durable state, laid out under one data
// directory:
//
//	jobs/<id>.json     — the job record (spec + state), rewritten atomically
//	                     on every state transition; the restart scan
//	                     re-enqueues every job that was queued or running.
//	ckpt/<id>.ckpt     — the job's write-ahead log of completed sweep cells
//	                     (the PR-4 checkpoint, lifted to a per-job store);
//	                     a restarted job resumes from it byte-identically.
//	results/<key>.json — the content-addressed result cache, keyed by the
//	                     jobspec fingerprint; identical requests are served
//	                     from here without re-simulating.
//
// Writes go through create → write → fsync → rename, so a kill at any of
// those operations leaves either the old record or the new one, never a
// torn file (the WAL has its own torn-tail tolerance). The read side is
// equally defensive: a record that does not parse, names the wrong job, or
// a cached result that does not validate against its key is refused —
// surfaced as a failed job or a cache miss — never served and never allowed
// to take the server down.

type store struct {
	fs  FS
	dir string
}

func newStore(dir string, fsys FS) (*store, error) {
	if fsys == nil {
		fsys = storefs.Default
	}
	st := &store{fs: fsys, dir: dir}
	for _, sub := range []string{"jobs", "ckpt", "results"} {
		if err := fsys.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("jobserver: %w", err)
		}
	}
	st.sweepOrphans()
	return st, nil
}

// sweepOrphans removes temp files a previous life's interrupted atomic
// writes left behind. Best-effort: a failure to clean is not a failure to
// boot.
func (st *store) sweepOrphans() {
	for _, sub := range []string{"jobs", "results"} {
		dir := filepath.Join(st.dir, sub)
		entries, err := st.fs.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, ent := range entries {
			if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".tmp") {
				_ = st.fs.Remove(filepath.Join(dir, ent.Name()))
			}
		}
	}
}

func (st *store) jobPath(id string) string  { return filepath.Join(st.dir, "jobs", id+".json") }
func (st *store) ckptPath(id string) string { return filepath.Join(st.dir, "ckpt", id+".ckpt") }
func (st *store) resultPath(key string) string {
	return filepath.Join(st.dir, "results", key+".json")
}

// atomicWrite writes data to path via create → write → fsync → rename. On
// any failure the temp file is removed (best-effort) and the destination
// keeps its previous content, so a half-written record can never be read
// back under the real name.
func (st *store) atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := st.fs.OpenFile(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		_ = st.fs.Remove(tmp)
		return err
	}
	// The open mode does not truncate; a surviving orphan must not bleed a
	// stale tail into this write.
	if err := f.Truncate(0); err != nil {
		return fail(err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = st.fs.Remove(tmp)
		return err
	}
	if err := st.fs.Rename(tmp, path); err != nil {
		_ = st.fs.Remove(tmp)
		return err
	}
	return nil
}

// saveJob persists one job record.
func (st *store) saveJob(rec Job) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobserver: %w", err)
	}
	return st.atomicWrite(st.jobPath(rec.ID), b)
}

// loadJobs reads every persisted job record, sorted by id (ids are
// zero-padded sequence numbers, so this is submission order). A record that
// is corrupt — unparsable JSON, or a record naming a different job than its
// filename — loads as a refused (failed) job instead of aborting the boot:
// one damaged file must not hold the rest of the store hostage.
func (st *store) loadJobs() ([]Job, error) {
	entries, err := st.fs.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("jobserver: %w", err)
	}
	var out []Job
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		b, err := st.fs.ReadFile(filepath.Join(st.dir, "jobs", name))
		if err != nil {
			return nil, fmt.Errorf("jobserver: %w", err)
		}
		var rec Job
		switch err := json.Unmarshal(b, &rec); {
		case err != nil:
			out = append(out, refusedJob(id, fmt.Sprintf("unparsable record: %v", err)))
		case rec.ID != id:
			out = append(out, refusedJob(id, fmt.Sprintf("record names job %q", rec.ID)))
		default:
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// refusedJob is the terminal record a corrupt on-disk job loads as.
func refusedJob(id, reason string) Job {
	return Job{ID: id, State: StateFailed, Error: "refused: corrupt job record: " + reason}
}

// saveResult stores a completed result under its content key.
func (st *store) saveResult(key string, data []byte) error {
	return st.atomicWrite(st.resultPath(key), data)
}

// loadResult fetches a cached result from disk. The bytes are validated
// before they count: a file that does not parse as a Result, or that
// carries a foreign key, is refused — a cache miss, re-simulated and
// overwritten — never served.
func (st *store) loadResult(key string) ([]byte, bool) {
	b, err := st.fs.ReadFile(st.resultPath(key))
	if err != nil {
		return nil, false
	}
	if !validResult(key, b) {
		return nil, false
	}
	return b, true
}

// validResult reports whether data is a well-formed Result for key.
func validResult(key string, data []byte) bool {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return false
	}
	return r.Key == key
}

// hasCheckpoint reports whether the job's WAL holds any records.
func (st *store) hasCheckpoint(id string) bool {
	fi, err := st.fs.Stat(st.ckptPath(id))
	return err == nil && fi.Size() > 0
}
