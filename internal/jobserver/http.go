package jobserver

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"emuchick/internal/experiments"
	"emuchick/internal/jobspec"
	"emuchick/internal/kernels"
)

// Handler returns the server's HTTP API:
//
//	GET    /v1/healthz          — liveness probe
//	GET    /v1/stats            — job accounting (Stats)
//	GET    /v1/kernels          — registered kernel names and docs
//	GET    /v1/experiments      — registered experiment ids and titles
//	POST   /v1/jobs             — submit a jobspec; 202 + job record
//	GET    /v1/jobs             — list jobs in submission order
//	GET    /v1/jobs/{id}        — one job record
//	GET    /v1/jobs/{id}/wait   — long-poll until the job changes or ?timeout=
//	GET    /v1/jobs/{id}/watch  — JSONL stream of snapshots until terminal
//	GET    /v1/jobs/{id}/result — the finished result payload (cache bytes)
//	DELETE /v1/jobs/{id}        — cancel a queued or running job
//
// Every response body is JSON; errors are {"error": "..."} with a matching
// status code.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleWait)
	mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name   string   `json:"name"`
		Doc    string   `json:"doc"`
		Labels []string `json:"labels"`
	}
	var out []entry
	for _, name := range kernels.Names() {
		k, err := kernels.ByName(name)
		if err != nil {
			continue
		}
		out = append(out, entry{Name: k.Name, Doc: k.Doc, Labels: k.Labels})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Paper string `json:"paper"`
	}
	var out []entry
	for _, e := range experiments.All() {
		out = append(out, entry{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobspec.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rec, err := s.Submit(spec)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "queue full") {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleWait long-polls: it returns the job record as soon as its state
// advances past the version the client saw (?version=), or after ?timeout=
// (default 30s) with the current record either way.
func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, version, ok := s.Snapshot(id)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob(id))
		return
	}
	since := version
	if q := r.URL.Query().Get("version"); q != "" {
		var v int
		if _, err := jsonNumber(q, &v); err == nil {
			since = v
		}
	}
	timeout := 30 * time.Second
	if q := r.URL.Query().Get("timeout"); q != "" {
		if d, err := time.ParseDuration(q); err == nil && d > 0 {
			timeout = d
		}
	}
	if rec.State.terminal() {
		writeJSON(w, http.StatusOK, rec)
		return
	}
	changed, _ := s.WaitChanged(id, since)
	select {
	case <-changed:
	case <-time.After(timeout):
	case <-r.Context().Done():
	}
	rec, _, _ = s.Snapshot(id)
	writeJSON(w, http.StatusOK, rec)
}

// handleWatch streams one JSON line per state change until the job reaches
// a terminal state (progress updates — WAL cells — included).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, version, ok := s.Snapshot(id)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob(id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		if err := enc.Encode(rec); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if rec.State.terminal() {
			return
		}
		changed, ok := s.WaitChanged(id, version)
		if !ok {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
		rec, version, ok = s.Snapshot(id)
		if !ok {
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob(id))
		return
	}
	if rec.State != StateDone {
		writeError(w, http.StatusConflict, errNotDone(id, rec.State))
		return
	}
	data, err := s.ResultBytes(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Serve the cached bytes verbatim: identical requests get identical
	// bodies, byte for byte.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

type jobError string

func (e jobError) Error() string { return string(e) }

func errUnknownJob(id string) error {
	return jobError("unknown job " + id)
}

func errNotDone(id string, st State) error {
	return jobError("job " + id + " is " + string(st) + ", not done")
}

// jsonNumber parses a decimal query parameter.
func jsonNumber(s string, dst *int) (int, error) {
	var v int
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		return 0, err
	}
	*dst = v
	return v, nil
}
