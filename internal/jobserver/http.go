package jobserver

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"strconv"
	"time"

	"emuchick/internal/experiments"
	"emuchick/internal/jobspec"
	"emuchick/internal/kernels"
)

// Handler returns the server's HTTP API:
//
//	GET    /healthz             — liveness probe (also /v1/healthz)
//	GET    /readyz              — readiness probe; 503 during drain (also /v1/readyz)
//	GET    /v1/stats            — job accounting (Stats)
//	GET    /v1/kernels          — registered kernel names and docs
//	GET    /v1/experiments      — registered experiment ids and titles
//	POST   /v1/jobs             — submit a jobspec; 202 + job record,
//	                              503 + Retry-After when shed by admission control
//	GET    /v1/jobs             — list jobs in submission order
//	GET    /v1/jobs/{id}        — one job record
//	GET    /v1/jobs/{id}/wait   — long-poll until the job changes or ?timeout=
//	GET    /v1/jobs/{id}/watch  — JSONL stream of snapshots until terminal;
//	                              the final record carries watch_dropped
//	GET    /v1/jobs/{id}/result — the finished result payload (cache bytes)
//	DELETE /v1/jobs/{id}        — cancel a queued or running job
//
// Every response body is JSON; errors are {"error": "..."} with a matching
// status code.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleWait)
	mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: it flips to 503 once BeginDrain is called, so
// a front-end stops routing new work here before the listener goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name   string   `json:"name"`
		Doc    string   `json:"doc"`
		Labels []string `json:"labels"`
	}
	var out []entry
	for _, name := range kernels.Names() {
		k, err := kernels.ByName(name)
		if err != nil {
			continue
		}
		out = append(out, entry{Name: k.Name, Doc: k.Doc, Labels: k.Labels})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Paper string `json:"paper"`
	}
	var out []entry
	for _, e := range experiments.All() {
		out = append(out, entry{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	writeJSON(w, http.StatusOK, out)
}

// maxSpecBytes bounds a submit body; a spec is a small JSON document, so
// anything near this is abuse, not a job.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobspec.Spec
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rec, err := s.Submit(spec)
	if err != nil {
		var over *OverloadError
		if errors.As(err, &over) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(over.RetryAfter)))
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

// retryAfterSeconds renders a backoff hint as the whole seconds the header
// requires, never below 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleWait long-polls: it returns the job record as soon as its state
// advances past the version the client saw (?version=), or after ?timeout=
// (default 30s) with the current record either way.
func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, version, ok := s.Snapshot(id)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob(id))
		return
	}
	since := version
	if q := r.URL.Query().Get("version"); q != "" {
		var v int
		if _, err := jsonNumber(q, &v); err == nil {
			since = v
		}
	}
	timeout := 30 * time.Second
	if q := r.URL.Query().Get("timeout"); q != "" {
		if d, err := time.ParseDuration(q); err == nil && d > 0 {
			timeout = d
		}
	}
	if rec.State.terminal() {
		writeJSON(w, http.StatusOK, rec)
		return
	}
	changed, _ := s.WaitChanged(id, since)
	select {
	case <-changed:
	case <-time.After(timeout):
	case <-r.Context().Done():
	}
	rec, _, _ = s.Snapshot(id)
	writeJSON(w, http.StatusOK, rec)
}

// watchRecord is one /watch NDJSON line: the job snapshot, plus — on the
// final (terminal) line only — how many intermediate updates this stream
// skipped because the job advanced faster than the client drained.
type watchRecord struct {
	Job
	Dropped *int `json:"watch_dropped,omitempty"`
}

// handleWatch streams one JSON line per state change until the job reaches
// a terminal state (progress updates — WAL cells — included). Each write
// runs under Config.WatchWriteTimeout: a client that stalls past it has the
// stream closed (counted in Stats.WatchTimeouts) instead of pinning the
// handler forever. Updates are snapshots, not a log — a slow client skips
// intermediate versions, and the final record's watch_dropped says how many
// (mirroring the trace ChromeWriter's DroppedSamples accounting: degrade by
// shedding detail, and say so).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, version, ok := s.Snapshot(id)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob(id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	dropped := 0
	for {
		// Arm the per-write deadline. Recorders and other writers without
		// deadline support return ErrNotSupported; they simply stay unarmed.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.WatchWriteTimeout))
		out := watchRecord{Job: rec}
		if rec.State.terminal() {
			out.Dropped = &dropped
		}
		if err := enc.Encode(out); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.mu.Lock()
				s.stats.WatchTimeouts++
				s.mu.Unlock()
				s.logf("jobserver: watch %s closed: client stalled past %s", id, s.cfg.WatchWriteTimeout)
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if rec.State.terminal() {
			return
		}
		changed, ok := s.WaitChanged(id, version)
		if !ok {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
		next, nv, ok := s.Snapshot(id)
		if !ok {
			return
		}
		// Every version bump past the one we are about to write was an
		// update this client never saw.
		if nv > version+1 {
			dropped += nv - version - 1
		}
		rec, version = next, nv
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob(id))
		return
	}
	if rec.State != StateDone {
		writeError(w, http.StatusConflict, errNotDone(id, rec.State))
		return
	}
	data, err := s.ResultBytes(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Serve the cached bytes verbatim: identical requests get identical
	// bodies, byte for byte.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

type jobError string

func (e jobError) Error() string { return string(e) }

func errUnknownJob(id string) error {
	return jobError("unknown job " + id)
}

func errNotDone(id string, st State) error {
	return jobError("job " + id + " is " + string(st) + ", not done")
}

// jsonNumber parses a decimal query parameter.
func jsonNumber(s string, dst *int) (int, error) {
	var v int
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		return 0, err
	}
	*dst = v
	return v, nil
}
