package workload

import (
	"testing"
	"testing/quick"
)

func TestShuffleModeNames(t *testing.T) {
	want := map[ShuffleMode]string{
		NoShuffle:         "no_shuffle",
		IntraBlockShuffle: "intra_block_shuffle",
		BlockShuffle:      "block_shuffle",
		FullBlockShuffle:  "full_block_shuffle",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
		parsed, err := ParseShuffleMode(name)
		if err != nil || parsed != m {
			t.Errorf("ParseShuffleMode(%q) = %v, %v", name, parsed, err)
		}
	}
	if _, err := ParseShuffleMode("nope"); err == nil {
		t.Error("bogus mode accepted")
	}
	if ShuffleMode(42).String() == "" {
		t.Error("unknown mode String empty")
	}
}

func TestNoShuffleIsIdentity(t *testing.T) {
	order := ListOrder(10, 4, NoShuffle, NewRNG(1))
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestIntraBlockKeepsBlockSequence(t *testing.T) {
	const n, bs = 64, 8
	order := ListOrder(n, bs, IntraBlockShuffle, NewRNG(3))
	// The k-th group of bs visits must cover exactly block k.
	for b := 0; b < n/bs; b++ {
		for k := b * bs; k < (b+1)*bs; k++ {
			if order[k]/bs != b {
				t.Fatalf("visit %d touches block %d, want %d", k, order[k]/bs, b)
			}
		}
	}
}

func TestBlockShuffleKeepsWithinBlockSequence(t *testing.T) {
	const n, bs = 64, 8
	order := ListOrder(n, bs, BlockShuffle, NewRNG(3))
	for k := 0; k < n; k += bs {
		base := order[k]
		if base%bs != 0 {
			t.Fatalf("block visit %d starts mid-block at %d", k/bs, base)
		}
		for j := 0; j < bs; j++ {
			if order[k+j] != base+j {
				t.Fatalf("within-block order broken at visit %d", k+j)
			}
		}
	}
}

func TestFullShuffleStillVisitsBlocksAtomically(t *testing.T) {
	const n, bs = 96, 8
	order := ListOrder(n, bs, FullBlockShuffle, NewRNG(5))
	// Consecutive runs of bs visits must stay within one block ("all
	// elements within a block are accessed before jumping to the next").
	for k := 0; k < n; k += bs {
		b := order[k] / bs
		for j := 1; j < bs; j++ {
			if order[k+j]/bs != b {
				t.Fatalf("block broken across visits %d..%d", k, k+j)
			}
		}
	}
}

func TestShufflesActuallyShuffle(t *testing.T) {
	const n, bs = 1024, 16
	for _, mode := range []ShuffleMode{IntraBlockShuffle, BlockShuffle, FullBlockShuffle} {
		order := ListOrder(n, bs, mode, NewRNG(7))
		fixed := 0
		for i, v := range order {
			if i == v {
				fixed++
			}
		}
		if fixed > n/2 {
			t.Errorf("%v left %d of %d positions fixed", mode, fixed, n)
		}
	}
}

func TestListOrderShortFinalBlock(t *testing.T) {
	// 10 elements in blocks of 4: final block has 2.
	for _, mode := range ShuffleModes {
		order := ListOrder(10, 4, mode, NewRNG(2))
		if len(order) != 10 {
			t.Fatalf("%v: len = %d", mode, len(order))
		}
		seen := make([]bool, 10)
		for _, v := range order {
			if v < 0 || v >= 10 || seen[v] {
				t.Fatalf("%v: not a permutation: %v", mode, order)
			}
			seen[v] = true
		}
	}
}

func TestListOrderDegenerateCases(t *testing.T) {
	if got := ListOrder(0, 4, FullBlockShuffle, NewRNG(1)); len(got) != 0 {
		t.Fatal("n=0 not empty")
	}
	// blockSize 1 with full shuffle is a global permutation.
	order := ListOrder(32, 1, FullBlockShuffle, NewRNG(1))
	if len(order) != 32 {
		t.Fatal("blockSize 1 wrong length")
	}
	// blockSize >= n with intra shuffle is also a global permutation.
	order = ListOrder(32, 64, IntraBlockShuffle, NewRNG(1))
	if len(order) != 32 {
		t.Fatal("oversized block wrong length")
	}
	for _, f := range []func(){
		func() { ListOrder(-1, 4, NoShuffle, NewRNG(1)) },
		func() { ListOrder(4, 0, NoShuffle, NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid ListOrder args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestListSpec(t *testing.T) {
	ls := ListSpec{Elements: 100, BlockSize: 8, Mode: FullBlockShuffle, Seed: 9}
	if ls.Blocks() != 13 {
		t.Fatalf("Blocks = %d", ls.Blocks())
	}
	if len(ls.Order()) != 100 {
		t.Fatal("Order wrong length")
	}
	a, b := ls.Order(), ls.Order()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ListSpec.Order not deterministic")
		}
	}
	if (ListSpec{Elements: 0, BlockSize: 4}).Blocks() != 0 {
		t.Fatal("empty spec Blocks != 0")
	}
}

// Property: for every mode, n, blockSize, and seed, ListOrder is a
// permutation of [0, n) that visits each block contiguously.
func TestListOrderPermutationProperty(t *testing.T) {
	f := func(nRaw, bsRaw uint8, modeRaw uint8, seed uint64) bool {
		n := int(nRaw % 200)
		bs := int(bsRaw%32) + 1
		mode := ShuffleModes[int(modeRaw)%len(ShuffleModes)]
		order := ListOrder(n, bs, mode, NewRNG(seed))
		if len(order) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		// Block atomicity: once a block is left it is never revisited.
		visited := map[int]bool{}
		cur := -1
		for _, v := range order {
			b := v / bs
			if b != cur {
				if visited[b] {
					return false
				}
				visited[b] = true
				cur = b
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGUPSStream(t *testing.T) {
	idx := GUPSStream(1000, 64, NewRNG(3))
	if len(idx) != 1000 {
		t.Fatal("wrong length")
	}
	hit := make([]bool, 64)
	for _, v := range idx {
		if v < 0 || v >= 64 {
			t.Fatalf("index %d out of range", v)
		}
		hit[v] = true
	}
	covered := 0
	for _, h := range hit {
		if h {
			covered++
		}
	}
	if covered < 60 {
		t.Fatalf("only %d of 64 slots hit", covered)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty table did not panic")
		}
	}()
	GUPSStream(1, 0, NewRNG(1))
}
