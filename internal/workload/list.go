package workload

import "fmt"

// ShuffleMode selects which of Fig. 2's permutations is applied to the
// linked list's traversal order.
type ShuffleMode int

const (
	// NoShuffle visits elements in memory order (the top row of Fig. 2).
	NoShuffle ShuffleMode = iota
	// IntraBlockShuffle randomizes the order of elements within each
	// block; blocks are visited in memory order (middle row of Fig. 2).
	IntraBlockShuffle
	// BlockShuffle randomizes the order in which blocks are visited;
	// elements within a block stay in memory order.
	BlockShuffle
	// FullBlockShuffle randomizes both (bottom row of Fig. 2).
	FullBlockShuffle
)

// ShuffleModes lists the three shuffles the paper plots, plus the ordered
// baseline.
var ShuffleModes = []ShuffleMode{NoShuffle, IntraBlockShuffle, BlockShuffle, FullBlockShuffle}

// String returns the paper's snake_case name for the mode.
func (m ShuffleMode) String() string {
	switch m {
	case NoShuffle:
		return "no_shuffle"
	case IntraBlockShuffle:
		return "intra_block_shuffle"
	case BlockShuffle:
		return "block_shuffle"
	case FullBlockShuffle:
		return "full_block_shuffle"
	default:
		return fmt.Sprintf("ShuffleMode(%d)", int(m))
	}
}

// ParseShuffleMode maps a snake_case name back to its ShuffleMode.
func ParseShuffleMode(name string) (ShuffleMode, error) {
	for _, m := range ShuffleModes {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown shuffle mode %q", name)
}

// ListOrder computes the traversal order of a block-shuffled linked list:
// the returned slice holds element memory positions in visit order, so
// order[k] is the position of the k-th visited element. Elements are
// grouped into blocks of blockSize consecutive memory positions (the final
// block may be short when blockSize does not divide n). The rules match
// Fig. 2: all elements of a block are visited before jumping to the next
// block; IntraBlockShuffle permutes positions within each block,
// BlockShuffle permutes the block visit order, and FullBlockShuffle does
// both.
func ListOrder(n, blockSize int, mode ShuffleMode, rng *RNG) []int {
	if n < 0 {
		panic("workload: negative list length")
	}
	if blockSize <= 0 {
		panic("workload: block size must be positive")
	}
	if n == 0 {
		return nil
	}
	numBlocks := (n + blockSize - 1) / blockSize

	blockOrder := make([]int, numBlocks)
	for i := range blockOrder {
		blockOrder[i] = i
	}
	if mode == BlockShuffle || mode == FullBlockShuffle {
		rng.Shuffle(numBlocks, func(i, j int) {
			blockOrder[i], blockOrder[j] = blockOrder[j], blockOrder[i]
		})
	}

	order := make([]int, 0, n)
	scratch := make([]int, 0, blockSize)
	for _, b := range blockOrder {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		scratch = scratch[:0]
		for p := lo; p < hi; p++ {
			scratch = append(scratch, p)
		}
		if mode == IntraBlockShuffle || mode == FullBlockShuffle {
			rng.Shuffle(len(scratch), func(i, j int) {
				scratch[i], scratch[j] = scratch[j], scratch[i]
			})
		}
		order = append(order, scratch...)
	}
	return order
}

// ListSpec bundles the parameters of one pointer-chasing list.
type ListSpec struct {
	Elements  int // total list elements (each 16 bytes: payload + next)
	BlockSize int // elements per locality block
	Mode      ShuffleMode
	Seed      uint64
}

// Order materializes the traversal order for the spec.
func (ls ListSpec) Order() []int {
	return ListOrder(ls.Elements, ls.BlockSize, ls.Mode, NewRNG(ls.Seed))
}

// Blocks reports how many locality blocks the list has.
func (ls ListSpec) Blocks() int {
	if ls.Elements == 0 {
		return 0
	}
	return (ls.Elements + ls.BlockSize - 1) / ls.BlockSize
}

// GUPSStream returns n pseudo-random table indices in [0, tableSize) — the
// access pattern of the HPCC RandomAccess benchmark the paper contrasts
// with pointer chasing (GUPS lacks data-dependent loads).
func GUPSStream(n, tableSize int, rng *RNG) []int {
	if tableSize <= 0 {
		panic("workload: GUPS table must be non-empty")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(tableSize)
	}
	return idx
}
