package workload

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRMATBasics(t *testing.T) {
	cfg := DefaultRMAT(8, 4)
	if cfg.Vertices() != 256 || cfg.Edges != 1024 {
		t.Fatalf("cfg = %+v", cfg)
	}
	edges, err := RMAT(cfg, NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1024 {
		t.Fatalf("edges = %d", len(edges))
	}
	for _, e := range edges {
		if e.Src < 0 || e.Src >= 256 || e.Dst < 0 || e.Dst >= 256 {
			t.Fatalf("edge %+v out of range", e)
		}
	}
}

func TestRMATSkew(t *testing.T) {
	// The defining property: degree distribution is heavily skewed — the
	// busiest decile of vertices should carry far more than a tenth of
	// the edges.
	cfg := DefaultRMAT(10, 8)
	edges, err := RMAT(cfg, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, cfg.Vertices())
	for _, e := range edges {
		deg[e.Src]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	top := 0
	for _, d := range deg[:cfg.Vertices()/10] {
		top += d
	}
	frac := float64(top) / float64(len(edges))
	if frac < 0.3 {
		t.Fatalf("top decile carries only %.0f%% of edges; no skew", frac*100)
	}
}

func TestRMATDeterminism(t *testing.T) {
	cfg := DefaultRMAT(6, 4)
	a, _ := RMAT(cfg, NewRNG(5))
	b, _ := RMAT(cfg, NewRNG(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("equal seeds diverged")
		}
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATConfig{
		{Scale: 0, Edges: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 30, Edges: 1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, Edges: 0, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, Edges: 4, A: 0.9, B: 0.3, C: 0.2, D: 0.1},
		{Scale: 4, Edges: 4, A: -0.1, B: 0.5, C: 0.3, D: 0.3},
	}
	for _, cfg := range bad {
		if _, err := RMAT(cfg, NewRNG(1)); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// Property: all edges in range for arbitrary scales and seeds.
func TestRMATRangeProperty(t *testing.T) {
	f := func(scaleRaw uint8, seed uint64) bool {
		scale := int(scaleRaw%10) + 2
		cfg := DefaultRMAT(scale, 2)
		edges, err := RMAT(cfg, NewRNG(seed))
		if err != nil {
			return false
		}
		n := cfg.Vertices()
		for _, e := range edges {
			if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
