// Package workload builds the synthetic inputs the paper benchmarks with:
// block-shuffled linked lists for the pointer-chasing kernel (Fig. 2), and
// a GUPS-style random update stream. All generation is driven by an
// explicit, deterministic RNG so that every trial is reproducible.
package workload

// RNG is a deterministic xorshift64* pseudo-random generator. It is small,
// fast, stateless across runs with equal seeds, and has no global state —
// exactly what repeatable trials need (math/rand would work, but pinning
// the algorithm here guarantees identical streams across Go releases).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped, as
// xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Shuffle performs a Fisher-Yates shuffle over n elements via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
