package workload

import "fmt"

// RMATConfig parameterizes a recursive-matrix (R-MAT) edge generator, the
// standard synthetic input for streaming-graph work like STINGER's: edges
// recursively prefer one quadrant of the adjacency matrix, producing the
// skewed degree distributions real graph data shows.
type RMATConfig struct {
	Scale int     // vertices = 1 << Scale
	Edges int     // edges to generate
	A     float64 // quadrant probabilities; A+B+C+D must be ~1
	B     float64
	C     float64
	D     float64
}

// DefaultRMAT returns the community-standard (0.57, 0.19, 0.19, 0.05)
// parameterization at the given scale and average degree.
func DefaultRMAT(scale, avgDegree int) RMATConfig {
	return RMATConfig{
		Scale: scale,
		Edges: (1 << scale) * avgDegree,
		A:     0.57, B: 0.19, C: 0.19, D: 0.05,
	}
}

// Vertices reports the vertex count.
func (c RMATConfig) Vertices() int { return 1 << c.Scale }

// Validate reports a descriptive error for unusable parameters.
func (c RMATConfig) Validate() error {
	if c.Scale <= 0 || c.Scale > 20 {
		return fmt.Errorf("workload: R-MAT scale %d out of range", c.Scale)
	}
	if c.Edges <= 0 {
		return fmt.Errorf("workload: R-MAT needs positive edge count")
	}
	sum := c.A + c.B + c.C + c.D
	if c.A < 0 || c.B < 0 || c.C < 0 || c.D < 0 || sum < 0.99 || sum > 1.01 {
		return fmt.Errorf("workload: R-MAT quadrant probabilities sum to %v", sum)
	}
	return nil
}

// RMATEdge is one generated (src, dst) pair.
type RMATEdge struct {
	Src, Dst int
}

// RMAT generates the edge list. Duplicate edges and self-loops are kept,
// as streaming-graph benchmarks do.
func RMAT(cfg RMATConfig, rng *RNG) ([]RMATEdge, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	edges := make([]RMATEdge, cfg.Edges)
	for i := range edges {
		src, dst := 0, 0
		for bit := 0; bit < cfg.Scale; bit++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: neither bit set
			case r < cfg.A+cfg.B:
				dst |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges[i] = RMATEdge{Src: src, Dst: dst}
	}
	return edges, nil
}
