package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleActuallyPermutes(t *testing.T) {
	// A 1000-element shuffle leaving everything fixed would indicate a
	// broken swap loop.
	r := NewRNG(11)
	p := r.Perm(1000)
	moved := 0
	for i, v := range p {
		if i != v {
			moved++
		}
	}
	if moved < 900 {
		t.Fatalf("only %d of 1000 elements moved", moved)
	}
}

// Property: Perm(n) is a bijection for any n and seed.
func TestPermProperty(t *testing.T) {
	f := func(nRaw uint8, seed uint64) bool {
		n := int(nRaw % 128)
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Distribution(t *testing.T) {
	// Crude sanity: over 64k draws, each of the top 4 bits should be set
	// roughly half the time.
	r := NewRNG(1234)
	const draws = 1 << 16
	var counts [4]int
	for i := 0; i < draws; i++ {
		v := r.Uint64()
		for b := 0; b < 4; b++ {
			if v&(1<<(63-b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / draws
		if frac < 0.45 || frac > 0.55 {
			t.Fatalf("bit %d set fraction %.3f", b, frac)
		}
	}
}
