package fault

import (
	"reflect"
	"testing"

	"emuchick/internal/sim"
)

func TestEmptyPlanResolvesNil(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan not empty")
	}
	for _, p := range []*Plan{nil, {}, {Seed: 7}} {
		r, err := p.Resolve(8, 1)
		if err != nil {
			t.Fatalf("empty plan resolve error: %v", err)
		}
		if r != nil {
			t.Fatalf("empty plan resolved to %+v, want nil", r)
		}
	}
}

func TestResolveDeterministicPerSeed(t *testing.T) {
	plan := func(seed uint64) *Plan {
		return &Plan{Seed: seed, Channels: []Slowdown{{Factor: 4, Count: 3}}}
	}
	a, err := plan(42).Resolve(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan(42).Resolve(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ChannelScale, b.ChannelScale) {
		t.Fatalf("same seed resolved differently: %v vs %v", a.ChannelScale, b.ChannelScale)
	}
	degraded := 0
	for _, f := range a.ChannelScale {
		switch f {
		case 1:
		case 4:
			degraded++
		default:
			t.Fatalf("unexpected scale %v", f)
		}
	}
	if degraded != 3 {
		t.Fatalf("degraded %d nodelets, want 3", degraded)
	}
	c, err := plan(43).Resolve(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds are allowed to coincide in principle, but 3-of-8
	// picks from distinct xorshift streams virtually never do; a failure
	// here means the seed is being ignored.
	if reflect.DeepEqual(a.ChannelScale, c.ChannelScale) {
		t.Fatalf("seed ignored: 42 and 43 picked the same nodelets %v", a.ChannelScale)
	}
}

func TestSlowdownSelectionModes(t *testing.T) {
	r, err := (&Plan{Cores: []Slowdown{{Factor: 2}}}).Resolve(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.CoreScale, []float64{2, 2, 2, 2}) {
		t.Fatalf("all-nodelet slowdown = %v", r.CoreScale)
	}
	r, err = (&Plan{Cores: []Slowdown{{Factor: 3, Nodelets: []int{1, 3}}}}).Resolve(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.CoreScale, []float64{1, 3, 1, 3}) {
		t.Fatalf("explicit slowdown = %v", r.CoreScale)
	}
	// Overlapping rules compose multiplicatively.
	r, err = (&Plan{Cores: []Slowdown{{Factor: 2}, {Factor: 3, Nodelets: []int{0}}}}).Resolve(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.CoreScale, []float64{6, 2}) {
		t.Fatalf("composed slowdown = %v", r.CoreScale)
	}
}

func TestStallWindows(t *testing.T) {
	r, err := (&Plan{Stalls: []Stall{{Duration: 10 * sim.Microsecond, Period: 100 * sim.Microsecond}}}).Resolve(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t       sim.Time
		until   sim.Time
		blocked bool
	}{
		{0, 10 * sim.Microsecond, true},
		{5 * sim.Microsecond, 10 * sim.Microsecond, true},
		{10 * sim.Microsecond, 0, false},
		{99 * sim.Microsecond, 0, false},
		{100 * sim.Microsecond, 110 * sim.Microsecond, true},
		{205 * sim.Microsecond, 210 * sim.Microsecond, true},
	}
	for _, c := range cases {
		until, blocked := r.BlockedUntil(0, false, c.t)
		if blocked != c.blocked || until != c.until {
			t.Errorf("BlockedUntil(%v) = (%v, %v), want (%v, %v)", c.t, until, blocked, c.until, c.blocked)
		}
	}
}

func TestLinkOutageBlocksOnlyCrossings(t *testing.T) {
	p := &Plan{Links: []LinkFault{{Factor: 0, Start: 5 * sim.Microsecond, End: 20 * sim.Microsecond}}}
	r, err := p.Resolve(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, blocked := r.BlockedUntil(0, false, 10*sim.Microsecond); blocked {
		t.Fatal("intra-node migration blocked by a link outage")
	}
	until, blocked := r.BlockedUntil(0, true, 10*sim.Microsecond)
	if !blocked || until != 20*sim.Microsecond {
		t.Fatalf("crossing during outage = (%v, %v)", until, blocked)
	}
	if _, blocked := r.BlockedUntil(0, true, 25*sim.Microsecond); blocked {
		t.Fatal("crossing after window blocked")
	}
}

func TestLinkScale(t *testing.T) {
	p := &Plan{Links: []LinkFault{{Factor: 4, Start: 0, End: 10 * sim.Microsecond}, {Factor: 2}}}
	r, err := p.Resolve(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f := r.LinkScale(0, 5*sim.Microsecond); f != 8 {
		t.Fatalf("overlapping windows scale = %v, want 8", f)
	}
	if f := r.LinkScale(0, 15*sim.Microsecond); f != 2 {
		t.Fatalf("open-ended window scale = %v, want 2", f)
	}
}

func TestBackoffDoublesToCap(t *testing.T) {
	r, err := (&Plan{
		Stalls:  []Stall{{Duration: 1 * sim.Microsecond, Period: 2 * sim.Microsecond}},
		Backoff: Backoff{BaseCycles: 64, MaxCycles: 256},
	}).Resolve(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{64, 128, 256, 256, 256}
	for i, w := range want {
		if got := r.BackoffCycles(i); got != w {
			t.Errorf("BackoffCycles(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestScaleIdentityAtFactorOne(t *testing.T) {
	for _, v := range []sim.Time{0, 1, 50 * sim.Nanosecond, 3 * sim.Second} {
		if Scale(v, 1) != v {
			t.Fatalf("Scale(%v, 1) = %v", v, Scale(v, 1))
		}
	}
	if Scale(50*sim.Nanosecond, 2.5) != 125*sim.Nanosecond {
		t.Fatalf("Scale(50ns, 2.5) = %v", Scale(50*sim.Nanosecond, 2.5))
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []*Plan{
		{Cores: []Slowdown{{Factor: 0.5}}},
		{Channels: []Slowdown{{Factor: 0}}},
		{Links: []LinkFault{{Factor: 0}}},                                                  // open-ended outage
		{Links: []LinkFault{{Factor: 0.5, End: sim.Microsecond}}},                          // accelerating link
		{Links: []LinkFault{{Factor: 2, Start: 2 * sim.Microsecond, End: sim.Microsecond}}}, // inverted window
		{Stalls: []Stall{{Duration: sim.Microsecond, Period: sim.Microsecond}}},            // no service window
		{Stalls: []Stall{{Duration: 0, Period: sim.Microsecond}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p)
		}
		if _, err := p.Resolve(8, 1); err == nil {
			t.Errorf("plan %d resolved: %+v", i, p)
		}
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("cores=2@4, chan=4, link=off@5us-50us, migstall=10us/100us, backoff=32/512", 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 {
		t.Fatalf("seed = %d", p.Seed)
	}
	if len(p.Cores) != 1 || p.Cores[0].Factor != 2 || p.Cores[0].Count != 4 {
		t.Fatalf("cores = %+v", p.Cores)
	}
	if len(p.Channels) != 1 || p.Channels[0].Factor != 4 || p.Channels[0].Count != 0 {
		t.Fatalf("channels = %+v", p.Channels)
	}
	if len(p.Links) != 1 || p.Links[0].Factor != 0 ||
		p.Links[0].Start != 5*sim.Microsecond || p.Links[0].End != 50*sim.Microsecond {
		t.Fatalf("links = %+v", p.Links)
	}
	if len(p.Stalls) != 1 || p.Stalls[0].Duration != 10*sim.Microsecond || p.Stalls[0].Period != 100*sim.Microsecond {
		t.Fatalf("stalls = %+v", p.Stalls)
	}
	if p.Backoff != (Backoff{BaseCycles: 32, MaxCycles: 512}) {
		t.Fatalf("backoff = %+v", p.Backoff)
	}

	for _, bad := range []string{
		"cores", "cores=x", "cores=2@0", "link=off", "link=2@5us",
		"migstall=10us", "migstall=0s/1ms", "backoff=64", "wat=1",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}
